// Integration tests for the observability layer through the public facade:
// a probed run must reproduce the unprobed Result exactly, the interval
// series must end on the run's own cumulative ISPI, and the exported
// timeline must be valid Chrome trace-event JSON.
package specfetch_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"specfetch"
)

func TestObservedRunMatchesResult(t *testing.T) {
	bench, err := specfetch.BuildBenchmark(specfetch.GCC())
	if err != nil {
		t.Fatal(err)
	}
	const insts = 150_000
	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Resume
	cfg.NextLinePrefetch = true

	base, err := specfetch.RunBenchmark(bench, cfg, insts, 1)
	if err != nil {
		t.Fatal(err)
	}

	rec := specfetch.NewEventRecorder(1 << 20)
	samp := specfetch.NewIntervalSampler()
	cfg.Probe = specfetch.MultiProbe(rec, samp)
	cfg.SampleInterval = 10_000
	res, err := specfetch.RunBenchmark(bench, cfg, insts, 1)
	if err != nil {
		t.Fatal(err)
	}

	if res != base {
		t.Errorf("probed run diverged from base run:\nprobed %+v\n  base %+v", res, base)
	}

	// The acceptance bar: the series' final cumulative ISPI equals the
	// run's own TotalISPI.
	pts := samp.Points()
	if len(pts) == 0 {
		t.Fatal("no series points")
	}
	last := pts[len(pts)-1]
	if got, want := last.CumISPI, res.TotalISPI(); math.Abs(got-want) > 1e-9 {
		t.Errorf("final CumISPI = %.12f, want %.12f (run TotalISPI)", got, want)
	}
	if last.Insts != res.Insts || last.Cycle != res.Cycles.Int64() {
		t.Errorf("final point at %d insts / %d cycles, run ended at %d / %d",
			last.Insts, last.Cycle, res.Insts, res.Cycles)
	}

	if rec.Total() == 0 {
		t.Error("recorder saw no events")
	}

	// The timeline export must be well-formed trace-event JSON.
	var buf bytes.Buffer
	if err := specfetch.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("timeline has no events")
	}
}

func TestRunWithProbe(t *testing.T) {
	bench, err := specfetch.BuildBenchmark(specfetch.Groff())
	if err != nil {
		t.Fatal(err)
	}
	const insts = 50_000
	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Optimistic
	cfg.MaxInsts = insts

	samp := specfetch.NewIntervalSampler()
	res, err := specfetch.RunWithProbe(cfg, bench.Image(), bench.NewReader(7, insts*2),
		specfetch.NewPredictor(), samp, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	pts := samp.Points()
	if len(pts) == 0 {
		t.Fatal("no series points")
	}
	if got, want := pts[len(pts)-1].CumISPI, res.TotalISPI(); math.Abs(got-want) > 1e-9 {
		t.Errorf("final CumISPI = %.12f, want %.12f", got, want)
	}
}
