// Customtrace shows how to drive the simulator with your own program and
// trace instead of the synthetic workload generator — the path you would
// take to replay traces captured from real binaries.
//
// It hand-builds a tiny program (a loop with a data-dependent branch
// calling a helper function) and its dynamic trace, then compares all five
// policies over it.
package main

import (
	"fmt"
	"log"

	"specfetch"
)

func main() {
	img, loop := buildProgram()
	recs := buildTrace(loop, 2000)

	fmt.Printf("static program: %d instructions, trace: %d records\n",
		img.NumInsts(), len(recs))

	for _, pol := range specfetch.Policies() {
		cfg := specfetch.DefaultConfig()
		cfg.Policy = pol
		cfg.ICache.SizeBytes = 1024 // tiny cache so the toy program misses
		res, err := specfetch.Run(cfg, img, specfetch.NewSliceTrace(recs), specfetch.NewPredictor())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s ISPI %.3f  (miss %.2f%%, traffic %d lines)\n",
			pol, res.TotalISPI(), res.MissRatioPct(), res.Traffic.Total())
	}
}

// layout captures the addresses the trace builder needs.
type layout struct {
	loopTop specfetch.Addr // first instruction of the loop body
	condPC  specfetch.Addr // data-dependent if inside the loop
	condTgt specfetch.Addr // its taken target (skips the call)
	callPC  specfetch.Addr // call to the helper
	callTgt specfetch.Addr // helper entry
	retPC   specfetch.Addr // helper's return
	backPC  specfetch.Addr // loop back-branch
	callRet specfetch.Addr // instruction after the call
	helperN int            // plain instructions in the helper before ret
	headN   int            // plain instructions before the cond
	middleN int            // plain instructions between call and back branch
}

// buildProgram assembles the image:
//
//	loop:   8 plains
//	        cond -> skip          (taken every 3rd iteration)
//	        call helper
//	skip:   6 plains
//	        cond -> loop          (taken until the trace ends)
//	        ... helper: 12 plains; ret
func buildProgram() (*specfetch.Image, layout) {
	b, err := specfetch.NewImageBuilder(0x1000)
	if err != nil {
		log.Fatal(err)
	}
	var l layout
	l.headN, l.middleN, l.helperN = 8, 6, 12

	l.loopTop = b.PC()
	b.AppendPlain(l.headN)
	l.condPC = b.PC()
	condSlot := b.Append(specfetch.Inst{Kind: specfetch.CondBranch}) // target patched below
	_ = condSlot
	l.callPC = b.PC()
	callSlot := b.Append(specfetch.Inst{Kind: specfetch.Call}) // target patched below
	_ = callSlot
	l.callRet = b.PC()
	l.condTgt = b.PC() // skip lands right after the call
	b.AppendPlain(l.middleN)
	l.backPC = b.PC()
	b.Append(specfetch.Inst{Kind: specfetch.CondBranch, Target: l.loopTop})

	// Helper function.
	l.callTgt = b.PC()
	b.AppendPlain(l.helperN)
	l.retPC = b.PC()
	b.Append(specfetch.Inst{Kind: specfetch.Return})

	// Rebuild with the forward targets now known (the builder appends in
	// order, so we reconstruct with the final addresses).
	b2, err := specfetch.NewImageBuilder(0x1000)
	if err != nil {
		log.Fatal(err)
	}
	b2.AppendPlain(l.headN)
	b2.Append(specfetch.Inst{Kind: specfetch.CondBranch, Target: l.condTgt})
	b2.Append(specfetch.Inst{Kind: specfetch.Call, Target: l.callTgt})
	b2.AppendPlain(l.middleN)
	b2.Append(specfetch.Inst{Kind: specfetch.CondBranch, Target: l.loopTop})
	b2.AppendPlain(l.helperN)
	b2.Append(specfetch.Inst{Kind: specfetch.Return})
	img, err := b2.Build()
	if err != nil {
		log.Fatal(err)
	}
	return img, l
}

// buildTrace walks the loop iters times, skipping the call on every third
// iteration, and exits the loop at the end.
func buildTrace(l layout, iters int) []specfetch.TraceRecord {
	var recs []specfetch.TraceRecord
	for i := 0; i < iters; i++ {
		skip := i%3 == 2
		// Head block ending in the data-dependent conditional.
		rec := specfetch.TraceRecord{
			Start: l.loopTop, N: l.headN + 1, BrKind: specfetch.CondBranch,
			Taken: skip, Target: 0,
		}
		if skip {
			rec.Target = l.condTgt
		}
		recs = append(recs, rec)
		if !skip {
			// The call and the helper's body.
			recs = append(recs,
				specfetch.TraceRecord{Start: l.callPC, N: 1, BrKind: specfetch.Call, Taken: true, Target: l.callTgt},
				specfetch.TraceRecord{Start: l.callTgt, N: l.helperN + 1, BrKind: specfetch.Return, Taken: true, Target: l.callRet},
			)
		}
		// Middle block ending in the loop back-branch.
		back := specfetch.TraceRecord{
			Start: l.callRet, N: l.middleN + 1, BrKind: specfetch.CondBranch,
			Taken: i != iters-1, Target: 0,
		}
		if back.Taken {
			back.Target = l.loopTop
		}
		recs = append(recs, back)
	}
	return recs
}
