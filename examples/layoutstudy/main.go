// Layoutstudy exercises the paper's closing future-work suggestion:
// "software techniques, like profile driven basic-block reordering". It
// profiles each workload on one dynamic stream, rebuilds the code image
// with hot functions packed first, and evaluates both layouts on a
// different stream — an honest train/test split.
//
// The result is deliberately mixed (it helps some programs and hurts
// others): packing by raw hotness can pile the hot set into the same
// direct-mapped cache sets, which is exactly why production layout passes
// (Pettis-Hansen) placed functions by call-graph adjacency instead.
package main

import (
	"fmt"
	"log"

	"specfetch"
	"specfetch/internal/synth"
)

func main() {
	const (
		profileInsts = 1_000_000
		evalInsts    = 1_000_000
		trainSeed    = 100
		testSeed     = 200
	)

	fmt.Println("Profile-guided code layout (Resume policy, 8K direct-mapped cache)")
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "bench", "orig ISPI", "reord ISPI", "orig miss%", "reord miss%")

	for _, name := range []string{"gcc", "cfront", "groff", "li", "tex"} {
		prof, _ := specfetch.ProfileByName(name)
		bench, err := specfetch.BuildBenchmark(prof)
		if err != nil {
			log.Fatal(err)
		}
		reordered, err := synth.ReorderByProfile(bench, profileInsts, trainSeed)
		if err != nil {
			log.Fatal(err)
		}

		cfg := specfetch.DefaultConfig()
		cfg.Policy = specfetch.Resume

		orig, err := specfetch.RunBenchmark(bench, cfg, evalInsts, testSeed)
		if err != nil {
			log.Fatal(err)
		}
		reord, err := specfetch.RunBenchmark(reordered, cfg, evalInsts, testSeed)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8s %12.3f %12.3f %11.2f%% %11.2f%%\n",
			name, orig.TotalISPI(), reord.TotalISPI(), orig.MissRatioPct(), reord.MissRatioPct())
	}

	fmt.Println("\nHotness-only packing is a mixed bag on a direct-mapped cache — the")
	fmt.Println("reason later work placed functions by call-graph adjacency instead.")
}
