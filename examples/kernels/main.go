// Kernels demonstrates the microbenchmark generators: fully controlled
// workloads whose cache and branch behaviour is analytically known, used to
// study one mechanism at a time.
//
//   - LoopKernel isolates capacity behaviour: a loop body larger than the
//     cache misses every line every traversal (~12.5% per instruction), one
//     that fits misses only on the cold pass.
//   - CallKernel isolates call/return prediction.
//   - DispatchKernel isolates BTB target misprediction: a uniform N-way
//     indirect dispatch defeats a last-target BTB at rate (N-1)/N, and
//     shows how the fetch policies cope with the resulting wrong paths.
package main

import (
	"fmt"
	"log"

	"specfetch"
)

func main() {
	const insts = 300_000

	run := func(b *specfetch.Bench, pol specfetch.Policy, penalty int) specfetch.Result {
		cfg := specfetch.DefaultConfig()
		cfg.Policy = pol
		cfg.MissPenalty = penalty
		res, err := specfetch.RunBenchmark(b, cfg, insts, 1)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("LoopKernel: capacity behaviour (Resume policy, 8K cache)")
	small, err := specfetch.LoopKernel(1024, 100) // 4KB body: fits
	if err != nil {
		log.Fatal(err)
	}
	big, err := specfetch.LoopKernel(4096, 100) // 16KB body: thrashes
	if err != nil {
		log.Fatal(err)
	}
	rs, rb := run(small, specfetch.Resume, 5), run(big, specfetch.Resume, 5)
	fmt.Printf("  4KB body:  miss %.2f%% (cold only), ISPI %.3f\n", rs.MissRatioPct(), rs.TotalISPI())
	fmt.Printf("  16KB body: miss %.2f%% (~12.5%% analytic), ISPI %.3f\n\n", rb.MissRatioPct(), rb.TotalISPI())

	fmt.Println("DispatchKernel: the policies under constant BTB target mispredicts")
	disp, err := specfetch.DispatchKernel(8, 6)
	if err != nil {
		log.Fatal(err)
	}
	for _, pol := range specfetch.Policies() {
		res := run(disp, pol, 5)
		fmt.Printf("  %-12s ISPI %.3f (BTB target mispredicts: %d)\n",
			pol, res.TotalISPI(), res.Events.BTBMispredicts)
	}
	fmt.Println()

	fmt.Println("CallKernel: a deep stable call chain predicts almost perfectly")
	chain, err := specfetch.CallKernel(8, 12)
	if err != nil {
		log.Fatal(err)
	}
	res := run(chain, specfetch.Resume, 5)
	fmt.Printf("  depth 8: ISPI %.3f, %d misfetches (warmup), %d target mispredicts\n",
		res.TotalISPI(), res.Events.BTBMisfetches, res.Events.BTBMispredicts)
}
