// Quickstart: build one synthetic benchmark, run one policy, print the
// penalty breakdown. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"specfetch"
)

func main() {
	// A calibrated stand-in for the paper's gcc workload.
	bench, err := specfetch.BuildBenchmark(specfetch.GCC())
	if err != nil {
		log.Fatal(err)
	}

	// The paper's baseline machine: 4-wide, depth-4 speculation, 8K
	// direct-mapped I-cache, 5-cycle miss penalty.
	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Resume

	res, err := specfetch.RunBenchmark(bench, cfg, 1_000_000, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy %s over %d instructions: %.3f issue slots lost per instruction\n",
		cfg.Policy, res.Insts, res.TotalISPI())
	for _, c := range specfetch.Components() {
		fmt.Printf("  %-14s %.3f\n", c, res.ISPI(c))
	}
	fmt.Printf("I-cache miss ratio %.2f%%, memory traffic %d lines\n",
		res.MissRatioPct(), res.Traffic.Total())
}
