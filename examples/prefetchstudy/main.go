// Prefetchstudy examines the interaction between next-line prefetching and
// the fetch policies (the paper's §5.3): how much ISPI prefetching buys at
// short latencies, how it can hurt at long ones, and what it costs in
// memory traffic.
package main

import (
	"fmt"
	"log"

	"specfetch"
)

func main() {
	policies := []specfetch.Policy{specfetch.Oracle, specfetch.Resume, specfetch.Pessimistic}
	const insts = 1_000_000

	for _, benchName := range []string{"gcc", "fpppp"} {
		prof, _ := specfetch.ProfileByName(benchName)
		bench, err := specfetch.BuildBenchmark(prof)
		if err != nil {
			log.Fatal(err)
		}
		for _, penalty := range []int{5, 20} {
			fmt.Printf("%s @ %d-cycle miss penalty:\n", benchName, penalty)
			fmt.Printf("  %-12s %10s %10s %9s %14s\n", "policy", "ISPI", "ISPI+pref", "delta", "traffic ratio")
			for _, pol := range policies {
				base := run(bench, pol, penalty, false, insts)
				pref := run(bench, pol, penalty, true, insts)
				ratio := float64(pref.Traffic.Total()) / float64(base.Traffic.Total())
				delta := pref.TotalISPI() - base.TotalISPI()
				note := ""
				if delta > 0 {
					note = "  <- prefetching hurts"
				}
				fmt.Printf("  %-12s %10.3f %10.3f %+9.3f %14.2f%s\n",
					pol, base.TotalISPI(), pref.TotalISPI(), delta, ratio, note)
			}
			fmt.Println()
		}
	}
	fmt.Println("Expected shape (paper §5.3): prefetching helps everyone at 5 cycles and")
	fmt.Println("narrows the policy gaps; at 20 cycles the bus contention it creates can")
	fmt.Println("cost more than it saves, even for Oracle.")
}

func run(b *specfetch.Bench, pol specfetch.Policy, penalty int, pref bool, insts int64) specfetch.Result {
	cfg := specfetch.DefaultConfig()
	cfg.Policy = pol
	cfg.MissPenalty = penalty
	cfg.NextLinePrefetch = pref
	res, err := specfetch.RunBenchmark(b, cfg, insts, 1)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
