// Policycompare reproduces the paper's headline question on a single
// workload: which fetch policy wins, and how does the answer flip as the
// miss latency grows? It sweeps all five policies across miss penalties and
// reports where conservative policies overtake aggressive ones.
package main

import (
	"fmt"
	"log"

	"specfetch"
)

func main() {
	bench, err := specfetch.BuildBenchmark(specfetch.Groff())
	if err != nil {
		log.Fatal(err)
	}
	const insts = 1_000_000

	penalties := []int{3, 5, 10, 20, 40}
	policies := specfetch.Policies()

	fmt.Printf("Total penalty ISPI for %s vs miss latency (8K cache, depth 4):\n\n", bench.Profile().Name)
	fmt.Printf("%8s", "penalty")
	for _, p := range policies {
		fmt.Printf("  %11s", p)
	}
	fmt.Println()

	ispi := make(map[int]map[specfetch.Policy]float64)
	for _, pen := range penalties {
		ispi[pen] = map[specfetch.Policy]float64{}
		fmt.Printf("%7dc", pen)
		for _, pol := range policies {
			cfg := specfetch.DefaultConfig()
			cfg.Policy = pol
			cfg.MissPenalty = pen
			res, err := specfetch.RunBenchmark(bench, cfg, insts, 1)
			if err != nil {
				log.Fatal(err)
			}
			ispi[pen][pol] = res.TotalISPI()
			fmt.Printf("  %11.3f", res.TotalISPI())
		}
		fmt.Println()
	}

	fmt.Println()
	for _, pen := range penalties {
		opt, pess := ispi[pen][specfetch.Optimistic], ispi[pen][specfetch.Pessimistic]
		verdict := "aggressive (Optimistic) wins"
		if pess < opt {
			verdict = "conservative (Pessimistic) wins"
		}
		fmt.Printf("at %2d cycles: Optimistic %.3f vs Pessimistic %.3f -> %s\n",
			pen, opt, pess, verdict)
	}
	fmt.Println("\nThe paper's conclusion: Resume with a small latency, Pessimistic once")
	fmt.Println("the latency is large relative to the mispredict penalty.")
}
