package specfetch_test

import (
	"bytes"
	"io"
	"testing"

	"specfetch"
)

// TestPublicAPIEndToEnd drives the façade the way the README shows.
func TestPublicAPIEndToEnd(t *testing.T) {
	bench, err := specfetch.BuildBenchmark(specfetch.GCC())
	if err != nil {
		t.Fatal(err)
	}
	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Resume
	res, err := specfetch.RunBenchmark(bench, cfg, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts < 100_000 || res.TotalISPI() <= 0 {
		t.Errorf("result: %+v", res)
	}
	sum := 0.0
	for _, c := range specfetch.Components() {
		sum += res.ISPI(c)
	}
	if d := sum - res.TotalISPI(); d > 1e-9 || d < -1e-9 {
		t.Errorf("component ISPIs sum to %v, total %v", sum, res.TotalISPI())
	}
}

func TestPolicyParsing(t *testing.T) {
	for _, p := range specfetch.Policies() {
		got, err := specfetch.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := specfetch.ParsePolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestAdaptiveFacade drives the Adaptive meta-policy end to end through
// the façade: a pinned chooser must reproduce the static run bit for bit,
// and a real strategy must run (and report its switches) deterministically.
func TestAdaptiveFacade(t *testing.T) {
	if got, err := specfetch.ParsePolicy("adaptive"); err != nil || got != specfetch.Adaptive {
		t.Fatalf("ParsePolicy(adaptive) = %v, %v", got, err)
	}
	for _, p := range specfetch.Policies() {
		if p == specfetch.Adaptive {
			t.Fatal("Policies() lists the Adaptive meta-policy")
		}
	}
	if len(specfetch.ChooserStrategies()) == 0 {
		t.Fatal("no chooser strategies advertised")
	}
	if _, err := specfetch.NewChooser("bogus", 0); err == nil {
		t.Fatal("bogus strategy accepted")
	}

	bench, err := specfetch.BuildBenchmark(specfetch.GCC())
	if err != nil {
		t.Fatal(err)
	}
	static := specfetch.DefaultConfig()
	static.Policy = specfetch.Resume
	want, err := specfetch.RunBenchmark(bench, static, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}

	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Adaptive
	cfg.AdaptInterval = 10_000
	cfg.Chooser, err = specfetch.NewChooser("pinned:resume", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := specfetch.RunBenchmark(bench, cfg, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.PolicySwitches != 0 {
		t.Errorf("pinned chooser switched %d times", got.PolicySwitches)
	}
	got.Policy = want.Policy // the echoed policy is the one legitimate difference
	if got != want {
		t.Errorf("adaptive pinned to resume differs from static resume:\n%+v\n%+v", got, want)
	}

	cfg.Chooser, err = specfetch.NewChooser("tournament", 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := specfetch.RunBenchmark(bench, cfg, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.PolicySwitches == 0 {
		t.Error("tournament strategy never switched over its opening round")
	}
	cfg.Chooser, err = specfetch.NewChooser("tournament", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := specfetch.RunBenchmark(bench, cfg, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("adaptive runs with identical choosers differ:\n%+v\n%+v", a, b)
	}
}

func TestProfileLookup(t *testing.T) {
	if len(specfetch.Profiles()) != 13 {
		t.Errorf("profiles = %d, want 13", len(specfetch.Profiles()))
	}
	p, ok := specfetch.ProfileByName("cfront")
	if !ok || p.Name != "cfront" {
		t.Errorf("lookup: %+v, %v", p, ok)
	}
	if _, ok := specfetch.ProfileByName("zzz"); ok {
		t.Error("bogus profile found")
	}
}

func TestClassifyMissesAPI(t *testing.T) {
	bench, err := specfetch.BuildBenchmark(specfetch.Li())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := specfetch.ClassifyMisses(bench, specfetch.DefaultConfig(), 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Insts < 100_000 || cat.BothMiss < 0 {
		t.Errorf("categories: %+v", cat)
	}
}

// TestCustomProgramAndTrace exercises the hand-built path through the
// façade types.
func TestCustomProgramAndTrace(t *testing.T) {
	b, err := specfetch.NewImageBuilder(0)
	if err != nil {
		t.Fatal(err)
	}
	b.AppendPlain(7)
	b.Append(specfetch.Inst{Kind: specfetch.CondBranch, Target: 0})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	recs := []specfetch.TraceRecord{
		{Start: 0, N: 8, BrKind: specfetch.CondBranch, Taken: true, Target: 0},
		{Start: 0, N: 8, BrKind: specfetch.CondBranch, Taken: true, Target: 0},
	}
	res, err := specfetch.Run(specfetch.DefaultConfig(), img, specfetch.NewSliceTrace(recs), specfetch.NewPredictor())
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 16 {
		t.Errorf("insts = %d", res.Insts)
	}
}

// TestDeterministicResults: identical runs give identical measurements.
func TestDeterministicResults(t *testing.T) {
	bench, _ := specfetch.BuildBenchmark(specfetch.DBpp())
	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Optimistic
	a, err := specfetch.RunBenchmark(bench, cfg, 50_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := specfetch.RunBenchmark(bench, cfg, 50_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("results differ:\n%+v\n%+v", a, b)
	}
}

// TestFacadeIO exercises the file-format helpers exposed at the root:
// image serialization, trace writers, and the sniffing reader.
func TestFacadeIO(t *testing.T) {
	b, err := specfetch.NewImageBuilder(0)
	if err != nil {
		t.Fatal(err)
	}
	b.AppendPlain(3)
	b.Append(specfetch.Inst{Kind: specfetch.Jump, Target: 0})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var imgBuf bytes.Buffer
	if err := specfetch.WriteImage(&imgBuf, img); err != nil {
		t.Fatal(err)
	}
	img2, err := specfetch.ReadImage(&imgBuf)
	if err != nil {
		t.Fatal(err)
	}
	if img2.NumInsts() != img.NumInsts() {
		t.Fatalf("image round trip changed size: %d vs %d", img2.NumInsts(), img.NumInsts())
	}

	recs := []specfetch.TraceRecord{
		{Start: 0, N: 4, BrKind: specfetch.Jump, Taken: true, Target: 0},
		{Start: 0, N: 4, BrKind: specfetch.Jump, Taken: true, Target: 0},
	}
	for name, mk := range map[string]func(io.Writer) specfetch.TraceWriter{
		"binary": func(w io.Writer) specfetch.TraceWriter { return specfetch.NewBinaryTraceWriter(w) },
		"text":   func(w io.Writer) specfetch.TraceWriter { return specfetch.NewTextTraceWriter(w) },
	} {
		var buf bytes.Buffer
		w := mk(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatalf("%s write: %v", name, err)
			}
		}
		type flusher interface{ Flush() error }
		if err := w.(flusher).Flush(); err != nil {
			t.Fatal(err)
		}
		rd, err := specfetch.OpenTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rd.Next()
		if err != nil || got != recs[0] {
			t.Fatalf("%s read back: %+v, %v", name, got, err)
		}
	}

	// The whole loop drives the engine end to end from the reparsed image.
	res, err := specfetch.Run(specfetch.DefaultConfig(), img2,
		specfetch.NewSliceTrace(recs), specfetch.NewPredictor())
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 8 {
		t.Errorf("insts = %d", res.Insts)
	}
}

// TestFacadeKernels exercises the kernel constructors through the facade.
func TestFacadeKernels(t *testing.T) {
	for name, mk := range map[string]func() (*specfetch.Bench, error){
		"loop":     func() (*specfetch.Bench, error) { return specfetch.LoopKernel(64, 8) },
		"call":     func() (*specfetch.Bench, error) { return specfetch.CallKernel(3, 8) },
		"dispatch": func() (*specfetch.Bench, error) { return specfetch.DispatchKernel(4, 6) },
	} {
		k, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := specfetch.RunBenchmark(k, specfetch.DefaultConfig(), 20_000, 1)
		if err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		if res.Insts < 20_000 {
			t.Errorf("%s: insts = %d", name, res.Insts)
		}
	}
}
