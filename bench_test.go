// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design choices
// DESIGN.md calls out and a raw engine-throughput bench.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each table/figure bench regenerates its artifact once per iteration and
// reports the rendered output size; use cmd/paperbench for the full-budget,
// human-readable renditions.
package specfetch_test

import (
	"testing"

	"specfetch"
	"specfetch/internal/experiments"
)

// benchOpt keeps the per-iteration cost of the table benches moderate while
// still exercising every benchmark and configuration the paper uses.
func benchOpt() experiments.Options {
	return experiments.Options{Insts: 200_000}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table5(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table6(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table7(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(fig.String())))
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(fig.String())))
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(fig.String())))
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(fig.String())))
	}
}

// BenchmarkEngineThroughput measures raw simulation speed in simulated
// instructions per second (reported as bytes/op = instructions/op).
func BenchmarkEngineThroughput(b *testing.B) {
	bench, err := specfetch.BuildBenchmark(specfetch.GCC())
	if err != nil {
		b.Fatal(err)
	}
	const insts = 1_000_000
	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Resume
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := specfetch.RunBenchmark(bench, cfg, insts, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(res.Insts)
	}
}

// BenchmarkEngineNilProbe is BenchmarkEngineThroughput with the probe field
// explicitly nil — the shipped default. Comparing the two guards the
// zero-overhead claim of the observability layer: every probe hook is one
// predictable nil check, so this must stay within noise (<2%) of
// BenchmarkEngineThroughput on the pre-instrumentation engine.
func BenchmarkEngineNilProbe(b *testing.B) {
	bench, err := specfetch.BuildBenchmark(specfetch.GCC())
	if err != nil {
		b.Fatal(err)
	}
	const insts = 1_000_000
	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Resume
	cfg.Probe = nil
	cfg.SampleInterval = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := specfetch.RunBenchmark(bench, cfg, insts, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(res.Insts)
	}
}

// BenchmarkEngineRecorderProbe measures the instrumented path: a ring-buffer
// event recorder plus interval sampler attached, quantifying the cost of
// full event capture relative to the nil-probe baseline.
func BenchmarkEngineRecorderProbe(b *testing.B) {
	bench, err := specfetch.BuildBenchmark(specfetch.GCC())
	if err != nil {
		b.Fatal(err)
	}
	const insts = 1_000_000
	cfg := specfetch.DefaultConfig()
	cfg.Policy = specfetch.Resume
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := specfetch.NewEventRecorder(1 << 16)
		samp := specfetch.NewIntervalSampler()
		cfg.Probe = specfetch.MultiProbe(rec, samp)
		cfg.SampleInterval = 10_000
		res, err := specfetch.RunBenchmark(bench, cfg, insts, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(res.Insts)
	}
}

// BenchmarkPolicies times each policy on the same workload so relative
// simulation cost is visible.
func BenchmarkPolicies(b *testing.B) {
	bench, err := specfetch.BuildBenchmark(specfetch.Groff())
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range specfetch.Policies() {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			cfg := specfetch.DefaultConfig()
			cfg.Policy = pol
			for i := 0; i < b.N; i++ {
				res, err := specfetch.RunBenchmark(bench, cfg, 300_000, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(res.Insts)
			}
		})
	}
}

// BenchmarkTraceGeneration measures the synthetic walker's speed.
func BenchmarkTraceGeneration(b *testing.B) {
	bench, err := specfetch.BuildBenchmark(specfetch.Cfront())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := bench.NewReader(uint64(i), 500_000)
		var insts int64
		for {
			rec, err := rd.Next()
			if err != nil {
				break
			}
			insts += int64(rec.N)
		}
		b.SetBytes(insts)
	}
}

// Ablation benches: one per design-choice study in DESIGN.md §6.

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationPrefetch(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationBTBCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationBTBCoupling(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationAssociativity(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationFetchWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationFetchWidth(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationPipelinedMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationPipelinedMemory(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationRAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationRAS(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationVictimCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationVictimCache(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationMSHR(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationCodeLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCodeLayout(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

// BenchmarkLatencySweep regenerates the miss-latency sweep with crossover
// detection — the quantitative form of the paper's summary claim.
func BenchmarkLatencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.LatencySweep(experiments.Options{Insts: 100_000}, []int{3, 5, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

// BenchmarkSeedSensitivity measures the seed-noise analysis.
func BenchmarkSeedSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.SeedSensitivity(experiments.Options{Insts: 100_000}, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationL2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationL2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

func BenchmarkAblationContextSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationContextSwitch(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}

// BenchmarkModernStudy measures the datacenter-footprint study.
func BenchmarkModernStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.ModernStudy(experiments.Options{Insts: 150_000})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tab.String())))
	}
}
