module specfetch

go 1.22
