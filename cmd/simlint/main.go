// Command simlint runs specfetch's project-specific static analyzers over
// the module: determinism (no wall clock / global rand / map-ordered
// output in simulator packages), probeguard (nil-guarded probe hooks),
// enumswitch (exhaustive switches over module enums), errcheck (no
// discarded errors in codecs and CLI I/O), sweeplint (structured logging
// in the distributed-sweep layer), and unitcheck (cycle and issue-slot
// quantities never mix or revert to raw integers without an explicit
// conversion). It is a hard-fail CI gate.
//
// Packages are linted as a build-tag matrix: once under the default tag
// set and once more per custom build tag found in their files, so code
// gated behind //go:build tags is analyzed too. Findings are merged and
// deduplicated across the variants.
//
// Usage:
//
//	simlint ./...                      # whole module (testdata skipped)
//	simlint ./internal/core            # one package
//	simlint -only determinism ./...    # a subset of analyzers
//	simlint -json ./...                # machine-readable findings for CI
//	simlint -list                      # describe the analyzers
//
// With -json, findings are written to stdout as one JSON array of
// {file, line, col, analyzer, message} objects (the empty array when
// clean), so CI can annotate them; exit status is unchanged.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"specfetch/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			emit(fmt.Sprintf("%-12s %s", a.Name, a.Doc))
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	variants, err := analysis.LoadMatrix(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	loadOK := true
	for _, v := range variants {
		for _, pkg := range v.Pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "simlint: %s (%s): %v\n", pkg.PkgPath, v.Label(), terr)
				loadOK = false
			}
		}
	}
	if !loadOK {
		os.Exit(2)
	}

	diags := analysis.RunMatrix(variants, analyzers)
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags, cwd); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: stdout: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			emit(d.String(cwd))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// emit writes one line to stdout, exiting non-zero when stdout is broken
// (a truncated findings list must not read as a clean run).
func emit(line string) {
	if _, err := fmt.Println(line); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: stdout: %v\n", err)
		os.Exit(2)
	}
}
