// Command intervals renders the oracle-selector report from a window-series
// JSONL file — the wire form written by `paperbench -oracle -intervals-out`
// or assembled from distsweep job results with capture_windows set. It
// regroups the per-policy window series by benchmark and miss penalty,
// recomputes the per-window winners, and prints the oracle-vs-static
// crossover table plus the per-window winner map. Reading the JSONL back
// renders the exact bytes the producing sweep rendered.
//
// Usage:
//
//	intervals intervals.jsonl
//	paperbench -oracle -quiet -intervals-out /dev/stdout >/dev/null | intervals
//	intervals -csv intervals.jsonl
//	intervals -winners-only intervals.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"specfetch/internal/experiments"
)

func main() {
	csv := flag.Bool("csv", false, "emit the crossover table as CSV instead of aligned text")
	winnersOnly := flag.Bool("winners-only", false, "print only the per-window winner map")
	flag.Parse()

	var in io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
		// read the JSONL from stdin
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }() // read side; nothing to lose on close
		in = f
	default:
		fmt.Fprintln(os.Stderr, "usage: intervals [-csv] [-winners-only] [file.jsonl]")
		os.Exit(2)
	}

	d, err := experiments.ReadOracleJSONL(in)
	if err != nil {
		fatal(err)
	}
	if !*winnersOnly {
		t := d.CrossoverTable()
		if *csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		if _, err := fmt.Println(); err != nil {
			fatal(err)
		}
	}
	if _, err := fmt.Print(d.WinnerMap()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "intervals: %v\n", err)
	os.Exit(1)
}
