// Command sweepworker is the long-running worker daemon of the distributed
// sweep executor: it accepts batches of serialized simulation cells over
// HTTP/JSON (POST /v1/run), runs each through the exact simulate path the
// in-process executor uses — sampled accounting auditor attached when the
// spec asks for it — and returns each result together with its audit
// identity, the shard's self-check the coordinator verifies before
// accepting the batch.
//
// Endpoints:
//
//	GET  /healthz  liveness + wire version + jobs completed
//	POST /v1/run   run one batch (distsweep wire format, versioned)
//	GET  /metrics  Prometheus text: worker + campaign counters
//
// The daemon is stateless across batches apart from a memoized bench cache
// (profiles are deterministic recipes, so rebuilding is pure); killing a
// worker mid-sweep never changes sweep output — the coordinator re-runs
// its batches elsewhere.
//
// Usage:
//
//	sweepworker -addr :8477
//	sweepworker -addr 127.0.0.1:0 -quiet   (port 0 picks a free port)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specfetch/internal/distsweep"
	"specfetch/internal/experiments"
	"specfetch/internal/obs"
	"specfetch/internal/sweeplog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main minus the process exit, for tests. The daemon's bound
// address is announced on stderr ("sweepworker: listening on ..."), which
// is how tests and scripts using -addr :0 learn the port.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8477", "listen address (host:port; port 0 picks a free port)")
	maxBatch := fs.Int("max-batch", 4096, "largest accepted batch, in jobs")
	quiet := fs.Bool("quiet", false, "suppress per-simulation progress on stderr")
	sweepLog := fs.String("sweep-log", "", "persist this worker's structured batch-execution log (JSONL, keyed by the coordinator's campaign) to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		_, _ = fmt.Fprintln(stderr, "usage: sweepworker [-addr host:port] [-max-batch N] [-quiet] [-sweep-log file]")
		return 2
	}

	var logger *sweeplog.Logger
	if *sweepLog != "" {
		f, err := os.Create(*sweepLog)
		if err != nil {
			_, _ = fmt.Fprintf(stderr, "sweepworker: sweep-log: %v\n", err)
			return 1
		}
		defer func() {
			if err := logger.WriteErr(); err != nil {
				_, _ = fmt.Fprintf(stderr, "sweepworker: sweep-log: %v\n", err)
			}
			if err := f.Close(); err != nil {
				_, _ = fmt.Fprintf(stderr, "sweepworker: sweep-log: %v\n", err)
			}
		}()
		logger = sweeplog.New(sweeplog.Options{W: f})
	}

	reg := obs.NewRegistry()
	runner := experiments.NewJobRunner(reg)
	if !*quiet {
		runner.Progress = func(msg string) {
			_, _ = fmt.Fprintln(stderr, "sweepworker: "+msg)
		}
	}
	srv := distsweep.NewServer(distsweep.ServerOptions{
		Runner:       runner.Run,
		Metrics:      reg,
		Log:          logger,
		MaxBatchJobs: *maxBatch,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "sweepworker: %v\n", err)
		return 1
	}
	_, _ = fmt.Fprintf(stderr, "sweepworker: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		_, _ = fmt.Fprintf(stderr, "sweepworker: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			_, _ = fmt.Fprintf(stderr, "sweepworker: shutdown: %v\n", err)
		}
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_, _ = fmt.Fprintf(stderr, "sweepworker: %v\n", err)
		return 1
	}
	<-done
	return 0
}
