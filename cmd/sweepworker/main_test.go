package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"specfetch/internal/distsweep"
	"specfetch/internal/experiments"
	"specfetch/internal/obs"
	"specfetch/internal/sweeplog"
)

// TestMain doubles as the worker executable: with the helper env var set,
// the test binary runs the real daemon instead of the test suite, so the
// cross-process tests below spawn genuine separate worker processes
// running the production run() path.
func TestMain(m *testing.M) {
	if os.Getenv("SWEEPWORKER_HELPER") == "1" {
		os.Exit(run([]string{"-addr", "127.0.0.1:0", "-quiet"}, os.Stderr))
	}
	os.Exit(m.Run())
}

// spawnWorker launches this test binary as a worker daemon process and
// returns its base URL and the process handle. The worker is killed at
// test cleanup (if still alive).
func spawnWorker(t *testing.T) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SWEEPWORKER_HELPER=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker: %v", err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	// The daemon announces its bound address as its first stderr line.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if _, ok := strings.CutPrefix(line, "sweepworker: listening on "); ok {
			addr = strings.TrimPrefix(line, "sweepworker: listening on ")
			break
		}
	}
	if addr == "" {
		t.Fatalf("worker never announced its address (scan err: %v)", sc.Err())
	}
	// Keep draining stderr so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return "http://" + addr, cmd
}

// jobsDone polls a worker's /healthz for its completed-job count.
func jobsDone(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return -1
	}
	defer func() { _ = resp.Body.Close() }()
	var h struct {
		JobsDone int64 `json:"jobs_done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return -1
	}
	return h.JobsDone
}

// renderSweep builds the differential targets: Table 6 and Figure 1.
func renderSweep(t *testing.T, opt experiments.Options) string {
	t.Helper()
	tab, err := experiments.Table6(opt)
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	fig, err := experiments.Figure1(opt)
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	return tab.String() + "\n" + fig.String()
}

var diffBase = experiments.Options{Insts: 50_000, Benchmarks: []string{"gcc", "groff"}}

// TestCrossProcessBytesIdentical is the tentpole's headline proof at full
// strength: Table 6 + Figure 1 render byte-identically from (a) the
// serial in-process sweep, (b) a 4-worker in-process pool, and (c) a
// sweep dispatched to 2 real spawned worker processes. Run under -race in
// CI.
func TestCrossProcessBytesIdentical(t *testing.T) {
	serial := diffBase
	serial.Workers = 1
	want := renderSweep(t, serial)

	pooled := diffBase
	pooled.Workers = 4
	if got := renderSweep(t, pooled); got != want {
		t.Error("Workers=4 in-process sweep renders differently from serial")
	}

	u1, _ := spawnWorker(t)
	u2, _ := spawnWorker(t)
	remote := diffBase
	remote.Remote = []string{u1, u2}
	remote.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
		Workers:   remote.Remote,
		BatchSize: 3,
	})
	if got := renderSweep(t, remote); got != want {
		t.Error("2-process distributed sweep renders differently from serial")
	}
	// Both processes actually participated: the work did cross process
	// boundaries rather than collapsing onto one daemon.
	if jobsDone(t, u1) == 0 || jobsDone(t, u2) == 0 {
		t.Errorf("worker participation: %d + %d jobs; want both > 0",
			jobsDone(t, u1), jobsDone(t, u2))
	}
}

// TestCrossProcessKillWorkerMidSweep: killing one of two worker processes
// mid-sweep exercises eviction + re-dispatch, and the rendered bytes are
// unchanged.
func TestCrossProcessKillWorkerMidSweep(t *testing.T) {
	serial := diffBase
	serial.Workers = 1
	want := renderSweep(t, serial)

	u1, _ := spawnWorker(t)
	u2, cmd2 := spawnWorker(t)

	// Kill the second worker as soon as it has completed at least one job,
	// guaranteeing the fleet loses a participant mid-sweep.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for {
			if n := jobsDone(t, u2); n > 0 || n == -1 {
				_ = cmd2.Process.Kill()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	remote := diffBase
	remote.Remote = []string{u1, u2}
	remote.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
		Workers:     remote.Remote,
		BatchSize:   2,
		Retries:     4,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	got := renderSweep(t, remote)
	<-killed
	if got != want {
		t.Error("sweep bytes changed after a worker was killed mid-sweep")
	}
	if len(remote.Dispatch.Alive()) == 2 {
		t.Log("note: killed worker was never evicted (sweep may have finished first); bytes still identical")
	}
}

// TestTelemetryNeutralDifferential is the fleet-telemetry headline proof:
// Table 6 + Figure 1 render byte-identically with the full telemetry stack
// (metrics registry, span tracer, sweep decision log) enabled vs. disabled,
// at Workers 1 and 4 in-process and against a real spawned worker process.
// Run under -race in CI.
func TestTelemetryNeutralDifferential(t *testing.T) {
	plain := diffBase
	plain.Workers = 1
	want := renderSweep(t, plain)

	for _, workers := range []int{1, 4} {
		loud := diffBase
		loud.Workers = workers
		loud.Metrics = obs.NewRegistry()
		loud.Spans = obs.NewSpanTracer()
		loud.SweepLog = sweeplog.New(sweeplog.Options{})
		if got := renderSweep(t, loud); got != want {
			t.Errorf("Workers=%d sweep bytes change with telemetry enabled", workers)
		}
		if loud.Spans.Len() == 0 {
			t.Errorf("Workers=%d: telemetry was supposedly on but recorded no spans", workers)
		}
	}

	u1, _ := spawnWorker(t)
	remote := diffBase
	remote.Remote = []string{u1}
	log := sweeplog.New(sweeplog.Options{})
	spans := obs.NewSpanTracer()
	remote.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
		Workers:   remote.Remote,
		BatchSize: 3,
		Metrics:   obs.NewRegistry(),
		Spans:     spans,
		Log:       log,
		Campaign:  "difftest",
	})
	if got := renderSweep(t, remote); got != want {
		t.Error("distributed sweep bytes change with telemetry enabled")
	}
	if len(logEvents(log, "dispatch")) == 0 {
		t.Error("decision log recorded no dispatches")
	}
	if fleet := remote.Dispatch.FleetSpans(); len(fleet) == 0 {
		t.Error("coordinator collected no fleet spans from the worker process")
	}
}

// logEvents filters a sweep log's flight recorder down to one event type.
func logEvents(l *sweeplog.Logger, ev string) []string {
	var out []string
	for _, line := range l.Recent() {
		if strings.Contains(line, `"ev":"`+ev+`"`) {
			out = append(out, line)
		}
	}
	return out
}

// TestFleetTracePerProcessTracks: with two spawned worker processes, the
// coordinator's fleet spans carry two distinct pids (neither ours), and the
// combined Perfetto trace renders one track per worker process.
func TestFleetTracePerProcessTracks(t *testing.T) {
	u1, _ := spawnWorker(t)
	u2, _ := spawnWorker(t)

	spans := obs.NewSpanTracer()
	remote := diffBase
	remote.Remote = []string{u1, u2}
	remote.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
		Workers:   remote.Remote,
		BatchSize: 2,
		Spans:     spans,
	})
	renderSweep(t, remote)

	fleet := remote.Dispatch.FleetSpans()
	if len(fleet) != 2 {
		t.Fatalf("fleet processes = %d, want 2 (both daemons participated)", len(fleet))
	}
	self := os.Getpid()
	names := map[string]bool{}
	for _, p := range fleet {
		if names[p.Name] {
			t.Errorf("duplicate fleet track %q", p.Name)
		}
		names[p.Name] = true
		if strings.Contains(p.Name, "(pid "+strconv.Itoa(self)+")") {
			t.Errorf("fleet track %q carries the coordinator's own pid", p.Name)
		}
		if len(p.Spans) == 0 {
			t.Errorf("fleet track %q has no spans", p.Name)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteCombinedTrace(&buf, nil, spans.Spans(), fleet...); err != nil {
		t.Fatalf("WriteCombinedTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("combined fleet trace is not valid JSON: %v", err)
	}
	fleetPids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if pid, _ := ev["pid"].(float64); pid >= 3 {
			fleetPids[pid] = true
		}
	}
	if len(fleetPids) != 2 {
		t.Errorf("fleet pid tracks in trace = %v, want 2", fleetPids)
	}
}

// TestRunUsage covers the daemon's flag-error exit path.
func TestRunUsage(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"-no-such-flag"}, &sb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, &sb); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &sb); code != 1 {
		t.Errorf("unbindable address: exit %d, want 1", code)
	}
	if !strings.Contains(sb.String(), "sweepworker:") {
		t.Error("error paths printed no diagnostics")
	}
}

// TestHelperSmoke double-checks the helper re-exec contract: a spawned
// worker answers /healthz with the current wire version.
func TestHelperSmoke(t *testing.T) {
	url, _ := spawnWorker(t)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var h struct {
		Status  string `json:"status"`
		Version int    `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" || h.Version != distsweep.WireVersion {
		t.Errorf("healthz = %+v, want ok/version %d", h, distsweep.WireVersion)
	}
}
