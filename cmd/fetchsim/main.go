// Command fetchsim runs one fetch-policy simulation and prints the ISPI
// breakdown, cache behaviour, and memory traffic.
//
// Usage:
//
//	fetchsim -bench gcc -policy resume -insts 2000000
//	fetchsim -bench groff -policy pessimistic -penalty 20 -prefetch
//	fetchsim -bench li -policy optimistic -cache 32768 -depth 2
//	fetchsim -image prog.img -trace prog.trc -policy resume
package main

import (
	"flag"
	"fmt"
	"os"

	"specfetch"
)

func main() {
	var (
		benchName = flag.String("bench", "gcc", "benchmark profile name (see -list)")
		imagePath = flag.String("image", "", "static image file (with -trace, replaces -bench)")
		tracePath = flag.String("trace", "", "trace file to replay against -image")
		policyStr = flag.String("policy", "resume", "fetch policy: oracle|optimistic|resume|pessimistic|decode")
		insts     = flag.Int64("insts", 2_000_000, "correct-path instructions to simulate")
		penalty   = flag.Int("penalty", 5, "I-cache miss penalty in cycles")
		cacheSz   = flag.Int("cache", 8*1024, "I-cache size in bytes")
		depth     = flag.Int("depth", 4, "speculation depth (max unresolved conditional branches)")
		width     = flag.Int("width", 4, "fetch width (instructions per cycle)")
		prefetch  = flag.Bool("prefetch", false, "enable next-line prefetching")
		seed      = flag.Uint64("seed", 1, "dynamic trace stream seed")
		list      = flag.Bool("list", false, "list benchmark profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range specfetch.Profiles() {
			fmt.Printf("%-8s %-8s %s\n", p.Name, p.Lang, p.Description)
		}
		return
	}

	pol, err := specfetch.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetchsim: %v\n", err)
		os.Exit(1)
	}

	cfg := specfetch.DefaultConfig()
	cfg.Policy = pol
	cfg.MissPenalty = *penalty
	cfg.ICache.SizeBytes = *cacheSz
	cfg.MaxUnresolved = *depth
	cfg.FetchWidth = *width
	cfg.NextLinePrefetch = *prefetch

	var res specfetch.Result
	benchLabel := ""
	if *imagePath != "" || *tracePath != "" {
		if *imagePath == "" || *tracePath == "" {
			fmt.Fprintln(os.Stderr, "fetchsim: -image and -trace must be given together")
			os.Exit(1)
		}
		res, err = runFromFiles(cfg, *imagePath, *tracePath, *insts)
		benchLabel = fmt.Sprintf("%s + %s", *imagePath, *tracePath)
	} else {
		prof, ok := specfetch.ProfileByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "fetchsim: unknown benchmark %q (try -list)\n", *benchName)
			os.Exit(1)
		}
		var bench *specfetch.Bench
		bench, err = specfetch.BuildBenchmark(prof)
		if err == nil {
			res, err = specfetch.RunBenchmark(bench, cfg, *insts, *seed)
		}
		benchLabel = fmt.Sprintf("%s (%s)", prof.Name, prof.Lang)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetchsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark    %s\n", benchLabel)
	fmt.Printf("machine      %d-wide, depth %d, %dB I-cache, %d-cycle miss penalty, prefetch=%v\n",
		cfg.FetchWidth, cfg.MaxUnresolved, cfg.ICache.SizeBytes, cfg.MissPenalty, cfg.NextLinePrefetch)
	fmt.Printf("policy       %s\n", pol)
	fmt.Printf("instructions %d  cycles %d  IPC %.3f\n", res.Insts, res.Cycles, res.IPC())
	fmt.Printf("total ISPI   %.4f\n", res.TotalISPI())
	for _, c := range specfetch.Components() {
		fmt.Printf("  %-14s %.4f\n", c, res.ISPI(c))
	}
	fmt.Printf("right-path miss ratio  %.3f%% (%d misses / %d refs)\n",
		res.MissRatioPct(), res.RightPathMisses, res.RightPathAccesses)
	fmt.Printf("wrong-path             %d insts fetched, %d misses\n",
		res.WrongPathInsts, res.WrongPathMisses)
	fmt.Printf("memory traffic         %d lines (%d demand, %d wrong-path, %d prefetch)\n",
		res.Traffic.Total(), res.Traffic.DemandFills, res.Traffic.WrongPathFills, res.Traffic.PrefetchFills)
	fmt.Printf("branch events          %d mispredicts, %d misfetches, %d BTB target mispredicts\n",
		res.Events.PHTMispredicts, res.Events.BTBMisfetches, res.Events.BTBMispredicts)
}

// runFromFiles replays a trace file against a serialized image.
func runFromFiles(cfg specfetch.Config, imagePath, tracePath string, insts int64) (specfetch.Result, error) {
	imgF, err := os.Open(imagePath)
	if err != nil {
		return specfetch.Result{}, err
	}
	defer imgF.Close()
	img, err := specfetch.ReadImage(imgF)
	if err != nil {
		return specfetch.Result{}, err
	}
	trcF, err := os.Open(tracePath)
	if err != nil {
		return specfetch.Result{}, err
	}
	defer trcF.Close()
	rd, err := specfetch.OpenTrace(trcF)
	if err != nil {
		return specfetch.Result{}, err
	}
	cfg.MaxInsts = insts
	return specfetch.Run(cfg, img, rd, specfetch.NewPredictor())
}
