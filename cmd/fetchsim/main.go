// Command fetchsim runs one fetch-policy simulation and prints the ISPI
// breakdown, cache behaviour, and memory traffic. With the observability
// flags it additionally records the run: -events dumps the probe event
// stream as JSONL, -timeline renders a Chrome trace-event (Perfetto)
// timeline with interval counter tracks (ISPI, miss rate, bus occupancy,
// per-component stalls) merged in, and -series samples an interval
// time-series of ISPI, miss rate, and bus occupancy.
//
// Usage:
//
//	fetchsim -bench gcc -policy resume -insts 2000000
//	fetchsim -bench groff -policy pessimistic -penalty 20 -prefetch
//	fetchsim -bench porky -policy adaptive -strategy phase:6 -adapt-interval 2500 -flush 15000
//	fetchsim -bench li -policy optimistic -cache 32768 -depth 2
//	fetchsim -image prog.img -trace prog.trc -policy resume
//	fetchsim -bench gcc -policy resume -timeline out.json -series ispi.csv
//	fetchsim -bench gcc -policy resume -audit-sample 16
//	fetchsim -bench gcc -policy resume -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"specfetch"
)

func main() {
	var (
		benchName = flag.String("bench", "gcc", "benchmark profile name (see -list)")
		imagePath = flag.String("image", "", "static image file (with -trace, replaces -bench)")
		tracePath = flag.String("trace", "", "trace file to replay against -image")
		policyStr = flag.String("policy", "resume", "fetch policy: oracle|optimistic|resume|pessimistic|decode|adaptive")
		insts     = flag.Int64("insts", 2_000_000, "correct-path instructions to simulate")
		penalty   = flag.Int("penalty", 5, "I-cache miss penalty in cycles")
		cacheSz   = flag.Int("cache", 8*1024, "I-cache size in bytes")
		depth     = flag.Int("depth", 4, "speculation depth (max unresolved conditional branches)")
		width     = flag.Int("width", 4, "fetch width (instructions per cycle)")
		prefetch  = flag.Bool("prefetch", false, "enable next-line prefetching")
		seed      = flag.Uint64("seed", 1, "dynamic trace stream seed")
		stepMode  = flag.String("stepmode", "skipahead", "engine core: skipahead (next-event, default) or reference (cycle-by-cycle); results are bit-identical")
		list      = flag.Bool("list", false, "list benchmark profiles and exit")

		strategy  = flag.String("strategy", "tournament", "chooser strategy for -policy adaptive: tournament|ucb|egreedy|phase:<period>|pinned:<policy>")
		adaptIv   = flag.Int64("adapt-interval", 10_000, "decision-window width in instructions for -policy adaptive")
		adaptSeed = flag.Uint64("adapt-seed", 0, "seed for randomized adaptive strategies (egreedy)")
		flushIv   = flag.Int64("flush", 0, "invalidate the I-cache every N correct-path instructions, modeling periodic context switches (0 = never)")

		eventsPath   = flag.String("events", "", "write the probe event stream as JSONL to this file")
		timelinePath = flag.String("timeline", "", "write a Chrome trace-event (Perfetto) timeline to this file")
		seriesPath   = flag.String("series", "", "write the interval time-series to this file (.json extension selects JSON, anything else CSV)")
		interval     = flag.Int64("interval", 10_000, "instructions per -series sample and -timeline counter window")
		eventCap     = flag.Int("event-cap", 1<<20, "ring-buffer capacity for -events/-timeline; oldest events drop beyond it")
		audit        = flag.Bool("audit", false, "attach the runtime accounting auditor; any invariant violation aborts with a cycle-stamped diagnosis")
		auditSample  = flag.Int("audit-sample", 0, "audit only every Nth pipeline window (1 = every window, implies -audit); the final identities stay exact at any rate")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf      = flag.String("memprofile", "", "write a heap profile to this file on successful exit")
	)
	flag.Parse()

	// Host-side profiling of the simulator itself. Profiles are written when
	// the run completes; error paths exit without them, like `go test`.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fetchsim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fetchsim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "fetchsim: cpuprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fetchsim: memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fetchsim: memprofile: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "fetchsim: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, p := range specfetch.Profiles() {
			pf("%-8s %-8s %s\n", p.Name, p.Lang, p.Description)
		}
		return
	}

	pol, err := specfetch.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetchsim: %v\n", err)
		os.Exit(1)
	}
	mode, err := specfetch.ParseStepMode(*stepMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetchsim: %v\n", err)
		os.Exit(1)
	}

	cfg := specfetch.DefaultConfig()
	cfg.Policy = pol
	cfg.MissPenalty = *penalty
	cfg.ICache.SizeBytes = *cacheSz
	cfg.MaxUnresolved = *depth
	cfg.FetchWidth = *width
	cfg.NextLinePrefetch = *prefetch
	cfg.StepMode = mode
	cfg.FlushInterval = *flushIv
	if pol == specfetch.Adaptive {
		ch, err := specfetch.NewChooser(*strategy, *adaptSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fetchsim: %v\n", err)
			os.Exit(1)
		}
		cfg.Chooser = ch
		cfg.AdaptStrategy = *strategy
		cfg.AdaptInterval = *adaptIv
		cfg.AdaptSeed = *adaptSeed
	}

	// Observability: attach a recorder and/or sampler only when asked for,
	// so the default run keeps the nil-probe fast path.
	var rec *specfetch.EventRecorder
	var samp *specfetch.IntervalSampler
	var win *specfetch.WindowSeries
	var probes []specfetch.Probe
	if *eventsPath != "" || *timelinePath != "" {
		rec = specfetch.NewEventRecorder(*eventCap)
		probes = append(probes, rec)
	}
	if *timelinePath != "" {
		win = specfetch.NewWindowSeries()
		probes = append(probes, win)
		cfg.SampleInterval = *interval
	}
	if *seriesPath != "" {
		samp = specfetch.NewIntervalSampler()
		probes = append(probes, samp)
		cfg.SampleInterval = *interval
	}
	var aud *specfetch.AuditProbe
	if *audit || *auditSample > 0 {
		aud = specfetch.NewAuditProbe(specfetch.AuditOptions{
			Width:           cfg.FetchWidth,
			AllowBusOverlap: cfg.PipelinedMemory,
			SampleEvery:     *auditSample,
		})
		probes = append(probes, aud)
		// A streaming violation surfaces as a panic carrying *AuditError;
		// turn it into a clean diagnostic instead of a stack trace.
		defer func() {
			if r := recover(); r != nil {
				ae, ok := r.(*specfetch.AuditError)
				if !ok {
					panic(r)
				}
				fmt.Fprintf(os.Stderr, "fetchsim: audit: %v\n", ae)
				os.Exit(1)
			}
		}()
	}
	cfg.Probe = specfetch.MultiProbe(probes...)

	var res specfetch.Result
	benchLabel := ""
	if *imagePath != "" || *tracePath != "" {
		if *imagePath == "" || *tracePath == "" {
			fmt.Fprintln(os.Stderr, "fetchsim: -image and -trace must be given together")
			os.Exit(1)
		}
		res, err = runFromFiles(cfg, *imagePath, *tracePath, *insts)
		benchLabel = fmt.Sprintf("%s + %s", *imagePath, *tracePath)
	} else {
		prof, ok := specfetch.ProfileByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "fetchsim: unknown benchmark %q (try -list)\n", *benchName)
			os.Exit(1)
		}
		var bench *specfetch.Bench
		bench, err = specfetch.BuildBenchmark(prof)
		if err == nil {
			res, err = specfetch.RunBenchmark(bench, cfg, *insts, *seed)
		}
		benchLabel = fmt.Sprintf("%s (%s)", prof.Name, prof.Lang)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetchsim: %v\n", err)
		os.Exit(1)
	}

	pf("benchmark    %s\n", benchLabel)
	pf("machine      %d-wide, depth %d, %dB I-cache, %d-cycle miss penalty, prefetch=%v\n",
		cfg.FetchWidth, cfg.MaxUnresolved, cfg.ICache.SizeBytes, cfg.MissPenalty, cfg.NextLinePrefetch)
	if pol == specfetch.Adaptive {
		pf("policy       %s (strategy %s, window %d insts, %d switches)\n",
			pol, *strategy, *adaptIv, res.PolicySwitches)
	} else {
		pf("policy       %s\n", pol)
	}
	pf("instructions %d  cycles %d  IPC %.3f\n", res.Insts, res.Cycles, res.IPC())
	pf("total ISPI   %.4f\n", res.TotalISPI())
	for _, c := range specfetch.Components() {
		pf("  %-14s %.4f\n", c, res.ISPI(c))
	}
	pf("right-path miss ratio  %.3f%% (%d misses / %d refs)\n",
		res.MissRatioPct(), res.RightPathMisses, res.RightPathAccesses)
	pf("wrong-path             %d insts fetched, %d misses\n",
		res.WrongPathInsts, res.WrongPathMisses)
	pf("memory traffic         %d lines (%d demand, %d wrong-path, %d prefetch)\n",
		res.Traffic.Total(), res.Traffic.DemandFills, res.Traffic.WrongPathFills, res.Traffic.PrefetchFills)
	pf("branch events          %d mispredicts, %d misfetches, %d BTB target mispredicts\n",
		res.Events.PHTMispredicts, res.Events.BTBMisfetches, res.Events.BTBMispredicts)

	if aud != nil {
		if err := aud.Verify(res.AuditFinal()); err != nil {
			fmt.Fprintf(os.Stderr, "fetchsim: audit: %v\n", err)
			os.Exit(1)
		}
		if *auditSample > 1 {
			pf("audit                  ok (sampled 1-in-%d windows; final identities verified exactly)\n", *auditSample)
		} else {
			pf("audit                  ok (all accounting identities verified)\n")
		}
	}

	if err := writeArtifacts(rec, samp, win, *eventsPath, *timelinePath, *seriesPath); err != nil {
		fmt.Fprintf(os.Stderr, "fetchsim: %v\n", err)
		os.Exit(1)
	}
}

// pf is a checked Printf: a broken stdout is a hard error, not a silently
// truncated result block.
func pf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		fmt.Fprintf(os.Stderr, "fetchsim: writing output: %v\n", err)
		os.Exit(1)
	}
}

// writeArtifacts dumps the requested observability outputs.
func writeArtifacts(rec *specfetch.EventRecorder, samp *specfetch.IntervalSampler,
	win *specfetch.WindowSeries, eventsPath, timelinePath, seriesPath string) error {
	writeTo := func(path string, fn func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		return f.Close()
	}
	if rec != nil && rec.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "fetchsim: event ring overflowed: kept last %d of %d events (raise -event-cap)\n",
			rec.Cap(), rec.Total())
	}
	if eventsPath != "" {
		if err := writeTo(eventsPath, func(f *os.File) error { return rec.WriteJSONL(f) }); err != nil {
			return err
		}
		pf("events                 %s (%d events)\n", eventsPath, len(rec.Events()))
	}
	if timelinePath != "" {
		if err := writeTo(timelinePath, func(f *os.File) error {
			return specfetch.CombinedTrace{Events: rec.Events(), Counters: win.Records()}.Write(f)
		}); err != nil {
			return err
		}
		pf("timeline               %s (%d counter windows; open in https://ui.perfetto.dev)\n",
			timelinePath, win.Len())
	}
	if seriesPath != "" {
		asJSON := len(seriesPath) > 5 && seriesPath[len(seriesPath)-5:] == ".json"
		if err := writeTo(seriesPath, func(f *os.File) error {
			if asJSON {
				return samp.WriteJSON(f)
			}
			return samp.WriteCSV(f)
		}); err != nil {
			return err
		}
		pf("series                 %s (%d samples)\n", seriesPath, len(samp.Points()))
	}
	return nil
}

// runFromFiles replays a trace file against a serialized image.
func runFromFiles(cfg specfetch.Config, imagePath, tracePath string, insts int64) (specfetch.Result, error) {
	imgF, err := os.Open(imagePath)
	if err != nil {
		return specfetch.Result{}, err
	}
	defer func() { _ = imgF.Close() }() // read side; nothing to lose on close
	img, err := specfetch.ReadImage(imgF)
	if err != nil {
		return specfetch.Result{}, err
	}
	trcF, err := os.Open(tracePath)
	if err != nil {
		return specfetch.Result{}, err
	}
	defer func() { _ = trcF.Close() }() // read side; nothing to lose on close
	rd, err := specfetch.OpenTrace(trcF)
	if err != nil {
		return specfetch.Result{}, err
	}
	cfg.MaxInsts = insts
	return specfetch.Run(cfg, img, rd, specfetch.NewPredictor())
}
