// Command report regenerates the complete reproduction in one shot and
// emits a self-contained Markdown report: every table, every figure, the
// latency sweep, the modern-footprint study, and all ablations, each under
// its own heading with the machine configuration recorded. Useful for
// archiving one artifact per run.
//
// Usage:
//
//	report -insts 2000000 -o report.md
//	report -quick -o -            # small budget, stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"specfetch/internal/experiments"
	"specfetch/internal/texttable"
)

func main() {
	insts := flag.Int64("insts", 2_000_000, "instructions to simulate per benchmark")
	quickFlag := flag.Bool("quick", false, "small-budget run (200k instructions)")
	out := flag.String("o", "-", "output path ('-' = stdout)")
	flag.Parse()

	opt := experiments.Options{Insts: *insts}
	if *quickFlag {
		opt.Insts = 200_000
	}

	var w io.Writer = os.Stdout
	closeOut := func() error { return nil }
	if *out != "-" {
		f, err := os.Create(*out)
		fail(err)
		closeOut = f.Close
		w = f
	}

	// pf is a checked Fprintf: a write failure (full disk, broken pipe) must
	// not yield a silently truncated report.
	pf := func(format string, args ...any) {
		_, err := fmt.Fprintf(w, format, args...)
		fail(err)
	}

	start := time.Now()
	pf("# specfetch reproduction report\n\n")
	pf("Lee, Baer, Calder, Grunwald: *Instruction Cache Fetch Policies for\nSpeculative Execution*, ISCA 1995.\n\n")
	pf("- instruction budget: %d per benchmark\n", opt.Insts)
	pf("- generated: %s\n\n", time.Now().Format(time.RFC3339))

	section := func(title string, render func() (fmt.Stringer, error)) {
		pf("## %s\n\n```\n", title)
		art, err := render()
		if err != nil {
			pf("ERROR: %v\n", err)
		} else {
			pf("%s", art.String())
		}
		pf("```\n\n")
	}

	tables := []struct {
		title string
		fn    func(experiments.Options) (*texttable.Table, error)
	}{
		{"Table 2 — benchmark inventory", experiments.Table2},
		{"Table 3 — cache and branch characteristics", experiments.Table3},
		{"Table 4 — miss classification", experiments.Table4},
		{"Table 5 — speculation depth", experiments.Table5},
		{"Table 6 — cache size", experiments.Table6},
		{"Table 7 — prefetch memory traffic", experiments.Table7},
	}
	for _, tb := range tables {
		tb := tb
		section(tb.title, func() (fmt.Stringer, error) { return tb.fn(opt) })
	}

	figures := []struct {
		title string
		fn    func(experiments.Options) (*texttable.StackedBars, error)
	}{
		{"Figure 1 — baseline penalty breakdown", experiments.Figure1},
		{"Figure 2 — long miss latency", experiments.Figure2},
		{"Figure 3 — next-line prefetching", experiments.Figure3},
		{"Figure 4 — prefetching at long latency", experiments.Figure4},
	}
	for _, fg := range figures {
		fg := fg
		section(fg.title, func() (fmt.Stringer, error) { return fg.fn(opt) })
	}

	section("Latency sweep and crossover", func() (fmt.Stringer, error) {
		return experiments.LatencySweep(opt, nil)
	})
	section("Modern-footprint study", func() (fmt.Stringer, error) {
		return experiments.ModernStudy(opt)
	})

	names := make([]string, 0)
	for name := range experiments.Ablations() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		name := name
		section("Ablation — "+name, func() (fmt.Stringer, error) {
			return experiments.Ablations()[name](opt)
		})
	}

	pf("---\nreport generated in %s\n", time.Since(start).Round(time.Second))
	fail(closeOut())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
}
