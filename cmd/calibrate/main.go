// Command calibrate reports how closely the synthetic benchmark profiles
// match the paper's Table 2/3 characteristics. It is the tool used to tune
// internal/synth/profiles.go; EXPERIMENTS.md records its final output.
//
// Usage:
//
//	calibrate [-insts N] [-bench name]
package main

import (
	"flag"
	"fmt"
	"os"

	"specfetch/internal/experiments"
	"specfetch/internal/synth"
)

func main() {
	insts := flag.Int64("insts", 2_000_000, "instructions to simulate per benchmark")
	bench := flag.String("bench", "", "only this benchmark (default: all)")
	flag.Parse()

	pf("%-8s %-7s | %7s %7s %5s | %7s %7s | %7s %7s | %7s %7s | %7s %7s | %7s %7s | %8s\n",
		"bench", "lang", "br%", "paper", "cnd%", "m8K", "paper", "m32K", "paper",
		"phtB1", "paper", "phtB4", "paper", "btbMF", "paper", "static")
	for _, p := range synth.Profiles() {
		if *bench != "" && p.Name != *bench {
			continue
		}
		b, err := synth.Build(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "build %s: %v\n", p.Name, err)
			os.Exit(1)
		}
		c, err := experiments.Characterize(b, experiments.Options{Insts: *insts})
		if err != nil {
			fmt.Fprintf(os.Stderr, "characterize %s: %v\n", p.Name, err)
			os.Exit(1)
		}
		t := synth.PaperTargets[p.Name]
		pf("%-8s %-7s | %7.1f %7.1f %5.1f | %7.2f %7.2f | %7.2f %7.2f | %7.2f %7.2f | %7.2f %7.2f | %7.2f %7.2f | %8d\n",
			c.Name, c.Lang, c.BranchPct, t.BranchPct, c.CondPct, c.Miss8K, t.Miss8K, c.Miss32K, t.Miss32K,
			c.PHTISPIB1, t.PHTISPIB1, c.PHTISPIB4, t.PHTISPIB4,
			c.BTBMisfetchISPI, t.BTBMisfetchISPI, c.StaticInsts)
	}
}

// pf is a checked Printf: a broken stdout (closed pipe) is a hard error, not
// a silent truncation of the calibration table.
func pf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: writing output: %v\n", err)
		os.Exit(1)
	}
}
