// Command tracegen generates, inspects, and converts instruction traces.
//
// Usage:
//
//	tracegen -bench gcc -insts 1000000 -o gcc.trc          # binary trace
//	tracegen -bench gcc -insts 100000 -format text -o -     # text to stdout
//	tracegen -stats gcc.trc                                  # summarize
//	tracegen -convert gcc.trc -format text -o gcc.txt        # transcode
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"specfetch"
	"specfetch/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark profile to generate from")
		insts     = flag.Int64("insts", 1_000_000, "instructions to generate")
		seed      = flag.Uint64("seed", 1, "dynamic stream seed")
		out       = flag.String("o", "-", "output path ('-' = stdout)")
		format    = flag.String("format", "binary", "output format: binary|text")
		gz        = flag.Bool("gzip", false, "gzip-compress the output")
		imageOut  = flag.String("imageout", "", "also write the benchmark's static image to this path")
		statsPath = flag.String("stats", "", "summarize an existing trace file and exit")
		convert   = flag.String("convert", "", "transcode an existing trace file to -format")
	)
	flag.Parse()

	switch {
	case *statsPath != "":
		rd, closeFn := openTrace(*statsPath)
		defer closeFn()
		st, err := trace.Scan(rd)
		fail(err)
		pf("records        %d\n", st.Records)
		pf("instructions   %d\n", st.Insts)
		pf("branches       %d (%.2f%%)\n", st.Branches, 100*st.BranchFrac())
		pf("conditionals   %d (%.1f%% taken)\n", st.Conditionals, 100*st.TakenFrac())
		pf("unconditional  %d (%d calls, %d returns, %d indirect)\n",
			st.Unconditional, st.Calls, st.Returns, st.Indirect)

	case *convert != "":
		rd, closeFn := openTrace(*convert)
		defer closeFn()
		w, flush := openWriter(*out, *format, *gz)
		copyTrace(rd, w)
		fail(flush())

	case *benchName != "":
		prof, ok := specfetch.ProfileByName(*benchName)
		if !ok {
			fail(fmt.Errorf("unknown benchmark %q", *benchName))
		}
		bench, err := specfetch.BuildBenchmark(prof)
		fail(err)
		if *imageOut != "" {
			imgF, err := os.Create(*imageOut)
			fail(err)
			fail(specfetch.WriteImage(imgF, bench.Image()))
			fail(imgF.Close())
		}
		rd := bench.NewReader(*seed, *insts)
		w, flush := openWriter(*out, *format, *gz)
		copyTrace(rd, w)
		fail(flush())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// pf is a checked Printf: a broken stdout is a hard error, not a silently
// truncated stats report.
func pf(format string, args ...any) {
	_, err := fmt.Printf(format, args...)
	fail(err)
}

// openTrace opens a trace file; format (gzip/binary/text) is sniffed.
func openTrace(path string) (trace.Reader, func()) {
	f, err := os.Open(path)
	fail(err)
	rd, err := specfetch.OpenTrace(f)
	fail(err)
	// Read side: a close error cannot lose data, so it is deliberately ignored.
	return rd, func() { _ = f.Close() }
}

// openWriter builds the requested writer over the output path.
func openWriter(path, format string, gzOut bool) (trace.Writer, func() error) {
	var out *os.File
	if path == "-" {
		out = os.Stdout
	} else {
		f, err := os.Create(path)
		fail(err)
		out = f
	}
	closeOut := func() error {
		if out != os.Stdout {
			return out.Close()
		}
		return nil
	}
	switch format {
	case "binary":
		if gzOut {
			w := trace.NewGzipBinaryWriter(out)
			return w, func() error {
				if err := w.Close(); err != nil {
					return err
				}
				return closeOut()
			}
		}
		w := trace.NewBinaryWriter(out)
		return w, func() error {
			if err := w.Flush(); err != nil {
				return err
			}
			return closeOut()
		}
	case "text":
		if gzOut {
			w := trace.NewGzipTextWriter(out)
			return w, func() error {
				if err := w.Close(); err != nil {
					return err
				}
				return closeOut()
			}
		}
		w := trace.NewTextWriter(out)
		return w, func() error {
			if err := w.Flush(); err != nil {
				return err
			}
			return closeOut()
		}
	default:
		fail(fmt.Errorf("unknown format %q (want binary or text)", format))
		return nil, nil
	}
}

// copyTrace streams every record from rd to w.
func copyTrace(rd trace.Reader, w trace.Writer) {
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return
		}
		fail(err)
		fail(w.Write(rec))
	}
}
