package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfVsSelf is the perf gate's green path: a fixture compared against
// itself exits 0 with every delta at +0.0%.
func TestSelfVsSelf(t *testing.T) {
	base := filepath.Join("testdata", "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{base, base}, &out, &errb); code != 0 {
		t.Fatalf("self-vs-self exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "geomean") {
		t.Errorf("output missing geomean summary:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("self-vs-self flagged a regression:\n%s", out.String())
	}
}

// TestDetectsInjectedSlowdown is the gate's red path: the fixture pair with
// an artificial 2x slowdown exits nonzero and names the regressions.
func TestDetectsInjectedSlowdown(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		filepath.Join("testdata", "base.json"),
		filepath.Join("testdata", "slow2x.json"),
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("2x-slowdown exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if got := strings.Count(out.String(), "REGRESSION"); got != 2 {
		t.Errorf("regression rows = %d, want 2:\n%s", got, out.String())
	}
	if !strings.Contains(errb.String(), "REGRESSION") {
		t.Errorf("stderr missing regression verdict: %s", errb.String())
	}
}

// TestThresholdAbsorbsSlowdown: a generous threshold turns the same pair
// green — the noise knob works end to end.
func TestThresholdAbsorbsSlowdown(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-threshold", "1.5",
		filepath.Join("testdata", "base.json"),
		filepath.Join("testdata", "slow2x.json"),
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 at threshold 1.5\nstderr: %s", code, errb.String())
	}
}

// TestUsageErrors: bad invocations exit 2.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"one.json"},
		{"-threshold", "-1", "a.json", "b.json"},
		{filepath.Join("testdata", "base.json"), filepath.Join("testdata", "nosuch.json")},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

// writeTemp drops content into a temp file and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMalformedInputs: syntactically broken or truncated BENCH JSON is an
// I/O error (exit 2) with a diagnostic, never a silent 0/1 verdict.
func TestMalformedInputs(t *testing.T) {
	good := filepath.Join("testdata", "base.json")
	base, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"not json":      "this is not json\n",
		"truncated":     string(base[:len(base)/2]),
		"empty":         "",
		"wrong shape":   `["array","not","object"]`,
		"unknown field": `{"label":"x","bogus_field":1}`,
	}
	for name, content := range cases {
		bad := writeTemp(t, "bad.json", content)
		for _, args := range [][]string{{bad, good}, {good, bad}} {
			var out, errb bytes.Buffer
			if code := run(args, &out, &errb); code != 2 {
				t.Errorf("%s (as %s): exit = %d, want 2\nstdout: %s", name, args[0], code, out.String())
			}
			if !strings.Contains(errb.String(), "perfdiff:") {
				t.Errorf("%s: no diagnostic on stderr", name)
			}
		}
	}
}

// TestMismatchedBuilderSets: builders present on one side only are
// reported as added/removed rows, never as regressions — a renamed builder
// should fail review, not the perf gate.
func TestMismatchedBuilderSets(t *testing.T) {
	head := writeTemp(t, "head.json", `{
  "label": "head",
  "go_version": "go1.22.0",
  "gomaxprocs": 4,
  "workers": 4,
  "insts_per_cell": 200000,
  "builders": [
    {"name": "table 6", "cells": 10, "wall_seconds": 1.2, "cells_per_sec": 8.3, "allocs": 1, "p50_seconds": 0.1, "p95_seconds": 0.1, "p99_seconds": 0.1},
    {"name": "table 9", "cells": 10, "wall_seconds": 9.9, "cells_per_sec": 1.0, "allocs": 1, "p50_seconds": 1, "p95_seconds": 1, "p99_seconds": 1}
  ]
}`)
	var out, errb bytes.Buffer
	code := run([]string{filepath.Join("testdata", "base.json"), head}, &out, &errb)
	if code != 0 {
		t.Fatalf("mismatched sets exit = %d, want 0 (missing builders are not regressions)\nstderr: %s", code, errb.String())
	}
	o := out.String()
	if !strings.Contains(o, "removed") {
		t.Errorf("old-only builder (figure 1) not reported as removed:\n%s", o)
	}
	if !strings.Contains(o, "added") {
		t.Errorf("new-only builder (table 9) not reported as added:\n%s", o)
	}
	if strings.Contains(o, "REGRESSION") {
		t.Errorf("mismatched builder sets flagged a regression:\n%s", o)
	}
}
