package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfVsSelf is the perf gate's green path: a fixture compared against
// itself exits 0 with every delta at +0.0%.
func TestSelfVsSelf(t *testing.T) {
	base := filepath.Join("testdata", "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{base, base}, &out, &errb); code != 0 {
		t.Fatalf("self-vs-self exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "geomean") {
		t.Errorf("output missing geomean summary:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("self-vs-self flagged a regression:\n%s", out.String())
	}
}

// TestDetectsInjectedSlowdown is the gate's red path: the fixture pair with
// an artificial 2x slowdown exits nonzero and names the regressions.
func TestDetectsInjectedSlowdown(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		filepath.Join("testdata", "base.json"),
		filepath.Join("testdata", "slow2x.json"),
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("2x-slowdown exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if got := strings.Count(out.String(), "REGRESSION"); got != 2 {
		t.Errorf("regression rows = %d, want 2:\n%s", got, out.String())
	}
	if !strings.Contains(errb.String(), "REGRESSION") {
		t.Errorf("stderr missing regression verdict: %s", errb.String())
	}
}

// TestThresholdAbsorbsSlowdown: a generous threshold turns the same pair
// green — the noise knob works end to end.
func TestThresholdAbsorbsSlowdown(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-threshold", "1.5",
		filepath.Join("testdata", "base.json"),
		filepath.Join("testdata", "slow2x.json"),
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 at threshold 1.5\nstderr: %s", code, errb.String())
	}
}

// TestUsageErrors: bad invocations exit 2.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"one.json"},
		{"-threshold", "-1", "a.json", "b.json"},
		{filepath.Join("testdata", "base.json"), filepath.Join("testdata", "nosuch.json")},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}
