// Command perfdiff compares two BENCH JSON reports (paperbench -bench-out)
// benchstat-style and gates on regressions: it prints one row per builder
// with old/new seconds-per-cell and the percentage delta, and exits nonzero
// when any builder slowed down by more than the noise threshold. CI runs it
// as the perf gate; locally it turns two BENCH files into a yes/no answer
// about a change's host-side cost.
//
// Usage:
//
//	perfdiff old.json new.json
//	perfdiff -threshold 0.3 BENCH_baseline.json BENCH_change.json
//
// Exit status: 0 = no regression, 1 = regression beyond the threshold,
// 2 = usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"specfetch/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.2,
		"noise threshold: flag a builder only when new seconds-per-cell exceeds old by more than this fraction")
	fs.Usage = func() {
		_, _ = fmt.Fprintln(stderr, "usage: perfdiff [-threshold frac] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *threshold < 0 {
		_, _ = fmt.Fprintln(stderr, "perfdiff: threshold must be non-negative")
		return 2
	}

	old, err := benchfmt.ReadFile(fs.Arg(0))
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "perfdiff: %v\n", err)
		return 2
	}
	head, err := benchfmt.ReadFile(fs.Arg(1))
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "perfdiff: %v\n", err)
		return 2
	}

	if _, err := fmt.Fprintf(stdout, "old: %s (%s, GOMAXPROCS %d, workers %d)\nnew: %s (%s, GOMAXPROCS %d, workers %d)\n",
		old.Label, old.GoVersion, old.GOMAXPROCS, old.Workers,
		head.Label, head.GoVersion, head.GOMAXPROCS, head.Workers); err != nil {
		_, _ = fmt.Fprintf(stderr, "perfdiff: writing output: %v\n", err)
		return 2
	}
	if old.GOMAXPROCS != head.GOMAXPROCS || old.Workers != head.Workers ||
		old.InstsPerCell != head.InstsPerCell {
		_, _ = fmt.Fprintln(stderr, "perfdiff: warning: reports were taken at different parallelism or instruction budgets; deltas are apples-to-oranges")
	}

	deltas := benchfmt.Compare(old, head, *threshold)
	if err := benchfmt.FormatDeltas(stdout, deltas, *threshold); err != nil {
		_, _ = fmt.Fprintf(stderr, "perfdiff: writing output: %v\n", err)
		return 2
	}
	if benchfmt.AnyRegression(deltas) {
		_, _ = fmt.Fprintln(stderr, "perfdiff: REGRESSION beyond threshold")
		return 1
	}
	return 0
}
