// Command paperbench regenerates every table and figure of the paper's
// evaluation section over the synthetic benchmark suite.
//
// Sweeps run as a work-list of independent simulation cells on a bounded
// worker pool (-workers, default GOMAXPROCS) with a deterministic reduction:
// the rendered tables and figures are byte-identical at every worker count.
// -audit-sample N attaches the runtime accounting auditor to every cell,
// checking one pipeline window in N.
//
// Long campaigns are observable: per-simulation progress goes to stderr
// (silence it with -quiet), -metrics-addr serves a Prometheus /metrics
// endpoint with campaign counters, and SIGINT reports how far the run got
// before exiting — tables already completed have been printed.
//
// Usage:
//
//	paperbench -all [-insts N]
//	paperbench -table 5
//	paperbench -figure 3 -bench gcc,groff
//	paperbench -table 4 -csv
//	paperbench -all -metrics-addr :9090
//	paperbench -all -workers 8 -audit-sample 16
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"

	"specfetch/internal/experiments"
	"specfetch/internal/obs"
	"specfetch/internal/texttable"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table N (2-7)")
		figure   = flag.Int("figure", 0, "regenerate figure N (1-4)")
		ablation = flag.String("ablation", "", "run an ablation: prefetch|btb|assoc|width|pipelined-mem|ras|victim|mshr|layout")
		seeds    = flag.Int("sensitivity", 0, "run the seed-sensitivity analysis over N dynamic streams")
		sweep    = flag.Bool("sweep", false, "run the miss-latency sweep with crossover detection")
		modern   = flag.Bool("modern", false, "run the datacenter-footprint study (web/db/search)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		insts    = flag.Int64("insts", 2_000_000, "instructions to simulate per benchmark")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all 13)")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		quiet    = flag.Bool("quiet", false, "suppress per-simulation progress on stderr")
		metrics  = flag.String("metrics-addr", "", "serve Prometheus text metrics on this address at /metrics (e.g. :9090)")
		workers  = flag.Int("workers", 0, "simulation cells to run concurrently (0 = GOMAXPROCS, 1 = serial); output is byte-identical at every setting")
		auditSmp = flag.Int("audit-sample", 0, "attach the accounting auditor to every simulation, checking every Nth pipeline window (1 = every window)")
	)
	flag.Parse()

	// With -audit-sample, a streaming invariant violation inside any worker
	// surfaces as a panic carrying *obs.AuditError (re-thrown on this
	// goroutine by the pool); report it as a diagnosis, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			ae, ok := r.(*obs.AuditError)
			if !ok {
				panic(r)
			}
			fmt.Fprintf(os.Stderr, "paperbench: audit: %v\n", ae)
			os.Exit(1)
		}
	}()

	reg := obs.NewRegistry()
	var stage atomic.Value
	stage.Store("startup")

	opt := experiments.Options{Insts: *insts, Metrics: reg, Workers: *workers, AuditSample: *auditSmp}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}
	if !*quiet {
		opt.Progress = func(msg string) { fmt.Fprintf(os.Stderr, "paperbench: %s\n", msg) }
	}

	if !*all && *table == 0 && *figure == 0 && *ablation == "" && *seeds == 0 && !*sweep && !*modern {
		flag.Usage()
		os.Exit(2)
	}

	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: metrics server: %v\n", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "paperbench: serving metrics on %s/metrics\n", ln.Addr())
	}

	// SIGINT: completed tables are already on stdout; report how far the
	// campaign got and exit 130. A second SIGINT aborts immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		go func() {
			<-sigc
			os.Exit(130)
		}()
		sims := reg.Counter("specfetch_simulations_total", "Completed simulation runs.").Value()
		si := reg.Counter("specfetch_simulated_insts_total", "Correct-path instructions simulated.").Value()
		fmt.Fprintf(os.Stderr,
			"\npaperbench: interrupted during %s: %d simulations done, %d instructions simulated; completed output above is valid\n",
			stage.Load(), sims, si)
		os.Exit(130)
	}()

	run := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}

	newline := func() {
		_, err := fmt.Println()
		run(err)
	}
	emitTable := func(t *texttable.Table, err error) {
		run(err)
		if *csv {
			run(t.RenderCSV(os.Stdout))
		} else {
			run(t.Render(os.Stdout))
		}
		newline()
	}
	emitFigure := func(f *texttable.StackedBars, err error) {
		run(err)
		run(f.Render(os.Stdout))
		newline()
	}

	tables := map[int]func(experiments.Options) (*texttable.Table, error){
		2: experiments.Table2, 3: experiments.Table3, 4: experiments.Table4,
		5: experiments.Table5, 6: experiments.Table6, 7: experiments.Table7,
	}
	figures := map[int]func(experiments.Options) (*texttable.StackedBars, error){
		1: experiments.Figure1, 2: experiments.Figure2,
		3: experiments.Figure3, 4: experiments.Figure4,
	}

	switch {
	case *modern:
		stage.Store("modern study")
		tab, err := experiments.ModernStudy(opt)
		emitTable(tab, err)
	case *sweep:
		stage.Store("latency sweep")
		tab, err := experiments.LatencySweep(opt, nil)
		emitTable(tab, err)
	case *seeds > 0:
		stage.Store(fmt.Sprintf("seed sensitivity (%d seeds)", *seeds))
		tab, err := experiments.SeedSensitivity(opt, *seeds)
		emitTable(tab, err)
	case *all:
		for n := 2; n <= 7; n++ {
			stage.Store(fmt.Sprintf("table %d", n))
			emitTable(tables[n](opt))
		}
		for n := 1; n <= 4; n++ {
			stage.Store(fmt.Sprintf("figure %d", n))
			emitFigure(figures[n](opt))
		}
	case *ablation != "":
		fn, ok := experiments.Ablations()[*ablation]
		if !ok {
			run(fmt.Errorf("no ablation %q", *ablation))
		}
		stage.Store("ablation " + *ablation)
		emitTable(fn(opt))
	case *table != 0:
		fn, ok := tables[*table]
		if !ok {
			run(fmt.Errorf("no table %d (paper has tables 2-7)", *table))
		}
		stage.Store(fmt.Sprintf("table %d", *table))
		emitTable(fn(opt))
	case *figure != 0:
		fn, ok := figures[*figure]
		if !ok {
			run(fmt.Errorf("no figure %d (paper has figures 1-4)", *figure))
		}
		stage.Store(fmt.Sprintf("figure %d", *figure))
		emitFigure(fn(opt))
	}
}
