// Command paperbench regenerates every table and figure of the paper's
// evaluation section over the synthetic benchmark suite.
//
// Usage:
//
//	paperbench -all [-insts N]
//	paperbench -table 5
//	paperbench -figure 3 -bench gcc,groff
//	paperbench -table 4 -csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specfetch/internal/experiments"
	"specfetch/internal/texttable"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table N (2-7)")
		figure   = flag.Int("figure", 0, "regenerate figure N (1-4)")
		ablation = flag.String("ablation", "", "run an ablation: prefetch|btb|assoc|width|pipelined-mem|ras|victim|mshr|layout")
		seeds    = flag.Int("sensitivity", 0, "run the seed-sensitivity analysis over N dynamic streams")
		sweep    = flag.Bool("sweep", false, "run the miss-latency sweep with crossover detection")
		modern   = flag.Bool("modern", false, "run the datacenter-footprint study (web/db/search)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		insts    = flag.Int64("insts", 2_000_000, "instructions to simulate per benchmark")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all 13)")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	flag.Parse()

	opt := experiments.Options{Insts: *insts}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}

	if !*all && *table == 0 && *figure == 0 && *ablation == "" && *seeds == 0 && !*sweep && !*modern {
		flag.Usage()
		os.Exit(2)
	}

	run := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}

	emitTable := func(t *texttable.Table, err error) {
		run(err)
		if *csv {
			run(t.RenderCSV(os.Stdout))
		} else {
			run(t.Render(os.Stdout))
		}
		fmt.Println()
	}
	emitFigure := func(f *texttable.StackedBars, err error) {
		run(err)
		run(f.Render(os.Stdout))
		fmt.Println()
	}

	tables := map[int]func(experiments.Options) (*texttable.Table, error){
		2: experiments.Table2, 3: experiments.Table3, 4: experiments.Table4,
		5: experiments.Table5, 6: experiments.Table6, 7: experiments.Table7,
	}
	figures := map[int]func(experiments.Options) (*texttable.StackedBars, error){
		1: experiments.Figure1, 2: experiments.Figure2,
		3: experiments.Figure3, 4: experiments.Figure4,
	}

	switch {
	case *modern:
		tab, err := experiments.ModernStudy(opt)
		emitTable(tab, err)
	case *sweep:
		tab, err := experiments.LatencySweep(opt, nil)
		emitTable(tab, err)
	case *seeds > 0:
		tab, err := experiments.SeedSensitivity(opt, *seeds)
		emitTable(tab, err)
	case *all:
		for n := 2; n <= 7; n++ {
			emitTable(tables[n](opt))
		}
		for n := 1; n <= 4; n++ {
			emitFigure(figures[n](opt))
		}
	case *ablation != "":
		fn, ok := experiments.Ablations()[*ablation]
		if !ok {
			run(fmt.Errorf("no ablation %q", *ablation))
		}
		emitTable(fn(opt))
	case *table != 0:
		fn, ok := tables[*table]
		if !ok {
			run(fmt.Errorf("no table %d (paper has tables 2-7)", *table))
		}
		emitTable(fn(opt))
	case *figure != 0:
		fn, ok := figures[*figure]
		if !ok {
			run(fmt.Errorf("no figure %d (paper has figures 1-4)", *figure))
		}
		emitFigure(fn(opt))
	}
	_ = io.Discard
}
