// Command paperbench regenerates every table and figure of the paper's
// evaluation section over the synthetic benchmark suite.
//
// Sweeps run as a work-list of independent simulation cells on a bounded
// worker pool (-workers, default GOMAXPROCS) with a deterministic reduction:
// the rendered tables and figures are byte-identical at every worker count.
// -remote-workers dispatches the same work-list across sweepworker daemon
// processes (see cmd/sweepworker) — still byte-identical, with automatic
// retry, eviction, and in-process fallback when workers fail.
// -audit-sample N attaches the runtime accounting auditor to every cell,
// checking one pipeline window in N.
//
// Long campaigns are observable: per-simulation progress goes to stderr
// (silence it with -quiet), -metrics-addr serves a Prometheus /metrics
// endpoint with campaign counters plus net/http/pprof under /debug/pprof/,
// and SIGINT reports how far the run got before exiting — tables already
// completed have been printed.
//
// Every run also traces host-side spans (one per simulation cell or
// ablation row) and prints a per-builder summary — wall time, cells/sec,
// p50/p95/p99 cell latency, allocations — to stderr. -bench-out writes the
// same aggregates as machine-readable BENCH JSON for cmd/perfdiff;
// -host-trace dumps the raw spans as a Chrome trace (workers x cells).
// Instrumentation never touches stdout: rendered sweep bytes are identical
// with it on or off.
//
// Usage:
//
//	paperbench -all [-insts N]
//	paperbench -table 5
//	paperbench -figure 3 -bench gcc,groff
//	paperbench -table 4 -csv
//	paperbench -all -metrics-addr :9090
//	paperbench -all -workers 8 -audit-sample 16
//	paperbench -all -remote-workers http://host1:8477,http://host2:8477
//	paperbench -oracle -interval 10000 -intervals-out intervals.jsonl
//	paperbench -adaptive -strategy phase:6 -interval 2500 -flush-interval 15000 -insts 20000000
//	paperbench -table 6 -bench-out BENCH_head.json -bench-label head
//	paperbench -all -host-trace host.trace.json -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	runtimepprof "runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"specfetch/internal/benchfmt"
	"specfetch/internal/distsweep"
	"specfetch/internal/experiments"
	"specfetch/internal/hosttime"
	"specfetch/internal/obs"
	"specfetch/internal/sweeplog"
	"specfetch/internal/texttable"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table N (2-7)")
		figure   = flag.Int("figure", 0, "regenerate figure N (1-4)")
		ablation = flag.String("ablation", "", "run an ablation: prefetch|btb|assoc|width|pipelined-mem|ras|victim|mshr|layout")
		seeds    = flag.Int("sensitivity", 0, "run the seed-sensitivity analysis over N dynamic streams")
		sweep    = flag.Bool("sweep", false, "run the miss-latency sweep with crossover detection")
		modern   = flag.Bool("modern", false, "run the datacenter-footprint study (web/db/search)")
		oracle   = flag.Bool("oracle", false, "run the oracle-selector interval study (crossover table + per-window winner map)")
		adaptive = flag.Bool("adaptive", false, "run the adaptive meta-policy study: online chooser vs best static vs oracle selector (crossover table + winner map)")
		strategy = flag.String("strategy", "phase:6", "chooser strategy for -adaptive: tournament|ucb|egreedy|phase:<period>|pinned:<policy>")
		adaptSd  = flag.Uint64("adapt-seed", 0, "seed for randomized -adaptive strategies (egreedy)")
		flushIv  = flag.Int64("flush-interval", 0, "invalidate each cell's I-cache every N correct-path instructions in the -oracle and -adaptive studies, modeling periodic context switches (0 = never)")
		interval = flag.Int64("interval", 0, "window width in instructions for -oracle and -adaptive (0 = the default 10000)")
		intsOut  = flag.String("intervals-out", "", "with -oracle, write the per-policy window series as JSONL to this file (input for cmd/intervals)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		insts    = flag.Int64("insts", 2_000_000, "instructions to simulate per benchmark")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all 13)")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		quiet    = flag.Bool("quiet", false, "suppress per-simulation progress and the host-side summary on stderr")
		metrics  = flag.String("metrics-addr", "", "serve Prometheus text metrics on this address at /metrics, with pprof under /debug/pprof/ (e.g. :9090)")
		workers  = flag.Int("workers", 0, "simulation cells to run concurrently (0 = GOMAXPROCS, 1 = serial); output is byte-identical at every setting")
		remoteWk = flag.String("remote-workers", "", "comma-separated sweepworker base URLs (e.g. http://host:8477,http://host:8478); serializable sweeps fan out across these processes, output stays byte-identical")
		auditSmp = flag.Int("audit-sample", 0, "attach the accounting auditor to every simulation, checking every Nth pipeline window (1 = every window)")
		sampleIv = flag.Int64("sample-interval", 0, "attach the interval window sampler to every simulation cell, one window per N instructions (observe-only: rendered output is byte-identical with it on or off)")
		stepMode = flag.String("stepmode", "", "engine core for every cell: skipahead (next-event) or reference (cycle-by-cycle); empty defers to SPECFETCH_STEPMODE, then skipahead. Output bytes are identical either way")
		benchOut = flag.String("bench-out", "", "write per-builder host-side performance aggregates as BENCH JSON to this file (input for perfdiff)")
		benchLbl = flag.String("bench-label", "paperbench", "label recorded in the -bench-out report")
		hostTr   = flag.String("host-trace", "", "write host-side spans (workers x cells, plus remote fleet tracks with -remote-workers) as a Chrome trace JSON to this file")
		sweepLog = flag.String("sweep-log", "", "persist the structured sweep decision log (dispatch/retry/backoff/eviction/fallback JSONL) to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	// Profiles and the sweep decision log must land even on the os.Exit
	// paths (errors, SIGINT, audit failures), so every exit funnels through
	// stopProfiles via exit().
	var profOnce sync.Once
	var cpuFile *os.File
	var sweepLogFile *os.File
	var sweepLogger *sweeplog.Logger
	stopProfiles := func() {
		profOnce.Do(func() {
			if err := sweepLogger.WriteErr(); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: sweep-log: %v\n", err)
			}
			if sweepLogFile != nil {
				if err := sweepLogFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "paperbench: sweep-log: %v\n", err)
				}
			}
			if cpuFile != nil {
				runtimepprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "paperbench: cpuprofile: %v\n", err)
				}
			}
			if *memProf != "" {
				f, err := os.Create(*memProf)
				if err != nil {
					fmt.Fprintf(os.Stderr, "paperbench: memprofile: %v\n", err)
					return
				}
				runtime.GC() // get up-to-date live-object statistics
				if err := runtimepprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "paperbench: memprofile: %v\n", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "paperbench: memprofile: %v\n", err)
				}
			}
		})
	}
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	// With -audit-sample, a streaming invariant violation inside any worker
	// surfaces as a panic carrying *obs.AuditError (re-thrown on this
	// goroutine by the pool); report it as a diagnosis, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			ae, ok := r.(*obs.AuditError)
			if !ok {
				panic(r)
			}
			fmt.Fprintf(os.Stderr, "paperbench: audit: %v\n", ae)
			exit(1)
		}
	}()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := runtimepprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	reg := obs.NewRegistry()
	spans := obs.NewSpanTracer()
	var stage atomic.Value
	stage.Store("startup")

	opt := experiments.Options{
		Insts: *insts, Metrics: reg, Spans: spans,
		Workers: *workers, AuditSample: *auditSmp,
	}
	if *sampleIv > 0 {
		// Sampler-enabled perf runs: every cell carries a window series
		// probe so the BENCH report prices the interval layer's overhead.
		opt.SampleInterval = *sampleIv
		opt.CaptureWindows = true
	}
	if *stepMode != "" {
		mode, err := experiments.ParseStepMode(*stepMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			exit(2)
		}
		opt.StepMode = mode
	}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}
	if !*quiet {
		opt.Progress = func(msg string) { fmt.Fprintf(os.Stderr, "paperbench: %s\n", msg) }
	}
	// The sweep decision log: -sweep-log persists it as JSONL; without the
	// flag it still feeds the in-memory flight recorder behind /sweepz.
	// Decisions go to the log and stderr only — never stdout, so rendered
	// sweep bytes stay invariant.
	var coord *distsweep.Coordinator
	if *remoteWk != "" || *sweepLog != "" {
		var logW io.Writer
		if *sweepLog != "" {
			f, err := os.Create(*sweepLog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: sweep-log: %v\n", err)
				exit(1)
			}
			sweepLogFile, logW = f, f
		} else if !*quiet {
			logW = os.Stderr
		}
		sweepLogger = sweeplog.New(sweeplog.Options{W: logW})
	}
	if *remoteWk != "" {
		opt.Remote = strings.Split(*remoteWk, ",")
		// One coordinator for the whole campaign, so retry/eviction state
		// spans builders: a worker evicted during table 2 stays evicted for
		// figure 4.
		coord = distsweep.New(distsweep.CoordinatorOptions{
			Workers: opt.Remote, Metrics: reg, Spans: spans, Log: sweepLogger,
		})
		opt.Dispatch = coord
		opt.SweepLog = sweepLogger
	}

	if !*all && *table == 0 && *figure == 0 && *ablation == "" && *seeds == 0 && !*sweep && !*modern && !*oracle && !*adaptive {
		flag.Usage()
		exit(2)
	}

	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: metrics server: %v\n", err)
			exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/sweepz", coord.StatusHandler(sweepLogger))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "paperbench: serving metrics on %s/metrics, pprof on %s/debug/pprof/\n", ln.Addr(), ln.Addr())
	}

	// SIGINT: completed tables are already on stdout; report how far the
	// campaign got and exit 130. A second SIGINT aborts immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		go func() {
			<-sigc
			os.Exit(130)
		}()
		sims := reg.Counter("specfetch_simulations_total", "Completed simulation runs.").Value()
		si := reg.Counter("specfetch_simulated_insts_total", "Correct-path instructions simulated.").Value()
		fmt.Fprintf(os.Stderr,
			"\npaperbench: interrupted during %s: %d simulations done, %d instructions simulated; completed output above is valid\n",
			stage.Load(), sims, si)
		exit(130)
	}()

	run := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			exit(1)
		}
	}

	// collect runs one builder under a host-side span section, times it, and
	// aggregates the spans it produced into a benchfmt.Builder. Aggregation
	// only writes to stderr and the BENCH report — never stdout.
	var builders []benchfmt.Builder
	collect := func(name string, build func() error) {
		stage.Store(name)
		spans.SetSection(name)
		lo := spans.Len()
		start := hosttime.Now()
		err := build()
		wall := hosttime.Since(start).Seconds()
		run(err)
		cellSpans := spans.Spans()[lo:]
		cellSecs := make([]float64, len(cellSpans))
		var allocs uint64
		for i, sp := range cellSpans {
			cellSecs[i] = sp.Dur.Seconds()
			allocs += sp.Allocs
		}
		builders = append(builders, benchfmt.NewBuilder(name, wall, cellSecs, allocs))
	}

	newline := func() {
		_, err := fmt.Println()
		run(err)
	}
	emitTable := func(name string, fn func(experiments.Options) (*texttable.Table, error)) {
		var t *texttable.Table
		collect(name, func() (err error) {
			t, err = fn(opt)
			return err
		})
		if *csv {
			run(t.RenderCSV(os.Stdout))
		} else {
			run(t.Render(os.Stdout))
		}
		newline()
	}
	emitFigure := func(name string, fn func(experiments.Options) (*texttable.StackedBars, error)) {
		var f *texttable.StackedBars
		collect(name, func() (err error) {
			f, err = fn(opt)
			return err
		})
		run(f.Render(os.Stdout))
		newline()
	}

	tables := map[int]func(experiments.Options) (*texttable.Table, error){
		2: experiments.Table2, 3: experiments.Table3, 4: experiments.Table4,
		5: experiments.Table5, 6: experiments.Table6, 7: experiments.Table7,
	}
	figures := map[int]func(experiments.Options) (*texttable.StackedBars, error){
		1: experiments.Figure1, 2: experiments.Figure2,
		3: experiments.Figure3, 4: experiments.Figure4,
	}

	switch {
	case *adaptive:
		opt.FlushInterval = *flushIv
		var d *experiments.AdaptiveData
		collect("adaptive study", func() (err error) {
			d, err = experiments.AdaptiveStudyData(opt, *strategy, *adaptSd, *interval, nil)
			return err
		})
		tbl := d.CrossoverTable()
		if *csv {
			run(tbl.RenderCSV(os.Stdout))
		} else {
			run(tbl.Render(os.Stdout))
		}
		newline()
		_, err := fmt.Print(d.WinnerMap())
		run(err)
	case *oracle:
		opt.FlushInterval = *flushIv
		var d *experiments.OracleData
		collect("oracle selector", func() (err error) {
			d, err = experiments.OracleSelectorData(opt, *interval, nil)
			return err
		})
		tbl := d.CrossoverTable()
		if *csv {
			run(tbl.RenderCSV(os.Stdout))
		} else {
			run(tbl.Render(os.Stdout))
		}
		newline()
		_, err := fmt.Print(d.WinnerMap())
		run(err)
		if *intsOut != "" {
			f, err := os.Create(*intsOut)
			if err != nil {
				run(fmt.Errorf("intervals-out: %v", err))
			}
			if err := d.WriteJSONL(f); err != nil {
				run(fmt.Errorf("intervals-out: %v", err))
			}
			if err := f.Close(); err != nil {
				run(fmt.Errorf("intervals-out: %v", err))
			}
			fmt.Fprintf(os.Stderr, "paperbench: wrote interval JSONL to %s\n", *intsOut)
		}
	case *modern:
		emitTable("modern study", experiments.ModernStudy)
	case *sweep:
		emitTable("latency sweep", func(o experiments.Options) (*texttable.Table, error) {
			return experiments.LatencySweep(o, nil)
		})
	case *seeds > 0:
		emitTable(fmt.Sprintf("seed sensitivity (%d seeds)", *seeds),
			func(o experiments.Options) (*texttable.Table, error) {
				return experiments.SeedSensitivity(o, *seeds)
			})
	case *all:
		for n := 2; n <= 7; n++ {
			emitTable(fmt.Sprintf("table %d", n), tables[n])
		}
		for n := 1; n <= 4; n++ {
			emitFigure(fmt.Sprintf("figure %d", n), figures[n])
		}
	case *ablation != "":
		fn, ok := experiments.Ablations()[*ablation]
		if !ok {
			run(fmt.Errorf("no ablation %q", *ablation))
		}
		emitTable("ablation "+*ablation, fn)
	case *table != 0:
		fn, ok := tables[*table]
		if !ok {
			run(fmt.Errorf("no table %d (paper has tables 2-7)", *table))
		}
		emitTable(fmt.Sprintf("table %d", *table), fn)
	case *figure != 0:
		fn, ok := figures[*figure]
		if !ok {
			run(fmt.Errorf("no figure %d (paper has figures 1-4)", *figure))
		}
		emitFigure(fmt.Sprintf("figure %d", *figure), fn)
	}

	report := benchfmt.Report{
		Label:        *benchLbl,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      *workers,
		InstsPerCell: *insts,
		Builders:     builders,
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "paperbench: host-side summary (%s, GOMAXPROCS %d, workers %d):\n",
			report.GoVersion, report.GOMAXPROCS, report.Workers)
		for _, b := range report.Builders {
			fmt.Fprintf(os.Stderr,
				"paperbench:   %-24s %4d cells in %8.3fs (%7.1f cells/sec)  p50 %.4fs p95 %.4fs p99 %.4fs  %d allocs\n",
				b.Name, b.Cells, b.WallSeconds, b.CellsPerSec,
				b.P50Seconds, b.P95Seconds, b.P99Seconds, b.Allocs)
		}
	}
	if *benchOut != "" {
		if err := benchfmt.WriteFile(*benchOut, report); err != nil {
			run(fmt.Errorf("bench-out: %v", err))
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote BENCH report to %s\n", *benchOut)
	}
	if *hostTr != "" {
		f, err := os.Create(*hostTr)
		if err != nil {
			run(fmt.Errorf("host-trace: %v", err))
		}
		if err := obs.WriteCombinedTrace(f, nil, spans.Spans(), coord.FleetSpans()...); err != nil {
			run(fmt.Errorf("host-trace: %v", err))
		}
		if err := f.Close(); err != nil {
			run(fmt.Errorf("host-trace: %v", err))
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote host trace to %s\n", *hostTr)
	}
	stopProfiles()
}
