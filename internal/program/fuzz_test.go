package program

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadImage feeds arbitrary text to the image parser: no panics, and
// any accepted image must round-trip identically.
func FuzzReadImage(f *testing.F) {
	var good bytes.Buffer
	img := buildSample(&testing.T{})
	if err := WriteImage(&good, img); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("image v1 base 0x0\nplain 3\nret\n")
	f.Add("image v1 base 0x0\nfunc f 0x100\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		img, err := ReadImage(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteImage(&out, img); err != nil {
			t.Fatalf("accepted image failed to serialize: %v", err)
		}
		img2, err := ReadImage(&out)
		if err != nil {
			t.Fatalf("serialized image failed to re-parse: %v", err)
		}
		if img2.NumInsts() != img.NumInsts() || img2.Base() != img.Base() {
			t.Fatalf("round trip changed shape: %d@%s vs %d@%s",
				img.NumInsts(), img.Base(), img2.NumInsts(), img2.Base())
		}
		for pc := img.Base(); pc < img.End(); pc = pc.Next() {
			if img.At(pc) != img2.At(pc) {
				t.Fatalf("round trip changed instruction at %s", pc)
			}
		}
	})
}
