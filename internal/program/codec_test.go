package program

import (
	"bytes"
	"strings"
	"testing"

	"specfetch/internal/isa"
)

func buildSample(t *testing.T) *Image {
	t.Helper()
	b, _ := NewBuilder(0x1000)
	b.MarkFunc("alpha")
	b.AppendPlain(5)
	b.Append(Inst{Kind: isa.CondBranch, Target: 0x1000})
	b.Append(Inst{Kind: isa.Call, Target: 0x1020})
	b.Append(Inst{Kind: isa.Return})
	b.MarkFunc("beta")
	b.AppendPlain(2)
	b.Append(Inst{Kind: isa.IndirectCall})
	b.Append(Inst{Kind: isa.Jump, Target: 0x1000})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestImageRoundTrip(t *testing.T) {
	img := buildSample(t)
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatalf("read: %v\n", err)
	}
	if got.Base() != img.Base() || got.NumInsts() != img.NumInsts() {
		t.Fatalf("shape: base %s insts %d, want %s %d",
			got.Base(), got.NumInsts(), img.Base(), img.NumInsts())
	}
	for pc := img.Base(); pc < img.End(); pc = pc.Next() {
		if got.At(pc) != img.At(pc) {
			t.Errorf("instruction at %s differs: %+v vs %+v", pc, got.At(pc), img.At(pc))
		}
	}
	gf, wf := got.Funcs(), img.Funcs()
	if len(gf) != len(wf) {
		t.Fatalf("func count %d, want %d", len(gf), len(wf))
	}
	for i := range gf {
		if gf[i] != wf[i] {
			t.Errorf("func %d: %+v vs %+v", i, gf[i], wf[i])
		}
	}
}

func TestImageFormatReadable(t *testing.T) {
	img := buildSample(t)
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"image v1 base 0x1000", "func alpha 0x1000",
		"plain 5", "cond 0x1000", "call 0x1020", "ret", "icall", "jump 0x1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized image missing %q:\n%s", want, out)
		}
	}
}

func TestReadImageErrors(t *testing.T) {
	cases := []string{
		"",                                // empty
		"bogus header",                    // bad header
		"image v2 base 0x0\nplain 1",      // wrong version
		"image v1 base zz\nplain 1",       // bad base
		"image v1 base 0x0\nplain x",      // bad count
		"image v1 base 0x0\nplain 0",      // zero count
		"image v1 base 0x0\nfrob",         // unknown directive
		"image v1 base 0x0\ncond",         // missing target
		"image v1 base 0x0\nret 0x4",      // operand on ret
		"image v1 base 0x0\nfunc f 0x100", // func not at emission point
		"image v1 base 0x0\njump 0x800",   // target outside image
	}
	for _, in := range cases {
		if _, err := ReadImage(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestImageRoundTripComments(t *testing.T) {
	in := "# leading comment\nimage v1 base 0x0\nplain 2 # trailing\n\n# mid\nret\n"
	img, err := ReadImage(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if img.NumInsts() != 3 || img.At(8).Kind != isa.Return {
		t.Errorf("parsed image wrong: %d insts", img.NumInsts())
	}
}
