// Package program models a static instruction image: every instruction in
// the simulated binary, addressable by byte address. The speculative fetch
// engine walks this image when it runs down a wrong path, because the
// dynamic trace only covers the correct path.
package program

import (
	"fmt"
	"sort"

	"specfetch/internal/isa"
)

// Inst describes one static instruction.
type Inst struct {
	// Kind classifies the instruction for the branch architecture.
	Kind isa.Kind
	// Target is the statically-known destination for direct control
	// transfers (CondBranch, Jump, Call). It is zero for Plain and for
	// indirect transfers, whose destinations are only known dynamically.
	Target isa.Addr
}

// Image is an immutable static code image. Addresses run from Base to
// Base + 4*len(code); every slot holds an instruction.
type Image struct {
	base isa.Addr
	code []Inst
	// plainRun[i] is the number of consecutive Plain instructions starting
	// at slot i (0 when slot i is a control transfer). Trace generators use
	// it to emit whole basic-block prefixes without walking instruction by
	// instruction.
	plainRun []int32
	// funcs records function entry addresses, sorted, for tooling.
	funcs []Func
}

// Func names a function's extent inside the image.
type Func struct {
	Name  string
	Entry isa.Addr
	// NumInsts is the function length in instructions.
	NumInsts int
}

// Builder accumulates instructions for an Image.
type Builder struct {
	base  isa.Addr
	code  []Inst
	funcs []Func
}

// NewBuilder starts an image at the given base address. The base must be
// instruction aligned.
func NewBuilder(base isa.Addr) (*Builder, error) {
	if uint64(base)%isa.InstBytes != 0 {
		return nil, fmt.Errorf("program: base %s is not %d-byte aligned", base, isa.InstBytes)
	}
	return &Builder{base: base}, nil
}

// PC returns the address the next appended instruction will occupy.
func (b *Builder) PC() isa.Addr { return b.base.Plus(len(b.code)) }

// Append adds one instruction and returns its address.
func (b *Builder) Append(in Inst) isa.Addr {
	pc := b.PC()
	b.code = append(b.code, in)
	return pc
}

// AppendPlain adds n plain instructions.
func (b *Builder) AppendPlain(n int) {
	for i := 0; i < n; i++ {
		b.Append(Inst{Kind: isa.Plain})
	}
}

// MarkFunc records a function entry at the current PC.
func (b *Builder) MarkFunc(name string) {
	b.funcs = append(b.funcs, Func{Name: name, Entry: b.PC()})
}

// Build finalizes the image. Function lengths are derived from the next
// function's entry (or the image end). Direct-branch targets are validated
// to land inside the image.
func (b *Builder) Build() (*Image, error) {
	img := &Image{base: b.base, code: b.code, funcs: b.funcs}
	sort.Slice(img.funcs, func(i, j int) bool { return img.funcs[i].Entry < img.funcs[j].Entry })
	for i := range img.funcs {
		end := img.End()
		if i+1 < len(img.funcs) {
			end = img.funcs[i+1].Entry
		}
		img.funcs[i].NumInsts = int(end-img.funcs[i].Entry) / isa.InstBytes
	}
	for i, in := range img.code {
		if in.Kind == isa.CondBranch || in.Kind == isa.Jump || in.Kind == isa.Call {
			if uint64(in.Target)%isa.InstBytes != 0 {
				return nil, fmt.Errorf("program: instruction %s has misaligned target %s", img.base.Plus(i), in.Target)
			}
			if !img.Contains(in.Target) {
				return nil, fmt.Errorf("program: instruction %s has target %s outside image [%s,%s)",
					img.base.Plus(i), in.Target, img.base, img.End())
			}
		}
	}
	img.plainRun = make([]int32, len(img.code))
	for i := len(img.code) - 1; i >= 0; i-- {
		if img.code[i].Kind != isa.Plain {
			continue
		}
		run := int32(1)
		if i+1 < len(img.code) {
			run += img.plainRun[i+1]
		}
		img.plainRun[i] = run
	}
	return img, nil
}

// Base returns the lowest instruction address.
func (img *Image) Base() isa.Addr { return img.base }

// End returns the first address past the image.
func (img *Image) End() isa.Addr { return img.base.Plus(len(img.code)) }

// NumInsts returns the static instruction count.
func (img *Image) NumInsts() int { return len(img.code) }

// SizeBytes returns the code footprint in bytes.
func (img *Image) SizeBytes() int { return len(img.code) * isa.InstBytes }

// Contains reports whether a is a valid instruction address in the image.
func (img *Image) Contains(a isa.Addr) bool {
	return a >= img.base && a < img.End() && uint64(a)%isa.InstBytes == 0
}

// At returns the instruction at address a. It panics if a is outside the
// image; callers on speculative paths should check Contains first. The
// panic construction lives in a separate function so At itself stays small
// enough to inline into fetch loops.
func (img *Image) At(a isa.Addr) Inst {
	if !img.Contains(a) {
		img.atPanic(a)
	}
	return img.code[(a-img.base)/isa.InstBytes]
}

func (img *Image) atPanic(a isa.Addr) {
	panic(fmt.Sprintf("program: address %s outside image [%s,%s)", a, img.base, img.End()))
}

// PlainRunLen returns the number of consecutive Plain instructions starting
// at address a (0 when a holds a control transfer). a must be inside the
// image.
func (img *Image) PlainRunLen(a isa.Addr) int {
	if !img.Contains(a) {
		img.atPanic(a)
	}
	return int(img.plainRun[(a-img.base)/isa.InstBytes])
}

// Funcs returns the recorded functions, sorted by entry address.
func (img *Image) Funcs() []Func { return img.funcs }

// FuncAt returns the function containing address a, if any.
func (img *Image) FuncAt(a isa.Addr) (Func, bool) {
	i := sort.Search(len(img.funcs), func(i int) bool { return img.funcs[i].Entry > a })
	if i == 0 {
		return Func{}, false
	}
	f := img.funcs[i-1]
	if a >= f.Entry && a < f.Entry.Plus(f.NumInsts) {
		return f, true
	}
	return Func{}, false
}

// Stats summarizes the static mix of the image.
type Stats struct {
	Insts       int
	Branches    int
	Conditional int
	Indirect    int
	Calls       int
	Returns     int
}

// Stats computes the static instruction mix.
func (img *Image) Stats() Stats {
	var s Stats
	s.Insts = len(img.code)
	for _, in := range img.code {
		if !in.Kind.IsBranch() {
			continue
		}
		s.Branches++
		switch {
		case in.Kind.IsConditional():
			s.Conditional++
		case in.Kind.IsIndirect():
			s.Indirect++
		}
		if in.Kind.IsCall() {
			s.Calls++
		}
		if in.Kind == isa.Return {
			s.Returns++
		}
	}
	return s
}
