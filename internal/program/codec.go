// Image serialization. The text format makes static images portable
// between tools (tracegen writes them, fetchsim reads them), so traces
// captured elsewhere can be replayed against their code image:
//
//	# comments allowed
//	image v1 base 0x10000
//	func f000 0x10000
//	plain 3            # run-length encoded plain instructions
//	cond 0x10020
//	jump 0x10000
//	ret
//
// Instructions appear in address order; `plain N` emits N plain
// instructions; control transfers name their kind and (for direct ones)
// their target. `func NAME ADDR` marks a function entry, and must appear
// before the instruction at ADDR.
package program

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"specfetch/internal/isa"
)

// WriteImage serializes img in the text format.
func WriteImage(w io.Writer, img *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "image v1 base 0x%x\n", uint64(img.Base())); err != nil {
		return err
	}
	funcs := img.Funcs()
	fi := 0
	plainRun := 0
	flushPlains := func() error {
		if plainRun == 0 {
			return nil
		}
		_, err := fmt.Fprintf(bw, "plain %d\n", plainRun)
		plainRun = 0
		return err
	}
	for pc := img.Base(); pc < img.End(); pc = pc.Next() {
		for fi < len(funcs) && funcs[fi].Entry == pc {
			if err := flushPlains(); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw, "func %s 0x%x\n", funcs[fi].Name, uint64(pc)); err != nil {
				return err
			}
			fi++
		}
		in := img.At(pc)
		if in.Kind == isa.Plain {
			plainRun++
			continue
		}
		if err := flushPlains(); err != nil {
			return err
		}
		var err error
		switch in.Kind {
		case isa.CondBranch, isa.Jump, isa.Call:
			_, err = fmt.Fprintf(bw, "%s 0x%x\n", in.Kind, uint64(in.Target))
		default:
			_, err = fmt.Fprintf(bw, "%s\n", in.Kind)
		}
		if err != nil {
			return err
		}
	}
	if err := flushPlains(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadImage parses the text format.
func ReadImage(r io.Reader) (*Image, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			s := strings.TrimSpace(sc.Text())
			if i := strings.IndexByte(s, '#'); i >= 0 {
				s = strings.TrimSpace(s[:i])
			}
			if s != "" {
				return s, true
			}
		}
		return "", false
	}

	header, ok := next()
	if !ok {
		return nil, fmt.Errorf("program: empty image file")
	}
	hf := strings.Fields(header)
	if len(hf) != 4 || hf[0] != "image" || hf[1] != "v1" || hf[2] != "base" {
		return nil, fmt.Errorf("program: line %d: bad header %q", lineNo, header)
	}
	base, err := strconv.ParseUint(strings.TrimPrefix(hf[3], "0x"), 16, 64)
	if err != nil {
		return nil, fmt.Errorf("program: line %d: bad base: %w", lineNo, err)
	}
	b, err := NewBuilder(isa.Addr(base))
	if err != nil {
		return nil, err
	}

	for {
		line, ok := next()
		if !ok {
			break
		}
		f := strings.Fields(line)
		switch f[0] {
		case "func":
			if len(f) != 3 {
				return nil, fmt.Errorf("program: line %d: func needs name and address", lineNo)
			}
			addr, err := strconv.ParseUint(strings.TrimPrefix(f[2], "0x"), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("program: line %d: bad func address: %w", lineNo, err)
			}
			if isa.Addr(addr) != b.PC() {
				return nil, fmt.Errorf("program: line %d: func %s at %s but emission is at %s",
					lineNo, f[1], isa.Addr(addr), b.PC())
			}
			b.MarkFunc(f[1])
		case "plain":
			if len(f) != 2 {
				return nil, fmt.Errorf("program: line %d: plain needs a count", lineNo)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("program: line %d: bad plain count %q", lineNo, f[1])
			}
			b.AppendPlain(n)
		default:
			kind, ok := isa.ParseKind(f[0])
			if !ok || kind == isa.Plain {
				return nil, fmt.Errorf("program: line %d: unknown directive %q", lineNo, f[0])
			}
			in := Inst{Kind: kind}
			switch kind {
			case isa.CondBranch, isa.Jump, isa.Call:
				if len(f) != 2 {
					return nil, fmt.Errorf("program: line %d: %s needs a target", lineNo, kind)
				}
				tgt, err := strconv.ParseUint(strings.TrimPrefix(f[1], "0x"), 16, 64)
				if err != nil {
					return nil, fmt.Errorf("program: line %d: bad target: %w", lineNo, err)
				}
				in.Target = isa.Addr(tgt)
			default:
				if len(f) != 1 {
					return nil, fmt.Errorf("program: line %d: %s takes no operand", lineNo, kind)
				}
			}
			b.Append(in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
