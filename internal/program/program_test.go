package program

import (
	"strings"
	"testing"

	"specfetch/internal/isa"
)

func TestBuilderBasics(t *testing.T) {
	b, err := NewBuilder(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.PC() != 0x1000 {
		t.Fatalf("initial PC = %s", b.PC())
	}
	b.MarkFunc("f")
	b.AppendPlain(3)
	pc := b.Append(Inst{Kind: isa.CondBranch, Target: 0x1000})
	if pc != 0x100c {
		t.Fatalf("branch PC = %s", pc)
	}
	b.MarkFunc("g")
	b.AppendPlain(2)
	b.Append(Inst{Kind: isa.Return})

	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if img.Base() != 0x1000 || img.NumInsts() != 7 {
		t.Fatalf("base %s insts %d", img.Base(), img.NumInsts())
	}
	if img.SizeBytes() != 28 {
		t.Fatalf("size %d", img.SizeBytes())
	}
	if img.End() != 0x101c {
		t.Fatalf("end %s", img.End())
	}
}

func TestBuilderMisalignedBase(t *testing.T) {
	if _, err := NewBuilder(0x1001); err == nil {
		t.Error("misaligned base accepted")
	}
}

func TestBuildRejectsBadTargets(t *testing.T) {
	b, _ := NewBuilder(0)
	b.AppendPlain(2)
	b.Append(Inst{Kind: isa.Jump, Target: 0x8000}) // outside image
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "outside image") {
		t.Errorf("out-of-image target not rejected: %v", err)
	}

	b2, _ := NewBuilder(0)
	b2.AppendPlain(2)
	b2.Append(Inst{Kind: isa.Jump, Target: 0x2}) // misaligned
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("misaligned target not rejected: %v", err)
	}
}

func TestContainsAndAt(t *testing.T) {
	b, _ := NewBuilder(0x100)
	b.AppendPlain(1)
	b.Append(Inst{Kind: isa.Call, Target: 0x100})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	if img.Contains(0xfc) || img.Contains(0x108) || img.Contains(0x102) {
		t.Error("Contains accepts out-of-image or misaligned addresses")
	}
	if !img.Contains(0x100) || !img.Contains(0x104) {
		t.Error("Contains rejects valid addresses")
	}
	if img.At(0x104).Kind != isa.Call {
		t.Errorf("At(0x104) = %v", img.At(0x104))
	}
	defer func() {
		if recover() == nil {
			t.Error("At outside image did not panic")
		}
	}()
	img.At(0x108)
}

func TestFuncAt(t *testing.T) {
	b, _ := NewBuilder(0)
	b.MarkFunc("a")
	b.AppendPlain(4)
	b.MarkFunc("b")
	b.AppendPlain(4)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	fs := img.Funcs()
	if len(fs) != 2 || fs[0].Name != "a" || fs[1].Name != "b" {
		t.Fatalf("funcs = %+v", fs)
	}
	if fs[0].NumInsts != 4 || fs[1].NumInsts != 4 {
		t.Fatalf("func lengths = %d, %d", fs[0].NumInsts, fs[1].NumInsts)
	}
	f, ok := img.FuncAt(0x8)
	if !ok || f.Name != "a" {
		t.Errorf("FuncAt(0x8) = %+v, %v", f, ok)
	}
	f, ok = img.FuncAt(0x10)
	if !ok || f.Name != "b" {
		t.Errorf("FuncAt(0x10) = %+v, %v", f, ok)
	}
}

func TestStats(t *testing.T) {
	b, _ := NewBuilder(0)
	b.AppendPlain(10)
	b.Append(Inst{Kind: isa.CondBranch, Target: 0})
	b.Append(Inst{Kind: isa.Call, Target: 0})
	b.Append(Inst{Kind: isa.IndirectCall})
	b.Append(Inst{Kind: isa.Return})
	b.Append(Inst{Kind: isa.Jump, Target: 0})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := img.Stats()
	want := Stats{Insts: 15, Branches: 5, Conditional: 1, Indirect: 2, Calls: 2, Returns: 1}
	if s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}
}
