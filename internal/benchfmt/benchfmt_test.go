package benchfmt

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleReport(scale float64) Report {
	return Report{
		Label:        "test",
		GoVersion:    "go1.22",
		GOMAXPROCS:   4,
		Workers:      4,
		InstsPerCell: 200_000,
		Builders: []Builder{
			NewBuilder("table 6", 1.0*scale, []float64{0.09 * scale, 0.10 * scale, 0.11 * scale, 0.10 * scale}, 1000),
			NewBuilder("figure 1", 2.0*scale, []float64{0.45 * scale, 0.55 * scale, 0.50 * scale, 0.50 * scale}, 2000),
		},
	}
}

// TestNewBuilderStats pins the aggregation: cell count, throughput, and
// exact nearest-rank quantiles.
func TestNewBuilderStats(t *testing.T) {
	b := NewBuilder("t", 2.0, []float64{0.4, 0.1, 0.3, 0.2}, 42)
	if b.Cells != 4 {
		t.Errorf("Cells = %d, want 4", b.Cells)
	}
	if b.CellsPerSec != 2.0 {
		t.Errorf("CellsPerSec = %g, want 2", b.CellsPerSec)
	}
	if b.Allocs != 42 {
		t.Errorf("Allocs = %d, want 42", b.Allocs)
	}
	// Nearest-rank on {0.1 0.2 0.3 0.4}: p50 = rank 2 = 0.2; p95/p99 = rank 4.
	if b.P50Seconds != 0.2 || b.P95Seconds != 0.4 || b.P99Seconds != 0.4 {
		t.Errorf("quantiles = %g/%g/%g, want 0.2/0.4/0.4", b.P50Seconds, b.P95Seconds, b.P99Seconds)
	}

	empty := NewBuilder("e", 0, nil, 0)
	if empty.CellsPerSec != 0 || empty.P50Seconds != 0 {
		t.Errorf("empty builder stats = %+v, want zeros", empty)
	}
}

// TestQuantileExact covers nearest-rank semantics on a known sample.
func TestQuantileExact(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.05, 1}, {0.1, 1}, {0.11, 2}, {0.5, 5}, {0.95, 10}, {0.99, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %g, want 0", got)
	}
}

// TestReportRoundTrip: Write then Read reconstructs the report exactly, and
// unknown fields are rejected.
func TestReportRoundTrip(t *testing.T) {
	want := sampleReport(1)
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("Write output lacks trailing newline")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}

	if _, err := Read(strings.NewReader(`{"label":"x","bogus_field":1}`)); err == nil {
		t.Error("Read accepted an unknown field")
	}
}

// TestCompareSelfVsSelf is half the perf gate's acceptance contract: a
// report compared against itself produces no regressions at any threshold.
func TestCompareSelfVsSelf(t *testing.T) {
	r := sampleReport(1)
	deltas := Compare(r, r, 0)
	if AnyRegression(deltas) {
		t.Fatalf("self-vs-self comparison reported a regression: %+v", deltas)
	}
	for _, d := range deltas {
		if d.Ratio != 1 {
			t.Errorf("%s: self ratio = %g, want 1", d.Name, d.Ratio)
		}
	}
	if g := GeomeanRatio(deltas); g != 1 {
		t.Errorf("self geomean = %g, want 1", g)
	}
}

// TestCompareDetectsInjectedSlowdown is the other half: an artificial 2x
// slowdown must cross any sane noise threshold.
func TestCompareDetectsInjectedSlowdown(t *testing.T) {
	old, slow := sampleReport(1), sampleReport(2)
	deltas := Compare(old, slow, 0.5)
	if !AnyRegression(deltas) {
		t.Fatal("2x slowdown not flagged at threshold 0.5")
	}
	for _, d := range deltas {
		if !d.Regression {
			t.Errorf("%s: 2x slower but not marked as regression (ratio %g)", d.Name, d.Ratio)
		}
		if math.Abs(d.Ratio-2) > 1e-9 {
			t.Errorf("%s: ratio = %g, want 2", d.Name, d.Ratio)
		}
	}
	if g := GeomeanRatio(deltas); math.Abs(g-2) > 1e-9 {
		t.Errorf("geomean = %g, want 2", g)
	}
}

// TestCompareThreshold: the noise threshold is a strict boundary — at or
// below it is noise, above it is a regression.
func TestCompareThreshold(t *testing.T) {
	old := Report{Builders: []Builder{NewBuilder("b", 1.0, []float64{0.1}, 0)}}
	within := Report{Builders: []Builder{NewBuilder("b", 1.10, []float64{0.11}, 0)}}
	beyond := Report{Builders: []Builder{NewBuilder("b", 1.21, []float64{0.121}, 0)}}
	if AnyRegression(Compare(old, within, 0.2)) {
		t.Error("10% slowdown flagged at 20% threshold")
	}
	if !AnyRegression(Compare(old, beyond, 0.2)) {
		t.Error("21% slowdown not flagged at 20% threshold")
	}
	// Improvements are never regressions.
	faster := Report{Builders: []Builder{NewBuilder("b", 0.5, []float64{0.05}, 0)}}
	if AnyRegression(Compare(old, faster, 0)) {
		t.Error("2x speedup flagged as regression")
	}
}

// TestCompareMissingBuilders: builders on only one side are reported but
// never fail the gate.
func TestCompareMissingBuilders(t *testing.T) {
	old := Report{Builders: []Builder{
		NewBuilder("kept", 1, []float64{0.1}, 0),
		NewBuilder("removed", 1, []float64{0.1}, 0),
	}}
	head := Report{Builders: []Builder{
		NewBuilder("kept", 1, []float64{0.1}, 0),
		NewBuilder("added", 1, []float64{0.1}, 0),
	}}
	deltas := Compare(old, head, 0)
	if AnyRegression(deltas) {
		t.Error("missing builders flagged as regression")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if !byName["removed"].Missing || !byName["added"].Missing || byName["kept"].Missing {
		t.Errorf("missing flags wrong: %+v", deltas)
	}
}

// TestFormatDeltas spot-checks the rendered table: header, a regression
// marker, added/removed rows, and the geomean line.
func TestFormatDeltas(t *testing.T) {
	old := Report{Builders: []Builder{
		NewBuilder("slow", 1, []float64{0.1}, 0),
		NewBuilder("removed", 1, []float64{0.1}, 0),
	}}
	head := Report{Builders: []Builder{
		NewBuilder("slow", 3, []float64{0.3}, 0),
		NewBuilder("added", 1, []float64{0.1}, 0),
	}}
	var buf bytes.Buffer
	if err := FormatDeltas(&buf, Compare(old, head, 0.2), 0.2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"builder", "REGRESSION", "removed", "added", "geomean", "+200.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareZeroTimeSides: a builder measuring zero wall time on exactly
// one side has no meaningful ratio. It must surface as an Indeterminate
// flagged row — never as a NaN/Inf ratio (which would always or never trip
// the gate), never as a regression, and never inside the geomean.
func TestCompareZeroTimeSides(t *testing.T) {
	zero := Report{Builders: []Builder{NewBuilder("b", 0, nil, 0)}}
	nonzero := Report{Builders: []Builder{NewBuilder("b", 1.0, []float64{0.1}, 0)}}

	for name, pair := range map[string][2]Report{
		"zero old": {zero, nonzero},
		"zero new": {nonzero, zero},
	} {
		deltas := Compare(pair[0], pair[1], 0)
		if len(deltas) != 1 {
			t.Fatalf("%s: %d deltas, want 1", name, len(deltas))
		}
		d := deltas[0]
		if !d.Indeterminate {
			t.Errorf("%s: not marked Indeterminate: %+v", name, d)
		}
		if d.Regression {
			t.Errorf("%s: flagged as regression", name)
		}
		if math.IsNaN(d.Ratio) || math.IsInf(d.Ratio, 0) {
			t.Errorf("%s: ratio = %g, want finite", name, d.Ratio)
		}
		if g := GeomeanRatio(deltas); g != 1 {
			t.Errorf("%s: geomean = %g, want 1 (indeterminate rows excluded)", name, g)
		}
		var buf bytes.Buffer
		if err := FormatDeltas(&buf, deltas, 0); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
			t.Errorf("%s: rendered Inf/NaN:\n%s", name, out)
		}
		if !strings.Contains(out, "ZERO-TIME") {
			t.Errorf("%s: indeterminate row not flagged in output:\n%s", name, out)
		}
	}

	// Both sides zero is vacuously unchanged, not indeterminate.
	d := Compare(zero, zero, 0)[0]
	if d.Indeterminate || d.Regression || d.Ratio != 1 {
		t.Errorf("zero-vs-zero delta = %+v, want ratio 1, no flags", d)
	}
}
