// Package benchfmt defines the machine-readable BENCH report: the JSON
// schema paperbench's -bench-out emits (one Builder entry per table/figure
// builder, with wall time, cell count, throughput, allocations, and exact
// cell-latency quantiles), plus the benchstat-style comparison cmd/perfdiff
// runs over two reports. The committed BENCH trajectory and the CI perf
// gate both speak this format, so the schema changes only additively.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Report is one BENCH_<label>.json document: a host-side performance
// snapshot of one paperbench campaign.
type Report struct {
	// Label names the run ("ci", "baseline", a commit hash, ...).
	Label string `json:"label"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS and Workers pin the parallelism the numbers were taken at;
	// comparisons across different settings are apples-to-oranges and
	// perfdiff warns about them.
	GOMAXPROCS int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// InstsPerCell is the per-benchmark instruction budget of the campaign.
	InstsPerCell int64 `json:"insts_per_cell"`
	// Builders holds one entry per builder run, in campaign order.
	Builders []Builder `json:"builders"`
}

// Builder is the host-side cost of one table/figure builder.
type Builder struct {
	// Name is the campaign stage label ("table 6", "figure 1", ...).
	Name string `json:"name"`
	// Cells is the number of sweep work units the builder executed.
	Cells int `json:"cells"`
	// WallSeconds is the builder's end-to-end host wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// CellsPerSec is Cells / WallSeconds (0 when wall time is 0).
	CellsPerSec float64 `json:"cells_per_sec"`
	// Allocs is the total heap objects allocated across the builder's
	// spans (approximate under concurrency; see obs.HostSpan.Allocs).
	Allocs uint64 `json:"allocs"`
	// P50/P95/P99Seconds are exact sample quantiles of per-cell latency.
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// NewBuilder aggregates one builder's measurements: wall time, the per-cell
// latencies in seconds (consumed: the slice is sorted in place), and the
// summed allocation count.
func NewBuilder(name string, wallSeconds float64, cellSeconds []float64, allocs uint64) Builder {
	b := Builder{
		Name:        name,
		Cells:       len(cellSeconds),
		WallSeconds: wallSeconds,
		Allocs:      allocs,
	}
	if wallSeconds > 0 {
		b.CellsPerSec = float64(b.Cells) / wallSeconds
	}
	sort.Float64s(cellSeconds)
	b.P50Seconds = Quantile(cellSeconds, 0.50)
	b.P95Seconds = Quantile(cellSeconds, 0.95)
	b.P99Seconds = Quantile(cellSeconds, 0.99)
	return b
}

// Quantile returns the exact nearest-rank q-quantile of a sorted sample
// (0 for an empty sample).
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Write emits the report as indented JSON with a trailing newline.
func Write(w io.Writer, r Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Read parses a report, rejecting unknown fields so a schema typo in a
// committed BENCH file fails loudly instead of comparing zeros.
func Read(r io.Reader) (Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// ReadFile loads one BENCH JSON file.
func ReadFile(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer func() { _ = f.Close() }() // read side; nothing to lose on close
	rep, err := Read(f)
	if err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// WriteFile writes one BENCH JSON file.
func WriteFile(path string, r Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, r); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
