package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// Delta is one builder's old-vs-new comparison. The compared metric is
// seconds per cell (wall time divided by cell count): lower is better, and
// it stays comparable when a builder's cell count changes between runs.
type Delta struct {
	Name          string
	OldSecPerCell float64
	NewSecPerCell float64
	// Ratio is New/Old seconds-per-cell; 1.0 means unchanged. Zero when
	// the delta is Indeterminate.
	Ratio float64
	// Missing marks a builder present in only one report (no ratio).
	Missing bool
	// Indeterminate marks a matched builder where exactly one side
	// measured zero time (zero cells and zero wall seconds): there is no
	// meaningful ratio, so the row is flagged for a human instead of
	// contributing a NaN/Inf that would either always or never trip the
	// gate.
	Indeterminate bool
	// Regression is set when Ratio exceeds 1+threshold.
	Regression bool
}

// Compare matches builders by name (old report order, new-only builders
// appended) and flags regressions beyond the noise threshold: a builder
// regresses when its new seconds-per-cell exceeds the old by more than
// threshold (e.g. 0.2 = 20% slower). Builders present on only one side are
// reported as Missing but never as regressions — a renamed builder should
// fail review, not the perf gate.
func Compare(old, head Report, threshold float64) []Delta {
	newByName := make(map[string]Builder, len(head.Builders))
	for _, b := range head.Builders {
		newByName[b.Name] = b
	}
	var deltas []Delta
	seen := make(map[string]bool, len(old.Builders))
	for _, ob := range old.Builders {
		seen[ob.Name] = true
		nb, ok := newByName[ob.Name]
		if !ok {
			deltas = append(deltas, Delta{Name: ob.Name, OldSecPerCell: secPerCell(ob), Missing: true})
			continue
		}
		d := Delta{
			Name:          ob.Name,
			OldSecPerCell: secPerCell(ob),
			NewSecPerCell: secPerCell(nb),
		}
		switch {
		case d.OldSecPerCell > 0 && d.NewSecPerCell > 0:
			d.Ratio = d.NewSecPerCell / d.OldSecPerCell
			d.Regression = d.Ratio > 1+threshold
		case d.OldSecPerCell == 0 && d.NewSecPerCell == 0:
			d.Ratio = 1
		default:
			d.Indeterminate = true
		}
		deltas = append(deltas, d)
	}
	for _, nb := range head.Builders {
		if !seen[nb.Name] {
			deltas = append(deltas, Delta{Name: nb.Name, NewSecPerCell: secPerCell(nb), Missing: true})
		}
	}
	return deltas
}

// secPerCell is the comparison metric; a builder with no cells contributes
// its raw wall time so a degenerate report still compares.
func secPerCell(b Builder) float64 {
	if b.Cells > 0 {
		return b.WallSeconds / float64(b.Cells)
	}
	return b.WallSeconds
}

// AnyRegression reports whether any delta crossed the threshold.
func AnyRegression(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Regression {
			return true
		}
	}
	return false
}

// GeomeanRatio returns the geometric mean of the matched ratios (1.0 when
// nothing matched) — the summary line of the comparison.
func GeomeanRatio(deltas []Delta) float64 {
	sum, n := 0.0, 0
	for _, d := range deltas {
		if d.Missing || d.Indeterminate || d.Ratio <= 0 || math.IsInf(d.Ratio, 0) {
			continue
		}
		sum += math.Log(d.Ratio)
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// FormatDeltas renders the comparison benchstat-style: one aligned row per
// builder with old/new seconds-per-cell and the percentage delta, flagging
// regressions, then the geomean summary.
func FormatDeltas(w io.Writer, deltas []Delta, threshold float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-24s %14s %14s %10s\n", "builder", "old s/cell", "new s/cell", "delta")
	for _, d := range deltas {
		switch {
		case d.Missing && d.NewSecPerCell == 0:
			fmt.Fprintf(bw, "%-24s %14s %14s %10s\n", d.Name, fmtSec(d.OldSecPerCell), "-", "removed")
		case d.Missing:
			fmt.Fprintf(bw, "%-24s %14s %14s %10s\n", d.Name, "-", fmtSec(d.NewSecPerCell), "added")
		case d.Indeterminate:
			fmt.Fprintf(bw, "%-24s %14s %14s %10s  ZERO-TIME SIDE\n",
				d.Name, fmtSec(d.OldSecPerCell), fmtSec(d.NewSecPerCell), "n/a")
		default:
			mark := ""
			if d.Regression {
				mark = "  REGRESSION"
			}
			fmt.Fprintf(bw, "%-24s %14s %14s %+9.1f%%%s\n",
				d.Name, fmtSec(d.OldSecPerCell), fmtSec(d.NewSecPerCell), (d.Ratio-1)*100, mark)
		}
	}
	fmt.Fprintf(bw, "%-24s %14s %14s %+9.1f%%  (threshold %.0f%%)\n",
		"geomean", "", "", (GeomeanRatio(deltas)-1)*100, threshold*100)
	return bw.Flush()
}

// fmtSec renders a seconds value with stable width-friendly precision.
func fmtSec(s float64) string {
	return fmt.Sprintf("%.6f", s)
}
