// Profile-guided code layout — the paper's closing "further study" item
// ("software techniques, like profile driven basic-block reordering").
//
// ReorderByProfile runs a profiling walk over a benchmark, ranks functions
// by dynamic execution frequency, and rebuilds the static image with the
// hottest functions packed together at the bottom of the address space.
// Dynamic behaviour is unchanged (the same sites make the same decisions);
// only addresses move, so any I-cache improvement is purely a layout effect.
package synth

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"specfetch/internal/isa"
	"specfetch/internal/program"
	"specfetch/internal/trace"
)

// ReorderByProfile returns a new benchmark with hotness-ordered layout. The
// profiling walk uses the given stream seed and instruction budget; use the
// same seed later to evaluate on the exact training trace, or a different
// one for a train/test split.
func ReorderByProfile(b *Bench, profileInsts int64, streamSeed uint64) (*Bench, error) {
	counts, err := profileFuncs(b, profileInsts, streamSeed)
	if err != nil {
		return nil, err
	}

	funcs := b.img.Funcs()
	if len(funcs) == 0 {
		return nil, errors.New("synth: image has no functions to reorder")
	}
	order := make([]int, len(funcs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return counts[funcs[order[i]].Entry] > counts[funcs[order[j]].Entry]
	})

	return relayout(b, order)
}

// profileFuncs counts dynamic instructions per function entry.
func profileFuncs(b *Bench, insts int64, streamSeed uint64) (map[isa.Addr]int64, error) {
	counts := make(map[isa.Addr]int64)
	rd := trace.NewLimitReader(b.NewWalker(streamSeed), insts)
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return counts, nil
		}
		if err != nil {
			return nil, fmt.Errorf("synth: profiling walk: %w", err)
		}
		if f, ok := b.img.FuncAt(rec.Start); ok {
			counts[f.Entry] += int64(rec.N)
		}
	}
}

// sortedSites returns m's keys in ascending address order, so iterating the
// site maps (and any remap error they surface) is reproducible.
func sortedSites[V any](m map[isa.Addr]V) []isa.Addr {
	keys := make([]isa.Addr, 0, len(m))
	for a := range m {
		keys = append(keys, a)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// relayout rebuilds the benchmark with functions emitted in the given order
// (indices into the image's function list).
func relayout(b *Bench, order []int) (*Bench, error) {
	oldImg := b.img
	funcs := oldImg.Funcs()
	geom := isa.MustLineGeom(isa.DefaultLineBytes)

	// First pass: assign each function its new line-aligned entry address.
	newEntry := make(map[isa.Addr]isa.Addr, len(funcs))
	pc := oldImg.Base()
	for _, idx := range order {
		f := funcs[idx]
		if off := uint64(pc) % uint64(geom.LineBytes); off != 0 {
			pc = pc.Plus(int((uint64(geom.LineBytes) - off) / isa.InstBytes))
		}
		newEntry[f.Entry] = pc
		pc = pc.Plus(f.NumInsts)
	}

	// remap translates any old instruction address through its containing
	// function's displacement.
	remap := func(a isa.Addr) (isa.Addr, error) {
		f, ok := oldImg.FuncAt(a)
		if !ok {
			return 0, fmt.Errorf("synth: address %s outside any function", a)
		}
		return newEntry[f.Entry] + (a - f.Entry), nil
	}

	// Second pass: emit code.
	nb, err := program.NewBuilder(oldImg.Base())
	if err != nil {
		return nil, err
	}
	for _, idx := range order {
		f := funcs[idx]
		for uint64(nb.PC())%uint64(geom.LineBytes) != 0 {
			nb.Append(program.Inst{Kind: isa.Plain})
		}
		if nb.PC() != newEntry[f.Entry] {
			return nil, fmt.Errorf("synth: layout drift for %s: planned %s, emitting at %s",
				f.Name, newEntry[f.Entry], nb.PC())
		}
		nb.MarkFunc(f.Name)
		for i := 0; i < f.NumInsts; i++ {
			in := oldImg.At(f.Entry.Plus(i))
			if in.Kind == isa.CondBranch || in.Kind == isa.Jump || in.Kind == isa.Call {
				t, err := remap(in.Target)
				if err != nil {
					return nil, err
				}
				in.Target = t
			}
			nb.Append(in)
		}
	}
	newImg, err := nb.Build()
	if err != nil {
		return nil, fmt.Errorf("synth: rebuilding reordered image: %w", err)
	}

	// Remap the dynamic-site metadata, visiting sites in address order so a
	// remap failure always reports the same (lowest) offending address.
	newConds := make(map[isa.Addr]condMeta, len(b.conds))
	for _, a := range sortedSites(b.conds) {
		na, err := remap(a)
		if err != nil {
			return nil, err
		}
		newConds[na] = b.conds[a]
	}
	newIndirs := make(map[isa.Addr]indirectMeta, len(b.indirs))
	for _, a := range sortedSites(b.indirs) {
		m := b.indirs[a]
		na, err := remap(a)
		if err != nil {
			return nil, err
		}
		nm := indirectMeta{targets: make([]isa.Addr, len(m.targets)), zipf: m.zipf}
		for i, t := range m.targets {
			nt, err := remap(t)
			if err != nil {
				return nil, err
			}
			nm.targets[i] = nt
		}
		newIndirs[na] = nm
	}
	newGuards := make(map[isa.Addr]int, len(b.guardIdx))
	for _, a := range sortedSites(b.guardIdx) {
		na, err := remap(a)
		if err != nil {
			return nil, err
		}
		newGuards[na] = b.guardIdx[a]
	}
	entry, err := remap(b.entry)
	if err != nil {
		return nil, err
	}
	loopStart, err := remap(b.loopStart)
	if err != nil {
		return nil, err
	}

	return &Bench{
		profile:   b.profile,
		img:       newImg,
		entry:     entry,
		conds:     newConds,
		indirs:    newIndirs,
		loopStart: loopStart,
		guardIdx:  newGuards,
	}, nil
}
