package synth

// Modern-footprint profiles: datacenter-style stand-ins (web serving,
// database, search ranking) with instruction footprints an order of
// magnitude beyond SPEC92's. They are NOT calibrated against the paper —
// they exist to ask whether the paper's 1995 conclusions survive 2020s-scale
// front-end working sets (the "does it still hold" study in
// experiments.ModernStudy).

// ModernProfiles returns the datacenter-style workload set.
func ModernProfiles() []Profile {
	return []Profile{Web(), DB(), Search()}
}

// Web imitates a request-serving binary: a very large, flat code footprint
// traversed shallowly per request, heavy virtual dispatch.
func Web() Profile {
	return Profile{
		Name: "web", Lang: CPP,
		Description: "request-serving datacenter binary: very large flat footprint, virtual dispatch",
		Seed:        0x3eb,
		NumFuncs:    1600, SegmentsPerFunc: [2]int{5, 12},
		MeanBlockLen: 4.5, LoopFrac: 0.05, MeanLoopTrip: 6, LoopBodyMul: 1.0,
		CallFrac: 0.15, IndirectCallFrac: 0.22, IndirectJumpFrac: 0.02, IndirectFanout: 6,
		CondBiasFrac: 0.85, PatternFrac: 0.06, BiasNear: 0.03, BiasTakenSide: 0.35,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.30, CallDepth: 6, DriverCallSites: 600, DriverCallExecP: 0.50,
	}
}

// DB imitates a database engine: large footprint with a hot row-access
// kernel plus broad cold paths, phased by query type.
func DB() Profile {
	return Profile{
		Name: "db", Lang: CPP,
		Description: "database engine: hot access kernel over a large phased footprint",
		Seed:        0xdb2,
		NumFuncs:    1000, SegmentsPerFunc: [2]int{5, 12},
		MeanBlockLen: 5.0, LoopFrac: 0.10, MeanLoopTrip: 10, LoopBodyMul: 1.2,
		CallFrac: 0.16, IndirectCallFrac: 0.15, IndirectJumpFrac: 0.02, IndirectFanout: 6,
		CondBiasFrac: 0.86, PatternFrac: 0.06, BiasNear: 0.03, BiasTakenSide: 0.30,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.55, CallDepth: 6, DriverCallSites: 400, DriverCallExecP: 0.55,
		PhaseSites: 120, PhaseIters: 6,
	}
}

// Search imitates a ranking stack: compute-heavy scoring loops embedded in
// a large feature-extraction surface.
func Search() Profile {
	return Profile{
		Name: "search", Lang: CPP,
		Description: "search ranking stack: scoring loops inside a large feature surface",
		Seed:        0x5ea,
		NumFuncs:    1200, SegmentsPerFunc: [2]int{5, 12},
		MeanBlockLen: 6.5, LoopFrac: 0.14, MeanLoopTrip: 16, LoopBodyMul: 1.6,
		CallFrac: 0.15, IndirectCallFrac: 0.12, IndirectJumpFrac: 0.02, IndirectFanout: 5,
		CondBiasFrac: 0.88, PatternFrac: 0.05, BiasNear: 0.02, BiasTakenSide: 0.30,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.40, CallDepth: 6, DriverCallSites: 450, DriverCallExecP: 0.50,
	}
}
