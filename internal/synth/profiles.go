package synth

// The 13 stock profiles imitate the paper's Table 2 benchmarks. Parameters
// were calibrated against the paper's Table 3 characteristics (branch
// fraction, 8K/32K miss rates, PHT/BTB penalty ordering) using
// cmd/calibrate; see EXPERIMENTS.md for achieved-vs-paper numbers.
//
// Calibration notes (why the knobs look the way they do):
//   - Branch outcome streams must be low entropy (strong biases, agreeing
//     directions, long loop trips); high-entropy streams whiten the global
//     history register and destroy a 512-entry gshare PHT through aliasing,
//     which real loop-structured code does not do.
//   - Working-set size is set jointly by DriverCallSites, ZipfS and
//     NumFuncs; nested CallFrac must stay modest or call trees bottom out
//     in a few hot leaves and the effective footprint collapses.
//   - Patterned sites only pay off inside loops, where gshare can see the
//     site's own outcomes in its history; they produce the paper's
//     prediction loss under deep speculation (stale history).

// Profiles returns the stock benchmark profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{
		Doduc(), Fpppp(), Su2cor(),
		Ditroff(), GCC(), Li(), Tex(),
		Cfront(), DBpp(), Groff(), IDL(), Lic(), Porky(),
	}
}

// ProfileByName finds a stock profile, searching the paper suite and the
// modern-footprint suite.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range ModernProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Doduc imitates the Monte-Carlo thermohydraulics Fortran code: moderate
// branch density, dominant predictable loops, mid-sized hot code.
func Doduc() Profile {
	return Profile{
		Name: "doduc", Lang: Fortran,
		Description: "Monte Carlo nuclear-reactor simulation (Fortran): loop-dominated, predictable branches",
		Seed:        0xd0d0c,
		NumFuncs:    110, SegmentsPerFunc: [2]int{6, 12},
		MeanBlockLen: 7.0, LoopFrac: 0.12, MeanLoopTrip: 12, LoopBodyMul: 2.0,
		CallFrac: 0.12, IndirectCallFrac: 0, IndirectJumpFrac: 0, IndirectFanout: 2,
		CondBiasFrac: 0.50, PatternFrac: 0.10, BiasNear: 0.03, BiasTakenSide: 0.15,
		HardRange: [2]float64{0.20, 0.60},
		ZipfS:     0.90, CallDepth: 3, DriverCallSites: 50, DriverCallExecP: 0.55,
	}
}

// Fpppp imitates the two-electron-integral quantum chemistry code: huge
// straight-line basic blocks streaming through a large footprint.
func Fpppp() Profile {
	return Profile{
		Name: "fpppp", Lang: Fortran,
		Description: "Quantum chemistry (Fortran): enormous basic blocks, very low branch density",
		Seed:        0xf9999,
		NumFuncs:    9, SegmentsPerFunc: [2]int{28, 42},
		MeanBlockLen: 22, LoopFrac: 0.06, MeanLoopTrip: 8, LoopBodyMul: 3.0,
		CallFrac: 0.04, IndirectCallFrac: 0, IndirectJumpFrac: 0, IndirectFanout: 2,
		CondBiasFrac: 0.88, PatternFrac: 0.04, BiasNear: 0.02, BiasTakenSide: 0.30,
		HardRange: [2]float64{0.15, 0.45},
		ZipfS:     0.65, CallDepth: 2, DriverCallSites: 12, DriverCallExecP: 0.95,
	}
}

// Su2cor imitates the quark-gluon lattice code: long predictable loops over
// a small hot kernel.
func Su2cor() Profile {
	return Profile{
		Name: "su2cor", Lang: Fortran,
		Description: "Quark-gluon lattice QCD (Fortran): long trip-count loops, tiny hot set",
		Seed:        0x50c02,
		NumFuncs:    28, SegmentsPerFunc: [2]int{8, 14},
		MeanBlockLen: 13, LoopFrac: 0.35, MeanLoopTrip: 20, LoopBodyMul: 2.0,
		CallFrac: 0.08, IndirectCallFrac: 0, IndirectJumpFrac: 0, IndirectFanout: 2,
		CondBiasFrac: 0.82, PatternFrac: 0.06, BiasNear: 0.02, BiasTakenSide: 0.30,
		HardRange: [2]float64{0.15, 0.45},
		ZipfS:     0.85, CallDepth: 2, DriverCallSites: 40, DriverCallExecP: 0.80,
	}
}

// Ditroff imitates the C troff text formatter.
func Ditroff() Profile {
	return Profile{
		Name: "ditroff", Lang: C,
		Description: "ditroff text formatter (C): branchy character processing",
		Seed:        0xd17,
		NumFuncs:    190, SegmentsPerFunc: [2]int{4, 10},
		MeanBlockLen: 3.5, LoopFrac: 0.08, MeanLoopTrip: 10, LoopBodyMul: 1.0,
		CallFrac: 0.18, IndirectCallFrac: 0, IndirectJumpFrac: 0.02, IndirectFanout: 6,
		CondBiasFrac: 0.85, PatternFrac: 0.08, BiasNear: 0.03, BiasTakenSide: 0.30,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.55, CallDepth: 4, DriverCallSites: 120, DriverCallExecP: 0.55,
	}
}

// GCC imitates cc1 of GNU C 1.35: a large, flat code working set.
func GCC() Profile {
	return Profile{
		Name: "gcc", Lang: C,
		Description: "GNU C compiler cc1 (C): large flat working set, hard branches",
		Seed:        0x9cc,
		NumFuncs:    450, SegmentsPerFunc: [2]int{5, 11},
		MeanBlockLen: 3.6, LoopFrac: 0.08, MeanLoopTrip: 10, LoopBodyMul: 1.0,
		CallFrac: 0.15, IndirectCallFrac: 0, IndirectJumpFrac: 0.03, IndirectFanout: 8,
		CondBiasFrac: 0.85, PatternFrac: 0.08, BiasNear: 0.035, BiasTakenSide: 0.35,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.55, CallDepth: 5, DriverCallSites: 220, DriverCallExecP: 0.50,
	}
}

// Li imitates the XLISP interpreter: small hot dispatch kernel, heavy calls.
func Li() Profile {
	return Profile{
		Name: "li", Lang: C,
		Description: "XLISP interpreter (C): small hot eval kernel, call heavy",
		Seed:        0x11,
		NumFuncs:    85, SegmentsPerFunc: [2]int{4, 9},
		MeanBlockLen: 3.0, LoopFrac: 0.06, MeanLoopTrip: 8, LoopBodyMul: 1.0,
		CallFrac: 0.18, IndirectCallFrac: 0, IndirectJumpFrac: 0.03, IndirectFanout: 8,
		CondBiasFrac: 0.88, PatternFrac: 0.08, BiasNear: 0.025, BiasTakenSide: 0.35,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.15, CallDepth: 5, DriverCallSites: 140, DriverCallExecP: 0.70,
		PhaseSites: 70, PhaseIters: 2,
	}
}

// Tex imitates TeX 3.141: medium branch density, medium working set.
func Tex() Profile {
	return Profile{
		Name: "tex", Lang: C,
		Description: "TeX text formatter (C): medium branch density and working set",
		Seed:        0x7e8,
		NumFuncs:    260, SegmentsPerFunc: [2]int{4, 10},
		MeanBlockLen: 6.2, LoopFrac: 0.15, MeanLoopTrip: 16, LoopBodyMul: 1.2,
		CallFrac: 0.16, IndirectCallFrac: 0, IndirectJumpFrac: 0.02, IndirectFanout: 6,
		CondBiasFrac: 0.90, PatternFrac: 0.06, BiasNear: 0.02, BiasTakenSide: 0.35,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.42, CallDepth: 4, DriverCallSites: 130, DriverCallExecP: 0.50,
	}
}

// Cfront imitates the AT&T C++-to-C translator: the largest working set.
func Cfront() Profile {
	return Profile{
		Name: "cfront", Lang: CPP,
		Description: "AT&T cfront C++ translator (C++): very large working set, virtual dispatch",
		Seed:        0xcf,
		NumFuncs:    420, SegmentsPerFunc: [2]int{5, 12},
		MeanBlockLen: 4.4, LoopFrac: 0.04, MeanLoopTrip: 5, LoopBodyMul: 1.0,
		CallFrac: 0.15, IndirectCallFrac: 0.18, IndirectJumpFrac: 0.02, IndirectFanout: 6,
		CondBiasFrac: 0.82, PatternFrac: 0.08, BiasNear: 0.04, BiasTakenSide: 0.35,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.45, CallDepth: 5, DriverCallSites: 380, DriverCallExecP: 0.55,
	}
}

// DBpp imitates the delta-blue constraint solver: small and hot, with
// strongly history-correlated branches.
func DBpp() Profile {
	return Profile{
		Name: "db++", Lang: CPP,
		Description: "DeltaBlue constraint solver (C++): small hot object graph traversal",
		Seed:        0xdb,
		NumFuncs:    140, SegmentsPerFunc: [2]int{3, 8},
		MeanBlockLen: 4.6, LoopFrac: 0.20, MeanLoopTrip: 10, LoopBodyMul: 1.0,
		CallFrac: 0.22, IndirectCallFrac: 0.22, IndirectJumpFrac: 0.01, IndirectFanout: 5,
		CondBiasFrac: 0.92, PatternFrac: 0.05, BiasNear: 0.02, BiasTakenSide: 0.40,
		HardRange: [2]float64{0.10, 0.30},
		ZipfS:     1.00, CallDepth: 5, DriverCallSites: 50, DriverCallExecP: 0.60,
	}
}

// Groff imitates groff 1.9: a large C++ formatter.
func Groff() Profile {
	return Profile{
		Name: "groff", Lang: CPP,
		Description: "groff text formatter (C++): large working set, virtual dispatch",
		Seed:        0x90ff,
		NumFuncs:    280, SegmentsPerFunc: [2]int{4, 10},
		MeanBlockLen: 3.4, LoopFrac: 0.05, MeanLoopTrip: 5, LoopBodyMul: 1.0,
		CallFrac: 0.15, IndirectCallFrac: 0.20, IndirectJumpFrac: 0.02, IndirectFanout: 6,
		CondBiasFrac: 0.87, PatternFrac: 0.07, BiasNear: 0.03, BiasTakenSide: 0.40,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.70, CallDepth: 5, DriverCallSites: 180, DriverCallExecP: 0.50,
	}
}

// IDL imitates the OMG IDL sample backend.
func IDL() Profile {
	return Profile{
		Name: "idl", Lang: CPP,
		Description: "OMG IDL backend (C++): very branchy, medium working set",
		Seed:        0x1d1,
		NumFuncs:    220, SegmentsPerFunc: [2]int{3, 9},
		MeanBlockLen: 3.0, LoopFrac: 0.08, MeanLoopTrip: 12, LoopBodyMul: 1.0,
		CallFrac: 0.14, IndirectCallFrac: 0.22, IndirectJumpFrac: 0.02, IndirectFanout: 3,
		CondBiasFrac: 0.90, PatternFrac: 0.06, BiasNear: 0.02, BiasTakenSide: 0.15,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     1.05, CallDepth: 5, DriverCallSites: 60, DriverCallExecP: 0.55,
	}
}

// Lic imitates the SUIF linear-inequality calculator.
func Lic() Profile {
	return Profile{
		Name: "lic", Lang: CPP,
		Description: "SUIF linear inequality calculator (C++): branchy, medium-large working set",
		Seed:        0x11c,
		NumFuncs:    400, SegmentsPerFunc: [2]int{4, 10},
		MeanBlockLen: 3.7, LoopFrac: 0.12, MeanLoopTrip: 8, LoopBodyMul: 1.0,
		CallFrac: 0.16, IndirectCallFrac: 0.16, IndirectJumpFrac: 0.02, IndirectFanout: 6,
		CondBiasFrac: 0.86, PatternFrac: 0.07, BiasNear: 0.03, BiasTakenSide: 0.30,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     0.70, CallDepth: 5, DriverCallSites: 140, DriverCallExecP: 0.50,
	}
}

// Porky imitates the SUIF porky optimizer pass driver.
func Porky() Profile {
	return Profile{
		Name: "porky", Lang: CPP,
		Description: "SUIF porky optimizer (C++): very branchy, medium working set",
		Seed:        0x9c4,
		NumFuncs:    260, SegmentsPerFunc: [2]int{4, 9},
		MeanBlockLen: 2.9, LoopFrac: 0.08, MeanLoopTrip: 12, LoopBodyMul: 1.0,
		CallFrac: 0.16, IndirectCallFrac: 0.18, IndirectJumpFrac: 0.02, IndirectFanout: 6,
		CondBiasFrac: 0.90, PatternFrac: 0.06, BiasNear: 0.02, BiasTakenSide: 0.20,
		HardRange: [2]float64{0.10, 0.40},
		ZipfS:     1.00, CallDepth: 5, DriverCallSites: 45, DriverCallExecP: 0.55,
	}
}
