package synth

import (
	"testing"

	"specfetch/internal/isa"
	"specfetch/internal/trace"
)

func TestReorderPreservesDynamics(t *testing.T) {
	b := MustBuild(Li())
	rb, err := ReorderByProfile(b, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Same static size (modulo alignment padding) and function count.
	if got, want := len(rb.Image().Funcs()), len(b.Image().Funcs()); got != want {
		t.Fatalf("function count changed: %d vs %d", got, want)
	}
	diff := rb.Image().NumInsts() - b.Image().NumInsts()
	if diff < -len(b.Image().Funcs())*8 || diff > len(b.Image().Funcs())*8 {
		t.Errorf("image size drifted too much: %d vs %d", rb.Image().NumInsts(), b.Image().NumInsts())
	}

	// The reordered benchmark walks valid, continuous traces.
	recs, err := trace.Collect(trace.NewLimitReader(rb.NewWalker(2), 100_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty reordered trace")
	}

	// Identical stream seeds make identical *decisions*: the branch/taken
	// statistics match the original exactly even though addresses moved.
	stOld, err := trace.Scan(trace.NewLimitReader(b.NewWalker(7), 100_000))
	if err != nil {
		t.Fatal(err)
	}
	stNew, err := trace.Scan(trace.NewLimitReader(rb.NewWalker(7), 100_000))
	if err != nil {
		t.Fatal(err)
	}
	if stOld.Branches != stNew.Branches || stOld.TakenCond != stNew.TakenCond ||
		stOld.Calls != stNew.Calls || stOld.Insts != stNew.Insts {
		t.Errorf("dynamic statistics changed:\nold %+v\nnew %+v", stOld, stNew)
	}
}

func TestReorderHotFunctionsFirst(t *testing.T) {
	b := MustBuild(DBpp())
	rb, err := ReorderByProfile(b, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := profileFuncs(rb, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	funcs := rb.Image().Funcs() // sorted by entry address
	// Hotness must be (weakly) decreasing along the new layout — allow
	// slack for ties and for profile noise between the walks, but the
	// first function must be much hotter than the last.
	first := counts[funcs[0].Entry]
	last := counts[funcs[len(funcs)-1].Entry]
	if first <= last {
		t.Errorf("first function count %d not above last %d", first, last)
	}
	// Entry and loop start stay consistent.
	if !rb.Image().Contains(rb.Entry()) {
		t.Error("entry escaped the image")
	}
}

func TestReorderImproves8KLocality(t *testing.T) {
	// Count distinct lines touched per window of the dynamic stream before
	// and after reordering: packing hot code must not increase the touched
	// working set.
	b := MustBuild(Groff())
	rb, err := ReorderByProfile(b, 200_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	geom := isa.MustLineGeom(isa.DefaultLineBytes)

	touched := func(bb *Bench) int {
		lines := map[uint64]bool{}
		rd := trace.NewLimitReader(bb.NewWalker(3), 200_000)
		for {
			rec, err := rd.Next()
			if err != nil {
				break
			}
			for i := 0; i < rec.N; i += geom.InstPerLine() {
				lines[geom.Line(rec.Start.Plus(i))] = true
			}
			lines[geom.Line(rec.Start.Plus(rec.N-1))] = true
		}
		return len(lines)
	}

	before, after := touched(b), touched(rb)
	if after > before {
		t.Errorf("reordering increased touched lines: %d -> %d", before, after)
	}
}
