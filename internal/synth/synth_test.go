package synth

import (
	"testing"

	"specfetch/internal/isa"
	"specfetch/internal/trace"
)

// TestAllProfilesBuild generates every stock benchmark and validates the
// static image.
func TestAllProfilesBuild(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatalf("profile invalid: %v", err)
			}
			b, err := Build(p)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			img := b.Image()
			if img.NumInsts() < 1000 {
				t.Errorf("suspiciously small image: %d insts", img.NumInsts())
			}
			if !img.Contains(b.Entry()) {
				t.Error("entry outside image")
			}
			st := img.Stats()
			if st.Branches == 0 || st.Conditional == 0 {
				t.Errorf("static mix missing branches: %+v", st)
			}
			// Every function should be marked.
			if got, want := len(img.Funcs()), p.NumFuncs+1; got != want {
				t.Errorf("functions = %d, want %d", got, want)
			}
		})
	}
}

// TestWalkerContinuity drains a bounded trace through trace.Collect, which
// validates every record and checks path continuity.
func TestWalkerContinuity(t *testing.T) {
	for _, name := range []string{"gcc", "fpppp", "db++", "li"} {
		p, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		b := MustBuild(p)
		recs, err := trace.Collect(trace.NewLimitReader(b.NewWalker(1), 100_000))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		// Every record's instructions must be inside the image, and branch
		// targets must land on instruction boundaries inside it.
		img := b.Image()
		for _, r := range recs {
			if !img.Contains(r.Start) || !img.Contains(r.Start.Plus(r.N-1)) {
				t.Fatalf("%s: record outside image: %+v", name, r)
			}
			if r.Taken && !img.Contains(r.Target) {
				t.Fatalf("%s: target outside image: %+v", name, r)
			}
		}
	}
}

// TestWalkerDeterminism: same profile and stream seed give identical
// traces; different stream seeds differ.
func TestWalkerDeterminism(t *testing.T) {
	b1 := MustBuild(GCC())
	b2 := MustBuild(GCC())

	r1, err := trace.Collect(trace.NewLimitReader(b1.NewWalker(7), 20_000))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := trace.Collect(trace.NewLimitReader(b2.NewWalker(7), 20_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("records diverge at %d: %+v vs %+v", i, r1[i], r2[i])
		}
	}

	r3, err := trace.Collect(trace.NewLimitReader(b1.NewWalker(8), 20_000))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < len(r1) && i < len(r3); i++ {
		if r1[i] == r3[i] {
			same++
		}
	}
	if same == len(r1) {
		t.Error("different stream seeds gave identical traces")
	}
}

// TestImageDeterminism: regenerating a profile yields a byte-identical
// static image.
func TestImageDeterminism(t *testing.T) {
	a, b := MustBuild(Groff()), MustBuild(Groff())
	if a.Image().NumInsts() != b.Image().NumInsts() {
		t.Fatal("image sizes differ across builds")
	}
	for pc := a.Image().Base(); pc < a.Image().End(); pc = pc.Next() {
		if a.Image().At(pc) != b.Image().At(pc) {
			t.Fatalf("images diverge at %s", pc)
		}
	}
	if a.Entry() != b.Entry() {
		t.Error("entries differ")
	}
}

// TestBranchFractionNearIntent: the dynamic branch fraction should be in a
// plausible band around the paper's Table 2 value for each stand-in.
func TestBranchFractionNearIntent(t *testing.T) {
	for _, p := range Profiles() {
		b := MustBuild(p)
		st, err := trace.Scan(trace.NewLimitReader(b.NewWalker(1), 200_000))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got := 100 * st.BranchFrac()
		want := PaperTargets[p.Name].BranchPct
		if got < want*0.5 || got > want*1.6 {
			t.Errorf("%s: branch%% = %.1f, paper %.1f (outside [0.5x,1.6x])", p.Name, got, want)
		}
	}
}

// TestCallStackBalance: returns always pop what calls pushed; the walker
// errors otherwise, so a long run without error plus plausible call/return
// parity is the check.
func TestCallStackBalance(t *testing.T) {
	b := MustBuild(Cfront())
	st, err := trace.Scan(trace.NewLimitReader(b.NewWalker(3), 300_000))
	if err != nil {
		t.Fatal(err)
	}
	if st.Returns == 0 || st.Calls == 0 {
		t.Fatal("no calls or returns in a call-heavy profile")
	}
	diff := st.Calls - st.Returns
	if diff < 0 || diff > 64 {
		t.Errorf("calls %d vs returns %d: imbalance %d beyond plausible stack depth",
			st.Calls, st.Returns, diff)
	}
}

// TestPhasedExecution: with phasing enabled, guard decisions respect the
// rotating window — consecutive iterations execute a consistent subset.
func TestPhasedExecution(t *testing.T) {
	p := Li() // li has phasing enabled
	if p.PhaseSites == 0 {
		t.Skip("li no longer phased")
	}
	b := MustBuild(p)
	w := b.NewWalker(1)
	// Drain some records; just assert the walk stays valid for a while and
	// the iteration counter advances.
	for i := 0; i < 50_000; i++ {
		if _, err := w.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if w.iter < 2 {
		t.Errorf("driver iterations = %d, want several", w.iter)
	}
}

// TestInPhaseWindow checks the window arithmetic directly.
func TestInPhaseWindow(t *testing.T) {
	p := Li()
	p.PhaseSites = 10
	p.PhaseIters = 2
	p.DriverCallSites = 40
	b := MustBuild(p)
	w := b.NewWalker(1)

	w.iter = 0 // base = 0: sites 0..9 active
	for idx := 0; idx < 40; idx++ {
		want := idx < 10
		if got := w.inPhase(idx); got != want {
			t.Errorf("iter 0, site %d: inPhase = %v, want %v", idx, got, want)
		}
	}
	w.iter = 2 // base = 5: sites 5..14 active
	for idx := 0; idx < 40; idx++ {
		want := idx >= 5 && idx < 15
		if got := w.inPhase(idx); got != want {
			t.Errorf("iter 2, site %d: inPhase = %v, want %v", idx, got, want)
		}
	}
}

// TestCondClassTagging: every conditional site carries a class tag.
func TestCondClassTagging(t *testing.T) {
	b := MustBuild(DBpp())
	img := b.Image()
	classes := map[string]int{}
	for pc := img.Base(); pc < img.End(); pc = pc.Next() {
		if img.At(pc).Kind == isa.CondBranch {
			cls := b.CondClass(pc)
			if cls == "" {
				t.Fatalf("conditional at %s has no class", pc)
			}
			classes[cls]++
		}
	}
	for _, want := range []string{"bias", "loop", "guard"} {
		if classes[want] == 0 {
			t.Errorf("no %q sites generated", want)
		}
	}
}

// TestProfileValidation exercises the validation failure paths.
func TestProfileValidation(t *testing.T) {
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.NumFuncs = 0 },
		func(p *Profile) { p.SegmentsPerFunc = [2]int{5, 2} },
		func(p *Profile) { p.MeanBlockLen = 0.5 },
		func(p *Profile) { p.MeanLoopTrip = 0.5 },
		func(p *Profile) { p.LoopFrac = 0.9; p.CallFrac = 0.3 },
		func(p *Profile) { p.IndirectCallFrac = 1.5 },
		func(p *Profile) { p.IndirectFanout = 0 },
		func(p *Profile) { p.CondBiasFrac = 1.2 },
		func(p *Profile) { p.CondBiasFrac = 0.8; p.PatternFrac = 0.5 },
		func(p *Profile) { p.BiasNear = 0.6 },
		func(p *Profile) { p.BiasTakenSide = -0.1 },
		func(p *Profile) { p.HardRange = [2]float64{0.8, 0.2} },
		func(p *Profile) { p.ZipfS = 0 },
		func(p *Profile) { p.CallDepth = 0 },
		func(p *Profile) { p.DriverCallSites = 0 },
		func(p *Profile) { p.DriverCallExecP = 0 },
		func(p *Profile) { p.LoopBodyMul = 0 },
		func(p *Profile) { p.PhaseSites = 9999 },
		func(p *Profile) { p.PhaseSites = 5; p.PhaseIters = 0 },
	}
	for i, mut := range mutations {
		p := GCC()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, p)
		}
	}
}

// TestFunctionAlignment: every generated function entry is line aligned.
func TestFunctionAlignment(t *testing.T) {
	b := MustBuild(Tex())
	for _, f := range b.Image().Funcs() {
		if uint64(f.Entry)%uint64(isa.DefaultLineBytes) != 0 {
			t.Errorf("function %s at %s not line aligned", f.Name, f.Entry)
		}
	}
}

// TestModernProfilesBuild: the datacenter stand-ins generate valid,
// genuinely large images and walkable traces.
func TestModernProfilesBuild(t *testing.T) {
	for _, p := range ModernProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			b, err := Build(p)
			if err != nil {
				t.Fatal(err)
			}
			if kb := b.Image().SizeBytes() / 1024; kb < 300 {
				t.Errorf("footprint %dKB not datacenter scale", kb)
			}
			if _, err := trace.Collect(trace.NewLimitReader(b.NewWalker(1), 60_000)); err != nil {
				t.Fatal(err)
			}
		})
	}
}
