package synth

import "specfetch/internal/isa"

// CondClass reports the generation class of the conditional branch at pc:
// "bias", "pattern", "hard", "loop", or "guard". It returns "" for
// addresses that are not conditional sites. It exists for calibration
// diagnostics and tests.
func (b *Bench) CondClass(pc isa.Addr) string {
	return b.conds[pc].class
}
