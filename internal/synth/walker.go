package synth

import (
	"fmt"

	"specfetch/internal/isa"
	"specfetch/internal/program"
	"specfetch/internal/trace"
	"specfetch/internal/xrand"
)

// maxPlainRun caps how many instructions a single plain trace record may
// carry before being split.
const maxPlainRun = 64

// Walker executes the benchmark's control flow and emits the correct-path
// trace, block by block. It implements trace.Reader and never returns
// io.EOF (the driver loops forever); wrap it with trace.NewLimitReader to
// bound the run.
type Walker struct {
	bench *Bench
	rng   *xrand.Rand
	pc    isa.Addr
	stack []isa.Addr
	// patPos tracks each patterned conditional site's position in its
	// outcome sequence.
	patPos map[isa.Addr]int
	// iter counts completed driver-loop iterations, driving phased
	// execution.
	iter int64
}

// NewWalker starts a fresh dynamic stream. Different streamSeed values give
// different (but reproducible) dynamic behaviour over the same static image.
func (b *Bench) NewWalker(streamSeed uint64) *Walker {
	return &Walker{
		bench:  b,
		rng:    xrand.New(b.profile.Seed ^ streamSeed ^ 0xabcdef0123456789),
		pc:     b.entry,
		patPos: make(map[isa.Addr]int),
	}
}

// NewReader returns a bounded correct-path trace of maxInsts instructions.
func (b *Bench) NewReader(streamSeed uint64, maxInsts int64) trace.Reader {
	return trace.NewLimitReader(b.NewWalker(streamSeed), maxInsts)
}

// Next implements trace.Reader.
func (w *Walker) Next() (trace.Record, error) {
	start := w.pc
	if start == w.bench.loopStart {
		w.iter++
	}
	img := w.bench.img
	n := 0
	for {
		if !img.Contains(w.pc) {
			return trace.Record{}, fmt.Errorf("synth: walker left the image at %s (block start %s)", w.pc, start)
		}
		// Consume a whole run of plain instructions at once; record contents
		// are identical to the per-instruction walk, including the split at
		// maxPlainRun and the off-image error address.
		if run := img.PlainRunLen(w.pc); run > 0 {
			if n+run >= maxPlainRun {
				take := maxPlainRun - n
				w.pc = w.pc.Plus(take)
				return trace.Record{Start: start, N: maxPlainRun, BrKind: isa.Plain}, nil
			}
			n += run
			w.pc = w.pc.Plus(run)
			continue
		}
		in := img.At(w.pc)
		n++
		rec, err := w.branch(in, start, n)
		return rec, err
	}
}

// branch decides the dynamic outcome of the control transfer at w.pc and
// finishes the record.
func (w *Walker) branch(in program.Inst, start isa.Addr, n int) (trace.Record, error) {
	pc := w.pc
	rec := trace.Record{Start: start, N: n, BrKind: in.Kind}
	switch in.Kind {
	case isa.CondBranch:
		meta, ok := w.bench.conds[pc]
		if !ok {
			return trace.Record{}, fmt.Errorf("synth: conditional at %s has no site metadata", pc)
		}
		switch {
		case meta.pattern != nil:
			pos := w.patPos[pc]
			rec.Taken = meta.pattern[pos]
			w.patPos[pc] = (pos + 1) % len(meta.pattern)
		case meta.class == "guard" && w.bench.profile.PhaseSites > 0:
			// Phased execution: the guard skips its call (taken) unless the
			// site is inside the currently active window.
			takenP := 0.97
			if w.inPhase(w.bench.guardIdx[pc]) {
				takenP = 1 - w.bench.profile.DriverCallExecP
			}
			rec.Taken = w.rng.Bool(takenP)
		default:
			rec.Taken = w.rng.Bool(meta.takenP)
		}
		if rec.Taken {
			rec.Target = in.Target
		}

	case isa.Jump:
		rec.Taken = true
		rec.Target = in.Target

	case isa.Call:
		rec.Taken = true
		rec.Target = in.Target
		w.stack = append(w.stack, pc.Next())

	case isa.Return:
		if len(w.stack) == 0 {
			return trace.Record{}, fmt.Errorf("synth: return at %s with empty call stack", pc)
		}
		rec.Taken = true
		rec.Target = w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]

	case isa.IndirectCall, isa.IndirectJump:
		meta, ok := w.bench.indirs[pc]
		if !ok {
			return trace.Record{}, fmt.Errorf("synth: indirect transfer at %s has no site metadata", pc)
		}
		rec.Taken = true
		rec.Target = meta.targets[meta.zipf.Draw(w.rng)]
		if in.Kind == isa.IndirectCall {
			w.stack = append(w.stack, pc.Next())
		}

	default:
		return trace.Record{}, fmt.Errorf("synth: unexpected kind %s at %s", in.Kind, pc)
	}
	w.pc = rec.NextPC()
	return rec, nil
}

// inPhase reports whether driver call site idx is inside the active phase
// window for the walker's current iteration. The window slides by half its
// width every PhaseIters iterations, wrapping around the site list.
func (w *Walker) inPhase(idx int) bool {
	p := w.bench.profile
	n := p.DriverCallSites
	step := p.PhaseSites / 2
	if step < 1 {
		step = 1
	}
	base := int(w.iter/int64(p.PhaseIters)) * step % n
	off := idx - base
	if off < 0 {
		off += n
	}
	return off < p.PhaseSites
}
