package synth

import (
	"testing"

	"specfetch/internal/trace"
)

func TestLoopKernelValid(t *testing.T) {
	k, err := LoopKernel(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Collect(trace.NewLimitReader(k.NewWalker(1), 50_000))
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Stats{}
	for _, r := range recs {
		st.Add(r)
	}
	// One conditional per ~65 instructions, taken ~15/16 of the time.
	if tf := st.TakenFrac(); tf < 0.90 || tf > 0.97 {
		t.Errorf("loop taken fraction %.3f outside [0.90,0.97]", tf)
	}
	if _, err := LoopKernel(0, 4); err == nil {
		t.Error("zero body accepted")
	}
	if _, err := LoopKernel(8, 0.5); err == nil {
		t.Error("sub-1 trips accepted")
	}
}

func TestCallKernelStackBalance(t *testing.T) {
	k, err := CallKernel(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.Scan(trace.NewLimitReader(k.NewWalker(1), 50_000))
	if err != nil {
		t.Fatal(err)
	}
	if st.Calls == 0 || st.Returns == 0 {
		t.Fatal("no calls/returns")
	}
	diff := st.Calls - st.Returns
	if diff < 0 || diff > 6 {
		t.Errorf("call/return imbalance %d beyond chain depth", diff)
	}
	if _, err := CallKernel(0, 5); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestDispatchKernelTargets(t *testing.T) {
	const fanout = 8
	k, err := DispatchKernel(fanout, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	rd := trace.NewLimitReader(k.NewWalker(1), 50_000)
	for {
		rec, err := rd.Next()
		if err != nil {
			break
		}
		if rec.BrKind.IsIndirect() {
			seen[uint64(rec.Target)] = true
		}
	}
	if len(seen) != fanout {
		t.Errorf("dispatch used %d distinct targets, want %d", len(seen), fanout)
	}
	if _, err := DispatchKernel(1, 6); err == nil {
		t.Error("fanout 1 accepted")
	}
}

func TestKernelTraceContinuity(t *testing.T) {
	for name, mk := range map[string]func() (*Bench, error){
		"loop":     func() (*Bench, error) { return LoopKernel(32, 8) },
		"call":     func() (*Bench, error) { return CallKernel(4, 8) },
		"dispatch": func() (*Bench, error) { return DispatchKernel(4, 8) },
	} {
		k, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := trace.Collect(trace.NewLimitReader(k.NewWalker(2), 30_000)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
