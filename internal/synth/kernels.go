// Microbenchmark kernels: tiny, fully controlled workloads for studying
// the fetch policies in isolation, complementing the calibrated benchmark
// suite. Each kernel's cache and branch behaviour is analytically known, so
// tests (and users) can reason about exact expectations.
package synth

import (
	"fmt"

	"specfetch/internal/isa"
	"specfetch/internal/program"
	"specfetch/internal/xrand"
)

// LoopKernel builds a single loop of bodyInsts plain instructions closed by
// a backward conditional taken (trips-1)/trips of the time, wrapped in a
// driver that re-enters the loop forever. With a cache at least as large as
// the body, the steady-state miss ratio is ~0; with a smaller cache, every
// line misses once per traversal.
func LoopKernel(bodyInsts int, trips float64) (*Bench, error) {
	if bodyInsts < 1 {
		return nil, fmt.Errorf("synth: loop kernel needs a positive body, got %d", bodyInsts)
	}
	if trips < 1 {
		return nil, fmt.Errorf("synth: loop kernel needs trips >= 1, got %.2f", trips)
	}
	b, err := program.NewBuilder(imageBase)
	if err != nil {
		return nil, err
	}
	conds := map[isa.Addr]condMeta{}

	b.MarkFunc("loop")
	entry := b.PC()
	loopTop := b.PC()
	b.AppendPlain(bodyInsts)
	condPC := b.Append(program.Inst{Kind: isa.CondBranch, Target: loopTop})
	conds[condPC] = condMeta{takenP: 1 - 1/trips, class: "loop"}
	// Exited: jump straight back in (the driver).
	b.Append(program.Inst{Kind: isa.Jump, Target: loopTop})

	img, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Bench{
		profile:   kernelProfile("loop-kernel"),
		img:       img,
		entry:     entry,
		conds:     conds,
		indirs:    map[isa.Addr]indirectMeta{},
		loopStart: loopTop,
		guardIdx:  map[isa.Addr]int{},
	}, nil
}

// CallKernel builds a chain of depth nested functions, each with bodyInsts
// plain instructions before calling the next; the driver calls the chain
// head forever. It isolates call/return prediction (BTB and RAS behaviour).
func CallKernel(depth, bodyInsts int) (*Bench, error) {
	if depth < 1 || bodyInsts < 1 {
		return nil, fmt.Errorf("synth: call kernel needs positive depth and body, got %d/%d", depth, bodyInsts)
	}
	b, err := program.NewBuilder(imageBase)
	if err != nil {
		return nil, err
	}
	// Generate leaf-first so call targets exist.
	entries := make([]isa.Addr, depth)
	for i := depth - 1; i >= 0; i-- {
		b.MarkFunc(fmt.Sprintf("chain%02d", i))
		entries[i] = b.PC()
		b.AppendPlain(bodyInsts)
		if i < depth-1 {
			b.Append(program.Inst{Kind: isa.Call, Target: entries[i+1]})
			b.AppendPlain(1)
		}
		b.Append(program.Inst{Kind: isa.Return})
	}
	b.MarkFunc("main")
	entry := b.PC()
	loopTop := b.PC()
	b.Append(program.Inst{Kind: isa.Call, Target: entries[0]})
	b.AppendPlain(1)
	b.Append(program.Inst{Kind: isa.Jump, Target: loopTop})
	img, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Bench{
		profile:   kernelProfile("call-kernel"),
		img:       img,
		entry:     entry,
		conds:     map[isa.Addr]condMeta{},
		indirs:    map[isa.Addr]indirectMeta{},
		loopStart: loopTop,
		guardIdx:  map[isa.Addr]int{},
	}, nil
}

// DispatchKernel builds an interpreter-style indirect dispatch loop: an
// indirect jump selects one of fanout handler blocks (uniformly), each of
// handlerInsts plain instructions, jumping back to the dispatch point. It
// isolates BTB target misprediction and wrong-path behaviour at indirect
// branches.
func DispatchKernel(fanout, handlerInsts int) (*Bench, error) {
	if fanout < 2 || handlerInsts < 1 {
		return nil, fmt.Errorf("synth: dispatch kernel needs fanout >= 2 and a positive handler, got %d/%d", fanout, handlerInsts)
	}
	b, err := program.NewBuilder(imageBase)
	if err != nil {
		return nil, err
	}
	indirs := map[isa.Addr]indirectMeta{}

	b.MarkFunc("dispatch")
	entry := b.PC()
	loopTop := b.PC()
	b.AppendPlain(2)
	ijPC := b.PC()
	// Layout: [ijmp][handler0 ... jump top][handler1 ... jump top]...
	handlers := make([]isa.Addr, fanout)
	off := 1
	for i := range handlers {
		handlers[i] = ijPC.Plus(off)
		off += handlerInsts + 1
	}
	b.Append(program.Inst{Kind: isa.IndirectJump})
	for range handlers {
		b.AppendPlain(handlerInsts)
		b.Append(program.Inst{Kind: isa.Jump, Target: loopTop})
	}
	indirs[ijPC] = indirectMeta{targets: handlers, zipf: xrand.NewZipf(fanout, 0.01)}

	img, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Bench{
		profile:   kernelProfile("dispatch-kernel"),
		img:       img,
		entry:     entry,
		conds:     map[isa.Addr]condMeta{},
		indirs:    indirs,
		loopStart: loopTop,
		guardIdx:  map[isa.Addr]int{},
	}, nil
}

// kernelProfile is a minimal valid profile carried by kernel benches (the
// walker only consults Seed and the phase fields).
func kernelProfile(name string) Profile {
	return Profile{
		Name: name, Lang: "kernel",
		Description: "hand-built microbenchmark kernel",
		Seed:        hashName(name),
		NumFuncs:    1, SegmentsPerFunc: [2]int{1, 1},
		MeanBlockLen: 4, MeanLoopTrip: 4, LoopBodyMul: 1,
		IndirectFanout: 2, BiasNear: 0.05, HardRange: [2]float64{0.3, 0.7},
		ZipfS: 1, CallDepth: 1, DriverCallSites: 1, DriverCallExecP: 0.5,
	}
}
