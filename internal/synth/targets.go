package synth

// PaperStats records what the paper measured for a benchmark (Tables 2/3),
// used by the calibration harness and EXPERIMENTS.md to compare our
// synthetic stand-ins against the originals.
type PaperStats struct {
	// BranchPct is Table 2's "% Branches" (dynamic branches per instruction).
	BranchPct float64
	// Miss8K / Miss32K are Table 3's direct-mapped miss percentages.
	Miss8K, Miss32K float64
	// PHTISPIB1 / PHTISPIB4 are Table 3's PHT mispredict ISPI at speculation
	// depth 1 and 4.
	PHTISPIB1, PHTISPIB4 float64
	// BTBMisfetchISPI / BTBMispredictISPI are Table 3's B4 columns.
	BTBMisfetchISPI, BTBMispredictISPI float64
	// InstsMillions is Table 2's dynamic instruction count, in millions.
	InstsMillions float64
}

// PaperTargets maps benchmark name to the paper's measured characteristics.
var PaperTargets = map[string]PaperStats{
	"doduc":   {BranchPct: 8.5, Miss8K: 2.94, Miss32K: 0.48, PHTISPIB1: 0.22, PHTISPIB4: 0.37, BTBMisfetchISPI: 0.04, BTBMispredictISPI: 0.00, InstsMillions: 1150},
	"fpppp":   {BranchPct: 2.8, Miss8K: 7.27, Miss32K: 1.08, PHTISPIB1: 0.08, PHTISPIB4: 0.12, BTBMisfetchISPI: 0.01, BTBMispredictISPI: 0.00, InstsMillions: 4330},
	"su2cor":  {BranchPct: 4.4, Miss8K: 1.33, Miss32K: 0.00, PHTISPIB1: 0.08, PHTISPIB4: 0.10, BTBMisfetchISPI: 0.00, BTBMispredictISPI: 0.00, InstsMillions: 4780},
	"ditroff": {BranchPct: 17.5, Miss8K: 3.18, Miss32K: 0.58, PHTISPIB1: 0.44, PHTISPIB4: 0.64, BTBMisfetchISPI: 0.22, BTBMispredictISPI: 0.00, InstsMillions: 39},
	"gcc":     {BranchPct: 16.0, Miss8K: 4.48, Miss32K: 1.71, PHTISPIB1: 0.53, PHTISPIB4: 0.63, BTBMisfetchISPI: 0.28, BTBMispredictISPI: 0.05, InstsMillions: 144},
	"li":      {BranchPct: 17.7, Miss8K: 3.33, Miss32K: 0.06, PHTISPIB1: 0.35, PHTISPIB4: 0.54, BTBMisfetchISPI: 0.24, BTBMispredictISPI: 0.04, InstsMillions: 1360},
	"tex":     {BranchPct: 10.0, Miss8K: 2.85, Miss32K: 1.00, PHTISPIB1: 0.27, PHTISPIB4: 0.36, BTBMisfetchISPI: 0.11, BTBMispredictISPI: 0.03, InstsMillions: 148},
	"cfront":  {BranchPct: 13.4, Miss8K: 7.24, Miss32K: 2.63, PHTISPIB1: 0.50, PHTISPIB4: 0.56, BTBMisfetchISPI: 0.34, BTBMispredictISPI: 0.05, InstsMillions: 16.5},
	"db++":    {BranchPct: 17.6, Miss8K: 1.57, Miss32K: 0.42, PHTISPIB1: 0.16, PHTISPIB4: 0.41, BTBMisfetchISPI: 0.13, BTBMispredictISPI: 0.01, InstsMillions: 87},
	"groff":   {BranchPct: 17.5, Miss8K: 5.33, Miss32K: 1.68, PHTISPIB1: 0.42, PHTISPIB4: 0.57, BTBMisfetchISPI: 0.38, BTBMispredictISPI: 0.06, InstsMillions: 57},
	"idl":     {BranchPct: 19.6, Miss8K: 2.17, Miss32K: 0.67, PHTISPIB1: 0.30, PHTISPIB4: 0.49, BTBMisfetchISPI: 0.10, BTBMispredictISPI: 0.04, InstsMillions: 21.1},
	"lic":     {BranchPct: 16.5, Miss8K: 3.93, Miss32K: 1.68, PHTISPIB1: 0.45, PHTISPIB4: 0.56, BTBMisfetchISPI: 0.27, BTBMispredictISPI: 0.00, InstsMillions: 6},
	"porky":   {BranchPct: 19.8, Miss8K: 2.51, Miss32K: 0.66, PHTISPIB1: 0.42, PHTISPIB4: 0.48, BTBMisfetchISPI: 0.20, BTBMispredictISPI: 0.04, InstsMillions: 164},
}
