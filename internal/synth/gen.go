package synth

import (
	"fmt"

	"specfetch/internal/isa"
	"specfetch/internal/program"
	"specfetch/internal/xrand"
)

// condMeta is the dynamic behaviour of one conditional-branch site.
type condMeta struct {
	// takenP is the per-execution probability the branch is taken, used
	// when pattern is nil.
	takenP float64
	// pattern, when non-nil, is a deterministic periodic outcome sequence
	// the site cycles through (history-predictable behaviour).
	pattern []bool
	// class tags the site's generation origin ("bias", "pattern", "hard",
	// "loop", "guard") for diagnostics.
	class string
}

// indirectMeta is the dynamic behaviour of one indirect-transfer site.
type indirectMeta struct {
	targets []isa.Addr
	zipf    *xrand.Zipf
}

// Bench is a generated synthetic benchmark: the static image plus the
// per-site dynamic behaviour needed to walk correct-path traces from it.
type Bench struct {
	profile Profile
	img     *program.Image
	entry   isa.Addr
	conds   map[isa.Addr]condMeta
	indirs  map[isa.Addr]indirectMeta
	// loopStart is the top of the driver loop; walkers count iterations by
	// watching control return to it.
	loopStart isa.Addr
	// guardIdx maps each driver guard branch to its site index, for phased
	// execution.
	guardIdx map[isa.Addr]int
}

// Profile returns the profile the benchmark was generated from.
func (b *Bench) Profile() Profile { return b.profile }

// Image returns the static code image.
func (b *Bench) Image() *program.Image { return b.img }

// Entry returns the driver entry point.
func (b *Bench) Entry() isa.Addr { return b.entry }

// imageBase leaves a zero page unused so address 0 never aliases a real
// instruction.
const imageBase isa.Addr = 0x10000

// maxHardTries bounds rejection sampling loops.
const maxHardTries = 64

// gen carries generation state.
type gen struct {
	p         Profile
	rng       *xrand.Rand
	b         *program.Builder
	conds     map[isa.Addr]condMeta
	indirs    map[isa.Addr]indirectMeta
	entries   []isa.Addr
	zipf      *xrand.Zipf
	guardIdx  map[isa.Addr]int
	loopStart isa.Addr
}

// Build generates the benchmark deterministically from the profile.
func Build(p Profile) (*Bench, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	builder, err := program.NewBuilder(imageBase)
	if err != nil {
		return nil, err
	}
	g := &gen{
		p:        p,
		rng:      xrand.New(p.Seed ^ hashName(p.Name)),
		b:        builder,
		conds:    make(map[isa.Addr]condMeta),
		indirs:   make(map[isa.Addr]indirectMeta),
		zipf:     xrand.NewZipf(p.NumFuncs, p.ZipfS),
		guardIdx: make(map[isa.Addr]int),
	}
	for i := 0; i < p.NumFuncs; i++ {
		g.genFunc(i)
	}
	entry := g.genDriver()
	img, err := g.b.Build()
	if err != nil {
		return nil, fmt.Errorf("synth: %s: %w", p.Name, err)
	}
	return &Bench{
		profile: p, img: img, entry: entry,
		conds: g.conds, indirs: g.indirs,
		loopStart: g.loopStart, guardIdx: g.guardIdx,
	}, nil
}

// MustBuild is Build for known-good profiles.
func MustBuild(p Profile) *Bench {
	b, err := Build(p)
	if err != nil {
		panic(err)
	}
	return b
}

// hashName folds a profile name into the seed (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// blockLen draws a plain-run length with the profile's mean.
func (g *gen) blockLen() int {
	mean := g.p.MeanBlockLen
	if mean <= 1 {
		return 1
	}
	return 1 + g.rng.Geometric(1/mean)
}

// condSite draws the dynamic behaviour of a conditional site: strongly
// biased, deterministically patterned, or hard (Bernoulli in the hard
// range). Sites inside loops get short patterns, which a gshare predictor
// can learn through its own recent outcomes in the global history — and
// which therefore degrade under deep speculation when that history is
// stale, the paper's Table 3 B1-vs-B4 effect.
func (g *gen) condSite(inLoop bool) condMeta {
	r := g.rng.Float64()
	switch {
	case r < g.p.CondBiasFrac:
		takenSide := g.p.BiasTakenSide
		if takenSide == 0 {
			takenSide = 0.5
		}
		if g.rng.Bool(takenSide) {
			return condMeta{takenP: 1 - g.p.BiasNear, class: "bias"}
		}
		return condMeta{takenP: g.p.BiasNear, class: "bias"}
	case r < g.p.CondBiasFrac+g.p.PatternFrac:
		if !inLoop {
			// Outside loops a gshare predictor cannot see the site's own
			// history (too many intervening branches), so a pattern would
			// behave like a worst-case random branch. Fold the mass into a
			// moderately biased site instead.
			if g.rng.Bool(0.5) {
				return condMeta{takenP: 2 * g.p.BiasNear, class: "bias"}
			}
			return condMeta{takenP: 1 - 2*g.p.BiasNear, class: "bias"}
		}
		n := 2 + g.rng.Intn(3)
		pat := make([]bool, n)
		same := true
		for i := range pat {
			pat[i] = g.rng.Bool(0.5)
			if i > 0 && pat[i] != pat[0] {
				same = false
			}
		}
		if same {
			pat[n/2] = !pat[0]
		}
		return condMeta{pattern: pat, class: "pattern"}
	default:
		lo, hi := g.p.HardRange[0], g.p.HardRange[1]
		return condMeta{takenP: lo + g.rng.Float64()*(hi-lo), class: "hard"}
	}
}

// pickCallee draws a callee index below limit with Zipf hotness.
func (g *gen) pickCallee(limit int) int {
	for t := 0; t < maxHardTries; t++ {
		if v := g.zipf.Draw(g.rng); v < limit {
			return v
		}
	}
	return g.rng.Intn(limit)
}

// alignToLine pads with plain instructions to the next 32-byte boundary,
// as compilers align function entries.
func (g *gen) alignToLine() {
	geom := isa.MustLineGeom(isa.DefaultLineBytes)
	for uint64(g.b.PC())%uint64(geom.LineBytes) != 0 {
		g.b.Append(program.Inst{Kind: isa.Plain})
	}
}

// genFunc emits function i (callable by later functions and the driver).
func (g *gen) genFunc(i int) {
	g.alignToLine()
	g.b.MarkFunc(fmt.Sprintf("f%03d", i))
	g.entries = append(g.entries, g.b.PC())

	g.b.AppendPlain(g.blockLen())
	nseg := g.p.SegmentsPerFunc[0]
	if span := g.p.SegmentsPerFunc[1] - g.p.SegmentsPerFunc[0]; span > 0 {
		nseg += g.rng.Intn(span + 1)
	}
	for s := 0; s < nseg; s++ {
		g.genSegment(i)
	}
	g.b.Append(program.Inst{Kind: isa.Return})
}

// genSegment emits one body segment of function i.
func (g *gen) genSegment(i int) {
	r := g.rng.Float64()
	switch {
	case r < g.p.LoopFrac:
		g.genLoop()
	case r < g.p.LoopFrac+g.p.CallFrac && i > 0:
		g.genCall(i)
	case r < g.p.LoopFrac+g.p.CallFrac+g.p.IndirectJumpFrac:
		g.genSwitch()
	case r < g.p.LoopFrac+g.p.CallFrac+g.p.IndirectJumpFrac+
		0.75*(1-g.p.LoopFrac-g.p.CallFrac-g.p.IndirectJumpFrac):
		if g.rng.Bool(0.5) {
			g.genIfElse()
		} else {
			g.genIfSkip(1+float64(g.rng.Intn(3)), false)
		}
	default:
		g.b.AppendPlain(g.blockLen())
	}
}

// genIfElse emits a two-armed diamond: the conditional jumps to the else
// arm when taken, the fall-through then-arm ends with a jump over it to the
// join point. A mispredicted direction therefore fetches an arm the correct
// path never touches — the source of genuine wrong-path cache pollution.
func (g *gen) genIfElse() {
	g.b.AppendPlain(g.blockLen())
	thenLen := g.blockLen()
	elseLen := g.blockLen() * (1 + g.rng.Intn(3))
	condPC := g.b.PC()
	elseStart := condPC.Plus(1 + thenLen + 1) // cond, then-arm, jump
	join := elseStart.Plus(elseLen)
	g.b.Append(program.Inst{Kind: isa.CondBranch, Target: elseStart})
	g.b.AppendPlain(thenLen)
	g.b.Append(program.Inst{Kind: isa.Jump, Target: join})
	g.b.AppendPlain(elseLen)
	g.conds[condPC] = g.condSite(false)
}

// genIfSkip emits a conditional that either falls into or skips a body
// whose size is scaled by mul.
func (g *gen) genIfSkip(mul float64, inLoop bool) {
	g.b.AppendPlain(g.blockLen())
	bodyLen := int(float64(g.blockLen()) * mul)
	if bodyLen < 1 {
		bodyLen = 1
	}
	condPC := g.b.PC()
	g.b.Append(program.Inst{Kind: isa.CondBranch, Target: condPC.Plus(1 + bodyLen)})
	g.b.AppendPlain(bodyLen)
	g.conds[condPC] = g.condSite(inLoop)
}

// genLoop emits an innermost loop: preheader, body (optionally containing a
// data-dependent conditional), and a backward continue branch with
// geometric trip counts.
func (g *gen) genLoop() {
	g.b.AppendPlain(g.blockLen() / 2)
	loopStart := g.b.PC()
	bodyLen := int(float64(g.blockLen()) * g.p.LoopBodyMul)
	if bodyLen < 1 {
		bodyLen = 1
	}
	g.b.AppendPlain(bodyLen)
	if bodyLen >= 4 && g.rng.Bool(0.6) {
		// A loop-carried, data-dependent branch inside the body.
		g.genIfSkip(0.5, true)
	}
	condPC := g.b.PC()
	g.b.Append(program.Inst{Kind: isa.CondBranch, Target: loopStart})
	contP := 1 - 1/g.p.MeanLoopTrip
	g.conds[condPC] = condMeta{takenP: contP, class: "loop"}
}

// genCall emits a call site in function i: a direct call to a hotter,
// earlier-generated function, or an indirect (virtual) dispatch over a
// fanout set.
func (g *gen) genCall(i int) {
	g.b.AppendPlain(g.blockLen())
	if i >= 2 && g.rng.Bool(g.p.IndirectCallFrac) {
		g.genIndirect(isa.IndirectCall, i)
		return
	}
	callee := g.pickCallee(i)
	g.b.Append(program.Inst{Kind: isa.Call, Target: g.entries[callee]})
}

// genIndirect emits an indirect call or jump site whose dynamic targets are
// entries of earlier functions, selected with mild skew.
func (g *gen) genIndirect(kind isa.Kind, limit int) {
	fanout := g.p.IndirectFanout
	if fanout > limit {
		fanout = limit
	}
	targets := make([]isa.Addr, 0, fanout)
	seen := make(map[int]bool, fanout)
	for len(targets) < fanout {
		c := g.pickCallee(limit)
		if seen[c] {
			c = (c + 1 + g.rng.Intn(limit)) % limit
			if seen[c] {
				break
			}
		}
		seen[c] = true
		targets = append(targets, g.entries[c])
	}
	pc := g.b.Append(program.Inst{Kind: kind})
	g.indirs[pc] = indirectMeta{targets: targets, zipf: xrand.NewZipf(len(targets), 1.0)}
}

// genSwitch emits a switch-style indirect jump over case blocks inside the
// current function, each case jumping to a common join point.
func (g *gen) genSwitch() {
	g.b.AppendPlain(g.blockLen())
	ncases := g.p.IndirectFanout
	if ncases < 2 {
		ncases = 2
	}
	caseLens := make([]int, ncases)
	for i := range caseLens {
		caseLens[i] = g.blockLen()
	}
	ijPC := g.b.PC()
	// Layout: [ijmp][case0 plains][jump join][case1 plains][jump join]...
	caseStarts := make([]isa.Addr, ncases)
	off := 1
	for i, cl := range caseLens {
		caseStarts[i] = ijPC.Plus(off)
		off += cl + 1 // plains + terminating jump
	}
	join := ijPC.Plus(off)
	g.b.Append(program.Inst{Kind: isa.IndirectJump})
	for i, cl := range caseLens {
		_ = i
		g.b.AppendPlain(cl)
		g.b.Append(program.Inst{Kind: isa.Jump, Target: join})
	}
	g.indirs[ijPC] = indirectMeta{targets: caseStarts, zipf: xrand.NewZipf(ncases, 0.8)}
}

// guardExecP draws a driver call-site execution probability from a high/low
// mixture with mean DriverCallExecP.
func (g *gen) guardExecP() float64 {
	const hi, lo = 0.93, 0.15
	hiShare := (g.p.DriverCallExecP - lo) / (hi - lo)
	if hiShare < 0 {
		hiShare = 0
	}
	if hiShare > 1 {
		hiShare = 1
	}
	if g.rng.Bool(hiShare) {
		return hi - 0.05 + 0.1*g.rng.Float64()
	}
	return lo - 0.08 + 0.16*g.rng.Float64()
}

// genDriver emits the main loop: a guarded sequence of call sites to the
// generated functions, closed by an unconditional backward jump, so the
// walker can run for any instruction budget.
func (g *gen) genDriver() isa.Addr {
	g.alignToLine()
	g.b.MarkFunc("main")
	entry := g.b.PC()
	g.b.AppendPlain(g.blockLen())
	loopStart := g.b.PC()
	g.loopStart = loopStart
	for s := 0; s < g.p.DriverCallSites; s++ {
		g.b.AppendPlain(g.blockLen())
		guardPC := g.b.PC()
		// Guard skips the call when taken. Per-site execution rates are
		// drawn from a high/low mixture whose mean is DriverCallExecP:
		// most sites run almost every iteration (predictable guards, as in
		// real main loops) while a cold minority runs rarely. A coin-flip
		// guard would flood the PHT with worst-case branches.
		execP := g.guardExecP()
		g.b.Append(program.Inst{Kind: isa.CondBranch, Target: guardPC.Plus(2)})
		g.conds[guardPC] = condMeta{takenP: 1 - execP, class: "guard"}
		g.guardIdx[guardPC] = s
		callee := g.pickCallee(g.p.NumFuncs)
		g.b.Append(program.Inst{Kind: isa.Call, Target: g.entries[callee]})
		if g.rng.Bool(0.3) {
			g.genIfSkip(1, false)
		}
	}
	g.b.AppendPlain(g.blockLen())
	g.b.Append(program.Inst{Kind: isa.Jump, Target: loopStart})
	return entry
}
