// Package synth generates synthetic programs and dynamic traces that stand
// in for the paper's ATOM-instrumented SPEC92 and C++ workloads (which are
// not available). A Profile controls the first-order statistics that drive
// the paper's results — code footprint, basic-block length (branch
// density), loop structure, branch predictability, and indirect-branch
// usage — and the 13 stock profiles are calibrated against the paper's
// Table 2/3 characteristics for the benchmarks of the same names.
package synth

import "fmt"

// Lang tags the source-language family a profile imitates; the paper groups
// its observations by language.
type Lang string

const (
	Fortran Lang = "Fortran"
	C       Lang = "C"
	CPP     Lang = "C++"
)

// Profile parameterizes the synthetic program generator.
type Profile struct {
	// Name identifies the benchmark (and seeds the RNG together with Seed).
	Name string
	// Lang is the imitated language family.
	Lang Lang
	// Description says what the stand-in models.
	Description string
	// Seed drives all generation and walking randomness.
	Seed uint64

	// NumFuncs is the number of functions beyond the driver; together with
	// the block-length knobs it sets the static code footprint.
	NumFuncs int
	// SegmentsPerFunc bounds the segment count per function body [min,max].
	SegmentsPerFunc [2]int
	// MeanBlockLen is the mean plain-run length in instructions between
	// control transfers; it controls the dynamic branch fraction
	// (roughly 100/branch%).
	MeanBlockLen float64
	// LoopFrac is the fraction of segments that are innermost loops.
	LoopFrac float64
	// MeanLoopTrip is the mean iteration count of those loops.
	MeanLoopTrip float64
	// LoopBodyMul scales block length inside loop bodies (Fortran-style
	// fat loop bodies use > 1).
	LoopBodyMul float64
	// CallFrac is the fraction of segments that are call sites (in
	// functions that still have deeper callees available).
	CallFrac float64
	// IndirectCallFrac is the fraction of call sites that dispatch
	// indirectly (C++ virtual calls).
	IndirectCallFrac float64
	// IndirectJumpFrac is the fraction of segments that are switch-style
	// indirect jumps.
	IndirectJumpFrac float64
	// IndirectFanout is how many distinct targets an indirect site uses.
	IndirectFanout int
	// CondBiasFrac is the fraction of non-loop conditional sites that are
	// strongly biased (easily predicted).
	CondBiasFrac float64
	// PatternFrac is the fraction of non-loop conditional sites that follow
	// a short deterministic outcome pattern. A gshare predictor learns such
	// sites through its global history, so they predict well at shallow
	// speculation but degrade as deeper speculation makes the history stale
	// — the paper's Table 3 B1-vs-B4 effect.
	PatternFrac float64
	// BiasNear is the not-taken-side probability of a biased site; the
	// site's taken probability is BiasNear or 1-BiasNear.
	BiasNear float64
	// BiasTakenSide is the fraction of biased sites that are biased toward
	// taken (0.5 = symmetric). Taken-biased sites add BTB pressure because
	// only taken branches live in the BTB.
	BiasTakenSide float64
	// HardRange bounds taken probabilities of unbiased sites [lo,hi].
	HardRange [2]float64
	// ZipfS is the hotness skew when call sites pick callees; larger
	// values concentrate execution in fewer functions (smaller hot set).
	ZipfS float64
	// CallDepth is the number of call-graph levels below the driver.
	CallDepth int
	// DriverCallSites is the number of guarded call segments in the
	// driver's main loop.
	DriverCallSites int
	// DriverCallExecP is the probability each guarded driver call executes
	// per iteration.
	DriverCallExecP float64
	// PhaseSites, when non-zero, enables phased execution: only a rotating
	// window of PhaseSites driver call sites is active at a time, the rest
	// are skipped. Phases give the trace the temporal locality real
	// programs have — branch-predictor state stays warm within a phase,
	// and cache reuse distances split into a short intra-phase mode and a
	// long phase-transition tail.
	PhaseSites int
	// PhaseIters is how many driver iterations a phase lasts before the
	// window slides by half its width. Must be positive when PhaseSites is.
	PhaseIters int
}

// Validate checks profile sanity.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("synth: profile missing name")
	case p.NumFuncs < 1:
		return fmt.Errorf("synth: %s: NumFuncs %d < 1", p.Name, p.NumFuncs)
	case p.SegmentsPerFunc[0] < 1 || p.SegmentsPerFunc[1] < p.SegmentsPerFunc[0]:
		return fmt.Errorf("synth: %s: bad SegmentsPerFunc %v", p.Name, p.SegmentsPerFunc)
	case p.MeanBlockLen < 1:
		return fmt.Errorf("synth: %s: MeanBlockLen %.2f < 1", p.Name, p.MeanBlockLen)
	case p.MeanLoopTrip < 1:
		return fmt.Errorf("synth: %s: MeanLoopTrip %.2f < 1", p.Name, p.MeanLoopTrip)
	case p.LoopFrac < 0 || p.CallFrac < 0 || p.LoopFrac+p.CallFrac+p.IndirectJumpFrac > 1:
		return fmt.Errorf("synth: %s: segment fractions exceed 1", p.Name)
	case p.IndirectCallFrac < 0 || p.IndirectCallFrac > 1:
		return fmt.Errorf("synth: %s: IndirectCallFrac out of range", p.Name)
	case p.IndirectFanout < 1:
		return fmt.Errorf("synth: %s: IndirectFanout %d < 1", p.Name, p.IndirectFanout)
	case p.CondBiasFrac < 0 || p.CondBiasFrac > 1:
		return fmt.Errorf("synth: %s: CondBiasFrac out of range", p.Name)
	case p.PatternFrac < 0 || p.CondBiasFrac+p.PatternFrac > 1:
		return fmt.Errorf("synth: %s: CondBiasFrac+PatternFrac exceed 1", p.Name)
	case p.BiasNear <= 0 || p.BiasNear >= 0.5:
		return fmt.Errorf("synth: %s: BiasNear %.3f outside (0,0.5)", p.Name, p.BiasNear)
	case p.BiasTakenSide < 0 || p.BiasTakenSide > 1:
		return fmt.Errorf("synth: %s: BiasTakenSide out of range", p.Name)
	case p.HardRange[0] < 0 || p.HardRange[1] > 1 || p.HardRange[0] > p.HardRange[1]:
		return fmt.Errorf("synth: %s: bad HardRange %v", p.Name, p.HardRange)
	case p.ZipfS <= 0:
		return fmt.Errorf("synth: %s: ZipfS %.2f not positive", p.Name, p.ZipfS)
	case p.CallDepth < 1:
		return fmt.Errorf("synth: %s: CallDepth %d < 1", p.Name, p.CallDepth)
	case p.DriverCallSites < 1:
		return fmt.Errorf("synth: %s: DriverCallSites %d < 1", p.Name, p.DriverCallSites)
	case p.DriverCallExecP <= 0 || p.DriverCallExecP > 1:
		return fmt.Errorf("synth: %s: DriverCallExecP out of range", p.Name)
	case p.LoopBodyMul <= 0:
		return fmt.Errorf("synth: %s: LoopBodyMul %.2f not positive", p.Name, p.LoopBodyMul)
	case p.PhaseSites < 0 || p.PhaseSites > p.DriverCallSites:
		return fmt.Errorf("synth: %s: PhaseSites %d outside [0, DriverCallSites]", p.Name, p.PhaseSites)
	case p.PhaseSites > 0 && p.PhaseIters < 1:
		return fmt.Errorf("synth: %s: PhaseIters must be positive with phasing on", p.Name)
	}
	return nil
}
