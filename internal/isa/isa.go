// Package isa defines the minimal instruction-set abstractions shared by the
// whole simulator: addresses, instruction kinds, and cache-line geometry.
//
// The paper traces Alpha AXP binaries, so the model assumes a fixed 4-byte
// instruction encoding; a 32-byte cache line therefore holds 8 instructions.
package isa

import (
	"fmt"
	"math/bits"
)

// InstBytes is the size of one instruction in bytes (Alpha AXP fixed width).
const InstBytes = 4

// Addr is a byte address in the simulated instruction address space.
type Addr uint64

// Next returns the address of the sequentially following instruction.
func (a Addr) Next() Addr { return a + InstBytes }

// Plus returns the address n instructions after a.
func (a Addr) Plus(n int) Addr { return a + Addr(n)*InstBytes }

// String renders the address in hex, matching trace-file conventions.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Kind classifies an instruction for the fetch and branch architecture.
type Kind uint8

const (
	// Plain is any non-control-transfer instruction.
	Plain Kind = iota
	// CondBranch is a conditional direct branch (PC-relative target).
	CondBranch
	// Jump is an unconditional direct branch.
	Jump
	// Call is a direct subroutine call (unconditionally taken).
	Call
	// Return transfers control to a dynamically determined return address.
	Return
	// IndirectJump is a computed jump (e.g. switch table, virtual dispatch).
	IndirectJump
	// IndirectCall is a computed subroutine call (virtual dispatch).
	IndirectCall

	numKinds
)

var kindNames = [numKinds]string{
	Plain:        "plain",
	CondBranch:   "cond",
	Jump:         "jump",
	Call:         "call",
	Return:       "ret",
	IndirectJump: "ijmp",
	IndirectCall: "icall",
}

// String returns the short mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind is the inverse of Kind.String. It reports false for unknown names.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// IsBranch reports whether the kind is any control transfer.
func (k Kind) IsBranch() bool { return k != Plain }

// IsConditional reports whether the transfer depends on a condition.
func (k Kind) IsConditional() bool { return k == CondBranch }

// IsUnconditional reports whether the transfer always redirects fetch.
func (k Kind) IsUnconditional() bool { return k.IsBranch() && k != CondBranch }

// IsIndirect reports whether the target is computed at run time, so a BTB
// entry for it can hold a stale (wrong) target.
func (k Kind) IsIndirect() bool {
	return k == Return || k == IndirectJump || k == IndirectCall
}

// IsCall reports whether the instruction pushes a return address.
func (k Kind) IsCall() bool { return k == Call || k == IndirectCall }

// LineGeom describes cache-line geometry and provides the address arithmetic
// used by the cache, prefetcher, and fetch engine.
type LineGeom struct {
	// LineBytes is the line size in bytes; it must be a power of two and a
	// multiple of InstBytes.
	LineBytes int
}

// DefaultLineBytes matches the paper's 32-byte instruction cache lines.
const DefaultLineBytes = 32

// NewLineGeom validates sz and returns the geometry.
func NewLineGeom(sz int) (LineGeom, error) {
	switch {
	case sz <= 0 || sz&(sz-1) != 0:
		return LineGeom{}, fmt.Errorf("isa: line size %d is not a positive power of two", sz)
	case sz%InstBytes != 0:
		return LineGeom{}, fmt.Errorf("isa: line size %d is not a multiple of the %d-byte instruction size", sz, InstBytes)
	}
	return LineGeom{LineBytes: sz}, nil
}

// MustLineGeom is NewLineGeom for known-good constants.
func MustLineGeom(sz int) LineGeom {
	g, err := NewLineGeom(sz)
	if err != nil {
		panic(err)
	}
	return g
}

// shift returns log2(LineBytes). LineBytes is a power of two by contract,
// so line arithmetic compiles to shifts and masks rather than the hardware
// divide a variable divisor would force in the simulator's hottest loops.
func (g LineGeom) shift() uint { return uint(bits.TrailingZeros64(uint64(g.LineBytes))) }

// Line returns the line number containing a.
func (g LineGeom) Line(a Addr) uint64 { return uint64(a) >> g.shift() }

// LineAddr returns the first byte address of the line containing a.
func (g LineGeom) LineAddr(a Addr) Addr {
	return a &^ Addr(g.LineBytes-1)
}

// NextLineAddr returns the first byte address of the line after the one
// containing a (the next-line prefetch candidate).
func (g LineGeom) NextLineAddr(a Addr) Addr {
	return g.LineAddr(a) + Addr(g.LineBytes)
}

// InstPerLine returns how many instructions one line holds.
func (g LineGeom) InstPerLine() int { return g.LineBytes / InstBytes }

// InstsLeftInLine returns how many instructions, including the one at a,
// remain before the end of a's line.
func (g LineGeom) InstsLeftInLine(a Addr) int {
	off := int(uint64(a) & uint64(g.LineBytes-1))
	return (g.LineBytes - off) / InstBytes
}

// SameLine reports whether a and b fall in the same cache line.
func (g LineGeom) SameLine(a, b Addr) bool { return g.Line(a) == g.Line(b) }
