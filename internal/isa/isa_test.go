package isa

import (
	"testing"
	"testing/quick"
)

func TestKindClassification(t *testing.T) {
	cases := []struct {
		k                                 Kind
		branch, cond, uncond, indir, call bool
	}{
		{Plain, false, false, false, false, false},
		{CondBranch, true, true, false, false, false},
		{Jump, true, false, true, false, false},
		{Call, true, false, true, false, true},
		{Return, true, false, true, true, false},
		{IndirectJump, true, false, true, true, false},
		{IndirectCall, true, false, true, true, true},
	}
	for _, c := range cases {
		if got := c.k.IsBranch(); got != c.branch {
			t.Errorf("%s.IsBranch() = %v, want %v", c.k, got, c.branch)
		}
		if got := c.k.IsConditional(); got != c.cond {
			t.Errorf("%s.IsConditional() = %v, want %v", c.k, got, c.cond)
		}
		if got := c.k.IsUnconditional(); got != c.uncond {
			t.Errorf("%s.IsUnconditional() = %v, want %v", c.k, got, c.uncond)
		}
		if got := c.k.IsIndirect(); got != c.indir {
			t.Errorf("%s.IsIndirect() = %v, want %v", c.k, got, c.indir)
		}
		if got := c.k.IsCall(); got != c.call {
			t.Errorf("%s.IsCall() = %v, want %v", c.k, got, c.call)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Plain; k < numKinds; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Error("ParseKind accepted bogus name")
	}
}

func TestAddrArithmetic(t *testing.T) {
	a := Addr(0x1000)
	if a.Next() != 0x1004 {
		t.Errorf("Next = %s", a.Next())
	}
	if a.Plus(3) != 0x100c {
		t.Errorf("Plus(3) = %s", a.Plus(3))
	}
	if s := a.String(); s != "0x1000" {
		t.Errorf("String = %q", s)
	}
}

func TestNewLineGeomValidation(t *testing.T) {
	for _, sz := range []int{0, -32, 3, 6, 1 << 1} {
		if _, err := NewLineGeom(sz); err == nil {
			t.Errorf("NewLineGeom(%d) accepted", sz)
		}
	}
	for _, sz := range []int{4, 8, 16, 32, 64, 128} {
		if _, err := NewLineGeom(sz); err != nil {
			t.Errorf("NewLineGeom(%d): %v", sz, err)
		}
	}
}

func TestLineGeometry(t *testing.T) {
	g := MustLineGeom(32)
	if g.InstPerLine() != 8 {
		t.Errorf("InstPerLine = %d", g.InstPerLine())
	}
	if g.Line(0x1000) != 0x80 {
		t.Errorf("Line(0x1000) = %d", g.Line(0x1000))
	}
	if g.LineAddr(0x101c) != 0x1000 {
		t.Errorf("LineAddr = %s", g.LineAddr(0x101c))
	}
	if g.NextLineAddr(0x101c) != 0x1020 {
		t.Errorf("NextLineAddr = %s", g.NextLineAddr(0x101c))
	}
	if g.InstsLeftInLine(0x1000) != 8 {
		t.Errorf("InstsLeftInLine(start) = %d", g.InstsLeftInLine(0x1000))
	}
	if g.InstsLeftInLine(0x101c) != 1 {
		t.Errorf("InstsLeftInLine(last) = %d", g.InstsLeftInLine(0x101c))
	}
	if !g.SameLine(0x1000, 0x101c) || g.SameLine(0x1000, 0x1020) {
		t.Error("SameLine misbehaves")
	}
}

// TestLineGeomProperties checks structural invariants over random addresses.
func TestLineGeomProperties(t *testing.T) {
	g := MustLineGeom(32)
	prop := func(raw uint32) bool {
		a := Addr(raw &^ 3) // aligned
		la := g.LineAddr(a)
		return la <= a &&
			uint64(a)-uint64(la) < uint64(g.LineBytes) &&
			g.NextLineAddr(a) == la+Addr(g.LineBytes) &&
			g.Line(la) == g.Line(a) &&
			g.InstsLeftInLine(a) >= 1 &&
			g.InstsLeftInLine(a) <= g.InstPerLine()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
