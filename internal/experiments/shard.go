package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"specfetch/internal/adaptive"
	"specfetch/internal/bpred"
	"specfetch/internal/core"
	"specfetch/internal/distsweep"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// The sweep executor. Every table, figure, and study in this package is the
// same shape: an explicit work-list of independent cells (one benchmark
// simulated under one configuration), executed on a bounded worker pool, then
// reduced serially in work-list order. Because cell i's result lands in slot
// i and the reduction never looks at completion order, rendered artifacts are
// byte-identical to a serial run regardless of scheduling.

// workers resolves Options.Workers: 0 means GOMAXPROCS, anything below 1
// after that means serial.
func (opt Options) workers() int {
	w := opt.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cellFailure records the lowest-indexed cell that errored or panicked.
type cellFailure struct {
	idx     int
	err     error
	payload any
	isPanic bool
}

// pool runs fn(worker, i) for i in [0,n) on up to opt.workers() goroutines;
// worker is the 0-based index of the goroutine running the cell (always 0 on
// the serial path), which the host span tracer uses as its timeline track.
// Cell indexes are dispensed in increasing order; after a cell fails, no new
// cell is started, already-running cells finish, and the pool drains before
// reporting. The failure surfaced is the one with the smallest index — and
// that is deterministic: indexes are handed out in order, so the smallest
// failing index is always dispatched (and therefore observed) no matter how
// the scheduler interleaves the workers. A panicking cell (e.g. an
// *obs.AuditError from a sampled audit) is re-panicked on the caller's
// goroutine with its original value once the pool has drained.
func pool(opt Options, n int, fn func(worker, i int) error) error {
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		stop atomic.Bool
		mu   sync.Mutex
		fail *cellFailure
	)
	next.Store(-1)
	record := func(f cellFailure) {
		mu.Lock()
		if fail == nil || f.idx < fail.idx {
			fail = &f
		}
		mu.Unlock()
		stop.Store(true)
	}
	runOne := func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				record(cellFailure{idx: i, payload: r, isPanic: true})
			}
		}()
		if err := fn(w, i); err != nil {
			record(cellFailure{idx: i, err: err})
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				runOne(w, i)
			}
		}(w)
	}
	wg.Wait()
	if fail == nil {
		return nil
	}
	if fail.isPanic {
		panic(fail.payload)
	}
	return fail.err
}

// mapCells runs fn over [0,n) on the pool and returns the index-keyed
// results — the deterministic reduction every builder hangs off. fn's first
// argument is the pool worker index running the cell.
func mapCells[T any](opt Options, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := pool(opt, n, func(w, i int) error {
		v, err := fn(w, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// benchRows evaluates fn once per benchmark on the pool, preserving bench
// order. Builders whose row needs several dependent simulations (the
// ablations) shard at this granularity; fn runs its own cells serially.
// Each row is wrapped in one host span ("<bench>/row") — the pool's unit of
// work at this granularity.
func benchRows[T any](opt Options, benches []*synth.Bench, fn func(b *synth.Bench) (T, error)) ([]T, error) {
	return mapCells(opt, len(benches), func(w, i int) (T, error) {
		sp := spanStart(opt, benches[i].Profile().Name+"/row", w)
		v, err := fn(benches[i])
		spanEnd(opt, sp)
		return v, err
	})
}

// runCell is one independent unit of sweep work: one benchmark simulated
// under one configuration over one dynamic stream.
type runCell struct {
	bench *synth.Bench
	cfg   core.Config
	seed  uint64
	// pred names the predictor kind from bpred.ByName ("" = default
	// decoupled); a name rather than a constructor so cells stay
	// serializable for the distributed executor. Used by the
	// branch-architecture ablation.
	pred string
}

// newCell builds a cell on the experiments' shared stream seed.
func newCell(b *synth.Bench, cfg core.Config) runCell {
	return runCell{bench: b, cfg: cfg, seed: defaultStreamSeed}
}

// cellOut pairs one cell's Result with its captured window series (nil
// unless Options.CaptureWindows was set).
type cellOut struct {
	res     core.Result
	windows []obs.WindowRecord
}

// runCells executes a work-list and returns results keyed by cell index.
// With a remote fleet configured (Options.Remote/Dispatch) and every cell
// serializable, the list is dispatched across processes; otherwise — and
// for any batch the fleet cannot complete — it runs on the in-process
// pool. Either way results land at their cell's index, so the caller's
// serial reduction renders identical bytes.
func runCells(opt Options, cells []runCell) ([]core.Result, error) {
	full, err := runCellsFull(opt, cells)
	if err != nil {
		return nil, err
	}
	out := make([]core.Result, len(full))
	for i, c := range full {
		out[i] = c.res
	}
	return out, nil
}

// runCellsFull is runCells keeping each cell's window series alongside its
// Result — the executor entry point for the interval-analytics builders.
func runCellsFull(opt Options, cells []runCell) ([]cellOut, error) {
	if coord := opt.coordinator(); coord != nil {
		if res, ok, err := runCellsRemote(opt, coord, cells); ok {
			return res, err
		}
	}
	return runCellsLocal(opt, cells)
}

// runCellsLocal executes a work-list on the in-process pool. With host
// tracing enabled (Options.Spans), every cell is wrapped in a span named
// "<bench>/<policy>" on the worker that ran it. Two per-pool reuses make the
// steady state cheap without changing a byte of output: dynamic streams read
// by several cells are generated once and replayed (sharedTraces), and each
// pool worker keeps one core.Arena so consecutive cells on it reuse queue
// and cache storage instead of reallocating.
func runCellsLocal(opt Options, cells []runCell) ([]cellOut, error) {
	shared := sharedTraces(opt, cells)
	arenas := make([]*core.Arena, opt.workers())
	return mapCells(opt, len(cells), func(w, i int) (cellOut, error) {
		var sp obs.SpanHandle
		if opt.Spans != nil {
			sp = opt.Spans.Start(
				cells[i].bench.Profile().Name+"/"+cells[i].cfg.Policy.String(), w)
		}
		if arenas[w] == nil {
			arenas[w] = core.NewArena()
		}
		var rd trace.Reader
		if s := shared[cellTraceKey(cells[i], opt)]; s != nil {
			rd = s.reader()
		}
		res, wins, err := simulateCell(cells[i], opt, rd, arenas[w])
		spanEnd(opt, sp)
		if err != nil {
			return cellOut{}, fmt.Errorf("%s/%s: %w",
				cells[i].bench.Profile().Name, cells[i].cfg.Policy, err)
		}
		return cellOut{res: res, windows: wins}, nil
	})
}

// spanStart opens a host span when tracing is enabled (nil tracers return
// an inert handle).
func spanStart(opt Options, name string, worker int) obs.SpanHandle {
	return opt.Spans.Start(name, worker)
}

// spanEnd completes a host span and feeds its latency into the campaign
// metrics histogram. Host timing is observe-only: nothing here touches
// simulated state, so sweep bytes are identical with tracing on or off.
func spanEnd(opt Options, sp obs.SpanHandle) {
	span, ok := sp.End()
	if !ok {
		return
	}
	if opt.Metrics != nil {
		opt.Metrics.Histogram("specfetch_cell_seconds",
			"Host wall time per sweep work unit (simulation cell or ablation row).").
			Observe(span.Dur.Seconds())
	}
}

// simulate runs one cell — remotely when a fleet is configured and the
// cell is serializable, in-process otherwise. The ablation rows shard at
// row granularity and call this per dependent cell, so they fan out to
// the fleet too.
func simulate(c runCell, opt Options) (core.Result, error) {
	coord := opt.coordinator()
	if coord == nil {
		return simulateLocal(c, opt)
	}
	spec, ok := specForCell(opt, c)
	if !ok {
		return simulateLocal(c, opt)
	}
	jrs, err := coord.Run([]distsweep.JobSpec{spec},
		func(int, []distsweep.JobSpec) ([]distsweep.JobResult, error) {
			res, wins, rerr := simulateLocalFull(c, opt)
			if rerr != nil {
				return nil, rerr
			}
			return []distsweep.JobResult{{Result: res, Audit: res.AuditFinal(), WindowSeries: wins}}, nil
		},
		func(_ int, res []distsweep.JobResult) {
			opt.observe(c.bench.Profile().Name, c.cfg.Policy, res[0].Result)
		})
	if err != nil {
		return core.Result{}, err
	}
	return jrs[0].Result, nil
}

// simulateLocal runs one cell in-process with a fresh engine, cache, and
// predictor. With Options.AuditSample > 0 it attaches a sampled
// obs.AuditProbe to the run: stream violations panic (the pool
// re-surfaces them), and the final accounting identities are verified
// before the result is accepted.
func simulateLocal(c runCell, opt Options) (core.Result, error) {
	res, _, err := simulateCell(c, opt, nil, nil)
	return res, err
}

// simulateLocalFull is simulateLocal keeping the captured window series.
func simulateLocalFull(c runCell, opt Options) (core.Result, []obs.WindowRecord, error) {
	return simulateCell(c, opt, nil, nil)
}

// simulateCell is simulateLocal with the pool executor's reuses threaded in:
// rd, when non-nil, is a replay cursor over the cell's (pre-generated)
// stream; arena, when non-nil, donates storage from earlier cells on the
// same worker. Both are behaviour-neutral. With Options.CaptureWindows set
// (which requires a positive sample interval) the run carries an
// obs.WindowSeries and the records come back as the second return; a
// sample-only series attached alone keeps the engine's bulk path enabled,
// so capture costs the interpolated samples and nothing else.
func simulateCell(c runCell, opt Options, rd trace.Reader, arena *core.Arena) (core.Result, []obs.WindowRecord, error) {
	cfg := c.cfg
	cfg.MaxInsts = opt.Insts
	cfg.StepMode = opt.stepMode()
	cfg.Arena = arena
	if cfg.Policy == core.Adaptive && cfg.Chooser == nil {
		// Cells travel chooser-free (the chooser is in-process-only state, so
		// a cell that carried one could not go to the fleet); the chooser is
		// built here, just in time, from the serializable strategy name and
		// seed — the same code path on a pool worker and a remote daemon.
		ch, cerr := adaptive.New(cfg.AdaptStrategy, cfg.AdaptSeed)
		if cerr != nil {
			return core.Result{}, nil, cerr
		}
		cfg.Chooser = ch
	}
	if opt.SampleInterval > 0 {
		cfg.SampleInterval = opt.SampleInterval
	}
	var win *obs.WindowSeries
	if opt.CaptureWindows {
		if cfg.SampleInterval <= 0 {
			return core.Result{}, nil, fmt.Errorf("experiments: CaptureWindows requires a positive SampleInterval")
		}
		win = obs.NewWindowSeries()
		if cfg.Probe != nil {
			cfg.Probe = obs.Multi(cfg.Probe, win)
		} else {
			cfg.Probe = win
		}
	}
	var aud *obs.AuditProbe
	if opt.AuditSample > 0 {
		aud = obs.NewAuditProbe(obs.AuditOptions{
			Width:           cfg.FetchWidth,
			AllowBusOverlap: cfg.PipelinedMemory,
			SampleEvery:     opt.AuditSample,
		})
		if cfg.Probe != nil {
			cfg.Probe = obs.Multi(cfg.Probe, aud)
		} else {
			cfg.Probe = aud
		}
	}
	mk, err := bpred.ByName(c.pred)
	if err != nil {
		return core.Result{}, nil, err
	}
	pred := mk()
	if rd == nil {
		rd = trace.NewLimitReader(c.bench.NewWalker(c.seed), traceLimit(opt.Insts))
	}
	res, err := core.Run(cfg, c.bench.Image(), rd, pred)
	if err != nil {
		return res, nil, err
	}
	if aud != nil {
		if verr := aud.Verify(res.AuditFinal()); verr != nil {
			return res, nil, verr
		}
	}
	opt.observe(c.bench.Profile().Name, cfg.Policy, res)
	var wins []obs.WindowRecord
	if win != nil {
		wins = win.Records()
	}
	return res, wins, nil
}
