package experiments

import (
	"fmt"
	"math"

	"specfetch/internal/core"
	"specfetch/internal/texttable"
)

// SeedStats summarizes one policy's ISPI across dynamic stream seeds.
type SeedStats struct {
	Mean, StdDev, Min, Max float64
	N                      int
}

// describe computes SeedStats from samples.
func describe(xs []float64) SeedStats {
	s := SeedStats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return SeedStats{}
	}
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.StdDev += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(s.StdDev / float64(len(xs)-1))
	}
	return s
}

// SeedSensitivityRow holds one benchmark's per-policy seed statistics.
type SeedSensitivityRow struct {
	Bench string
	Stats map[core.Policy]SeedStats
}

// SeedSensitivityData reruns the baseline configuration over `seeds`
// distinct dynamic streams per benchmark, quantifying how much the paper's
// Table 5-style numbers move with workload randomness. The synthetic traces
// make this analysis possible at all — the paper had one trace per program.
func SeedSensitivityData(opt Options, seeds int) ([]SeedSensitivityRow, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 seeds, got %d", seeds)
	}
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	// One flat work-list of bench x policy x seed cells, each on its own
	// dynamic stream.
	pols := core.Policies()
	var cells []runCell
	for _, b := range benches {
		for _, pol := range pols {
			for s := 0; s < seeds; s++ {
				c := newCell(b, baseConfig(pol))
				c.seed = uint64(1000 + s)
				cells = append(cells, c)
			}
		}
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]SeedSensitivityRow, len(benches))
	i := 0
	for bi, b := range benches {
		row := SeedSensitivityRow{Bench: b.Profile().Name, Stats: map[core.Policy]SeedStats{}}
		for _, pol := range pols {
			samples := make([]float64, 0, seeds)
			for s := 0; s < seeds; s++ {
				samples = append(samples, results[i].TotalISPI())
				i++
			}
			row.Stats[pol] = describe(samples)
		}
		rows[bi] = row
	}
	return rows, nil
}

// SeedSensitivity renders the analysis as a table (mean ± sd per policy).
func SeedSensitivity(opt Options, seeds int) (*texttable.Table, error) {
	rows, err := SeedSensitivityData(opt, seeds)
	if err != nil {
		return nil, err
	}
	headers := []string{"Program"}
	for _, p := range core.Policies() {
		headers = append(headers, shortPolicy(p))
	}
	t := texttable.New(fmt.Sprintf("Seed sensitivity: total ISPI over %d dynamic streams (mean ± sd)", seeds),
		headers...)
	for _, r := range rows {
		cells := []string{r.Bench}
		for _, p := range core.Policies() {
			st := r.Stats[p]
			cells = append(cells, fmt.Sprintf("%.2f ± %.3f", st.Mean, st.StdDev))
		}
		t.AddRow(cells...)
	}
	return t, nil
}
