package experiments

import (
	"bytes"
	"testing"

	"specfetch/internal/core"
	"specfetch/internal/distsweep"
)

// adaptiveOpt is the small pinned configuration the identity arms share.
func adaptiveOpt() Options {
	return Options{Insts: 60_000, Benchmarks: []string{"gcc", "groff"}}
}

// renderAdaptive runs the study and flattens its rendered artifacts into
// one byte string for identity comparison.
func renderAdaptive(t *testing.T, opt Options, strategy string) string {
	t.Helper()
	d, err := AdaptiveStudyData(opt, strategy, 0x5eed, oracleTestInterval, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := d.CrossoverTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(d.WinnerMap())
	return b.String()
}

// TestAdaptiveBytesIdenticalAcrossWorkers: the study renders the same
// bytes serially, on a 4-worker pool, and dispatched to a spawned 2-worker
// fleet — for a seeded-random strategy and for the flush-phase strategy.
// The chooser never crosses the wire; each worker rebuilds it from the
// strategy name and seed, and this is the proof that reconstruction is
// exact.
func TestAdaptiveBytesIdenticalAcrossWorkers(t *testing.T) {
	for _, strategy := range []string{"egreedy", "phase:3"} {
		serial := adaptiveOpt()
		serial.Workers = 1
		want := renderAdaptive(t, serial, strategy)

		pooled := adaptiveOpt()
		pooled.Workers = 4
		if got := renderAdaptive(t, pooled, strategy); got != want {
			t.Errorf("%s: 4-worker pool renders the adaptive study differently from serial", strategy)
		}

		remote := adaptiveOpt()
		remote.Remote = startWorkers(t, 2)
		remote.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
			Workers:   remote.Remote,
			BatchSize: 4,
		})
		if got := renderAdaptive(t, remote, strategy); got != want {
			t.Errorf("%s: remote fleet renders the adaptive study differently from serial", strategy)
		}
	}
}

// TestAdaptiveStepModeIdentity: the study renders identical bytes under
// the reference stepper and the skip-ahead core. The chooser sits in the
// engine's decision loop, so this is the experiments-level face of the
// core adapt-window digest identity.
func TestAdaptiveStepModeIdentity(t *testing.T) {
	fast := adaptiveOpt()
	fast.Workers = 1
	fast.StepMode = core.StepSkipAhead
	ref := fast
	ref.StepMode = core.StepReference
	for _, strategy := range []string{"tournament", "phase:3"} {
		if renderAdaptive(t, fast, strategy) != renderAdaptive(t, ref, strategy) {
			t.Errorf("%s: step modes render the adaptive study differently", strategy)
		}
	}
}

// TestAdaptivePinnedMatchesStatic: the degenerate pinned strategy must
// score exactly the static policy it pins — same windows, same totals —
// with zero switches. This anchors the whole study: whatever a real
// strategy reports, the measurement machinery adds nothing.
func TestAdaptivePinnedMatchesStatic(t *testing.T) {
	opt := adaptiveOpt()
	opt.Workers = 1
	opt.FlushInterval = 15_000 // the pinning must hold under flushes too
	d, err := AdaptiveStudyData(opt, "pinned:resume", 0, oracleTestInterval, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range d.Rows {
		if r.Switches != 0 {
			t.Errorf("row %d (%s@%dc): pinned chooser switched %d times", i, r.Bench, r.Penalty, r.Switches)
		}
		if want := d.Oracle.Rows[i].StaticISPI(core.Resume); r.ISPI != want {
			t.Errorf("row %d (%s@%dc): pinned adaptive ISPI %v, static resume %v",
				i, r.Bench, r.Penalty, r.ISPI, want)
		}
	}
}

// TestAdaptiveStudyRejectsUnknownStrategy: a bad strategy name fails
// before any simulation runs.
func TestAdaptiveStudyRejectsUnknownStrategy(t *testing.T) {
	if _, err := AdaptiveStudyData(adaptiveOpt(), "bogus", 0, oracleTestInterval, nil); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestAdaptiveCapturesHeadroomAtPinnedCell is the headline acceptance run:
// on the shipped study geometry — porky, 20-cycle miss penalty, the cache
// flushed every 15000 instructions, 2500-instruction decision windows, the
// phase:6 strategy, 20M instructions — the online chooser must strictly
// beat the best static policy and report a nonzero share of the oracle
// selector's headroom. This is the cell where adaptation pays for itself;
// the full 13-benchmark sweep (README table) shows it is also the honest
// boundary: where one static policy dominates every phase, adaptation's
// probe overhead loses by design.
func TestAdaptiveCapturesHeadroomAtPinnedCell(t *testing.T) {
	if raceEnabled {
		t.Skip("20M-instruction cells; numerical coverage is identical without the race detector")
	}
	if testing.Short() {
		t.Skip("20M-instruction cells")
	}
	opt := Options{
		Insts:         20_000_000,
		Benchmarks:    []string{"porky"},
		FlushInterval: 15_000,
	}
	d, err := AdaptiveStudyData(opt, "phase:6", 0, 2_500, []int{20})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(d.Rows))
	}
	wins := d.Wins()
	if len(wins) == 0 {
		_, best := d.Oracle.Rows[0].BestStatic()
		t.Fatalf("adaptive ISPI %.4f did not beat the best static %.4f at the pinned cell",
			d.Rows[0].ISPI, best)
	}
	capture, ok := d.Capture(0)
	if !ok || capture <= 0 {
		t.Fatalf("headroom capture = %.2f%% (defined=%v), want positive", capture, ok)
	}
	t.Logf("porky@20c: adaptive %.4f, capture %.1f%%, %d switches",
		d.Rows[0].ISPI, capture, d.Rows[0].Switches)
}
