package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"specfetch/internal/core"
	"specfetch/internal/obs"
	"specfetch/internal/texttable"
)

// The oracle-selector yardstick. The paper's summary is that no static fetch
// policy wins everywhere — the best choice depends on the miss latency and
// the program. The interval-analytics layer sharpens that: it runs every
// policy over the same dynamic stream, slices each run into fixed
// instruction-count windows, aligns the five series by instruction index,
// and asks, window by window, which policy lost the fewest issue slots. The
// resulting "oracle selector" — a hypothetical machine that switches to the
// best policy at every window boundary — bounds what any adaptive policy
// could gain over the best static one.

// DefaultOracleInterval is the window width the builders default to:
// coarse enough that a window spans many miss events, fine enough that
// phase changes inside a benchmark show up as winner switches.
const DefaultOracleInterval int64 = 10_000

// DefaultOraclePenalties are the paper's low and high miss latencies.
var DefaultOraclePenalties = []int{5, 20}

// OracleRow is one benchmark x miss-penalty cell: the five aligned window
// series and the per-window winners.
type OracleRow struct {
	Bench   string
	Penalty int
	// Series holds one window series per policy, aligned on instruction
	// boundaries (validated by OracleSelect).
	Series map[core.Policy][]obs.WindowRecord
	// Winners[i] is the policy that lost the fewest issue slots in window i
	// (ties break toward the earlier policy in core.Policies() order).
	Winners []core.Policy
}

// OracleData is the full oracle-selector study: one row per selected
// benchmark per swept penalty, all captured at one window width.
type OracleData struct {
	Interval  int64
	Penalties []int
	Rows      []OracleRow
}

// OracleSelect computes the per-window winner over aligned series: for each
// window index, the policy with the fewest lost slots, ties resolved toward
// the earlier policy in order. It rejects misaligned input — series of
// different lengths or windows with different instruction boundaries —
// because an argmin across windows that do not describe the same
// instructions is meaningless.
func OracleSelect(series map[core.Policy][]obs.WindowRecord, order []core.Policy) ([]core.Policy, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("experiments: oracle selection over no policies")
	}
	ref, ok := series[order[0]]
	if !ok {
		return nil, fmt.Errorf("experiments: no series for policy %v", order[0])
	}
	for _, pol := range order[1:] {
		s, ok := series[pol]
		if !ok {
			return nil, fmt.Errorf("experiments: no series for policy %v", pol)
		}
		if len(s) != len(ref) {
			return nil, fmt.Errorf("experiments: series misaligned: %v has %d windows, %v has %d",
				pol, len(s), order[0], len(ref))
		}
		for i := range s {
			if s[i].StartInsts != ref[i].StartInsts || s[i].EndInsts != ref[i].EndInsts {
				return nil, fmt.Errorf("experiments: series misaligned at window %d: %v spans [%d,%d) insts, %v spans [%d,%d)",
					i, pol, s[i].StartInsts, s[i].EndInsts, order[0], ref[i].StartInsts, ref[i].EndInsts)
			}
		}
	}
	winners := make([]core.Policy, len(ref))
	for i := range ref {
		best := order[0]
		bestLost := series[best][i].TotalLost()
		for _, pol := range order[1:] {
			if l := series[pol][i].TotalLost(); l < bestLost {
				best, bestLost = pol, l
			}
		}
		winners[i] = best
	}
	return winners, nil
}

// insts returns the instructions the row's aligned windows cover.
func (r OracleRow) insts() int64 {
	s := r.Series[core.Policies()[0]]
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].EndInsts - s[0].StartInsts
}

// StaticISPI returns one policy's ISPI over the row's windows — the
// whole-run number a machine locked to that policy would score.
func (r OracleRow) StaticISPI(pol core.Policy) float64 {
	var lost int64
	for _, w := range r.Series[pol] {
		lost += w.TotalLost()
	}
	if n := r.insts(); n > 0 {
		return float64(lost) / float64(n)
	}
	return 0
}

// BestStatic returns the policy with the lowest whole-run ISPI (ties to the
// earlier policy in core.Policies() order) and that ISPI.
func (r OracleRow) BestStatic() (core.Policy, float64) {
	pols := core.Policies()
	best, bestISPI := pols[0], r.StaticISPI(pols[0])
	for _, pol := range pols[1:] {
		if i := r.StaticISPI(pol); i < bestISPI {
			best, bestISPI = pol, i
		}
	}
	return best, bestISPI
}

// OracleISPI returns the selector's ISPI: each window billed at its
// winner's lost slots.
func (r OracleRow) OracleISPI() float64 {
	var lost int64
	for i, pol := range r.Winners {
		lost += r.Series[pol][i].TotalLost()
	}
	if n := r.insts(); n > 0 {
		return float64(lost) / float64(n)
	}
	return 0
}

// Switches counts the winner changes across consecutive windows — how often
// the hypothetical adaptive machine would actually switch.
func (r OracleRow) Switches() int {
	n := 0
	for i := 1; i < len(r.Winners); i++ {
		if r.Winners[i] != r.Winners[i-1] {
			n++
		}
	}
	return n
}

// OracleSelectorData runs the study: every selected benchmark under every
// policy at every swept penalty, seed-locked on the shared stream, windows
// captured at the given width (0 means DefaultOracleInterval). Cells go
// through the standard executor, so the study shards across the pool and
// the distsweep fleet like any other table and renders identical bytes at
// every worker and process count.
func OracleSelectorData(opt Options, interval int64, penalties []int) (*OracleData, error) {
	if interval <= 0 {
		interval = DefaultOracleInterval
	}
	if len(penalties) == 0 {
		penalties = DefaultOraclePenalties
	}
	opt.SampleInterval = interval
	opt.CaptureWindows = true
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	pols := core.Policies()
	var cells []runCell
	for _, b := range benches {
		for _, pen := range penalties {
			for _, pol := range pols {
				cfg := baseConfig(pol)
				cfg.MissPenalty = pen
				cfg.FlushInterval = opt.FlushInterval
				cells = append(cells, newCell(b, cfg))
			}
		}
	}
	full, err := runCellsFull(opt, cells)
	if err != nil {
		return nil, err
	}
	d := &OracleData{Interval: interval, Penalties: penalties}
	i := 0
	for _, b := range benches {
		for _, pen := range penalties {
			row := OracleRow{
				Bench:   b.Profile().Name,
				Penalty: pen,
				Series:  map[core.Policy][]obs.WindowRecord{},
			}
			for _, pol := range pols {
				row.Series[pol] = full[i].windows
				i++
			}
			row.Winners, err = OracleSelect(row.Series, pols)
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", row.Bench, pen, err)
			}
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// CrossoverTable renders the oracle-vs-static comparison: per benchmark and
// penalty, the best static policy and its ISPI, the oracle selector's ISPI,
// the headroom an adaptive policy could claim, and how often the selector
// switches.
func (d *OracleData) CrossoverTable() *texttable.Table {
	t := texttable.New(
		fmt.Sprintf("Oracle selector vs best static policy (window = %d insts): per-window argmin bounds adaptive-policy headroom", d.Interval),
		"Program", "Penalty", "Best static", "Static ISPI", "Oracle ISPI", "Headroom %", "Switches", "Windows")
	for _, r := range d.Rows {
		best, bestISPI := r.BestStatic()
		oracle := r.OracleISPI()
		headroom := 0.0
		if bestISPI > 0 {
			headroom = 100 * (bestISPI - oracle) / bestISPI
		}
		t.AddRowF(3, r.Bench, fmt.Sprintf("%dc", r.Penalty), shortPolicy(best),
			bestISPI, oracle, headroom, fmt.Sprintf("%d", r.Switches()), fmt.Sprintf("%d", len(r.Winners)))
	}
	return t
}

// policyLetters maps each policy to its winner-map glyph. Optimistic takes
// "A" (aggressive) so Oracle can keep "O".
var policyLetters = map[core.Policy]byte{
	core.Oracle:      'O',
	core.Optimistic:  'A',
	core.Resume:      'R',
	core.Pessimistic: 'P',
	core.Decode:      'D',
}

// WinnerMap renders each row's winner sequence as one letter per window —
// the at-a-glance picture of which policy owns which program phase.
func (d *OracleData) WinnerMap() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-window winner map (window = %d insts; O=Oracle A=Optimistic R=Resume P=Pessimistic D=Decode)\n",
		d.Interval)
	width := 0
	for _, r := range d.Rows {
		if n := len(r.Bench) + len(fmt.Sprintf("@%dc", r.Penalty)); n > width {
			width = n
		}
	}
	for _, r := range d.Rows {
		label := fmt.Sprintf("%s@%dc", r.Bench, r.Penalty)
		fmt.Fprintf(&b, "  %-*s  ", width, label)
		for _, pol := range r.Winners {
			b.WriteByte(policyLetters[pol])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// intervalLine is the JSONL record cmd/intervals consumes: one line per
// benchmark x penalty x policy, carrying that run's full window series. The
// v field lets readers reject records from a future incompatible schema.
type intervalLine struct {
	V        int                `json:"v"`
	Bench    string             `json:"bench"`
	Penalty  int                `json:"penalty"`
	Policy   core.Policy        `json:"policy"`
	Interval int64              `json:"interval"`
	Windows  []obs.WindowRecord `json:"windows"`
}

// intervalLineVersion is the JSONL schema version WriteJSONL stamps.
const intervalLineVersion = 1

// WriteJSONL streams the study as line-delimited JSON, one line per
// benchmark x penalty x policy in canonical order — the wire between a
// sweep process and the cmd/intervals report tool.
func (d *OracleData) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range d.Rows {
		for _, pol := range core.Policies() {
			if err := enc.Encode(intervalLine{
				V:        intervalLineVersion,
				Bench:    r.Bench,
				Penalty:  r.Penalty,
				Policy:   pol,
				Interval: d.Interval,
				Windows:  r.Series[pol],
			}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadOracleJSONL rebuilds an OracleData from its JSONL form, regrouping
// lines by benchmark and penalty and recomputing the winners. Rows come
// back in first-appearance order, so a file written by WriteJSONL round
// trips to the same tables.
func ReadOracleJSONL(r io.Reader) (*OracleData, error) {
	type key struct {
		bench string
		pen   int
	}
	d := &OracleData{}
	rows := map[key]*OracleRow{}
	var order []key
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var l intervalLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("intervals jsonl line %d: %w", line, err)
		}
		if l.V != intervalLineVersion {
			return nil, fmt.Errorf("intervals jsonl line %d: schema v%d, want v%d", line, l.V, intervalLineVersion)
		}
		if d.Interval == 0 {
			d.Interval = l.Interval
		} else if l.Interval != d.Interval {
			return nil, fmt.Errorf("intervals jsonl line %d: mixed intervals %d and %d", line, l.Interval, d.Interval)
		}
		k := key{l.Bench, l.Penalty}
		row, ok := rows[k]
		if !ok {
			row = &OracleRow{Bench: l.Bench, Penalty: l.Penalty, Series: map[core.Policy][]obs.WindowRecord{}}
			rows[k] = row
			order = append(order, k)
		}
		if _, dup := row.Series[l.Policy]; dup {
			return nil, fmt.Errorf("intervals jsonl line %d: duplicate series for %s@%d %v", line, l.Bench, l.Penalty, l.Policy)
		}
		row.Series[l.Policy] = l.Windows
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("intervals jsonl: no records")
	}
	pens := map[int]bool{}
	for _, k := range order {
		row := rows[k]
		var err error
		row.Winners, err = OracleSelect(row.Series, core.Policies())
		if err != nil {
			return nil, fmt.Errorf("%s@%d: %w", row.Bench, row.Penalty, err)
		}
		d.Rows = append(d.Rows, *row)
		pens[k.pen] = true
	}
	for p := range pens {
		d.Penalties = append(d.Penalties, p)
	}
	sort.Ints(d.Penalties)
	return d, nil
}
