package experiments

import (
	"strings"
	"sync"

	"specfetch/internal/distsweep"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
)

// The coordinator half of distributed sweeps. Cells convert to wire
// JobSpecs, runCells dispatches whole work-lists in batches, and the
// worker side (JobRunner, used by cmd/sweepworker) runs specs through the
// identical simulateLocal path, so a remote sweep computes cell-for-cell
// the same results — and therefore renders the same bytes — as an
// in-process one.

// Process-wide coordinators, keyed by the worker list, so that every
// builder in a campaign shares one fleet's retry/backoff/eviction state
// instead of re-probing dead workers per table.
var (
	coordMu sync.Mutex
	coords  = map[string]*distsweep.Coordinator{}
)

// coordinator resolves the dispatch side for these options: the explicit
// Dispatch if set, the shared per-fleet coordinator when Remote is set,
// nil for plain in-process runs.
func (opt Options) coordinator() *distsweep.Coordinator {
	if opt.Dispatch != nil {
		return opt.Dispatch
	}
	if len(opt.Remote) == 0 {
		return nil
	}
	key := strings.Join(opt.Remote, "\x00")
	coordMu.Lock()
	defer coordMu.Unlock()
	if c, ok := coords[key]; ok {
		return c
	}
	c := distsweep.New(distsweep.CoordinatorOptions{
		Workers: opt.Remote,
		Metrics: opt.Metrics,
		Spans:   opt.Spans,
		Log:     opt.SweepLog,
	})
	coords[key] = c
	return c
}

// specForCell converts one cell to its wire form. ok is false when the
// cell carries in-process-only state (a probe or access callback) and
// must run locally.
func specForCell(opt Options, c runCell) (distsweep.JobSpec, bool) {
	cfg := c.cfg
	// Resolve the engine mode here so a pinned sweep stays pinned across
	// the wire: the worker runs whatever mode the coordinator resolved, not
	// its own environment default.
	cfg.StepMode = opt.stepMode()
	// The sampling interval travels inside the wire config (it is part of
	// the machine configuration); window capture travels as a JobSpec flag,
	// so a capturing cell stays probe-free and serializable.
	if opt.SampleInterval > 0 {
		cfg.SampleInterval = opt.SampleInterval
	}
	wc, err := distsweep.FromConfig(cfg)
	if err != nil {
		return distsweep.JobSpec{}, false
	}
	return distsweep.JobSpec{
		Profile:        c.bench.Profile(),
		Config:         wc,
		Seed:           c.seed,
		Insts:          opt.Insts,
		Pred:           c.pred,
		AuditSample:    opt.AuditSample,
		CaptureWindows: opt.CaptureWindows,
	}, true
}

// runCellsRemote dispatches a work-list through the coordinator. ok is
// false (and the caller runs everything in-process) when any cell is not
// serializable — mixed dispatch would complicate reasoning for no gain,
// since only probe-carrying sweeps are affected. Results come back keyed
// by cell index, so the caller's serial canonical-order reduction is
// untouched: remote bytes are in-process bytes.
func runCellsRemote(opt Options, coord *distsweep.Coordinator, cells []runCell) ([]cellOut, bool, error) {
	specs := make([]distsweep.JobSpec, len(cells))
	for i, c := range cells {
		s, ok := specForCell(opt, c)
		if !ok {
			return nil, false, nil
		}
		specs[i] = s
	}
	// Batches the fleet cannot complete run on the in-process pool via the
	// normal local path (which also reports progress and wraps errors with
	// the same bench/policy prefix a purely local sweep would use).
	local := func(offset int, jobs []distsweep.JobSpec) ([]distsweep.JobResult, error) {
		res, err := runCellsLocal(opt, cells[offset:offset+len(jobs)])
		if err != nil {
			return nil, err
		}
		out := make([]distsweep.JobResult, len(res))
		for i, r := range res {
			out[i] = distsweep.JobResult{Result: r.res, Audit: r.res.AuditFinal(), WindowSeries: r.windows}
		}
		return out, nil
	}
	// Remotely-completed cells stream progress as their batches verify;
	// locally-run cells already report inside simulateLocal.
	onRemote := func(offset int, res []distsweep.JobResult) {
		for i, r := range res {
			c := cells[offset+i]
			opt.observe(c.bench.Profile().Name, c.cfg.Policy, r.Result)
		}
	}
	jrs, err := coord.Run(specs, local, onRemote)
	if err != nil {
		return nil, true, err
	}
	out := make([]cellOut, len(jrs))
	for i, r := range jrs {
		out[i] = cellOut{res: r.Result, windows: r.WindowSeries}
	}
	return out, true, nil
}

// JobRunner is the worker-side distsweep.Runner: it rebuilds the bench
// from the spec's profile (memoized — a sweep sends the same profile once
// per cell) and runs the cell through simulateLocal, the same code path
// the in-process executor uses, with the spec's sampled audit attached.
type JobRunner struct {
	// Metrics, when non-nil, accumulates the worker's campaign counters
	// (specfetch_simulations_total etc.).
	Metrics *obs.Registry
	// Progress, when non-nil, receives per-simulation progress lines.
	Progress func(msg string)

	mu      sync.Mutex
	benches map[synth.Profile]*synth.Bench
}

// NewJobRunner builds a worker-side runner.
func NewJobRunner(reg *obs.Registry) *JobRunner {
	return &JobRunner{Metrics: reg, benches: map[synth.Profile]*synth.Bench{}}
}

// bench returns the (memoized) built benchmark for a profile.
func (r *JobRunner) bench(p synth.Profile) (*synth.Bench, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.benches[p]; ok {
		return b, nil
	}
	b, err := synth.Build(p)
	if err != nil {
		return nil, err
	}
	r.benches[p] = b
	return b, nil
}

// Run implements distsweep.Runner. Safe for concurrent batches: benches
// are built under a lock and read-only afterwards, exactly as the
// in-process pool shares them across workers.
func (r *JobRunner) Run(spec distsweep.JobSpec) (distsweep.JobResult, error) {
	if err := spec.Validate(); err != nil {
		return distsweep.JobResult{}, err
	}
	b, err := r.bench(spec.Profile)
	if err != nil {
		return distsweep.JobResult{}, err
	}
	cell := runCell{bench: b, cfg: spec.Config.ToConfig(), seed: spec.Seed, pred: spec.Pred}
	opt := Options{
		Insts:       spec.Insts,
		AuditSample: spec.AuditSample,
		Metrics:     r.Metrics,
		Progress:    r.Progress,
		// The wire config carries the coordinator-resolved step mode;
		// threading it through Options keeps simulateCell's stamp from
		// replacing it with this worker's environment default.
		StepMode: cell.cfg.StepMode,
		// Window capture crosses the wire as a spec flag (the sampling
		// interval is already inside the wire config).
		CaptureWindows: spec.CaptureWindows,
	}
	res, wins, err := simulateLocalFull(cell, opt)
	if err != nil {
		return distsweep.JobResult{}, err
	}
	return distsweep.JobResult{Result: res, Audit: res.AuditFinal(), WindowSeries: wins}, nil
}
