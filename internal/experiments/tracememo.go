package experiments

import (
	"sync"

	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// Trace memoization. Most sweeps simulate the same benchmark under many
// configurations, and every one of those cells walks the identical
// correct-path stream: the walker is seeded per (benchmark, stream seed),
// and the dynamic path never depends on the fetch configuration. Generating
// the stream is a fifth or more of a low-miss-rate cell's wall time, so the
// local executor pre-generates each stream that more than one cell of a
// work-list reads and hands the cells replay cursors over the shared record
// slice. Replay is bit-identical by construction: the records handed out,
// their order, and the terminal error (io.EOF from the instruction limit, or
// a walker fault mid-stream) are exactly what a fresh bounded walker yields.

// traceKey identifies one dynamic stream at one instruction budget.
type traceKey struct {
	bench string
	seed  uint64
	insts int64
}

// sharedTrace is one pre-generated stream: the records a bounded walker
// yields, then the error it ends with.
type sharedTrace struct {
	once sync.Once
	b    *synth.Bench
	key  traceKey
	recs []trace.Record
	err  error
	// valid reports that every record passed Validate at generation time, so
	// replay cursors may vouch for the stream (trace.PreValidated) and spare
	// each cell the per-record re-check. A stream with an invalid record is
	// replayed without the vouching: each engine then validates per record
	// and fails exactly as it would on a fresh walker.
	valid bool
}

// generate materializes the stream on first use (sync.Once so concurrent
// pool workers needing the same stream generate it exactly once).
func (s *sharedTrace) generate() {
	s.once.Do(func() {
		s.valid = true
		rd := trace.NewLimitReader(s.b.NewWalker(s.key.seed), traceLimit(s.key.insts))
		for {
			rec, err := rd.Next()
			if err != nil {
				s.err = err
				return
			}
			if rec.Validate() != nil {
				s.valid = false
			}
			s.recs = append(s.recs, rec)
		}
	})
}

// reader returns a fresh replay cursor over the stream.
func (s *sharedTrace) reader() trace.Reader {
	s.generate()
	return &replayReader{recs: s.recs, err: s.err, pre: s.valid}
}

// replayReader is a cursor over a pre-generated stream. After the records
// are exhausted it reports the stream's terminal error forever, like the
// exhausted LimitReader it stands in for.
type replayReader struct {
	recs []trace.Record
	i    int
	err  error
	pre  bool
}

// Next implements trace.Reader.
func (r *replayReader) Next() (trace.Record, error) {
	if r.i < len(r.recs) {
		rec := r.recs[r.i]
		r.i++
		return rec, nil
	}
	return trace.Record{}, r.err
}

// PreValidatedTrace implements trace.PreValidated: true when every replayed
// record passed Validate at generation time.
func (r *replayReader) PreValidatedTrace() bool { return r.pre }

// traceLimit is the stream length simulateLocal feeds an engine with an
// instruction budget of insts: headroom for the wrong-path consistency
// checks at the final records, same as a direct walker run.
func traceLimit(insts int64) int64 { return insts + insts/4 }

// sharedTraces pre-plans memoization for a work-list: streams read by two or
// more cells are shared, streams unique to one cell stay on the lazy walker
// (memoizing those would only add memory). Generation itself is deferred to
// first use so a work-list that fails early generates nothing extra.
func sharedTraces(opt Options, cells []runCell) map[traceKey]*sharedTrace {
	counts := make(map[traceKey]int, len(cells))
	for _, c := range cells {
		counts[cellTraceKey(c, opt)]++
	}
	var shared map[traceKey]*sharedTrace
	for _, c := range cells {
		k := cellTraceKey(c, opt)
		if counts[k] < 2 {
			continue
		}
		if shared == nil {
			shared = make(map[traceKey]*sharedTrace)
		}
		if _, ok := shared[k]; !ok {
			shared[k] = &sharedTrace{b: c.bench, key: k}
		}
	}
	return shared
}

// cellTraceKey names the stream a cell reads.
func cellTraceKey(c runCell, opt Options) traceKey {
	return traceKey{bench: c.bench.Profile().Name, seed: c.seed, insts: opt.Insts}
}
