package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"specfetch/internal/obs"
)

// renderAll builds one table and one figure from each executor shape —
// a flat policy work-list (Table 6), a flat figure work-list (Figure 1),
// and the characterization pipeline (Table 3) — and concatenates the bytes.
func renderAll(t *testing.T, opt Options) string {
	t.Helper()
	tab6, err := Table6(opt)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	tab3, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	return tab6.String() + "\n" + fig.String() + "\n" + tab3.String()
}

// TestDifferentialSerialParallelAudited is the sharding change's headline
// proof: for all five policies over a reduced benchmark grid, the rendered
// table/figure bytes are identical between the serial path (Workers=1),
// parallel pools of 2 and 7 workers (odd count to shake out ordering bugs),
// and an audited parallel sweep (sampled and full audit). Run under -race in
// CI at GOMAXPROCS 1 and 4.
func TestDifferentialSerialParallelAudited(t *testing.T) {
	base := Options{Insts: 50_000, Benchmarks: []string{"gcc", "groff"}}

	serial := base
	serial.Workers = 1
	want := renderAll(t, serial)

	for _, w := range []int{2, 7} {
		opt := base
		opt.Workers = w
		if got := renderAll(t, opt); got != want {
			t.Errorf("Workers=%d renders differently from the serial sweep", w)
		}
	}

	audited := base
	audited.Workers = 7
	audited.AuditSample = 4
	if got := renderAll(t, audited); got != want {
		t.Error("audited parallel sweep (sample=4) renders differently from the serial sweep")
	}
	fullAudit := base
	fullAudit.Workers = 2
	fullAudit.AuditSample = 1
	if got := renderAll(t, fullAudit); got != want {
		t.Error("fully audited sweep (sample=1) renders differently from the serial sweep")
	}
}

// renderTable6Figure1 builds the instrumentation differential's target
// artifacts: one flat policy work-list (Table 6) and one figure work-list
// (Figure 1).
func renderTable6Figure1(t *testing.T, opt Options) string {
	t.Helper()
	tab, err := Table6(opt)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	return tab.String() + "\n" + fig.String()
}

// TestDifferentialInstrumentationNeutral proves host-side observability is
// observe-only: Table 6 + Figure 1 bytes are identical with span tracing
// and the metrics/histogram registry enabled vs. disabled, at Workers 1 and
// 4 (run under -race in CI). It also pins that the instrumentation actually
// fired: spans were recorded, one per cell, and the registry's cell-latency
// histogram saw every one of them.
func TestDifferentialInstrumentationNeutral(t *testing.T) {
	base := Options{Insts: 50_000, Benchmarks: []string{"gcc", "groff"}}

	for _, w := range []int{1, 4} {
		plain := base
		plain.Workers = w
		want := renderTable6Figure1(t, plain)

		inst := base
		inst.Workers = w
		inst.Spans = obs.NewSpanTracer()
		inst.Metrics = obs.NewRegistry()
		if got := renderTable6Figure1(t, inst); got != want {
			t.Errorf("Workers=%d: instrumented sweep renders differently from the plain sweep", w)
		}

		spans := inst.Spans.Spans()
		// Table 6: 2 benches x 5 policies; Figure 1: 2 benches x 5 policies.
		const wantCells = 2 * 5 * 2
		if len(spans) != wantCells {
			t.Errorf("Workers=%d: recorded %d spans, want %d (one per cell)", w, len(spans), wantCells)
		}
		for _, s := range spans {
			if s.Dur < 0 || s.Worker < 0 || s.Worker >= 4 {
				t.Errorf("Workers=%d: malformed span %+v", w, s)
			}
		}
		hist := inst.Metrics.Histogram("specfetch_cell_seconds", "")
		if got := hist.Count(); got != int64(len(spans)) {
			t.Errorf("Workers=%d: latency histogram saw %d observations, want %d", w, got, len(spans))
		}
	}
}

// waitGoroutines yields until the goroutine count settles back to the
// pre-pool level (small slack for runtime/test-harness background noise).
// Yield-based rather than clock-based so the simlint determinism gate,
// which covers these test files too, stays clean.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutine leak: %d before the pool, %d after drain",
		before, runtime.NumGoroutine())
}

// TestPoolFirstErrorDeterministic: when several cells fail, the pool always
// surfaces the lowest-indexed failure — indexes are dispensed in increasing
// order, so the lowest failing index is dispatched (and runs to completion)
// before any later failure can cancel it. Repeated to shake out schedules.
func TestPoolFirstErrorDeterministic(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		err := pool(Options{Workers: 4}, 64, func(_, i int) error {
			if i == 1 || i == 3 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 1" {
			t.Fatalf("trial %d: err = %v, want boom 1", trial, err)
		}
	}
}

// TestPoolCancelsAfterFailure injects an error into a mid-list cell and
// asserts the pool stops dispatching: of 128 cells, only the handful in
// flight around the failure ever start, and the pool drains cleanly.
func TestPoolCancelsAfterFailure(t *testing.T) {
	const n, workers = 128, 4
	before := runtime.NumGoroutine()
	var started atomic.Int64
	tripped := make(chan struct{})
	err := pool(Options{Workers: workers}, n, func(_, i int) error {
		started.Add(1)
		if i == 2 {
			close(tripped)
			return errors.New("boom")
		}
		// Hold every other cell until the failure has been recorded, then
		// give the stop flag a moment to land before finishing.
		<-tripped
		for y := 0; y < 100; y++ {
			runtime.Gosched()
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := started.Load(); got > 3*workers {
		t.Errorf("pool started %d of %d cells after a mid-list failure (want <= %d)",
			got, n, 3*workers)
	}
	waitGoroutines(t, before)
}

// TestPoolSerialStopsAtError: the Workers=1 fast path runs cells in order on
// the calling goroutine and stops exactly at the first error.
func TestPoolSerialStopsAtError(t *testing.T) {
	var started atomic.Int64
	err := pool(Options{Workers: 1}, 64, func(_, i int) error {
		started.Add(1)
		if i == 5 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if got := started.Load(); got != 6 {
		t.Errorf("serial pool ran %d cells, want exactly 6", got)
	}
}

// TestPoolPanicDrainsAndRethrows injects a panic into a mid-list cell and
// asserts the pool drains its workers and re-panics on the caller's
// goroutine with the original value (an *obs.AuditError survives intact, as
// the sampled-audit path requires).
func TestPoolPanicDrainsAndRethrows(t *testing.T) {
	sentinel := &obs.AuditError{Cycle: 42, Check: "injected", Detail: "fault-path test"}
	before := runtime.NumGoroutine()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("pool swallowed the cell's panic")
			}
			ae, ok := r.(*obs.AuditError)
			if !ok || ae != sentinel {
				t.Fatalf("panic value = %v, want the injected *AuditError", r)
			}
		}()
		_ = pool(Options{Workers: 4}, 32, func(_, i int) error {
			if i == 3 {
				panic(sentinel)
			}
			return nil
		})
		t.Fatal("pool returned instead of panicking")
	}()
	waitGoroutines(t, before)
}

// TestPoolErrorBeatsLaterPanic: failure ordering is by cell index across
// kinds — an error at index 1 wins over a panic at index 3, so the pool
// returns the error instead of re-panicking.
func TestPoolErrorBeatsLaterPanic(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: pool panicked with %v; the index-1 error should win", trial, r)
				}
			}()
			return pool(Options{Workers: 4}, 64, func(_, i int) error {
				if i == 1 {
					return errors.New("boom 1")
				}
				if i == 3 {
					panic("late panic")
				}
				return nil
			})
		}()
		if err == nil || err.Error() != "boom 1" {
			t.Fatalf("trial %d: err = %v, want boom 1", trial, err)
		}
	}
}

// TestWorkersResolution pins the Options.Workers contract: 0 means
// GOMAXPROCS, negatives clamp to serial.
func TestWorkersResolution(t *testing.T) {
	if got := (Options{}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers=0 resolved to %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Workers: -3}).workers(); got != 1 {
		t.Errorf("Workers=-3 resolved to %d, want 1", got)
	}
	if got := (Options{Workers: 7}).workers(); got != 7 {
		t.Errorf("Workers=7 resolved to %d, want 7", got)
	}
}
