package experiments

import (
	"fmt"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/core"
	"specfetch/internal/synth"
	"specfetch/internal/texttable"
)

// The ablations quantify the design choices DESIGN.md calls out and the
// paper's §2/§6 alternatives: prefetch scheme, BTB coupling, cache
// associativity, fetch width, and a pipelined memory interface.
//
// Each ablation shards its sweep at row granularity: benchRows evaluates one
// benchmark's cells per pool worker (the cells within a row stay serial —
// some depend on a shared baseline), and the rows are rendered afterwards in
// bench order, so the table bytes never depend on scheduling.

// PrefetchScheme names one prefetch configuration for the ablation.
type PrefetchScheme struct {
	Name string
	// Apply sets the scheme's fields on a config.
	Apply func(*core.Config)
}

// PrefetchSchemes lists the compared prefetch engines: the paper's
// next-line policy, Smith & Hsu target prefetching, Pierce & Mudge style
// combined prefetching, and a Jouppi-style sequential stream.
func PrefetchSchemes() []PrefetchScheme {
	return []PrefetchScheme{
		{Name: "none", Apply: func(c *core.Config) {}},
		{Name: "next-line", Apply: func(c *core.Config) { c.NextLinePrefetch = true }},
		{Name: "target", Apply: func(c *core.Config) { c.TargetPrefetch = true }},
		{Name: "combined", Apply: func(c *core.Config) { c.NextLinePrefetch = true; c.TargetPrefetch = true }},
		{Name: "stream-4", Apply: func(c *core.Config) { c.StreamDepth = 4 }},
	}
}

// renderRows runs rowFn per benchmark on the pool and adds the returned
// cells to t in bench order.
func renderRows(t *texttable.Table, opt Options, benches []*synth.Bench,
	rowFn func(b *synth.Bench) ([]any, error)) (*texttable.Table, error) {
	rows, err := benchRows(opt, benches, rowFn)
	if err != nil {
		return nil, err
	}
	for _, cells := range rows {
		t.AddRowF(2, cells...)
	}
	return t, nil
}

// AblationPrefetch compares prefetch schemes under the Resume policy.
func AblationPrefetch(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	schemes := PrefetchSchemes()
	headers := []string{"Program"}
	for _, s := range schemes {
		headers = append(headers, s.Name+" ISPI", s.Name+" traffic")
	}
	t := texttable.New("Ablation: prefetch scheme (Resume policy, 8K, 5-cycle penalty)", headers...)
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		var baseTraffic float64
		for i, s := range schemes {
			cfg := baseConfig(core.Resume)
			s.Apply(&cfg)
			res, err := runBench(b, cfg, opt)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				baseTraffic = float64(res.Traffic.Total())
			}
			ratio := 0.0
			if baseTraffic > 0 {
				ratio = float64(res.Traffic.Total()) / baseTraffic
			}
			cells = append(cells, res.TotalISPI(), ratio)
		}
		return cells, nil
	})
}

// AblationBTBCoupling compares the paper's decoupled branch architecture
// against a Pentium-style coupled BTB and a static not-taken predictor.
func AblationBTBCoupling(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Ablation: branch architecture (Oracle policy ISPI; decoupled gshare is the paper's baseline)",
		"Program", "Decoupled", "Local PAg", "Coupled", "Static")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		row := []any{b.Profile().Name}
		for _, kind := range bpred.Kinds() {
			cell := newCell(b, baseConfig(core.Oracle))
			cell.pred = kind
			res, err := simulate(cell, opt)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Profile().Name, err)
			}
			row = append(row, res.TotalISPI())
		}
		return row, nil
	})
}

// AblationAssociativity compares direct-mapped (the paper) against 2- and
// 4-way caches of the same capacity.
func AblationAssociativity(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Ablation: 8K cache associativity (Resume policy ISPI / right-path miss %)",
		"Program", "DM", "DM miss%", "2-way", "2w miss%", "4-way", "4w miss%")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		for _, assoc := range []int{1, 2, 4} {
			cfg := baseConfig(core.Resume)
			cfg.ICache.Assoc = assoc
			res, err := runBench(b, cfg, opt)
			if err != nil {
				return nil, err
			}
			cells = append(cells, res.TotalISPI(), res.MissRatioPct())
		}
		return cells, nil
	})
}

// AblationFetchWidth sweeps the superscalar width (the paper fixes 4).
func AblationFetchWidth(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Ablation: fetch width (Resume policy, IPC)",
		"Program", "2-wide", "4-wide", "8-wide")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		for _, w := range []int{2, 4, 8} {
			cfg := baseConfig(core.Resume)
			cfg.FetchWidth = w
			res, err := runBench(b, cfg, opt)
			if err != nil {
				return nil, err
			}
			cells = append(cells, res.IPC())
		}
		return cells, nil
	})
}

// AblationPipelinedMemory measures what removing bus contention buys the
// aggressive policies at the long miss latency — the paper's "pipelining
// miss requests" future work.
func AblationPipelinedMemory(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Ablation: pipelined memory interface (20-cycle penalty, prefetch on; ISPI)",
		"Program", "Resume", "Resume+pipe", "Pess", "Pess+pipe")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		for _, pol := range []core.Policy{core.Resume, core.Pessimistic} {
			for _, pipe := range []bool{false, true} {
				cfg := baseConfig(pol)
				cfg.MissPenalty = 20
				cfg.NextLinePrefetch = true
				cfg.PipelinedMemory = pipe
				res, err := runBench(b, cfg, opt)
				if err != nil {
					return nil, err
				}
				cells = append(cells, res.TotalISPI())
			}
		}
		return cells, nil
	})
}

// AblationRAS compares the paper's BTB-only return prediction against
// return-address stacks of increasing depth.
func AblationRAS(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Ablation: return-address stack (Oracle policy; ISPI / BTB target mispredicts per 100k insts)",
		"Program", "no RAS", "mispred", "RAS-8", "mispred", "RAS-32", "mispred")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		for _, depth := range []int{0, 8, 32} {
			cfg := baseConfig(core.Oracle)
			cfg.RASDepth = depth
			res, err := runBench(b, cfg, opt)
			if err != nil {
				return nil, err
			}
			per100k := 0.0
			if res.Insts > 0 {
				per100k = 100_000 * float64(res.Events.BTBMispredicts) / float64(res.Insts)
			}
			cells = append(cells, res.TotalISPI(), per100k)
		}
		return cells, nil
	})
}

// AblationVictimCache measures what a small fully associative victim buffer
// buys the paper's direct-mapped cache.
func AblationVictimCache(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Ablation: victim buffer on the 8K direct-mapped cache (Resume policy; ISPI / right-path miss %)",
		"Program", "none", "miss%", "4 lines", "miss%", "16 lines", "miss%")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		for _, lines := range []int{0, 4, 16} {
			cfg := baseConfig(core.Resume)
			cfg.ICache.VictimLines = lines
			res, err := runBench(b, cfg, opt)
			if err != nil {
				return nil, err
			}
			cells = append(cells, res.TotalISPI(), res.MissRatioPct())
		}
		return cells, nil
	})
}

// AblationMSHR compares the paper's single resume/prefetch buffers against
// multi-entry MSHR files, with and without a pipelined memory interface.
func AblationMSHR(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Ablation: non-blocking fill tracking (Resume, 20-cycle penalty, prefetch on; ISPI)",
		"Program", "1 buf", "4 MSHR", "4 MSHR+pipe")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		for _, v := range []struct {
			mshrs int
			pipe  bool
		}{{0, false}, {4, false}, {4, true}} {
			cfg := baseConfig(core.Resume)
			cfg.MissPenalty = 20
			cfg.NextLinePrefetch = true
			cfg.MSHRs = v.mshrs
			cfg.PipelinedMemory = v.pipe
			res, err := runBench(b, cfg, opt)
			if err != nil {
				return nil, err
			}
			cells = append(cells, res.TotalISPI())
		}
		return cells, nil
	})
}

// AblationCodeLayout evaluates profile-guided function reordering — the
// paper's "profile driven basic-block reordering" future-work item. Each
// benchmark is profiled on one stream and evaluated (original vs reordered
// layout) on a different stream, so the gain is not an artifact of training
// on the test trace.
func AblationCodeLayout(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Ablation: profile-guided code layout (Resume policy, 8K; ISPI / right-path miss %)",
		"Program", "original", "miss%", "reordered", "miss%")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		rb, err := synth.ReorderByProfile(b, opt.Insts, defaultStreamSeed+1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Profile().Name, err)
		}
		cells := []any{b.Profile().Name}
		for _, bench := range []*synth.Bench{b, rb} {
			res, err := simulate(newCell(bench, baseConfig(core.Resume)), opt)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Profile().Name, err)
			}
			cells = append(cells, res.TotalISPI(), res.MissRatioPct())
		}
		return cells, nil
	})
}

// AblationL2 inserts a unified 64K L2 behind the paper's 8K L1 and varies
// the memory penalty: the hierarchy makes the effective fill latency small
// (the L2-hit case the paper's conclusion calls "an on-chip hierarchy of
// caches"), which should restore the aggressive policies' advantage even at
// a long memory latency.
func AblationL2(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	l2 := cache.Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 4}
	t := texttable.New("Ablation: on-chip L2 (20-cycle memory, 5-cycle L2 hits; ISPI and L2 hit rate)",
		"Program", "Opt noL2", "Pess noL2", "Opt +L2", "Pess +L2", "L2 hit%")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		var hitPct float64
		for _, withL2 := range []bool{false, true} {
			for _, pol := range []core.Policy{core.Optimistic, core.Pessimistic} {
				cfg := baseConfig(pol)
				cfg.MissPenalty = 20
				if withL2 {
					l2c := l2
					cfg.L2 = &l2c
					cfg.L2Latency = 5
				}
				res, err := runBench(b, cfg, opt)
				if err != nil {
					return nil, err
				}
				cells = append(cells, res.TotalISPI())
				if withL2 && res.Traffic.L2Hits+res.Traffic.L2Misses > 0 {
					hitPct = 100 * float64(res.Traffic.L2Hits) /
						float64(res.Traffic.L2Hits+res.Traffic.L2Misses)
				}
			}
		}
		cells = append(cells, hitPct)
		return cells, nil
	})
}

// AblationContextSwitch flushes the I-cache at decreasing intervals
// (modelling OS context switches) and shows how the policy choice holds up:
// flush-induced cold misses are ordinary right-path misses, so the
// conservative policies' force_resolve tax grows with switch rate.
func AblationContextSwitch(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	intervals := []int64{0, 100_000, 20_000}
	t := texttable.New("Ablation: context-switch flushing (Resume vs Pessimistic ISPI at flush intervals)",
		"Program", "Res inf", "Pess inf", "Res 100k", "Pess 100k", "Res 20k", "Pess 20k")
	return renderRows(t, opt, benches, func(b *synth.Bench) ([]any, error) {
		cells := []any{b.Profile().Name}
		for _, iv := range intervals {
			for _, pol := range []core.Policy{core.Resume, core.Pessimistic} {
				cfg := baseConfig(pol)
				cfg.FlushInterval = iv
				res, err := runBench(b, cfg, opt)
				if err != nil {
					return nil, err
				}
				cells = append(cells, res.TotalISPI())
			}
		}
		return cells, nil
	})
}

// Ablations maps names to runners (used by cmd/paperbench -ablation).
func Ablations() map[string]func(Options) (*texttable.Table, error) {
	return map[string]func(Options) (*texttable.Table, error){
		"prefetch":      AblationPrefetch,
		"btb":           AblationBTBCoupling,
		"assoc":         AblationAssociativity,
		"width":         AblationFetchWidth,
		"pipelined-mem": AblationPipelinedMemory,
		"ras":           AblationRAS,
		"victim":        AblationVictimCache,
		"mshr":          AblationMSHR,
		"layout":        AblationCodeLayout,
		"ctxswitch":     AblationContextSwitch,
		"l2":            AblationL2,
	}
}
