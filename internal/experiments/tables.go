package experiments

import (
	"fmt"

	"specfetch/internal/bpred"
	"specfetch/internal/classify"
	"specfetch/internal/core"
	"specfetch/internal/synth"
	"specfetch/internal/texttable"
	"specfetch/internal/trace"
)

// Table2 reproduces the benchmark inventory: language, description, and the
// dynamic branch fraction of our synthetic stand-ins next to the paper's.
func Table2(opt Options) (*texttable.Table, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	stats, err := benchRows(opt, benches, func(b *synth.Bench) (trace.Stats, error) {
		return trace.Scan(b.NewReader(defaultStreamSeed, opt.Insts))
	})
	if err != nil {
		return nil, err
	}
	t := texttable.New("Table 2: benchmark inventory (synthetic stand-ins)",
		"Program", "Lang", "Static KB", "%Branches", "Paper %Br", "Description")
	for i, b := range benches {
		p := b.Profile()
		t.AddRowF(1, p.Name, string(p.Lang),
			float64(b.Image().SizeBytes())/1024,
			100*stats[i].BranchFrac(), synth.PaperTargets[p.Name].BranchPct, p.Description)
	}
	return t, nil
}

// Table3Row holds one benchmark's characteristics for tests.
type Table3Row struct {
	Characterization
	Paper synth.PaperStats
}

// Table3Data measures every selected benchmark's Table 3 characteristics.
func Table3Data(opt Options) ([]Table3Row, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	chars, err := characterizeMany(benches, opt)
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(chars))
	for i, c := range chars {
		rows[i] = Table3Row{Characterization: c, Paper: synth.PaperTargets[c.Name]}
	}
	return rows, nil
}

// Table3 reproduces the cache and branch-architecture characteristics table.
func Table3(opt Options) (*texttable.Table, error) {
	rows, err := Table3Data(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Table 3: I-cache and branch prediction characteristics (paper values in parentheses)",
		"Program", "%Miss 8K", "%Miss 32K", "PHT ISPI B1", "PHT ISPI B4", "BTB Misfetch", "BTB Mispredict")
	var m8, m32, b1, b4, mf, mp []float64
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.2f (%.2f)", r.Miss8K, r.Paper.Miss8K),
			fmt.Sprintf("%.2f (%.2f)", r.Miss32K, r.Paper.Miss32K),
			fmt.Sprintf("%.2f (%.2f)", r.PHTISPIB1, r.Paper.PHTISPIB1),
			fmt.Sprintf("%.2f (%.2f)", r.PHTISPIB4, r.Paper.PHTISPIB4),
			fmt.Sprintf("%.2f (%.2f)", r.BTBMisfetchISPI, r.Paper.BTBMisfetchISPI),
			fmt.Sprintf("%.2f (%.2f)", r.BTBMispredictISPI, r.Paper.BTBMispredictISPI))
		m8 = append(m8, r.Miss8K)
		m32 = append(m32, r.Miss32K)
		b1 = append(b1, r.PHTISPIB1)
		b4 = append(b4, r.PHTISPIB4)
		mf = append(mf, r.BTBMisfetchISPI)
		mp = append(mp, r.BTBMispredictISPI)
	}
	t.AddRowF(2, "Average", mean(m8), mean(m32), mean(b1), mean(b4), mean(mf), mean(mp))
	return t, nil
}

// Table4Row pairs a benchmark with its miss classification.
type Table4Row struct {
	Bench string
	classify.Categories
}

// Table4Data classifies misses for every selected benchmark on the baseline
// machine (8K, 5-cycle penalty, depth 4, no prefetch).
func Table4Data(opt Options) ([]Table4Row, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	return benchRows(opt, benches, func(b *synth.Bench) (Table4Row, error) {
		cfg := baseConfig(core.Oracle)
		cfg.MaxInsts = opt.Insts
		cat, err := classify.Run(cfg, b.Image(),
			func() trace.Reader { return b.NewReader(defaultStreamSeed, opt.Insts+opt.Insts/4) },
			func() bpred.Predictor { return bpred.NewDefaultDecoupled() })
		if err != nil {
			return Table4Row{}, fmt.Errorf("%s: %w", b.Profile().Name, err)
		}
		return Table4Row{Bench: b.Profile().Name, Categories: cat}, nil
	})
}

// Table4 reproduces the miss-ratio categorization table.
func Table4(opt Options) (*texttable.Table, error) {
	rows, err := Table4Data(opt)
	if err != nil {
		return nil, err
	}
	t := texttable.New("Table 4: categorization of miss ratios (BM=both miss, SPo=spec pollute, SPr=spec prefetch, WP=wrong path, TR=traffic ratio)",
		"Program", "BM", "SPo", "SPr", "WP", "TR")
	var bm, spo, spr, wp, tr []float64
	for _, r := range rows {
		t.AddRowF(2, r.Bench, r.BothMiss, r.SpecPollute, r.SpecPrefetch, r.WrongPath, r.TrafficRatio)
		bm = append(bm, r.BothMiss)
		spo = append(spo, r.SpecPollute)
		spr = append(spr, r.SpecPrefetch)
		wp = append(wp, r.WrongPath)
		tr = append(tr, r.TrafficRatio)
	}
	t.AddRowF(2, "Average", mean(bm), mean(spo), mean(spr), mean(wp), mean(tr))
	return t, nil
}

// Table5Row holds one benchmark's ISPI per policy per speculation depth.
type Table5Row struct {
	Bench string
	// ISPI[depth][policy] is the total penalty ISPI.
	ISPI map[int]map[core.Policy]float64
}

// Table5Depths are the speculation depths the paper sweeps.
var Table5Depths = []int{1, 2, 4}

// Table5Data sweeps speculation depth on the baseline 8K/5-cycle machine:
// one flat work-list of bench x depth x policy cells.
func Table5Data(opt Options) ([]Table5Row, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	pols := core.Policies()
	var cells []runCell
	for _, b := range benches {
		for _, depth := range Table5Depths {
			for _, pol := range pols {
				cfg := baseConfig(pol)
				cfg.MaxUnresolved = depth
				cells = append(cells, newCell(b, cfg))
			}
		}
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, len(benches))
	i := 0
	for bi, b := range benches {
		row := Table5Row{Bench: b.Profile().Name, ISPI: map[int]map[core.Policy]float64{}}
		for _, depth := range Table5Depths {
			row.ISPI[depth] = map[core.Policy]float64{}
			for _, pol := range pols {
				row.ISPI[depth][pol] = results[i].TotalISPI()
				i++
			}
		}
		rows[bi] = row
	}
	return rows, nil
}

// Table5 reproduces the speculation-depth table (ISPI for 1/2/4 unresolved
// branches, 8K cache, 5-cycle miss penalty).
func Table5(opt Options) (*texttable.Table, error) {
	rows, err := Table5Data(opt)
	if err != nil {
		return nil, err
	}
	headers := []string{"Program"}
	for _, d := range Table5Depths {
		for _, p := range core.Policies() {
			headers = append(headers, fmt.Sprintf("B%d %s", d, shortPolicy(p)))
		}
	}
	t := texttable.New("Table 5: effect of speculation depth (total penalty ISPI; 8K direct mapped, 5-cycle miss penalty)",
		headers...)
	sums := make([]float64, len(headers)-1)
	for _, r := range rows {
		cells := []any{r.Bench}
		i := 0
		for _, d := range Table5Depths {
			for _, p := range core.Policies() {
				v := r.ISPI[d][p]
				cells = append(cells, v)
				sums[i] += v
				i++
			}
		}
		t.AddRowF(2, cells...)
	}
	avg := []any{"Average"}
	for _, s := range sums {
		avg = append(avg, s/float64(len(rows)))
	}
	t.AddRowF(2, avg...)
	return t, nil
}

// Table6Row holds one benchmark's 32K-cache ISPI per policy.
type Table6Row struct {
	Bench string
	ISPI  map[core.Policy]float64
}

// Table6Data measures the policies on the 32K cache at depth 4: one flat
// work-list of bench x policy cells.
func Table6Data(opt Options) ([]Table6Row, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	pols := core.Policies()
	var cells []runCell
	for _, b := range benches {
		for _, pol := range pols {
			cfg := baseConfig(pol)
			cfg.ICache = cacheConfig(32 * 1024)
			cells = append(cells, newCell(b, cfg))
		}
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Table6Row, len(benches))
	for bi, b := range benches {
		row := Table6Row{Bench: b.Profile().Name, ISPI: map[core.Policy]float64{}}
		for pi, pol := range pols {
			row.ISPI[pol] = results[bi*len(pols)+pi].TotalISPI()
		}
		rows[bi] = row
	}
	return rows, nil
}

// Table6 reproduces the cache-size table (32K direct mapped, 5-cycle miss
// penalty, depth 4).
func Table6(opt Options) (*texttable.Table, error) {
	rows, err := Table6Data(opt)
	if err != nil {
		return nil, err
	}
	headers := []string{"Program"}
	for _, p := range core.Policies() {
		headers = append(headers, shortPolicy(p))
	}
	t := texttable.New("Table 6: effect of cache size (total penalty ISPI; 32K direct mapped, 5-cycle miss penalty)", headers...)
	sums := make([]float64, len(core.Policies()))
	for _, r := range rows {
		cells := []any{r.Bench}
		for i, p := range core.Policies() {
			cells = append(cells, r.ISPI[p])
			sums[i] += r.ISPI[p]
		}
		t.AddRowF(2, cells...)
	}
	avg := []any{"Average"}
	for _, s := range sums {
		avg = append(avg, s/float64(len(rows)))
	}
	t.AddRowF(2, avg...)
	return t, nil
}

// Table7Row holds one benchmark's prefetch memory-traffic ratios.
type Table7Row struct {
	Bench string
	// Ratio[policy] is (line fetches with prefetching) / (Oracle line
	// fetches without prefetching).
	Ratio map[core.Policy]float64
}

// Table7Policies are the policies the paper reports traffic for.
var Table7Policies = []core.Policy{core.Oracle, core.Resume, core.Pessimistic}

// Table7Data measures prefetch traffic ratios on the baseline machine. The
// work-list interleaves each benchmark's unprefetched Oracle baseline with
// its prefetching runs (stride 1+len(Table7Policies)).
func Table7Data(opt Options) ([]Table7Row, error) {
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	stride := 1 + len(Table7Policies)
	var cells []runCell
	for _, b := range benches {
		cells = append(cells, newCell(b, baseConfig(core.Oracle)))
		for _, pol := range Table7Policies {
			cfg := baseConfig(pol)
			cfg.NextLinePrefetch = true
			cells = append(cells, newCell(b, cfg))
		}
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Table7Row, len(benches))
	for bi, b := range benches {
		denom := float64(results[bi*stride].Traffic.Total())
		row := Table7Row{Bench: b.Profile().Name, Ratio: map[core.Policy]float64{}}
		for pi, pol := range Table7Policies {
			if denom > 0 {
				row.Ratio[pol] = float64(results[bi*stride+1+pi].Traffic.Total()) / denom
			}
		}
		rows[bi] = row
	}
	return rows, nil
}

// Table7 reproduces the prefetch memory-traffic table: line fetches with
// next-line prefetching relative to Oracle without prefetching.
func Table7(opt Options) (*texttable.Table, error) {
	rows, err := Table7Data(opt)
	if err != nil {
		return nil, err
	}
	headers := []string{"Program"}
	for _, p := range Table7Policies {
		headers = append(headers, shortPolicy(p))
	}
	t := texttable.New("Table 7: memory traffic with next-line prefetching, relative to Oracle without prefetching", headers...)
	sums := make([]float64, len(Table7Policies))
	for _, r := range rows {
		cells := []any{r.Bench}
		for i, p := range Table7Policies {
			cells = append(cells, r.Ratio[p])
			sums[i] += r.Ratio[p]
		}
		t.AddRowF(2, cells...)
	}
	avg := []any{"Average"}
	for _, s := range sums {
		avg = append(avg, s/float64(len(rows)))
	}
	t.AddRowF(2, avg...)
	return t, nil
}

// shortPolicy abbreviates policy names like the paper's column heads.
func shortPolicy(p core.Policy) string {
	switch p {
	case core.Oracle:
		return "Oracle"
	case core.Optimistic:
		return "Opt"
	case core.Resume:
		return "Res"
	case core.Pessimistic:
		return "Pess"
	case core.Decode:
		return "Dec"
	case core.Adaptive:
		return "Adpt"
	}
	return p.String()
}
