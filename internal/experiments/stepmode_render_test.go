package experiments

import (
	"testing"

	"specfetch/internal/core"
)

// TestStepModeRenderIdentity is the end-to-end arm of the step-mode
// differential suite: it renders Table 6 and Figure 1 through the whole
// experiment pipeline — trace memoization, arenas, worker pool, builders,
// text renderers — in both step modes, with and without the audit probe
// attached, and requires byte-identical output. The core suite proves the
// engines agree cell by cell; this proves nothing between the engine and
// the printed paper artifacts depends on which core ran.
func TestStepModeRenderIdentity(t *testing.T) {
	t.Parallel()
	base := Options{Insts: 20_000, Workers: 1}
	if testing.Short() {
		base.Benchmarks = []string{"gcc", "groff"}
	}

	render := func(mode core.StepMode, audit int) string {
		t.Helper()
		opt := base
		opt.StepMode = mode
		opt.AuditSample = audit
		tab, err := Table6(opt)
		if err != nil {
			t.Fatalf("Table6(mode %v, audit %d): %v", mode, audit, err)
		}
		fig, err := Figure1(opt)
		if err != nil {
			t.Fatalf("Figure1(mode %v, audit %d): %v", mode, audit, err)
		}
		return tab.String() + "\n" + fig.String()
	}

	want := render(core.StepReference, 0)
	for _, tc := range []struct {
		name  string
		mode  core.StepMode
		audit int
	}{
		{"skipahead", core.StepSkipAhead, 0},
		{"skipahead-audited", core.StepSkipAhead, 3},
		{"reference-audited", core.StepReference, 3},
	} {
		if got := render(tc.mode, tc.audit); got != want {
			t.Errorf("%s: rendered output differs from reference\n--- reference ---\n%s\n--- %s ---\n%s",
				tc.name, want, tc.name, got)
		}
	}
}
