package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"specfetch/internal/core"
	"specfetch/internal/distsweep"
	"specfetch/internal/obs"
)

func win(idx int, start, end, lost int64) obs.WindowRecord {
	r := obs.WindowRecord{Index: idx, StartInsts: start, EndInsts: end}
	r.Lost[0] = lost
	return r
}

func TestOracleSelect(t *testing.T) {
	pols := core.Policies()
	series := map[core.Policy][]obs.WindowRecord{}
	// Three windows; winners by construction: Optimistic, Pessimistic, then
	// a three-way tie at 5 that must resolve to the earliest policy (Oracle).
	lost := map[core.Policy][3]int64{
		core.Oracle:      {9, 9, 5},
		core.Optimistic:  {3, 9, 5},
		core.Resume:      {9, 9, 9},
		core.Pessimistic: {9, 2, 5},
		core.Decode:      {9, 9, 9},
	}
	for _, pol := range pols {
		for i := 0; i < 3; i++ {
			series[pol] = append(series[pol], win(i, int64(i)*100, int64(i+1)*100, lost[pol][i]))
		}
	}
	winners, err := OracleSelect(series, pols)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Policy{core.Optimistic, core.Pessimistic, core.Oracle}
	if !reflect.DeepEqual(winners, want) {
		t.Errorf("winners = %v, want %v", winners, want)
	}

	// Misaligned boundaries are an error, not a silent argmin over
	// different instructions.
	bad := map[core.Policy][]obs.WindowRecord{}
	for _, pol := range pols {
		bad[pol] = append([]obs.WindowRecord(nil), series[pol]...)
	}
	bad[core.Decode][1].EndInsts += 7
	if _, err := OracleSelect(bad, pols); err == nil {
		t.Error("misaligned window boundaries not rejected")
	}
	short := map[core.Policy][]obs.WindowRecord{}
	for _, pol := range pols {
		short[pol] = series[pol]
	}
	short[core.Resume] = series[core.Resume][:2]
	if _, err := OracleSelect(short, pols); err == nil {
		t.Error("length-mismatched series not rejected")
	}
}

// oracleOpt is the study configuration every identity arm below shares.
func oracleOpt() Options {
	return Options{Insts: 60_000, Benchmarks: []string{"gcc", "groff"}}
}

const oracleTestInterval = 5_000

// renderOracle runs the study and flattens every rendered artifact plus the
// JSONL wire form into one byte string for identity comparison.
func renderOracle(t *testing.T, opt Options) string {
	t.Helper()
	d, err := OracleSelectorData(opt, oracleTestInterval, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := d.CrossoverTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(d.WinnerMap())
	if err := d.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestOracleBytesIdenticalAcrossWorkers: the study renders the same bytes
// serially, on a 4-worker pool, and dispatched to a spawned 2-worker fleet.
func TestOracleBytesIdenticalAcrossWorkers(t *testing.T) {
	serial := oracleOpt()
	serial.Workers = 1
	want := renderOracle(t, serial)

	pooled := oracleOpt()
	pooled.Workers = 4
	if got := renderOracle(t, pooled); got != want {
		t.Error("4-worker pool renders the oracle study differently from serial")
	}

	remote := oracleOpt()
	remote.Remote = startWorkers(t, 2)
	remote.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
		Workers:   remote.Remote,
		BatchSize: 4,
	})
	if got := renderOracle(t, remote); got != want {
		t.Error("remote fleet renders the oracle study differently from serial")
	}
}

// TestOracleJSONLRoundTrip: the JSONL wire form rebuilds the same rows,
// winners, and rendered report.
func TestOracleJSONLRoundTrip(t *testing.T) {
	opt := oracleOpt()
	opt.Workers = 1
	d, err := OracleSelectorData(opt, oracleTestInterval, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := d.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOracleJSONL(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Rows, d.Rows) {
		t.Error("JSONL round trip changed the rows")
	}
	if back.Interval != d.Interval || !reflect.DeepEqual(back.Penalties, d.Penalties) {
		t.Errorf("round trip meta: interval %d penalties %v, want %d %v",
			back.Interval, back.Penalties, d.Interval, d.Penalties)
	}
	if back.CrossoverTable().String() != d.CrossoverTable().String() ||
		back.WinnerMap() != d.WinnerMap() {
		t.Error("JSONL round trip changed the rendered report")
	}
	if _, err := ReadOracleJSONL(strings.NewReader("")); err == nil {
		t.Error("empty JSONL accepted")
	}
	if _, err := ReadOracleJSONL(strings.NewReader(`{"v":99}`)); err == nil {
		t.Error("future schema version accepted")
	}
}

// TestOracleLayerDisabledNeutral: a plain sweep's results are bit-identical
// with the interval layer absent and present-but-disabled, and a
// window-capturing sweep's Results match a plain sweep's — capture is
// observe-only.
func TestOracleLayerDisabledNeutral(t *testing.T) {
	opt := oracleOpt()
	opt.Workers = 1
	benches, err := buildAll(opt)
	if err != nil {
		t.Fatal(err)
	}
	var cells []runCell
	for _, b := range benches {
		for _, pol := range core.Policies() {
			cells = append(cells, newCell(b, baseConfig(pol)))
		}
	}
	plain, err := runCells(opt, cells)
	if err != nil {
		t.Fatal(err)
	}

	sampled := opt
	sampled.SampleInterval = oracleTestInterval
	capturing := sampled
	capturing.CaptureWindows = true
	for name, o := range map[string]Options{"sampled": sampled, "capturing": capturing} {
		full, err := runCellsFull(o, cells)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cells {
			if !reflect.DeepEqual(full[i].res, plain[i]) {
				t.Fatalf("%s run changed cell %d's Result", name, i)
			}
		}
		if name == "capturing" {
			for i := range cells {
				if len(full[i].windows) == 0 {
					t.Fatalf("capturing run returned no windows for cell %d", i)
				}
			}
		} else {
			for i := range cells {
				if full[i].windows != nil {
					t.Fatalf("non-capturing run returned windows for cell %d", i)
				}
			}
		}
	}

	// CaptureWindows without an interval is a loud error, not a silent
	// no-window sweep.
	bad := opt
	bad.CaptureWindows = true
	if _, err := runCellsFull(bad, cells[:1]); err == nil {
		t.Error("CaptureWindows without SampleInterval accepted")
	}
}

// TestOracleStepModeIdentity: the full study renders identical bytes under
// the reference stepper and the skip-ahead core — the experiments-level
// face of the core series-identity suite.
func TestOracleStepModeIdentity(t *testing.T) {
	fast := oracleOpt()
	fast.Workers = 1
	fast.StepMode = core.StepSkipAhead
	ref := fast
	ref.StepMode = core.StepReference
	if renderOracle(t, fast) != renderOracle(t, ref) {
		t.Error("oracle study renders differently across step modes")
	}
}
