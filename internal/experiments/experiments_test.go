package experiments

import (
	"strings"
	"testing"

	"specfetch/internal/core"
	"specfetch/internal/metrics"
)

// quick gives every experiment a fast test configuration.
func quick() Options { return QuickOptions() }

func TestSelectedValidation(t *testing.T) {
	if _, err := selected(Options{Benchmarks: []string{"nosuch"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	profs, err := selected(Options{Benchmarks: []string{"groff", "gcc"}})
	if err != nil {
		t.Fatal(err)
	}
	// Paper order preserved regardless of request order.
	if len(profs) != 2 || profs[0].Name != "gcc" || profs[1].Name != "groff" {
		t.Errorf("selection = %v", profs)
	}
	all, err := selected(Options{})
	if err != nil || len(all) != 13 {
		t.Fatalf("all = %d, %v", len(all), err)
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"doduc", "gcc", "groff", "Fortran", "C++"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	rows, err := Table3Data(quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Miss8K < r.Miss32K {
			t.Errorf("%s: 8K miss %.2f below 32K miss %.2f", r.Name, r.Miss8K, r.Miss32K)
		}
		if r.Miss8K <= 0 {
			t.Errorf("%s: no 8K misses", r.Name)
		}
	}
	// Fortran predicts far better than C/C++ (paper's core Table 3 shape).
	if byName["doduc"].PHTISPIB4 >= byName["gcc"].PHTISPIB4 {
		t.Errorf("doduc PHT ISPI %.2f not below gcc %.2f",
			byName["doduc"].PHTISPIB4, byName["gcc"].PHTISPIB4)
	}
	if tab, err := Table3(quick()); err != nil || !strings.Contains(tab.String(), "Average") {
		t.Errorf("Table3 render: %v", err)
	}
}

func TestTable4Shapes(t *testing.T) {
	rows, err := Table4Data(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TrafficRatio <= 1.0 {
			t.Errorf("%s: traffic ratio %.2f not above 1", r.Bench, r.TrafficRatio)
		}
		if r.BothMiss <= 0 {
			t.Errorf("%s: no common misses", r.Bench)
		}
		// Prefetch effect dominates pollution for the C/C++ stand-ins.
		if r.Bench != "doduc" && r.SpecPrefetch <= r.SpecPollute {
			t.Errorf("%s: SPr %.2f not above SPo %.2f", r.Bench, r.SpecPrefetch, r.SpecPollute)
		}
	}
	if tab, err := Table4(quick()); err != nil || !strings.Contains(tab.String(), "TR") {
		t.Errorf("Table4 render: %v", err)
	}
}

func TestTable5Shapes(t *testing.T) {
	rows, err := Table5Data(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Deeper speculation reduces ISPI for every policy (paper §5.2.2).
		for _, pol := range core.Policies() {
			if r.ISPI[1][pol] <= r.ISPI[4][pol] {
				t.Errorf("%s/%s: depth-1 ISPI %.3f not above depth-4 %.3f",
					r.Bench, pol, r.ISPI[1][pol], r.ISPI[4][pol])
			}
		}
		// Baseline policy ordering at depth 4: Resume <= Optimistic,
		// Optimistic < Pessimistic.
		d4 := r.ISPI[4]
		if d4[core.Resume] > d4[core.Optimistic] {
			t.Errorf("%s: Resume %.3f above Optimistic %.3f", r.Bench,
				d4[core.Resume], d4[core.Optimistic])
		}
		if d4[core.Optimistic] >= d4[core.Pessimistic] {
			t.Errorf("%s: Optimistic %.3f not below Pessimistic %.3f at small latency",
				r.Bench, d4[core.Optimistic], d4[core.Pessimistic])
		}
	}
	if tab, err := Table5(quick()); err != nil || !strings.Contains(tab.String(), "B4") {
		t.Errorf("Table5 render: %v", err)
	}
}

func TestTable6Shapes(t *testing.T) {
	rows6, err := Table6Data(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows5, err := Table5Data(quick())
	if err != nil {
		t.Fatal(err)
	}
	small := map[string]map[core.Policy]float64{}
	for _, r := range rows5 {
		small[r.Bench] = r.ISPI[4]
	}
	for _, r := range rows6 {
		// A 32K cache cannot be slower than 8K, and the policy spread
		// shrinks (paper §5.2.3).
		for _, pol := range core.Policies() {
			if r.ISPI[pol] > small[r.Bench][pol] {
				t.Errorf("%s/%s: 32K ISPI %.3f above 8K %.3f",
					r.Bench, pol, r.ISPI[pol], small[r.Bench][pol])
			}
		}
		spread32 := r.ISPI[core.Pessimistic] - r.ISPI[core.Resume]
		spread8 := small[r.Bench][core.Pessimistic] - small[r.Bench][core.Resume]
		if spread32 > spread8 {
			t.Errorf("%s: policy spread grew with cache size (%.3f vs %.3f)",
				r.Bench, spread32, spread8)
		}
	}
	if tab, err := Table6(quick()); err != nil || !strings.Contains(tab.String(), "Oracle") {
		t.Errorf("Table6 render: %v", err)
	}
}

func TestTable7Shapes(t *testing.T) {
	rows, err := Table7Data(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Prefetching always adds traffic; Resume adds the most (wrong-path
		// fills plus prefetches).
		for _, pol := range Table7Policies {
			if r.Ratio[pol] <= 1.0 {
				t.Errorf("%s/%s: traffic ratio %.2f not above 1", r.Bench, pol, r.Ratio[pol])
			}
		}
		if r.Ratio[core.Resume] < r.Ratio[core.Oracle] {
			t.Errorf("%s: Resume ratio %.2f below Oracle %.2f",
				r.Bench, r.Ratio[core.Resume], r.Ratio[core.Oracle])
		}
	}
	if tab, err := Table7(quick()); err != nil || !strings.Contains(tab.String(), "Res") {
		t.Errorf("Table7 render: %v", err)
	}
}

func TestFigures(t *testing.T) {
	opt := quick()
	opt.Benchmarks = []string{"gcc"}

	bars, err := FigureData(opt, 5, core.Policies(), []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != len(core.Policies()) {
		t.Fatalf("bars = %d", len(bars))
	}
	for _, b := range bars {
		sum := 0.0
		for _, c := range metrics.Components() {
			sum += b.Components[c]
		}
		if diff := sum - b.Total; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s/%s: components sum %.6f != total %.6f", b.Bench, b.Policy, sum, b.Total)
		}
	}

	for i, fn := range []func(Options) (interface{ String() string }, error){
		func(o Options) (interface{ String() string }, error) { return Figure1(o) },
		func(o Options) (interface{ String() string }, error) { return Figure2(o) },
		func(o Options) (interface{ String() string }, error) { return Figure3(o) },
		func(o Options) (interface{ String() string }, error) { return Figure4(o) },
	} {
		fig, err := fn(opt)
		if err != nil {
			t.Fatalf("figure %d: %v", i+1, err)
		}
		if !strings.Contains(fig.String(), "gcc") {
			t.Errorf("figure %d missing benchmark", i+1)
		}
	}
}

// TestLongLatencyShape: at a 20-cycle penalty the conservative policies
// overtake Optimistic (the paper's §5.2.1 crossover).
func TestLongLatencyShape(t *testing.T) {
	opt := Options{Insts: 400_000, Benchmarks: []string{"groff"}}
	bars, err := FigureData(opt, 20, core.Policies(), []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	ispi := map[core.Policy]float64{}
	for _, b := range bars {
		ispi[b.Policy] = b.Total
	}
	if ispi[core.Pessimistic] >= ispi[core.Optimistic] {
		t.Errorf("at 20 cycles Pessimistic %.3f not below Optimistic %.3f",
			ispi[core.Pessimistic], ispi[core.Optimistic])
	}
}

func TestCharacterize(t *testing.T) {
	profs, _ := selected(Options{Benchmarks: []string{"li"}})
	b, err := buildAllFromProfile(profs[0])
	if err != nil {
		t.Fatal(err)
	}
	c, err := Characterize(b, Options{Insts: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "li" || c.BranchPct <= 0 || c.Miss8K <= 0 || c.StaticInsts <= 0 {
		t.Errorf("characterization: %+v", c)
	}
}

func TestSeedSensitivity(t *testing.T) {
	opt := Options{Insts: 100_000, Benchmarks: []string{"li"}}
	rows, err := SeedSensitivityData(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	for pol, st := range rows[0].Stats {
		if st.N != 3 || st.Mean <= 0 {
			t.Errorf("%s: stats %+v", pol, st)
		}
		if st.Min > st.Mean || st.Max < st.Mean {
			t.Errorf("%s: min/mean/max inconsistent: %+v", pol, st)
		}
		// Seed noise should be a small fraction of the mean on a 100k run.
		if st.StdDev > 0.35*st.Mean {
			t.Errorf("%s: seed noise %.3f too large vs mean %.3f", pol, st.StdDev, st.Mean)
		}
	}
	tab, err := SeedSensitivity(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "±") {
		t.Error("table missing ± column")
	}
	if _, err := SeedSensitivityData(opt, 1); err == nil {
		t.Error("accepted a single seed")
	}
}

func TestLatencySweepCrossover(t *testing.T) {
	opt := Options{Insts: 250_000, Benchmarks: []string{"groff"}}
	rows, err := LatencySweepData(opt, []int{3, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// At 3 cycles the aggressive policy wins; by 20-40 the conservative one
	// does, so a crossover must be recorded in (3, 40].
	first := r.Points[0]
	if first.ISPI[core.Optimistic] >= first.ISPI[core.Pessimistic] {
		t.Errorf("at 3 cycles Optimistic %.3f not below Pessimistic %.3f",
			first.ISPI[core.Optimistic], first.ISPI[core.Pessimistic])
	}
	if r.Crossover <= 3 {
		t.Errorf("crossover = %d, want in (3,40]", r.Crossover)
	}
	tab, err := LatencySweep(opt, []int{3, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "crossover") {
		t.Error("table missing crossover column")
	}
}

// spearman computes the Spearman rank correlation between two equal-length
// samples (no tie correction; our samples have no exact ties).
func spearman(a, b []float64) float64 {
	rank := func(xs []float64) []float64 {
		n := len(xs)
		r := make([]float64, n)
		for i := 0; i < n; i++ {
			cnt := 0.0
			for j := 0; j < n; j++ {
				if xs[j] < xs[i] {
					cnt++
				}
			}
			r[i] = cnt
		}
		return r
	}
	ra, rb := rank(a), rank(b)
	n := float64(len(a))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

// TestMissRateRankCorrelation turns EXPERIMENTS.md's claim into an
// assertion: the synthetic suite's 8K miss-rate ordering must track the
// paper's Table 3 ordering strongly.
func TestMissRateRankCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite characterization")
	}
	rows, err := Table3Data(Options{Insts: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	var ours, paper []float64
	for _, r := range rows {
		ours = append(ours, r.Miss8K)
		paper = append(paper, r.Paper.Miss8K)
	}
	if rho := spearman(ours, paper); rho < 0.75 {
		t.Errorf("8K miss-rate rank correlation %.3f below 0.75", rho)
	}
	// And the branch fractions correlate too.
	ours, paper = nil, nil
	for _, r := range rows {
		ours = append(ours, r.BranchPct)
		paper = append(paper, r.Paper.BranchPct)
	}
	if rho := spearman(ours, paper); rho < 0.85 {
		t.Errorf("branch%% rank correlation %.3f below 0.85", rho)
	}
}

func TestModernStudy(t *testing.T) {
	tab, err := ModernStudy(Options{Insts: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"web", "db", "search", "verdict"} {
		if !strings.Contains(out, want) {
			t.Errorf("modern study missing %q", want)
		}
	}
}

// TestTableRenderingDeterministic guards the map-iteration-order fixes in
// the table builders (Table5Data/Table6Data/LatencySweepData collect
// per-policy results from a map): building and rendering the same table
// twice must be byte-identical.
func TestTableRenderingDeterministic(t *testing.T) {
	opt := quick()
	opt.Benchmarks = []string{"gcc", "groff"}
	first, err := Table5(opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Table5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("Table 5 renders differently across identical builds")
	}
}
