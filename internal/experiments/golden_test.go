package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTable6Figure1GoldenPinned pins the rendered bytes of Table 6 and
// Figure 1 to a golden captured before the typed Cycles/Slots split, proving
// the unit refactor (and any later change) is behavior-neutral down to the
// byte. The differential tests in shard_test.go prove worker-count
// invariance within one build; this one proves invariance across builds.
// Regenerate with -update only for a change that is *meant* to alter the
// paper outputs.
func TestTable6Figure1GoldenPinned(t *testing.T) {
	opt := Options{Insts: 50_000, Benchmarks: []string{"gcc", "groff"}, Workers: 1}
	tab, err := Table6(opt)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	got := tab.String() + "\n" + fig.String()

	golden := filepath.Join("testdata", "table6_figure1.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("Table 6 + Figure 1 bytes differ from the pinned pre-refactor golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}
