//go:build race

package experiments

// raceEnabled reports that this test binary was built with the race
// detector, letting instruction-heavy acceptance tests (whose coverage is
// numerical, not concurrent) skip the ~10x memory-instrumentation cost.
const raceEnabled = true
