package experiments

import (
	"fmt"

	"specfetch/internal/adaptive"
	"specfetch/internal/core"
	"specfetch/internal/texttable"
)

// The adaptive headline study: the online meta-policy against the bounds.
// The oracle selector (oracle.go) is the offline upper bound — switch to the
// per-window argmin with perfect hindsight — and the best static policy is
// the floor any adaptive scheme must beat to earn its hardware. This study
// runs a real chooser strategy over the same seed-locked streams as the
// oracle study, at the same window width, and reports where it lands between
// the two: the headroom-capture column is the fraction of the oracle's gain
// over the best static policy that the online chooser actually realized.

// AdaptiveRow is one benchmark x miss-penalty cell of the adaptive run.
type AdaptiveRow struct {
	Bench   string
	Penalty int
	// ISPI is the adaptive run's whole-run issue slots lost per instruction.
	ISPI float64
	// Switches counts the chooser's active-policy changes over the run.
	Switches int64
}

// AdaptiveData is the full study: the adaptive rows plus the oracle study
// they are measured against, row-aligned (same benchmark x penalty order).
type AdaptiveData struct {
	Strategy string
	Seed     uint64
	Interval int64
	Oracle   *OracleData
	Rows     []AdaptiveRow
}

// AdaptiveStudyData runs the study: the full oracle-selector sweep (five
// static policies, windows captured) plus one adaptive run per benchmark x
// penalty under the named chooser strategy, all over the shared stream seed
// so every machine faces the identical dynamic instruction stream. Cells go
// through the standard executor and shard across the pool and the distsweep
// fleet; the chooser itself never leaves the worker that runs the cell (it
// is rebuilt there from the strategy name and seed), which is what keeps
// remote runs byte-identical to local ones.
func AdaptiveStudyData(opt Options, strategy string, seed uint64, interval int64, penalties []int) (*AdaptiveData, error) {
	if interval <= 0 {
		interval = DefaultOracleInterval
	}
	if _, err := adaptive.New(strategy, seed); err != nil {
		return nil, err // fail before burning a sweep on an unknown name
	}
	oracle, err := OracleSelectorData(opt, interval, penalties)
	if err != nil {
		return nil, err
	}
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	var cells []runCell
	for _, b := range benches {
		for _, pen := range oracle.Penalties {
			cfg := baseConfig(core.Adaptive)
			cfg.MissPenalty = pen
			cfg.FlushInterval = opt.FlushInterval
			cfg.AdaptStrategy = strategy
			cfg.AdaptInterval = interval
			cfg.AdaptSeed = seed
			cells = append(cells, newCell(b, cfg))
		}
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	d := &AdaptiveData{Strategy: strategy, Seed: seed, Interval: interval, Oracle: oracle}
	for i, res := range results {
		d.Rows = append(d.Rows, AdaptiveRow{
			Bench:    cells[i].bench.Profile().Name,
			Penalty:  cells[i].cfg.MissPenalty,
			ISPI:     res.TotalISPI(),
			Switches: res.PolicySwitches,
		})
	}
	if len(d.Rows) != len(oracle.Rows) {
		return nil, fmt.Errorf("experiments: adaptive rows (%d) misaligned with oracle rows (%d)",
			len(d.Rows), len(oracle.Rows))
	}
	for i := range d.Rows {
		if d.Rows[i].Bench != oracle.Rows[i].Bench || d.Rows[i].Penalty != oracle.Rows[i].Penalty {
			return nil, fmt.Errorf("experiments: adaptive row %d is %s@%d, oracle row is %s@%d",
				i, d.Rows[i].Bench, d.Rows[i].Penalty, oracle.Rows[i].Bench, oracle.Rows[i].Penalty)
		}
	}
	return d, nil
}

// Capture returns row i's oracle-headroom capture in percent: how much of
// the oracle selector's gain over the best static policy the online chooser
// realized. 100 means the chooser matched the oracle, 0 means it merely
// matched the best static policy, negative means it lost to the best static
// policy. The second return is false when the oracle found no headroom at
// all (capture is undefined there).
func (d *AdaptiveData) Capture(i int) (float64, bool) {
	or := d.Oracle.Rows[i]
	_, bestISPI := or.BestStatic()
	oracleISPI := or.OracleISPI()
	if bestISPI <= oracleISPI {
		return 0, false
	}
	return 100 * (bestISPI - d.Rows[i].ISPI) / (bestISPI - oracleISPI), true
}

// CrossoverTable renders the headline artifact: per benchmark and penalty,
// the best static policy and its ISPI, the online adaptive ISPI, the oracle
// bound, the headroom capture, and how often the chooser switched.
func (d *AdaptiveData) CrossoverTable() *texttable.Table {
	t := texttable.New(
		fmt.Sprintf("Adaptive (%s, window = %d insts) vs best static vs oracle selector: capture %% = share of oracle headroom realized online",
			d.Strategy, d.Interval),
		"Program", "Penalty", "Best static", "Static ISPI", "Adaptive ISPI", "Oracle ISPI", "Capture %", "Switches")
	for i, r := range d.Rows {
		or := d.Oracle.Rows[i]
		best, bestISPI := or.BestStatic()
		capture := "-"
		if c, ok := d.Capture(i); ok {
			capture = fmt.Sprintf("%.1f", c)
		}
		t.AddRowF(3, r.Bench, fmt.Sprintf("%dc", r.Penalty), shortPolicy(best),
			bestISPI, r.ISPI, or.OracleISPI(), capture, fmt.Sprintf("%d", r.Switches))
	}
	return t
}

// WinnerMap renders the oracle study's per-window winner letters — the
// phase picture the online chooser is trying to track.
func (d *AdaptiveData) WinnerMap() string { return d.Oracle.WinnerMap() }

// Wins lists the row indices where the online chooser strictly beat the
// best static policy — the cells where adaptation paid for itself.
func (d *AdaptiveData) Wins() []int {
	var wins []int
	for i, r := range d.Rows {
		if _, bestISPI := d.Oracle.Rows[i].BestStatic(); r.ISPI < bestISPI {
			wins = append(wins, i)
		}
	}
	return wins
}
