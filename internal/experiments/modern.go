package experiments

import (
	"fmt"

	"specfetch/internal/cache"
	"specfetch/internal/core"
	"specfetch/internal/isa"
	"specfetch/internal/synth"
	"specfetch/internal/texttable"
)

// ModernStudy asks whether the paper's 1995 conclusions survive
// datacenter-scale instruction footprints: it runs the five policies over
// the modern workload stand-ins (web/db/search, footprints ~10-20× SPEC92's)
// across cache sizes, at both the low and high miss penalty, as one flat
// work-list of bench x cache x penalty x policy cells.
func ModernStudy(opt Options) (*texttable.Table, error) {
	profiles := synth.ModernProfiles()
	benches, err := mapCells(opt, len(profiles), func(_, i int) (*synth.Bench, error) {
		return synth.Build(profiles[i])
	})
	if err != nil {
		return nil, err
	}

	cacheSizes := []int{8 * 1024, 32 * 1024, 64 * 1024}
	penalties := []int{5, 20}
	pols := core.Policies()

	var cells []runCell
	for _, b := range benches {
		for _, cs := range cacheSizes {
			for _, pen := range penalties {
				for _, pol := range pols {
					cfg := baseConfig(pol)
					cfg.ICache = cache.Config{SizeBytes: cs, LineBytes: isa.DefaultLineBytes, Assoc: 1}
					cfg.MissPenalty = pen
					cells = append(cells, newCell(b, cfg))
				}
			}
		}
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}

	t := texttable.New("Modern-footprint study: does the 1995 verdict hold at datacenter scale? (total ISPI)",
		"Program", "KB", "cache", "penalty", "Oracle", "Opt", "Res", "Pess", "Dec", "miss%", "verdict")
	i := 0
	for _, b := range benches {
		for _, cs := range cacheSizes {
			for _, pen := range penalties {
				byPol := map[core.Policy]core.Result{}
				for _, pol := range pols {
					byPol[pol] = results[i]
					i++
				}
				verdict := "aggressive"
				if byPol[core.Pessimistic].TotalISPI() < byPol[core.Optimistic].TotalISPI() {
					verdict = "conservative"
				}
				t.AddRowF(2,
					b.Profile().Name,
					b.Image().SizeBytes()/1024,
					fmt.Sprintf("%dK", cs/1024),
					fmt.Sprintf("%dc", pen),
					byPol[core.Oracle].TotalISPI(),
					byPol[core.Optimistic].TotalISPI(),
					byPol[core.Resume].TotalISPI(),
					byPol[core.Pessimistic].TotalISPI(),
					byPol[core.Decode].TotalISPI(),
					byPol[core.Oracle].MissRatioPct(),
					verdict)
			}
		}
	}
	return t, nil
}
