package experiments

import (
	"fmt"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/core"
	"specfetch/internal/isa"
	"specfetch/internal/synth"
	"specfetch/internal/texttable"
	"specfetch/internal/trace"
)

// ModernStudy asks whether the paper's 1995 conclusions survive
// datacenter-scale instruction footprints: it runs the five policies over
// the modern workload stand-ins (web/db/search, footprints ~10-20× SPEC92's)
// across cache sizes, at both the low and high miss penalty.
func ModernStudy(opt Options) (*texttable.Table, error) {
	profiles := synth.ModernProfiles()
	benches := make([]*synth.Bench, len(profiles))
	if err := parallelFor(len(profiles), func(i int) error {
		b, err := synth.Build(profiles[i])
		if err != nil {
			return err
		}
		benches[i] = b
		return nil
	}); err != nil {
		return nil, err
	}

	cacheSizes := []int{8 * 1024, 32 * 1024, 64 * 1024}
	penalties := []int{5, 20}

	t := texttable.New("Modern-footprint study: does the 1995 verdict hold at datacenter scale? (total ISPI)",
		"Program", "KB", "cache", "penalty", "Oracle", "Opt", "Res", "Pess", "Dec", "miss%", "verdict")
	for _, b := range benches {
		for _, cs := range cacheSizes {
			for _, pen := range penalties {
				cfg := baseConfig(core.Oracle)
				cfg.ICache = cache.Config{SizeBytes: cs, LineBytes: isa.DefaultLineBytes, Assoc: 1}
				cfg.MissPenalty = pen
				cfg.MaxInsts = opt.Insts
				results := make([]core.Result, len(core.Policies()))
				pols := core.Policies()
				if err := parallelFor(len(pols), func(i int) error {
					c := cfg
					c.Policy = pols[i]
					rd := trace.NewLimitReader(b.NewWalker(defaultStreamSeed), opt.Insts+opt.Insts/4)
					res, err := core.Run(c, b.Image(), rd, bpred.NewDefaultDecoupled())
					if err != nil {
						return fmt.Errorf("%s: %w", b.Profile().Name, err)
					}
					opt.observe(b.Profile().Name, c.Policy, res)
					results[i] = res
					return nil
				}); err != nil {
					return nil, err
				}
				byPol := map[core.Policy]core.Result{}
				for i, p := range pols {
					byPol[p] = results[i]
				}
				verdict := "aggressive"
				if byPol[core.Pessimistic].TotalISPI() < byPol[core.Optimistic].TotalISPI() {
					verdict = "conservative"
				}
				t.AddRowF(2,
					b.Profile().Name,
					b.Image().SizeBytes()/1024,
					fmt.Sprintf("%dK", cs/1024),
					fmt.Sprintf("%dc", pen),
					byPol[core.Oracle].TotalISPI(),
					byPol[core.Optimistic].TotalISPI(),
					byPol[core.Resume].TotalISPI(),
					byPol[core.Pessimistic].TotalISPI(),
					byPol[core.Decode].TotalISPI(),
					byPol[core.Oracle].MissRatioPct(),
					verdict)
			}
		}
	}
	return t, nil
}
