package experiments

import (
	"specfetch/internal/core"
	"specfetch/internal/metrics"
	"specfetch/internal/synth"
	"specfetch/internal/texttable"
)

// FigureBenchmarks are the five representative programs the paper plots in
// Figures 1–4 (one Fortran, two C, two C++).
var FigureBenchmarks = []string{"doduc", "gcc", "li", "groff", "lic"}

// Breakdown is one bar of a figure: a policy's per-component ISPI.
type Breakdown struct {
	Bench      string
	Policy     core.Policy
	Prefetch   bool
	Components map[metrics.Component]float64
	Total      float64
}

// FigureData runs the figure benchmarks with the given miss penalty and
// policy/prefetch combinations, returning one Breakdown per bar.
func FigureData(opt Options, missPenalty int, policies []core.Policy, prefetch []bool) ([]Breakdown, error) {
	figOpt := opt
	if figOpt.Benchmarks == nil {
		figOpt.Benchmarks = FigureBenchmarks
	}
	benches, err := buildAll(figOpt)
	if err != nil {
		return nil, err
	}
	type job struct {
		bench *synth.Bench
		pol   core.Policy
		pref  bool
	}
	var jobs []job
	var cells []runCell
	for _, b := range benches {
		for _, pol := range policies {
			for _, pref := range prefetch {
				cfg := baseConfig(pol)
				cfg.MissPenalty = missPenalty
				cfg.NextLinePrefetch = pref
				jobs = append(jobs, job{bench: b, pol: pol, pref: pref})
				cells = append(cells, newCell(b, cfg))
			}
		}
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	bars := make([]Breakdown, len(jobs))
	for i, j := range jobs {
		res := results[i]
		bd := Breakdown{
			Bench:      j.bench.Profile().Name,
			Policy:     j.pol,
			Prefetch:   j.pref,
			Components: map[metrics.Component]float64{},
			Total:      res.TotalISPI(),
		}
		for _, c := range metrics.Components() {
			bd.Components[c] = res.ISPI(c)
		}
		bars[i] = bd
	}
	return bars, nil
}

// renderFigure converts breakdowns into the stacked-bar rendering.
func renderFigure(title string, bars []Breakdown) *texttable.StackedBars {
	segs := make([]string, 0, metrics.NumComponents)
	for _, c := range metrics.Components() {
		segs = append(segs, c.String())
	}
	fig := texttable.NewStackedBars(title, "ISPI", segs...)
	for _, b := range bars {
		label := shortPolicy(b.Policy)
		if b.Prefetch {
			label += "_Pref"
		}
		vals := make([]float64, 0, len(segs))
		for _, c := range metrics.Components() {
			vals = append(vals, b.Components[c])
		}
		fig.AddBar(b.Bench, label, vals...)
	}
	return fig
}

// Figure1 reproduces the baseline penalty breakdown: all five policies at
// 8K / 5-cycle penalty / depth 4.
func Figure1(opt Options) (*texttable.StackedBars, error) {
	bars, err := FigureData(opt, 5, core.Policies(), []bool{false})
	if err != nil {
		return nil, err
	}
	return renderFigure("Figure 1: penalty breakdown, base architecture (8K, 5-cycle miss penalty, depth 4)", bars), nil
}

// Figure2 reproduces the long-latency breakdown (20-cycle miss penalty).
func Figure2(opt Options) (*texttable.StackedBars, error) {
	bars, err := FigureData(opt, 20, core.Policies(), []bool{false})
	if err != nil {
		return nil, err
	}
	return renderFigure("Figure 2: penalty breakdown with long miss latency (8K, 20-cycle miss penalty, depth 4)", bars), nil
}

// Figure3Policies are the policies the prefetch figures show.
var Figure3Policies = []core.Policy{core.Oracle, core.Resume, core.Pessimistic}

// Figure3 reproduces the next-line prefetching comparison at the base
// 5-cycle penalty.
func Figure3(opt Options) (*texttable.StackedBars, error) {
	bars, err := FigureData(opt, 5, Figure3Policies, []bool{false, true})
	if err != nil {
		return nil, err
	}
	return renderFigure("Figure 3: effect of next-line prefetching (8K, 5-cycle miss penalty, depth 4)", bars), nil
}

// Figure4 reproduces the prefetching comparison at the long 20-cycle
// penalty, where prefetching can hurt.
func Figure4(opt Options) (*texttable.StackedBars, error) {
	bars, err := FigureData(opt, 20, Figure3Policies, []bool{false, true})
	if err != nil {
		return nil, err
	}
	return renderFigure("Figure 4: next-line prefetching with long miss latency (8K, 20-cycle miss penalty, depth 4)", bars), nil
}
