// Package experiments contains one runner per table and figure of the
// paper's evaluation section, plus the benchmark characterization used to
// calibrate the synthetic workloads.
package experiments

import (
	"fmt"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/core"
	"specfetch/internal/isa"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// cacheConfig builds the paper's direct-mapped cache of the given size.
func cacheConfig(sizeBytes int) cache.Config {
	return cache.Config{SizeBytes: sizeBytes, LineBytes: isa.DefaultLineBytes, Assoc: 1}
}

// baseConfig returns the paper's baseline machine with the given policy.
func baseConfig(pol core.Policy) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = pol
	return cfg
}

// runBench runs one simulation over a synthetic benchmark with a fresh
// predictor and the options' instruction budget, reporting the finished run
// to the options' progress/metrics sinks.
func runBench(b *synth.Bench, cfg core.Config, opt Options) (core.Result, error) {
	cfg.MaxInsts = opt.Insts
	rd := trace.NewLimitReader(b.NewWalker(defaultStreamSeed), opt.Insts+opt.Insts/4)
	res, err := core.Run(cfg, b.Image(), rd, bpred.NewDefaultDecoupled())
	if err == nil {
		opt.observe(b.Profile().Name, cfg.Policy, res)
	}
	return res, err
}

// defaultStreamSeed keeps all experiments on the same dynamic stream per
// benchmark, as the paper replays one trace per program.
const defaultStreamSeed = 0x5eed

// Characterization reports the Table 2/3 statistics of one (synthetic)
// benchmark, in the paper's units.
type Characterization struct {
	Name string
	Lang synth.Lang
	// BranchPct is the dynamic branch percentage (Table 2).
	BranchPct float64
	// CondPct is the dynamic conditional-branch percentage.
	CondPct float64
	// Miss8K / Miss32K are right-path miss percentages per instruction on
	// the paper's two cache sizes (Table 3).
	Miss8K, Miss32K float64
	// PHTISPIB1 / PHTISPIB4 are PHT mispredict ISPIs at depth 1 / 4.
	PHTISPIB1, PHTISPIB4 float64
	// BTBMisfetchISPI / BTBMispredictISPI at depth 4.
	BTBMisfetchISPI, BTBMispredictISPI float64
	// StaticInsts is the code footprint in instructions.
	StaticInsts int
}

// Characterize measures a benchmark over the options' instruction budget.
func Characterize(b *synth.Bench, opt Options) (Characterization, error) {
	c := Characterization{
		Name:        b.Profile().Name,
		Lang:        b.Profile().Lang,
		StaticInsts: b.Image().NumInsts(),
	}

	st, err := trace.Scan(trace.NewLimitReader(b.NewWalker(defaultStreamSeed), opt.Insts))
	if err != nil {
		return c, fmt.Errorf("scanning %s: %w", c.Name, err)
	}
	c.BranchPct = 100 * st.BranchFrac()
	if st.Insts > 0 {
		c.CondPct = 100 * float64(st.Conditionals) / float64(st.Insts)
	}

	cfg8 := baseConfig(core.Oracle)
	res8, err := runBench(b, cfg8, opt)
	if err != nil {
		return c, err
	}
	c.Miss8K = res8.MissRatioPct()
	c.PHTISPIB4 = res8.PHTMispredictISPI()
	c.BTBMisfetchISPI = res8.BTBMisfetchISPI()
	c.BTBMispredictISPI = res8.BTBMispredictISPI()

	cfg32 := baseConfig(core.Oracle)
	cfg32.ICache = cacheConfig(32 * 1024)
	res32, err := runBench(b, cfg32, opt)
	if err != nil {
		return c, err
	}
	c.Miss32K = res32.MissRatioPct()

	cfgB1 := baseConfig(core.Oracle)
	cfgB1.MaxUnresolved = 1
	resB1, err := runBench(b, cfgB1, opt)
	if err != nil {
		return c, err
	}
	c.PHTISPIB1 = resB1.PHTMispredictISPI()

	return c, nil
}
