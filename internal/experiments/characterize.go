// Package experiments contains one runner per table and figure of the
// paper's evaluation section, plus the benchmark characterization used to
// calibrate the synthetic workloads.
package experiments

import (
	"fmt"

	"specfetch/internal/cache"
	"specfetch/internal/core"
	"specfetch/internal/isa"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// cacheConfig builds the paper's direct-mapped cache of the given size.
func cacheConfig(sizeBytes int) cache.Config {
	return cache.Config{SizeBytes: sizeBytes, LineBytes: isa.DefaultLineBytes, Assoc: 1}
}

// baseConfig returns the paper's baseline machine with the given policy.
func baseConfig(pol core.Policy) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = pol
	return cfg
}

// runBench runs one simulation over a synthetic benchmark with a fresh
// predictor and the options' instruction budget, reporting the finished run
// to the options' progress/metrics sinks (and auditing it when
// Options.AuditSample asks for that).
func runBench(b *synth.Bench, cfg core.Config, opt Options) (core.Result, error) {
	return simulate(newCell(b, cfg), opt)
}

// defaultStreamSeed keeps all experiments on the same dynamic stream per
// benchmark, as the paper replays one trace per program.
const defaultStreamSeed = 0x5eed

// Characterization reports the Table 2/3 statistics of one (synthetic)
// benchmark, in the paper's units.
type Characterization struct {
	Name string
	Lang synth.Lang
	// BranchPct is the dynamic branch percentage (Table 2).
	BranchPct float64
	// CondPct is the dynamic conditional-branch percentage.
	CondPct float64
	// Miss8K / Miss32K are right-path miss percentages per instruction on
	// the paper's two cache sizes (Table 3).
	Miss8K, Miss32K float64
	// PHTISPIB1 / PHTISPIB4 are PHT mispredict ISPIs at depth 1 / 4.
	PHTISPIB1, PHTISPIB4 float64
	// BTBMisfetchISPI / BTBMispredictISPI at depth 4.
	BTBMisfetchISPI, BTBMispredictISPI float64
	// StaticInsts is the code footprint in instructions.
	StaticInsts int
}

// characterizeCells flattens the characterization's three simulations per
// benchmark (8K baseline, 32K cache, depth-1 speculation) into one work-list,
// bench-major so cell 3i..3i+2 belong to benches[i].
func characterizeCells(benches []*synth.Bench) []runCell {
	cells := make([]runCell, 0, 3*len(benches))
	for _, b := range benches {
		cfg32 := baseConfig(core.Oracle)
		cfg32.ICache = cacheConfig(32 * 1024)
		cfgB1 := baseConfig(core.Oracle)
		cfgB1.MaxUnresolved = 1
		cells = append(cells,
			newCell(b, baseConfig(core.Oracle)),
			newCell(b, cfg32),
			newCell(b, cfgB1))
	}
	return cells
}

// characterizeMany measures every benchmark over one flat work-list plus a
// per-bench trace scan, then reduces the results in bench order.
func characterizeMany(benches []*synth.Bench, opt Options) ([]Characterization, error) {
	results, err := runCells(opt, characterizeCells(benches))
	if err != nil {
		return nil, err
	}
	scans, err := benchRows(opt, benches, func(b *synth.Bench) (trace.Stats, error) {
		st, err := trace.Scan(trace.NewLimitReader(b.NewWalker(defaultStreamSeed), opt.Insts))
		if err != nil {
			return st, fmt.Errorf("scanning %s: %w", b.Profile().Name, err)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]Characterization, len(benches))
	for i, b := range benches {
		c := Characterization{
			Name:        b.Profile().Name,
			Lang:        b.Profile().Lang,
			StaticInsts: b.Image().NumInsts(),
		}
		st := scans[i]
		c.BranchPct = 100 * st.BranchFrac()
		if st.Insts > 0 {
			c.CondPct = 100 * float64(st.Conditionals) / float64(st.Insts)
		}
		res8, res32, resB1 := results[3*i], results[3*i+1], results[3*i+2]
		c.Miss8K = res8.MissRatioPct()
		c.PHTISPIB4 = res8.PHTMispredictISPI()
		c.BTBMisfetchISPI = res8.BTBMisfetchISPI()
		c.BTBMispredictISPI = res8.BTBMispredictISPI()
		c.Miss32K = res32.MissRatioPct()
		c.PHTISPIB1 = resB1.PHTMispredictISPI()
		out[i] = c
	}
	return out, nil
}

// Characterize measures a benchmark over the options' instruction budget.
func Characterize(b *synth.Bench, opt Options) (Characterization, error) {
	cs, err := characterizeMany([]*synth.Bench{b}, opt)
	if err != nil {
		return Characterization{}, err
	}
	return cs[0], nil
}
