package experiments

import (
	"fmt"

	"specfetch/internal/core"
	"specfetch/internal/texttable"
)

// LatencyPoint is one (miss penalty, per-policy ISPI) sample.
type LatencyPoint struct {
	Penalty int
	ISPI    map[core.Policy]float64
}

// LatencySweepRow holds one benchmark's sweep and its crossover.
type LatencySweepRow struct {
	Bench  string
	Points []LatencyPoint
	// Crossover is the smallest swept penalty at which Pessimistic beats
	// Optimistic; 0 means aggressive fetching won at every swept latency.
	Crossover int
}

// DefaultSweepPenalties spans the paper's low (5) and high (20) penalties.
var DefaultSweepPenalties = []int{3, 5, 8, 12, 16, 20, 28, 40}

// LatencySweepData sweeps the I-cache miss penalty for every policy and
// locates the aggressive-vs-conservative crossover the paper's summary is
// built around ("the policy of choice depends on the latency").
func LatencySweepData(opt Options, penalties []int) ([]LatencySweepRow, error) {
	if len(penalties) == 0 {
		penalties = DefaultSweepPenalties
	}
	benches, err := buildAll(opt)
	if err != nil {
		return nil, err
	}
	// One flat work-list of bench x penalty x policy cells.
	pols := core.Policies()
	var cells []runCell
	for _, b := range benches {
		for _, pen := range penalties {
			for _, pol := range pols {
				cfg := baseConfig(pol)
				cfg.MissPenalty = pen
				cells = append(cells, newCell(b, cfg))
			}
		}
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]LatencySweepRow, len(benches))
	i := 0
	for bi, b := range benches {
		row := LatencySweepRow{Bench: b.Profile().Name}
		for _, pen := range penalties {
			pt := LatencyPoint{Penalty: pen, ISPI: map[core.Policy]float64{}}
			for _, pol := range pols {
				pt.ISPI[pol] = results[i].TotalISPI()
				i++
			}
			row.Points = append(row.Points, pt)
			if row.Crossover == 0 && pt.ISPI[core.Pessimistic] < pt.ISPI[core.Optimistic] {
				row.Crossover = pen
			}
		}
		rows[bi] = row
	}
	return rows, nil
}

// LatencySweep renders the sweep with the crossover column.
func LatencySweep(opt Options, penalties []int) (*texttable.Table, error) {
	if len(penalties) == 0 {
		penalties = DefaultSweepPenalties
	}
	rows, err := LatencySweepData(opt, penalties)
	if err != nil {
		return nil, err
	}
	headers := []string{"Program"}
	for _, pen := range penalties {
		headers = append(headers, fmt.Sprintf("Opt@%d", pen), fmt.Sprintf("Pess@%d", pen))
	}
	headers = append(headers, "crossover")
	t := texttable.New("Latency sweep: Optimistic vs Pessimistic ISPI per miss penalty, and the crossover latency",
		headers...)
	for _, r := range rows {
		cells := []any{r.Bench}
		for _, pt := range r.Points {
			cells = append(cells, pt.ISPI[core.Optimistic], pt.ISPI[core.Pessimistic])
		}
		if r.Crossover > 0 {
			cells = append(cells, fmt.Sprintf("%dc", r.Crossover))
		} else {
			cells = append(cells, "none")
		}
		t.AddRowF(2, cells...)
	}
	return t, nil
}
