package experiments

import (
	"strings"
	"testing"
)

func TestAblationPrefetch(t *testing.T) {
	tab, err := AblationPrefetch(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"none", "next-line", "target", "combined", "stream-4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing scheme %q", want)
		}
	}
}

func TestAblationBTBCoupling(t *testing.T) {
	tab, err := AblationBTBCoupling(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Decoupled") {
		t.Error("missing decoupled column")
	}
}

func TestAblationAssociativity(t *testing.T) {
	tab, err := AblationAssociativity(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "4-way") {
		t.Error("missing 4-way column")
	}
}

func TestAblationFetchWidth(t *testing.T) {
	tab, err := AblationFetchWidth(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "8-wide") {
		t.Error("missing 8-wide column")
	}
}

func TestAblationPipelinedMemory(t *testing.T) {
	tab, err := AblationPipelinedMemory(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Resume+pipe") {
		t.Error("missing pipelined column")
	}
}

func TestAblationsRegistry(t *testing.T) {
	reg := Ablations()
	for _, name := range []string{"prefetch", "btb", "assoc", "width", "pipelined-mem"} {
		if reg[name] == nil {
			t.Errorf("ablation %q missing from registry", name)
		}
	}
}

func TestAblationRAS(t *testing.T) {
	tab, err := AblationRAS(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "RAS-8") {
		t.Error("missing RAS-8 column")
	}
}

func TestAblationVictimCache(t *testing.T) {
	tab, err := AblationVictimCache(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "16 lines") {
		t.Error("missing 16-line column")
	}
}

func TestAblationMSHR(t *testing.T) {
	tab, err := AblationMSHR(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "4 MSHR") {
		t.Error("missing MSHR column")
	}
}

func TestAblationCodeLayout(t *testing.T) {
	tab, err := AblationCodeLayout(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "reordered") {
		t.Error("missing reordered column")
	}
}

func TestAblationL2(t *testing.T) {
	tab, err := AblationL2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "L2 hit%") {
		t.Error("missing L2 hit column")
	}
}

func TestAblationContextSwitch(t *testing.T) {
	tab, err := AblationContextSwitch(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Res 20k") {
		t.Error("missing 20k column")
	}
}
