package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"specfetch/internal/core"
	"specfetch/internal/distsweep"
	"specfetch/internal/obs"
	"specfetch/internal/sweeplog"
	"specfetch/internal/synth"
)

// Options selects what and how much to simulate.
type Options struct {
	// Insts is the per-benchmark correct-path instruction budget.
	Insts int64
	// Benchmarks restricts the run to these profile names (nil = all 13).
	Benchmarks []string
	// Workers bounds the sweep executor's worker pool: 0 means GOMAXPROCS,
	// 1 runs every cell serially on the calling goroutine. Rendered tables
	// and figures are byte-identical at every worker count; see shard.go.
	Workers int
	// AuditSample, when positive, attaches a sampled obs.AuditProbe to every
	// simulation in the sweep (SampleEvery = AuditSample; 1 audits every
	// region). Stream violations panic with a cycle-stamped *obs.AuditError,
	// and each run's final accounting identities are verified.
	AuditSample int
	// Progress, if non-nil, receives a one-line message after each completed
	// simulation. Runs execute on worker goroutines, so it may be called
	// concurrently.
	Progress func(msg string)
	// Metrics, if non-nil, accumulates campaign counters
	// (specfetch_simulations_total, specfetch_simulated_insts_total) and,
	// when Spans is also set, the specfetch_cell_seconds latency histogram.
	Metrics *obs.Registry
	// Spans, if non-nil, records one host-side span per sweep work unit
	// (simulation cell or ablation row): wall time, pool worker, and heap
	// allocations. Tracing is observe-only — rendered sweep bytes are
	// byte-identical with it on or off (asserted by the differential
	// harness in shard_test.go).
	Spans *obs.SpanTracer
	// SweepLog, if non-nil, receives the structured scheduling decisions of
	// Remote dispatch (retries, backoffs, evictions, local fallbacks). Like
	// Spans, it is observe-only and never touches rendered bytes. It only
	// takes effect when this Options builds the coordinator (Dispatch nil);
	// an explicit Dispatch carries its own logger.
	SweepLog *sweeplog.Logger
	// Remote lists sweepworker base URLs ("http://host:8477"). When
	// non-empty, every serializable sweep cell is dispatched to these
	// workers in batches over the distsweep protocol instead of running on
	// the in-process pool; cells that carry in-process-only state (probes,
	// access callbacks), and any batch the fleet cannot complete, fall
	// back to the local executor. Reduction order is unchanged, so
	// rendered bytes are invariant in process count exactly as they are in
	// worker count.
	Remote []string
	// Dispatch, when non-nil, is the coordinator used for Remote dispatch,
	// letting one coordinator's retry/backoff/eviction state span many
	// builders. Nil with Remote set uses a process-wide coordinator shared
	// by every Options naming the same worker list.
	Dispatch *distsweep.Coordinator
	// SampleInterval, when positive, stamps Config.SampleInterval onto every
	// cell so attached samplers (and CaptureWindows) see fixed
	// instruction-count boundaries. Like AuditSample it is observe-only:
	// simulated results are bit-identical with it on or off.
	SampleInterval int64
	// FlushInterval, when positive, stamps Config.FlushInterval onto the
	// cells of the studies that honor it (the oracle selector and the
	// adaptive study): the I-cache is invalidated every FlushInterval
	// correct-path instructions, modeling periodic context switches. Unlike
	// SampleInterval this is NOT observe-only — it changes simulated
	// results — which is why it only applies to the studies whose question
	// ("does adaptation pay under phased behavior?") it defines. Zero keeps
	// every cache warm for the whole run, the historical behavior.
	FlushInterval int64
	// CaptureWindows returns each cell's per-interval window series
	// (obs.WindowRecord) alongside its Result — the raw material of the
	// interval-analytics builders. Requires a positive SampleInterval. The
	// capture crosses the distsweep wire as a flag on the JobSpec, so
	// window-carrying sweeps still dispatch to remote fleets.
	CaptureWindows bool
	// StepMode selects the engine's time-advance strategy for every cell:
	// the skip-ahead event core (the zero value) or the cycle-by-cycle
	// reference stepper. The two produce bit-identical results (see
	// core/stepmode_diff_test.go); the knob exists so sweeps can be pinned
	// or cross-checked. When unset, the SPECFETCH_STEPMODE environment
	// variable ("skipahead"/"reference") applies — the CI matrix uses it to
	// run the golden suite under both cores without code changes.
	StepMode core.StepMode
}

// envStepMode resolves SPECFETCH_STEPMODE once; an unparsable value panics
// (silently ignoring a typo would quietly un-pin a CI matrix leg).
var envStepMode = sync.OnceValue(func() core.StepMode {
	v := os.Getenv("SPECFETCH_STEPMODE")
	if v == "" {
		return core.StepSkipAhead
	}
	m, err := core.ParseStepMode(v)
	if err != nil {
		panic(fmt.Sprintf("experiments: bad SPECFETCH_STEPMODE: %v", err))
	}
	return m
})

// ParseStepMode re-exports core.ParseStepMode so command-line layers that
// already depend on experiments need no direct core import for the flag.
func ParseStepMode(s string) (core.StepMode, error) { return core.ParseStepMode(s) }

// stepMode resolves the effective engine mode for this Options.
func (opt Options) stepMode() core.StepMode {
	if opt.StepMode != core.StepSkipAhead {
		return opt.StepMode
	}
	return envStepMode()
}

// observe reports one finished simulation to the optional progress and
// metrics sinks.
func (opt Options) observe(bench string, pol core.Policy, res core.Result) {
	if opt.Metrics != nil {
		opt.Metrics.Counter("specfetch_simulations_total",
			"Completed simulation runs.").Inc()
		opt.Metrics.Counter("specfetch_simulated_insts_total",
			"Correct-path instructions simulated.").Add(res.Insts)
	}
	if opt.Progress != nil {
		opt.Progress(fmt.Sprintf("%s/%s: %d insts, %d cycles, ISPI %.3f",
			bench, pol, res.Insts, res.Cycles, res.TotalISPI()))
	}
}

// DefaultOptions runs all benchmarks at a budget that gives stable numbers
// in a few seconds per table.
func DefaultOptions() Options { return Options{Insts: 2_000_000} }

// QuickOptions is used by tests: fewer instructions, representative subset.
func QuickOptions() Options {
	return Options{Insts: 300_000, Benchmarks: []string{"doduc", "gcc", "groff"}}
}

// selected returns the benchmark profiles the options name, in paper order.
func selected(opt Options) ([]synth.Profile, error) {
	all := synth.Profiles()
	if opt.Benchmarks == nil {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range opt.Benchmarks {
		want[n] = true
	}
	var out []synth.Profile
	for _, p := range all {
		if want[p.Name] {
			out = append(out, p)
			delete(want, p.Name)
		}
	}
	if len(want) > 0 {
		var missing []string
		for n := range want {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("experiments: unknown benchmarks %v", missing)
	}
	return out, nil
}

// buildAll generates the selected benchmarks.
func buildAll(opt Options) ([]*synth.Bench, error) {
	profs, err := selected(opt)
	if err != nil {
		return nil, err
	}
	return mapCells(opt, len(profs), func(_, i int) (*synth.Bench, error) {
		return synth.Build(profs[i])
	})
}

// runPolicies simulates every listed policy over the benchmark under cfg
// (fresh cache and predictor per run, same trace stream).
func runPolicies(b *synth.Bench, cfg core.Config, opt Options, policies []core.Policy) (map[core.Policy]core.Result, error) {
	cells := make([]runCell, len(policies))
	for i, pol := range policies {
		c := cfg
		c.Policy = pol
		cells[i] = newCell(b, c)
	}
	results, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	out := make(map[core.Policy]core.Result, len(policies))
	for i, pol := range policies {
		out[pol] = results[i]
	}
	return out, nil
}

// mean computes the arithmetic mean the paper's "Average" rows use.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// buildAllFromProfile generates one benchmark (test helper).
func buildAllFromProfile(p synth.Profile) (*synth.Bench, error) { return synth.Build(p) }
