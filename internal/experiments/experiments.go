package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"specfetch/internal/core"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
)

// Options selects what and how much to simulate.
type Options struct {
	// Insts is the per-benchmark correct-path instruction budget.
	Insts int64
	// Benchmarks restricts the run to these profile names (nil = all 13).
	Benchmarks []string
	// Progress, if non-nil, receives a one-line message after each completed
	// simulation. Runs execute on worker goroutines, so it may be called
	// concurrently.
	Progress func(msg string)
	// Metrics, if non-nil, accumulates campaign counters
	// (specfetch_simulations_total, specfetch_simulated_insts_total).
	Metrics *obs.Registry
}

// observe reports one finished simulation to the optional progress and
// metrics sinks.
func (opt Options) observe(bench string, pol core.Policy, res core.Result) {
	if opt.Metrics != nil {
		opt.Metrics.Counter("specfetch_simulations_total",
			"Completed simulation runs.").Inc()
		opt.Metrics.Counter("specfetch_simulated_insts_total",
			"Correct-path instructions simulated.").Add(res.Insts)
	}
	if opt.Progress != nil {
		opt.Progress(fmt.Sprintf("%s/%s: %d insts, %d cycles, ISPI %.3f",
			bench, pol, res.Insts, res.Cycles, res.TotalISPI()))
	}
}

// DefaultOptions runs all benchmarks at a budget that gives stable numbers
// in a few seconds per table.
func DefaultOptions() Options { return Options{Insts: 2_000_000} }

// QuickOptions is used by tests: fewer instructions, representative subset.
func QuickOptions() Options {
	return Options{Insts: 300_000, Benchmarks: []string{"doduc", "gcc", "groff"}}
}

// selected returns the benchmark profiles the options name, in paper order.
func selected(opt Options) ([]synth.Profile, error) {
	all := synth.Profiles()
	if opt.Benchmarks == nil {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range opt.Benchmarks {
		want[n] = true
	}
	var out []synth.Profile
	for _, p := range all {
		if want[p.Name] {
			out = append(out, p)
			delete(want, p.Name)
		}
	}
	if len(want) > 0 {
		var missing []string
		for n := range want {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("experiments: unknown benchmarks %v", missing)
	}
	return out, nil
}

// buildAll generates the selected benchmarks.
func buildAll(opt Options) ([]*synth.Bench, error) {
	profs, err := selected(opt)
	if err != nil {
		return nil, err
	}
	benches := make([]*synth.Bench, len(profs))
	err = parallelFor(len(profs), func(i int) error {
		b, err := synth.Build(profs[i])
		if err != nil {
			return err
		}
		benches[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return benches, nil
}

// runPolicies simulates every listed policy over the benchmark under cfg
// (fresh cache and predictor per run, same trace stream).
func runPolicies(b *synth.Bench, cfg core.Config, opt Options, policies []core.Policy) (map[core.Policy]core.Result, error) {
	results := make([]core.Result, len(policies))
	err := parallelFor(len(policies), func(i int) error {
		c := cfg
		c.Policy = policies[i]
		res, err := runBench(b, c, opt)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", b.Profile().Name, policies[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[core.Policy]core.Result, len(policies))
	for i, pol := range policies {
		out[pol] = results[i]
	}
	return out, nil
}

// mean computes the arithmetic mean the paper's "Average" rows use.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// buildAllFromProfile generates one benchmark (test helper).
func buildAllFromProfile(p synth.Profile) (*synth.Bench, error) { return synth.Build(p) }

// parallelFor runs fn(i) for i in [0,n) on up to GOMAXPROCS goroutines and
// returns the first error. Simulation runs are independent (each builds its
// own engine, cache, and predictor over read-only benchmark state), so the
// heavy sweeps parallelize cleanly; results are written to index i, keeping
// output deterministic regardless of scheduling.
func parallelFor(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		next int64 = -1
		mu   sync.Mutex
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return err
}
