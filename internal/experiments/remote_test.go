package experiments

import (
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"specfetch/internal/core"
	"specfetch/internal/distsweep"
	"specfetch/internal/obs"
)

// startWorkers stands up n in-process protocol servers, each with its own
// JobRunner (its own bench cache), mimicking n independent daemons.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := httptest.NewServer(distsweep.NewServer(distsweep.ServerOptions{
			Runner: NewJobRunner(nil).Run,
		}).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// TestRemoteSweepBytesIdentical: dispatching Table 6 + Figure 1 + Table 3
// to a 2-worker fleet renders byte-identical artifacts to the serial
// in-process sweep, audited and not.
func TestRemoteSweepBytesIdentical(t *testing.T) {
	base := Options{Insts: 50_000, Benchmarks: []string{"gcc", "groff"}}
	serial := base
	serial.Workers = 1
	want := renderAll(t, serial)

	remote := base
	remote.Remote = startWorkers(t, 2)
	remote.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
		Workers:   remote.Remote,
		BatchSize: 4,
	})
	if got := renderAll(t, remote); got != want {
		t.Error("remote sweep renders differently from the serial in-process sweep")
	}

	audited := remote
	audited.AuditSample = 4
	audited.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
		Workers:   remote.Remote,
		BatchSize: 4,
	})
	if got := renderAll(t, audited); got != want {
		t.Error("audited remote sweep renders differently from the serial in-process sweep")
	}
}

// TestRemoteAblationAndCharacterize: the row-granularity builders (which
// call simulate per dependent cell) fan out through the coordinator too
// and keep their bytes.
func TestRemoteAblationAndCharacterize(t *testing.T) {
	base := Options{Insts: 30_000, Benchmarks: []string{"gcc"}}
	local := base
	local.Workers = 1
	tabL, err := AblationBTBCoupling(local)
	if err != nil {
		t.Fatal(err)
	}
	tab2L, err := Table2(local)
	if err != nil {
		t.Fatal(err)
	}

	remote := base
	remote.Remote = startWorkers(t, 2)
	tabR, err := AblationBTBCoupling(remote)
	if err != nil {
		t.Fatal(err)
	}
	tab2R, err := Table2(remote)
	if err != nil {
		t.Fatal(err)
	}
	if tabR.String() != tabL.String() {
		t.Error("remote ablation renders differently from the local one")
	}
	if tab2R.String() != tab2L.String() {
		t.Error("remote characterization table renders differently from the local one")
	}
}

// TestRemoteFallsBackForInProcessState: a sweep whose cells carry a probe
// cannot be serialized and must silently run in-process even with a fleet
// configured — asserted by pointing Remote at a dead server and checking
// the sweep still succeeds without dispatch attempts.
func TestRemoteFallsBackForInProcessState(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close()

	profs, err := selected(Options{Benchmarks: []string{"gcc"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildAllFromProfile(profs[0])
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	cfg := baseConfig(core.Oracle)
	cfg.OnRightPathAccess = func(int64, uint64, bool) { fired.Add(1) }

	opt := Options{Insts: 20_000, Workers: 1}
	opt.Dispatch = distsweep.New(distsweep.CoordinatorOptions{
		Workers:    []string{dead.URL},
		Retries:    1,
		EvictAfter: 1,
	})
	cells := []runCell{{bench: b, cfg: cfg, seed: defaultStreamSeed}}
	if _, err := runCells(opt, cells); err != nil {
		t.Fatalf("probe-carrying sweep failed: %v", err)
	}
	if fired.Load() == 0 {
		t.Error("access callback never fired; the cell did not run in-process")
	}
	if len(opt.Dispatch.Alive()) != 1 {
		t.Error("dead worker was probed (and evicted) for a non-serializable sweep")
	}
}

// TestRemoteProgressAndMetrics: remote sweeps report the same campaign
// totals through Options.Metrics/Progress as local ones.
func TestRemoteProgressAndMetrics(t *testing.T) {
	opt := Options{Insts: 20_000, Benchmarks: []string{"gcc"}}
	opt.Remote = startWorkers(t, 1)
	reg := obs.NewRegistry()
	opt.Metrics = reg
	var lines atomic.Int64
	opt.Progress = func(string) { lines.Add(1) }
	opt.Dispatch = distsweep.New(distsweep.CoordinatorOptions{Workers: opt.Remote, Metrics: reg})

	if _, err := Table6(opt); err != nil {
		t.Fatal(err)
	}
	sims := reg.Counter("specfetch_simulations_total", "").Value()
	if sims == 0 {
		t.Error("no simulations counted for a remote sweep")
	}
	if lines.Load() != sims {
		t.Errorf("progress lines (%d) != counted simulations (%d)", lines.Load(), sims)
	}
	if reg.Counter("specfetch_dispatch_jobs_total", "").Value() != sims {
		t.Error("dispatch job counter does not match simulations")
	}
}
