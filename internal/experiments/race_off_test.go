//go:build !race

package experiments

// raceEnabled reports that this test binary was built with the race
// detector; see race_on_test.go.
const raceEnabled = false
