package adaptive

import (
	"reflect"
	"strings"
	"testing"

	"specfetch/internal/core"
	"specfetch/internal/metrics"
)

// phaseWin fabricates an indexed window digest: windows of 1000
// instructions, attributed to the given active policy at the given cost.
func phaseWin(idx int64, active core.Policy, lpi float64) core.AdaptWindow {
	var lost metrics.Breakdown
	lost[metrics.RTICache] = metrics.Slots(lpi * 1000)
	return core.AdaptWindow{
		Index:      idx,
		StartInsts: idx * 1000, EndInsts: (idx + 1) * 1000,
		Cycles: 2000,
		Lost:   lost,
		Active: active,
	}
}

// phasedCost is a synthetic flush-phase cost model over a period-6 phase
// with a 2-window cold class: cold windows cost a lot for everyone (the
// refill), warm windows little, and on top of that common mode one arm is
// genuinely cheaper cold (resume) and a different arm cheaper warm
// (optimistic) — the structure Phase exists to discover.
func phasedCost(idx int64, pol core.Policy) float64 {
	pos := idx % 6
	base := 0.8
	if pos < 2 {
		base = 3.0
	}
	switch {
	case pos < 2 && pol == core.Resume:
		base -= 0.25
	case pos >= 2 && pol == core.Optimistic:
		base -= 0.25
	}
	return base
}

// drivePhase feeds a chooser the phased cost model for n windows and
// returns the policy chosen for each window index (entry i ran window i).
func drivePhase(c core.Chooser, n int64) []core.Policy {
	seq := make([]core.Policy, 0, n)
	cur := c.First()
	for i := int64(0); i < n; i++ {
		seq = append(seq, cur)
		cur = c.Decide(phaseWin(i, cur, phasedCost(i, cur)))
		if !cur.IsStatic() {
			panic("phase returned a non-static policy")
		}
	}
	return seq
}

func TestPhaseParse(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"phase", "phase:2", "phase:6", "phase:100"} {
		c, err := New(name, 0)
		if err != nil || c == nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if got := c.First(); got != core.Policies()[0] {
			t.Errorf("New(%q).First() = %v, want %v", name, got, core.Policies()[0])
		}
	}
	for _, bad := range []string{"phase:", "phase:x", "phase:0", "phase:1", "phase:-3", "phase:6.5"} {
		if _, err := New(bad, 0); err == nil {
			t.Errorf("New(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "period") {
			t.Errorf("New(%q) error %q does not explain the period", bad, err)
		}
	}
	if !strings.Contains(strings.Join(Names(), " "), "phase:<period>") {
		t.Errorf("Names() %v does not advertise phase:<period>", Names())
	}
}

// TestPhaseLearnsPerClassWinners: under the synthetic flush-phase cost
// model, the chooser must converge to running the cold-cheap arm in the
// cold class and the warm-cheap arm in the warm class for the overwhelming
// majority of late windows — the per-class follow-the-leader behaviour the
// whole design exists for. (Probe blocks legitimately run other arms, so
// the bar is a majority, not unanimity.)
func TestPhaseLearnsPerClassWinners(t *testing.T) {
	t.Parallel()
	p, err := NewPhase(6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	seq := drivePhase(p, n)
	var coldRight, cold, warmRight, warm float64
	for i := int64(n / 2); i < n; i++ {
		if i%6 < 2 {
			cold++
			if seq[i] == core.Resume {
				coldRight++
			}
		} else {
			warm++
			if seq[i] == core.Optimistic {
				warmRight++
			}
		}
	}
	if coldRight/cold < 0.7 {
		t.Errorf("cold class ran the cheap arm in only %.0f%% of late windows", 100*coldRight/cold)
	}
	if warmRight/warm < 0.7 {
		t.Errorf("warm class ran the cheap arm in only %.0f%% of late windows", 100*warmRight/warm)
	}
}

// TestPhaseDeterminism: two independently built choosers driven over the
// same window stream produce the identical decision sequence — the
// property engine-level bit-identity (across step modes, worker pools, and
// remote worker processes) rests on.
func TestPhaseDeterminism(t *testing.T) {
	t.Parallel()
	a, err := New("phase:6", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("phase:6", 99) // the seed must be irrelevant
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(drivePhase(a, 2000), drivePhase(b, 2000)) {
		t.Error("identical window streams produced diverging phase decisions")
	}
}

// TestPhaseBlockCommitment: within one class block the chooser must never
// switch arms — the block is the unit of measurement, and a mid-block
// switch would reintroduce the one-window transition bias the design
// eliminates.
func TestPhaseBlockCommitment(t *testing.T) {
	t.Parallel()
	p, err := NewPhase(6)
	if err != nil {
		t.Fatal(err)
	}
	seq := drivePhase(p, 3000)
	for i := 1; i < len(seq); i++ {
		pos := int64(i) % 6
		if pos == 0 || pos == 2 {
			continue // block boundaries: switches are legal here
		}
		if seq[i] != seq[i-1] {
			t.Fatalf("arm switched mid-block at window %d (%v -> %v)", i, seq[i-1], seq[i])
		}
	}
}
