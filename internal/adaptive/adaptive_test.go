package adaptive

import (
	"reflect"
	"strings"
	"testing"

	"specfetch/internal/core"
	"specfetch/internal/metrics"
)

// win fabricates a window digest: 1000 instructions with the given
// lost-per-inst cost, attributed to the given active policy.
func win(active core.Policy, lpi float64) core.AdaptWindow {
	var lost metrics.Breakdown
	lost[metrics.RTICache] = metrics.Slots(lpi * 1000)
	return core.AdaptWindow{
		StartInsts: 0, EndInsts: 1000,
		Cycles: 2000,
		Lost:   lost,
		Active: active,
	}
}

// drive feeds a chooser a fixed cost model — each policy has a constant
// lost-per-inst — for n windows and returns the policy sequence it chose
// (starting with First).
func drive(c core.Chooser, cost map[core.Policy]float64, n int) []core.Policy {
	seq := make([]core.Policy, 0, n+1)
	cur := c.First()
	seq = append(seq, cur)
	for i := 0; i < n; i++ {
		cur = c.Decide(win(cur, cost[cur]))
		seq = append(seq, cur)
	}
	return seq
}

// flatCost charges every policy the same baseline except for one cheap
// winner.
func flatCost(winner core.Policy, base, best float64) map[core.Policy]float64 {
	m := make(map[core.Policy]float64, len(core.Policies()))
	for _, p := range core.Policies() {
		m[p] = base
	}
	m[winner] = best
	return m
}

func TestNewNamesAndErrors(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"tournament", "ucb", "egreedy"} {
		c, err := New(name, 1)
		if err != nil || c == nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
	c, err := New("pinned:resume", 0)
	if err != nil {
		t.Fatalf("pinned:resume: %v", err)
	}
	if got := c.First(); got != core.Resume {
		t.Errorf("pinned:resume First() = %v", got)
	}
	if got := c.Decide(win(core.Resume, 1)); got != core.Resume {
		t.Errorf("pinned:resume Decide() = %v", got)
	}

	for _, bad := range []string{"oracle", "bandit", ""} {
		if _, err := New(bad, 0); err == nil {
			t.Errorf("New(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "tournament") {
			t.Errorf("New(%q) error %q does not list valid names", bad, err)
		}
	}
	if _, err := New("pinned:adaptive", 0); err == nil {
		t.Errorf("pinning the meta-policy to itself was accepted")
	}
	if _, err := New("pinned:bogus", 0); err == nil {
		t.Errorf("pinned:bogus accepted")
	}
}

// TestTournamentCommitsToWinner: after one trial window per arm the
// tournament must settle on the cheapest policy and stay there while its
// cost is stable.
func TestTournamentCommitsToWinner(t *testing.T) {
	t.Parallel()
	for _, winner := range core.Policies() {
		cost := flatCost(winner, 2.0, 0.5)
		seq := drive(NewTournament(), cost, 20)
		arms := core.Policies()
		// Trial phase: one window per arm, in order.
		for i, a := range arms {
			if seq[i] != a {
				t.Fatalf("winner %v: trial window %d ran %v, want %v", winner, i, seq[i], a)
			}
		}
		// Committed phase: the winner, forever (cost is stable).
		for i := len(arms); i < len(seq); i++ {
			if seq[i] != winner {
				t.Fatalf("winner %v: committed window %d chose %v", winner, i, seq[i])
			}
		}
	}
}

// TestTournamentReopensOnDrift: once the committed policy's cost drifts far
// above its baseline, the tournament must re-trial from arm 0.
func TestTournamentReopensOnDrift(t *testing.T) {
	t.Parallel()
	tour := NewTournament()
	cost := flatCost(core.Resume, 2.0, 0.5)
	cur := tour.First()
	for i := 0; i < 8; i++ { // trial round + settle
		cur = tour.Decide(win(cur, cost[cur]))
	}
	if cur != core.Resume {
		t.Fatalf("settled on %v, want resume", cur)
	}
	// Phase change: the committed policy suddenly costs 4x baseline.
	cur = tour.Decide(win(cur, 2.0))
	if cur != core.Policies()[0] {
		t.Fatalf("after drift got %v, want re-trial from %v", cur, core.Policies()[0])
	}
}

// TestUCBPlaysEveryArmOnce: the bandit's opening round covers all arms in
// order before any exploitation.
func TestUCBPlaysEveryArmOnce(t *testing.T) {
	t.Parallel()
	cost := flatCost(core.Decode, 1.0, 0.1)
	seq := drive(NewUCB(), cost, 30)
	for i, a := range core.Policies() {
		if seq[i] != a {
			t.Fatalf("opening pull %d was %v, want %v", i, seq[i], a)
		}
	}
	// With a clear winner and a modest horizon, the plurality choice after
	// the opening round must be the cheap arm.
	counts := map[core.Policy]int{}
	for _, p := range seq[len(core.Policies()):] {
		counts[p]++
	}
	for _, p := range core.Policies() {
		if p != core.Decode && counts[p] > counts[core.Decode] {
			t.Fatalf("UCB favoured %v (%d) over the cheap arm (%d)", p, counts[p], counts[core.Decode])
		}
	}
}

// TestDeterminismSameSeed: every strategy, driven over the same window
// stream, must produce an identical decision sequence when rebuilt with the
// same seed — the property the engine-level bit-identity rests on.
func TestDeterminismSameSeed(t *testing.T) {
	t.Parallel()
	cost := flatCost(core.Optimistic, 1.5, 0.3)
	for _, name := range []string{"tournament", "ucb", "egreedy", "pinned:decode"} {
		a, _ := New(name, 0xada9)
		b, _ := New(name, 0xada9)
		if !reflect.DeepEqual(drive(a, cost, 200), drive(b, cost, 200)) {
			t.Errorf("%s: same seed diverged", name)
		}
	}
}

// TestEgreedySeedDivergence documents the legitimate divergence: different
// seeds give the epsilon-greedy bandit different exploration streams, so
// the decision sequences differ (while each remains reproducible).
func TestEgreedySeedDivergence(t *testing.T) {
	t.Parallel()
	cost := flatCost(core.Optimistic, 1.5, 0.3)
	a := drive(NewEpsilonGreedy(1), cost, 400)
	b := drive(NewEpsilonGreedy(2), cost, 400)
	if reflect.DeepEqual(a, b) {
		t.Fatalf("seeds 1 and 2 produced identical egreedy sequences over 400 windows")
	}
}

// TestAllStrategiesReturnStatic: no strategy may ever answer a non-static
// policy, under any cost stream (here: adversarially spiky).
func TestAllStrategiesReturnStatic(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"tournament", "ucb", "egreedy"} {
		c, _ := New(name, 7)
		cur := c.First()
		for i := 0; i < 500; i++ {
			lpi := float64(i%13) * 0.7 // spiky, repeatedly crossing drift thresholds
			cur = c.Decide(win(cur, lpi))
			if !cur.IsStatic() {
				t.Fatalf("%s: window %d returned non-static %v", name, i, cur)
			}
		}
	}
}
