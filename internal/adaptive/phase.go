package adaptive

import (
	"fmt"
	"strconv"
	"strings"

	"specfetch/internal/core"
)

// Phase is the flush-phase chooser: the strategy built for periodic
// workloads, where Config.FlushInterval invalidates the I-cache every N
// correct-path instructions and the windows between two flushes form a
// repeating phase of period FlushInterval/AdaptInterval windows. The
// windows right after a flush are refill windows — the cache is cold and
// the conservative policies (the paper's resume regime) tend to win — while
// the later windows run warm, where the aggressive policies earn their
// keep. Phase therefore learns a per-class answer: it splits each period
// into a cold class (the first third of the positions) and a warm class
// (the rest) and runs an independent selection race in each class.
//
// Two measurement rules make the race winnable at all. First, every window
// is scored relative to the running mean cost of its own phase position,
// which cancels the common-mode noise and the enormous cold-vs-warm cost
// difference; raw costs would bury a few-percent policy gap. Second, the
// unit of decision is never a single window but a class block — the
// contiguous run of same-class windows inside one period (the cold block,
// then the warm block). A policy switch perturbs the cache state the next
// window inherits, so a one-window probe pays the whole transition bill in
// its only scored window and systematically reads worse than the incumbent
// — probing at window granularity converges to the incumbent everywhere.
// A block probe serves the entire block, amortizes the transition exactly
// the way a committed schedule would, and therefore measures the thing
// deployment actually buys.
//
// The schedule has three stages. A short warm-up holds one arm while the
// simulated machine itself warms (nothing is scored — the first windows of
// a run are unrepresentative while the L2 fills). The opening rotates all
// five arms block-by-block on a fixed modulus — the modulus never re-keys
// as arms drop out, so an arm's visits stay spread over both classes and
// no arm's score is confounded with a class subset — and eliminates
// hopeless arms early on a pooled z-test. The survivors (cut to the pooled
// top three) seed both classes, and each class then races its slate down
// to two, follows its leader, and probes the runner(s) at a block spacing
// that backs off as the leader's margin becomes statistically clear. Close
// calls keep being probed; settled ones are probed rarely, so the probe
// overhead anneals toward zero exactly where adaptation has nothing left
// to learn.
//
// Everything is a deterministic function of the window digests: no seed,
// no clocks, no map iteration. The name syntax is "phase:<period>"
// (windows per flush period, minimum 2); plain "phase" means phase:6, the
// shipped study geometry (FlushInterval 15000 over AdaptInterval 2500).
const (
	phaseWarmup   = 48 // unscored lead-in windows (cold L2, empty BTB)
	phasePerArm   = 10 // pooled opening block samples per surviving arm
	phaseOpenZ2   = 8  // pooled z^2 that eliminates an arm in the opening
	phaseOpenMin  = 4  // pooled block samples per arm before elimination
	phaseClassMin = 6  // class block samples per arm before the race cut
	phaseRaceZ2   = 4  // z^2 that drops the trailing third arm in a class
	phaseBootMin  = 2  // class samples below which a slate arm runs next
)

// relStat is a running mean/variance accumulator of position-relative
// block scores.
type relStat struct {
	n, sum, sq float64
}

func (s *relStat) add(v float64) { s.n++; s.sum += v; s.sq += v * v }
func (s *relStat) mean() float64 { return s.sum / s.n }
func (s *relStat) varm() float64 { m := s.mean(); return s.sq/s.n - m*m }

// zsq returns the signed mean gap a-b and its squared z statistic under
// the two-sample normal approximation. Below two samples a side there is
// no variance estimate, so the answer is "no evidence".
func zsq(a, b *relStat) (gap, z2 float64) {
	if a.n < 2 || b.n < 2 {
		return 0, 0
	}
	gap = a.mean() - b.mean()
	se2 := a.varm()/a.n + b.varm()/b.n
	if se2 <= 0 {
		return gap, 0
	}
	return gap, gap * gap / se2
}

// Phase is the flush-phase chooser state machine. See the package comment
// above for the stage structure; the zero value is not usable — build one
// with NewPhase.
type Phase struct {
	arms    []core.Policy
	period  int64
	coldLen int64

	// per-position running cost means: the common-mode baseline every
	// window score is taken relative to
	posSum, posCnt []float64

	// current block: the arm serving it and the accumulating score
	curArm   int
	blockAcc float64
	blockCnt float64

	warmupDone bool
	opening    bool
	openBlocks int64
	openStat   []relStat
	openAlive  []bool
	openLeft   int

	// per class (0 warm, 1 cold): the surviving slate in rank-seeded
	// order, its block-score stats, and the probe clocks
	slate   [2][]int
	tracked [2][]bool
	clsStat [2][]relStat
	probeT  [2]int64
	probeI  [2]int
}

// NewPhase builds the flush-phase chooser for a phase of period windows
// (the flush interval divided by the adapt interval, at least 2).
func NewPhase(period int64) (*Phase, error) {
	if period < 2 {
		return nil, fmt.Errorf("adaptive: phase period %d: need at least 2 windows per flush period", period)
	}
	a := arms()
	cl := (period + 2) / 3
	if cl >= period {
		cl = period - 1
	}
	p := &Phase{
		arms: a, period: period, coldLen: cl,
		posSum: make([]float64, period), posCnt: make([]float64, period),
		opening:   true,
		openStat:  make([]relStat, len(a)),
		openAlive: make([]bool, len(a)),
		openLeft:  len(a),
	}
	for i := range p.openAlive {
		p.openAlive[i] = true
	}
	for c := 0; c < 2; c++ {
		p.clsStat[c] = make([]relStat, len(a))
		p.tracked[c] = make([]bool, len(a))
		for i := range p.tracked[c] {
			p.tracked[c][i] = true
		}
	}
	return p, nil
}

// class maps a phase position to its class index: 1 (cold) for the refill
// positions right after a flush, 0 (warm) for the rest.
func (p *Phase) class(pos int64) int {
	if pos < p.coldLen {
		return 1
	}
	return 0
}

// armIndex maps a policy to its slot in the arm order. Unknown policies
// (impossible from a well-behaved engine) score as arm 0.
func (p *Phase) armIndex(pol core.Policy) int {
	for i, a := range p.arms {
		if a == pol {
			return i
		}
	}
	return 0
}

// ranked returns the class slate ordered best-first by relative mean.
// Arms without samples keep their slate position.
func (p *Phase) ranked(cls int) []int {
	out := append([]int(nil), p.slate[cls]...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := &p.clsStat[cls][out[j-1]], &p.clsStat[cls][out[j]]
			if a.n > 0 && b.n > 0 && b.mean() < a.mean() {
				out[j-1], out[j] = out[j], out[j-1]
			}
		}
	}
	return out
}

// First starts the run on arm 0 (the presentation-order first policy).
func (p *Phase) First() core.Policy { return p.arms[0] }

// Decide consumes one completed window and answers the policy for the
// next one. Within a class block it always answers the block's arm; at a
// block boundary it banks the block's score and schedules the next block.
func (p *Phase) Decide(w core.AdaptWindow) core.Policy {
	idx := w.Index
	pos := idx % p.period
	active := p.armIndex(w.Active)
	c := w.LostPerInst()

	// Score the window relative to its position's running mean into the
	// current block; the first visit to a position has no baseline and
	// goes unscored. Nothing in the warm-up region is scored at all.
	warm := idx >= phaseWarmup
	if warm && p.posCnt[pos] > 0 {
		p.blockAcc += c - p.posSum[pos]/p.posCnt[pos]
		p.blockCnt++
	}
	if warm {
		p.posCnt[pos]++
		p.posSum[pos] += c
	}

	cls := p.class(pos)
	ncls := p.class((idx + 1) % p.period)
	if ncls == cls {
		// Mid-block: the block's arm keeps serving. (Trust the digest
		// over our own bookkeeping in case the engine restarted a run.)
		p.curArm = active
		return p.arms[p.curArm]
	}

	// Block boundary: bank the finished block's mean score.
	if p.blockCnt > 0 {
		s := p.blockAcc / p.blockCnt
		if p.opening {
			p.openStat[active].add(s)
		}
		if p.tracked[cls][active] {
			p.clsStat[cls][active].add(s)
		}
	}
	p.blockAcc, p.blockCnt = 0, 0

	if !p.warmupDone {
		if idx+1 < phaseWarmup {
			// Stream warm-up: hold one reasonable arm. Nothing is scored
			// yet, so a round-robin here would only buy noise.
			p.curArm = 0
			return p.arms[0]
		}
		p.warmupDone = true
	}
	if p.opening {
		if next, deciding := p.openingNext(); deciding {
			p.curArm = next
			return p.arms[next]
		}
	}

	// Bootstrap: a slate arm with almost no block samples in this class
	// runs next, so the race below never judges an unsampled arm.
	for _, a := range p.slate[ncls] {
		if p.clsStat[ncls][a].n < phaseBootMin {
			p.curArm = a
			return p.arms[a]
		}
	}
	// In-class race: drop the trailing third arm once it is clearly
	// behind the class leader.
	if len(p.slate[ncls]) > 2 {
		r := p.ranked(ncls)
		last, lead := r[len(r)-1], r[0]
		ls, hs := &p.clsStat[ncls][last], &p.clsStat[ncls][lead]
		if ls.n >= phaseClassMin && hs.n >= phaseClassMin {
			if gap, z2 := zsq(ls, hs); gap > 0 && z2 >= phaseRaceZ2 {
				kept := p.slate[ncls][:0]
				for _, a := range p.slate[ncls] {
					if a != last {
						kept = append(kept, a)
					}
				}
				p.slate[ncls] = kept
				p.tracked[ncls][last] = false
			}
		}
	}
	// Follow the class leader; probe the runner(s) at a block spacing
	// that backs off as the top-two separation becomes statistically
	// clear.
	r := p.ranked(ncls)
	_, z2 := zsq(&p.clsStat[ncls][r[0]], &p.clsStat[ncls][r[1]])
	spacing := int64(5)
	switch {
	case z2 >= 8:
		spacing = 81
	case z2 >= 2:
		spacing = 27
	case z2 >= 0.5:
		spacing = 9
	}
	p.probeT[ncls]++
	a := r[0]
	if p.probeT[ncls]%spacing == 0 {
		p.probeI[ncls]++
		a = r[1+p.probeI[ncls]%(len(r)-1)]
	}
	p.curArm = a
	return p.arms[a]
}

// openingNext advances the opening schedule by one block. It returns the
// next block's arm and true while the opening is still running; once every
// surviving arm has its block quota it seeds both class slates, flips to
// the racing stage, and returns false so Decide falls through to the class
// logic at the same boundary.
func (p *Phase) openingNext() (int, bool) {
	p.openBlocks++
	// Pooled sequential elimination: once past the first full rotation,
	// any arm clearly behind the pooled leader stops burning blocks. At
	// most two arms die here — three always survive to the class races.
	if p.openBlocks >= int64(len(p.arms)) {
		lead := -1
		for i := range p.arms {
			if p.openAlive[i] && p.openStat[i].n >= phaseOpenMin &&
				(lead < 0 || p.openStat[i].mean() < p.openStat[lead].mean()) {
				lead = i
			}
		}
		if lead >= 0 && p.openLeft > 3 {
			for i := range p.arms {
				if !p.openAlive[i] || i == lead || p.openLeft <= 3 {
					continue
				}
				st := &p.openStat[i]
				if st.n < phaseOpenMin {
					continue
				}
				if gap, z2 := zsq(st, &p.openStat[lead]); gap > 0 && z2 >= phaseOpenZ2 {
					p.openAlive[i] = false
					p.openLeft--
				}
			}
		}
	}
	done := true
	for i := range p.arms {
		if p.openAlive[i] && p.openStat[i].n < phasePerArm {
			done = false
		}
	}
	if !done {
		// Fixed-modulus rotation over the ORIGINAL slate: the arm:block
		// mapping never re-keys as arms die (the five-arm modulus against
		// the two-class block alternation spreads every arm over both
		// classes); an eliminated arm's slot goes to the pooled leader.
		a := int(p.openBlocks) % len(p.arms)
		if !p.openAlive[a] {
			best := -1
			for i := range p.arms {
				if p.openAlive[i] && (best < 0 ||
					(p.openStat[i].n > 0 && p.openStat[i].mean() < p.openStat[best].mean())) {
					best = i
				}
			}
			a = best
		}
		return a, true
	}
	// Survivors, cut to the pooled top three, seed both class slates in
	// rank order (the rank seeds the race and follow-the-leader stages).
	var ranked []int
	for i := range p.arms {
		if p.openAlive[i] {
			ranked = append(ranked, i)
		}
	}
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0; j-- {
			if p.openStat[ranked[j]].mean() < p.openStat[ranked[j-1]].mean() {
				ranked[j-1], ranked[j] = ranked[j], ranked[j-1]
			}
		}
	}
	if len(ranked) > 3 {
		ranked = ranked[:3]
	}
	for c := 0; c < 2; c++ {
		p.slate[c] = append([]int(nil), ranked...)
		for i := range p.arms {
			p.tracked[c][i] = false
		}
		for _, a := range ranked {
			p.tracked[c][a] = true
		}
	}
	p.opening = false
	return 0, false
}

// parsePhase recognizes "phase" and "phase:<period>" strategy names.
func parsePhase(name string) (core.Chooser, bool, error) {
	if name == "phase" {
		ch, err := NewPhase(6)
		return ch, true, err
	}
	rest, ok := strings.CutPrefix(name, "phase:")
	if !ok {
		return nil, false, nil
	}
	period, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return nil, true, fmt.Errorf("adaptive: phase period %q: %v", rest, err)
	}
	ch, err := NewPhase(period)
	return ch, true, err
}
