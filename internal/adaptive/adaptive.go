// Package adaptive implements the chooser strategies behind the core
// Adaptive meta-policy: online algorithms that watch the engine's own
// per-window counters (core.AdaptWindow) and re-select one of the paper's
// five static fetch policies at every window boundary, chasing the offline
// oracle-selector bound (internal/experiments, DESIGN.md §15) with runtime
// information only.
//
// Every strategy is a deterministic state machine. The only randomness
// allowed is internal/xrand seeded from Config.AdaptSeed, so a strategy's
// switch sequence — and therefore the whole run — is bit-identical across
// step modes, pool worker counts, and remote worker processes. Strategies
// hold no clocks and iterate no maps.
package adaptive

import (
	"fmt"
	"math"
	"strings"

	"specfetch/internal/core"
	"specfetch/internal/xrand"
)

// arms returns the policy set every strategy selects over: the paper's five
// static policies, in presentation order (the order also breaks ties).
func arms() []core.Policy { return core.Policies() }

// PinnedPrefix introduces the degenerate constant-choice strategy:
// "pinned:<policy>" always answers that policy. It exists for the
// differential anchor — an adaptive run pinned to a static policy must be
// bit-identical to the static run — and as the simplest possible chooser.
const PinnedPrefix = "pinned:"

// Names lists the recognized strategy names, in the order New's error
// message reports them.
func Names() []string {
	return []string{"tournament", "ucb", "egreedy", "phase:<period>", PinnedPrefix + "<policy>"}
}

// New constructs a chooser by name. The seed feeds randomized strategies
// (egreedy); deterministic ones accept and ignore it, so a strategy can be
// swapped without re-plumbing.
func New(name string, seed uint64) (core.Chooser, error) {
	if pol, ok := strings.CutPrefix(name, PinnedPrefix); ok {
		p, err := core.ParsePolicy(pol)
		if err != nil {
			return nil, fmt.Errorf("adaptive: %s: %w", name, err)
		}
		if !p.IsStatic() {
			return nil, fmt.Errorf("adaptive: cannot pin the %v meta-policy to itself", p)
		}
		return Pinned(p), nil
	}
	if ch, ok, err := parsePhase(name); ok {
		return ch, err
	}
	switch name {
	case "tournament":
		return NewTournament(), nil
	case "ucb":
		return NewUCB(), nil
	case "egreedy":
		return NewEpsilonGreedy(seed), nil
	}
	return nil, fmt.Errorf("adaptive: unknown strategy %q (valid: %s)",
		name, strings.Join(Names(), ", "))
}

// Pinned is the constant-choice strategy: every window runs the same static
// policy, so an Adaptive run degenerates to the static run it pins.
type Pinned core.Policy

// First returns the pinned policy.
func (p Pinned) First() core.Policy { return core.Policy(p) }

// Decide returns the pinned policy, ignoring the window.
func (p Pinned) Decide(core.AdaptWindow) core.Policy { return core.Policy(p) }

// Tournament trial constants. The drift rule re-opens the tournament when a
// committed window's lost-per-inst exceeds driftMul times the tracked
// committed baseline plus driftSlack slots/inst — the multiplicative term
// scales with the program's penalty level, the additive term keeps
// near-zero baselines from flapping on noise.
const (
	tournamentDriftMul   = 1.5
	tournamentDriftSlack = 0.25
	// tournamentEMAAlpha is the weight of the newest committed window in the
	// baseline's exponential moving average.
	tournamentEMAAlpha = 0.5
)

// Tournament is the trial-and-commit sampler: it runs each candidate policy
// for one window (in arms order), commits to the one that lost the fewest
// slots per instruction, and stays committed until the committed policy's
// window cost drifts far enough above its baseline to suggest a phase
// change — then it re-opens the tournament. Fully deterministic.
type Tournament struct {
	arms []core.Policy
	// trialIdx indexes the arm currently on trial; len(arms) means
	// committed.
	trialIdx int
	trial    []float64
	// committed is the winner while trialIdx == len(arms).
	committed core.Policy
	// baseline is the EMA of the committed policy's per-window
	// lost-per-inst, seeded from its winning trial window.
	baseline float64
}

// NewTournament builds the tournament sampler.
func NewTournament() *Tournament {
	a := arms()
	return &Tournament{arms: a, trial: make([]float64, len(a))}
}

// First starts the opening tournament round on the first arm.
func (t *Tournament) First() core.Policy { return t.arms[0] }

// Decide records the finished window against the arm that ran it, then
// either advances the trial round, commits to the round's winner, or —
// when committed — watches for drift.
func (t *Tournament) Decide(w core.AdaptWindow) core.Policy {
	lpi := w.LostPerInst()
	if t.trialIdx < len(t.arms) {
		t.trial[t.trialIdx] = lpi
		t.trialIdx++
		if t.trialIdx < len(t.arms) {
			return t.arms[t.trialIdx]
		}
		// Round complete: commit to the argmin (ties to the earlier arm).
		best := 0
		for i := 1; i < len(t.trial); i++ {
			if t.trial[i] < t.trial[best] {
				best = i
			}
		}
		t.committed = t.arms[best]
		t.baseline = t.trial[best]
		return t.committed
	}
	if lpi > tournamentDriftMul*t.baseline+tournamentDriftSlack {
		// Phase change: re-open the tournament starting from arm 0.
		t.trialIdx = 0
		return t.arms[0]
	}
	t.baseline = (1-tournamentEMAAlpha)*t.baseline + tournamentEMAAlpha*lpi
	return t.committed
}

// ucbExplore scales the UCB confidence radius, in slots-per-instruction.
// Window ISPIs live in roughly [0, 4] on the paper's machines, so a radius
// near 1 after a single pull explores meaningfully without drowning real
// cost differences.
const ucbExplore = 0.8

// UCB is a UCB1-style bandit over the five arms, minimizing per-window
// lost-per-inst: each window's cost updates the arm that ran it, and the
// next arm is the one with the lowest cost lower-confidence bound
// (mean − c·sqrt(ln T / n)), unplayed arms first. Deterministic: optimism
// replaces randomness.
type UCB struct {
	arms  []core.Policy
	count []int64
	mean  []float64
	total int64
}

// NewUCB builds the bandit.
func NewUCB() *UCB {
	a := arms()
	return &UCB{arms: a, count: make([]int64, len(a)), mean: make([]float64, len(a))}
}

// First plays the first arm.
func (u *UCB) First() core.Policy { return u.arms[0] }

// update credits a finished window to the arm that ran it.
func (u *UCB) update(w core.AdaptWindow) {
	for i, a := range u.arms {
		if a == w.Active {
			u.count[i]++
			u.mean[i] += (w.LostPerInst() - u.mean[i]) / float64(u.count[i])
			u.total++
			return
		}
	}
}

// Decide updates the played arm and picks the lowest lower-confidence-bound
// arm (ties to the earlier arm).
func (u *UCB) Decide(w core.AdaptWindow) core.Policy {
	u.update(w)
	best, bestLCB := -1, math.Inf(1)
	for i := range u.arms {
		if u.count[i] == 0 {
			return u.arms[i] // play every arm once, in order
		}
		lcb := u.mean[i] - ucbExplore*math.Sqrt(math.Log(float64(u.total))/float64(u.count[i]))
		if lcb < bestLCB {
			best, bestLCB = i, lcb
		}
	}
	return u.arms[best]
}

// egreedyEpsilon is the exploration probability per window.
const egreedyEpsilon = 0.1

// EpsilonGreedy is the seeded-random bandit: after one opening pull per arm
// it exploits the lowest-mean arm, except that with probability ε it
// explores a uniformly random arm. The xrand stream is the strategy's only
// randomness, so a seed pins the whole switch sequence.
type EpsilonGreedy struct {
	arms  []core.Policy
	count []int64
	mean  []float64
	rng   *xrand.Rand
}

// NewEpsilonGreedy builds the bandit over the given deterministic seed.
func NewEpsilonGreedy(seed uint64) *EpsilonGreedy {
	a := arms()
	return &EpsilonGreedy{
		arms:  a,
		count: make([]int64, len(a)),
		mean:  make([]float64, len(a)),
		rng:   xrand.New(seed),
	}
}

// First plays the first arm.
func (g *EpsilonGreedy) First() core.Policy { return g.arms[0] }

// Decide credits the played arm, then explores with probability ε and
// exploits the lowest-mean arm otherwise (unplayed arms first, ties to the
// earlier arm).
func (g *EpsilonGreedy) Decide(w core.AdaptWindow) core.Policy {
	for i, a := range g.arms {
		if a == w.Active {
			g.count[i]++
			g.mean[i] += (w.LostPerInst() - g.mean[i]) / float64(g.count[i])
			break
		}
	}
	if g.rng.Float64() < egreedyEpsilon {
		return g.arms[g.rng.Intn(len(g.arms))]
	}
	best := -1
	for i := range g.arms {
		if g.count[i] == 0 {
			return g.arms[i]
		}
		if best < 0 || g.mean[i] < g.mean[best] {
			best = i
		}
	}
	return g.arms[best]
}
