// Package classify reproduces the paper's Table 4: it runs the Oracle and
// Optimistic policies over the same trace and partitions correct-path
// I-cache misses into the four categories the paper defines, by matching up
// the two runs' structural reference streams (which are policy independent
// for a given trace).
package classify

import (
	"fmt"

	"specfetch/internal/bpred"
	"specfetch/internal/core"
	"specfetch/internal/program"
	"specfetch/internal/trace"
)

// Categories holds Table 4's columns. The four miss classes are per
// correct-path instruction, as percentages (matching the paper's units):
//
//   - BothMiss: misses in both Oracle and Optimistic.
//   - SpecPollute: misses only in Optimistic on the correct path — pollution
//     caused by wrong-path fills.
//   - SpecPrefetch: misses only in Oracle — prevented in Optimistic by the
//     prefetching effect of wrong-path fills.
//   - WrongPath: misses Optimistic takes on wrong paths (their main cost is
//     memory bandwidth).
type Categories struct {
	BothMiss     float64
	SpecPollute  float64
	SpecPrefetch float64
	WrongPath    float64
	// TrafficRatio is total Optimistic line fetches over Oracle's.
	TrafficRatio float64
	// Insts is the correct-path instruction count both runs retired.
	Insts int64
}

// OracleMissPct returns Oracle's overall miss ratio (BothMiss+SpecPrefetch).
func (c Categories) OracleMissPct() float64 { return c.BothMiss + c.SpecPrefetch }

// OptimisticRightPathMissPct returns Optimistic's correct-path miss ratio.
func (c Categories) OptimisticRightPathMissPct() float64 { return c.BothMiss + c.SpecPollute }

// NewPredictor builds a fresh predictor for one classification run; both
// runs must start from identical predictor state.
type NewPredictor func() bpred.Predictor

// NewReader builds a fresh reader over the same trace; both runs must see
// identical records.
type NewReader func() trace.Reader

// Run classifies misses for the given machine configuration (whose Policy
// field is ignored; Oracle and Optimistic are used).
func Run(cfg core.Config, img *program.Image, newReader NewReader, newPred NewPredictor) (Categories, error) {
	oracleMiss, oracleRes, err := missStream(cfg, core.Oracle, img, newReader(), newPred())
	if err != nil {
		return Categories{}, fmt.Errorf("classify: oracle run: %w", err)
	}
	optMiss, optRes, err := missStream(cfg, core.Optimistic, img, newReader(), newPred())
	if err != nil {
		return Categories{}, fmt.Errorf("classify: optimistic run: %w", err)
	}
	if oracleRes.Insts != optRes.Insts {
		return Categories{}, fmt.Errorf("classify: instruction counts diverge: oracle %d, optimistic %d",
			oracleRes.Insts, optRes.Insts)
	}
	if len(oracleMiss) != len(optMiss) {
		return Categories{}, fmt.Errorf("classify: reference streams diverge: oracle %d refs, optimistic %d",
			len(oracleMiss), len(optMiss))
	}

	var both, pollute, prefetch int64
	for i := range oracleMiss {
		switch {
		case oracleMiss[i] && optMiss[i]:
			both++
		case oracleMiss[i] && !optMiss[i]:
			prefetch++
		case !oracleMiss[i] && optMiss[i]:
			pollute++
		}
	}

	insts := oracleRes.Insts
	pct := func(n int64) float64 {
		if insts == 0 {
			return 0
		}
		return 100 * float64(n) / float64(insts)
	}
	cat := Categories{
		BothMiss:     pct(both),
		SpecPollute:  pct(pollute),
		SpecPrefetch: pct(prefetch),
		WrongPath:    pct(int64(optRes.Traffic.WrongPathFills)),
		Insts:        insts,
	}
	if oracleRes.Traffic.Total() > 0 {
		cat.TrafficRatio = float64(optRes.Traffic.Total()) / float64(oracleRes.Traffic.Total())
	}
	return cat, nil
}

// missStream runs one policy and records the per-reference miss outcomes.
func missStream(cfg core.Config, pol core.Policy, img *program.Image, rd trace.Reader, pred bpred.Predictor) ([]bool, core.Result, error) {
	var misses []bool
	cfg.Policy = pol
	cfg.NextLinePrefetch = false // Table 4 is measured without prefetching
	cfg.OnRightPathAccess = func(seq int64, line uint64, miss bool) {
		if seq != int64(len(misses)) {
			panic(fmt.Sprintf("classify: non-monotone reference sequence %d (have %d)", seq, len(misses)))
		}
		misses = append(misses, miss)
	}
	res, err := core.Run(cfg, img, rd, pred)
	return misses, res, err
}
