package classify

import (
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/core"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

func classifyBench(t *testing.T, name string, insts int64) Categories {
	t.Helper()
	p, ok := synth.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	b := synth.MustBuild(p)
	cfg := core.DefaultConfig()
	cfg.MaxInsts = insts
	cat, err := Run(cfg, b.Image(),
		func() trace.Reader { return b.NewReader(1, insts*2) },
		func() bpred.Predictor { return bpred.NewDefaultDecoupled() })
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestCategoriesConsistency checks the structural identities the paper's
// Table 4 is built on.
func TestCategoriesConsistency(t *testing.T) {
	cat := classifyBench(t, "gcc", 200_000)

	for _, v := range []struct {
		name string
		val  float64
	}{
		{"BothMiss", cat.BothMiss}, {"SpecPollute", cat.SpecPollute},
		{"SpecPrefetch", cat.SpecPrefetch}, {"WrongPath", cat.WrongPath},
	} {
		if v.val < 0 {
			t.Errorf("%s = %v, negative", v.name, v.val)
		}
	}
	if cat.Insts < 200_000 {
		t.Errorf("insts = %d", cat.Insts)
	}
	// Optimistic generates strictly more traffic than Oracle (wrong-path
	// fills exist on a mispredicting workload).
	if cat.TrafficRatio <= 1 {
		t.Errorf("traffic ratio = %v, want > 1", cat.TrafficRatio)
	}
	// Wrong-path misses must exist for gcc's mispredict rate.
	if cat.WrongPath == 0 {
		t.Error("no wrong-path misses classified")
	}
	// Miss-ratio composition identities.
	if cat.OracleMissPct() != cat.BothMiss+cat.SpecPrefetch {
		t.Error("OracleMissPct identity broken")
	}
	if cat.OptimisticRightPathMissPct() != cat.BothMiss+cat.SpecPollute {
		t.Error("OptimisticRightPathMissPct identity broken")
	}
}

// TestSpecPrefetchDominatesPollution: the paper's headline observation —
// the prefetch effect of wrong-path fills outweighs the pollution effect.
func TestSpecPrefetchDominatesPollution(t *testing.T) {
	for _, name := range []string{"gcc", "groff"} {
		cat := classifyBench(t, name, 200_000)
		if cat.SpecPrefetch <= cat.SpecPollute {
			t.Errorf("%s: SpecPrefetch %.3f not above SpecPollute %.3f",
				name, cat.SpecPrefetch, cat.SpecPollute)
		}
	}
}

// TestFortranEffectsMinimal: for the predictable Fortran stand-ins both
// speculative effects are small relative to the base miss ratio.
func TestFortranEffectsMinimal(t *testing.T) {
	cat := classifyBench(t, "su2cor", 200_000)
	if cat.SpecPollute > 0.2*cat.BothMiss {
		t.Errorf("su2cor: pollution %.3f not small vs both-miss %.3f", cat.SpecPollute, cat.BothMiss)
	}
	if cat.TrafficRatio > 1.25 {
		t.Errorf("su2cor: traffic ratio %.2f too high for a predictable workload", cat.TrafficRatio)
	}
}

// TestRunDetectsInstMismatch: classification requires both runs to see the
// same trace; a reader factory returning different streams must error.
func TestRunDetectsInstMismatch(t *testing.T) {
	p, _ := synth.ProfileByName("li")
	b := synth.MustBuild(p)
	cfg := core.DefaultConfig()
	cfg.MaxInsts = 50_000
	seed := uint64(0)
	_, err := Run(cfg, b.Image(),
		func() trace.Reader { seed++; return b.NewReader(seed, 100_000) },
		func() bpred.Predictor { return bpred.NewDefaultDecoupled() })
	if err == nil {
		t.Error("divergent traces not detected")
	}
}
