// Two-level local-history direction predictor (Yeh & Patt's PAg), provided
// as an alternative to the paper's gshare PHT. Each branch indexes a table
// of per-address history registers; the local history pattern then indexes
// a shared table of 2-bit counters. The paper cites the two-level schemes
// in §2; this variant lets the repository compare the paper's global-history
// choice against a local-history one.
package bpred

import (
	"fmt"

	"specfetch/internal/isa"
)

// LocalConfig sizes the two-level local predictor.
type LocalConfig struct {
	// HistoryEntries is the number of per-address history registers; must
	// be a power of two.
	HistoryEntries int
	// HistoryBits is the local history length; the pattern table has
	// 2^HistoryBits counters.
	HistoryBits int
}

// DefaultLocalConfig roughly matches the paper-era PAg budgets: 512
// history registers of 6 bits over a 64-entry pattern table.
func DefaultLocalConfig() LocalConfig { return LocalConfig{HistoryEntries: 512, HistoryBits: 6} }

// LocalPHT is the two-level local-history direction predictor. Like the
// paper's PHT, it trains only at branch resolution.
type LocalPHT struct {
	hist     []uint32
	counters []Counter2
	histMask uint32
	patMask  uint32
}

// NewLocalPHT builds the predictor.
func NewLocalPHT(cfg LocalConfig) (*LocalPHT, error) {
	if cfg.HistoryEntries <= 0 || cfg.HistoryEntries&(cfg.HistoryEntries-1) != 0 {
		return nil, fmt.Errorf("bpred: local history entries %d not a positive power of two", cfg.HistoryEntries)
	}
	if cfg.HistoryBits < 1 || cfg.HistoryBits > 20 {
		return nil, fmt.Errorf("bpred: local history bits %d outside [1,20]", cfg.HistoryBits)
	}
	p := &LocalPHT{
		hist:     make([]uint32, cfg.HistoryEntries),
		counters: make([]Counter2, 1<<cfg.HistoryBits),
		histMask: uint32(cfg.HistoryEntries - 1),
		patMask:  uint32(1<<cfg.HistoryBits - 1),
	}
	for i := range p.counters {
		p.counters[i] = WeaklyTaken
	}
	return p, nil
}

func (p *LocalPHT) histIdx(pc isa.Addr) uint32 {
	return uint32(uint64(pc)/isa.InstBytes) & p.histMask
}

// Predict returns the predicted direction using the branch's local history.
func (p *LocalPHT) Predict(pc isa.Addr) bool {
	return p.counters[p.hist[p.histIdx(pc)]&p.patMask].Predict()
}

// Resolve trains the pattern counter and shifts the outcome into the
// branch's local history.
func (p *LocalPHT) Resolve(pc isa.Addr, taken bool) {
	hi := p.histIdx(pc)
	pat := p.hist[hi] & p.patMask
	p.counters[pat] = p.counters[pat].Update(taken)
	p.hist[hi] <<= 1
	if taken {
		p.hist[hi] |= 1
	}
	p.hist[hi] &= p.patMask
}

// DecoupledLocal is the paper's decoupled branch architecture with the
// gshare PHT swapped for the two-level local predictor.
type DecoupledLocal struct {
	BTB *BTB
	PHT *LocalPHT
}

// NewDecoupledLocal builds the local-history variant with the default BTB.
func NewDecoupledLocal(btbCfg BTBConfig, localCfg LocalConfig) (*DecoupledLocal, error) {
	btb, err := NewBTB(btbCfg)
	if err != nil {
		return nil, err
	}
	pht, err := NewLocalPHT(localCfg)
	if err != nil {
		return nil, err
	}
	return &DecoupledLocal{BTB: btb, PHT: pht}, nil
}

// PredictCond implements Predictor.
func (d *DecoupledLocal) PredictCond(pc isa.Addr) bool { return d.PHT.Predict(pc) }

// PredictTarget implements Predictor.
func (d *DecoupledLocal) PredictTarget(pc isa.Addr) (isa.Addr, bool) { return d.BTB.Lookup(pc) }

// DecodeTaken implements Predictor.
func (d *DecoupledLocal) DecodeTaken(pc, target isa.Addr) { d.BTB.Insert(pc, target) }

// ResolveCond implements Predictor.
func (d *DecoupledLocal) ResolveCond(pc isa.Addr, taken bool) { d.PHT.Resolve(pc, taken) }

// ResolveIndirect implements Predictor.
func (d *DecoupledLocal) ResolveIndirect(pc, target isa.Addr) { d.BTB.Insert(pc, target) }
