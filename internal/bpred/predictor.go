// Predictor facades used by the fetch engine. The engine only cares about
// four events: predicting a direction, predicting a target, a decode-time
// speculative BTB fill, and resolve-time training.
package bpred

import "specfetch/internal/isa"

// Predictor is the branch-architecture interface consumed by the fetch
// engine.
type Predictor interface {
	// PredictCond returns the predicted direction for the conditional
	// branch at pc, using whatever (possibly stale) state the architecture
	// has at prediction time.
	PredictCond(pc isa.Addr) bool
	// PredictTarget returns the BTB's target for the branch at pc, if any.
	PredictTarget(pc isa.Addr) (isa.Addr, bool)
	// DecodeTaken records, speculatively at decode time, that the branch at
	// pc transfers to target. The paper inserts predicted-taken branches at
	// decode, including those on wrong paths.
	DecodeTaken(pc, target isa.Addr)
	// ResolveCond trains the direction state with the actual outcome of a
	// resolved correct-path conditional branch.
	ResolveCond(pc isa.Addr, taken bool)
	// ResolveIndirect records the actual dynamic target of a resolved
	// indirect transfer (return, indirect jump/call).
	ResolveIndirect(pc, target isa.Addr)
}

// Decoupled is the paper's baseline: BTB for targets, gshare PHT for
// directions, so every conditional branch gets a dynamic direction
// prediction even on a BTB miss.
type Decoupled struct {
	BTB *BTB
	PHT *PHT
}

// NewDecoupled builds the baseline architecture.
func NewDecoupled(btbCfg BTBConfig, phtCfg PHTConfig) (*Decoupled, error) {
	btb, err := NewBTB(btbCfg)
	if err != nil {
		return nil, err
	}
	pht, err := NewPHT(phtCfg)
	if err != nil {
		return nil, err
	}
	return &Decoupled{BTB: btb, PHT: pht}, nil
}

// NewDefaultDecoupled builds the paper's 64-entry 4-way BTB + 512-entry PHT.
func NewDefaultDecoupled() *Decoupled {
	d, err := NewDecoupled(DefaultBTBConfig(), DefaultPHTConfig())
	if err != nil {
		panic(err) // defaults are statically valid
	}
	return d
}

// PredictCond implements Predictor.
func (d *Decoupled) PredictCond(pc isa.Addr) bool { return d.PHT.Predict(pc) }

// PredictTarget implements Predictor.
func (d *Decoupled) PredictTarget(pc isa.Addr) (isa.Addr, bool) { return d.BTB.Lookup(pc) }

// DecodeTaken implements Predictor.
func (d *Decoupled) DecodeTaken(pc, target isa.Addr) { d.BTB.Insert(pc, target) }

// ResolveCond implements Predictor.
func (d *Decoupled) ResolveCond(pc isa.Addr, taken bool) { d.PHT.Resolve(pc, taken) }

// ResolveIndirect implements Predictor.
func (d *Decoupled) ResolveIndirect(pc, target isa.Addr) { d.BTB.Insert(pc, target) }

// Coupled is the Pentium-style ablation: direction prediction lives in the
// BTB entry itself, so conditional branches missing in the BTB fall back to
// a static not-taken prediction.
type Coupled struct {
	btb *BTB
}

// NewCoupled builds the coupled variant.
func NewCoupled(btbCfg BTBConfig) (*Coupled, error) {
	btb, err := NewBTB(btbCfg)
	if err != nil {
		return nil, err
	}
	return &Coupled{btb: btb}, nil
}

// PredictCond implements Predictor: the per-entry counter if present,
// otherwise static not-taken (the Pentium's fall-through assumption).
func (c *Coupled) PredictCond(pc isa.Addr) bool {
	set, tag := c.btb.setTag(pc)
	for i := range c.btb.sets[set] {
		e := &c.btb.sets[set][i]
		if e.valid && e.tag == tag {
			return e.counter.Predict()
		}
	}
	return false
}

// PredictTarget implements Predictor.
func (c *Coupled) PredictTarget(pc isa.Addr) (isa.Addr, bool) { return c.btb.Lookup(pc) }

// DecodeTaken implements Predictor.
func (c *Coupled) DecodeTaken(pc, target isa.Addr) {
	set, tag := c.btb.setTag(pc)
	for i := range c.btb.sets[set] {
		e := &c.btb.sets[set][i]
		if e.valid && e.tag == tag {
			e.target = target
			return
		}
	}
	c.btb.Insert(pc, target)
	// New entries start weakly taken: the branch was observed taken.
	set, tag = c.btb.setTag(pc)
	for i := range c.btb.sets[set] {
		e := &c.btb.sets[set][i]
		if e.valid && e.tag == tag {
			e.counter = WeaklyTaken
			return
		}
	}
}

// ResolveCond implements Predictor: trains the counter if the entry is
// still resident.
func (c *Coupled) ResolveCond(pc isa.Addr, taken bool) {
	set, tag := c.btb.setTag(pc)
	for i := range c.btb.sets[set] {
		e := &c.btb.sets[set][i]
		if e.valid && e.tag == tag {
			e.counter = e.counter.Update(taken)
			return
		}
	}
}

// ResolveIndirect implements Predictor.
func (c *Coupled) ResolveIndirect(pc, target isa.Addr) { c.btb.Insert(pc, target) }

// Static always predicts not-taken and never learns; it is the lower-bound
// reference predictor used in tests and ablations.
type Static struct{}

// PredictCond implements Predictor.
func (Static) PredictCond(isa.Addr) bool { return false }

// PredictTarget implements Predictor.
func (Static) PredictTarget(isa.Addr) (isa.Addr, bool) { return 0, false }

// DecodeTaken implements Predictor.
func (Static) DecodeTaken(isa.Addr, isa.Addr) {}

// ResolveCond implements Predictor.
func (Static) ResolveCond(isa.Addr, bool) {}

// ResolveIndirect implements Predictor.
func (Static) ResolveIndirect(isa.Addr, isa.Addr) {}
