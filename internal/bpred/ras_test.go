package bpred

import "testing"

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
	r.Push(0x100)
	r.Push(0x200)
	if got, ok := r.Peek(); !ok || got != 0x200 {
		t.Fatalf("peek = %v, %v", got, ok)
	}
	if got, ok := r.Pop(); !ok || got != 0x200 {
		t.Fatalf("pop = %v, %v", got, ok)
	}
	if got, ok := r.Pop(); !ok || got != 0x100 {
		t.Fatalf("pop = %v, %v", got, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from drained stack succeeded")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(0x100)
	r.Push(0x200)
	r.Push(0x300) // overwrites 0x100
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if got, _ := r.Pop(); got != 0x300 {
		t.Fatalf("pop1 = %v", got)
	}
	if got, _ := r.Pop(); got != 0x200 {
		t.Fatalf("pop2 = %v", got)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("oldest entry survived overflow")
	}
}

func TestRASDepthClamp(t *testing.T) {
	r := NewRAS(0)
	if r.Depth() != 1 {
		t.Errorf("depth = %d, want clamp to 1", r.Depth())
	}
}

func TestRASNesting(t *testing.T) {
	r := NewRAS(8)
	// Simulate call nesting a(b(c)) returning in order.
	r.Push(0xa)
	r.Push(0xb)
	r.Push(0xc)
	for _, want := range []uint64{0xc, 0xb, 0xa} {
		got, ok := r.Pop()
		if !ok || uint64(got) != want {
			t.Fatalf("pop = %v, %v; want %#x", got, ok, want)
		}
	}
}
