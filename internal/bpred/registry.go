package bpred

import "fmt"

// Registered predictor kind names. A kind is a complete description of a
// branch architecture at the default paper-era budgets, so a plain string
// can stand in for a constructor anywhere a sweep cell has to be
// serialized — the distributed executor ships kinds over the wire and
// rebuilds the predictor on the worker.
const (
	KindDecoupled = "decoupled" // BTB + gshare PHT (the paper's baseline)
	KindLocal     = "local"     // BTB + per-branch local history (PAg)
	KindCoupled   = "coupled"   // Pentium-style counter-in-BTB
	KindStatic    = "static"    // always not-taken, never learns
)

// Kinds lists the registered predictor kinds in ablation display order.
func Kinds() []string {
	return []string{KindDecoupled, KindLocal, KindCoupled, KindStatic}
}

// ByName maps a predictor kind to a constructor for a fresh instance. The
// empty string selects the default decoupled architecture, so zero-valued
// cells keep their historical meaning.
func ByName(kind string) (func() Predictor, error) {
	switch kind {
	case "", KindDecoupled:
		return func() Predictor { return NewDefaultDecoupled() }, nil
	case KindLocal:
		return func() Predictor {
			l, err := NewDecoupledLocal(DefaultBTBConfig(), DefaultLocalConfig())
			if err != nil {
				panic(err) // defaults are statically valid
			}
			return l
		}, nil
	case KindCoupled:
		return func() Predictor {
			c, err := NewCoupled(DefaultBTBConfig())
			if err != nil {
				panic(err) // defaults are statically valid
			}
			return c
		}, nil
	case KindStatic:
		return func() Predictor { return Static{} }, nil
	}
	return nil, fmt.Errorf("bpred: unknown predictor kind %q", kind)
}
