// Return-address stack extension. The paper's machine predicts returns
// through the BTB only (one stale target per site); a RAS predicts them from
// the dynamic call nesting, which is what every later fetch architecture
// adopted. The engine uses it when Config.UseRAS is set, as an ablation of
// the paper's design point.
package bpred

import "specfetch/internal/isa"

// RAS is a fixed-depth return-address stack with wrap-around overwrite on
// overflow (the common hardware behaviour: deep recursion silently loses
// the oldest entries).
type RAS struct {
	entries []isa.Addr
	top     int // index of the next push slot
	size    int // live entries, capped at len(entries)
}

// NewRAS builds a stack with the given depth (a power of two is customary
// but not required).
func NewRAS(depth int) *RAS {
	if depth < 1 {
		depth = 1
	}
	return &RAS{entries: make([]isa.Addr, depth)}
}

// Push records a return address at a call.
func (r *RAS) Push(ret isa.Addr) {
	r.entries[r.top] = ret
	r.top = (r.top + 1) % len(r.entries)
	if r.size < len(r.entries) {
		r.size++
	}
}

// Pop predicts (and consumes) the return address for a return instruction.
// It reports false when the stack has underflowed.
func (r *RAS) Pop() (isa.Addr, bool) {
	if r.size == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.size--
	return r.entries[r.top], true
}

// Peek returns the prediction without consuming it.
func (r *RAS) Peek() (isa.Addr, bool) {
	if r.size == 0 {
		return 0, false
	}
	return r.entries[(r.top-1+len(r.entries))%len(r.entries)], true
}

// Depth returns the configured capacity.
func (r *RAS) Depth() int { return len(r.entries) }

// Len returns the live entry count.
func (r *RAS) Len() int { return r.size }
