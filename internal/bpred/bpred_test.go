package bpred

import (
	"testing"
	"testing/quick"

	"specfetch/internal/isa"
	"specfetch/internal/xrand"
)

func TestCounter2Transitions(t *testing.T) {
	// Full transition table of the 2-bit saturating counter.
	cases := []struct {
		from  Counter2
		taken bool
		to    Counter2
	}{
		{0, true, 1}, {1, true, 2}, {2, true, 3}, {3, true, 3},
		{3, false, 2}, {2, false, 1}, {1, false, 0}, {0, false, 0},
	}
	for _, c := range cases {
		if got := c.from.Update(c.taken); got != c.to {
			t.Errorf("Update(%d, %v) = %d, want %d", c.from, c.taken, got, c.to)
		}
	}
	for s := Counter2(0); s <= 3; s++ {
		if got, want := s.Predict(), s >= 2; got != want {
			t.Errorf("Predict(%d) = %v", s, got)
		}
	}
}

func TestCounter2Saturation(t *testing.T) {
	prop := func(start uint8, taken bool) bool {
		c := Counter2(start % 4)
		got := c.Update(taken)
		return got <= 3 && (taken && got >= c || !taken && got <= c)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPHTValidation(t *testing.T) {
	for _, n := range []int{0, -4, 3, 513} {
		if _, err := NewPHT(PHTConfig{Entries: n}); err == nil {
			t.Errorf("PHT entries %d accepted", n)
		}
	}
	if _, err := NewPHT(DefaultPHTConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestPHTLearnsBias: a single always-taken branch trains to taken.
func TestPHTLearnsBias(t *testing.T) {
	p, _ := NewPHT(PHTConfig{Entries: 512})
	pc := isa.Addr(0x4000)
	miss := 0
	for i := 0; i < 200; i++ {
		if !p.Predict(pc) {
			miss++
		}
		p.Resolve(pc, true)
	}
	if miss > 10 {
		t.Errorf("always-taken branch mispredicted %d/200 times", miss)
	}
}

// TestPHTLearnsAlternationViaHistory: a single branch alternating T/N is
// perfectly predictable through global history once warmed up.
func TestPHTLearnsAlternationViaHistory(t *testing.T) {
	p, _ := NewPHT(PHTConfig{Entries: 512})
	pc := isa.Addr(0x4000)
	miss := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		if i >= 100 && p.Predict(pc) != taken {
			miss++
		}
		p.Resolve(pc, taken)
	}
	if miss > 5 {
		t.Errorf("alternating branch mispredicted %d/300 times after warmup", miss)
	}
}

func TestPHTHistoryMasked(t *testing.T) {
	p, _ := NewPHT(PHTConfig{Entries: 512})
	for i := 0; i < 100; i++ {
		p.Resolve(0x1000, true)
	}
	if h := p.History(); h >= 512 {
		t.Errorf("history %d exceeds mask", h)
	}
	if h := p.History(); h != 511 {
		t.Errorf("history after 100 taken = %b, want all ones (9 bits)", h)
	}
}

func TestBTBValidation(t *testing.T) {
	bad := []BTBConfig{
		{Entries: 0, Assoc: 1},
		{Entries: 64, Assoc: 0},
		{Entries: 63, Assoc: 4}, // not divisible
		{Entries: 48, Assoc: 4}, // 12 sets, not a power of two
	}
	for _, cfg := range bad {
		if _, err := NewBTB(cfg); err == nil {
			t.Errorf("BTB config %+v accepted", cfg)
		}
	}
	if _, err := NewBTB(DefaultBTBConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b, _ := NewBTB(DefaultBTBConfig())
	if _, hit := b.Lookup(0x1000); hit {
		t.Fatal("empty BTB hit")
	}
	b.Insert(0x1000, 0x2000)
	tgt, hit := b.Lookup(0x1000)
	if !hit || tgt != 0x2000 {
		t.Fatalf("lookup = %v, %v", tgt, hit)
	}
	// Updating the same entry changes the target without eviction.
	b.Insert(0x1000, 0x3000)
	tgt, hit = b.Lookup(0x1000)
	if !hit || tgt != 0x3000 {
		t.Fatalf("after update: %v, %v", tgt, hit)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	// 4 entries, 2-way: 2 sets. Addresses mapping to set 0.
	b, err := NewBTB(BTBConfig{Entries: 4, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Word addresses with even word index land in set 0 (2 sets).
	a1, a2, a3 := isa.Addr(0*8), isa.Addr(2*8), isa.Addr(4*8)
	b.Insert(a1, 0x100)
	b.Insert(a2, 0x200)
	// Touch a1 so a2 is LRU.
	if _, hit := b.Lookup(a1); !hit {
		t.Fatal("a1 missing")
	}
	b.Insert(a3, 0x300) // evicts a2
	if _, hit := b.Lookup(a2); hit {
		t.Error("a2 should have been evicted")
	}
	if _, hit := b.Lookup(a1); !hit {
		t.Error("a1 evicted despite being MRU")
	}
	if _, hit := b.Lookup(a3); !hit {
		t.Error("a3 missing after insert")
	}
}

func TestBTBHitRate(t *testing.T) {
	b, _ := NewBTB(DefaultBTBConfig())
	b.Insert(0x40, 0x80)
	b.Lookup(0x40)
	b.Lookup(0x44)
	if hr := b.HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", hr)
	}
}

func TestDecoupledPredictor(t *testing.T) {
	d := NewDefaultDecoupled()
	pc := isa.Addr(0x1234 * 4)

	// Direction prediction works even without a BTB entry (decoupled).
	for i := 0; i < 50; i++ {
		d.ResolveCond(pc, false)
	}
	if d.PredictCond(pc) {
		t.Error("decoupled PHT failed to learn not-taken without BTB entry")
	}
	if _, hit := d.PredictTarget(pc); hit {
		t.Error("target hit without insert")
	}
	d.DecodeTaken(pc, 0x9000)
	if tgt, hit := d.PredictTarget(pc); !hit || tgt != 0x9000 {
		t.Errorf("target after decode insert: %v, %v", tgt, hit)
	}
	d.ResolveIndirect(pc, 0xa000)
	if tgt, _ := d.PredictTarget(pc); tgt != 0xa000 {
		t.Errorf("target after indirect resolve: %v", tgt)
	}
}

func TestCoupledFallsBackToStaticNotTaken(t *testing.T) {
	c, err := NewCoupled(DefaultBTBConfig())
	if err != nil {
		t.Fatal(err)
	}
	pc := isa.Addr(0x100)
	// No BTB entry: static not-taken, and resolve training has nowhere to
	// stick.
	for i := 0; i < 50; i++ {
		c.ResolveCond(pc, true)
	}
	if c.PredictCond(pc) {
		t.Error("coupled predictor predicted taken without a BTB entry")
	}
	// After the entry exists, the counter trains.
	c.DecodeTaken(pc, 0x200)
	if !c.PredictCond(pc) {
		t.Error("new coupled entry should start weakly taken")
	}
	c.ResolveCond(pc, false)
	c.ResolveCond(pc, false)
	if c.PredictCond(pc) {
		t.Error("coupled counter failed to train toward not-taken")
	}
}

func TestStaticPredictor(t *testing.T) {
	var s Static
	if s.PredictCond(0x100) {
		t.Error("static predicted taken")
	}
	if _, hit := s.PredictTarget(0x100); hit {
		t.Error("static hit a target")
	}
	// Updates are no-ops and must not panic.
	s.DecodeTaken(0x100, 0x200)
	s.ResolveCond(0x100, true)
	s.ResolveIndirect(0x100, 0x200)
}

func TestLocalPHTValidation(t *testing.T) {
	bad := []LocalConfig{
		{HistoryEntries: 0, HistoryBits: 6},
		{HistoryEntries: 511, HistoryBits: 6},
		{HistoryEntries: 512, HistoryBits: 0},
		{HistoryEntries: 512, HistoryBits: 21},
	}
	for _, cfg := range bad {
		if _, err := NewLocalPHT(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewLocalPHT(DefaultLocalConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestLocalPHTLearnsPerBranchPattern: two branches with opposite periodic
// patterns cannot be learned by one global history of interleavings, but a
// local predictor nails both.
func TestLocalPHTLearnsPerBranchPattern(t *testing.T) {
	p, _ := NewLocalPHT(DefaultLocalConfig())
	a, b := isa.Addr(0x100), isa.Addr(0x2000)
	missA, missB := 0, 0
	for i := 0; i < 600; i++ {
		ta := i%3 == 0 // pattern T,N,N
		tb := i%3 != 0 // pattern N,T,T
		if i >= 200 {
			if p.Predict(a) != ta {
				missA++
			}
			if p.Predict(b) != tb {
				missB++
			}
		}
		p.Resolve(a, ta)
		p.Resolve(b, tb)
	}
	if missA > 10 || missB > 10 {
		t.Errorf("local predictor missed %d/%d of period-3 patterns after warmup", missA, missB)
	}
}

func TestDecoupledLocalImplementsPredictor(t *testing.T) {
	d, err := NewDecoupledLocal(DefaultBTBConfig(), DefaultLocalConfig())
	if err != nil {
		t.Fatal(err)
	}
	var _ Predictor = d
	pc := isa.Addr(0x400)
	for i := 0; i < 50; i++ {
		d.ResolveCond(pc, false)
	}
	if d.PredictCond(pc) {
		t.Error("local decoupled failed to learn not-taken")
	}
	d.DecodeTaken(pc, 0x800)
	if tgt, hit := d.PredictTarget(pc); !hit || tgt != 0x800 {
		t.Errorf("target: %v %v", tgt, hit)
	}
}

// TestBTBGoldenModel cross-checks the set-associative BTB against a naive
// reference under random insert/lookup streams.
func TestBTBGoldenModel(t *testing.T) {
	cfg := BTBConfig{Entries: 16, Assoc: 4} // 4 sets
	b, err := NewBTB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: per-set slice, most recently used last.
	type entry struct {
		word   uint64
		target isa.Addr
	}
	nsets := uint64(cfg.Entries / cfg.Assoc)
	ref := make([][]entry, nsets)
	find := func(word uint64) (int, int) {
		set := word % nsets
		for i, e := range ref[set] {
			if e.word == word {
				return int(set), i
			}
		}
		return int(set), -1
	}

	rng := xrand.New(0x60de)
	for op := 0; op < 20_000; op++ {
		word := rng.Uint64() % 64
		pc := isa.Addr(word * isa.InstBytes)
		if rng.Bool(0.5) {
			tgt := isa.Addr((rng.Uint64() % 1024) * isa.InstBytes)
			b.Insert(pc, tgt)
			set, i := find(word)
			if i >= 0 {
				e := ref[set][i]
				e.target = tgt
				ref[set] = append(append(ref[set][:i:i], ref[set][i+1:]...), e)
			} else {
				if len(ref[set]) == cfg.Assoc {
					ref[set] = ref[set][1:]
				}
				ref[set] = append(ref[set], entry{word: word, target: tgt})
			}
		} else {
			got, hit := b.Lookup(pc)
			set, i := find(word)
			wantHit := i >= 0
			if hit != wantHit {
				t.Fatalf("op %d: Lookup(%s) hit=%v, golden %v", op, pc, hit, wantHit)
			}
			if hit {
				if want := ref[set][i].target; got != want {
					t.Fatalf("op %d: Lookup(%s) = %s, golden %s", op, pc, got, want)
				}
				// Lookup refreshes recency in both models.
				e := ref[set][i]
				ref[set] = append(append(ref[set][:i:i], ref[set][i+1:]...), e)
			}
		}
	}
}
