// Package bpred implements the paper's decoupled branch architecture:
//
//   - a set-associative Branch Target Buffer (BTB) holding the targets of
//     recently taken branches, updated speculatively at decode time, and
//   - a Pattern History Table (PHT) of 2-bit saturating counters indexed by
//     the XOR of a global history register and the branch address
//     (McFarling's gshare), updated only when branches resolve.
//
// The baseline configuration matches the paper: 64-entry 4-way BTB,
// 512-entry PHT. A coupled-BTB variant (prediction bits attached to BTB
// entries, Pentium-style) is provided for the ablation study.
package bpred

import (
	"fmt"
	"math/bits"

	"specfetch/internal/isa"
)

// Counter2 is a 2-bit saturating counter. States 0,1 predict not taken;
// 2,3 predict taken.
type Counter2 uint8

// Predict reports the counter's current direction prediction.
func (c Counter2) Predict() bool { return c >= 2 }

// Update nudges the counter toward the observed outcome.
func (c Counter2) Update(taken bool) Counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// WeaklyTaken is the conventional initial counter state.
const WeaklyTaken Counter2 = 2

// PHTConfig sizes the pattern history table.
type PHTConfig struct {
	// Entries is the number of 2-bit counters; must be a power of two.
	Entries int
}

// DefaultPHTConfig is the paper's 512-entry table.
func DefaultPHTConfig() PHTConfig { return PHTConfig{Entries: 512} }

// PHT is a gshare direction predictor. The global history register holds
// log2(Entries) outcome bits and, following the paper, is updated only at
// branch resolution — predictions made while earlier branches are still
// unresolved therefore see stale history, which is exactly the effect the
// paper measures when deepening speculation.
type PHT struct {
	counters []Counter2
	history  uint32
	mask     uint32
	bits     uint
}

// NewPHT builds the table; all counters start weakly taken.
func NewPHT(cfg PHTConfig) (*PHT, error) {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		return nil, fmt.Errorf("bpred: PHT entries %d not a positive power of two", cfg.Entries)
	}
	p := &PHT{
		counters: make([]Counter2, cfg.Entries),
		mask:     uint32(cfg.Entries - 1),
	}
	for n := cfg.Entries; n > 1; n >>= 1 {
		p.bits++
	}
	for i := range p.counters {
		p.counters[i] = WeaklyTaken
	}
	return p, nil
}

// index computes the gshare index for a branch at pc: the instruction-word
// address XORed with the global history.
func (p *PHT) index(pc isa.Addr) uint32 {
	return (uint32(uint64(pc)/isa.InstBytes) ^ p.history) & p.mask
}

// Predict returns the predicted direction for the conditional branch at pc
// using current (possibly stale) history.
func (p *PHT) Predict(pc isa.Addr) bool {
	return p.counters[p.index(pc)].Predict()
}

// Resolve records the actual outcome of the conditional branch at pc:
// the counter indexed with the history the update-time table sees is
// trained, and the outcome shifts into the global history register.
func (p *PHT) Resolve(pc isa.Addr, taken bool) {
	i := p.index(pc)
	p.counters[i] = p.counters[i].Update(taken)
	p.history <<= 1
	if taken {
		p.history |= 1
	}
	p.history &= p.mask
}

// History exposes the current global history register (for tests/tools).
func (p *PHT) History() uint32 { return p.history }

// BTBConfig sizes the branch target buffer.
type BTBConfig struct {
	// Entries is the total entry count; must be a positive multiple of Assoc.
	Entries int
	// Assoc is the set associativity.
	Assoc int
}

// DefaultBTBConfig is the paper's 64-entry 4-way buffer.
func DefaultBTBConfig() BTBConfig { return BTBConfig{Entries: 64, Assoc: 4} }

type btbEntry struct {
	valid  bool
	tag    uint64
	target isa.Addr
	// counter is used only by the coupled variant.
	counter Counter2
	// lru is a per-set timestamp; larger is more recent.
	lru uint64
}

// BTB is a set-associative cache of branch targets with true-LRU
// replacement. Following the paper, only taken branches are inserted, and
// insertion happens speculatively at decode (wrong-path decodes included).
type BTB struct {
	sets          [][]btbEntry
	nsets         uint64
	setMask       uint64
	tagShift      uint
	clock         uint64
	lookups, hits uint64
}

// NewBTB builds the buffer.
func NewBTB(cfg BTBConfig) (*BTB, error) {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 || cfg.Entries%cfg.Assoc != 0 {
		return nil, fmt.Errorf("bpred: bad BTB config %d entries / %d-way", cfg.Entries, cfg.Assoc)
	}
	nsets := cfg.Entries / cfg.Assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("bpred: BTB set count %d not a power of two", nsets)
	}
	sets := make([][]btbEntry, nsets)
	for i := range sets {
		sets[i] = make([]btbEntry, cfg.Assoc)
	}
	return &BTB{
		sets: sets, nsets: uint64(nsets),
		setMask:  uint64(nsets) - 1,
		tagShift: uint(bits.TrailingZeros64(uint64(nsets))),
	}, nil
}

// setTag splits a branch address into set index and tag. The set count is a
// power of two (validated), so the split is mask-and-shift.
func (b *BTB) setTag(pc isa.Addr) (uint64, uint64) {
	word := uint64(pc) / isa.InstBytes
	return word & b.setMask, word >> b.tagShift
}

// Lookup returns the stored target for the branch at pc, if present.
func (b *BTB) Lookup(pc isa.Addr) (isa.Addr, bool) {
	set, tag := b.setTag(pc)
	b.lookups++
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			b.clock++
			e.lru = b.clock
			b.hits++
			return e.target, true
		}
	}
	return 0, false
}

// Insert records (or refreshes) the target of a taken branch at pc.
func (b *BTB) Insert(pc, target isa.Addr) {
	set, tag := b.setTag(pc)
	b.clock++
	victim := 0
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			e.target = target
			e.lru = b.clock
			return
		}
		if !e.valid {
			victim = i
			break
		}
		if e.lru < b.sets[set][victim].lru {
			victim = i
		}
	}
	b.sets[set][victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.clock}
}

// HitRate returns the fraction of lookups that hit (for tools/tests).
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}
