// Package xrand provides the deterministic pseudo-random number generator
// used by the synthetic workload generator. A fixed, self-contained generator
// (splitmix64 seeding a xoshiro256**) keeps every trace reproducible across
// Go releases, unlike math/rand whose stream is not stable across versions
// for all helpers.
package xrand

import "math"

// Rand is a deterministic xoshiro256** generator. The zero value is not
// valid; use New.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed state and returns the next scrambled value.
// It is the standard seeding recipe for the xoshiro family.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	// Avoid the theoretical all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	thresh := -n % n
	for {
		v := r.Uint64()
		lo := v * n // low 64 bits of the 128-bit product
		if lo >= thresh {
			hi, _ := mul64(v, n)
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns a geometric variate with success probability p: the
// number of failures before the first success, so the mean is (1-p)/p.
// It panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf returns a value in [0, n) drawn from a Zipf-like distribution with
// exponent s (s > 0 gives head-heavy selection, favouring small indices).
// It uses inverse-CDF sampling over a precomputed table; build one with
// NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the CDF table for n items with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the table size.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples an index in [0, n).
func (z *Zipf) Draw(r *Rand) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
