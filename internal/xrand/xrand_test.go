package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds gave %d/64 identical values", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(1)
	prop := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 100_000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	const p, n = 0.25, 200_000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean %.3f, want ~%.3f", mean, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) != 0")
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200_000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestZipfHeadHeavy(t *testing.T) {
	r := New(3)
	z := NewZipf(100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 100)
	const n = 100_000
	for i := 0; i < n; i++ {
		v := z.Draw(r)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf draw out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not head heavy: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Item 0 under s=1 should get roughly 1/H(100) ~ 19% of draws.
	frac := float64(counts[0]) / n
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("head fraction %.3f outside [0.10,0.30]", frac)
	}
}

func TestZipfFlat(t *testing.T) {
	r := New(9)
	z := NewZipf(10, 0.01) // nearly uniform
	counts := make([]int, 10)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.07 || frac > 0.14 {
			t.Errorf("near-uniform Zipf item %d has fraction %.3f", i, frac)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	prop := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100_000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) fraction %.4f", frac)
	}
}
