package metrics

import (
	"math"
	"testing"
)

func TestComponentNames(t *testing.T) {
	want := map[Component]string{
		BranchFull:   "branch_full",
		Branch:       "branch",
		ForceResolve: "force_resolve",
		Bus:          "bus",
		RTICache:     "rt_icache",
		WrongICache:  "wrong_icache",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if got, want := Component(99).String(), "component(99)"; got != want {
		t.Errorf("out-of-range String() = %q, want %q", got, want)
	}
	if got, want := Component(-1).String(), "component(-1)"; got != want {
		t.Errorf("negative String() = %q, want %q", got, want)
	}
	if got, want := Component(NumComponents).String(), "component(6)"; got != want {
		t.Errorf("NumComponents.String() = %q, want %q", got, want)
	}
	if len(Components()) != int(NumComponents) {
		t.Errorf("Components() length %d", len(Components()))
	}
	// Components() must enumerate 0..NumComponents-1 in stacking order.
	for i, c := range Components() {
		if c != Component(i) {
			t.Errorf("Components()[%d] = %v", i, c)
		}
	}
}

// TestBreakdownAllComponents accumulates across every component and checks
// totals, per-component ISPI, and AddAll merge for the full breakdown.
func TestBreakdownAllComponents(t *testing.T) {
	var b Breakdown
	var want Slots
	for i, c := range Components() {
		slots := Slots((i + 1) * 10)
		b.Add(c, slots)
		b.Add(c, 0) // zero-slot add is a no-op
		want += slots
	}
	if b.Total() != want {
		t.Errorf("Total = %d, want %d", b.Total(), want)
	}
	const insts = 1000
	var sum float64
	for i, c := range Components() {
		slots := Slots((i + 1) * 10)
		if got := b.ISPI(c, insts); got != float64(slots)/insts {
			t.Errorf("%s ISPI = %v, want %v", c, got, float64(slots)/insts)
		}
		sum += b.ISPI(c, insts)
	}
	// TotalISPI divides once; the per-component sum can differ by an ulp.
	if got := b.TotalISPI(insts); math.Abs(got-sum) > 1e-12 {
		t.Errorf("TotalISPI = %v, want component sum %v", got, sum)
	}

	var o Breakdown
	for _, c := range Components() {
		o.Add(c, 1)
	}
	b.AddAll(o)
	if b.Total() != want+Slots(NumComponents) {
		t.Errorf("AddAll total = %d, want %d", b.Total(), want+Slots(NumComponents))
	}
	for i, c := range Components() {
		if got := b[c]; got != Slots((i+1)*10)+1 {
			t.Errorf("after AddAll %s = %d, want %d", c, got, (i+1)*10+1)
		}
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(Branch, 16)
	b.Add(RTICache, 20)
	b.Add(RTICache, 4)
	if b.Total() != 40 {
		t.Errorf("Total = %d", b.Total())
	}
	if got := b.ISPI(RTICache, 100); got != 0.24 {
		t.Errorf("ISPI = %v", got)
	}
	if got := b.TotalISPI(100); got != 0.4 {
		t.Errorf("TotalISPI = %v", got)
	}
	if b.ISPI(Branch, 0) != 0 || b.TotalISPI(0) != 0 {
		t.Error("zero-instruction ISPI not zero")
	}

	var o Breakdown
	o.Add(Bus, 8)
	b.AddAll(o)
	if b[Bus] != 8 || b.Total() != 48 {
		t.Errorf("AddAll: %+v", b)
	}
}

func TestTraffic(t *testing.T) {
	tr := Traffic{DemandFills: 10, WrongPathFills: 3, PrefetchFills: 7}
	if tr.Total() != 20 {
		t.Errorf("Total = %d", tr.Total())
	}
}
