package metrics

import "testing"

func TestComponentNames(t *testing.T) {
	want := map[Component]string{
		BranchFull:   "branch_full",
		Branch:       "branch",
		ForceResolve: "force_resolve",
		Bus:          "bus",
		RTICache:     "rt_icache",
		WrongICache:  "wrong_icache",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if Component(99).String() == "" {
		t.Error("out-of-range component has empty name")
	}
	if len(Components()) != int(NumComponents) {
		t.Errorf("Components() length %d", len(Components()))
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(Branch, 16)
	b.Add(RTICache, 20)
	b.Add(RTICache, 4)
	if b.Total() != 40 {
		t.Errorf("Total = %d", b.Total())
	}
	if got := b.ISPI(RTICache, 100); got != 0.24 {
		t.Errorf("ISPI = %v", got)
	}
	if got := b.TotalISPI(100); got != 0.4 {
		t.Errorf("TotalISPI = %v", got)
	}
	if b.ISPI(Branch, 0) != 0 || b.TotalISPI(0) != 0 {
		t.Error("zero-instruction ISPI not zero")
	}

	var o Breakdown
	o.Add(Bus, 8)
	b.AddAll(o)
	if b[Bus] != 8 || b.Total() != 48 {
		t.Errorf("AddAll: %+v", b)
	}
}

func TestTraffic(t *testing.T) {
	tr := Traffic{DemandFills: 10, WrongPathFills: 3, PrefetchFills: 7}
	if tr.Total() != 20 {
		t.Errorf("Total = %d", tr.Total())
	}
}
