// Package metrics defines the paper's performance accounting: issue slots
// lost per instruction (ISPI), decomposed into the six penalty components of
// Figures 1–4, plus branch-event and memory-traffic counters.
package metrics

import "fmt"

// Component labels one cause of lost issue slots. The names follow the
// paper's figure legends.
type Component int

const (
	// BranchFull: fetch stalled because the machine hit its unresolved-
	// branch limit.
	BranchFull Component = iota
	// Branch: misfetch/mispredict redirect windows.
	Branch
	// ForceResolve: a correct-path miss waiting for branch resolution or
	// instruction decode before the fill may start (Pessimistic/Decode).
	ForceResolve
	// Bus: a correct-path demand access waiting for the bus or for an
	// in-flight wrong-path/prefetch fill of the needed line.
	Bus
	// RTICache: waiting for a correct-path demand fill in progress.
	RTICache
	// WrongICache: correct-path fetch blocked past a redirect because a
	// wrong-path fill is still outstanding (Optimistic, Decode).
	WrongICache

	NumComponents
)

var componentNames = [NumComponents]string{
	BranchFull:   "branch_full",
	Branch:       "branch",
	ForceResolve: "force_resolve",
	Bus:          "bus",
	RTICache:     "rt_icache",
	WrongICache:  "wrong_icache",
}

// String returns the paper's legend name for the component.
func (c Component) String() string {
	if c >= 0 && c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// Components lists all components in the paper's stacking order
// (bottom of the bar first).
func Components() []Component {
	return []Component{BranchFull, Branch, ForceResolve, Bus, RTICache, WrongICache}
}

// Breakdown accumulates lost issue slots per component.
type Breakdown [NumComponents]Slots

// Add charges n lost slots to component c.
func (b *Breakdown) Add(c Component, n Slots) { b[c] += n }

// Total returns the slots lost across all components.
func (b Breakdown) Total() Slots {
	var t Slots
	for _, v := range b {
		t += v
	}
	return t
}

// ISPI converts a component's slot count to issue slots lost per
// (correct-path) instruction.
func (b Breakdown) ISPI(c Component, insts int64) float64 {
	return b[c].PerInst(insts)
}

// TotalISPI returns the total penalty ISPI.
func (b Breakdown) TotalISPI(insts int64) float64 {
	return b.Total().PerInst(insts)
}

// AddAll accumulates another breakdown into b.
func (b *Breakdown) AddAll(o Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// BranchEvents counts branch-architecture mishaps, each with the issue
// slots they cost. These feed the paper's Table 3 columns.
type BranchEvents struct {
	// PHTMispredicts are conditional branches whose predicted direction was
	// wrong (4-cycle redirect).
	PHTMispredicts int64
	// PHTMispredictSlots is the issue-slot cost charged to those events.
	PHTMispredictSlots Slots
	// BTBMisfetches are branches whose target had to be computed at decode
	// (2-cycle redirect): predicted-taken BTB misses and unidentified
	// unconditional branches.
	BTBMisfetches int64
	// BTBMisfetchSlots is the issue-slot cost charged to those events.
	BTBMisfetchSlots Slots
	// BTBMispredicts are indirect transfers whose BTB target was stale
	// (4-cycle redirect).
	BTBMispredicts int64
	// BTBMispredictSlots is the issue-slot cost charged to those events.
	BTBMispredictSlots Slots
}

// Traffic counts line movements between the I-cache and the next level.
type Traffic struct {
	// DemandFills are fills triggered by right-path misses.
	DemandFills uint64
	// WrongPathFills are fills initiated for wrong-path misses.
	WrongPathFills uint64
	// PrefetchFills are next-line (or extension) prefetches issued.
	PrefetchFills uint64
	// L2Hits / L2Misses split the fills by where they were served when a
	// second-level cache is configured (both zero otherwise).
	L2Hits   uint64
	L2Misses uint64
}

// Total returns all line transfers.
func (t Traffic) Total() uint64 { return t.DemandFills + t.WrongPathFills + t.PrefetchFills }
