package metrics

// Cycles and Slots are the simulator's two time-like dimensions. A cycle is
// one tick of the simulated machine clock; a slot is one instruction-issue
// opportunity, of which a width-W machine has exactly W per cycle. The
// paper's central metric — ISPI, issue slots lost per instruction — is pure
// slot arithmetic, and its lost-slot taxonomy (Tables 2–7) only means
// something if slot counts and cycle counts are never conflated.
//
// Both types have int64 underlying, so untyped constants still mix freely
// (`cy + 1`, `slots > 0`), but a Cycles value cannot meet a Slots value in
// arithmetic without going through one of the explicit conversions below.
// The simlint `unitcheck` analyzer enforces the rest of the contract, which
// the compiler cannot: no direct Cycles<->Slots conversion (it would drop
// the fetch-width factor), no silent unwrap to a raw integer type (use
// Int64 at a declared boundary, e.g. wire encode or JSONL export), and no
// width scaling by multiplication outside these helpers.

// Cycles counts simulated machine cycles (timestamps and durations alike;
// the engine's clock starts at 0).
type Cycles int64

// Slots counts instruction-issue slots. Slot quantities come from cycle
// quantities only by scaling with the machine's fetch width.
type Slots int64

// Slots converts the cycle count to the issue slots it spans on a machine
// issuing width instructions per cycle. This is the only sanctioned
// cycles->slots crossing.
func (c Cycles) Slots(width int) Slots { return Slots(c) * Slots(width) }

// Int64 unwraps the cycle count to a raw int64 for wire formats and export
// encodings, which stay untyped by design. Using the named method (rather
// than a bare int64 conversion, which unitcheck rejects) marks the unit
// boundary explicitly.
func (c Cycles) Int64() int64 { return int64(c) }

// Cycles converts the slot count to the whole cycles it fills on a machine
// issuing width instructions per cycle, truncating any partial cycle. This
// is the only sanctioned slots->cycles crossing.
func (s Slots) Cycles(width int) Cycles { return Cycles(s) / Cycles(width) }

// Int64 unwraps the slot count to a raw int64 for wire formats and export
// encodings; see Cycles.Int64.
func (s Slots) Int64() int64 { return int64(s) }

// PerInst returns slots per correct-path instruction — the shape of every
// ISPI figure. Zero instructions yield zero, matching the table builders'
// convention for empty runs.
func (s Slots) PerInst(insts int64) float64 {
	if insts == 0 {
		return 0
	}
	return float64(s) / float64(insts)
}
