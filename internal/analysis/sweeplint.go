package analysis

import (
	"go/ast"
)

// SweepLint bans ad-hoc diagnostics in the distributed-sweep layer. The
// coordinator and worker daemon emit their operational record through the
// structured sweep log (internal/sweeplog): one JSONL decision stream that
// the flight recorder, /sweepz, and the CI fault-injection assertions all
// read. A stray fmt.Fprintf(os.Stderr, ...) or log.Printf in that layer is
// a decision the record silently misses — and, worse, free-form stderr
// writes race with the daemon's "listening on" announcement line that
// tests and scripts parse.
//
// Flagged inside internal/distsweep and cmd/sweepworker:
//
//   - any call to the global log package's printers (log.Print[f|ln],
//     log.Fatal*, log.Panic*), and
//   - any fmt.Fprint/Fprintf/Fprintln whose first argument is the
//     os.Stderr selector.
//
// Printing to an injected io.Writer (the daemon's `stderr` parameter) is
// deliberately out of scope: that path is the test-visible CLI contract,
// not ambient process-global output.
var SweepLint = &Analyzer{
	Name:      "sweeplint",
	Doc:       "distsweep and sweepworker log through sweeplog, not ad-hoc stderr prints",
	AppliesTo: inPaths("internal/distsweep", "cmd/sweepworker"),
	Run:       runSweepLint,
}

// sweepLintLogFuncs are the process-global log printers banned in the
// sweep layer. Setup calls (log.SetOutput, log.New, ...) are not printers
// and stay legal.
var sweepLintLogFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

func runSweepLint(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := calleePkgFunc(info, call)
			switch {
			case pkg == "log" && sweepLintLogFuncs[fn]:
				pass.Reportf(call.Pos(),
					"log.%s in the sweep layer bypasses the structured sweep log; use sweeplog.Logger", fn)
			case pkg == "fmt" && (fn == "Fprint" || fn == "Fprintf" || fn == "Fprintln") && stderrCall(info, call):
				pass.Reportf(call.Pos(),
					"fmt.%s(os.Stderr, ...) in the sweep layer bypasses the structured sweep log; use sweeplog.Logger", fn)
			}
			return true
		})
	}
}
