package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch requires switches over module-defined integer enums (Policy,
// Component, lookupKind, the obs event kinds, ...) to either cover every
// enumerator or carry an explicit default. Without this, adding a seventh
// stall component or a sixth policy compiles cleanly while silently falling
// through existing switches — exactly how accounting cycles get dropped.
//
// An enum is a defined integer type with at least two package-level
// constants of that exact type in its defining package; constants named
// num*/Num* are sentinels (the count idiom) and are not required.
var EnumSwitch = &Analyzer{
	Name: "enumswitch",
	Doc:  "switches over module enums must be exhaustive or have a default",
	Run:  runEnumSwitch,
}

func runEnumSwitch(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(pass, info, sw)
			return true
		})
	}
}

func checkEnumSwitch(pass *Pass, info *types.Info, sw *ast.SwitchStmt) {
	tagType := info.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	defPkg := named.Obj().Pkg()
	if defPkg == nil || !moduleInternal(pass.Pkg.ModulePath, defPkg.Path()) {
		return // only police enums this module defines
	}

	members := enumMembers(defPkg, named)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			if tv, ok := info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []member
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return
	}
	names := make([]string, len(missing))
	for i, m := range missing {
		names[i] = m.name
	}
	pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s (add the cases or an explicit default)",
		named.Obj().Name(), strings.Join(names, ", "))
}

// member is one enumerator, keyed by its exact constant value so aliased
// names count as one.
type member struct {
	name string
	val  string
	ord  int64
}

// enumMembers collects the package-level constants of exactly type named,
// excluding num*/Num* sentinels, deduplicated by value and ordered by it.
func enumMembers(pkg *types.Package, named *types.Named) []member {
	byVal := map[string]member{}
	for _, name := range pkg.Scope().Names() {
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(name, "num") || strings.HasPrefix(name, "Num") {
			continue
		}
		val := c.Val().ExactString()
		if _, seen := byVal[val]; seen {
			continue
		}
		ord, _ := constant.Int64Val(c.Val())
		byVal[val] = member{name: name, val: val, ord: ord}
	}
	out := make([]member, 0, len(byVal))
	for _, m := range byVal {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ord < out[j].ord })
	return out
}

// moduleInternal reports whether path is the module or one of its packages.
func moduleInternal(modPath, path string) bool {
	return path == modPath || strings.HasPrefix(path, modPath+"/")
}
