package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism forbids nondeterminism sources inside the simulator packages:
// wall-clock reads, the process-global math/rand generator, and stores or
// output emission driven by map-iteration order. Simulation results must be
// a pure function of (config, trace, seed) — the probe tests assert
// bit-identical reruns, and every table in the paper reproduction depends
// on it.
//
// internal/hosttime is the one sanctioned wall-clock gateway: host-side
// span timing needs a monotonic clock, and funnelling every read through
// that package keeps the exemption auditable. The analyzer still runs
// there (the rand and map-order rules apply), but the wall-clock rule is
// waived for it and nowhere else.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and map-iteration-ordered " +
		"output in simulator packages (internal/hosttime alone may read the clock)",
	AppliesTo: inPaths("internal/core", "internal/cache", "internal/synth",
		"internal/experiments", "internal/obs", "internal/hosttime"),
	Run: runDeterminism,
}

// wallClockSanctioned reports whether pkgPath is the hosttime gateway (or a
// test unit of it): the only place a wall-clock read is permitted.
func wallClockSanctioned(pkgPath string) bool {
	pkgPath = strings.TrimSuffix(pkgPath, "_test")
	return strings.Contains("/"+pkgPath+"/", "/hosttime/")
}

// wallClockFuncs are time-package functions that read or wait on the wall
// clock. Deterministic uses of package time (constants, formatting a value
// passed in) remain allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandFuncs are the math/rand constructors that take an explicit
// source or seed; every other package-level rand function draws from the
// process-global generator.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// emissionSinks are call names that emit output or accumulate rendered
// results; reached from inside a map range they publish map order.
var emissionSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddRowF": true, "AddBar": true,
	"Render": true, "RenderCSV": true,
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	sanctioned := wallClockSanctioned(pass.Pkg.PkgPath)
	inspectWithStack(pass.Pkg.Files, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.CallExpr:
			pkg, fn := calleePkgFunc(info, n)
			switch pkg {
			case "time":
				if wallClockFuncs[fn] && !sanctioned {
					pass.Reportf(n.Pos(), "time.%s reads the wall clock; simulator results must depend only on (config, trace, seed)", fn)
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn] {
					pass.Reportf(n.Pos(), "package-level rand.%s uses the process-global generator; use a seeded *rand.Rand (see internal/xrand)", fn)
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, stack, n)
		}
		return true
	})
}

// checkMapRange flags statements inside a range-over-map body that leak the
// (randomized) iteration order: emission-sink calls, and stores through
// variables declared outside the loop — unless the stored-to variable is
// sorted afterwards in the same function.
func checkMapRange(pass *Pass, stack []ast.Node, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	fn := enclosingFunc(stack)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			name := calleeName(s)
			if emissionSinks[name] {
				pass.Reportf(s.Pos(), "%s inside a range over a map emits in nondeterministic iteration order; collect and sort first", name)
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkEscapingStore(pass, info, rs, fn, lhs)
			}
		case *ast.IncDecStmt:
			checkEscapingStore(pass, info, rs, fn, s.X)
		}
		return true
	})
}

// checkEscapingStore flags an assignment target rooted at a variable
// declared outside the range statement, unless that variable is later
// passed to a sort call (the collect-then-sort idiom).
func checkEscapingStore(pass *Pass, info *types.Info, rs *ast.RangeStmt, fn ast.Node, lhs ast.Expr) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return // loop-local: order cannot escape
	}
	// The collect-then-sort idiom erases iteration order before use.
	if sortedAfterwards(info, fn, obj) {
		return
	}
	pass.Reportf(lhs.Pos(), "store to %q inside a range over a map happens in nondeterministic iteration order; iterate a sorted key slice instead", id.Name)
}

// sortedAfterwards reports whether fn contains a sort.* / slices.Sort* call
// whose first argument is rooted at obj.
func sortedAfterwards(info *types.Info, fn ast.Node, obj types.Object) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || len(call.Args) == 0 {
			return !found
		}
		pkg, _ := calleePkgFunc(info, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// enclosingFunc returns the innermost FuncDecl/FuncLit on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// calleeName returns the bare name of a call's callee ("Printf" for both
// fmt.Printf and w.Printf).
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
