package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteJSON runs the unitcheck fixture and checks the -json rendering:
// valid JSON, one object per finding in position order, fixture-relative
// paths, and the exact field set CI annotation needs.
func TestWriteJSON(t *testing.T) {
	dir := filepath.Join("testdata", "src", "unitcheck")
	pkgs, err := Load(".", []string{dir})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(pkgs, []*Analyzer{UnitCheck})
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings")
	}
	base, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := WriteJSON(&sb, diags, base); err != nil {
		t.Fatal(err)
	}
	var decoded []DiagnosticJSON
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != len(diags) {
		t.Fatalf("decoded %d findings, want %d", len(decoded), len(diags))
	}
	for i, d := range decoded {
		want := diags[i]
		if d.File != "unitcheck.go" {
			t.Errorf("finding %d file = %q, want fixture-relative %q", i, d.File, "unitcheck.go")
		}
		if d.Line != want.Pos.Line || d.Col != want.Pos.Column {
			t.Errorf("finding %d at %d:%d, want %d:%d", i, d.Line, d.Col, want.Pos.Line, want.Pos.Column)
		}
		if d.Analyzer != "unitcheck" {
			t.Errorf("finding %d analyzer = %q", i, d.Analyzer)
		}
		if d.Message == "" {
			t.Errorf("finding %d has an empty message", i)
		}
		if i > 0 && decoded[i-1].Line > d.Line {
			t.Errorf("findings out of position order at %d", i)
		}
	}

	// A clean run is the empty array, not null — CI consumers index it.
	sb.Reset()
	if err := WriteJSON(&sb, nil, base); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Errorf("empty findings render %q, want []", got)
	}

	// A file outside base stays absolute rather than escaping upward.
	outside := diags[0]
	outside.Pos.Filename = "/nowhere/else.go"
	js := JSONDiagnostics([]Diagnostic{outside}, base)
	if js[0].File != "/nowhere/else.go" {
		t.Errorf("out-of-base file rendered %q, want absolute path", js[0].File)
	}
}
