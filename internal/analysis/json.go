package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// DiagnosticJSON is the machine-readable rendering of one finding, stable
// for CI annotation tooling: file (relative to the lint root when possible),
// 1-based line/column, analyzer name, and message.
type DiagnosticJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// relFile renders file relative to base when it lies under it, mirroring
// Diagnostic.String.
func relFile(base, file string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return file
}

// JSONDiagnostics converts findings to their machine-readable form, in the
// given order (callers pass Run output, already position-sorted).
func JSONDiagnostics(diags []Diagnostic, base string) []DiagnosticJSON {
	out := make([]DiagnosticJSON, len(diags))
	for i, d := range diags {
		out[i] = DiagnosticJSON{
			File:     relFile(base, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	return out
}

// WriteJSON writes the findings to w as one JSON array (never null: a clean
// run is the empty array), newline-terminated.
func WriteJSON(w io.Writer, diags []Diagnostic, base string) error {
	enc := json.NewEncoder(w)
	return enc.Encode(JSONDiagnostics(diags, base))
}
