package analysis

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// TestUnitCheckNegativeFixture proves the analyzer's precision: the
// unitcheckok fixture exercises every sanctioned crossing — Cycles.Slots /
// Slots.Cycles, the Int64 boundary method, float ratios, untyped-constant
// scaling, raw-wrapping conversions, and json-tagged wire fields — and none
// of it may be flagged. (TestAnalyzerFixtures covers recall on the positive
// fixture; it requires at least one finding, so the clean fixture needs its
// own test.)
func TestUnitCheckNegativeFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "unitcheckok")
	pkgs, err := Load(".", []string{dir})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture loaded %d packages, want 1", len(pkgs))
	}
	if errs := pkgs[0].TypeErrors; len(errs) != 0 {
		t.Fatalf("fixture does not type-check: %v", errs)
	}
	for _, d := range Run(pkgs, []*Analyzer{UnitCheck}) {
		t.Errorf("sanctioned form flagged: %s", d.String(""))
	}
}

// TestLoadResolvesUnitMethodSetsAcrossPackages proves the loader stands up
// defined-type method sets across package boundaries: internal/obs calls
// (until - cy).Slots(width) on metrics.Cycles values it never defines, so a
// loader that dropped cross-package method sets would report type errors
// there. The test pins the mechanism (the method set on the imported Named
// type) and the outcome (obs type-checks and is unitcheck-clean).
func TestLoadResolvesUnitMethodSetsAcrossPackages(t *testing.T) {
	pkgs, err := Load(".", []string{"../obs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from ../obs")
	}
	var obsPkg *Package
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: type errors (unit method sets unresolved?): %v", p.PkgPath, p.TypeErrors)
		}
		if strings.HasSuffix(p.PkgPath, "internal/obs") {
			obsPkg = p
		}
	}
	if obsPkg == nil {
		t.Fatal("internal/obs not among the loaded packages")
	}

	// The metrics import inside the loaded obs package must carry the unit
	// types with their full method sets.
	var metricsPkg *types.Package
	for _, imp := range obsPkg.Types.Imports() {
		if strings.HasSuffix(imp.Path(), "internal/metrics") {
			metricsPkg = imp
		}
	}
	if metricsPkg == nil {
		t.Fatal("internal/metrics not among obs imports")
	}
	for typ, methods := range map[string][]string{
		"Cycles": {"Slots", "Int64"},
		"Slots":  {"Cycles", "Int64", "PerInst"},
	} {
		obj, ok := metricsPkg.Scope().Lookup(typ).(*types.TypeName)
		if !ok {
			t.Fatalf("metrics.%s not found in the loaded import", typ)
		}
		mset := types.NewMethodSet(obj.Type())
		for _, m := range methods {
			found := false
			for i := 0; i < mset.Len(); i++ {
				if mset.At(i).Obj().Name() == m {
					found = true
				}
			}
			if !found {
				t.Errorf("metrics.%s method set lacks %s (have %v)", typ, m, mset)
			}
		}
	}

	// And the refactored tree itself is clean under the analyzer.
	for _, d := range Run(pkgs, []*Analyzer{UnitCheck}) {
		t.Errorf("internal/obs not unitcheck-clean: %s", d.String(""))
	}
}
