// Package errcheck is the errcheck analyzer's fixture: call statements
// discarding a final error result are findings unless assigned to _ or
// writing best-effort diagnostics to os.Stderr.
package errcheck

import (
	"fmt"
	"io"
	"os"
)

func dropped(w io.Closer) {
	w.Close()
}

func deferredDrop(w io.Closer) {
	defer w.Close()
}

func goDrop(w io.Closer) {
	go w.Close()
}

func silentArtifactWrite(w io.Writer, err error) {
	fmt.Fprintf(w, "warn: %v\n", err)
}

// Explicit discard is the approved way to say "best effort".
func explicitDiscard(w io.Closer) {
	_ = w.Close()
}

// Propagating is obviously fine.
func propagated(w io.Closer) error {
	return w.Close()
}

// Diagnostics on the error path go to stderr; their own error is noise.
func stderrDiagnostics(err error) {
	fmt.Fprintf(os.Stderr, "warn: %v\n", err)
}

// Calls without a final error result are out of scope.
func noErrorResult(xs []int) {
	print(len(xs))
}
