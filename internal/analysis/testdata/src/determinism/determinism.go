// Package determinism is the determinism analyzer's fixture: wall-clock
// reads, process-global rand draws, and map-iteration-ordered stores and
// output are findings; seeded RNGs, loop-local state, and the
// collect-then-sort idiom are not.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

// Deterministic uses of package time are allowed.
func formatting(d time.Duration) string { return d.String() }

func globalRand() int {
	return rand.Intn(6)
}

// Seeded constructors are the approved path.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

func emitInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func storeInMapOrder(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func accumulateInMapOrder(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Collect-then-sort erases iteration order before use: no finding.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Loop-local stores cannot leak iteration order: no finding.
func loopLocal(m map[string]int) {
	for _, v := range m {
		double := v * 2
		_ = double
	}
}

// Ranging over a slice is always ordered: no finding.
func sliceRange(xs []int, out map[int]bool) {
	for _, x := range xs {
		out[x] = true
	}
}
