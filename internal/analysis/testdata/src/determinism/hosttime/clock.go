// Package hosttime is the determinism analyzer's allowlist fixture: it sits
// under a "hosttime" path segment, so its wall-clock reads are sanctioned
// and must produce zero findings — while the identical calls in the parent
// determinism fixture stay flagged. The other determinism rules are NOT
// waived here; this fixture deliberately contains only clock reads.
package hosttime

import "time"

func now() time.Time { return time.Now() }

func elapsed(start time.Time) time.Duration { return time.Since(start) }
