// Package unitcheck is the unitcheck analyzer's fixture: every way the
// Cycles/Slots dimensional contract can be broken without a compile error —
// cross-conversions, raw-integer unwraps, hand-rolled width products, and
// raw declarations whose names claim a unit. The interleaved sanctioned
// forms (helper crossings, Int64 boundaries, float ratios, constant scales)
// must produce no findings; the unitcheckok fixture covers them
// exhaustively.
package unitcheck

import "specfetch/internal/metrics"

// crossConversions re-label one unit as the other, silently dropping the
// fetch-width factor. Both directions are findings.
func crossConversions(c metrics.Cycles, s metrics.Slots) {
	_ = metrics.Slots(c)  // want: direct Cycles -> Slots conversion
	_ = metrics.Cycles(s) // want: direct Slots -> Cycles conversion
	_ = c.Slots(4)        // sanctioned crossing: no finding
	_ = s.Cycles(4)       // sanctioned crossing: no finding
}

// intUnwraps launder the dimension away mid-expression instead of crossing
// at a declared Int64 boundary.
func intUnwraps(c metrics.Cycles, s metrics.Slots) {
	_ = int64(c)  // want: unwrapped to raw int64
	_ = int(s)    // want: unwrapped to raw int
	_ = uint64(c) // want: unwrapped to raw uint64
	_ = c.Int64() // sanctioned boundary: no finding
	// Dimensionless ratios leave the unit system through floats, legally.
	_ = float64(s) / float64(c.Int64())
}

// handRolledScaling multiplies two unit-typed values: width scaling written
// by hand, where a transposed factor is invisible.
func handRolledScaling(c metrics.Cycles, s metrics.Slots, width int) metrics.Slots {
	_ = metrics.Cycles(int64(width)) * c // want: product of two unit-typed values
	_ = s * metrics.Slots(int64(width))  // want: product of two unit-typed values
	_ = c * 2                            // constant scale: no finding
	_ = metrics.Slots(4) * s             // constant operand: no finding
	return c.Slots(width)                // the sanctioned form
}

// rawDecls claim a unit by name but revert to the untyped world.
type rawDecls struct {
	StallCycles int64 // want: field declared as raw int64
	LostSlots   int64 // want: field declared as raw int64

	// Wire/export fields stay raw int64 by design; the json tag marks the
	// boundary.
	Cycles int64 `json:"cycles"`
	Slots  int64 `json:"slots,omitempty"`
}

// rawSignature's parameter and named result claim units over raw integers.
func rawSignature(cy int64) (fillCycles int64) { // want: parameter cy, result fillCycles
	var idleSlots int64 // want: var declared as raw int64
	_ = idleSlots
	var insts int64 // unit-free name: no finding
	_ = insts
	return cy
}
