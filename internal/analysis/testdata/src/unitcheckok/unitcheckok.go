// Package unitcheckok is the unitcheck analyzer's negative fixture: every
// sanctioned way to move between Cycles, Slots, and the raw-integer world.
// The analyzer must report nothing here — each form below is the one the
// diagnostics in the positive fixture tell the author to use.
package unitcheckok

import "specfetch/internal/metrics"

// helperCrossings use the width-carrying conversion methods, the only legal
// Cycles<->Slots crossings.
func helperCrossings(c metrics.Cycles, s metrics.Slots, width int) {
	_ = c.Slots(width)
	_ = s.Cycles(width)
	_ = (c + 3).Slots(width)    // method on a derived expression
	_ = (s - s/2).Cycles(width) // same-unit arithmetic stays typed
	_ = c.Slots(width) + s      // the result participates as Slots
	_ = s.PerInst(1000)         // dimensionless ratio via the helper
}

// boundaries unwrap through the named Int64 method and wrap raw integers
// into the unit system with plain conversions — both directions are
// explicit and legal.
func boundaries(c metrics.Cycles, s metrics.Slots, raw int64) {
	_ = c.Int64()
	_ = s.Int64()
	_ = metrics.Cycles(raw)     // entering the unit system is fine
	_ = metrics.Slots(raw + 1)  // including from expressions
	_ = metrics.Cycles(7)       // and from constants
	_ = float64(c) / float64(s) // float conversions are dimensionless ratios
}

// untypedScaling multiplies by untyped constants, which the unit types
// absorb without a conversion.
func untypedScaling(c metrics.Cycles, s metrics.Slots) {
	_ = c * 2
	_ = 3 * s
	_ = c + 1
	_ = s % 4
	if c > 100 && s >= 0 {
		return
	}
}

// wire is an export struct: json-tagged fields stay raw int64 by design,
// with conversions at encode time.
type wire struct {
	Cy    int64 `json:"cy"`
	Until int64 `json:"until,omitempty"`
	Slots int64 `json:"slots,omitempty"`
}

// encode crosses the boundary exactly once, at the wire struct literal.
func encode(c metrics.Cycles, s metrics.Slots) wire {
	return wire{Cy: c.Int64(), Until: (c + 5).Int64(), Slots: s.Int64()}
}
