// Package probeguard is the probeguard analyzer's fixture: calls through
// fields named probe/sampler must be dominated by a nil check on the exact
// receiver, and guards must not cross function-literal boundaries.
package probeguard

type hook interface {
	Fire(cy int64)
}

type engine struct {
	probe   hook
	sampler hook
}

func (e *engine) guardedThen(cy int64) {
	if e.probe != nil {
		e.probe.Fire(cy)
	}
}

func (e *engine) guardedElse(cy int64) {
	if e.probe == nil {
		_ = cy
	} else {
		e.probe.Fire(cy)
	}
}

func (e *engine) earlyOut(cy int64) {
	if e.sampler == nil {
		return
	}
	e.sampler.Fire(cy)
}

func (e *engine) conjunctionWidens(cy int64, on bool) {
	if e.probe != nil && on {
		e.probe.Fire(cy)
	}
}

func (e *engine) disjunctionEarlyOut(cy int64, off bool) {
	if e.probe == nil || off {
		return
	}
	e.probe.Fire(cy)
}

func (e *engine) unguarded(cy int64) {
	e.probe.Fire(cy)
}

func (e *engine) wrongReceiverGuard(cy int64) {
	if e.sampler != nil {
		e.probe.Fire(cy)
	}
}

func (e *engine) guardDoesNotCrossClosure(cy int64) func() {
	if e.probe != nil {
		return func() { e.probe.Fire(cy) }
	}
	return nil
}

func (e *engine) disjunctionTooWeak(cy int64, on bool) {
	if e.probe != nil || on {
		e.probe.Fire(cy)
	}
}

func (e *engine) staleGuardNilWrite(cy int64) {
	if e.probe != nil {
		e.probe = nil
		e.probe.Fire(cy)
	}
}

func (e *engine) staleGuardAfterEarlyOut(cy int64, h hook) {
	if e.probe == nil {
		return
	}
	e.probe = h
	e.probe.Fire(cy)
}

func (e *engine) writeBeforeGuardOK(cy int64, h hook) {
	e.probe = h
	if e.probe != nil {
		e.probe.Fire(cy)
	}
}

func (e *engine) writeAfterCallOK(cy int64) {
	if e.probe != nil {
		e.probe.Fire(cy)
		e.probe = nil
	}
}

func (e *engine) closureWriteDoesNotInvalidate(cy int64) func() {
	if e.probe != nil {
		later := func() { e.probe = nil }
		e.probe.Fire(cy)
		return later
	}
	return nil
}

func (e *engine) unrelatedWriteOK(cy int64, h hook) {
	if e.probe != nil {
		e.sampler = h
		e.probe.Fire(cy)
	}
}
