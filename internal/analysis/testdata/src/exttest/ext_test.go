// The external test package: the loader must stand this up as its own
// unit ("…/exttest_test") for the analyzers to see the findings below.
package exttest_test

import (
	"testing"
	"time"

	"specfetch/internal/analysis/testdata/src/exttest"
)

// TestValue carries the deliberate findings: a wall-clock read
// (determinism) hiding in an external test file.
func TestValue(t *testing.T) {
	start := time.Now() // finding: wall-clock read
	if exttest.Value() != 42 {
		t.Fatal("wrong value")
	}
	_ = start
}
