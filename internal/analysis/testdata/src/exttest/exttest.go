// Package exttest is the loader fixture for external test packages: this
// file is clean, and the deliberate findings live in the exttest_test
// package next to it. If the loader drops external _test packages again,
// the fixture produces no diagnostics and the test fails.
package exttest

// Value returns a fixed number so the external test has something to
// import and check.
func Value() int { return 42 }
