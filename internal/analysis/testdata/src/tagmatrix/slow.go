//go:build slowclock

package tagmatrix

import "time"

// Stamp reads the wall clock, but only builds under -tags slowclock: a
// default-tag lint never parses this file, so the finding below proves
// the matrix variant ran.
func Stamp() time.Time {
	return time.Now()
}
