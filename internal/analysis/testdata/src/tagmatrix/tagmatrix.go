// Package tagmatrix is the tag-matrix fixture: the always-built file has
// one finding (seen by every matrix variant, reported once), and a second
// finding hides behind the slowclock build tag — only a matrix load that
// re-parses the package with the tag enabled sees it.
package tagmatrix

import "math/rand"

// Roll draws from the process-global generator: a determinism finding in
// every variant, which the matrix must deduplicate to one.
func Roll() int {
	return rand.Intn(6)
}
