// Package sweeplint is the sweeplint analyzer's fixture: ad-hoc stderr
// prints and global-log printers are findings; writes to an injected
// io.Writer and to non-stderr destinations are not.
package sweeplint

import (
	"fmt"
	"io"
	"log"
	"os"
)

func globalLogPrint(n int) {
	log.Printf("dispatched batch %d", n)
}

func globalLogFatal(err error) {
	log.Fatal(err)
}

func globalLogPanicln(err error) {
	log.Panicln("sweep wedged:", err)
}

func stderrPrintf(err error) {
	fmt.Fprintf(os.Stderr, "retrying: %v\n", err)
}

func stderrPrintln() {
	fmt.Fprintln(os.Stderr, "worker evicted")
}

// Writing to an injected sink is the CLI contract, not ambient output.
func injectedWriter(w io.Writer, addr string) {
	fmt.Fprintf(w, "listening on %s\n", addr)
}

// Non-stderr fmt output is out of scope.
func stdoutTable() {
	fmt.Fprintln(os.Stdout, "policy  ipc")
}

// Constructing a scoped logger is setup, not printing.
func scopedLogger(w io.Writer) *log.Logger {
	return log.New(w, "sweep: ", 0)
}
