// Package enumswitch is the enumswitch analyzer's fixture: switches over
// module-defined integer enums must cover every enumerator or carry an
// explicit default. num*/Num* sentinels are exempt, aliased values count
// once, and enums defined outside the module are not policed.
package enumswitch

import "reflect"

type color uint8

const (
	red color = iota
	green
	blue

	numColors // count sentinel: never required in switches
)

// crimson aliases red's value; covering red covers it.
const crimson = red

func exhaustive(c color) string {
	switch c {
	case red:
		return "red"
	case green:
		return "green"
	case blue:
		return "blue"
	}
	return "?"
}

func defaulted(c color) string {
	switch c {
	case red:
		return "red"
	default:
		return "other"
	}
}

func missingCases(c color) string {
	switch c {
	case red:
		return "red"
	}
	return "?"
}

// Plain integers are not enums.
func overInt(n int) bool {
	switch n {
	case 0:
		return true
	}
	return false
}

// reflect.Kind is an enum, but not one this module defines.
func externalEnum(k reflect.Kind) bool {
	switch k {
	case reflect.Bool:
		return true
	}
	return false
}
