package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture golden files")

// TestAnalyzerFixtures runs each analyzer over its own fixture package and
// compares the rendered diagnostics against the checked-in golden file.
// Regenerate with `go test ./internal/analysis -run Fixtures -update`.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			pkgs, err := Load(".", []string{dir})
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("fixture loaded %d packages, want 1", len(pkgs))
			}
			if errs := pkgs[0].TypeErrors; len(errs) != 0 {
				t.Fatalf("fixture does not type-check: %v", errs)
			}

			diags := Run(pkgs, []*Analyzer{a})
			if len(diags) == 0 {
				t.Fatalf("fixture produced no findings; the analyzer is not firing")
			}
			base, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, d := range diags {
				sb.WriteString(d.String(base))
				sb.WriteByte('\n')
			}
			got := sb.String()

			golden := filepath.Join(dir, a.Name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestExternalTestPackageFixture proves Load stands up external foo_test
// packages: the exttest fixture's base package is clean and its only
// finding lives in an exttest_test file, so any diagnostic at all means
// the external unit was parsed, type-checked, and analyzed.
func TestExternalTestPackageFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "exttest")
	pkgs, err := Load(".", []string{dir})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("fixture loaded %d packages, want 2 (base + external test)", len(pkgs))
	}
	if !strings.HasSuffix(pkgs[0].PkgPath, "/exttest") {
		t.Fatalf("base unit path = %q, want .../exttest", pkgs[0].PkgPath)
	}
	if !strings.HasSuffix(pkgs[1].PkgPath, "/exttest_test") {
		t.Fatalf("external unit path = %q, want .../exttest_test", pkgs[1].PkgPath)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: fixture does not type-check: %v", p.PkgPath, p.TypeErrors)
		}
	}

	diags := Run(pkgs, All())
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings; the external test package was not analyzed")
	}
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) != "ext_test.go" {
			t.Errorf("finding outside the external test file: %s", d.String(""))
		}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String(absDir))
		sb.WriteByte('\n')
	}
	got := sb.String()

	golden := filepath.Join(dir, "exttest.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestHosttimeWallClockSanctioned proves the wall-clock allowlist cuts
// exactly one way: the hosttime fixture's time.Now/time.Since produce zero
// determinism findings, while the identical calls in the parent determinism
// fixture (no hosttime path segment) are still flagged.
func TestHosttimeWallClockSanctioned(t *testing.T) {
	dir := filepath.Join("testdata", "src", "determinism", "hosttime")
	pkgs, err := Load(".", []string{dir})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture loaded %d packages, want 1", len(pkgs))
	}
	if errs := pkgs[0].TypeErrors; len(errs) != 0 {
		t.Fatalf("fixture does not type-check: %v", errs)
	}
	if diags := Run(pkgs, []*Analyzer{Determinism}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("sanctioned hosttime fixture flagged: %s", d.String(""))
		}
	}

	// The exemption must not leak outside a hosttime path segment: the
	// plain determinism fixture keeps its wall-clock findings.
	unsanctioned, err := Load(".", []string{filepath.Join("testdata", "src", "determinism")})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	found := false
	for _, d := range Run(unsanctioned, []*Analyzer{Determinism}) {
		if strings.Contains(d.Message, "time.Now") {
			found = true
		}
	}
	if !found {
		t.Error("time.Now outside hosttime no longer flagged; the allowlist leaked")
	}
}

// TestLoadRepo checks the loader stands up the whole module offline: every
// package parses and type-checks with stdlib imports resolved from export
// data.
func TestLoadRepo(t *testing.T) {
	pkgs, err := Load(".", []string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded from the module root", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Errorf("%s: type errors: %v", p.PkgPath, p.TypeErrors)
		}
	}
}

// TestByName covers the -only flag's analyzer resolution.
func TestByName(t *testing.T) {
	as, err := ByName("determinism, errcheck")
	if err != nil || len(as) != 2 || as[0].Name != "determinism" || as[1].Name != "errcheck" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown analyzer accepted")
	}
}
