package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitCheck enforces the dimensional contract between the simulator's two
// time-like quantities, metrics.Cycles and metrics.Slots (slots = cycles ×
// fetch width; the paper's ISPI tables are pure slot arithmetic). The
// compiler already rejects mixed Cycles/Slots arithmetic because they are
// distinct defined types; this analyzer covers the escapes the type system
// permits:
//
//   - a direct conversion between the unit types (Slots(c) on a Cycles
//     value, or the reverse) type-checks but silently drops the fetch-width
//     factor — the only sanctioned crossings are Cycles.Slots(width) and
//     Slots.Cycles(width);
//   - a conversion from a unit type to a raw integer type (int64(c),
//     int(s), uint64(c), a named integer type) launders the dimension away
//     mid-expression — unit values leave the system only through the
//     explicit Int64 boundary method (float conversions stay legal: ratios
//     such as IPC and ISPI are dimensionless by construction);
//   - a product of two non-constant unit-typed operands re-implements width
//     scaling outside the helpers (for example Cycles(width) * c), where a
//     transposed factor is invisible to review — scaling by an untyped
//     constant (c * 2) stays legal;
//   - an int64/int declaration (struct field, parameter, result, var/const)
//     whose name says it holds cycles or slots is a silent reversion to the
//     untyped world. Wire-format and export fields carrying a json tag are
//     exempt — wire encodings stay raw int64 by design, with conversions at
//     encode/decode.
//
// Methods declared on the unit types themselves (the conversion helpers in
// internal/metrics/unit.go) are exempt from all rules: they are the one
// place the raw representation is allowed to show.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "cycle and issue-slot quantities use metrics.Cycles/Slots and never mix without an explicit conversion",
	AppliesTo: inPaths("internal/core", "internal/cache", "internal/metrics", "internal/obs",
		"internal/experiments", "internal/distsweep", "cmd"),
	Run: runUnitCheck,
}

// unitTypeName reports which unit type t is: "Cycles", "Slots", or "" for
// anything else. Aliases (core.Cycles, specfetch.Slots) resolve to the same
// named type, so they are covered for free.
func unitTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/metrics") {
		return ""
	}
	if n := obj.Name(); n == "Cycles" || n == "Slots" {
		return n
	}
	return ""
}

// rawIntName reports the name of a raw (non-unit) integer type, or "" when
// t is not an integer type or is itself a unit type.
func rawIntName(t types.Type) string {
	if unitTypeName(t) != "" {
		return ""
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
		return types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
	return ""
}

// rawBasicIntName is rawIntName restricted to the bare builtin types the
// pre-split code used for both quantities. The declaration heuristic only
// fires on these: a named integer type (an enum, a worker-slot id) is
// already a deliberate typing decision, not a unit reversion.
func rawBasicIntName(t types.Type) string {
	b, ok := t.(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Int, types.Int64:
		return b.Name()
	}
	return ""
}

// unitishName guesses the unit a raw-integer declaration's name claims to
// hold: names ending in cycle/cycles (or exactly "cy", the engine's clock
// convention) read as cycle counts, names ending in slot/slots as slot
// counts.
func unitishName(name string) string {
	lower := strings.ToLower(name)
	switch {
	case lower == "cy", strings.HasSuffix(lower, "cycle"), strings.HasSuffix(lower, "cycles"):
		return "Cycles"
	case strings.HasSuffix(lower, "slots"):
		// Only the plural: a singular "slot" is an index (fetch-group
		// position, worker slot), not a lost-opportunity count.
		return "Slots"
	}
	return ""
}

func runUnitCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && unitReceiver(info, fd) {
				continue // the sanctioned conversion helpers themselves
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkUnitConversion(pass, info, n)
				case *ast.BinaryExpr:
					checkUnitProduct(pass, info, n)
				case *ast.StructType:
					checkUnitFields(pass, info, n)
				case *ast.FuncType:
					checkUnitSignature(pass, info, n)
				case *ast.ValueSpec:
					checkUnitValueSpec(pass, info, n)
				}
				return true
			})
		}
	}
}

// unitReceiver reports whether fd is a method declared on Cycles or Slots.
func unitReceiver(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	return unitTypeName(info.TypeOf(fd.Recv.List[0].Type)) != ""
}

// checkUnitConversion flags T(x) conversions that cross between the unit
// types or unwrap a unit value to a raw integer type.
func checkUnitConversion(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	target := tv.Type
	argUnit := unitTypeName(info.TypeOf(call.Args[0]))
	if argUnit == "" {
		return
	}
	switch targetUnit := unitTypeName(target); {
	case targetUnit != "" && targetUnit != argUnit:
		helper := "Cycles.Slots(width)"
		if argUnit == "Slots" {
			helper = "Slots.Cycles(width)"
		}
		pass.Reportf(call.Pos(),
			"direct %s -> %s conversion drops the fetch-width factor; use %s", argUnit, targetUnit, helper)
	case targetUnit == "":
		if raw := rawIntName(target); raw != "" {
			pass.Reportf(call.Pos(),
				"%s value unwrapped to raw %s; cross the unit boundary explicitly with the Int64 method", argUnit, raw)
		}
	}
}

// checkUnitProduct flags a product of two non-constant unit-typed operands:
// width scaling written by hand instead of through the helpers.
func checkUnitProduct(pass *Pass, info *types.Info, bin *ast.BinaryExpr) {
	if bin.Op != token.MUL {
		return
	}
	xUnit := unitTypeName(info.TypeOf(bin.X))
	yUnit := unitTypeName(info.TypeOf(bin.Y))
	if xUnit == "" || yUnit == "" {
		return
	}
	if xtv, ok := info.Types[bin.X]; ok && xtv.Value != nil {
		return // constant scale factor, e.g. Cycles(2) * c
	}
	if ytv, ok := info.Types[bin.Y]; ok && ytv.Value != nil {
		return
	}
	pass.Reportf(bin.Pos(),
		"product of two unit-typed values (%s * %s); width scaling belongs in Cycles.Slots/Slots.Cycles", xUnit, yUnit)
}

// checkUnitFields flags raw-integer struct fields whose names claim a unit,
// except wire/export fields carrying a json tag.
func checkUnitFields(pass *Pass, info *types.Info, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if field.Tag != nil && strings.Contains(field.Tag.Value, `json:"`) {
			continue // wire formats stay raw int64 by design
		}
		raw := rawBasicIntName(info.TypeOf(field.Type))
		if raw == "" {
			continue
		}
		for _, name := range field.Names {
			if unit := unitishName(name.Name); unit != "" {
				pass.Reportf(name.Pos(),
					"field %s declared as raw %s; a %s count should be metrics.%s", name.Name, raw, strings.ToLower(unit), unit)
			}
		}
	}
}

// checkUnitSignature flags raw-integer parameters and named results whose
// names claim a unit.
func checkUnitSignature(pass *Pass, info *types.Info, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			raw := rawBasicIntName(info.TypeOf(field.Type))
			if raw == "" {
				continue
			}
			for _, name := range field.Names {
				if unit := unitishName(name.Name); unit != "" {
					pass.Reportf(name.Pos(),
						"%s %s declared as raw %s; a %s count should be metrics.%s", what, name.Name, raw, strings.ToLower(unit), unit)
				}
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkUnitValueSpec flags raw-integer var/const declarations whose names
// claim a unit. Only explicitly typed specs are checked: the declared type
// is the author's statement of intent.
func checkUnitValueSpec(pass *Pass, info *types.Info, spec *ast.ValueSpec) {
	if spec.Type == nil {
		return
	}
	raw := rawBasicIntName(info.TypeOf(spec.Type))
	if raw == "" {
		return
	}
	for _, name := range spec.Names {
		if name.Name == "_" {
			continue
		}
		if unit := unitishName(name.Name); unit != "" {
			pass.Reportf(name.Pos(),
				"%s declared as raw %s; a %s count should be metrics.%s", name.Name, raw, strings.ToLower(unit), unit)
		}
	}
}
