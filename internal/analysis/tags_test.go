package analysis

import (
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// parseHeader parses a source snippet with comments, for constraint tests.
func parseHeader(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestTagMatrixFixture proves the matrix closes the tag-gated blind spot:
// the default load of the tagmatrix fixture never parses slow.go, the
// slowclock variant does, and the merged findings contain both the
// tag-gated wall-clock read and — exactly once — the finding in the
// always-built file.
func TestTagMatrixFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "tagmatrix")

	base, err := Load(".", []string{dir})
	if err != nil {
		t.Fatalf("default load: %v", err)
	}
	for _, d := range Run(base, []*Analyzer{Determinism}) {
		if filepath.Base(d.Pos.Filename) == "slow.go" {
			t.Fatalf("default load saw the tag-gated file: %s", d.String(""))
		}
	}

	tags, err := CollectBuildTags(".", []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tags, []string{"slowclock"}) {
		t.Fatalf("CollectBuildTags = %v, want [slowclock]", tags)
	}

	variants, err := LoadMatrix(".", []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 2 {
		t.Fatalf("matrix has %d variants, want 2 (default + slowclock)", len(variants))
	}
	if got := variants[1].Label(); got != "tags=slowclock" {
		t.Errorf("variant label = %q, want tags=slowclock", got)
	}
	for _, v := range variants {
		for _, pkg := range v.Pkgs {
			if len(pkg.TypeErrors) != 0 {
				t.Fatalf("%s (%s): fixture does not type-check: %v", pkg.PkgPath, v.Label(), pkg.TypeErrors)
			}
		}
	}

	diags := RunMatrix(variants, []*Analyzer{Determinism})
	var rolls, stamps int
	for _, d := range diags {
		switch filepath.Base(d.Pos.Filename) {
		case "tagmatrix.go":
			rolls++
		case "slow.go":
			stamps++
		}
	}
	if rolls != 1 {
		t.Errorf("always-built finding reported %d times, want exactly 1 (dedup)", rolls)
	}
	if stamps != 1 {
		t.Errorf("tag-gated finding reported %d times, want 1 (matrix variant)", stamps)
	}

	absDir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String(absDir))
		sb.WriteByte('\n')
	}
	got := sb.String()
	golden := filepath.Join(dir, "tagmatrix.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestTagSatisfied pins the default-environment tag semantics the loader's
// file filter is built on.
func TestTagSatisfied(t *testing.T) {
	cases := []struct {
		tag   string
		extra map[string]bool
		want  bool
	}{
		{"linux", nil, true},      // runtime.GOOS in CI and dev here
		{"windows", nil, false},   // foreign platform
		{"gc", nil, true},         // this toolchain
		{"go1.2", nil, true},      // release tags all satisfied
		{"slowclock", nil, false}, // custom tag off by default
		{"slowclock", map[string]bool{"slowclock": true}, true},
	}
	for _, c := range cases {
		if got := tagSatisfied(c.tag, c.extra); got != c.want {
			t.Errorf("tagSatisfied(%q, %v) = %v, want %v", c.tag, c.extra, got, c.want)
		}
	}
}

// TestFileConstraintLegacy: multiple legacy // +build lines AND together.
func TestFileConstraintLegacy(t *testing.T) {
	src := "// +build linux darwin\n// +build slowclock\n\npackage p\n"
	f := parseHeader(t, src)
	e := fileConstraint(f)
	if e == nil {
		t.Fatal("no constraint extracted from +build lines")
	}
	sat := func(extra map[string]bool) bool {
		return e.Eval(func(tag string) bool { return tagSatisfied(tag, extra) })
	}
	if sat(nil) {
		t.Error("constraint satisfied without the slowclock tag")
	}
	if !sat(map[string]bool{"slowclock": true}) {
		t.Error("constraint unsatisfied with the slowclock tag enabled")
	}
	tags := map[string]bool{}
	collectExprTags(e, tags)
	for _, want := range []string{"linux", "darwin", "slowclock"} {
		if !tags[want] {
			t.Errorf("collectExprTags missed %q (got %v)", want, tags)
		}
	}
}

// TestConstraintAfterPackageIgnored: a //go:build-shaped comment below the
// package clause is ordinary text, not a constraint.
func TestConstraintAfterPackageIgnored(t *testing.T) {
	src := "package p\n\n//go:build slowclock\nvar X int\n"
	if e := fileConstraint(parseHeader(t, src)); e != nil {
		t.Errorf("comment after package clause treated as constraint: %v", constraint.Expr(e))
	}
}
