package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ProbeGuard enforces the engine's zero-overhead observability contract:
// every call through a field named `probe` or `sampler` (the engine's
// obs.Probe / obs.Sampler hooks) must be dominated by a nil check, so the
// disabled path costs exactly one predictable branch per hook and never
// dereferences a nil interface.
//
// Accepted guard shapes, checked syntactically on the receiver's printed
// form (e.g. "e.probe"):
//
//	if e.probe != nil { e.probe.Hook(...) }          // then-branch
//	if e.probe == nil { ... } else { e.probe.Hook() } // else-branch
//	if e.probe == nil { return }                     // leading early-out
//	e.probe.Hook(...)
//
// Conjunctions widen then-guards (p != nil && x), disjunctions widen
// nil-tests (p == nil || x). Guards do not cross function-literal
// boundaries: a closure may run after the guard's check went stale.
//
// A guard is also rejected when the guarded field is assigned between the
// nil check and the call (`if e.probe != nil { e.probe = nil; e.probe.Hook() }`):
// the check no longer speaks for the value being dereferenced. Writes
// nested in function literals are ignored — they execute later, if ever.
var ProbeGuard = &Analyzer{
	Name:      "probeguard",
	Doc:       "probe/sampler hook calls in the engine must be nil-guarded",
	AppliesTo: inPaths("internal/core"),
	Run:       runProbeGuard,
}

func runProbeGuard(pass *Pass) {
	inspectWithStack(pass.Pkg.Files, func(stack []ast.Node) bool {
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := probeReceiver(call)
		if recv == nil {
			return true
		}
		recvStr := types.ExprString(recv)
		ok, stale := guarded(stack, recvStr, call.Pos())
		if !ok {
			sel := call.Fun.(*ast.SelectorExpr)
			if stale {
				pass.Reportf(call.Pos(), "%s.%s: nil guard invalidated by a write to %s between the check and the call (zero-overhead probe contract)",
					recvStr, sel.Sel.Name, recvStr)
			} else {
				pass.Reportf(call.Pos(), "%s.%s called without a dominating `%s != nil` check (zero-overhead probe contract)",
					recvStr, sel.Sel.Name, recvStr)
			}
		}
		return true
	})
}

// probeReceiver matches calls of the form X.probe.M(...) / X.sampler.M(...)
// (or a bare probe.M(...) on a local), returning the probe-valued operand.
func probeReceiver(call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name == "probe" || x.Sel.Name == "sampler" {
			return x
		}
	case *ast.Ident:
		if x.Name == "probe" || x.Name == "sampler" {
			return x
		}
	}
	return nil
}

// guarded reports whether the innermost stack node (the call) is dominated
// by a nil check for recv that is still valid at the call: a guard whose
// dominated region assigns to recv before the call no longer speaks for
// the dereferenced value. stale is true when at least one guard matched
// but every match was invalidated by such a write.
func guarded(stack []ast.Node, recv string, callPos token.Pos) (ok, stale bool) {
	child := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false, stale // guards don't cross function boundaries
		case *ast.IfStmt:
			if child == n.Body && impliesNonNil(n.Cond, recv) {
				if !assignsWithin(n.Body, recv, n.Body.Pos(), callPos) {
					return true, false
				}
				stale = true
			}
			if child == n.Else && impliedByNil(n.Cond, recv) {
				if !assignsWithin(n.Else, recv, n.Else.Pos(), callPos) {
					return true, false
				}
				stale = true
			}
		case *ast.BlockStmt:
			if end, found := leadingGuard(n, child, recv); found {
				if !assignsWithin(n, recv, end, callPos) {
					return true, false
				}
				stale = true
			}
		}
		child = stack[i]
	}
	return false, stale
}

// leadingGuard scans the statements of block before the one containing
// child for an `if recv == nil { return/panic }` early-out, returning the
// guard's end position on a match.
func leadingGuard(block *ast.BlockStmt, child ast.Node, recv string) (token.Pos, bool) {
	for _, stmt := range block.List {
		if stmt == child {
			return token.NoPos, false
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Init != nil || !impliedByNil(ifs.Cond, recv) {
			continue
		}
		if len(ifs.Body.List) == 0 {
			continue
		}
		switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return ifs.End(), true
		case *ast.ExprStmt:
			if c, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return ifs.End(), true
				}
			}
		}
	}
	return token.NoPos, false
}

// assignsWithin reports whether region assigns to recv strictly inside the
// (after, before) position window. Function literals are skipped: a write
// inside a closure defined between guard and call runs later, if ever, so
// it cannot invalidate the straight-line guard.
func assignsWithin(region ast.Node, recv string, after, before token.Pos) bool {
	found := false
	ast.Inspect(region, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if x.Pos() <= after || x.Pos() >= before {
				return true
			}
			for _, lhs := range x.Lhs {
				if types.ExprString(ast.Unparen(lhs)) == recv {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// impliesNonNil: cond true ⇒ recv != nil.
func impliesNonNil(cond ast.Expr, recv string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ:
			return nilComparison(c, recv)
		case token.LAND:
			return impliesNonNil(c.X, recv) || impliesNonNil(c.Y, recv)
		}
	}
	return false
}

// impliedByNil: recv == nil ⇒ cond true (so ¬cond ⇒ recv != nil).
func impliedByNil(cond ast.Expr, recv string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.EQL:
			return nilComparison(c, recv)
		case token.LOR:
			return impliedByNil(c.X, recv) || impliedByNil(c.Y, recv)
		}
	}
	return false
}

// nilComparison reports whether b compares recv against nil (either side).
func nilComparison(b *ast.BinaryExpr, recv string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isRecv := func(e ast.Expr) bool { return types.ExprString(ast.Unparen(e)) == recv }
	return (isRecv(b.X) && isNil(b.Y)) || (isNil(b.X) && isRecv(b.Y))
}
