package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ProbeGuard enforces the engine's zero-overhead observability contract:
// every call through a field named `probe` or `sampler` (the engine's
// obs.Probe / obs.Sampler hooks) must be dominated by a nil check, so the
// disabled path costs exactly one predictable branch per hook and never
// dereferences a nil interface.
//
// Accepted guard shapes, checked syntactically on the receiver's printed
// form (e.g. "e.probe"):
//
//	if e.probe != nil { e.probe.Hook(...) }          // then-branch
//	if e.probe == nil { ... } else { e.probe.Hook() } // else-branch
//	if e.probe == nil { return }                     // leading early-out
//	e.probe.Hook(...)
//
// Conjunctions widen then-guards (p != nil && x), disjunctions widen
// nil-tests (p == nil || x). Guards do not cross function-literal
// boundaries: a closure may run after the guard's check went stale.
var ProbeGuard = &Analyzer{
	Name:      "probeguard",
	Doc:       "probe/sampler hook calls in the engine must be nil-guarded",
	AppliesTo: inPaths("internal/core"),
	Run:       runProbeGuard,
}

func runProbeGuard(pass *Pass) {
	inspectWithStack(pass.Pkg.Files, func(stack []ast.Node) bool {
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := probeReceiver(call)
		if recv == nil {
			return true
		}
		recvStr := types.ExprString(recv)
		if !guarded(stack, recvStr) {
			sel := call.Fun.(*ast.SelectorExpr)
			pass.Reportf(call.Pos(), "%s.%s called without a dominating `%s != nil` check (zero-overhead probe contract)",
				recvStr, sel.Sel.Name, recvStr)
		}
		return true
	})
}

// probeReceiver matches calls of the form X.probe.M(...) / X.sampler.M(...)
// (or a bare probe.M(...) on a local), returning the probe-valued operand.
func probeReceiver(call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name == "probe" || x.Sel.Name == "sampler" {
			return x
		}
	case *ast.Ident:
		if x.Name == "probe" || x.Name == "sampler" {
			return x
		}
	}
	return nil
}

// guarded reports whether the innermost stack node (the call) is dominated
// by a nil check for recv.
func guarded(stack []ast.Node, recv string) bool {
	child := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false // guards don't cross function boundaries
		case *ast.IfStmt:
			if child == n.Body && impliesNonNil(n.Cond, recv) {
				return true
			}
			if child == n.Else && impliedByNil(n.Cond, recv) {
				return true
			}
		case *ast.BlockStmt:
			if leadingGuard(n, child, recv) {
				return true
			}
		}
		child = stack[i]
	}
	return false
}

// leadingGuard scans the statements of block before the one containing
// child for an `if recv == nil { return/panic }` early-out.
func leadingGuard(block *ast.BlockStmt, child ast.Node, recv string) bool {
	for _, stmt := range block.List {
		if stmt == child {
			return false
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Init != nil || !impliedByNil(ifs.Cond, recv) {
			continue
		}
		if len(ifs.Body.List) == 0 {
			continue
		}
		switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		case *ast.ExprStmt:
			if c, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// impliesNonNil: cond true ⇒ recv != nil.
func impliesNonNil(cond ast.Expr, recv string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ:
			return nilComparison(c, recv)
		case token.LAND:
			return impliesNonNil(c.X, recv) || impliesNonNil(c.Y, recv)
		}
	}
	return false
}

// impliedByNil: recv == nil ⇒ cond true (so ¬cond ⇒ recv != nil).
func impliedByNil(cond ast.Expr, recv string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.EQL:
			return nilComparison(c, recv)
		case token.LOR:
			return impliedByNil(c.X, recv) || impliedByNil(c.Y, recv)
		}
	}
	return false
}

// nilComparison reports whether b compares recv against nil (either side).
func nilComparison(b *ast.BinaryExpr, recv string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isRecv := func(e ast.Expr) bool { return types.ExprString(ast.Unparen(e)) == recv }
	return (isRecv(b.X) && isNil(b.Y)) || (isNil(b.X) && isRecv(b.Y))
}
