package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The tag matrix. A file gated behind a custom build tag (//go:build
// slowclock) is invisible to a default load, so a single-pass linter would
// never see the code `go test -tags slowclock` compiles. LoadMatrix closes
// that gap: it loads the selected packages once under the default tag set
// and once more per custom tag discovered in their files, and RunMatrix
// merges the analyzer findings across the variants, deduplicated — a
// finding in an always-built file shows up once, not once per variant.

// fileConstraint extracts a file's build constraint from the comments
// preceding its package clause: a //go:build line wins; otherwise legacy
// // +build lines are AND-ed. Returns nil when the file is unconstrained.
func fileConstraint(f *ast.File) constraint.Expr {
	var plus constraint.Expr
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if e, err := constraint.Parse(c.Text); err == nil {
					return e
				}
				continue
			}
			if constraint.IsPlusBuild(c.Text) {
				e, err := constraint.Parse(c.Text)
				if err != nil {
					continue
				}
				if plus == nil {
					plus = e
				} else {
					plus = &constraint.AndExpr{X: plus, Y: e}
				}
			}
		}
	}
	return plus
}

// unixGOOS mirrors the "unix" build tag's OS set (the members relevant to
// a pure-stdlib linter).
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// knownGOOS / knownGOARCH are the platform tag names the matrix must never
// treat as custom tags: loading the module with "windows" enabled on linux
// would stand up file sets no real build uses.
var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}
var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// reservedTags are non-platform tags with toolchain-defined meaning; they
// are evaluated, never matrixed over.
var reservedTags = map[string]bool{
	"gc": true, "gccgo": true, "cgo": true, "unix": true,
	"race": true, "msan": true, "asan": true, "purego": true,
}

// tagSatisfied evaluates one build tag against the default environment
// plus the load's extra tag set.
func tagSatisfied(tag string, extra map[string]bool) bool {
	if extra[tag] {
		return true
	}
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	// The module's go directive predates the running toolchain, so every
	// release tag up to the toolchain's own is satisfied — and a linter
	// running on the toolchain that builds the module can treat them all
	// as such.
	return strings.HasPrefix(tag, "go1.")
}

// constraintSatisfied reports whether f's build constraint (if any) holds
// under the default environment plus extra tags.
func constraintSatisfied(f *ast.File, extra map[string]bool) bool {
	e := fileConstraint(f)
	if e == nil {
		return true
	}
	return e.Eval(func(tag string) bool { return tagSatisfied(tag, extra) })
}

// customTag reports whether a tag found in a constraint should become a
// matrix dimension: anything that is not a platform name, a reserved
// toolchain tag, or a release tag.
func customTag(tag string) bool {
	return !knownGOOS[tag] && !knownGOARCH[tag] && !reservedTags[tag] &&
		!strings.HasPrefix(tag, "go1.")
}

// collectExprTags accumulates every tag name mentioned in a constraint.
func collectExprTags(e constraint.Expr, out map[string]bool) {
	switch x := e.(type) {
	case *constraint.TagExpr:
		out[x.Tag] = true
	case *constraint.NotExpr:
		collectExprTags(x.X, out)
	case *constraint.AndExpr:
		collectExprTags(x.X, out)
		collectExprTags(x.Y, out)
	case *constraint.OrExpr:
		collectExprTags(x.X, out)
		collectExprTags(x.Y, out)
	}
}

// CollectBuildTags scans the packages selected by patterns (without
// type-checking them) and returns the sorted custom build tags their file
// constraints mention. Platform, toolchain, and release tags are excluded;
// the result is the set of extra dimensions a lint matrix must cover.
func CollectBuildTags(dir string, patterns []string) ([]string, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(absDir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	tags := map[string]bool{}
	for _, d := range dirs {
		entries, err := os.ReadDir(d)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			// Header-only parse: constraints must precede the package
			// clause, so the bodies are never needed.
			f, err := parser.ParseFile(fset, filepath.Join(d, name), nil,
				parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				continue // the full load will surface the syntax error
			}
			if e := fileConstraint(f); e != nil {
				collectExprTags(e, tags)
			}
		}
	}
	var out []string
	for t := range tags {
		if customTag(t) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out, nil
}

// TagVariant is one load of the lint matrix: the extra build tags enabled
// (nil for the default load) and the packages stood up under them.
type TagVariant struct {
	Tags []string
	Pkgs []*Package
}

// Label renders the variant for diagnostics ("default" or "tags=slowclock").
func (v TagVariant) Label() string {
	if len(v.Tags) == 0 {
		return "default"
	}
	return "tags=" + strings.Join(v.Tags, ",")
}

// LoadMatrix loads the packages selected by patterns under the default tag
// set, plus one additional load per custom build tag found in their files,
// so every tag-gated file is parsed and type-checked by at least one
// variant. Tags are enabled one at a time: pairwise tag interactions are
// assumed not to hide files (true for the gating idiom this module uses).
func LoadMatrix(dir string, patterns []string) ([]TagVariant, error) {
	base, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	variants := []TagVariant{{Pkgs: base}}
	tags, err := CollectBuildTags(dir, patterns)
	if err != nil {
		return nil, err
	}
	for _, tag := range tags {
		pkgs, err := LoadWithTags(dir, patterns, []string{tag})
		if err != nil {
			return nil, fmt.Errorf("loading with -tags %s: %w", tag, err)
		}
		variants = append(variants, TagVariant{Tags: []string{tag}, Pkgs: pkgs})
	}
	return variants, nil
}

// RunMatrix applies the analyzers to every variant and merges the
// findings: deduplicated by position, analyzer, and message (an
// always-built file is analyzed once per variant but reported once),
// sorted by position.
func RunMatrix(variants []TagVariant, analyzers []*Analyzer) []Diagnostic {
	seen := map[string]bool{}
	var out []Diagnostic
	for _, v := range variants {
		for _, d := range Run(v.Pkgs, analyzers) {
			key := fmt.Sprintf("%s:%d:%d\x00%s\x00%s",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}
