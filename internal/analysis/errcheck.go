package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags discarded error results in the packages where a dropped
// error corrupts or truncates artifacts silently: the trace and image
// codecs, and every command's I/O paths. A full write to a closed pipe or
// full disk must exit non-zero, not print a clean summary over a broken
// artifact.
//
// A call statement (plain, deferred, or go) whose final result is `error`
// is a finding unless:
//
//   - the error is explicitly discarded with `_ =`, or
//   - the call's first argument is os.Stderr (best-effort diagnostics on
//     the error path itself).
var ErrCheck = &Analyzer{
	Name:      "errcheck",
	Doc:       "no discarded error results in codecs and CLI I/O paths",
	AppliesTo: inPaths("internal/trace", "internal/program", "cmd"),
	Run:       runErrCheck,
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(info, call) || stderrCall(info, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is discarded; check it or assign to _ explicitly",
				types.ExprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether the call's last result is of type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false // conversion, not a call
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false // builtin
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// stderrCall reports whether the call writes to os.Stderr (first argument),
// the accepted best-effort path for diagnostics.
func stderrCall(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stderr" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pkgNameOf(info, id) == "os"
}
