// Package analysis is specfetch's in-tree static-analysis framework: a
// small loader that parses and type-checks the module with nothing but the
// standard library (go/parser + go/types; stdlib imports are resolved from
// the toolchain's export data, so it works offline), plus the simulator's
// project-specific analyzers.
//
// The paper's conclusions rest on cycle-exact accounting: the six-component
// ISPI breakdown only means something if every stall cycle is attributed
// exactly once and every run is bit-reproducible. Those are exactly the
// properties that rot silently under maintenance, so they are machine
// checked here rather than left to review:
//
//   - determinism: no wall-clock reads, no process-global RNG, and no
//     output or result stores driven by map-iteration order inside the
//     simulator packages.
//   - probeguard: every obs.Probe/obs.Sampler hook call in the engine is
//     dominated by a nil check, preserving the zero-overhead guarantee.
//   - enumswitch: switches over module enums (Policy, Component, event
//     kinds, ...) are exhaustive or carry an explicit default, so adding a
//     seventh stall component cannot silently drop cycles.
//   - errcheck: no discarded error results in the trace/program codecs and
//     the command-line I/O paths.
//   - sweeplint: the distributed-sweep layer (internal/distsweep,
//     cmd/sweepworker) logs through the structured sweep log, never via
//     ad-hoc fmt.Fprintf(os.Stderr, ...) or the global log package.
//   - unitcheck: cycle counts (metrics.Cycles) and issue-slot counts
//     (metrics.Slots) never mix or revert to raw integers without an
//     explicit conversion — slots = cycles × width is the identity every
//     ISPI table rests on.
//
// Run it with `go run ./cmd/simlint ./...`; the runtime counterpart of
// these checks is obs.AuditProbe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic with the file path relative to base (or
// absolute when base is empty or unrelated).
func (d Diagnostic) String(base string) string {
	file := d.Pos.Filename
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo filters packages by import path; nil means every package.
	// Fixture packages (any path containing "testdata") always apply, so
	// each analyzer exercises its own fixture regardless of scope.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, ProbeGuard, EnumSwitch, ErrCheck, SweepLint, UnitCheck}
}

// ByName resolves a comma-separated analyzer list ("determinism,errcheck").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// applies reports whether a runs on the package at pkgPath. An external
// foo_test package (loaded under the synthetic path "<pkg>_test") is scoped
// with its base package, so path-scoped analyzers cover every test file.
func (a *Analyzer) applies(pkgPath string) bool {
	if strings.Contains(pkgPath, "testdata") {
		return true
	}
	pkgPath = strings.TrimSuffix(pkgPath, "_test")
	return a.AppliesTo == nil || a.AppliesTo(pkgPath)
}

// inPaths builds an AppliesTo that matches packages whose import path
// contains one of the given module-relative fragments as path segments.
func inPaths(fragments ...string) func(string) bool {
	return func(pkgPath string) bool {
		p := "/" + pkgPath + "/"
		for _, f := range fragments {
			if strings.Contains(p, "/"+f+"/") {
				return true
			}
		}
		return false
	}
}

// Run applies the given analyzers to the given packages and returns the
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.applies(pkg.PkgPath) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings by position, then analyzer name.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// inspectWithStack walks every file, calling visit with the full ancestor
// stack (stack[len-1] is the current node). Returning false skips the
// node's children.
func inspectWithStack(files []*ast.File, visit func(stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !visit(stack) {
				// Children are skipped; pop immediately since the nil
				// callback for this node will not come.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// rootIdent peels selectors, indexes, stars, and parens off an lvalue and
// returns its base identifier (nil when the base is not an identifier,
// e.g. a function call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" when it is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// calleePkgFunc splits a call of the form pkg.Func into its package import
// path and function name ("", "" when the call is not package-qualified).
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	return pkgNameOf(info, id), sel.Sel.Name
}
