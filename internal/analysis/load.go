package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// PkgPath is the import path ("specfetch/internal/core").
	PkgPath string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// ModulePath is the module the package belongs to.
	ModulePath string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds soft type-checking errors; analyzers still run, but
	// callers should treat a non-empty list as a failed load.
	TypeErrors []error
}

// Load parses and type-checks the packages selected by patterns, resolved
// relative to dir. Patterns follow the go tool's shape: a directory path,
// or a path ending in "/..." which walks subdirectories (skipping testdata,
// vendor, and hidden directories — name a testdata package explicitly to
// lint it). In-package _test.go files are included, and a directory's
// external foo_test package (if any) is stood up as its own unit with
// import path "<pkg>_test", so the analyzers see every line the test
// binary compiles.
//
// Module-internal imports are type-checked from source on demand; stdlib
// imports are served from the toolchain's compiled export data (via
// `go list -export`), which requires no network access.
//
// Files carrying build constraints (//go:build or legacy // +build lines)
// are included only when the constraint is satisfied by the default
// environment (GOOS, GOARCH, gc, matching go1.N releases) — the same file
// set `go build` would compile. LoadWithTags enables extra tags, and
// LoadMatrix lints every tag-gated file by loading once per discovered
// custom tag.
func Load(dir string, patterns []string) ([]*Package, error) {
	return LoadWithTags(dir, patterns, nil)
}

// LoadWithTags is Load with extra build tags enabled, as `go build -tags`
// would: files whose build constraint needs one of the tags are included.
func LoadWithTags(dir string, patterns []string, tags []string) ([]*Package, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	extra := map[string]bool{}
	for _, t := range tags {
		extra[t] = true
	}
	modRoot, modPath, err := findModule(absDir)
	if err != nil {
		return nil, err
	}

	dirs, err := expandPatterns(absDir, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}

	ld := &loader{
		fset:    token.NewFileSet(),
		modRoot: modRoot,
		modPath: modPath,
		tags:    extra,
		units:   map[string]*Package{},
		parsed:  map[string]bool{},
		loading: map[string]bool{},
	}

	// Parse every selected package first so the full set of external
	// imports is known before the single `go list -export` call.
	var selected []*Package
	seen := map[string]bool{}
	for _, d := range dirs {
		path, err := ld.importPathFor(d)
		if err != nil {
			return nil, err
		}
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, xtest, err := ld.parseUnits(d, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			selected = append(selected, pkg)
		}
		if xtest != nil {
			selected = append(selected, xtest)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no Go packages match %v", patterns)
	}
	if err := ld.resolveExports(selected); err != nil {
		return nil, err
	}
	for _, pkg := range selected {
		if err := ld.check(pkg); err != nil {
			return nil, err
		}
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i].PkgPath < selected[j].PkgPath })
	return selected, nil
}

// loader owns the shared state of one Load call.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	// tags holds the extra build tags enabled for this load (beyond the
	// default environment); files whose constraint they do not satisfy are
	// skipped exactly as `go build` would skip them.
	tags map[string]bool
	// units memoizes parsed/checked module packages by import path;
	// external test packages are filed under "<pkg>_test".
	units map[string]*Package
	// parsed marks directories whose files have been split into units, so
	// a package-less directory is not re-read on every lookup.
	parsed  map[string]bool
	loading map[string]bool // import-cycle detection
	// exports maps import path -> compiled export data file for packages
	// outside the module (stdlib).
	exports map[string]string
	gcImp   types.Importer
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves go-style package patterns to directories.
func expandPatterns(base string, patterns []string) ([]string, error) {
	var dirs []string
	for _, pat := range patterns {
		rec := false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, p
		}
		if pat == "" || pat == "." {
			pat = base
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(base, pat)
		}
		if !rec {
			dirs = append(dirs, pat)
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs = append(dirs, p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// importPathFor maps a directory to its module import path.
func (ld *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, ld.modPath)
	}
	if rel == "." {
		return ld.modPath, nil
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path back to its directory.
func (ld *loader) dirFor(path string) string {
	if path == ld.modPath {
		return ld.modRoot
	}
	return filepath.Join(ld.modRoot, filepath.FromSlash(strings.TrimPrefix(path, ld.modPath+"/")))
}

// parseDir parses the importable package in dir (keeping in-package test
// files). Returns nil when the directory has no buildable Go files. Used
// by the importer path, where a directory's external test package can
// never be a dependency.
func (ld *loader) parseDir(dir, path string) (*Package, error) {
	pkg, _, err := ld.parseUnits(dir, path)
	return pkg, err
}

// parseUnits parses every Go file in dir and splits the result into the
// importable package and the external (_test-suffixed) test package; either
// may be nil. The external unit gets import path "<path>_test" — it is not
// importable, so the synthetic path cannot collide with a real dependency.
func (ld *loader) parseUnits(dir, path string) (pkg, xtest *Package, err error) {
	xpath := path + "_test"
	if ld.parsed[path] {
		return ld.units[path], ld.units[xpath], nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files, xfiles []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if !constraintSatisfied(f, ld.tags) {
			continue
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			xfiles = append(xfiles, f)
		} else {
			files = append(files, f)
		}
	}
	ld.parsed[path] = true
	if len(files) > 0 {
		pkg = &Package{
			PkgPath:    path,
			Dir:        dir,
			ModulePath: ld.modPath,
			Fset:       ld.fset,
			Files:      files,
		}
		ld.units[path] = pkg
	}
	if len(xfiles) > 0 {
		xtest = &Package{
			PkgPath:    xpath,
			Dir:        dir,
			ModulePath: ld.modPath,
			Fset:       ld.fset,
			Files:      xfiles,
		}
		ld.units[xpath] = xtest
	}
	return pkg, xtest, nil
}

// externalImports walks every parsed unit (transitively pre-parsing
// module-internal imports) and collects the out-of-module import set.
func (ld *loader) externalImports(roots []*Package) ([]string, error) {
	ext := map[string]bool{}
	var queue []*Package
	queue = append(queue, roots...)
	visited := map[string]bool{}
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		if visited[pkg.PkgPath] {
			continue
		}
		visited[pkg.PkgPath] = true
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if ld.isInternal(path) {
					dep, err := ld.parseDir(ld.dirFor(path), path)
					if err != nil {
						return nil, fmt.Errorf("import %q: %w", path, err)
					}
					if dep == nil {
						return nil, fmt.Errorf("import %q: no Go files in %s", path, ld.dirFor(path))
					}
					queue = append(queue, dep)
				} else if path != "unsafe" && path != "C" {
					ext[path] = true
				}
			}
		}
	}
	paths := make([]string, 0, len(ext))
	for p := range ext {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

func (ld *loader) isInternal(path string) bool {
	return path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/")
}

// resolveExports locates compiled export data for every external import
// (plus transitive dependencies) via one `go list -export` invocation, and
// builds the gc importer over it.
func (ld *loader) resolveExports(roots []*Package) error {
	paths, err := ld.externalImports(roots)
	if err != nil {
		return err
	}
	ld.exports = map[string]string{}
	if len(paths) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
		cmd := exec.Command("go", args...)
		cmd.Dir = ld.modRoot
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("go list -export: %v\n%s", err, errb.String())
		}
		dec := json.NewDecoder(&out)
		for {
			var rec struct{ ImportPath, Export string }
			if err := dec.Decode(&rec); err == io.EOF {
				break
			} else if err != nil {
				return fmt.Errorf("go list -export output: %v", err)
			}
			if rec.Export != "" {
				ld.exports[rec.ImportPath] = rec.Export
			}
		}
	}
	ld.gcImp = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return nil
}

// Import implements types.Importer: module-internal packages are checked
// from source (memoized), everything else comes from export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !ld.isInternal(path) {
		return ld.gcImp.Import(path)
	}
	pkg, err := ld.parseDir(ld.dirFor(path), path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("import %q: no Go files", path)
	}
	if err := ld.check(pkg); err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// check type-checks a parsed unit (idempotent).
func (ld *loader) check(pkg *Package) error {
	if pkg.Types != nil {
		return nil
	}
	if ld.loading[pkg.PkgPath] {
		return fmt.Errorf("import cycle through %s", pkg.PkgPath)
	}
	ld.loading[pkg.PkgPath] = true
	defer delete(ld.loading, pkg.PkgPath)

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: ld,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Soft errors: Check returns a usable (if partial) package either way;
	// callers decide whether TypeErrors are fatal.
	tp, _ := conf.Check(pkg.PkgPath, ld.fset, pkg.Files, pkg.Info)
	pkg.Types = tp
	return nil
}
