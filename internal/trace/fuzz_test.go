package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzTextReader feeds arbitrary bytes to the text parser: it must never
// panic, and every record it does accept must validate.
func FuzzTextReader(f *testing.F) {
	f.Add("0x1000 7 cond 1 0x1200\n0x1200 12 plain\n")
	f.Add("# comment\n\n0x0 1 jump 1 0x0\n")
	f.Add("0x1000 3 frob\n")
	f.Add("0x1000 99999999999999999999 plain\n")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, in string) {
		rd := NewTextReader(bytes.NewReader([]byte(in)))
		for i := 0; i < 1000; i++ {
			rec, err := rd.Next()
			if err != nil {
				return // EOF or parse error both fine
			}
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("parser accepted invalid record %+v: %v", rec, verr)
			}
		}
	})
}

// FuzzBinaryReader feeds arbitrary bytes to the binary parser.
func FuzzBinaryReader(f *testing.F) {
	var seed bytes.Buffer
	w := NewBinaryWriter(&seed)
	for _, r := range sampleRecords() {
		if err := w.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("specftr\x01"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		rd := NewBinaryReader(bytes.NewReader(in))
		for i := 0; i < 1000; i++ {
			rec, err := rd.Next()
			if err != nil {
				return
			}
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("parser accepted invalid record %+v: %v", rec, verr)
			}
		}
	})
}

// FuzzOpenFile exercises the sniffing front door (gzip/binary/text).
func FuzzOpenFile(f *testing.F) {
	f.Add([]byte{0x1f, 0x8b, 0x00})
	f.Add([]byte("specftr\x01\x12\x34"))
	f.Add([]byte("0x0 1 plain\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		rd, err := OpenFile(bytes.NewReader(in))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := rd.Next(); err != nil {
				if !errors.Is(err, io.EOF) {
					return
				}
				return
			}
		}
	})
}
