// Package trace defines the dynamic instruction trace model consumed by the
// fetch-policy simulator, along with text and binary codecs so traces can be
// stored, inspected, and replayed.
//
// A trace is a sequence of basic-block records on the *correct* execution
// path, exactly the information an ATOM-style instrumentation run produces:
// where a block starts, how many instructions it holds, and what its
// terminating control transfer did. Wrong-path instructions are never in a
// trace; the simulator reconstructs wrong paths from the static program
// image.
package trace

import (
	"errors"
	"fmt"
	"io"

	"specfetch/internal/isa"
)

// Record is one dynamic basic block: N sequential instructions starting at
// Start. If BrKind is not Plain, the last of those N instructions is a
// control transfer of that kind with the given dynamic outcome; otherwise
// the block simply ran into the record-length cap and execution continues at
// Start + 4*N.
type Record struct {
	// Start is the address of the first instruction of the block.
	Start isa.Addr
	// N is the number of instructions in the block, including the
	// terminating branch when BrKind != Plain. N >= 1.
	N int
	// BrKind classifies the terminating instruction.
	BrKind isa.Kind
	// Taken reports the dynamic direction for conditional branches; it is
	// true for all executed unconditional transfers.
	Taken bool
	// Target is the dynamic destination when Taken (for returns and
	// indirect jumps this is the only record of the destination).
	Target isa.Addr
}

// BranchPC returns the address of the terminating branch. It is only
// meaningful when BrKind != Plain.
func (r Record) BranchPC() isa.Addr { return r.Start.Plus(r.N - 1) }

// NextPC returns the address execution continues at after this record.
func (r Record) NextPC() isa.Addr {
	if r.BrKind != isa.Plain && r.Taken {
		return r.Target
	}
	return r.Start.Plus(r.N)
}

// Validate checks internal consistency.
func (r Record) Validate() error {
	switch {
	case r.N < 1:
		return fmt.Errorf("trace: record at %s has non-positive length %d", r.Start, r.N)
	case uint64(r.Start)%isa.InstBytes != 0:
		return fmt.Errorf("trace: record start %s misaligned", r.Start)
	case r.BrKind == isa.Plain && r.Taken:
		return fmt.Errorf("trace: plain record at %s marked taken", r.Start)
	case r.BrKind.IsUnconditional() && !r.Taken:
		return fmt.Errorf("trace: unconditional %s at %s marked not taken", r.BrKind, r.BranchPC())
	case r.Taken && uint64(r.Target)%isa.InstBytes != 0:
		return fmt.Errorf("trace: record at %s has misaligned target %s", r.Start, r.Target)
	}
	return nil
}

// Reader yields trace records until io.EOF.
type Reader interface {
	// Next returns the next record, or io.EOF after the last one.
	Next() (Record, error)
}

// Writer persists trace records.
type Writer interface {
	Write(Record) error
}

// PreValidated is an optional Reader refinement: a reader whose
// PreValidatedTrace method reports true promises that every record it will
// ever yield passes Record.Validate, letting consumers that validate records
// one at a time (the simulation engine's loadRecord) skip the re-check.
// Replay cursors over pre-checked record slices implement it.
type PreValidated interface {
	PreValidatedTrace() bool
}

// SliceReader replays an in-memory record slice. It is the reader used by
// tests and by generators that materialize traces.
type SliceReader struct {
	recs []Record
	pos  int
}

// NewSliceReader wraps recs; the slice is not copied.
func NewSliceReader(recs []Record) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (s *SliceReader) Next() (Record, error) {
	if s.pos >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

// Reset rewinds the reader to the first record.
func (s *SliceReader) Reset() { s.pos = 0 }

// Len returns the total number of records.
func (s *SliceReader) Len() int { return len(s.recs) }

// Collect drains a Reader into a slice, validating every record and checking
// path continuity (each record must begin where the previous one left off).
func Collect(r Reader) ([]Record, error) {
	var out []Record
	var expect isa.Addr
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if err := rec.Validate(); err != nil {
			return out, err
		}
		if len(out) > 0 && rec.Start != expect {
			return out, fmt.Errorf("trace: discontinuity: record %d starts at %s, previous continued at %s",
				len(out), rec.Start, expect)
		}
		expect = rec.NextPC()
		out = append(out, rec)
	}
}

// Stats summarizes a trace's dynamic behaviour.
type Stats struct {
	Records       int64
	Insts         int64
	Branches      int64
	Conditionals  int64
	TakenCond     int64
	Unconditional int64
	Indirect      int64
	Returns       int64
	Calls         int64
}

// BranchFrac returns the fraction of dynamic instructions that are branches.
func (s Stats) BranchFrac() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Branches) / float64(s.Insts)
}

// TakenFrac returns the fraction of conditional branches that were taken.
func (s Stats) TakenFrac() float64 {
	if s.Conditionals == 0 {
		return 0
	}
	return float64(s.TakenCond) / float64(s.Conditionals)
}

// Add accumulates one record into the stats.
func (s *Stats) Add(r Record) {
	s.Records++
	s.Insts += int64(r.N)
	if r.BrKind == isa.Plain {
		return
	}
	s.Branches++
	switch {
	case r.BrKind.IsConditional():
		s.Conditionals++
		if r.Taken {
			s.TakenCond++
		}
	default:
		s.Unconditional++
	}
	if r.BrKind.IsIndirect() {
		s.Indirect++
	}
	if r.BrKind == isa.Return {
		s.Returns++
	}
	if r.BrKind.IsCall() {
		s.Calls++
	}
}

// Scan consumes the whole reader and returns aggregate stats.
func Scan(r Reader) (Stats, error) {
	var s Stats
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.Add(rec)
	}
}

// LimitReader truncates an underlying reader after approximately maxInsts
// instructions (it never splits a record).
type LimitReader struct {
	r        Reader
	maxInsts int64
	seen     int64
}

// NewLimitReader wraps r with an instruction budget.
func NewLimitReader(r Reader, maxInsts int64) *LimitReader {
	return &LimitReader{r: r, maxInsts: maxInsts}
}

// Next implements Reader.
func (l *LimitReader) Next() (Record, error) {
	if l.seen >= l.maxInsts {
		return Record{}, io.EOF
	}
	rec, err := l.r.Next()
	if err != nil {
		return rec, err
	}
	l.seen += int64(rec.N)
	return rec, nil
}
