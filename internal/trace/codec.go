// Text and binary trace codecs.
//
// Text format (one record per line, '#' comments allowed):
//
//	<start-hex> <n> <kind> [<taken:01> <target-hex>]
//
// e.g. "0x1000 7 cond 1 0x1200" or "0x1200 12 plain".
//
// Binary format: a magic header followed by varint-delta records, compact
// enough for multi-hundred-million-instruction traces.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"specfetch/internal/isa"
)

// TextWriter emits the line-oriented format.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer) *TextWriter { return &TextWriter{w: bufio.NewWriter(w)} }

// Write implements Writer.
func (t *TextWriter) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	var err error
	if r.BrKind == isa.Plain {
		_, err = fmt.Fprintf(t.w, "0x%x %d plain\n", uint64(r.Start), r.N)
	} else {
		tk := 0
		if r.Taken {
			tk = 1
		}
		_, err = fmt.Fprintf(t.w, "0x%x %d %s %d 0x%x\n", uint64(r.Start), r.N, r.BrKind, tk, uint64(r.Target))
	}
	return err
}

// Flush drains buffered output.
func (t *TextWriter) Flush() error { return t.w.Flush() }

// TextReader parses the line-oriented format.
type TextReader struct {
	sc   *bufio.Scanner
	line int
}

// NewTextReader wraps r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &TextReader{sc: sc}
}

// Next implements Reader.
func (t *TextReader) Next() (Record, error) {
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseTextRecord(line)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: %w", t.line, err)
		}
		return rec, nil
	}
	if err := t.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

func parseTextRecord(line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return Record{}, fmt.Errorf("want at least 3 fields, got %d", len(f))
	}
	start, err := strconv.ParseUint(strings.TrimPrefix(f[0], "0x"), 16, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad start address %q: %w", f[0], err)
	}
	n, err := strconv.Atoi(f[1])
	if err != nil {
		return Record{}, fmt.Errorf("bad length %q: %w", f[1], err)
	}
	kind, ok := isa.ParseKind(f[2])
	if !ok {
		return Record{}, fmt.Errorf("unknown kind %q", f[2])
	}
	rec := Record{Start: isa.Addr(start), N: n, BrKind: kind}
	if kind != isa.Plain {
		if len(f) != 5 {
			return Record{}, fmt.Errorf("branch record needs 5 fields, got %d", len(f))
		}
		switch f[3] {
		case "0":
		case "1":
			rec.Taken = true
		default:
			return Record{}, fmt.Errorf("bad taken flag %q", f[3])
		}
		tgt, err := strconv.ParseUint(strings.TrimPrefix(f[4], "0x"), 16, 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad target %q: %w", f[4], err)
		}
		rec.Target = isa.Addr(tgt)
	} else if len(f) != 3 {
		return Record{}, fmt.Errorf("plain record needs 3 fields, got %d", len(f))
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// binMagic identifies the binary trace format, versioned in the last byte.
var binMagic = [8]byte{'s', 'p', 'e', 'c', 'f', 't', 'r', 1}

// BinaryWriter emits the compact varint format.
type BinaryWriter struct {
	w      *bufio.Writer
	opened bool
	buf    [4 * binary.MaxVarintLen64]byte
}

// NewBinaryWriter wraps w; the header is written lazily with the first record.
func NewBinaryWriter(w io.Writer) *BinaryWriter { return &BinaryWriter{w: bufio.NewWriter(w)} }

// Write implements Writer.
func (b *BinaryWriter) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if !b.opened {
		if _, err := b.w.Write(binMagic[:]); err != nil {
			return err
		}
		b.opened = true
	}
	// Layout: header varint = N<<4 | kind<<1 | taken; then start addr; then
	// target (only when taken).
	tk := uint64(0)
	if r.Taken {
		tk = 1
	}
	n := binary.PutUvarint(b.buf[:], uint64(r.N)<<4|uint64(r.BrKind)<<1|tk)
	n += binary.PutUvarint(b.buf[n:], uint64(r.Start))
	if r.Taken {
		n += binary.PutUvarint(b.buf[n:], uint64(r.Target))
	}
	_, err := b.w.Write(b.buf[:n])
	return err
}

// Flush drains buffered output. Writing zero records still produces a valid
// (empty) trace file consisting of just the magic header.
func (b *BinaryWriter) Flush() error {
	if !b.opened {
		if _, err := b.w.Write(binMagic[:]); err != nil {
			return err
		}
		b.opened = true
	}
	return b.w.Flush()
}

// BinaryReader parses the compact varint format.
type BinaryReader struct {
	r      *bufio.Reader
	opened bool
}

// NewBinaryReader wraps r.
func NewBinaryReader(r io.Reader) *BinaryReader { return &BinaryReader{r: bufio.NewReader(r)} }

// Next implements Reader.
func (b *BinaryReader) Next() (Record, error) {
	if !b.opened {
		var got [8]byte
		if _, err := io.ReadFull(b.r, got[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("trace: reading binary header: %w", err)
		}
		if got != binMagic {
			return Record{}, fmt.Errorf("trace: bad binary trace magic %q", got[:])
		}
		b.opened = true
	}
	hdr, err := binary.ReadUvarint(b.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	rec := Record{
		N:      int(hdr >> 4),
		BrKind: isa.Kind(hdr >> 1 & 0x7),
		Taken:  hdr&1 != 0,
	}
	start, err := binary.ReadUvarint(b.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	rec.Start = isa.Addr(start)
	if rec.Taken {
		tgt, err := binary.ReadUvarint(b.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		rec.Target = isa.Addr(tgt)
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Open wraps r with the right reader by sniffing the binary magic; anything
// else is treated as the text format.
func Open(r io.Reader) (Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(8)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	if len(head) == 8 && [8]byte(head) == binMagic {
		return NewBinaryReader(br), nil
	}
	return NewTextReader(br), nil
}

// gzipMagic is the RFC 1952 header prefix.
var gzipMagic = [2]byte{0x1f, 0x8b}

// OpenFile extends Open with transparent gzip decompression: gzip-compressed
// traces (either codec inside) are detected by their magic and unwrapped.
func OpenFile(r io.Reader) (Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	if len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
		}
		return Open(zr)
	}
	return Open(br)
}

// GzipWriter compresses an underlying trace writer's output. Close flushes
// both layers.
type GzipWriter struct {
	inner interface {
		Writer
		Flush() error
	}
	zw *gzip.Writer
}

// NewGzipBinaryWriter writes the binary format through gzip.
func NewGzipBinaryWriter(w io.Writer) *GzipWriter {
	zw := gzip.NewWriter(w)
	return &GzipWriter{inner: NewBinaryWriter(zw), zw: zw}
}

// NewGzipTextWriter writes the text format through gzip.
func NewGzipTextWriter(w io.Writer) *GzipWriter {
	zw := gzip.NewWriter(w)
	return &GzipWriter{inner: NewTextWriter(zw), zw: zw}
}

// Write implements Writer.
func (g *GzipWriter) Write(r Record) error { return g.inner.Write(r) }

// Close flushes the trace writer and terminates the gzip stream.
func (g *GzipWriter) Close() error {
	if err := g.inner.Flush(); err != nil {
		return err
	}
	return g.zw.Close()
}
