package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"specfetch/internal/isa"
)

// sampleRecords is a hand-picked set covering every kind and flag shape.
func sampleRecords() []Record {
	return []Record{
		{Start: 0x1000, N: 12, BrKind: isa.Plain},
		{Start: 0x1030, N: 4, BrKind: isa.CondBranch, Taken: true, Target: 0x2000},
		{Start: 0x2000, N: 3, BrKind: isa.CondBranch, Taken: false},
		{Start: 0x200c, N: 1, BrKind: isa.Jump, Taken: true, Target: 0x1000},
		{Start: 0x1000, N: 2, BrKind: isa.Call, Taken: true, Target: 0x4000},
		{Start: 0x4000, N: 9, BrKind: isa.Return, Taken: true, Target: 0x1008},
		{Start: 0x1008, N: 5, BrKind: isa.IndirectCall, Taken: true, Target: 0x8000},
		{Start: 0x8000, N: 64, BrKind: isa.IndirectJump, Taken: true, Target: 0x1000},
	}
}

func roundTripText(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	rd := NewTextReader(&buf)
	for {
		r, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return got
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, r)
	}
}

func roundTripBinary(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	rd := NewBinaryReader(&buf)
	for {
		r, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return got
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, r)
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := sampleRecords()
	got := roundTripText(t, recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords()
	got := roundTripBinary(t, recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// randomRecord generates a random valid record for property testing.
func randomRecord(r *rand.Rand) Record {
	kinds := []isa.Kind{isa.Plain, isa.CondBranch, isa.Jump, isa.Call,
		isa.Return, isa.IndirectJump, isa.IndirectCall}
	rec := Record{
		Start:  isa.Addr(r.Int63n(1<<40)) &^ 3,
		N:      1 + r.Intn(200),
		BrKind: kinds[r.Intn(len(kinds))],
	}
	switch {
	case rec.BrKind == isa.Plain:
	case rec.BrKind.IsConditional():
		rec.Taken = r.Intn(2) == 0
	default:
		rec.Taken = true
	}
	if rec.Taken {
		rec.Target = isa.Addr(r.Int63n(1<<40)) &^ 3
	}
	return rec
}

// TestCodecRoundTripProperty round-trips random record batches through both
// codecs.
func TestCodecRoundTripProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randomRecord(r)
		}
		gotT := roundTripText(t, recs)
		gotB := roundTripBinary(t, recs)
		if len(gotT) != n || len(gotB) != n {
			return false
		}
		for i := range recs {
			if gotT[i] != recs[i] || gotB[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n0x1000 3 plain\n   \n# another\n0x100c 1 jump 1 0x1000\n"
	rd := NewTextReader(strings.NewReader(in))
	var n int
	for {
		_, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("parsed %d records, want 2", n)
	}
}

func TestTextReaderErrors(t *testing.T) {
	cases := []string{
		"0x1000",               // too few fields
		"zzz 3 plain",          // bad address
		"0x1000 x plain",       // bad length
		"0x1000 3 frob",        // unknown kind
		"0x1000 3 cond 1",      // missing target
		"0x1000 3 cond 2 0x0",  // bad taken flag
		"0x1000 3 cond 1 zzz",  // bad target
		"0x1000 3 plain extra", // extra field on plain
		"0x1000 0 plain",       // zero length
		"0x1000 1 jump 0 0x0",  // not-taken unconditional
	}
	for _, in := range cases {
		rd := NewTextReader(strings.NewReader(in))
		if _, err := rd.Next(); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestBinaryReaderBadMagic(t *testing.T) {
	rd := NewBinaryReader(bytes.NewReader([]byte("notatrace...")))
	if _, err := rd.Next(); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinaryReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Write(Record{Start: 0x123456789ab0, N: 100, BrKind: isa.Jump, Taken: true, Target: 0x1000}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut mid-record (after the magic and the first varint byte).
	rd := NewBinaryReader(bytes.NewReader(full[:10]))
	if _, err := rd.Next(); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewBinaryReader(&buf)
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty trace: want EOF, got %v", err)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	bad := Record{Start: 0x1000, N: 0, BrKind: isa.Plain}
	if err := NewTextWriter(io.Discard).Write(bad); err == nil {
		t.Error("text writer accepted invalid record")
	}
	if err := NewBinaryWriter(io.Discard).Write(bad); err == nil {
		t.Error("binary writer accepted invalid record")
	}
}

func TestOpenSniffsFormat(t *testing.T) {
	recs := sampleRecords()

	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin)
	for _, r := range recs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rd.(*BinaryReader); !ok {
		t.Errorf("binary input opened as %T", rd)
	}
	got, err := rd.Next()
	if err != nil || got != recs[0] {
		t.Errorf("binary first record: %+v, %v", got, err)
	}

	var txt bytes.Buffer
	tw := NewTextWriter(&txt)
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err = Open(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rd.(*TextReader); !ok {
		t.Errorf("text input opened as %T", rd)
	}
	got, err = rd.Next()
	if err != nil || got != recs[0] {
		t.Errorf("text first record: %+v, %v", got, err)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	recs := sampleRecords()
	for name, mk := range map[string]func(io.Writer) *GzipWriter{
		"binary": NewGzipBinaryWriter,
		"text":   NewGzipTextWriter,
	} {
		var buf bytes.Buffer
		w := mk(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatalf("%s write: %v", name, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// The compressed stream must start with the gzip magic.
		if b := buf.Bytes(); b[0] != 0x1f || b[1] != 0x8b {
			t.Fatalf("%s: not gzip framed", name)
		}
		rd, err := OpenFile(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		for {
			r, err := rd.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("%s read: %v", name, err)
			}
			got = append(got, r)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: got %d records, want %d", name, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Errorf("%s record %d: %+v != %+v", name, i, got[i], recs[i])
			}
		}
	}
}

func TestOpenFilePlain(t *testing.T) {
	// Uncompressed input still opens through OpenFile.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Write(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
}
