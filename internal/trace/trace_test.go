package trace

import (
	"errors"
	"io"
	"testing"

	"specfetch/internal/isa"
)

func TestRecordValidate(t *testing.T) {
	good := Record{Start: 0x1000, N: 4, BrKind: isa.CondBranch, Taken: true, Target: 0x2000}
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := []Record{
		{Start: 0x1000, N: 0, BrKind: isa.Plain},                                // empty
		{Start: 0x1001, N: 1, BrKind: isa.Plain},                                // misaligned start
		{Start: 0x1000, N: 1, BrKind: isa.Plain, Taken: true},                   // plain taken
		{Start: 0x1000, N: 1, BrKind: isa.Jump, Taken: false},                   // uncond not taken
		{Start: 0x1000, N: 1, BrKind: isa.CondBranch, Taken: true, Target: 0x2}, // misaligned target
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted: %+v", i, r)
		}
	}
}

func TestRecordNextPC(t *testing.T) {
	taken := Record{Start: 0x1000, N: 4, BrKind: isa.Jump, Taken: true, Target: 0x3000}
	if taken.NextPC() != 0x3000 {
		t.Errorf("taken NextPC = %s", taken.NextPC())
	}
	if taken.BranchPC() != 0x100c {
		t.Errorf("BranchPC = %s", taken.BranchPC())
	}
	nt := Record{Start: 0x1000, N: 4, BrKind: isa.CondBranch}
	if nt.NextPC() != 0x1010 {
		t.Errorf("not-taken NextPC = %s", nt.NextPC())
	}
	plain := Record{Start: 0x1000, N: 6, BrKind: isa.Plain}
	if plain.NextPC() != 0x1018 {
		t.Errorf("plain NextPC = %s", plain.NextPC())
	}
}

func TestSliceReader(t *testing.T) {
	recs := []Record{
		{Start: 0, N: 2, BrKind: isa.Plain},
		{Start: 8, N: 1, BrKind: isa.Jump, Taken: true, Target: 0},
	}
	r := NewSliceReader(recs)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
	r.Reset()
	if _, err := r.Next(); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestCollectContinuity(t *testing.T) {
	good := []Record{
		{Start: 0, N: 2, BrKind: isa.Plain},
		{Start: 8, N: 1, BrKind: isa.Jump, Taken: true, Target: 0x40},
		{Start: 0x40, N: 3, BrKind: isa.Plain},
	}
	got, err := Collect(NewSliceReader(good))
	if err != nil || len(got) != 3 {
		t.Fatalf("Collect good: %v, %d records", err, len(got))
	}

	disc := []Record{
		{Start: 0, N: 2, BrKind: isa.Plain},
		{Start: 0x100, N: 1, BrKind: isa.Plain}, // should start at 8
	}
	if _, err := Collect(NewSliceReader(disc)); err == nil {
		t.Error("discontinuity not detected")
	}
}

func TestStatsAccumulation(t *testing.T) {
	recs := []Record{
		{Start: 0, N: 5, BrKind: isa.CondBranch, Taken: true, Target: 0x40},
		{Start: 0x40, N: 3, BrKind: isa.CondBranch, Taken: false},
		{Start: 0x4c, N: 2, BrKind: isa.Call, Taken: true, Target: 0x80},
		{Start: 0x80, N: 1, BrKind: isa.Return, Taken: true, Target: 0x54},
		{Start: 0x54, N: 4, BrKind: isa.IndirectJump, Taken: true, Target: 0},
		{Start: 0, N: 7, BrKind: isa.Plain},
	}
	st, err := Scan(NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 6 || st.Insts != 22 || st.Branches != 5 {
		t.Errorf("counts: %+v", st)
	}
	if st.Conditionals != 2 || st.TakenCond != 1 {
		t.Errorf("conds: %+v", st)
	}
	if st.Calls != 1 || st.Returns != 1 || st.Indirect != 2 {
		t.Errorf("uncond detail: %+v", st)
	}
	if bf := st.BranchFrac(); bf < 0.22 || bf > 0.23 {
		t.Errorf("BranchFrac = %v", bf)
	}
	if tf := st.TakenFrac(); tf != 0.5 {
		t.Errorf("TakenFrac = %v", tf)
	}
}

func TestLimitReader(t *testing.T) {
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{Start: isa.Addr(i * 40), N: 10, BrKind: isa.Plain})
	}
	lr := NewLimitReader(NewSliceReader(recs), 35)
	st, err := Scan(lr)
	if err != nil {
		t.Fatal(err)
	}
	// Records are never split: 3 full records before crossing 35, plus the
	// one in flight.
	if st.Insts != 40 {
		t.Errorf("limited insts = %d, want 40", st.Insts)
	}
}
