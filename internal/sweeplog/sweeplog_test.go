package sweeplog

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tickClock returns a Clock advancing 1500µs per record, so t_us values in
// the golden are distinct and deterministic.
func tickClock() func() time.Duration {
	n := int64(0)
	return func() time.Duration {
		n++
		return time.Duration(n) * 1500 * time.Microsecond
	}
}

// emitAll drives every event method once — the full pinned schema.
func emitAll(l *Logger) {
	l.Dispatch("c1-0", 3, 1, "http://w0", 24, 8)
	l.Retry("c1-0", 3, 1, "http://w0", Cause5xx, errors.New("worker http://w0: status 500"))
	l.Backoff("c1-0", "http://w0", 1, 100*time.Millisecond)
	l.Requeue("c1-0", 3, 1)
	l.Retry("c1-0", 3, 2, "http://w1", CauseNetwork, errors.New("dial tcp: connection refused"))
	l.Evict("c1-0", "http://w1", 2)
	l.LocalFallback("c1-0", 3, 24, 8, CauseRetriesExhausted)
	l.BatchStart("c1-0", 4, 1, 8)
	l.JobError("c1-0", 4, 5, errors.New("job 5: insts must be positive"))
	l.BatchDone("c1-0", 4, 8, 2345*time.Microsecond)
}

// TestSchemaGolden pins the JSONL encoding: schema version, key order, and
// the attribute set of every event type. A diff here is a schema change and
// must bump SchemaVersion.
func TestSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{W: &buf, Clock: tickClock()})
	emitAll(l)

	path := filepath.Join("testdata", "sweeplog.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run SchemaGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sweep log diverged from %s:\n got: %s\nwant: %s\n(rerun with -update if intended; schema changes bump SchemaVersion)",
			path, buf.String(), want)
	}
}

// TestRecordsWellFormed parses every emitted line as JSON and checks the
// fixed prefix fields independent of the golden bytes.
func TestRecordsWellFormed(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{W: &buf, Clock: tickClock()})
	emitAll(l)

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("emitted %d records, want 10", len(lines))
	}
	prevT := int64(0)
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if v, _ := rec["v"].(float64); int(v) != SchemaVersion {
			t.Errorf("line %d: v = %v, want %d", i, rec["v"], SchemaVersion)
		}
		tus, ok := rec["t_us"].(float64)
		if !ok || int64(tus) <= prevT {
			t.Errorf("line %d: t_us = %v, want monotonically increasing past %d", i, rec["t_us"], prevT)
		}
		prevT = int64(tus)
		if ev, _ := rec["ev"].(string); ev == "" {
			t.Errorf("line %d: missing ev", i)
		}
		if !strings.HasPrefix(line, fmt.Sprintf(`{"v":%d,"t_us":`, SchemaVersion)) {
			t.Errorf("line %d: fixed prefix violated: %s", i, line)
		}
	}
}

// TestNilLoggerInert: every method on a nil *Logger is a no-op, the pattern
// call sites rely on to skip telemetry guards.
func TestNilLoggerInert(t *testing.T) {
	var l *Logger
	emitAll(l)
	if got := l.Recent(); got != nil {
		t.Errorf("nil logger Recent() = %v, want nil", got)
	}
	if err := l.WriteErr(); err != nil {
		t.Errorf("nil logger WriteErr() = %v, want nil", err)
	}
}

// TestRingFlightRecorder: the ring keeps the most recent RingSize lines in
// order and works without any sink writer.
func TestRingFlightRecorder(t *testing.T) {
	l := New(Options{RingSize: 4, Clock: tickClock()})
	for i := 0; i < 10; i++ {
		l.Requeue("c", uint64(i), 1)
	}
	got := l.Recent()
	if len(got) != 4 {
		t.Fatalf("ring holds %d lines, want 4", len(got))
	}
	for i, line := range got {
		wantBatch := fmt.Sprintf(`"batch":%d`, 6+i)
		if !strings.Contains(line, wantBatch) {
			t.Errorf("ring[%d] = %s, want it to contain %s (oldest-first order)", i, line, wantBatch)
		}
	}

	short := New(Options{RingSize: 4, Clock: tickClock()})
	short.Requeue("c", 0, 1)
	if got := short.Recent(); len(got) != 1 {
		t.Errorf("partial ring holds %d lines, want 1", len(got))
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

// TestWriteErr: the first sink failure is captured and sticky.
func TestWriteErr(t *testing.T) {
	l := New(Options{W: &failWriter{n: 1}, Clock: tickClock()})
	l.Requeue("c", 0, 1)
	if err := l.WriteErr(); err != nil {
		t.Fatalf("unexpected early write error: %v", err)
	}
	l.Requeue("c", 1, 1)
	l.Requeue("c", 2, 1)
	if err := l.WriteErr(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("WriteErr() = %v, want the first sink failure", err)
	}
	// The ring still records even when the sink is failing.
	if got := l.Recent(); len(got) != 3 {
		t.Errorf("ring holds %d lines, want 3", len(got))
	}
}
