// Package sweeplog is the structured decision log of the distributed sweep
// fleet: every scheduling decision the coordinator or a worker daemon makes
// — dispatch, retry (with a cause taxonomy), backoff, requeue, eviction,
// local fallback, batch execution — is recorded as one JSONL line under a
// pinned schema, so a slow or degraded campaign can be debugged (or
// replayed postmortem) from its log alone.
//
// The logger is built on log/slog with a custom handler, with two
// deliberate deviations from stock slog:
//
//   - Timestamps go through internal/hosttime: each record carries "t_us",
//     microseconds of monotonic offset since the logger's creation, never a
//     calendar time. Wall-clock values cannot leak into artifacts, and two
//     runs of the same campaign produce structurally comparable logs.
//   - A nil *Logger is valid and inert, exactly like obs.Probe: call sites
//     in the dispatch hot path need no guards, and the differential tests
//     prove rendered sweep bytes are identical with logging on or off.
//
// Every logger also keeps a bounded in-memory ring of its most recent
// rendered lines — the coordinator's flight recorder, served live by
// paperbench's /sweepz endpoint even when no sink is configured.
package sweeplog

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"strconv"
	"sync"
	"time"

	"specfetch/internal/hosttime"
)

// SchemaVersion is stamped on every record as "v". Bump it when a field is
// renamed, retyped, or removed; the golden test pins the encoding.
const SchemaVersion = 1

// Cause classifies why a scheduling decision happened. The retry taxonomy
// (network, 5xx, corrupt, version, tamper) blames the worker; the fallback
// taxonomy (permanent, retries-exhausted, no-workers) explains why a batch
// left the remote path.
type Cause string

const (
	// CauseNetwork: transport error or timeout — the worker never answered.
	CauseNetwork Cause = "network"
	// Cause5xx: the worker answered with a 5xx status.
	Cause5xx Cause = "5xx"
	// CauseCorrupt: undecodable body or protocol violation (wrong batch ID
	// or result count).
	CauseCorrupt Cause = "corrupt"
	// CauseVersion: the result speaks a different wire version.
	CauseVersion Cause = "version"
	// CauseTamper: a result's counters do not rebuild its claimed audit
	// identity.
	CauseTamper Cause = "tamper"
	// CausePermanent: the worker proved the batch unrunnable (4xx); only
	// the local runner can produce the authoritative outcome.
	CausePermanent Cause = "permanent"
	// CauseRetriesExhausted: the batch burned its remote retry budget.
	CauseRetriesExhausted Cause = "retries-exhausted"
	// CauseNoWorkers: no live worker was left to run the batch.
	CauseNoWorkers Cause = "no-workers"
)

// Options configures a Logger.
type Options struct {
	// W receives one JSON record per line. Nil keeps the log in the ring
	// only (flight-recorder mode).
	W io.Writer
	// RingSize bounds the in-memory flight recorder; 0 means 256, negative
	// disables it.
	RingSize int
	// Clock overrides the monotonic offset source (tests pin it for the
	// golden). Nil reads hosttime relative to New.
	Clock func() time.Duration
}

// Logger records fleet scheduling decisions. A nil *Logger is inert; all
// methods are safe for concurrent use.
type Logger struct {
	sl *slog.Logger
	h  *handler
}

// New builds a logger. The record clock starts at zero here.
func New(opt Options) *Logger {
	ring := opt.RingSize
	if ring == 0 {
		ring = 256
	}
	if ring < 0 {
		ring = 0
	}
	clock := opt.Clock
	if clock == nil {
		epoch := hosttime.Now()
		clock = func() time.Duration { return hosttime.Since(epoch) }
	}
	h := &handler{w: opt.W, clock: clock, ringCap: ring}
	return &Logger{sl: slog.New(h), h: h}
}

// handler is the slog.Handler rendering records as schema-pinned JSONL: a
// fixed prefix ({"v":N,"t_us":N,"ev":"..."}) followed by the record's attrs
// in call order. It ignores slog's wall-clock record time entirely.
type handler struct {
	clock   func() time.Duration
	ringCap int

	mu       sync.Mutex
	w        io.Writer
	ring     []string
	ringNext int
	err      error
}

func (h *handler) Enabled(context.Context, slog.Level) bool { return true }

// WithAttrs and WithGroup are required by slog.Handler but unused: the
// typed Logger methods always pass complete attr sets per record.
func (h *handler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *handler) WithGroup(string) slog.Handler      { return h }

func (h *handler) Handle(_ context.Context, r slog.Record) error {
	var b bytes.Buffer
	b.WriteString(`{"v":`)
	b.WriteString(strconv.Itoa(SchemaVersion))
	b.WriteString(`,"t_us":`)
	b.WriteString(strconv.FormatInt(h.clock().Microseconds(), 10))
	b.WriteString(`,"ev":`)
	appendJSONString(&b, r.Message)
	r.Attrs(func(a slog.Attr) bool {
		b.WriteByte(',')
		appendJSONString(&b, a.Key)
		b.WriteByte(':')
		switch a.Value.Kind() {
		case slog.KindInt64:
			b.WriteString(strconv.FormatInt(a.Value.Int64(), 10))
		case slog.KindUint64:
			b.WriteString(strconv.FormatUint(a.Value.Uint64(), 10))
		default:
			appendJSONString(&b, a.Value.String())
		}
		return true
	})
	b.WriteByte('}')
	line := b.String()

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ringCap > 0 {
		if len(h.ring) < h.ringCap {
			h.ring = append(h.ring, line)
		} else {
			h.ring[h.ringNext] = line
			h.ringNext = (h.ringNext + 1) % h.ringCap
		}
	}
	if h.w != nil {
		if _, err := io.WriteString(h.w, line+"\n"); err != nil && h.err == nil {
			h.err = err
		}
	}
	return nil
}

// appendJSONString writes s as a JSON string literal. json.Marshal of a
// string cannot fail; the error is impossible by construction.
func appendJSONString(b *bytes.Buffer, s string) {
	enc, _ := json.Marshal(s)
	b.Write(enc)
}

// log emits one record through the slog pipeline.
func (l *Logger) log(ev string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.sl.LogAttrs(context.Background(), slog.LevelInfo, ev, attrs...)
}

// errAttr renders err for the log ("" for nil, which callers avoid).
func errAttr(err error) slog.Attr {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	return slog.String("error", msg)
}

// Dispatch records one batch being handed to a worker for its
// attempt-numbered try (attempt counts from 1).
func (l *Logger) Dispatch(campaign string, batch uint64, attempt int, worker string, offset, jobs int) {
	l.log("dispatch",
		slog.String("campaign", campaign), slog.Uint64("batch", batch),
		slog.Int("attempt", attempt), slog.String("worker", worker),
		slog.Int("offset", offset), slog.Int("jobs", jobs))
}

// Retry records a failed remote attempt with its classified cause.
func (l *Logger) Retry(campaign string, batch uint64, attempt int, worker string, cause Cause, err error) {
	l.log("retry",
		slog.String("campaign", campaign), slog.Uint64("batch", batch),
		slog.Int("attempt", attempt), slog.String("worker", worker),
		slog.String("cause", string(cause)), errAttr(err))
}

// Backoff records a worker sitting out after its fails-th consecutive
// failure.
func (l *Logger) Backoff(campaign, worker string, fails int, d time.Duration) {
	l.log("backoff",
		slog.String("campaign", campaign), slog.String("worker", worker),
		slog.Int("fails", fails), slog.Int64("dur_us", d.Microseconds()))
}

// Requeue records a failed batch going back on the shared queue for
// another worker.
func (l *Logger) Requeue(campaign string, batch uint64, attempt int) {
	l.log("requeue",
		slog.String("campaign", campaign), slog.Uint64("batch", batch),
		slog.Int("attempt", attempt))
}

// Evict records a worker being permanently removed from the fleet.
func (l *Logger) Evict(campaign, worker string, fails int) {
	l.log("evict",
		slog.String("campaign", campaign), slog.String("worker", worker),
		slog.Int("fails", fails))
}

// LocalFallback records a batch leaving the remote path for the in-process
// runner, with why.
func (l *Logger) LocalFallback(campaign string, batch uint64, offset, jobs int, cause Cause) {
	l.log("local",
		slog.String("campaign", campaign), slog.Uint64("batch", batch),
		slog.Int("offset", offset), slog.Int("jobs", jobs),
		slog.String("cause", string(cause)))
}

// BatchStart records (worker side) a batch beginning execution.
func (l *Logger) BatchStart(campaign string, batch uint64, attempt, jobs int) {
	l.log("batch_start",
		slog.String("campaign", campaign), slog.Uint64("batch", batch),
		slog.Int("attempt", attempt), slog.Int("jobs", jobs))
}

// BatchDone records (worker side) a batch completing after d of execution.
func (l *Logger) BatchDone(campaign string, batch uint64, jobs int, d time.Duration) {
	l.log("batch_done",
		slog.String("campaign", campaign), slog.Uint64("batch", batch),
		slog.Int("jobs", jobs), slog.Int64("dur_us", d.Microseconds()))
}

// JobError records (worker side) a job failing deterministically.
func (l *Logger) JobError(campaign string, batch uint64, job int, err error) {
	l.log("job_error",
		slog.String("campaign", campaign), slog.Uint64("batch", batch),
		slog.Int("job", job), errAttr(err))
}

// Recent returns the flight recorder's contents, oldest first.
func (l *Logger) Recent() []string {
	if l == nil {
		return nil
	}
	h := l.h
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.ring))
	if len(h.ring) < h.ringCap {
		out = append(out, h.ring...)
		return out
	}
	out = append(out, h.ring[h.ringNext:]...)
	out = append(out, h.ring[:h.ringNext]...)
	return out
}

// WriteErr returns the first sink write error, if any: a persisted decision
// log that silently stopped persisting would defeat its postmortem purpose.
func (l *Logger) WriteErr() error {
	if l == nil {
		return nil
	}
	l.h.mu.Lock()
	defer l.h.mu.Unlock()
	return l.h.err
}
