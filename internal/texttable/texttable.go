// Package texttable renders the paper's tables and stacked-bar figures as
// plain text and CSV, so every experiment's output can be compared to the
// paper from a terminal or checked into results files.
package texttable

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows with a fixed header.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowF appends a row of formatted values: strings pass through, float64
// renders with the given precision, ints render plainly.
func (t *Table) AddRowF(prec int, cells ...any) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			out = append(out, v)
		case float64:
			out = append(out, fmt.Sprintf("%.*f", prec, v))
		case int:
			out = append(out, fmt.Sprintf("%d", v))
		case int64:
			out = append(out, fmt.Sprintf("%d", v))
		case uint64:
			out = append(out, fmt.Sprintf("%d", v))
		default:
			out = append(out, fmt.Sprint(v))
		}
	}
	t.AddRow(out...)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (simple cells: no quoting needed for
// our numeric/identifier content, but commas are escaped defensively).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// StackedBars renders grouped, stacked horizontal bars — the textual
// equivalent of the paper's Figures 1–4. Each bar is a labelled sequence of
// components; the bar length is proportional to the total value.
type StackedBars struct {
	title    string
	unit     string
	segments []string // component names, in stacking order
	bars     []bar
	scale    float64 // value per character; 0 = auto
}

type bar struct {
	group string // e.g. benchmark name
	label string // e.g. policy name
	vals  []float64
}

// NewStackedBars creates a figure with the given stacking order.
func NewStackedBars(title, unit string, segments ...string) *StackedBars {
	return &StackedBars{title: title, unit: unit, segments: segments}
}

// AddBar appends one bar; vals must align with the segment order.
func (s *StackedBars) AddBar(group, label string, vals ...float64) {
	v := make([]float64, len(s.segments))
	copy(v, vals)
	s.bars = append(s.bars, bar{group: group, label: label, vals: v})
}

// segmentRunes are the fill characters per component, cycled in order.
var segmentRunes = []rune{'#', '=', '+', 'o', '.', '~', '*', '%'}

// Render writes the figure.
func (s *StackedBars) Render(w io.Writer) error {
	const width = 60
	maxTotal := 0.0
	for _, b := range s.bars {
		t := 0.0
		for _, v := range b.vals {
			t += v
		}
		if t > maxTotal {
			maxTotal = t
		}
	}
	scale := s.scale
	if scale <= 0 {
		if maxTotal <= 0 {
			maxTotal = 1
		}
		scale = maxTotal / width
	}

	labelW := 0
	for _, b := range s.bars {
		l := len(b.group) + 1 + len(b.label)
		if l > labelW {
			labelW = l
		}
	}

	var out strings.Builder
	if s.title != "" {
		fmt.Fprintf(&out, "%s\n", s.title)
	}
	fmt.Fprintf(&out, "legend:")
	for i, seg := range s.segments {
		fmt.Fprintf(&out, "  %c=%s", segmentRunes[i%len(segmentRunes)], seg)
	}
	fmt.Fprintf(&out, "   (each char = %.3f %s)\n", scale, s.unit)

	prevGroup := ""
	for _, b := range s.bars {
		if b.group != prevGroup {
			if prevGroup != "" {
				out.WriteByte('\n')
			}
			prevGroup = b.group
		}
		total := 0.0
		fmt.Fprintf(&out, "%-*s |", labelW, b.group+" "+b.label)
		for i, v := range b.vals {
			total += v
			n := int(v/scale + 0.5)
			out.WriteString(strings.Repeat(string(segmentRunes[i%len(segmentRunes)]), n))
		}
		fmt.Fprintf(&out, "| %.3f\n", total)
	}
	_, err := io.WriteString(w, out.String())
	return err
}

// String renders to a string.
func (s *StackedBars) String() string {
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// RenderCSV writes the figure's data as CSV: one row per bar with the
// per-segment values and the total.
func (s *StackedBars) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("group,label")
	for _, seg := range s.segments {
		b.WriteByte(',')
		b.WriteString(seg)
	}
	b.WriteString(",total\n")
	for _, bar := range s.bars {
		fmt.Fprintf(&b, "%s,%s", bar.group, bar.label)
		total := 0.0
		for _, v := range bar.vals {
			fmt.Fprintf(&b, ",%.6f", v)
			total += v
		}
		fmt.Fprintf(&b, ",%.6f\n", total)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
