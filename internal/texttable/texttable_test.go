package texttable

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := New("My Title", "Program", "ISPI")
	tab.AddRow("gcc", "1.23")
	tab.AddRowF(2, "groff", 2.345)
	tab.AddRowF(2, "n", 42, int64(7), uint64(8))
	out := tab.String()

	for _, want := range []string{"My Title", "Program", "ISPI", "gcc", "1.23", "groff", "2.35"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableRowPadding(t *testing.T) {
	tab := New("", "A", "B", "C")
	tab.AddRow("x") // short row pads
	out := tab.String()
	if !strings.Contains(out, "x") {
		t.Error("row lost")
	}
}

func TestTableCSV(t *testing.T) {
	tab := New("t", "A", "B")
	tab.AddRow("plain", `with "quote", and comma`)
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "A,B\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, `"with ""quote"", and comma"`) {
		t.Errorf("escaping wrong: %q", out)
	}
}

func TestStackedBars(t *testing.T) {
	fig := NewStackedBars("Fig", "ISPI", "branch", "rt_icache")
	fig.AddBar("gcc", "Oracle", 0.5, 0.9)
	fig.AddBar("gcc", "Resume", 0.5, 0.7)
	fig.AddBar("li", "Oracle", 0.3, 0.2)
	out := fig.String()

	for _, want := range []string{"Fig", "legend:", "#=branch", "==rt_icache",
		"gcc Oracle", "gcc Resume", "li Oracle", "1.400", "1.200", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Bars must contain both fill characters.
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Error("bar fills missing")
	}
	// The larger bar renders longer.
	var oracleLen, resumeLen int
	for _, ln := range strings.Split(out, "\n") {
		fill := strings.Count(ln, "#") + strings.Count(ln, "=")
		if strings.Contains(ln, "gcc Oracle") {
			oracleLen = fill
		}
		if strings.Contains(ln, "gcc Resume") {
			resumeLen = fill
		}
	}
	if oracleLen <= resumeLen {
		t.Errorf("oracle bar (%d) not longer than resume (%d)", oracleLen, resumeLen)
	}
}

func TestStackedBarsZero(t *testing.T) {
	fig := NewStackedBars("z", "u", "a")
	fig.AddBar("g", "l", 0)
	if out := fig.String(); !strings.Contains(out, "0.000") {
		t.Errorf("zero bar rendering: %q", out)
	}
}

func TestStackedBarsCSV(t *testing.T) {
	fig := NewStackedBars("f", "ISPI", "a", "b")
	fig.AddBar("gcc", "Oracle", 0.25, 0.75)
	var buf strings.Builder
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"group,label,a,b,total", "gcc,Oracle,0.250000,0.750000,1.000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
