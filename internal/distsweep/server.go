package distsweep

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"

	"specfetch/internal/hosttime"
	"specfetch/internal/obs"
	"specfetch/internal/sweeplog"
)

// Runner executes one validated job spec and returns the result plus the
// audit identity the run was verified against. The experiments package
// supplies the production runner (spec → bench → simulate); tests supply
// fakes. A Runner must be safe for concurrent use: the HTTP server invokes
// it from one goroutine per in-flight batch.
type Runner func(spec JobSpec) (JobResult, error)

// ServerOptions configures a worker-side batch server.
type ServerOptions struct {
	// Runner executes each job; required.
	Runner Runner
	// Metrics, when non-nil, receives worker-side counters
	// (specfetch_worker_*), the sweep_batch_seconds histogram, the
	// jobs_failed counter, and the wire_version gauge, and is exposed at
	// /metrics on the handler.
	Metrics *obs.Registry
	// Log, when non-nil, records batch execution (batch_start, batch_done,
	// job_error) under the campaign the coordinator stamped on the batch.
	Log *sweeplog.Logger
	// MaxBatchJobs rejects batches larger than this with HTTP 400;
	// 0 means the default of 4096.
	MaxBatchJobs int
}

// Server is the worker half of the protocol: it decodes batches, runs each
// job through the Runner in job order, and returns job-ordered results.
// Jobs within one batch run serially; process-level parallelism comes from
// running more workers (or pointing several coordinators at one worker).
type Server struct {
	opt  ServerOptions
	mux  *http.ServeMux
	jobs atomic.Int64 // jobs completed since start, reported by /healthz
}

// NewServer builds a worker server around a Runner.
func NewServer(opt ServerOptions) *Server {
	if opt.Runner == nil {
		panic("distsweep: ServerOptions.Runner is required")
	}
	if opt.MaxBatchJobs <= 0 {
		opt.MaxBatchJobs = 4096
	}
	s := &Server{opt: opt, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	if opt.Metrics != nil {
		s.mux.Handle("GET /metrics", opt.Metrics.Handler())
		opt.Metrics.Gauge("wire_version",
			"Sweep wire protocol version this worker speaks.").Set(float64(WireVersion))
	}
	return s
}

// Handler returns the HTTP handler serving /healthz, /v1/run, and (with
// metrics configured) /metrics.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// Ignoring the write error: the peer hanging up mid-health-check needs
	// no recovery beyond dropping the connection.
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"version":   WireVersion,
		"jobs_done": s.jobs.Load(),
	})
}

// fail writes an ErrorBody with the given status. 4xx means the batch (or
// a job in it) is permanently unrunnable — the coordinator must not burn
// retries on it; 5xx means this worker failed and another may succeed.
func (s *Server) fail(w http.ResponseWriter, status int, job int, format string, args ...any) {
	if s.opt.Metrics != nil {
		s.opt.Metrics.Counter("specfetch_worker_batch_errors_total",
			"Batches answered with an error status.").Inc()
		if job >= 0 {
			s.opt.Metrics.Counter("jobs_failed",
				"Sweep jobs that failed validation or execution on this worker.").Inc()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: fmt.Sprintf(format, args...), Job: job})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var batch Batch
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&batch); err != nil {
		s.fail(w, http.StatusBadRequest, -1, "decoding batch: %v", err)
		return
	}
	if batch.Version != WireVersion {
		s.fail(w, http.StatusBadRequest, -1,
			"wire version %d, worker speaks %d", batch.Version, WireVersion)
		return
	}
	if len(batch.Jobs) == 0 || len(batch.Jobs) > s.opt.MaxBatchJobs {
		s.fail(w, http.StatusBadRequest, -1,
			"batch has %d jobs (limit %d)", len(batch.Jobs), s.opt.MaxBatchJobs)
		return
	}
	for i, job := range batch.Jobs {
		if err := job.Validate(); err != nil {
			s.opt.Log.JobError(batch.Campaign, batch.ID, i, err)
			s.fail(w, http.StatusUnprocessableEntity, i, "job %d: %v", i, err)
			return
		}
	}

	s.opt.Log.BatchStart(batch.Campaign, batch.ID, batch.Attempt, len(batch.Jobs))
	epoch := hosttime.Now()
	out := BatchResult{
		Version: WireVersion, ID: batch.ID,
		Pid:     os.Getpid(),
		Results: make([]JobResult, 0, len(batch.Jobs)),
		Spans:   make([]WireSpan, 0, len(batch.Jobs)),
	}
	for i, job := range batch.Jobs {
		start := hosttime.Now()
		res, err := s.runJob(job)
		if err != nil {
			// A failing simulation is deterministic: every retry would fail
			// identically, so report it permanent (422) with the job index.
			s.opt.Log.JobError(batch.Campaign, batch.ID, i, err)
			s.fail(w, http.StatusUnprocessableEntity, i, "job %d: %v", i, err)
			return
		}
		// Per-job timing on this process's monotonic clock, as an offset
		// from batch-execution start: the coordinator re-anchors these onto
		// its own axis for the combined fleet trace.
		out.Spans = append(out.Spans, WireSpan{
			Job:     i,
			Name:    job.Profile.Name + "/" + job.Config.Policy.String(),
			StartUS: start.Sub(epoch).Microseconds(),
			DurUS:   hosttime.Since(start).Microseconds(),
		})
		out.Results = append(out.Results, res)
		s.jobs.Add(1)
		if s.opt.Metrics != nil {
			s.opt.Metrics.Counter("specfetch_worker_jobs_total",
				"Sweep jobs completed by this worker.").Inc()
		}
	}
	exec := hosttime.Since(epoch)
	out.ExecUS = exec.Microseconds()
	s.opt.Log.BatchDone(batch.Campaign, batch.ID, len(batch.Jobs), exec)
	if s.opt.Metrics != nil {
		s.opt.Metrics.Counter("specfetch_worker_batches_total",
			"Batches completed by this worker.").Inc()
		s.opt.Metrics.Histogram("sweep_batch_seconds",
			"Batch execution wall time on this worker.").Observe(exec.Seconds())
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Headers are already out; nothing more to tell the peer. The
		// coordinator sees a truncated body and treats it as a worker fault.
		return
	}
}

// runJob invokes the Runner, converting a sampled-audit stream-violation
// panic (*obs.AuditError) into an error so one poisoned job cannot take
// down the daemon.
func (s *Server) runJob(job JobSpec) (res JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if aerr, ok := r.(*obs.AuditError); ok {
				err = aerr
				return
			}
			panic(r)
		}
	}()
	return s.opt.Runner(job)
}
