package distsweep

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"specfetch/internal/obs"
)

// Runner executes one validated job spec and returns the result plus the
// audit identity the run was verified against. The experiments package
// supplies the production runner (spec → bench → simulate); tests supply
// fakes. A Runner must be safe for concurrent use: the HTTP server invokes
// it from one goroutine per in-flight batch.
type Runner func(spec JobSpec) (JobResult, error)

// ServerOptions configures a worker-side batch server.
type ServerOptions struct {
	// Runner executes each job; required.
	Runner Runner
	// Metrics, when non-nil, receives worker-side counters
	// (specfetch_worker_*) and is exposed at /metrics on the handler.
	Metrics *obs.Registry
	// MaxBatchJobs rejects batches larger than this with HTTP 400;
	// 0 means the default of 4096.
	MaxBatchJobs int
}

// Server is the worker half of the protocol: it decodes batches, runs each
// job through the Runner in job order, and returns job-ordered results.
// Jobs within one batch run serially; process-level parallelism comes from
// running more workers (or pointing several coordinators at one worker).
type Server struct {
	opt  ServerOptions
	mux  *http.ServeMux
	jobs atomic.Int64 // jobs completed since start, reported by /healthz
}

// NewServer builds a worker server around a Runner.
func NewServer(opt ServerOptions) *Server {
	if opt.Runner == nil {
		panic("distsweep: ServerOptions.Runner is required")
	}
	if opt.MaxBatchJobs <= 0 {
		opt.MaxBatchJobs = 4096
	}
	s := &Server{opt: opt, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	if opt.Metrics != nil {
		s.mux.Handle("GET /metrics", opt.Metrics.Handler())
	}
	return s
}

// Handler returns the HTTP handler serving /healthz, /v1/run, and (with
// metrics configured) /metrics.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// Ignoring the write error: the peer hanging up mid-health-check needs
	// no recovery beyond dropping the connection.
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"version":   WireVersion,
		"jobs_done": s.jobs.Load(),
	})
}

// fail writes an ErrorBody with the given status. 4xx means the batch (or
// a job in it) is permanently unrunnable — the coordinator must not burn
// retries on it; 5xx means this worker failed and another may succeed.
func (s *Server) fail(w http.ResponseWriter, status int, job int, format string, args ...any) {
	if s.opt.Metrics != nil {
		s.opt.Metrics.Counter("specfetch_worker_batch_errors_total",
			"Batches answered with an error status.").Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: fmt.Sprintf(format, args...), Job: job})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var batch Batch
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&batch); err != nil {
		s.fail(w, http.StatusBadRequest, -1, "decoding batch: %v", err)
		return
	}
	if batch.Version != WireVersion {
		s.fail(w, http.StatusBadRequest, -1,
			"wire version %d, worker speaks %d", batch.Version, WireVersion)
		return
	}
	if len(batch.Jobs) == 0 || len(batch.Jobs) > s.opt.MaxBatchJobs {
		s.fail(w, http.StatusBadRequest, -1,
			"batch has %d jobs (limit %d)", len(batch.Jobs), s.opt.MaxBatchJobs)
		return
	}
	for i, job := range batch.Jobs {
		if err := job.Validate(); err != nil {
			s.fail(w, http.StatusUnprocessableEntity, i, "job %d: %v", i, err)
			return
		}
	}

	out := BatchResult{Version: WireVersion, ID: batch.ID, Results: make([]JobResult, 0, len(batch.Jobs))}
	for i, job := range batch.Jobs {
		res, err := s.runJob(job)
		if err != nil {
			// A failing simulation is deterministic: every retry would fail
			// identically, so report it permanent (422) with the job index.
			s.fail(w, http.StatusUnprocessableEntity, i, "job %d: %v", i, err)
			return
		}
		out.Results = append(out.Results, res)
		s.jobs.Add(1)
		if s.opt.Metrics != nil {
			s.opt.Metrics.Counter("specfetch_worker_jobs_total",
				"Sweep jobs completed by this worker.").Inc()
		}
	}
	if s.opt.Metrics != nil {
		s.opt.Metrics.Counter("specfetch_worker_batches_total",
			"Batches completed by this worker.").Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Headers are already out; nothing more to tell the peer. The
		// coordinator sees a truncated body and treats it as a worker fault.
		return
	}
}

// runJob invokes the Runner, converting a sampled-audit stream-violation
// panic (*obs.AuditError) into an error so one poisoned job cannot take
// down the daemon.
func (s *Server) runJob(job JobSpec) (res JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if aerr, ok := r.(*obs.AuditError); ok {
				err = aerr
				return
			}
			panic(r)
		}
	}()
	return s.opt.Runner(job)
}
