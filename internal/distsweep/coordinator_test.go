package distsweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"specfetch/internal/core"
	"specfetch/internal/obs"
	"specfetch/internal/sweeplog"
)

// fakeResult derives a deterministic JobResult from a spec, standing in
// for a real simulation in protocol tests.
func fakeResult(spec JobSpec) JobResult {
	res := fixtureBatchResult().Results[0].Result
	res.Insts = spec.Insts
	res.Cycles = core.Cycles(int64(spec.Seed) + spec.Insts)
	res.Lost[0] = core.Slots(spec.Seed)
	return JobResult{Result: res, Audit: res.AuditFinal()}
}

func fakeRunner(spec JobSpec) (JobResult, error) { return fakeResult(spec), nil }

// testJobs builds n valid specs distinguished by seed.
func testJobs(n int) []JobSpec {
	jobs := make([]JobSpec, n)
	for i := range jobs {
		jobs[i] = fixtureBatch().Jobs[1]
		jobs[i].Seed = uint64(1000 + i)
	}
	return jobs
}

// wantResults is what any correct execution of testJobs must produce.
func wantResults(jobs []JobSpec) []JobResult {
	out := make([]JobResult, len(jobs))
	for i, j := range jobs {
		out[i] = fakeResult(j)
	}
	return out
}

// localRunner returns a LocalRunner computing fakeResult in-process and
// counting invocations.
func localRunner(calls *atomic.Int64) LocalRunner {
	return func(offset int, jobs []JobSpec) ([]JobResult, error) {
		calls.Add(1)
		out := make([]JobResult, len(jobs))
		for i, j := range jobs {
			out[i] = fakeResult(j)
		}
		return out, nil
	}
}

// newWorker spins up a real protocol server over fakeRunner. perJob > 0
// slows each job down, so tests can keep a worker busy long enough for a
// peer to participate.
func newWorker(t *testing.T, perJob time.Duration) *httptest.Server {
	t.Helper()
	runner := fakeRunner
	if perJob > 0 {
		runner = func(spec JobSpec) (JobResult, error) {
			time.Sleep(perJob)
			return fakeResult(spec), nil
		}
	}
	srv := httptest.NewServer(NewServer(ServerOptions{Runner: runner}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func fastOptions(workers ...string) CoordinatorOptions {
	return CoordinatorOptions{
		Workers:     workers,
		BatchSize:   3,
		Timeout:     2 * time.Second,
		Retries:     3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		EvictAfter:  2,
	}
}

// TestCoordinatorHappyPath: every batch completes remotely; the local
// runner is never consulted; results land at their indexes.
func TestCoordinatorHappyPath(t *testing.T) {
	w1, w2 := newWorker(t, 0), newWorker(t, 0)
	reg := obs.NewRegistry()
	opt := fastOptions(w1.URL, w2.URL)
	opt.Metrics = reg
	c := New(opt)

	jobs := testJobs(10)
	var localCalls atomic.Int64
	var remoted atomic.Int64
	got, err := c.Run(jobs, localRunner(&localCalls), func(offset int, res []JobResult) {
		remoted.Add(int64(len(res)))
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Error("remote results differ from direct computation")
	}
	if localCalls.Load() != 0 {
		t.Errorf("local runner called %d times on the happy path", localCalls.Load())
	}
	if remoted.Load() != int64(len(jobs)) {
		t.Errorf("onRemote saw %d jobs, want %d", remoted.Load(), len(jobs))
	}
	if v := reg.Counter("specfetch_dispatch_jobs_total", "").Value(); v != int64(len(jobs)) {
		t.Errorf("dispatch jobs counter = %d, want %d", v, len(jobs))
	}
}

// flakyHandler wraps a healthy worker and misbehaves in a configurable way
// for the first `bad` requests.
type flakyHandler struct {
	inner http.Handler
	bad   atomic.Int64
	mode  string // "drop", "corrupt", "delay", "tamper"
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/v1/") || f.bad.Add(-1) < 0 {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch f.mode {
	case "drop":
		w.WriteHeader(http.StatusInternalServerError)
	case "corrupt":
		_, _ = w.Write([]byte(`{"version":1,"id":`)) // truncated JSON
	case "delay":
		time.Sleep(500 * time.Millisecond)
		w.WriteHeader(http.StatusInternalServerError)
	case "tamper":
		rec := httptest.NewRecorder()
		f.inner.ServeHTTP(rec, r)
		var br BatchResult
		if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil || len(br.Results) == 0 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		// Claim fewer cycles than the audited run: the self-check identity
		// no longer holds.
		br.Results[0].Result.Cycles -= 17
		_ = json.NewEncoder(w).Encode(br)
	default:
		panic("unknown mode " + f.mode)
	}
}

// TestCoordinatorFaultInjection: a worker that drops, corrupts, delays, or
// tampers with batches mid-sweep never changes the reduced results — the
// batches are retried on the healthy worker without any local fallback.
func TestCoordinatorFaultInjection(t *testing.T) {
	for _, mode := range []string{"drop", "corrupt", "delay", "tamper"} {
		t.Run(mode, func(t *testing.T) {
			// The healthy worker is slowed so the flaky one keeps pulling
			// batches instead of watching the queue drain.
			healthy := newWorker(t, 5*time.Millisecond)
			flaky := &flakyHandler{inner: NewServer(ServerOptions{Runner: fakeRunner}).Handler(), mode: mode}
			flaky.bad.Store(1 << 30) // misbehave forever
			flakySrv := httptest.NewServer(flaky)
			t.Cleanup(flakySrv.Close)

			reg := obs.NewRegistry()
			opt := fastOptions(healthy.URL, flakySrv.URL)
			if mode == "delay" {
				opt.Timeout = 100 * time.Millisecond
			}
			opt.Metrics = reg
			c := New(opt)

			jobs := testJobs(18)
			var localCalls atomic.Int64
			got, err := c.Run(jobs, localRunner(&localCalls), nil)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !reflect.DeepEqual(got, wantResults(jobs)) {
				t.Error("results differ with a faulty worker in the fleet")
			}
			if localCalls.Load() != 0 {
				t.Errorf("local fallback ran %d times; survivors should have absorbed the batches", localCalls.Load())
			}
			if v := reg.Counter("specfetch_dispatch_retries_total", "").Value(); v < 1 {
				t.Errorf("retries = %d, want >= 1", v)
			}
			if mode == "tamper" {
				if v := reg.Counter("specfetch_dispatch_audit_rejects_total", "").Value(); v < 1 {
					t.Errorf("audit rejects = %d, want >= 1", v)
				}
			}
		})
	}
}

// TestCoordinatorEviction: a lone worker failing every batch is evicted
// after exactly EvictAfter consecutive failures, and the whole sweep
// completes through local fallback.
func TestCoordinatorEviction(t *testing.T) {
	flaky := &flakyHandler{inner: NewServer(ServerOptions{Runner: fakeRunner}).Handler(), mode: "drop"}
	flaky.bad.Store(1 << 30)
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)

	reg := obs.NewRegistry()
	opt := fastOptions(srv.URL)
	opt.Metrics = reg
	c := New(opt)

	jobs := testJobs(12)
	var localCalls atomic.Int64
	got, err := c.Run(jobs, localRunner(&localCalls), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Error("results differ after eviction + local fallback")
	}
	if len(c.Alive()) != 0 {
		t.Errorf("failing worker still alive: %v", c.Alive())
	}
	if v := reg.Counter("specfetch_dispatch_evictions_total", "").Value(); v != 1 {
		t.Errorf("evictions = %d, want 1", v)
	}
	if v := reg.Counter("specfetch_dispatch_retries_total", "").Value(); v != int64(fastOptions().EvictAfter) {
		t.Errorf("retries = %d, want exactly EvictAfter (%d)", v, fastOptions().EvictAfter)
	}
	if localCalls.Load() == 0 {
		t.Error("no local fallback after the only worker was evicted")
	}
}

// TestCoordinatorAllWorkersGone: with every worker unreachable, the whole
// sweep falls back to local execution and still completes.
func TestCoordinatorAllWorkersGone(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close() // nothing listens here any more
	c := New(fastOptions(dead.URL))

	jobs := testJobs(7)
	var localCalls atomic.Int64
	got, err := c.Run(jobs, localRunner(&localCalls), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Error("local-fallback results differ")
	}
	if localCalls.Load() == 0 {
		t.Error("local runner never ran with a dead fleet")
	}
	if len(c.Alive()) != 0 {
		t.Errorf("dead worker still alive: %v", c.Alive())
	}

	// A later sweep on the same coordinator skips remote entirely.
	localCalls.Store(0)
	if _, err := c.Run(testJobs(3), localRunner(&localCalls), nil); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if localCalls.Load() == 0 {
		t.Error("second sweep did not fall back locally")
	}
}

// TestCoordinatorPermanentError: a job the worker rejects as unrunnable
// (4xx) is not retried remotely; the local runner decides the sweep's
// deterministic outcome.
func TestCoordinatorPermanentError(t *testing.T) {
	boom := fmt.Errorf("engine exploded deterministically")
	srv := httptest.NewServer(NewServer(ServerOptions{Runner: func(spec JobSpec) (JobResult, error) {
		return JobResult{}, boom
	}}).Handler())
	t.Cleanup(srv.Close)

	reg := obs.NewRegistry()
	opt := fastOptions(srv.URL)
	opt.Metrics = reg
	c := New(opt)

	jobs := testJobs(2)
	var localCalls atomic.Int64
	wantErr := fmt.Errorf("local says no")
	_, err := c.Run(jobs, func(offset int, js []JobSpec) ([]JobResult, error) {
		localCalls.Add(1)
		return nil, wantErr
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "local says no") {
		t.Fatalf("err = %v, want the local runner's verdict", err)
	}
	if localCalls.Load() == 0 {
		t.Fatal("local runner never consulted for the permanent error")
	}
	// The worker stays alive — the batch was at fault, not the worker.
	if len(c.Alive()) != 1 {
		t.Errorf("healthy worker evicted over a permanent job error; alive=%v", c.Alive())
	}
	if v := reg.Counter("specfetch_dispatch_retries_total", "").Value(); v != 0 {
		t.Errorf("permanent error burned %d retries", v)
	}
}

// TestCoordinatorVersionMismatch: a worker speaking a different wire
// version is rejected up front by its own 400, and the sweep still
// completes through local fallback.
func TestCoordinatorVersionMismatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(ErrorBody{Error: "wire version 99, worker speaks 1", Job: -1})
	}))
	t.Cleanup(srv.Close)
	c := New(fastOptions(srv.URL))

	jobs := testJobs(3)
	var localCalls atomic.Int64
	got, err := c.Run(jobs, localRunner(&localCalls), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Error("results differ after version-mismatch fallback")
	}
	if localCalls.Load() == 0 {
		t.Error("version mismatch did not fall back locally")
	}
}

// TestServerRejects covers the worker-side 400/422 surface.
func TestServerRejects(t *testing.T) {
	srv := newWorker(t, 0)
	post := func(body string) (int, ErrorBody) {
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer func() { _ = resp.Body.Close() }()
		var eb ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}

	if code, _ := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", code)
	}
	if code, _ := post(`{"version":99,"id":1,"jobs":[]}`); code != http.StatusBadRequest {
		t.Errorf("version mismatch: status %d, want 400", code)
	}
	if code, _ := post(`{"version":1,"id":1,"jobs":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	bad := fixtureBatch()
	bad.Jobs[0].Pred = "perceptron"
	raw, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	code, eb := post(string(raw))
	if code != http.StatusUnprocessableEntity {
		t.Errorf("invalid job: status %d, want 422", code)
	}
	if eb.Job != 0 {
		t.Errorf("invalid job index = %d, want 0", eb.Job)
	}
}

// logEvents filters a logger's flight recorder down to one event type.
func logEvents(l *sweeplog.Logger, ev string) []string {
	var out []string
	for _, line := range l.Recent() {
		if strings.Contains(line, `"ev":"`+ev+`"`) {
			out = append(out, line)
		}
	}
	return out
}

// TestCoordinatorLogCauses: each failure mode of a flaky worker is recorded
// in the decision log as a retry with its classified cause, alongside the
// dispatch/backoff/requeue records of the recovery.
func TestCoordinatorLogCauses(t *testing.T) {
	wantCause := map[string]sweeplog.Cause{
		"drop":    sweeplog.Cause5xx,
		"corrupt": sweeplog.CauseCorrupt,
		"delay":   sweeplog.CauseNetwork,
		"tamper":  sweeplog.CauseTamper,
	}
	for _, mode := range []string{"drop", "corrupt", "delay", "tamper"} {
		t.Run(mode, func(t *testing.T) {
			healthy := newWorker(t, 5*time.Millisecond)
			flaky := &flakyHandler{inner: NewServer(ServerOptions{Runner: fakeRunner}).Handler(), mode: mode}
			flaky.bad.Store(1 << 30)
			flakySrv := httptest.NewServer(flaky)
			t.Cleanup(flakySrv.Close)

			log := sweeplog.New(sweeplog.Options{})
			opt := fastOptions(healthy.URL, flakySrv.URL)
			if mode == "delay" {
				opt.Timeout = 100 * time.Millisecond
			}
			opt.Log = log
			opt.Campaign = "test-" + mode
			c := New(opt)

			var localCalls atomic.Int64
			if _, err := c.Run(testJobs(12), localRunner(&localCalls), nil); err != nil {
				t.Fatalf("Run: %v", err)
			}

			retries := logEvents(log, "retry")
			if len(retries) == 0 {
				t.Fatal("no retry records in the decision log")
			}
			want := `"cause":"` + string(wantCause[mode]) + `"`
			for _, line := range retries {
				if !strings.Contains(line, want) {
					t.Errorf("retry record lacks %s: %s", want, line)
				}
				if !strings.Contains(line, `"campaign":"test-`+mode+`"`) {
					t.Errorf("retry record lacks the campaign: %s", line)
				}
			}
			if len(logEvents(log, "dispatch")) == 0 {
				t.Error("no dispatch records")
			}
			if len(logEvents(log, "backoff")) == 0 {
				t.Error("no backoff records")
			}
		})
	}
}

// TestCoordinatorEvictionLog: the degraded-run flight recording is exact —
// a lone always-failing worker yields precisely EvictAfter retries (cause
// 5xx), their requeues, one eviction, and a no-workers local fallback for
// every batch.
func TestCoordinatorEvictionLog(t *testing.T) {
	flaky := &flakyHandler{inner: NewServer(ServerOptions{Runner: fakeRunner}).Handler(), mode: "drop"}
	flaky.bad.Store(1 << 30)
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)

	log := sweeplog.New(sweeplog.Options{})
	opt := fastOptions(srv.URL)
	opt.Log = log
	c := New(opt)

	jobs := testJobs(12) // batch size 3 -> 4 batches
	var localCalls atomic.Int64
	if _, err := c.Run(jobs, localRunner(&localCalls), nil); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if got := logEvents(log, "evict"); len(got) != 1 {
		t.Errorf("evict records = %d, want exactly 1:\n%s", len(got), strings.Join(got, "\n"))
	} else if !strings.Contains(got[0], `"worker":"`+srv.URL+`"`) {
		t.Errorf("evict record names the wrong worker: %s", got[0])
	}
	retries := logEvents(log, "retry")
	if len(retries) != opt.EvictAfter {
		t.Errorf("retry records = %d, want exactly EvictAfter (%d)", len(retries), opt.EvictAfter)
	}
	for _, line := range retries {
		if !strings.Contains(line, `"cause":"5xx"`) {
			t.Errorf("retry cause is not 5xx: %s", line)
		}
	}
	if got := logEvents(log, "requeue"); len(got) != opt.EvictAfter {
		t.Errorf("requeue records = %d, want %d (each failed attempt requeued before eviction)", len(got), opt.EvictAfter)
	}
	locals := logEvents(log, "local")
	if len(locals) != 4 {
		t.Errorf("local fallback records = %d, want 4 (every batch)", len(locals))
	}
	for _, line := range locals {
		if !strings.Contains(line, `"cause":"no-workers"`) {
			t.Errorf("local fallback cause is not no-workers: %s", line)
		}
	}
}

// TestCoordinatorFleetSpans: workers return per-job span timings, and the
// coordinator re-anchors them into one ProcessSpans per (URL, pid) that
// renders as its own pid track in the combined trace.
func TestCoordinatorFleetSpans(t *testing.T) {
	w1, w2 := newWorker(t, 5*time.Millisecond), newWorker(t, 5*time.Millisecond)
	spans := obs.NewSpanTracer()
	opt := fastOptions(w1.URL, w2.URL)
	opt.Spans = spans
	c := New(opt)

	jobs := testJobs(18)
	var localCalls atomic.Int64
	if _, err := c.Run(jobs, localRunner(&localCalls), nil); err != nil {
		t.Fatalf("Run: %v", err)
	}

	fleet := c.FleetSpans()
	if len(fleet) != 2 {
		t.Fatalf("fleet processes = %d, want 2 (both workers participated)", len(fleet))
	}
	total := 0
	wantPid := strconv.Itoa(os.Getpid()) // httptest workers share the test process
	for _, p := range fleet {
		if !strings.Contains(p.Name, "worker http://") || !strings.Contains(p.Name, "(pid "+wantPid+")") {
			t.Errorf("fleet process name = %q, want worker URL + pid", p.Name)
		}
		if len(p.Spans) == 0 {
			t.Errorf("fleet process %q has no spans", p.Name)
		}
		for _, s := range p.Spans {
			if s.Name == "" || s.Dur < 0 || s.Start < 0 {
				t.Errorf("malformed re-anchored span %+v in %q", s, p.Name)
			}
			// Re-anchored onto the dispatch axis: every worker span must sit
			// inside the window covered by some dispatch span.
			if s.Start > time.Hour {
				t.Errorf("span %+v far off the coordinator axis", s)
			}
		}
		total += len(p.Spans)
	}
	if total != len(jobs) {
		t.Errorf("fleet spans = %d, want one per job (%d)", total, len(jobs))
	}

	// The combined trace renders each fleet process as its own pid track.
	var buf bytes.Buffer
	if err := obs.WriteCombinedTrace(&buf, nil, spans.Spans(), fleet...); err != nil {
		t.Fatalf("WriteCombinedTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("combined fleet trace is not valid JSON: %v", err)
	}
	fleetProcs := map[float64]string{}
	for _, ev := range doc.TraceEvents {
		pid, _ := ev["pid"].(float64)
		if name, _ := ev["name"].(string); name == "process_name" && pid >= 3 {
			args, _ := ev["args"].(map[string]any)
			fleetProcs[pid], _ = args["name"].(string)
		}
	}
	if len(fleetProcs) != 2 {
		t.Errorf("fleet pid tracks = %v, want 2", fleetProcs)
	}
}

// TestCoordinatorStatusHandler: /sweepz reports live dispatch state plus
// the flight recorder, and degrades gracefully with no coordinator at all.
func TestCoordinatorStatusHandler(t *testing.T) {
	w1 := newWorker(t, 0)
	log := sweeplog.New(sweeplog.Options{})
	opt := fastOptions(w1.URL)
	opt.Log = log
	opt.Campaign = "statusz"
	c := New(opt)

	var localCalls atomic.Int64
	if _, err := c.Run(testJobs(6), localRunner(&localCalls), nil); err != nil {
		t.Fatalf("Run: %v", err)
	}

	rec := httptest.NewRecorder()
	c.StatusHandler(log).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sweepz", nil))
	body := rec.Body.String()
	for _, want := range []string{"campaign statusz", w1.URL, "remote batches: 2 (6 jobs)", "recent decisions:", `"ev":"dispatch"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/sweepz missing %q:\n%s", want, body)
		}
	}
	s := c.Status()
	if s.RemoteBatches != 2 || s.RemoteJobs != 6 || s.QueueDepth != 0 || s.Inflight != 0 {
		t.Errorf("Status = %+v, want 2 remote batches, 6 jobs, drained queue", s)
	}

	var nilC *Coordinator
	rec = httptest.NewRecorder()
	nilC.StatusHandler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sweepz", nil))
	if !strings.Contains(rec.Body.String(), "no sweep coordinator") {
		t.Errorf("nil-coordinator /sweepz = %q", rec.Body.String())
	}
}

// postBatch runs one batch against a server and decodes the result.
func postBatch(t *testing.T, url string, batch Batch) BatchResult {
	t.Helper()
	raw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch refused: status %d", resp.StatusCode)
	}
	var br BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return br
}

// TestServerHealthzAdvances: the /healthz JSON fields parse and jobs_done
// advances across two batches.
func TestServerHealthzAdvances(t *testing.T) {
	srv := newWorker(t, 0)
	health := func() (string, int, int64) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		defer func() { _ = resp.Body.Close() }()
		var h struct {
			Status   string `json:"status"`
			Version  int    `json:"version"`
			JobsDone int64  `json:"jobs_done"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return h.Status, h.Version, h.JobsDone
	}

	status, version, done := health()
	if status != "ok" || version != WireVersion || done != 0 {
		t.Fatalf("fresh healthz = %s/%d/%d, want ok/%d/0", status, version, done, WireVersion)
	}
	postBatch(t, srv.URL, Batch{Version: WireVersion, ID: 1, Jobs: testJobs(3)})
	if _, _, done := health(); done != 3 {
		t.Errorf("jobs_done after first batch = %d, want 3", done)
	}
	postBatch(t, srv.URL, Batch{Version: WireVersion, ID: 2, Jobs: testJobs(2)})
	if _, _, done := health(); done != 5 {
		t.Errorf("jobs_done after second batch = %d, want 5", done)
	}
}

// TestServerResultTelemetry: batch results carry the worker's pid, total
// execution time, and one span per job with sane offsets.
func TestServerResultTelemetry(t *testing.T) {
	srv := newWorker(t, time.Millisecond)
	jobs := testJobs(3)
	br := postBatch(t, srv.URL, Batch{Version: WireVersion, ID: 5, Campaign: "tele", Attempt: 1, Jobs: jobs})
	if br.Pid != os.Getpid() {
		t.Errorf("result pid = %d, want %d", br.Pid, os.Getpid())
	}
	if br.ExecUS <= 0 {
		t.Errorf("exec_us = %d, want > 0", br.ExecUS)
	}
	if len(br.Spans) != len(jobs) {
		t.Fatalf("spans = %d, want one per job (%d)", len(br.Spans), len(jobs))
	}
	for i, s := range br.Spans {
		if s.Job != i {
			t.Errorf("span %d labels job %d", i, s.Job)
		}
		if s.Name == "" || s.StartUS < 0 || s.DurUS < 0 {
			t.Errorf("malformed span %+v", s)
		}
		if s.StartUS+s.DurUS > br.ExecUS+1000 {
			t.Errorf("span %+v overruns batch execution (%dus)", s, br.ExecUS)
		}
	}
}

// parseHistogram mirrors the obs-package exposition parser: cumulative
// bucket counts plus sum and count for one histogram in a registry dump.
func parseHistogram(t *testing.T, text, name string) (cum []int64, count int64) {
	t.Helper()
	sawType := false
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "# TYPE "+name+" histogram":
			sawType = true
		case strings.HasPrefix(line, name+"_bucket{le=\""):
			_, countStr, ok := strings.Cut(line, "\"} ")
			if !ok {
				t.Fatalf("malformed bucket line %q", line)
			}
			n, err := strconv.ParseInt(countStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket count in %q: %v", line, err)
			}
			cum = append(cum, n)
		case strings.HasPrefix(line, name+"_count "):
			v, err := strconv.ParseInt(strings.TrimPrefix(line, name+"_count "), 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			count = v
		}
	}
	if !sawType {
		t.Fatalf("no TYPE histogram line for %q in exposition:\n%s", name, text)
	}
	return cum, count
}

// TestWorkerMetricsExposition: the worker's /metrics carries the
// sweep_batch_seconds histogram, the jobs_failed counter, and the
// wire_version gauge, and the exposition round-trips through the
// Prometheus text parser.
func TestWorkerMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewServer(ServerOptions{Runner: fakeRunner, Metrics: reg}).Handler())
	t.Cleanup(srv.Close)

	// One good batch, then one with an invalid job (422), so every metric
	// has a non-trivial value.
	postBatch(t, srv.URL, Batch{Version: WireVersion, ID: 1, Jobs: testJobs(3)})
	bad := Batch{Version: WireVersion, ID: 2, Jobs: testJobs(1)}
	bad.Jobs[0].Insts = 0
	raw, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid job: status %d, want 422", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	rawText, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read exposition: %v", err)
	}
	text := string(rawText)

	cum, count := parseHistogram(t, text, "sweep_batch_seconds")
	if count != 1 {
		t.Errorf("sweep_batch_seconds count = %d, want 1 completed batch", count)
	}
	if len(cum) == 0 || cum[len(cum)-1] != count {
		t.Errorf("sweep_batch_seconds +Inf bucket = %v, want cumulative count %d", cum, count)
	}
	if !strings.Contains(text, "\njobs_failed 1\n") {
		t.Errorf("exposition lacks jobs_failed 1:\n%s", text)
	}
	if !strings.Contains(text, fmt.Sprintf("\nwire_version %d\n", WireVersion)) {
		t.Errorf("exposition lacks wire_version %d:\n%s", WireVersion, text)
	}
}

// TestServerHealthz: the daemon self-reports protocol version and work
// done.
func TestServerHealthz(t *testing.T) {
	srv := newWorker(t, 0)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var h struct {
		Status   string `json:"status"`
		Version  int    `json:"version"`
		JobsDone int64  `json:"jobs_done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" || h.Version != WireVersion {
		t.Errorf("healthz = %+v", h)
	}
}
