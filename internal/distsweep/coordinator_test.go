package distsweep

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"specfetch/internal/obs"
)

// fakeResult derives a deterministic JobResult from a spec, standing in
// for a real simulation in protocol tests.
func fakeResult(spec JobSpec) JobResult {
	res := fixtureBatchResult().Results[0].Result
	res.Insts = spec.Insts
	res.Cycles = int64(spec.Seed) + spec.Insts
	res.Lost[0] = int64(spec.Seed)
	return JobResult{Result: res, Audit: res.AuditFinal()}
}

func fakeRunner(spec JobSpec) (JobResult, error) { return fakeResult(spec), nil }

// testJobs builds n valid specs distinguished by seed.
func testJobs(n int) []JobSpec {
	jobs := make([]JobSpec, n)
	for i := range jobs {
		jobs[i] = fixtureBatch().Jobs[1]
		jobs[i].Seed = uint64(1000 + i)
	}
	return jobs
}

// wantResults is what any correct execution of testJobs must produce.
func wantResults(jobs []JobSpec) []JobResult {
	out := make([]JobResult, len(jobs))
	for i, j := range jobs {
		out[i] = fakeResult(j)
	}
	return out
}

// localRunner returns a LocalRunner computing fakeResult in-process and
// counting invocations.
func localRunner(calls *atomic.Int64) LocalRunner {
	return func(offset int, jobs []JobSpec) ([]JobResult, error) {
		calls.Add(1)
		out := make([]JobResult, len(jobs))
		for i, j := range jobs {
			out[i] = fakeResult(j)
		}
		return out, nil
	}
}

// newWorker spins up a real protocol server over fakeRunner. perJob > 0
// slows each job down, so tests can keep a worker busy long enough for a
// peer to participate.
func newWorker(t *testing.T, perJob time.Duration) *httptest.Server {
	t.Helper()
	runner := fakeRunner
	if perJob > 0 {
		runner = func(spec JobSpec) (JobResult, error) {
			time.Sleep(perJob)
			return fakeResult(spec), nil
		}
	}
	srv := httptest.NewServer(NewServer(ServerOptions{Runner: runner}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func fastOptions(workers ...string) CoordinatorOptions {
	return CoordinatorOptions{
		Workers:     workers,
		BatchSize:   3,
		Timeout:     2 * time.Second,
		Retries:     3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		EvictAfter:  2,
	}
}

// TestCoordinatorHappyPath: every batch completes remotely; the local
// runner is never consulted; results land at their indexes.
func TestCoordinatorHappyPath(t *testing.T) {
	w1, w2 := newWorker(t, 0), newWorker(t, 0)
	reg := obs.NewRegistry()
	opt := fastOptions(w1.URL, w2.URL)
	opt.Metrics = reg
	c := New(opt)

	jobs := testJobs(10)
	var localCalls atomic.Int64
	var remoted atomic.Int64
	got, err := c.Run(jobs, localRunner(&localCalls), func(offset int, res []JobResult) {
		remoted.Add(int64(len(res)))
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Error("remote results differ from direct computation")
	}
	if localCalls.Load() != 0 {
		t.Errorf("local runner called %d times on the happy path", localCalls.Load())
	}
	if remoted.Load() != int64(len(jobs)) {
		t.Errorf("onRemote saw %d jobs, want %d", remoted.Load(), len(jobs))
	}
	if v := reg.Counter("specfetch_dispatch_jobs_total", "").Value(); v != int64(len(jobs)) {
		t.Errorf("dispatch jobs counter = %d, want %d", v, len(jobs))
	}
}

// flakyHandler wraps a healthy worker and misbehaves in a configurable way
// for the first `bad` requests.
type flakyHandler struct {
	inner http.Handler
	bad   atomic.Int64
	mode  string // "drop", "corrupt", "delay", "tamper"
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/v1/") || f.bad.Add(-1) < 0 {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch f.mode {
	case "drop":
		w.WriteHeader(http.StatusInternalServerError)
	case "corrupt":
		_, _ = w.Write([]byte(`{"version":1,"id":`)) // truncated JSON
	case "delay":
		time.Sleep(500 * time.Millisecond)
		w.WriteHeader(http.StatusInternalServerError)
	case "tamper":
		rec := httptest.NewRecorder()
		f.inner.ServeHTTP(rec, r)
		var br BatchResult
		if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil || len(br.Results) == 0 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		// Claim fewer cycles than the audited run: the self-check identity
		// no longer holds.
		br.Results[0].Result.Cycles -= 17
		_ = json.NewEncoder(w).Encode(br)
	default:
		panic("unknown mode " + f.mode)
	}
}

// TestCoordinatorFaultInjection: a worker that drops, corrupts, delays, or
// tampers with batches mid-sweep never changes the reduced results — the
// batches are retried on the healthy worker without any local fallback.
func TestCoordinatorFaultInjection(t *testing.T) {
	for _, mode := range []string{"drop", "corrupt", "delay", "tamper"} {
		t.Run(mode, func(t *testing.T) {
			// The healthy worker is slowed so the flaky one keeps pulling
			// batches instead of watching the queue drain.
			healthy := newWorker(t, 5*time.Millisecond)
			flaky := &flakyHandler{inner: NewServer(ServerOptions{Runner: fakeRunner}).Handler(), mode: mode}
			flaky.bad.Store(1 << 30) // misbehave forever
			flakySrv := httptest.NewServer(flaky)
			t.Cleanup(flakySrv.Close)

			reg := obs.NewRegistry()
			opt := fastOptions(healthy.URL, flakySrv.URL)
			if mode == "delay" {
				opt.Timeout = 100 * time.Millisecond
			}
			opt.Metrics = reg
			c := New(opt)

			jobs := testJobs(18)
			var localCalls atomic.Int64
			got, err := c.Run(jobs, localRunner(&localCalls), nil)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !reflect.DeepEqual(got, wantResults(jobs)) {
				t.Error("results differ with a faulty worker in the fleet")
			}
			if localCalls.Load() != 0 {
				t.Errorf("local fallback ran %d times; survivors should have absorbed the batches", localCalls.Load())
			}
			if v := reg.Counter("specfetch_dispatch_retries_total", "").Value(); v < 1 {
				t.Errorf("retries = %d, want >= 1", v)
			}
			if mode == "tamper" {
				if v := reg.Counter("specfetch_dispatch_audit_rejects_total", "").Value(); v < 1 {
					t.Errorf("audit rejects = %d, want >= 1", v)
				}
			}
		})
	}
}

// TestCoordinatorEviction: a lone worker failing every batch is evicted
// after exactly EvictAfter consecutive failures, and the whole sweep
// completes through local fallback.
func TestCoordinatorEviction(t *testing.T) {
	flaky := &flakyHandler{inner: NewServer(ServerOptions{Runner: fakeRunner}).Handler(), mode: "drop"}
	flaky.bad.Store(1 << 30)
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)

	reg := obs.NewRegistry()
	opt := fastOptions(srv.URL)
	opt.Metrics = reg
	c := New(opt)

	jobs := testJobs(12)
	var localCalls atomic.Int64
	got, err := c.Run(jobs, localRunner(&localCalls), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Error("results differ after eviction + local fallback")
	}
	if len(c.Alive()) != 0 {
		t.Errorf("failing worker still alive: %v", c.Alive())
	}
	if v := reg.Counter("specfetch_dispatch_evictions_total", "").Value(); v != 1 {
		t.Errorf("evictions = %d, want 1", v)
	}
	if v := reg.Counter("specfetch_dispatch_retries_total", "").Value(); v != int64(fastOptions().EvictAfter) {
		t.Errorf("retries = %d, want exactly EvictAfter (%d)", v, fastOptions().EvictAfter)
	}
	if localCalls.Load() == 0 {
		t.Error("no local fallback after the only worker was evicted")
	}
}

// TestCoordinatorAllWorkersGone: with every worker unreachable, the whole
// sweep falls back to local execution and still completes.
func TestCoordinatorAllWorkersGone(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close() // nothing listens here any more
	c := New(fastOptions(dead.URL))

	jobs := testJobs(7)
	var localCalls atomic.Int64
	got, err := c.Run(jobs, localRunner(&localCalls), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Error("local-fallback results differ")
	}
	if localCalls.Load() == 0 {
		t.Error("local runner never ran with a dead fleet")
	}
	if len(c.Alive()) != 0 {
		t.Errorf("dead worker still alive: %v", c.Alive())
	}

	// A later sweep on the same coordinator skips remote entirely.
	localCalls.Store(0)
	if _, err := c.Run(testJobs(3), localRunner(&localCalls), nil); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if localCalls.Load() == 0 {
		t.Error("second sweep did not fall back locally")
	}
}

// TestCoordinatorPermanentError: a job the worker rejects as unrunnable
// (4xx) is not retried remotely; the local runner decides the sweep's
// deterministic outcome.
func TestCoordinatorPermanentError(t *testing.T) {
	boom := fmt.Errorf("engine exploded deterministically")
	srv := httptest.NewServer(NewServer(ServerOptions{Runner: func(spec JobSpec) (JobResult, error) {
		return JobResult{}, boom
	}}).Handler())
	t.Cleanup(srv.Close)

	reg := obs.NewRegistry()
	opt := fastOptions(srv.URL)
	opt.Metrics = reg
	c := New(opt)

	jobs := testJobs(2)
	var localCalls atomic.Int64
	wantErr := fmt.Errorf("local says no")
	_, err := c.Run(jobs, func(offset int, js []JobSpec) ([]JobResult, error) {
		localCalls.Add(1)
		return nil, wantErr
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "local says no") {
		t.Fatalf("err = %v, want the local runner's verdict", err)
	}
	if localCalls.Load() == 0 {
		t.Fatal("local runner never consulted for the permanent error")
	}
	// The worker stays alive — the batch was at fault, not the worker.
	if len(c.Alive()) != 1 {
		t.Errorf("healthy worker evicted over a permanent job error; alive=%v", c.Alive())
	}
	if v := reg.Counter("specfetch_dispatch_retries_total", "").Value(); v != 0 {
		t.Errorf("permanent error burned %d retries", v)
	}
}

// TestCoordinatorVersionMismatch: a worker speaking a different wire
// version is rejected up front by its own 400, and the sweep still
// completes through local fallback.
func TestCoordinatorVersionMismatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(ErrorBody{Error: "wire version 99, worker speaks 1", Job: -1})
	}))
	t.Cleanup(srv.Close)
	c := New(fastOptions(srv.URL))

	jobs := testJobs(3)
	var localCalls atomic.Int64
	got, err := c.Run(jobs, localRunner(&localCalls), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Error("results differ after version-mismatch fallback")
	}
	if localCalls.Load() == 0 {
		t.Error("version mismatch did not fall back locally")
	}
}

// TestServerRejects covers the worker-side 400/422 surface.
func TestServerRejects(t *testing.T) {
	srv := newWorker(t, 0)
	post := func(body string) (int, ErrorBody) {
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer func() { _ = resp.Body.Close() }()
		var eb ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}

	if code, _ := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", code)
	}
	if code, _ := post(`{"version":99,"id":1,"jobs":[]}`); code != http.StatusBadRequest {
		t.Errorf("version mismatch: status %d, want 400", code)
	}
	if code, _ := post(`{"version":1,"id":1,"jobs":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	bad := fixtureBatch()
	bad.Jobs[0].Pred = "perceptron"
	raw, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	code, eb := post(string(raw))
	if code != http.StatusUnprocessableEntity {
		t.Errorf("invalid job: status %d, want 422", code)
	}
	if eb.Job != 0 {
		t.Errorf("invalid job index = %d, want 0", eb.Job)
	}
}

// TestServerHealthz: the daemon self-reports protocol version and work
// done.
func TestServerHealthz(t *testing.T) {
	srv := newWorker(t, 0)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var h struct {
		Status   string `json:"status"`
		Version  int    `json:"version"`
		JobsDone int64  `json:"jobs_done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" || h.Version != WireVersion {
		t.Errorf("healthz = %+v", h)
	}
}
