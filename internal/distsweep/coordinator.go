package distsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"specfetch/internal/obs"
	"specfetch/internal/xrand"
)

// CoordinatorOptions configures the dispatch side.
type CoordinatorOptions struct {
	// Workers are sweepworker base URLs ("http://host:8477"); required.
	Workers []string
	// BatchSize is the number of contiguous jobs per dispatch; 0 means 8.
	BatchSize int
	// Timeout bounds one batch attempt (connect + simulate + respond);
	// 0 means 5 minutes.
	Timeout time.Duration
	// Retries caps how many failed attempts a batch may accumulate across
	// workers before it falls back to local execution; 0 means 3.
	Retries int
	// BackoffBase/BackoffMax bound the exponential backoff a worker sits
	// out after a failure (base·2^(k-1) after its k-th consecutive failure,
	// capped at max, plus deterministic jitter in [0, base)). Zero values
	// mean 100ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// EvictAfter evicts a worker after this many consecutive failures;
	// 0 means 2. Evicted workers take no further batches for the life of
	// the coordinator — their in-flight work is re-queued to survivors.
	EvictAfter int
	// Metrics, when non-nil, receives specfetch_dispatch_* counters.
	Metrics *obs.Registry
	// Spans, when non-nil, wraps every remote batch attempt in a host span
	// on the dispatching worker slot's track.
	Spans *obs.SpanTracer
	// Logf, when non-nil, receives dispatch diagnostics (retries,
	// evictions, fallbacks). Diagnostics never go to stdout: sweep bytes
	// must stay invariant.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests); nil builds a default.
	Client *http.Client
}

// LocalRunner executes jobs[offset : offset+len(jobs)] of the original
// work-list in-process and returns their results in job order. The
// coordinator invokes it for batches that exhausted their retries, hit a
// permanent (4xx) error, or had no worker left to run them.
type LocalRunner func(offset int, jobs []JobSpec) ([]JobResult, error)

// workerState is one remote worker's dispatch bookkeeping.
type workerState struct {
	url     string
	fails   int // consecutive failures; reset on success
	evicted bool
}

// Coordinator fans batches out to workers and reassembles results in
// work-list order. It is safe for concurrent use: every Run carries its
// own queue state, so overlapping sweeps (the ablation rows dispatch
// their dependent cells concurrently) just interleave batches on the
// fleet. Eviction state persists across sweeps, so a dead worker is not
// re-probed by every table builder.
type Coordinator struct {
	opt    CoordinatorOptions
	client *http.Client

	mu      sync.Mutex
	workers []*workerState
	nextID  uint64
}

// New builds a coordinator over the given workers.
func New(opt CoordinatorOptions) *Coordinator {
	if len(opt.Workers) == 0 {
		panic("distsweep: CoordinatorOptions.Workers is required")
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 8
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Minute
	}
	if opt.Retries <= 0 {
		opt.Retries = 3
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 100 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.EvictAfter <= 0 {
		opt.EvictAfter = 2
	}
	c := &Coordinator{opt: opt, client: opt.Client}
	if c.client == nil {
		c.client = &http.Client{}
	}
	for _, u := range opt.Workers {
		c.workers = append(c.workers, &workerState{url: u})
	}
	return c
}

// Alive returns the URLs of workers not yet evicted.
func (c *Coordinator) Alive() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, w := range c.workers {
		if !w.evicted {
			out = append(out, w.url)
		}
	}
	return out
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

func (c *Coordinator) count(name, help string) {
	if c.opt.Metrics != nil {
		c.opt.Metrics.Counter(name, help).Inc()
	}
}

// batchWork is one in-flight batch: a contiguous window of the work-list.
type batchWork struct {
	id       uint64
	offset   int
	jobs     []JobSpec
	attempts int
	// permanent marks a batch a worker refused with 4xx: remote retries
	// cannot help, only the local runner can produce the authoritative
	// (deterministic) outcome.
	permanent bool
}

// runState is the shared queue for one Run call. Workers pull from queue;
// a batch being attempted counts as inflight. A worker may exit only when
// the queue is empty and nothing is inflight (nothing can be re-queued).
type runState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*batchWork
	inflight int
	local    []*batchWork
}

// Run executes the work-list: batches go to remote workers, results land
// at their job's index, and every batch that remote execution cannot
// complete is handed to local, so the returned slice is always fully
// populated (or an error is returned). onRemote, when non-nil, is invoked
// once per remotely-completed batch — possibly concurrently and out of
// order — so callers can stream progress; local-fallback cells report
// through the LocalRunner instead.
func (c *Coordinator) Run(jobs []JobSpec, local LocalRunner, onRemote func(offset int, results []JobResult)) ([]JobResult, error) {
	if local == nil {
		panic("distsweep: Run requires a LocalRunner")
	}
	out := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}

	st := &runState{}
	st.cond = sync.NewCond(&st.mu)
	c.mu.Lock()
	for off := 0; off < len(jobs); off += c.opt.BatchSize {
		end := off + c.opt.BatchSize
		if end > len(jobs) {
			end = len(jobs)
		}
		c.nextID++
		st.queue = append(st.queue, &batchWork{id: c.nextID, offset: off, jobs: jobs[off:end]})
	}
	alive := 0
	workers := make([]*workerState, len(c.workers))
	copy(workers, c.workers)
	for _, w := range workers {
		if !w.evicted {
			alive++
		}
	}
	c.mu.Unlock()

	if alive > 0 {
		var wg sync.WaitGroup
		for slot, w := range workers {
			if w.evicted {
				continue
			}
			wg.Add(1)
			go func(slot int, w *workerState) {
				defer wg.Done()
				c.dispatchLoop(slot, w, st, out, onRemote)
			}(slot, w)
		}
		wg.Wait()
	}

	// Whatever remote execution could not finish — exhausted retries,
	// permanent rejections, or everything if the fleet died — runs locally,
	// lowest offset first, so the first error surfaced is the
	// deterministic lowest-index one.
	st.mu.Lock()
	st.local = append(st.local, st.queue...)
	st.queue = nil
	locals := st.local
	st.mu.Unlock()
	sort.Slice(locals, func(i, j int) bool { return locals[i].offset < locals[j].offset })
	for _, b := range locals {
		c.count("specfetch_dispatch_local_batches_total",
			"Batches that fell back to in-process execution.")
		c.logf("distsweep: batch %d (offset %d, %d jobs) running locally", b.id, b.offset, len(b.jobs))
		res, err := local(b.offset, b.jobs)
		if err != nil {
			return nil, err
		}
		if len(res) != len(b.jobs) {
			return nil, fmt.Errorf("distsweep: local runner returned %d results for %d jobs", len(res), len(b.jobs))
		}
		copy(out[b.offset:], res)
	}
	return out, nil
}

// dispatchLoop is one worker slot's pull loop over the shared queue.
func (c *Coordinator) dispatchLoop(slot int, w *workerState, st *runState, out []JobResult, onRemote func(int, []JobResult)) {
	for {
		st.mu.Lock()
		for len(st.queue) == 0 && st.inflight > 0 {
			st.cond.Wait()
		}
		if len(st.queue) == 0 {
			st.mu.Unlock()
			return
		}
		b := st.queue[0]
		st.queue = st.queue[1:]
		st.inflight++
		st.mu.Unlock()

		err := c.tryBatch(slot, w, b, out)
		if err == nil {
			st.mu.Lock()
			st.inflight--
			st.cond.Broadcast()
			st.mu.Unlock()
			c.mu.Lock()
			w.fails = 0
			c.mu.Unlock()
			if onRemote != nil {
				onRemote(b.offset, out[b.offset:b.offset+len(b.jobs)])
			}
			continue
		}

		b.attempts++
		evict := false
		if !b.permanent {
			// The worker answered wrongly or not at all: blame it.
			c.mu.Lock()
			w.fails++
			if w.fails >= c.opt.EvictAfter {
				w.evicted = true
				evict = true
			}
			c.mu.Unlock()
			c.count("specfetch_dispatch_retries_total",
				"Failed remote batch attempts (each is retried elsewhere or locally).")
		}
		c.logf("distsweep: batch %d attempt %d on %s failed: %v", b.id, b.attempts, w.url, err)

		st.mu.Lock()
		st.inflight--
		if b.permanent || b.attempts > c.opt.Retries {
			st.local = append(st.local, b)
		} else {
			st.queue = append(st.queue, b)
		}
		st.cond.Broadcast()
		st.mu.Unlock()

		if evict {
			c.count("specfetch_dispatch_evictions_total",
				"Workers evicted after consecutive failures.")
			c.logf("distsweep: evicting worker %s after %d consecutive failures", w.url, c.opt.EvictAfter)
			return
		}
		if !b.permanent {
			time.Sleep(c.backoff(w, b))
		}
	}
}

// backoff computes the post-failure sit-out: base·2^(fails-1) capped at
// max, plus deterministic jitter derived from the batch identity (xrand,
// not math/rand: reruns back off identically, which makes scheduling
// pathologies reproducible).
func (c *Coordinator) backoff(w *workerState, b *batchWork) time.Duration {
	c.mu.Lock()
	fails := w.fails
	c.mu.Unlock()
	if fails < 1 {
		fails = 1
	}
	d := c.opt.BackoffBase << (fails - 1)
	if d > c.opt.BackoffMax || d <= 0 {
		d = c.opt.BackoffMax
	}
	rng := xrand.New(b.id*2654435761 + uint64(b.attempts))
	return d + time.Duration(rng.Uint64n(uint64(c.opt.BackoffBase)))
}

// permanentErr marks a batch outcome remote retries cannot change.
func permanentErr(b *batchWork, err error) error {
	b.permanent = true
	return err
}

// tryBatch POSTs one batch to one worker and, on success, writes the
// results into their slots. Any protocol violation — wrong version, wrong
// ID, wrong count, or a result whose counters do not rebuild the audit
// identity the worker claims to have verified — is a worker fault.
func (c *Coordinator) tryBatch(slot int, w *workerState, b *batchWork, out []JobResult) error {
	sp := c.opt.Spans.Start(fmt.Sprintf("dispatch/batch%d", b.id), slot)
	defer func() {
		if span, ok := sp.End(); ok && c.opt.Metrics != nil {
			c.opt.Metrics.Histogram("specfetch_dispatch_batch_seconds",
				"Wall time per remote batch attempt (including failures).").
				Observe(span.Dur.Seconds())
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), c.opt.Timeout)
	defer cancel()
	body, err := json.Marshal(Batch{Version: WireVersion, ID: b.id, Jobs: b.jobs})
	if err != nil {
		return permanentErr(b, fmt.Errorf("encoding batch: %w", err))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return permanentErr(b, fmt.Errorf("building request: %w", err))
	}
	req.Header.Set("Content-Type", "application/json")

	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("posting batch: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		msg := resp.Status
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); derr == nil && eb.Error != "" {
			msg = eb.Error
		}
		err := fmt.Errorf("worker %s: %s", w.url, msg)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The worker says the batch itself is unrunnable. The local
			// runner is the authority on what error the sweep reports.
			return permanentErr(b, err)
		}
		return err
	}

	var br BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return fmt.Errorf("decoding result: %w", err)
	}
	if br.Version != WireVersion {
		return fmt.Errorf("result speaks wire version %d, want %d", br.Version, WireVersion)
	}
	if br.ID != b.id {
		return fmt.Errorf("result echoes batch %d, want %d", br.ID, b.id)
	}
	if len(br.Results) != len(b.jobs) {
		return fmt.Errorf("result has %d entries for %d jobs", len(br.Results), len(b.jobs))
	}
	for i, r := range br.Results {
		if !r.SelfConsistent() {
			c.count("specfetch_dispatch_audit_rejects_total",
				"Batch results rejected because a result's counters do not rebuild its claimed audit identity.")
			return fmt.Errorf("job %d result fails its audit self-check (tampered or corrupt)", b.offset+i)
		}
	}
	copy(out[b.offset:], br.Results)
	c.count("specfetch_dispatch_batches_total", "Batches completed remotely.")
	if c.opt.Metrics != nil {
		c.opt.Metrics.Counter("specfetch_dispatch_jobs_total", "Sweep jobs completed remotely.").
			Add(int64(len(b.jobs)))
	}
	return nil
}
