package distsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specfetch/internal/hosttime"
	"specfetch/internal/obs"
	"specfetch/internal/sweeplog"
	"specfetch/internal/xrand"
)

// CoordinatorOptions configures the dispatch side.
type CoordinatorOptions struct {
	// Workers are sweepworker base URLs ("http://host:8477"); required.
	Workers []string
	// BatchSize is the number of contiguous jobs per dispatch; 0 means 8.
	BatchSize int
	// Timeout bounds one batch attempt (connect + simulate + respond);
	// 0 means 5 minutes.
	Timeout time.Duration
	// Retries caps how many failed attempts a batch may accumulate across
	// workers before it falls back to local execution; 0 means 3.
	Retries int
	// BackoffBase/BackoffMax bound the exponential backoff a worker sits
	// out after a failure (base·2^(k-1) after its k-th consecutive failure,
	// capped at max, plus deterministic jitter in [0, base)). Zero values
	// mean 100ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// EvictAfter evicts a worker after this many consecutive failures;
	// 0 means 2. Evicted workers take no further batches for the life of
	// the coordinator — their in-flight work is re-queued to survivors.
	EvictAfter int
	// Metrics, when non-nil, receives specfetch_dispatch_* counters, the
	// queue-depth and in-flight gauges, and per-worker-slot batch-latency
	// histograms.
	Metrics *obs.Registry
	// Spans, when non-nil, wraps every remote batch attempt in a host span
	// on the dispatching worker slot's track, and collects the per-job span
	// timings workers return, re-anchored onto this tracer's axis
	// (FleetSpans).
	Spans *obs.SpanTracer
	// Log, when non-nil, records every scheduling decision — dispatch,
	// retry with cause, backoff, requeue, eviction, local fallback — as
	// structured JSONL. Decisions never go to stdout: sweep bytes must
	// stay invariant.
	Log *sweeplog.Logger
	// Campaign names this coordinator's run in logs and on the wire, so a
	// worker serving several coordinators can split its log by campaign.
	// Empty derives a name from the process id.
	Campaign string
	// Client overrides the HTTP client (tests); nil builds a default.
	Client *http.Client
}

// LocalRunner executes jobs[offset : offset+len(jobs)] of the original
// work-list in-process and returns their results in job order. The
// coordinator invokes it for batches that exhausted their retries, hit a
// permanent (4xx) error, or had no worker left to run them.
type LocalRunner func(offset int, jobs []JobSpec) ([]JobResult, error)

// workerState is one remote worker's dispatch bookkeeping.
type workerState struct {
	url     string
	fails   int // consecutive failures; reset on success
	evicted bool
}

// fleetKey identifies one remote worker process: the same URL can be served
// by a restarted daemon with a new pid, which renders as a new trace track.
type fleetKey struct {
	url string
	pid int
}

// campaignSeq distinguishes campaigns created by one process.
var campaignSeq atomic.Int64

// Coordinator fans batches out to workers and reassembles results in
// work-list order. It is safe for concurrent use: every Run carries its
// own queue state, so overlapping sweeps (the ablation rows dispatch
// their dependent cells concurrently) just interleave batches on the
// fleet. Eviction state persists across sweeps, so a dead worker is not
// re-probed by every table builder.
type Coordinator struct {
	opt      CoordinatorOptions
	client   *http.Client
	campaign string

	mu      sync.Mutex
	workers []*workerState
	nextID  uint64

	fleetMu sync.Mutex
	fleet   map[fleetKey][]obs.HostSpan

	// Aggregate dispatch statistics across all Runs, for Status and the
	// registry gauges (atomics: several Runs may be in flight).
	queueDepth    atomic.Int64
	inflightN     atomic.Int64
	remoteBatches atomic.Int64
	remoteJobs    atomic.Int64
	localBatches  atomic.Int64
	retries       atomic.Int64
	evictions     atomic.Int64
}

// New builds a coordinator over the given workers.
func New(opt CoordinatorOptions) *Coordinator {
	if len(opt.Workers) == 0 {
		panic("distsweep: CoordinatorOptions.Workers is required")
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 8
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Minute
	}
	if opt.Retries <= 0 {
		opt.Retries = 3
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 100 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.EvictAfter <= 0 {
		opt.EvictAfter = 2
	}
	c := &Coordinator{opt: opt, client: opt.Client, campaign: opt.Campaign}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.campaign == "" {
		c.campaign = fmt.Sprintf("c%d-%d", os.Getpid(), campaignSeq.Add(1))
	}
	for _, u := range opt.Workers {
		c.workers = append(c.workers, &workerState{url: u})
	}
	return c
}

// Campaign returns the name stamped on this coordinator's batches and log
// records.
func (c *Coordinator) Campaign() string { return c.campaign }

// Alive returns the URLs of workers not yet evicted.
func (c *Coordinator) Alive() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, w := range c.workers {
		if !w.evicted {
			out = append(out, w.url)
		}
	}
	return out
}

func (c *Coordinator) count(name, help string) {
	if c.opt.Metrics != nil {
		c.opt.Metrics.Counter(name, help).Inc()
	}
}

// causeMetric renders a cause as a metric-name fragment (Prometheus names
// take no dashes).
func causeMetric(cause sweeplog.Cause) string {
	return strings.ReplaceAll(string(cause), "-", "_")
}

// noteQueue applies a queue-depth / in-flight delta and mirrors the new
// values into the registry gauges.
func (c *Coordinator) noteQueue(dQueue, dInflight int64) {
	q := c.queueDepth.Add(dQueue)
	f := c.inflightN.Add(dInflight)
	if c.opt.Metrics != nil {
		c.opt.Metrics.Gauge("specfetch_dispatch_queue_depth",
			"Batches waiting for a worker slot, across all in-flight sweeps.").Set(float64(q))
		c.opt.Metrics.Gauge("specfetch_dispatch_inflight_batches",
			"Batches currently being attempted on a worker.").Set(float64(f))
	}
}

// dispatchError classifies a failed batch attempt for the retry taxonomy.
type dispatchError struct {
	cause sweeplog.Cause
	err   error
}

func (e *dispatchError) Error() string { return e.err.Error() }
func (e *dispatchError) Unwrap() error { return e.err }

func classified(cause sweeplog.Cause, err error) error {
	return &dispatchError{cause: cause, err: err}
}

// causeOf extracts the classification; an unclassified error (impossible
// via tryBatch, but conservative) blames the network.
func causeOf(err error) sweeplog.Cause {
	var de *dispatchError
	if errors.As(err, &de) {
		return de.cause
	}
	return sweeplog.CauseNetwork
}

// batchWork is one in-flight batch: a contiguous window of the work-list.
type batchWork struct {
	id       uint64
	offset   int
	jobs     []JobSpec
	attempts int
	// permanent marks a batch a worker refused with 4xx: remote retries
	// cannot help, only the local runner can produce the authoritative
	// (deterministic) outcome.
	permanent bool
}

// localCause explains why a batch is leaving the remote path.
func (b *batchWork) localCause(retries int) sweeplog.Cause {
	switch {
	case b.permanent:
		return sweeplog.CausePermanent
	case b.attempts > retries:
		return sweeplog.CauseRetriesExhausted
	default:
		return sweeplog.CauseNoWorkers
	}
}

// runState is the shared queue for one Run call. Workers pull from queue;
// a batch being attempted counts as inflight. A worker may exit only when
// the queue is empty and nothing is inflight (nothing can be re-queued).
type runState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*batchWork
	inflight int
	local    []*batchWork
}

// Run executes the work-list: batches go to remote workers, results land
// at their job's index, and every batch that remote execution cannot
// complete is handed to local, so the returned slice is always fully
// populated (or an error is returned). onRemote, when non-nil, is invoked
// once per remotely-completed batch — possibly concurrently and out of
// order — so callers can stream progress; local-fallback cells report
// through the LocalRunner instead.
func (c *Coordinator) Run(jobs []JobSpec, local LocalRunner, onRemote func(offset int, results []JobResult)) ([]JobResult, error) {
	if local == nil {
		panic("distsweep: Run requires a LocalRunner")
	}
	out := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}

	st := &runState{}
	st.cond = sync.NewCond(&st.mu)
	c.mu.Lock()
	for off := 0; off < len(jobs); off += c.opt.BatchSize {
		end := off + c.opt.BatchSize
		if end > len(jobs) {
			end = len(jobs)
		}
		c.nextID++
		st.queue = append(st.queue, &batchWork{id: c.nextID, offset: off, jobs: jobs[off:end]})
	}
	alive := 0
	workers := make([]*workerState, len(c.workers))
	copy(workers, c.workers)
	for _, w := range workers {
		if !w.evicted {
			alive++
		}
	}
	c.mu.Unlock()
	c.noteQueue(int64(len(st.queue)), 0)

	if alive > 0 {
		var wg sync.WaitGroup
		for slot, w := range workers {
			if w.evicted {
				continue
			}
			wg.Add(1)
			go func(slot int, w *workerState) {
				defer wg.Done()
				c.dispatchLoop(slot, w, st, out, onRemote)
			}(slot, w)
		}
		wg.Wait()
	}

	// Whatever remote execution could not finish — exhausted retries,
	// permanent rejections, or everything if the fleet died — runs locally,
	// lowest offset first, so the first error surfaced is the
	// deterministic lowest-index one.
	st.mu.Lock()
	drained := len(st.queue)
	st.local = append(st.local, st.queue...)
	st.queue = nil
	locals := st.local
	st.mu.Unlock()
	c.noteQueue(int64(-drained), 0)
	sort.Slice(locals, func(i, j int) bool { return locals[i].offset < locals[j].offset })
	for _, b := range locals {
		cause := b.localCause(c.opt.Retries)
		c.localBatches.Add(1)
		c.count("specfetch_dispatch_local_batches_total",
			"Batches that fell back to in-process execution.")
		c.count("specfetch_dispatch_local_"+causeMetric(cause)+"_total",
			"Local-fallback batches, by cause ("+string(cause)+").")
		c.opt.Log.LocalFallback(c.campaign, b.id, b.offset, len(b.jobs), cause)
		res, err := local(b.offset, b.jobs)
		if err != nil {
			return nil, err
		}
		if len(res) != len(b.jobs) {
			return nil, fmt.Errorf("distsweep: local runner returned %d results for %d jobs", len(res), len(b.jobs))
		}
		copy(out[b.offset:], res)
	}
	return out, nil
}

// dispatchLoop is one worker slot's pull loop over the shared queue.
func (c *Coordinator) dispatchLoop(slot int, w *workerState, st *runState, out []JobResult, onRemote func(int, []JobResult)) {
	for {
		st.mu.Lock()
		for len(st.queue) == 0 && st.inflight > 0 {
			st.cond.Wait()
		}
		if len(st.queue) == 0 {
			st.mu.Unlock()
			return
		}
		b := st.queue[0]
		st.queue = st.queue[1:]
		st.inflight++
		st.mu.Unlock()
		c.noteQueue(-1, 1)

		c.opt.Log.Dispatch(c.campaign, b.id, b.attempts+1, w.url, b.offset, len(b.jobs))
		err := c.tryBatch(slot, w, b, out)
		if err == nil {
			st.mu.Lock()
			st.inflight--
			st.cond.Broadcast()
			st.mu.Unlock()
			c.noteQueue(0, -1)
			c.mu.Lock()
			w.fails = 0
			c.mu.Unlock()
			if onRemote != nil {
				onRemote(b.offset, out[b.offset:b.offset+len(b.jobs)])
			}
			continue
		}

		b.attempts++
		cause := causeOf(err)
		evict := false
		fails := 0
		if !b.permanent {
			// The worker answered wrongly or not at all: blame it.
			c.mu.Lock()
			w.fails++
			fails = w.fails
			if w.fails >= c.opt.EvictAfter {
				w.evicted = true
				evict = true
			}
			c.mu.Unlock()
			c.retries.Add(1)
			c.count("specfetch_dispatch_retries_total",
				"Failed remote batch attempts (each is retried elsewhere or locally).")
			c.count("specfetch_dispatch_retry_"+causeMetric(cause)+"_total",
				"Failed remote batch attempts, by cause ("+string(cause)+").")
		}
		c.opt.Log.Retry(c.campaign, b.id, b.attempts, w.url, cause, err)

		st.mu.Lock()
		st.inflight--
		if b.permanent || b.attempts > c.opt.Retries {
			st.local = append(st.local, b)
		} else {
			st.queue = append(st.queue, b)
			c.opt.Log.Requeue(c.campaign, b.id, b.attempts)
		}
		st.cond.Broadcast()
		st.mu.Unlock()
		if b.permanent || b.attempts > c.opt.Retries {
			c.noteQueue(0, -1)
		} else {
			c.noteQueue(1, -1)
		}

		if evict {
			c.evictions.Add(1)
			c.count("specfetch_dispatch_evictions_total",
				"Workers evicted after consecutive failures.")
			c.opt.Log.Evict(c.campaign, w.url, fails)
			return
		}
		if !b.permanent {
			d := c.backoff(w, b)
			c.opt.Log.Backoff(c.campaign, w.url, fails, d)
			time.Sleep(d)
		}
	}
}

// backoff computes the post-failure sit-out: base·2^(fails-1) capped at
// max, plus deterministic jitter derived from the batch identity (xrand,
// not math/rand: reruns back off identically, which makes scheduling
// pathologies reproducible).
func (c *Coordinator) backoff(w *workerState, b *batchWork) time.Duration {
	c.mu.Lock()
	fails := w.fails
	c.mu.Unlock()
	if fails < 1 {
		fails = 1
	}
	d := c.opt.BackoffBase << (fails - 1)
	if d > c.opt.BackoffMax || d <= 0 {
		d = c.opt.BackoffMax
	}
	rng := xrand.New(b.id*2654435761 + uint64(b.attempts))
	return d + time.Duration(rng.Uint64n(uint64(c.opt.BackoffBase)))
}

// permanentErr marks a batch outcome remote retries cannot change.
func permanentErr(b *batchWork, err error) error {
	b.permanent = true
	return classified(sweeplog.CausePermanent, err)
}

// tryBatch POSTs one batch to one worker and, on success, writes the
// results into their slots. Any protocol violation — wrong version, wrong
// ID, wrong count, or a result whose counters do not rebuild the audit
// identity the worker claims to have verified — is a worker fault,
// classified for the retry taxonomy.
func (c *Coordinator) tryBatch(slot int, w *workerState, b *batchWork, out []JobResult) error {
	sp := c.opt.Spans.Start(fmt.Sprintf("dispatch/batch%d", b.id), slot)
	defer func() {
		if span, ok := sp.End(); ok && c.opt.Metrics != nil {
			c.opt.Metrics.Histogram("specfetch_dispatch_batch_seconds",
				"Wall time per remote batch attempt (including failures).").
				Observe(span.Dur.Seconds())
			c.opt.Metrics.Histogram(fmt.Sprintf("specfetch_dispatch_batch_seconds_worker%d", slot),
				"Wall time per remote batch attempt on this worker slot.").
				Observe(span.Dur.Seconds())
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), c.opt.Timeout)
	defer cancel()
	body, err := json.Marshal(Batch{
		Version: WireVersion, ID: b.id,
		Campaign: c.campaign, Attempt: b.attempts + 1,
		Jobs: b.jobs,
	})
	if err != nil {
		return permanentErr(b, fmt.Errorf("encoding batch: %w", err))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return permanentErr(b, fmt.Errorf("building request: %w", err))
	}
	req.Header.Set("Content-Type", "application/json")

	t0 := hosttime.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		return classified(sweeplog.CauseNetwork, fmt.Errorf("posting batch: %w", err))
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		msg := resp.Status
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); derr == nil && eb.Error != "" {
			msg = eb.Error
		}
		err := fmt.Errorf("worker %s: %s", w.url, msg)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The worker says the batch itself is unrunnable. The local
			// runner is the authority on what error the sweep reports.
			return permanentErr(b, err)
		}
		return classified(sweeplog.Cause5xx, err)
	}

	var br BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return classified(sweeplog.CauseCorrupt, fmt.Errorf("decoding result: %w", err))
	}
	rtt := hosttime.Since(t0)
	if br.Version != WireVersion {
		return classified(sweeplog.CauseVersion,
			fmt.Errorf("result speaks wire version %d, want %d", br.Version, WireVersion))
	}
	if br.ID != b.id {
		return classified(sweeplog.CauseCorrupt,
			fmt.Errorf("result echoes batch %d, want %d", br.ID, b.id))
	}
	if len(br.Results) != len(b.jobs) {
		return classified(sweeplog.CauseCorrupt,
			fmt.Errorf("result has %d entries for %d jobs", len(br.Results), len(b.jobs)))
	}
	for i, r := range br.Results {
		if !r.SelfConsistent() {
			c.count("specfetch_dispatch_audit_rejects_total",
				"Batch results rejected because a result's counters do not rebuild its claimed audit identity.")
			return classified(sweeplog.CauseTamper,
				fmt.Errorf("job %d result fails its audit self-check (tampered or corrupt)", b.offset+i))
		}
	}
	copy(out[b.offset:], br.Results)
	c.remoteBatches.Add(1)
	c.remoteJobs.Add(int64(len(b.jobs)))
	c.count("specfetch_dispatch_batches_total", "Batches completed remotely.")
	if c.opt.Metrics != nil {
		c.opt.Metrics.Counter("specfetch_dispatch_jobs_total", "Sweep jobs completed remotely.").
			Add(int64(len(b.jobs)))
	}
	c.recordFleetSpans(w.url, &br, t0, rtt)
	return nil
}

// recordFleetSpans re-anchors a worker's per-job span timings onto the
// coordinator's span-tracer axis. The worker reports offsets on its own
// monotonic clock; the only shared observation is the dispatch round-trip,
// so batch-execution start is placed at the round-trip midpoint left over
// after execution time — dispatch start + (rtt − exec)/2, the symmetric
// network-delay assumption NTP makes — and clamped to the dispatch window.
func (c *Coordinator) recordFleetSpans(url string, br *BatchResult, t0 hosttime.Instant, rtt time.Duration) {
	if c.opt.Spans == nil || br.Pid == 0 || len(br.Spans) == 0 {
		return
	}
	base := t0.Sub(c.opt.Spans.Epoch())
	slack := (rtt - time.Duration(br.ExecUS)*time.Microsecond) / 2
	if slack < 0 {
		slack = 0
	}
	anchor := base + slack
	spans := make([]obs.HostSpan, 0, len(br.Spans))
	for _, ws := range br.Spans {
		spans = append(spans, obs.HostSpan{
			Name:    ws.Name,
			Section: "batch " + strconv.FormatUint(br.ID, 10),
			Worker:  0, // daemons run jobs serially: one track per process
			Start:   anchor + time.Duration(ws.StartUS)*time.Microsecond,
			Dur:     time.Duration(ws.DurUS) * time.Microsecond,
		})
	}
	k := fleetKey{url: url, pid: br.Pid}
	c.fleetMu.Lock()
	if c.fleet == nil {
		c.fleet = make(map[fleetKey][]obs.HostSpan)
	}
	c.fleet[k] = append(c.fleet[k], spans...)
	c.fleetMu.Unlock()
}

// FleetSpans returns the re-anchored span timings of every remote worker
// process that completed a batch, one ProcessSpans per (URL, pid), sorted
// by URL then pid. Pass them to obs.WriteCombinedTrace to render the whole
// fleet — local pool, every remote worker, and the scheduling gaps between
// them — in one Perfetto file.
func (c *Coordinator) FleetSpans() []obs.ProcessSpans {
	if c == nil {
		return nil
	}
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	keys := make([]fleetKey, 0, len(c.fleet))
	for k := range c.fleet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].url != keys[j].url {
			return keys[i].url < keys[j].url
		}
		return keys[i].pid < keys[j].pid
	})
	out := make([]obs.ProcessSpans, 0, len(keys))
	for _, k := range keys {
		out = append(out, obs.ProcessSpans{
			Name:  fmt.Sprintf("worker %s (pid %d)", k.url, k.pid),
			Spans: append([]obs.HostSpan(nil), c.fleet[k]...),
		})
	}
	return out
}

// WorkerStatus is one worker's live dispatch state.
type WorkerStatus struct {
	URL     string
	Fails   int
	Evicted bool
}

// Status is a snapshot of the coordinator's aggregate dispatch state,
// across all Runs it has served.
type Status struct {
	Campaign      string
	QueueDepth    int64
	Inflight      int64
	RemoteBatches int64
	RemoteJobs    int64
	LocalBatches  int64
	Retries       int64
	Evictions     int64
	Workers       []WorkerStatus
}

// Status snapshots the coordinator. A nil coordinator returns the zero
// Status, so status endpoints need no guards.
func (c *Coordinator) Status() Status {
	if c == nil {
		return Status{}
	}
	s := Status{
		Campaign:      c.campaign,
		QueueDepth:    c.queueDepth.Load(),
		Inflight:      c.inflightN.Load(),
		RemoteBatches: c.remoteBatches.Load(),
		RemoteJobs:    c.remoteJobs.Load(),
		LocalBatches:  c.localBatches.Load(),
		Retries:       c.retries.Load(),
		Evictions:     c.evictions.Load(),
	}
	c.mu.Lock()
	for _, w := range c.workers {
		s.Workers = append(s.Workers, WorkerStatus{URL: w.url, Fails: w.fails, Evicted: w.evicted})
	}
	c.mu.Unlock()
	return s
}

// StatusHandler serves a live plain-text flight-recorder view (/sweepz):
// the Status snapshot plus, when log is non-nil, the most recent decision
// records from its ring. Works on a nil coordinator (reports "no sweep
// coordinator"), so callers can mount it unconditionally.
func (c *Coordinator) StatusHandler(log *sweeplog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var sb strings.Builder
		if c == nil {
			sb.WriteString("no sweep coordinator (run with -remote-workers)\n")
		} else {
			s := c.Status()
			fmt.Fprintf(&sb, "sweep coordinator: campaign %s\n", s.Campaign)
			fmt.Fprintf(&sb, "queue depth:    %d\n", s.QueueDepth)
			fmt.Fprintf(&sb, "in flight:      %d\n", s.Inflight)
			fmt.Fprintf(&sb, "remote batches: %d (%d jobs)\n", s.RemoteBatches, s.RemoteJobs)
			fmt.Fprintf(&sb, "local batches:  %d\n", s.LocalBatches)
			fmt.Fprintf(&sb, "retries:        %d\n", s.Retries)
			fmt.Fprintf(&sb, "evictions:      %d\n", s.Evictions)
			sb.WriteString("workers:\n")
			for _, ws := range s.Workers {
				state := fmt.Sprintf("ok (fails=%d)", ws.Fails)
				if ws.Evicted {
					state = "EVICTED"
				}
				fmt.Fprintf(&sb, "  %-40s %s\n", ws.URL, state)
			}
		}
		if recent := log.Recent(); len(recent) > 0 {
			sb.WriteString("recent decisions:\n")
			for _, line := range recent {
				sb.WriteString("  ")
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
		_, _ = io.WriteString(w, sb.String())
	})
}
