package distsweep

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"specfetch/internal/adaptive"
	"specfetch/internal/cache"
	"specfetch/internal/core"
	"specfetch/internal/metrics"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureProfile is a hand-written (not stock) profile so the golden bytes
// do not move when the calibrated stand-ins are retuned.
func fixtureProfile() synth.Profile {
	return synth.Profile{
		Name: "wiretest", Lang: synth.C,
		Description:     "hand-written fixture for the wire golden",
		Seed:            42,
		NumFuncs:        12,
		SegmentsPerFunc: [2]int{3, 7},
		MeanBlockLen:    5.5,
		LoopFrac:        0.25, MeanLoopTrip: 9, LoopBodyMul: 1.25,
		CallFrac: 0.2, IndirectCallFrac: 0.1, IndirectJumpFrac: 0.05,
		IndirectFanout: 4,
		CondBiasFrac:   0.5, PatternFrac: 0.2,
		BiasNear: 0.08, BiasTakenSide: 0.4,
		HardRange: [2]float64{0.3, 0.7},
		ZipfS:     1.1, CallDepth: 3,
		DriverCallSites: 8, DriverCallExecP: 0.6,
		PhaseSites: 4, PhaseIters: 50,
	}
}

func fixtureBatch() Batch {
	l2 := cache.Config{SizeBytes: 256 * 1024, LineBytes: 32, Assoc: 4}
	return Batch{
		Version:  WireVersion,
		ID:       7,
		Campaign: "c99-1",
		Attempt:  2,
		Jobs: []JobSpec{
			{
				Profile: fixtureProfile(),
				Config: WireConfig{
					Policy: core.Pessimistic, FetchWidth: 4, MaxUnresolved: 4,
					MissPenalty: 20, DecodeLatency: 2, ResolveLatency: 4,
					ICache:           cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 1, VictimLines: 4},
					NextLinePrefetch: true, TargetPrefetch: true, StreamDepth: 2,
					PipelinedMemory: true, L2: &l2, L2Latency: 6, MSHRs: 4,
					RASDepth: 8, FlushInterval: 100_000, SampleInterval: 10_000,
				},
				Seed:        0x5eed,
				Insts:       250_000,
				Pred:        "local",
				AuditSample: 64,
			},
			{
				// Minimal job: zero-valued optional knobs must not appear in
				// the encoding (omitempty), so old workers keep accepting
				// specs that never used the new knobs.
				Profile: fixtureProfile(),
				Config: WireConfig{
					Policy: core.Oracle, FetchWidth: 4, MaxUnresolved: 1,
					MissPenalty: 5, DecodeLatency: 2, ResolveLatency: 4,
					ICache: cache.Config{SizeBytes: 32 * 1024, LineBytes: 32, Assoc: 1},
				},
				Seed:  0x5eed,
				Insts: 100_000,
			},
			{
				// Adaptive job: the meta-policy crosses the wire as a strategy
				// name, interval, and seed; the worker rebuilds the chooser.
				Profile: fixtureProfile(),
				Config: WireConfig{
					Policy: core.Adaptive, FetchWidth: 4, MaxUnresolved: 4,
					MissPenalty: 20, DecodeLatency: 2, ResolveLatency: 4,
					ICache:        cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 1},
					AdaptStrategy: "tournament", AdaptInterval: 10_000, AdaptSeed: 0xada9,
				},
				Seed:  0x5eed,
				Insts: 150_000,
			},
		},
	}
}

func fixtureBatchResult() BatchResult {
	res := core.Result{
		Policy: core.Pessimistic,
		Insts:  250_000, Cycles: 91_234,
		Lost:              metrics.Breakdown{11, 22, 33, 44, 55, 66},
		Events:            metrics.BranchEvents{},
		Traffic:           metrics.Traffic{DemandFills: 123, WrongPathFills: 17, PrefetchFills: 9},
		RightPathAccesses: 70_000, RightPathMisses: 123,
		WrongPathAccesses: 1_500, WrongPathMisses: 17, WrongPathInsts: 4_321,
		CondBranches: 30_000, Branches: 42_000,
	}
	return BatchResult{
		Version: WireVersion,
		ID:      7,
		Pid:     4321,
		ExecUS:  52_000,
		Spans: []WireSpan{
			{Job: 0, Name: "wiretest/pessimistic", StartUS: 0, DurUS: 52_000},
		},
		Results: []JobResult{{Result: res, Audit: res.AuditFinal()}},
	}
}

// TestWireAdditive proves the v1 extension is additive: a pre-telemetry
// peer's encoding (no campaign/attempt, no pid/exec_us/spans) still decodes,
// with the new fields at their zero values — mixed fleets interoperate
// without a version bump.
func TestWireAdditive(t *testing.T) {
	oldBatch := []byte(`{"version":1,"id":9,"jobs":[]}`)
	var b Batch
	if err := json.Unmarshal(oldBatch, &b); err != nil {
		t.Fatalf("old batch encoding rejected: %v", err)
	}
	if b.Campaign != "" || b.Attempt != 0 {
		t.Errorf("old batch decoded with non-zero telemetry fields: %+v", b)
	}
	oldResult := []byte(`{"version":1,"id":9,"results":[]}`)
	var br BatchResult
	if err := json.Unmarshal(oldResult, &br); err != nil {
		t.Fatalf("old result encoding rejected: %v", err)
	}
	if br.Pid != 0 || br.ExecUS != 0 || br.Spans != nil {
		t.Errorf("old result decoded with non-zero telemetry fields: %+v", br)
	}

	// And a zero-telemetry Batch/BatchResult encodes without the new keys.
	raw, err := json.Marshal(Batch{Version: WireVersion, ID: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"campaign", "attempt"} {
		if bytes.Contains(raw, []byte(key)) {
			t.Errorf("zero-telemetry batch encodes %q: %s", key, raw)
		}
	}
	raw, err = json.Marshal(BatchResult{Version: WireVersion, ID: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pid", "exec_us", "spans"} {
		if bytes.Contains(raw, []byte(key)) {
			t.Errorf("zero-telemetry result encodes %q: %s", key, raw)
		}
	}

	// The interval-analytics extension is additive the same way: a
	// pre-windows peer's JobSpec/JobResult still decodes with the new fields
	// zero, and specs/results that do not capture windows encode without the
	// new keys — so a mixed fleet only breaks if a new coordinator asks an
	// old worker to capture, which the coordinator surfaces as missing
	// window data, not silent corruption.
	oldSpec := []byte(`{"profile":{},"config":{},"seed":1,"insts":100}`)
	var spec JobSpec
	if err := json.Unmarshal(oldSpec, &spec); err != nil {
		t.Fatalf("old job spec encoding rejected: %v", err)
	}
	if spec.CaptureWindows {
		t.Error("old job spec decoded with capture_windows set")
	}
	oldJR := []byte(`{"result":{},"audit":{}}`)
	var jr JobResult
	if err := json.Unmarshal(oldJR, &jr); err != nil {
		t.Fatalf("old job result encoding rejected: %v", err)
	}
	if jr.WindowSeries != nil {
		t.Error("old job result decoded with a window series")
	}
	raw, err = json.Marshal(JobSpec{Seed: 1, Insts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("capture_windows")) {
		t.Errorf("non-capturing spec encodes capture_windows: %s", raw)
	}
	raw, err = json.Marshal(JobResult{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("window_series")) {
		t.Errorf("window-free result encodes window_series: %s", raw)
	}

	// The adaptive extension is additive the same way: a pre-adaptive peer's
	// WireConfig decodes with the adapt fields zero, and static-policy
	// configs encode without the new keys.
	oldCfg := []byte(`{"policy":2,"fetch_width":4,"max_unresolved":4,"miss_penalty":5,` +
		`"decode_latency":2,"resolve_latency":4,"icache":{}}`)
	var wc WireConfig
	if err := json.Unmarshal(oldCfg, &wc); err != nil {
		t.Fatalf("old wire config encoding rejected: %v", err)
	}
	if wc.AdaptStrategy != "" || wc.AdaptInterval != 0 || wc.AdaptSeed != 0 {
		t.Errorf("old wire config decoded with non-zero adapt fields: %+v", wc)
	}
	raw, err = json.Marshal(WireConfig{Policy: core.Resume, FetchWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"adapt_strategy", "adapt_interval", "adapt_seed"} {
		if bytes.Contains(raw, []byte(key)) {
			t.Errorf("static-policy config encodes %q: %s", key, raw)
		}
	}
}

// checkGolden marshals v indented and compares against the golden file,
// rewriting it under -update.
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire encoding drifted from golden.\nThis is a protocol change: bump WireVersion if old workers cannot run the new encoding.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestWireGolden pins the versioned wire format: any field rename, type
// change, or tag change shows up as a golden diff.
func TestWireGolden(t *testing.T) {
	checkGolden(t, "batch.golden.json", fixtureBatch())
	checkGolden(t, "batchresult.golden.json", fixtureBatchResult())
}

// TestWireRoundTrip proves encode→decode is lossless for both directions
// of the protocol.
func TestWireRoundTrip(t *testing.T) {
	b := fixtureBatch()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Batch
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(b, back) {
		t.Errorf("batch did not round-trip:\n%+v\n%+v", b, back)
	}

	br := fixtureBatchResult()
	raw, err = json.Marshal(br)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var backR BatchResult
	if err := json.Unmarshal(raw, &backR); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(br, backR) {
		t.Errorf("batch result did not round-trip:\n%+v\n%+v", br, backR)
	}
}

// TestConfigRoundTrip proves WireConfig carries every serializable
// core.Config field both ways.
func TestConfigRoundTrip(t *testing.T) {
	l2 := cache.Config{SizeBytes: 128 * 1024, LineBytes: 32, Assoc: 2}
	cfg := core.DefaultConfig()
	cfg.Policy = core.Optimistic
	cfg.NextLinePrefetch = true
	cfg.TargetPrefetch = true
	cfg.StreamDepth = 3
	cfg.PipelinedMemory = true
	cfg.L2 = &l2
	cfg.L2Latency = 4
	cfg.MSHRs = 2
	cfg.RASDepth = 16
	cfg.FlushInterval = 50_000
	cfg.SampleInterval = 1_000
	cfg.StepMode = core.StepReference
	cfg.AdaptStrategy = "egreedy"
	cfg.AdaptInterval = 25_000
	cfg.AdaptSeed = 99

	w, err := FromConfig(cfg)
	if err != nil {
		t.Fatalf("FromConfig: %v", err)
	}
	if got := w.ToConfig(); !reflect.DeepEqual(got, cfg) {
		t.Errorf("config did not round-trip:\ngot  %+v\nwant %+v", got, cfg)
	}
}

// TestFromConfigRejectsInProcessState: cells carrying callbacks must be
// refused, not silently stripped.
func TestFromConfigRejectsInProcessState(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Probe = obs.NewEventRecorder(16)
	if _, err := FromConfig(cfg); err == nil {
		t.Error("FromConfig accepted a config with a Probe")
	}
	cfg = core.DefaultConfig()
	cfg.OnRightPathAccess = func(int64, uint64, bool) {}
	if _, err := FromConfig(cfg); err == nil {
		t.Error("FromConfig accepted a config with OnRightPathAccess")
	}
	cfg = core.DefaultConfig()
	cfg.Policy = core.Adaptive
	cfg.AdaptInterval = 10_000
	cfg.AdaptStrategy = "ucb"
	cfg.Chooser, _ = adaptive.New(cfg.AdaptStrategy, 0)
	if _, err := FromConfig(cfg); err == nil {
		t.Error("FromConfig accepted a config with a constructed Chooser")
	}
	cfg.Chooser = nil // strategy-by-name is the serializable form
	if _, err := FromConfig(cfg); err != nil {
		t.Errorf("FromConfig rejected a chooser-free adaptive config: %v", err)
	}
}

// TestJobSpecValidate covers the worker-side early rejects.
func TestJobSpecValidate(t *testing.T) {
	good := fixtureBatch().Jobs[0]
	if err := good.Validate(); err != nil {
		t.Fatalf("fixture spec invalid: %v", err)
	}
	bad := good
	bad.Insts = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	bad = good
	bad.Pred = "perceptron"
	if err := bad.Validate(); err == nil {
		t.Error("unknown predictor kind accepted")
	}
	bad = good
	bad.Profile.NumFuncs = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid profile accepted")
	}
	bad = good
	bad.Config.FetchWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid config accepted")
	}
	bad = good
	bad.AuditSample = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative audit sample accepted")
	}
	bad = good
	bad.CaptureWindows = true
	bad.Config.SampleInterval = 0
	if err := bad.Validate(); err == nil {
		t.Error("capture_windows without a sample interval accepted")
	}
	good.CaptureWindows = true // fixture carries SampleInterval 10_000
	if err := good.Validate(); err != nil {
		t.Errorf("capturing spec with an interval rejected: %v", err)
	}

	adapt := fixtureBatch().Jobs[2]
	if err := adapt.Validate(); err != nil {
		t.Fatalf("adaptive fixture spec invalid: %v", err)
	}
	bad = adapt
	bad.Config.AdaptStrategy = "bandit"
	if err := bad.Validate(); err == nil {
		t.Error("unknown adapt strategy accepted")
	}
	bad = adapt
	bad.Config.AdaptInterval = 0
	if err := bad.Validate(); err == nil {
		t.Error("adaptive spec without an interval accepted")
	}
	bad = good
	bad.Config.AdaptStrategy = "tournament" // on a non-adaptive policy
	if err := bad.Validate(); err == nil {
		t.Error("strategy on a static-policy spec accepted")
	}
}

// TestSelfConsistent: tampering with any audited counter must break the
// identity the coordinator checks.
func TestSelfConsistent(t *testing.T) {
	jr := fixtureBatchResult().Results[0]
	if !jr.SelfConsistent() {
		t.Fatal("fixture result not self-consistent")
	}
	jr.Result.Cycles++
	if jr.SelfConsistent() {
		t.Error("tampered Cycles not detected")
	}
}
