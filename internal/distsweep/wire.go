// Package distsweep executes sweep work-lists across process boundaries: a
// coordinator partitions serializable job specs into batches, POSTs them to
// long-running sweepworker daemons over HTTP/JSON, and reduces the returned
// results in canonical work-list order, so rendered artifacts are
// byte-identical to an in-process run at any worker and process count.
//
// The package deliberately knows nothing about internal/experiments: it
// ships JobSpecs and runs them through a pluggable Runner, and the
// experiments package supplies both the spec conversion (cells → specs) and
// the Runner (specs → simulate). That keeps the dependency arrow pointing
// one way — experiments imports distsweep, never the reverse.
package distsweep

import (
	"fmt"

	"specfetch/internal/adaptive"
	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/core"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
)

// WireVersion is the protocol version stamped on every Batch and
// BatchResult. A worker rejects batches from a different version with HTTP
// 400, and the coordinator rejects mismatched results, so mixed-version
// fleets fail loudly instead of computing subtly different sweeps.
const WireVersion = 1

// WireConfig mirrors core.Config minus the two function-typed fields
// (Probe, OnRightPathAccess) that cannot cross a process boundary, and
// minus MaxInsts, which travels as JobSpec.Insts — the same per-sweep
// instruction budget the in-process executor stamps onto every cell.
// Cells that carry a probe or an access callback are not serializable and
// must run in-process; the coordinator-side conversion enforces that.
type WireConfig struct {
	Policy           core.Policy   `json:"policy"`
	FetchWidth       int           `json:"fetch_width"`
	MaxUnresolved    int           `json:"max_unresolved"`
	MissPenalty      int           `json:"miss_penalty"`
	DecodeLatency    int           `json:"decode_latency"`
	ResolveLatency   int           `json:"resolve_latency"`
	ICache           cache.Config  `json:"icache"`
	NextLinePrefetch bool          `json:"next_line_prefetch,omitempty"`
	TargetPrefetch   bool          `json:"target_prefetch,omitempty"`
	StreamDepth      int           `json:"stream_depth,omitempty"`
	PipelinedMemory  bool          `json:"pipelined_memory,omitempty"`
	L2               *cache.Config `json:"l2,omitempty"`
	L2Latency        int           `json:"l2_latency,omitempty"`
	MSHRs            int           `json:"mshrs,omitempty"`
	RASDepth         int           `json:"ras_depth,omitempty"`
	FlushInterval    int64         `json:"flush_interval,omitempty"`
	SampleInterval   int64         `json:"sample_interval,omitempty"`
	StepMode         core.StepMode `json:"step_mode,omitempty"`

	// AdaptStrategy, AdaptInterval, and AdaptSeed carry the Adaptive
	// meta-policy across the wire, added to wire v1 additively (omitempty;
	// absent fields decode to zero values, so static-policy specs encode
	// exactly as before). The chooser itself never crosses the wire: the
	// worker rebuilds it from the strategy name and seed (internal/adaptive),
	// which is what makes remote adaptive runs byte-identical to local ones.
	AdaptStrategy string `json:"adapt_strategy,omitempty"`
	AdaptInterval int64  `json:"adapt_interval,omitempty"`
	AdaptSeed     uint64 `json:"adapt_seed,omitempty"`
}

// FromConfig flattens a core.Config into its wire mirror. It fails when the
// config carries in-process-only state (a probe or an access callback):
// such cells must not be dispatched remotely, because the callbacks would
// silently not fire on the worker.
func FromConfig(c core.Config) (WireConfig, error) {
	if c.Probe != nil {
		return WireConfig{}, fmt.Errorf("distsweep: config carries a Probe; not serializable")
	}
	if c.OnRightPathAccess != nil {
		return WireConfig{}, fmt.Errorf("distsweep: config carries OnRightPathAccess; not serializable")
	}
	if c.Chooser != nil {
		return WireConfig{}, fmt.Errorf("distsweep: config carries a constructed Chooser; " +
			"ship AdaptStrategy/AdaptSeed and let the worker rebuild it")
	}
	return WireConfig{
		Policy:           c.Policy,
		FetchWidth:       c.FetchWidth,
		MaxUnresolved:    c.MaxUnresolved,
		MissPenalty:      c.MissPenalty,
		DecodeLatency:    c.DecodeLatency,
		ResolveLatency:   c.ResolveLatency,
		ICache:           c.ICache,
		NextLinePrefetch: c.NextLinePrefetch,
		TargetPrefetch:   c.TargetPrefetch,
		StreamDepth:      c.StreamDepth,
		PipelinedMemory:  c.PipelinedMemory,
		L2:               c.L2,
		L2Latency:        c.L2Latency,
		MSHRs:            c.MSHRs,
		RASDepth:         c.RASDepth,
		FlushInterval:    c.FlushInterval,
		SampleInterval:   c.SampleInterval,
		StepMode:         c.StepMode,
		AdaptStrategy:    c.AdaptStrategy,
		AdaptInterval:    c.AdaptInterval,
		AdaptSeed:        c.AdaptSeed,
	}, nil
}

// ToConfig rebuilds the core.Config (probe-free, MaxInsts unset — the
// runner stamps the budget from JobSpec.Insts, mirroring the in-process
// executor).
func (w WireConfig) ToConfig() core.Config {
	return core.Config{
		Policy:           w.Policy,
		FetchWidth:       w.FetchWidth,
		MaxUnresolved:    w.MaxUnresolved,
		MissPenalty:      w.MissPenalty,
		DecodeLatency:    w.DecodeLatency,
		ResolveLatency:   w.ResolveLatency,
		ICache:           w.ICache,
		NextLinePrefetch: w.NextLinePrefetch,
		TargetPrefetch:   w.TargetPrefetch,
		StreamDepth:      w.StreamDepth,
		PipelinedMemory:  w.PipelinedMemory,
		L2:               w.L2,
		L2Latency:        w.L2Latency,
		MSHRs:            w.MSHRs,
		RASDepth:         w.RASDepth,
		FlushInterval:    w.FlushInterval,
		SampleInterval:   w.SampleInterval,
		StepMode:         w.StepMode,
		AdaptStrategy:    w.AdaptStrategy,
		AdaptInterval:    w.AdaptInterval,
		AdaptSeed:        w.AdaptSeed,
	}
}

// JobSpec is one serializable sweep cell: the bench recipe (a synth.Profile
// regenerates the identical program and image on any machine), the machine
// configuration, the dynamic-stream seed, the predictor kind, the
// instruction budget, and the audit sampling rate the worker must attach.
//
// CaptureWindows is the interval-analytics opt-in, added to wire v1
// additively (omitempty; absent decodes to false, so old and new peers
// interoperate): when set, the worker attaches an obs.WindowSeries to the
// run — window capture crosses the wire as this flag rather than as a
// probe, which keeps the cell serializable — and returns the records in
// JobResult.WindowSeries. It requires a positive Config.SampleInterval.
type JobSpec struct {
	Profile        synth.Profile `json:"profile"`
	Config         WireConfig    `json:"config"`
	Seed           uint64        `json:"seed"`
	Insts          int64         `json:"insts"`
	Pred           string        `json:"pred,omitempty"`
	AuditSample    int           `json:"audit_sample,omitempty"`
	CaptureWindows bool          `json:"capture_windows,omitempty"`
}

// Validate rejects specs a worker could not run: bad profiles, bad
// configs, unknown predictor kinds, non-positive budgets. Workers validate
// before running so malformed specs come back as permanent (4xx) errors
// instead of burning retries.
func (s JobSpec) Validate() error {
	if err := s.Profile.Validate(); err != nil {
		return err
	}
	cfg := s.Config.ToConfig()
	cfg.MaxInsts = s.Insts
	if err := cfg.Validate(); err != nil {
		return err
	}
	if _, err := bpred.ByName(s.Pred); err != nil {
		return err
	}
	if s.Insts <= 0 {
		return fmt.Errorf("distsweep: job has no instruction budget")
	}
	if s.AuditSample < 0 {
		return fmt.Errorf("distsweep: negative audit sample %d", s.AuditSample)
	}
	if s.CaptureWindows && s.Config.SampleInterval <= 0 {
		return fmt.Errorf("distsweep: capture_windows requires a positive sample_interval")
	}
	if s.Config.Policy == core.Adaptive {
		// The worker will rebuild the chooser from the strategy name, so an
		// unknown name must fail here as a permanent error, not mid-batch.
		if _, err := adaptive.New(s.Config.AdaptStrategy, s.Config.AdaptSeed); err != nil {
			return err
		}
	} else if s.Config.AdaptStrategy != "" {
		return fmt.Errorf("distsweep: adapt_strategy %q on non-adaptive policy %v",
			s.Config.AdaptStrategy, s.Config.Policy)
	}
	return nil
}

// Batch is the unit of dispatch: a contiguous slice of the sweep
// work-list. ID is coordinator-assigned and echoed back so a late response
// from a timed-out attempt can never be mistaken for the retry's.
//
// Campaign and Attempt are the batch's trace/log context, added to wire v1
// additively (omitempty; absent fields decode to zero values, so old and
// new peers interoperate): Campaign names the coordinator run so one
// worker's log can be split by campaign, and Attempt ties worker-side
// records to the coordinator's dispatch attempt counter.
type Batch struct {
	Version  int       `json:"version"`
	ID       uint64    `json:"id"`
	Campaign string    `json:"campaign,omitempty"`
	Attempt  int       `json:"attempt,omitempty"`
	Jobs     []JobSpec `json:"jobs"`
}

// JobResult pairs a simulation result with the worker's audit self-check:
// the AuditFinal its sampled obs.AuditProbe verified against the run. The
// coordinator recomputes Result.AuditFinal() and rejects the batch if the
// two disagree — a worker cannot claim an audit it did not pass.
//
// WindowSeries carries the job's interval window records when the spec set
// CaptureWindows, added to wire v1 additively (omitempty; absent decodes to
// nil): the reducer hands it to the caller untouched, and specs that do not
// capture windows encode exactly as before.
type JobResult struct {
	Result       core.Result        `json:"result"`
	Audit        obs.AuditFinal     `json:"audit"`
	WindowSeries []obs.WindowRecord `json:"window_series,omitempty"`
}

// SelfConsistent reports whether the result's own counters rebuild the
// audit identity the worker claims to have verified.
func (r JobResult) SelfConsistent() bool {
	return r.Result.AuditFinal() == r.Audit
}

// WireSpan is one job's execution timing on the worker's own monotonic
// clock: StartUS is the offset from the start of batch execution, DurUS the
// job's duration, both in microseconds. Offsets rather than absolute times
// cross the wire because the two processes share no clock; the coordinator
// re-anchors each span onto its own hosttime axis using the dispatch
// round-trip (see Coordinator.FleetSpans).
type WireSpan struct {
	Job     int    `json:"job"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// BatchResult echoes the batch ID and carries one JobResult per job, in
// job order.
//
// Pid, ExecUS, and Spans are the worker's telemetry sidecar, added to wire
// v1 additively (omitempty): the worker process id keys fleet trace tracks,
// ExecUS is the total batch execution time on the worker's clock, and Spans
// carries per-job timings. All three are advisory — the reducer never reads
// them, so they cannot perturb rendered artifact bytes.
type BatchResult struct {
	Version int         `json:"version"`
	ID      uint64      `json:"id"`
	Pid     int         `json:"pid,omitempty"`
	ExecUS  int64       `json:"exec_us,omitempty"`
	Spans   []WireSpan  `json:"spans,omitempty"`
	Results []JobResult `json:"results"`
}

// ErrorBody is the JSON body of a non-200 worker response. Job is the
// index of the failing job within the batch (-1 when the batch itself was
// unusable).
type ErrorBody struct {
	Error string `json:"error"`
	Job   int    `json:"job"`
}
