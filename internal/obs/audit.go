// The runtime counterpart of cmd/simlint: AuditProbe re-derives the paper's
// accounting identities from the probe event stream and cross-checks them
// against the engine's own counters. Static analysis proves the hooks are
// wired safely; the auditor proves the numbers they report are consistent.
package obs

import (
	"fmt"
	"strings"

	"specfetch/internal/metrics"
)

// AuditError is a cycle-stamped accounting-invariant violation. Streaming
// checks panic with one (the simulation state at that point is already
// inconsistent); Verify returns one.
type AuditError struct {
	// Cycle is the simulation cycle the violation was detected at.
	Cycle metrics.Cycles
	// Check names the violated invariant (snake_case).
	Check string
	// Detail is the human-readable diagnosis.
	Detail string
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("audit violation at cycle %d [%s]: %s", e.Cycle, e.Check, e.Detail)
}

// AuditOptions configures an AuditProbe for one run.
type AuditOptions struct {
	// Width is the machine's fetch width (Config.FetchWidth). Required.
	Width int
	// AllowBusOverlap disables the bus-serialization check; set it when the
	// run uses Config.PipelinedMemory, which deliberately overlaps
	// transfers.
	AllowBusOverlap bool
	// SampleEvery, when greater than 1, switches the auditor to sampled
	// mode: the per-event stream-structure checks (fetch ordering, miss/fill
	// matching, in-flight fill tracking, bus alternation/overlap/duration)
	// run for one in every SampleEvery inter-window regions — the stretches
	// of stream delimited by speculation-window closures. A violation inside
	// a skipped region is not caught; one inside a sampled region still
	// panics with a cycle-stamped *AuditError.
	//
	// The O(1) accumulators (issued instructions, per-component stall and
	// branch slots, fill/bus/prefetch counts) and the window state machine
	// stay on in every region, so Verify's final accounting identities
	// remain exact regardless of the sampling rate. Two stream checks are
	// relaxed in sampled mode because they need cross-region state: a fill
	// with no matching open miss is tolerated (the miss may lie in a
	// skipped region), and in-flight-fill conflicts are not tracked across
	// a skipped region's boundary.
	//
	// 0 and 1 both mean full auditing — bit-identical to the pre-sampling
	// auditor.
	SampleEvery int
}

// AuditFinal carries the engine counters Verify cross-checks against the
// event stream — the relevant subset of core.Result, restated here because
// obs must not import core.
type AuditFinal struct {
	Insts  int64
	Cycles metrics.Cycles
	Lost   metrics.Breakdown
	// Traffic counters by fill kind.
	DemandFills    uint64
	WrongPathFills uint64
	PrefetchFills  uint64
}

// AuditProbe is a Probe that audits the event stream while the simulation
// runs. It maintains an independent reconstruction of the run's accounting
// and panics with a *AuditError the moment the stream becomes inconsistent:
//
//   - structure: fetch cycles strictly increase, windows pair and never
//     nest, wrong-path misses only occur inside windows, stall runs have
//     legal extents;
//   - bus: acquire/release alternate, transfers take time, and (without
//     pipelined memory) never overlap;
//   - fills: every fill completion matches an outstanding miss or an
//     announced prefetch, and no line has two fills in flight.
//
// After the run, Verify cross-checks the accumulated totals against the
// engine's Result: per-component lost slots, issued instructions, slot
// conservation, and traffic by kind.
//
// With AuditOptions.SampleEvery > 1 the stream-structure checks above run
// on a 1-in-N sample of inter-window regions (cheap enough to leave on
// inside the long experiment sweeps), while every final identity Verify
// checks stays exact; see AuditOptions.SampleEvery.
//
// The auditor is not safe for concurrent use; attach one per run.
type AuditProbe struct {
	opt AuditOptions

	// sampling is true when opt.SampleEvery > 1; auditing is true while the
	// current inter-window region is one of the sampled ones. In full mode
	// auditing is permanently true, keeping the hot paths branch-identical
	// to the pre-sampling auditor.
	sampling bool
	auditing bool
	// windowsSeen counts closed speculation windows — the sampling epochs.
	windowsSeen int64

	// watermark is the latest event cycle known to be "now" (fill and bus
	// cycles are future-dated and excluded).
	watermark metrics.Cycles

	lastFetchCy metrics.Cycles
	issuedTotal int64

	stallSlots metrics.Breakdown

	inWindow      bool
	winStart      metrics.Cycles
	winUntil      metrics.Cycles
	winRedirected bool
	// pendingWindows maps a window's start cycle to its nominal end: the
	// FetchCycle event for the branch's own fetch group arrives after
	// WindowEnd, and only then can the window's branch-component slots
	// (width*(until-start) minus the group's issued slots) be reconstructed.
	pendingWindows map[metrics.Cycles]metrics.Cycles
	branchSlots    metrics.Slots

	busHeld       bool
	busAcquireCy  metrics.Cycles
	lastReleaseCy metrics.Cycles
	busAcquires   uint64
	busReleases   uint64

	fillCounts [numFillKinds]uint64
	// pendingFillDone maps a line to the completion cycle of its most recent
	// fill; a second fill arriving before the watermark passes it means two
	// transfers of the same line were in flight at once.
	pendingFillDone map[uint64]metrics.Cycles

	// openRPMiss / openWPMiss track demand misses awaiting their fill, per
	// line. Right-path misses must be filled immediately (same handler);
	// wrong-path misses may stay unserviced until the window squashes them.
	openRPMiss map[uint64]metrics.Cycles
	openWPMiss map[uint64]metrics.Cycles

	prefetches uint64
}

// NewAuditProbe builds an auditor for one run. opt.Width must match the
// run's Config.FetchWidth.
func NewAuditProbe(opt AuditOptions) *AuditProbe {
	if opt.Width < 1 {
		panic("obs: AuditOptions.Width must be >= 1")
	}
	if opt.SampleEvery < 0 {
		panic("obs: AuditOptions.SampleEvery must be >= 0")
	}
	return &AuditProbe{
		opt:             opt,
		sampling:        opt.SampleEvery > 1,
		auditing:        true, // region 0 is always sampled
		lastFetchCy:     -1,
		lastReleaseCy:   -1,
		pendingWindows:  make(map[metrics.Cycles]metrics.Cycles),
		pendingFillDone: make(map[uint64]metrics.Cycles),
		openRPMiss:      make(map[uint64]metrics.Cycles),
		openWPMiss:      make(map[uint64]metrics.Cycles),
	}
}

func (a *AuditProbe) violate(cy metrics.Cycles, check, format string, args ...any) {
	panic(&AuditError{Cycle: cy, Check: check, Detail: fmt.Sprintf(format, args...)})
}

func (a *AuditProbe) ground(cy metrics.Cycles) {
	if cy > a.watermark {
		a.watermark = cy
	}
}

// FetchCycle implements Probe.
func (a *AuditProbe) FetchCycle(cy metrics.Cycles, issued int) {
	if a.auditing {
		if cy <= a.lastFetchCy {
			a.violate(cy, "fetch_cycle_order",
				"fetch group at cycle %d does not follow the previous group at cycle %d", cy, a.lastFetchCy)
		}
		if issued < 0 || issued > a.opt.Width {
			a.violate(cy, "issued_range", "fetch group issued %d instructions on a %d-wide machine",
				issued, a.opt.Width)
		}
	}
	a.lastFetchCy = cy
	a.issuedTotal += int64(issued)
	a.ground(cy)

	// len guard: the map is empty outside windows, and skipping the hash on
	// the common path keeps the sampled auditor's per-fetch cost at a few
	// arithmetic ops.
	if len(a.pendingWindows) > 0 {
		if until, ok := a.pendingWindows[cy]; ok {
			// This group ended in a redirecting branch: all of its remaining
			// slots, plus every slot until the nominal window end, are branch
			// penalty.
			a.branchSlots += (until - cy).Slots(a.opt.Width) - metrics.Slots(issued)
			delete(a.pendingWindows, cy)
		}
	}
}

// MissStart implements Probe.
func (a *AuditProbe) MissStart(cy metrics.Cycles, line uint64, wrongPath bool) {
	if !a.auditing {
		// Skipped region: misses carry no accumulator, so nothing to track.
		return
	}
	a.ground(cy)
	if wrongPath != a.inWindow {
		a.violate(cy, "miss_path",
			"miss on line %#x reported wrongPath=%v while inside-window=%v", line, wrongPath, a.inWindow)
	}
	if wrongPath {
		a.openWPMiss[line] = cy
		return
	}
	if at, open := a.openRPMiss[line]; open {
		a.violate(cy, "miss_refill",
			"right-path miss on line %#x while the miss from cycle %d is still unfilled", line, at)
	}
	a.openRPMiss[line] = cy
}

// FillComplete implements Probe.
func (a *AuditProbe) FillComplete(cy metrics.Cycles, line uint64, kind FillKind) {
	// The kind check guards the counter array, so it stays on in skipped
	// regions too.
	if kind >= numFillKinds {
		a.violate(cy, "fill_kind", "unknown fill kind %d for line %#x", int(kind), line)
	}
	a.fillCounts[kind]++
	if !a.auditing {
		// A miss opened in a sampled region may legally fill during a
		// skipped one; retire it so Verify's never-filled ledger stays
		// exact.
		if len(a.openRPMiss) > 0 {
			delete(a.openRPMiss, line)
		}
		if len(a.openWPMiss) > 0 {
			delete(a.openWPMiss, line)
		}
		return
	}
	if prev, ok := a.pendingFillDone[line]; ok && prev > a.watermark {
		a.violate(cy, "fill_inflight",
			"line %#x fill scheduled for cycle %d while the fill completing at cycle %d is still in flight",
			line, cy, prev)
	}
	a.pendingFillDone[line] = cy

	switch kind {
	case FillDemand:
		if _, open := a.openRPMiss[line]; !open && !a.sampling {
			// Sampled mode tolerates this: the miss may lie in a skipped
			// region.
			a.violate(cy, "fill_unmatched", "demand fill of line %#x without an outstanding right-path miss", line)
		}
		delete(a.openRPMiss, line)
	case FillWrongPath:
		if _, open := a.openWPMiss[line]; !open && !a.sampling {
			a.violate(cy, "fill_unmatched", "wrong-path fill of line %#x without an outstanding wrong-path miss", line)
		}
		delete(a.openWPMiss, line)
	case FillPrefetch:
		// Matched against the Prefetch announcement count in Verify.
	}
}

// BusAcquire implements Probe.
func (a *AuditProbe) BusAcquire(cy metrics.Cycles, line uint64, kind FillKind) {
	a.busAcquires++
	// The held/acquire/release state is three cheap assignments, so it is
	// tracked through skipped regions too: only the violation checks are
	// sampled, and the first bus event of a sampled region checks against
	// accurate state.
	if a.auditing {
		if a.busHeld {
			a.violate(cy, "bus_alternation",
				"bus acquired for line %#x while the transfer from cycle %d has not released", line, a.busAcquireCy)
		}
		if !a.opt.AllowBusOverlap && cy < a.lastReleaseCy {
			a.violate(cy, "bus_overlap",
				"transfer of line %#x starts at cycle %d, before the previous transfer releases at cycle %d",
				line, cy, a.lastReleaseCy)
		}
	}
	a.busHeld = true
	a.busAcquireCy = cy
}

// BusRelease implements Probe.
func (a *AuditProbe) BusRelease(cy metrics.Cycles) {
	a.busReleases++
	if a.auditing {
		if !a.busHeld {
			a.violate(cy, "bus_alternation", "bus released without a matching acquire")
		}
		if cy <= a.busAcquireCy {
			a.violate(cy, "bus_duration",
				"transfer acquired at cycle %d releases at cycle %d; transfers take at least one cycle",
				a.busAcquireCy, cy)
		}
	}
	a.busHeld = false
	a.lastReleaseCy = cy
}

// BranchResolve implements Probe.
func (a *AuditProbe) BranchResolve(cy metrics.Cycles, pc uint64, taken, mispredicted bool) {}

// Redirect implements Probe.
func (a *AuditProbe) Redirect(cy metrics.Cycles, kind RedirectKind, resumePC uint64) {
	if !a.inWindow {
		a.violate(cy, "redirect", "redirect outside any misfetch/mispredict window")
	}
	if cy != a.winUntil {
		a.violate(cy, "redirect",
			"redirect at cycle %d, but the open window's nominal end is cycle %d", cy, a.winUntil)
	}
	a.winRedirected = true
}

// Prefetch implements Probe.
func (a *AuditProbe) Prefetch(cy metrics.Cycles, line uint64, doneAt metrics.Cycles) {
	if doneAt <= cy {
		a.violate(cy, "prefetch_done",
			"prefetch of line %#x issued at cycle %d completes at cycle %d", line, cy, doneAt)
	}
	a.prefetches++
}

// WindowStart implements Probe.
func (a *AuditProbe) WindowStart(cy metrics.Cycles, kind RedirectKind, until metrics.Cycles) {
	if a.inWindow {
		a.violate(cy, "window_nesting",
			"window opened at cycle %d while the window from cycle %d is still open", cy, a.winStart)
	}
	if until <= cy {
		a.violate(cy, "window_extent", "window at cycle %d has nominal end %d", cy, until)
	}
	a.inWindow = true
	a.winStart = cy
	a.winUntil = until
	a.winRedirected = false
	a.pendingWindows[cy] = until
	a.ground(cy)
}

// WindowEnd implements Probe.
func (a *AuditProbe) WindowEnd(cy metrics.Cycles) {
	if !a.inWindow {
		a.violate(cy, "window_pairing", "window end without a matching window start")
	}
	if cy < a.winUntil {
		a.violate(cy, "window_extent",
			"fetch resumes at cycle %d, before the window's nominal end %d", cy, a.winUntil)
	}
	if !a.winRedirected {
		a.violate(cy, "window_pairing", "window closed without a redirect back to the correct path")
	}
	a.inWindow = false
	// Unserviced wrong-path misses are squashed with the window.
	clear(a.openWPMiss)
	a.ground(cy)

	if a.sampling {
		// A window closure ends one sampling epoch; region k (the stream up
		// to and including window k+1's closure) is audited iff k is a
		// multiple of SampleEvery.
		a.windowsSeen++
		next := a.windowsSeen%int64(a.opt.SampleEvery) == 0
		if next && !a.auditing {
			// Re-entering an audited region: drop the in-flight fill ledger,
			// which references completions scheduled before the gap.
			clear(a.pendingFillDone)
		}
		a.auditing = next
	}
}

// Stall implements Probe.
func (a *AuditProbe) Stall(cy, until metrics.Cycles, comp metrics.Component, slots metrics.Slots) {
	if comp >= metrics.NumComponents {
		a.violate(cy, "stall_component", "stall charged to unknown component %d", int(comp))
	}
	if comp == metrics.Branch {
		a.violate(cy, "stall_component",
			"stall charged to %s; branch penalty is accounted through windows, not stalls", comp)
	}
	if until <= cy {
		a.violate(cy, "stall_extent", "stall run [%d,%d) is empty", cy, until)
	}
	if slots <= 0 || slots > (until-cy).Slots(a.opt.Width) {
		a.violate(cy, "stall_extent",
			"stall run [%d,%d) charges %d slots on a %d-wide machine (max %d)",
			cy, until, slots, a.opt.Width, (until - cy).Slots(a.opt.Width))
	}
	a.stallSlots[comp] += slots
}

// Verify cross-checks the stream-accumulated totals against the engine's
// final counters. It returns nil when every identity holds, and a
// *AuditError describing every mismatch otherwise.
func (a *AuditProbe) Verify(f AuditFinal) error {
	var bad []string
	flunk := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	if a.inWindow {
		flunk("a misfetch/mispredict window opened at cycle %d never closed", a.winStart)
	}
	if n := len(a.pendingWindows); n != 0 {
		flunk("%d window(s) never saw their branch group's fetch-cycle event", n)
	}
	if a.busHeld {
		flunk("the bus transfer acquired at cycle %d never released", a.busAcquireCy)
	}
	if n := len(a.openRPMiss); n != 0 {
		flunk("%d right-path miss(es) never received a demand fill", n)
	}

	if a.issuedTotal != f.Insts {
		flunk("fetch groups issued %d instructions; the engine counted %d", a.issuedTotal, f.Insts)
	}
	if a.branchSlots != f.Lost[metrics.Branch] {
		flunk("windows account for %d %s slots; the engine charged %d",
			a.branchSlots, metrics.Branch, f.Lost[metrics.Branch])
	}
	for _, c := range metrics.Components() {
		if c == metrics.Branch {
			continue
		}
		if a.stallSlots[c] != f.Lost[c] {
			flunk("stall runs account for %d %s slots; the engine charged %d",
				a.stallSlots[c], c, f.Lost[c])
		}
	}
	width := a.opt.Width
	totalSlots := f.Cycles.Slots(width)
	usedSlots := metrics.Slots(f.Insts) + f.Lost.Total()
	if slack := totalSlots - usedSlots; slack < 0 || slack >= metrics.Slots(width) {
		flunk("slot conservation broken: %d cycles x width %d = %d slots, but issued+lost = %d (slack %d)",
			f.Cycles, width, totalSlots, usedSlots, slack)
	}

	if a.busAcquires != a.busReleases {
		flunk("%d bus acquires vs %d releases", a.busAcquires, a.busReleases)
	}
	totalFills := f.DemandFills + f.WrongPathFills + f.PrefetchFills
	if a.busAcquires != totalFills {
		flunk("%d bus transfers observed; the engine counted %d line fills", a.busAcquires, totalFills)
	}
	if a.fillCounts[FillDemand] != f.DemandFills {
		flunk("%d demand fill completions; the engine counted %d", a.fillCounts[FillDemand], f.DemandFills)
	}
	if a.fillCounts[FillWrongPath] != f.WrongPathFills {
		flunk("%d wrong-path fill completions; the engine counted %d", a.fillCounts[FillWrongPath], f.WrongPathFills)
	}
	if a.fillCounts[FillPrefetch] != f.PrefetchFills {
		flunk("%d prefetch fill completions; the engine counted %d", a.fillCounts[FillPrefetch], f.PrefetchFills)
	}
	if a.prefetches != a.fillCounts[FillPrefetch] {
		flunk("%d prefetch announcements vs %d prefetch fill completions", a.prefetches, a.fillCounts[FillPrefetch])
	}

	if len(bad) == 0 {
		return nil
	}
	return &AuditError{Cycle: f.Cycles, Check: "final_identities", Detail: strings.Join(bad, "; ")}
}
