package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"specfetch/internal/metrics"
)

// SeriesPoint is one interval sample of a run's time series. Rate fields
// describe the interval since the previous sample; CumISPI is cumulative
// since run start, so the last point's CumISPI equals the run's final
// Result.TotalISPI exactly.
type SeriesPoint struct {
	// Insts / Cycle locate the sample (cumulative instruction count and
	// cycle at the sample point).
	Insts int64 `json:"insts"`
	Cycle int64 `json:"cycle"`
	// IPC is useful instructions per cycle over the interval.
	IPC float64 `json:"ipc"`
	// ISPI is total issue slots lost per instruction over the interval.
	ISPI float64 `json:"ispi"`
	// CumISPI is total ISPI from run start through this sample.
	CumISPI float64 `json:"cum_ispi"`
	// CompISPI is the interval ISPI per penalty component, indexed in the
	// paper's stacking order (metrics.Components()).
	CompISPI [metrics.NumComponents]float64 `json:"comp_ispi"`
	// MissPct is right-path misses per structural line reference over the
	// interval, as a percentage.
	MissPct float64 `json:"miss_pct"`
	// BusOccupancyPct is the fraction of interval cycles the memory bus was
	// occupied, as a percentage (can exceed 100 with pipelined memory).
	BusOccupancyPct float64 `json:"bus_occupancy_pct"`
}

// IntervalSampler collects a SeriesPoint per engine sample. It is a
// sample-only probe: every input it needs — including bus occupancy —
// arrives in the Snapshot, so attaching it via Config.Probe (with a
// positive Config.SampleInterval) keeps the skip-ahead bulk issue path
// enabled.
type IntervalSampler struct {
	NopProbe

	points []SeriesPoint

	// base holds the counters at the start of the interval the next point
	// will cover; prevBase is the base of the last closed interval, kept so
	// a run-end sample that adds no instructions (only trailing stall
	// cycles) can be merged into the last point instead of dropped.
	base     Snapshot
	prevBase Snapshot
}

// NewIntervalSampler builds an empty sampler.
func NewIntervalSampler() *IntervalSampler { return &IntervalSampler{} }

// SampleOnlyProbe marks the sampler as observing via Sample alone.
func (s *IntervalSampler) SampleOnlyProbe() {}

// Sample appends one interval point covering [previous sample, snap]. A
// snapshot that adds no instructions but does advance other counters (the
// run-end sample after the last issue, possibly cut short inside a bulk
// region by the instruction budget) is folded into the last point by
// rebuilding it from prevBase, so the final point's cumulative values
// always match the run's Result and nothing is dropped or double-counted.
func (s *IntervalSampler) Sample(snap Snapshot) {
	if snap.Insts > s.base.Insts {
		s.points = append(s.points, s.point(s.base, snap))
		s.prevBase = s.base
		s.base = snap
		return
	}
	if len(s.points) > 0 && snap != s.base {
		s.points[len(s.points)-1] = s.point(s.prevBase, snap)
		s.base = snap
	}
}

// point builds the series point for the interval from..snap.
func (s *IntervalSampler) point(from, snap Snapshot) SeriesPoint {
	dInsts := snap.Insts - from.Insts
	dCycles := snap.Cycle - from.Cycle

	p := SeriesPoint{Insts: snap.Insts, Cycle: snap.Cycle.Int64()}
	var lost metrics.Slots
	for i := range p.CompISPI {
		d := snap.Lost[i] - from.Lost[i]
		lost += d
		p.CompISPI[i] = float64(d) / float64(dInsts)
	}
	p.ISPI = float64(lost) / float64(dInsts)
	p.CumISPI = snap.Lost.TotalISPI(snap.Insts)
	if dCycles > 0 {
		p.IPC = float64(dInsts) / float64(dCycles)
		p.BusOccupancyPct = 100 * float64(snap.BusBusy-from.BusBusy) / float64(dCycles)
	}
	if dAcc := snap.RightPathAccesses - from.RightPathAccesses; dAcc > 0 {
		p.MissPct = 100 * float64(snap.RightPathMisses-from.RightPathMisses) / float64(dAcc)
	}
	return p
}

// Points returns the collected series, oldest first.
func (s *IntervalSampler) Points() []SeriesPoint { return s.points }

// WriteCSV writes the series with a header row; component columns follow
// the paper's stacking order, prefixed "ispi_".
func (s *IntervalSampler) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("insts,cycle,ipc,ispi,cum_ispi"); err != nil {
		return err
	}
	for _, c := range metrics.Components() {
		fmt.Fprintf(bw, ",ispi_%s", c)
	}
	if _, err := bw.WriteString(",miss_pct,bus_occupancy_pct\n"); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range s.points {
		fmt.Fprintf(bw, "%d,%d,%s,%s,%s", p.Insts, p.Cycle, f(p.IPC), f(p.ISPI), f(p.CumISPI))
		for _, v := range p.CompISPI {
			fmt.Fprintf(bw, ",%s", f(v))
		}
		fmt.Fprintf(bw, ",%s,%s\n", f(p.MissPct), f(p.BusOccupancyPct))
	}
	return bw.Flush()
}

// WriteJSON writes the series as a JSON array of points.
func (s *IntervalSampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	pts := s.points
	if pts == nil {
		pts = []SeriesPoint{}
	}
	return enc.Encode(pts)
}
