package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"specfetch/internal/metrics"
)

// EventType discriminates recorded probe events.
type EventType uint8

const (
	EvFetchCycle EventType = iota
	EvMissStart
	EvFillComplete
	EvBusAcquire
	EvBusRelease
	EvBranchResolve
	EvRedirect
	EvPrefetch
	EvWindowStart
	EvWindowEnd
	EvStall

	NumEventTypes
)

var eventTypeNames = [NumEventTypes]string{
	EvFetchCycle:    "fetch_cycle",
	EvMissStart:     "miss_start",
	EvFillComplete:  "fill_complete",
	EvBusAcquire:    "bus_acquire",
	EvBusRelease:    "bus_release",
	EvBranchResolve: "branch_resolve",
	EvRedirect:      "redirect",
	EvPrefetch:      "prefetch",
	EvWindowStart:   "window_start",
	EvWindowEnd:     "window_end",
	EvStall:         "stall",
}

// String returns the snake_case name of the event type.
func (t EventType) String() string {
	if t < NumEventTypes {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// MarshalText renders the event type as its name, so Event JSON is
// self-describing.
func (t EventType) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses an event-type name.
func (t *EventType) UnmarshalText(b []byte) error {
	for i, n := range eventTypeNames {
		if n == string(b) {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event type %q", b)
}

// Event is one probe callback flattened into a JSON-friendly record. Fields
// not used by a given event type are zero and omitted from JSON. Cy is the
// cycle the event refers to (which may be ahead of emission order: the
// engine reports scheduled completions eagerly).
type Event struct {
	Cy   int64     `json:"cy"`
	Type EventType `json:"type"`
	// Line is the cache line involved (miss/fill/bus/prefetch events).
	Line uint64 `json:"line,omitempty"`
	// PC is the branch address (branch_resolve) or resume address (redirect).
	PC uint64 `json:"pc,omitempty"`
	// Until is the end cycle of span events (stall, window_start, prefetch).
	Until int64 `json:"until,omitempty"`
	// Kind is the fill kind or redirect kind name.
	Kind string `json:"kind,omitempty"`
	// Comp is the penalty component name of a stall.
	Comp string `json:"comp,omitempty"`
	// Slots is the issue-slot cost of a stall.
	Slots int64 `json:"slots,omitempty"`
	// Issued is the instruction count of a fetch_cycle event.
	Issued int `json:"issued,omitempty"`
	// Taken / Mispredict describe a branch_resolve event.
	Taken      bool `json:"taken,omitempty"`
	Mispredict bool `json:"mispredict,omitempty"`
}

// EventRecorder is a bounded ring-buffer Probe: it records every callback
// as an Event, overwriting the oldest events once the buffer is full, so
// memory stays bounded on arbitrarily long runs. The zero value is not
// usable; call NewEventRecorder.
type EventRecorder struct {
	buf      []Event
	n        uint64 // total events recorded (monotone)
	disabled [NumEventTypes]bool
}

// DefaultEventCapacity bounds recorder memory at roughly 100 MB-scale runs
// to a few MB of events.
const DefaultEventCapacity = 1 << 16

// NewEventRecorder builds a recorder holding the last `capacity` events
// (DefaultEventCapacity when capacity <= 0).
func NewEventRecorder(capacity int) *EventRecorder {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventRecorder{buf: make([]Event, capacity)}
}

// Disable suppresses recording of the given event types (e.g. the per-cycle
// fetch_cycle flood when only structural events are wanted).
func (r *EventRecorder) Disable(types ...EventType) {
	for _, t := range types {
		if t < NumEventTypes {
			r.disabled[t] = true
		}
	}
}

// Cap returns the ring capacity.
func (r *EventRecorder) Cap() int { return len(r.buf) }

// Total returns how many events were recorded over the run, including ones
// the ring has since overwritten.
func (r *EventRecorder) Total() uint64 { return r.n }

// Dropped returns how many of the recorded events were overwritten.
func (r *EventRecorder) Dropped() uint64 {
	if c := uint64(len(r.buf)); r.n > c {
		return r.n - c
	}
	return 0
}

// Events returns the retained events, oldest first. The slice is a copy.
func (r *EventRecorder) Events() []Event {
	c := uint64(len(r.buf))
	if r.n <= c {
		return append([]Event(nil), r.buf[:r.n]...)
	}
	head := r.n % c
	out := make([]Event, 0, c)
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out
}

// WriteJSONL writes the retained events as one JSON object per line,
// oldest first.
func (r *EventRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range r.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (r *EventRecorder) record(ev Event) {
	if r.disabled[ev.Type] {
		return
	}
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
}

func (r *EventRecorder) FetchCycle(cy metrics.Cycles, issued int) {
	r.record(Event{Cy: cy.Int64(), Type: EvFetchCycle, Issued: issued})
}

func (r *EventRecorder) MissStart(cy metrics.Cycles, line uint64, wrongPath bool) {
	kind := FillDemand
	if wrongPath {
		kind = FillWrongPath
	}
	r.record(Event{Cy: cy.Int64(), Type: EvMissStart, Line: line, Kind: kind.String()})
}

func (r *EventRecorder) FillComplete(cy metrics.Cycles, line uint64, kind FillKind) {
	r.record(Event{Cy: cy.Int64(), Type: EvFillComplete, Line: line, Kind: kind.String()})
}

func (r *EventRecorder) BusAcquire(cy metrics.Cycles, line uint64, kind FillKind) {
	r.record(Event{Cy: cy.Int64(), Type: EvBusAcquire, Line: line, Kind: kind.String()})
}

func (r *EventRecorder) BusRelease(cy metrics.Cycles) {
	r.record(Event{Cy: cy.Int64(), Type: EvBusRelease})
}

func (r *EventRecorder) BranchResolve(cy metrics.Cycles, pc uint64, taken, mispredicted bool) {
	r.record(Event{Cy: cy.Int64(), Type: EvBranchResolve, PC: pc, Taken: taken, Mispredict: mispredicted})
}

func (r *EventRecorder) Redirect(cy metrics.Cycles, kind RedirectKind, resumePC uint64) {
	r.record(Event{Cy: cy.Int64(), Type: EvRedirect, PC: resumePC, Kind: kind.String()})
}

func (r *EventRecorder) Prefetch(cy metrics.Cycles, line uint64, doneAt metrics.Cycles) {
	r.record(Event{Cy: cy.Int64(), Type: EvPrefetch, Line: line, Until: doneAt.Int64()})
}

func (r *EventRecorder) WindowStart(cy metrics.Cycles, kind RedirectKind, until metrics.Cycles) {
	r.record(Event{Cy: cy.Int64(), Type: EvWindowStart, Kind: kind.String(), Until: until.Int64()})
}

func (r *EventRecorder) WindowEnd(cy metrics.Cycles) {
	r.record(Event{Cy: cy.Int64(), Type: EvWindowEnd})
}

func (r *EventRecorder) Stall(cy, until metrics.Cycles, comp metrics.Component, slots metrics.Slots) {
	r.record(Event{Cy: cy.Int64(), Type: EvStall, Until: until.Int64(), Comp: comp.String(), Slots: slots.Int64()})
}
