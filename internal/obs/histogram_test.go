package obs

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBounds pins the fixed bucket layout: boundaries start at
// 1µs, grow by a constant factor of 10^(1/5), and land exactly on decades
// every 5 buckets.
func TestHistogramBounds(t *testing.T) {
	bounds := HistogramBounds()
	if len(bounds) != numHistBuckets {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), numHistBuckets)
	}
	if bounds[0] != 1e-6 {
		t.Errorf("bounds[0] = %g, want 1e-6", bounds[0])
	}
	g := HistogramGrowth()
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %g <= %g", i, bounds[i], bounds[i-1])
		}
		ratio := bounds[i] / bounds[i-1]
		if math.Abs(ratio-g) > 1e-9 {
			t.Errorf("growth at bucket %d = %g, want %g", i, ratio, g)
		}
	}
	for d := 0; d <= histDecades; d++ {
		i := d * histBucketsPerDecade
		want := histMin * math.Pow(10, float64(d))
		if math.Abs(bounds[i]-want)/want > 1e-12 {
			t.Errorf("decade boundary %d = %g, want %g", d, bounds[i], want)
		}
	}
}

// TestHistogramBucketing covers the edge cases of value-to-bucket mapping:
// exact boundaries are inclusive, zero and negatives land in the first
// bucket, and out-of-range and NaN values land in the overflow bucket.
func TestHistogramBucketing(t *testing.T) {
	bounds := HistogramBounds()
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{1e-9, 0},
		{bounds[0], 0},
		{bounds[0] * 1.0001, 1},
		{bounds[7], 7},
		{bounds[len(bounds)-1], numHistBuckets - 1},
		{bounds[len(bounds)-1] * 2, numHistBuckets},
		{math.Inf(1), numHistBuckets},
		{math.NaN(), numHistBuckets},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistogramQuantileErrorBound is the estimator's accuracy contract:
// against the exact sample quantile of log-uniform data, the bucket-upper-
// bound estimate never undershoots and overshoots by at most the bucket
// growth factor.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	var vals []float64
	for i := 0; i < 10_000; i++ {
		// Log-uniform over [1e-5, 1e2] — well inside the finite buckets.
		v := math.Pow(10, -5+7*rng.Float64())
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	g := HistogramGrowth()
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
		rank := int(math.Ceil(q * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		est := h.Quantile(q)
		if est < exact {
			t.Errorf("q=%g: estimate %g undershoots exact %g", q, est, exact)
		}
		if est > exact*g*(1+1e-9) {
			t.Errorf("q=%g: estimate %g exceeds exact %g by more than the growth factor %g", q, est, exact, g)
		}
	}
}

// TestHistogramQuantileEdges: empty histograms and overflow ranks.
func TestHistogramQuantileEdges(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(1e9) // overflow bucket
	if got := h.Quantile(0.5); !math.IsInf(got, 1) {
		t.Errorf("overflow-bucket quantile = %g, want +Inf", got)
	}
}

// TestHistogramSumCount checks the scalar accumulators.
func TestHistogramSumCount(t *testing.T) {
	h := &Histogram{}
	want := 0.0
	for _, v := range []float64{0.001, 0.002, 0.5, 12} {
		h.Observe(v)
		want += v
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-want) > 1e-12 {
		t.Errorf("Sum = %g, want %g", h.Sum(), want)
	}
}

// TestHistogramConcurrentObserve drives Observe from several goroutines (the
// race detector covers the atomics) and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64())
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("Count = %d, want %d", got, workers*per)
	}
	if s := h.Sum(); s <= 0 || s >= workers*per {
		t.Errorf("Sum = %g out of range (0, %d)", s, workers*per)
	}
}

// parsedHistogram is the round-trip target of the exposition parser.
type parsedHistogram struct {
	bounds []string // le labels in order, excluding +Inf
	cum    []int64  // cumulative counts per le label, including +Inf last
	sum    float64
	count  int64
}

// parseHistogramText parses the Prometheus text exposition of one histogram
// out of a full registry dump.
func parseHistogramText(t *testing.T, text, name string) parsedHistogram {
	t.Helper()
	var p parsedHistogram
	sawType := false
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "# TYPE "+name+" histogram":
			sawType = true
		case strings.HasPrefix(line, name+"_bucket{le=\""):
			rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
			le, countStr, ok := strings.Cut(rest, "\"} ")
			if !ok {
				t.Fatalf("malformed bucket line %q", line)
			}
			n, err := strconv.ParseInt(countStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket count in %q: %v", line, err)
			}
			if le != "+Inf" {
				p.bounds = append(p.bounds, le)
			}
			p.cum = append(p.cum, n)
		case strings.HasPrefix(line, name+"_sum "):
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+"_sum "), 64)
			if err != nil {
				t.Fatalf("sum line %q: %v", line, err)
			}
			p.sum = v
		case strings.HasPrefix(line, name+"_count "):
			v, err := strconv.ParseInt(strings.TrimPrefix(line, name+"_count "), 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			p.count = v
		}
	}
	if !sawType {
		t.Fatalf("no TYPE histogram line for %q in exposition:\n%s", name, text)
	}
	return p
}

// TestHistogramExpositionRoundTrip writes a registry holding a histogram
// (plus a counter, to prove the types coexist sorted by name) and parses the
// text back: the cumulative bucket counts, boundaries, sum, and count must
// reconstruct the histogram's state exactly.
func TestHistogramExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("acme_sims_total", "Completed runs.").Add(3)
	h := reg.Histogram("acme_cell_seconds", "Cell latency.")
	obsVals := []float64{2e-6, 5e-4, 5e-4, 0.03, 7, 1e9}
	for _, v := range obsVals {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	p := parseHistogramText(t, sb.String(), "acme_cell_seconds")

	if len(p.cum) != numHistBuckets+1 {
		t.Fatalf("parsed %d bucket lines, want %d", len(p.cum), numHistBuckets+1)
	}
	for i, le := range p.bounds {
		if want := formatBound(HistogramBounds()[i]); le != want {
			t.Errorf("bucket %d le = %q, want %q", i, le, want)
		}
	}
	// Cumulative counts must be non-decreasing and reconstruct the per-bucket
	// counts the histogram holds.
	var cum int64
	for i := 0; i < numHistBuckets; i++ {
		cum += h.counts[i].Load()
		if p.cum[i] != cum {
			t.Errorf("cumulative count at bucket %d = %d, want %d", i, p.cum[i], cum)
		}
	}
	if p.cum[numHistBuckets] != int64(len(obsVals)) {
		t.Errorf("+Inf cumulative = %d, want %d", p.cum[numHistBuckets], len(obsVals))
	}
	if p.count != h.Count() {
		t.Errorf("parsed count = %d, want %d", p.count, h.Count())
	}
	if math.Abs(p.sum-h.Sum()) > 1e-9 {
		t.Errorf("parsed sum = %g, want %g", p.sum, h.Sum())
	}
}

// TestRegistryHistogram covers the registry contract for the new type:
// same-name reuse returns the same instance, and any cross-type collision
// panics.
func TestRegistryHistogram(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("h", "help")
	h2 := reg.Histogram("h", "help")
	if h1 != h2 {
		t.Error("same-name Histogram returned a different instance")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: cross-type registration did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("histogram-then-counter", func() { reg.Counter("h", "") })
	mustPanic("histogram-then-gauge", func() { reg.Gauge("h", "") })
	reg.Counter("c", "")
	mustPanic("counter-then-histogram", func() { reg.Histogram("c", "") })
	reg.Gauge("g", "")
	mustPanic("gauge-then-histogram", func() { reg.Histogram("g", "") })
}
