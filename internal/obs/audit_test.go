package obs

import (
	"strings"
	"testing"

	"specfetch/internal/metrics"
)

// drive feeds a minimal legal run into an auditor: one fetch group, one
// demand miss and fill, one bus transfer, one stall.
func driveCleanRun(a *AuditProbe) AuditFinal {
	a.FetchCycle(0, 4)
	a.MissStart(1, 0x40, false)
	a.BusAcquire(1, 0x40, FillDemand)
	a.BusRelease(6)
	a.FillComplete(6, 0x40, FillDemand)
	a.Stall(1, 6, metrics.Bus, 20)
	a.FetchCycle(6, 4)

	var lost metrics.Breakdown
	lost[metrics.Bus] = 20
	return AuditFinal{Insts: 8, Cycles: 7, Lost: lost, DemandFills: 1}
}

func TestAuditCleanStreamVerifies(t *testing.T) {
	a := NewAuditProbe(AuditOptions{Width: 4})
	final := driveCleanRun(a)
	if err := a.Verify(final); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
}

// streamViolations corrupts the event stream in one way per case; the full
// auditor (and the sampled auditor inside an audited region) must panic with
// the named check. Shared with the sampled-mode tests in
// audit_sample_test.go.
var streamViolations = []struct {
	check string
	drive func(a *AuditProbe)
}{
	{"fetch_cycle_order", func(a *AuditProbe) {
		a.FetchCycle(5, 1)
		a.FetchCycle(5, 1)
	}},
	{"issued_range", func(a *AuditProbe) {
		a.FetchCycle(1, 9)
	}},
	{"miss_path", func(a *AuditProbe) {
		a.MissStart(1, 0x40, true) // wrong-path miss outside any window
	}},
	{"miss_refill", func(a *AuditProbe) {
		a.MissStart(1, 0x40, false)
		a.MissStart(2, 0x40, false) // missed again before the fill
	}},
	{"fill_unmatched", func(a *AuditProbe) {
		a.FillComplete(10, 0x40, FillDemand) // no outstanding miss
	}},
	{"fill_inflight", func(a *AuditProbe) {
		a.MissStart(1, 0x40, false)
		a.FillComplete(100, 0x40, FillDemand)
		a.FillComplete(50, 0x40, FillPrefetch) // same line, first fill still in flight
	}},
	{"bus_alternation", func(a *AuditProbe) {
		a.BusAcquire(1, 0x40, FillDemand)
		a.BusAcquire(2, 0x80, FillDemand) // no release in between
	}},
	{"bus_overlap", func(a *AuditProbe) {
		a.BusAcquire(1, 0x40, FillDemand)
		a.BusRelease(6)
		a.BusAcquire(3, 0x80, FillDemand) // starts before the release
	}},
	{"bus_duration", func(a *AuditProbe) {
		a.BusAcquire(5, 0x40, FillDemand)
		a.BusRelease(5) // zero-cycle transfer
	}},
	{"stall_component", func(a *AuditProbe) {
		a.Stall(1, 3, metrics.Branch, 4) // branch penalty never arrives as a stall
	}},
	{"stall_extent", func(a *AuditProbe) {
		a.Stall(3, 3, metrics.Bus, 1) // empty run
	}},
	{"stall_extent", func(a *AuditProbe) {
		a.Stall(1, 2, metrics.Bus, 9) // more slots than the run holds
	}},
	{"window_nesting", func(a *AuditProbe) {
		a.WindowStart(1, RedirectPHTMispredict, 5)
		a.WindowStart(2, RedirectPHTMispredict, 6)
	}},
	{"window_pairing", func(a *AuditProbe) {
		a.WindowEnd(5) // no window open
	}},
	{"window_pairing", func(a *AuditProbe) {
		a.WindowStart(1, RedirectPHTMispredict, 5)
		a.WindowEnd(5) // closed without a redirect
	}},
	{"window_extent", func(a *AuditProbe) {
		a.WindowStart(1, RedirectPHTMispredict, 5)
		a.Redirect(5, RedirectPHTMispredict, 0x100)
		a.WindowEnd(4) // resumes before the nominal end
	}},
	{"redirect", func(a *AuditProbe) {
		a.Redirect(5, RedirectPHTMispredict, 0x100) // no window open
	}},
	{"prefetch_done", func(a *AuditProbe) {
		a.Prefetch(5, 0x40, 5) // completes the cycle it was issued
	}},
}

// expectViolation drives fn against a and asserts it panics with a
// cycle-stamped *AuditError carrying the named check.
func expectViolation(t *testing.T, a *AuditProbe, check string, fn func(a *AuditProbe)) {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatalf("corrupted stream accepted (wanted %s violation)", check)
		}
		ae, ok := r.(*AuditError)
		if !ok {
			panic(r)
		}
		if ae.Check != check {
			t.Errorf("violation check = %q, want %q (%v)", ae.Check, check, ae)
		}
		if !strings.Contains(ae.Error(), "cycle") {
			t.Errorf("diagnosis is not cycle-stamped: %v", ae)
		}
	}()
	fn(a)
}

// TestAuditStreamingViolations checks the full auditor rejects every
// corrupted stream with the right cycle-stamped check.
func TestAuditStreamingViolations(t *testing.T) {
	for _, tc := range streamViolations {
		tc := tc
		t.Run(tc.check, func(t *testing.T) {
			expectViolation(t, NewAuditProbe(AuditOptions{Width: 4}), tc.check, tc.drive)
		})
	}
}

// TestAuditBusOverlapAllowed checks the pipelined-memory escape hatch: the
// same overlapping transfers that trip bus_overlap pass when the option is
// set.
func TestAuditBusOverlapAllowed(t *testing.T) {
	a := NewAuditProbe(AuditOptions{Width: 4, AllowBusOverlap: true})
	a.BusAcquire(1, 0x40, FillDemand)
	a.BusRelease(6)
	a.BusAcquire(3, 0x80, FillDemand)
	a.BusRelease(8)
}

// TestAuditVerifyCatchesTamperedFinals corrupts each final counter in turn
// and checks Verify rejects it with a diagnosis naming the identity.
func TestAuditVerifyCatchesTamperedFinals(t *testing.T) {
	tamper := []struct {
		name    string
		mutate  func(f *AuditFinal)
		mention string
	}{
		{"insts", func(f *AuditFinal) { f.Insts-- }, "issued"},
		{"lost_bus", func(f *AuditFinal) { f.Lost[metrics.Bus] += 4 }, "bus"},
		{"lost_branch", func(f *AuditFinal) { f.Lost[metrics.Branch] = 7 }, "branch"},
		{"cycles", func(f *AuditFinal) { f.Cycles += 50 }, "slot conservation"},
		{"demand_fills", func(f *AuditFinal) { f.DemandFills++ }, "fill"},
	}
	for _, tc := range tamper {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := NewAuditProbe(AuditOptions{Width: 4})
			final := driveCleanRun(a)
			tc.mutate(&final)
			err := a.Verify(final)
			if err == nil {
				t.Fatal("tampered finals verified clean")
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.mention) {
				t.Errorf("diagnosis %q does not mention %q", err, tc.mention)
			}
		})
	}
}
