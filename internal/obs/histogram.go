package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Histogram bucket layout: fixed log-spaced boundaries, histBucketsPerDecade
// buckets per decade from histMin up to histMin*10^histDecades, plus one
// overflow (+Inf) bucket. The layout is chosen for host-side latencies in
// seconds: 1µs resolves a single fast simulation cell, 10^3 s bounds any
// sane builder, and the growth factor 10^(1/5) ≈ 1.585 bounds the relative
// quantile-estimation error (see Quantile).
const (
	histMin              = 1e-6
	histBucketsPerDecade = 5
	histDecades          = 9
	numHistBuckets       = histBucketsPerDecade*histDecades + 1
)

// histBounds holds the inclusive upper bound of each finite bucket:
// histBounds[i] = histMin * 10^(i/histBucketsPerDecade).
var histBounds = func() [numHistBuckets]float64 {
	var b [numHistBuckets]float64
	for i := range b {
		b[i] = histMin * math.Pow(10, float64(i)/histBucketsPerDecade)
	}
	return b
}()

// HistogramBounds returns a copy of the finite bucket boundaries (the +Inf
// overflow bucket is implicit).
func HistogramBounds() []float64 {
	out := make([]float64, numHistBuckets)
	copy(out, histBounds[:])
	return out
}

// HistogramGrowth is the per-bucket boundary growth factor; Quantile's
// estimate overshoots the true sample quantile by at most this factor for
// observations within the finite bucket range.
func HistogramGrowth() float64 {
	return math.Pow(10, 1.0/histBucketsPerDecade)
}

// Histogram counts float64 observations in fixed log-spaced buckets. It is
// safe for concurrent use: bucket counts are atomic and the running sum is
// CAS-accumulated, so Observe never takes a lock. Values at or below the
// smallest boundary land in the first bucket; values above the largest land
// in the overflow bucket.
type Histogram struct {
	// counts[i] is the number of observations in bucket i (bucket
	// numHistBuckets is the +Inf overflow bucket). Per-bucket, not
	// cumulative; exposition cumulates on render.
	counts [numHistBuckets + 1]atomic.Int64
	// sumBits is the float64 bit pattern of the observation sum.
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[histBucket(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// histBucket maps a value to its bucket index.
func histBucket(v float64) int {
	if v > histBounds[numHistBuckets-1] {
		return numHistBuckets
	}
	// NaN compares false against every boundary, so SearchFloat64s returns
	// numHistBuckets and NaN lands in the overflow bucket.
	return sort.SearchFloat64s(histBounds[:], v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper boundary of
// the bucket containing the rank-⌈q·count⌉ observation. For observations
// within the finite bucket range the estimate e satisfies
// true ≤ e < true·HistogramGrowth(), i.e. the relative error is bounded by
// the bucket growth factor. An empty histogram returns 0; a rank landing in
// the overflow bucket returns +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < numHistBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return histBounds[i]
		}
	}
	return math.Inf(1)
}

// writeText writes the histogram in the Prometheus text exposition format
// (cumulative _bucket series plus _sum and _count), assuming the caller has
// already emitted the HELP/TYPE header.
func (h *Histogram) writeText(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	var cum int64
	for i := 0; i < numHistBuckets; i++ {
		cum += h.counts[i].Load()
		fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, formatBound(histBounds[i]), cum)
	}
	cum += h.counts[numHistBuckets].Load()
	fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(bw, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(bw, "%s_count %d\n", name, cum)
	return bw.Flush()
}

// formatBound renders a bucket boundary the way Prometheus clients do:
// shortest float64 representation.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
