package obs

import (
	"sync"
	"testing"
)

// TestSpanTracerRecords covers the core contract: spans carry their name,
// worker, current section, and non-negative monotonic timing.
func TestSpanTracerRecords(t *testing.T) {
	tr := NewSpanTracer()
	tr.SetSection("table 6")
	h := tr.Start("gcc/resume", 2)
	// Burn a little work so the duration is meaningful without sleeping
	// (package obs is inside the determinism lint scope).
	x := 0
	for i := 0; i < 1000; i++ {
		x += i * i
	}
	_ = x
	span, ok := h.End()
	if !ok {
		t.Fatal("End returned ok=false for a live handle")
	}
	if span.Name != "gcc/resume" || span.Worker != 2 || span.Section != "table 6" {
		t.Errorf("span = %+v, want name gcc/resume, worker 2, section table 6", span)
	}
	if span.Start < 0 || span.Dur < 0 {
		t.Errorf("negative timing: start %v dur %v", span.Start, span.Dur)
	}

	got := tr.Spans()
	if len(got) != 1 || got[0] != span {
		t.Errorf("Spans() = %+v, want exactly the returned span", got)
	}
	if tr.Len() != 1 {
		t.Errorf("Len() = %d, want 1", tr.Len())
	}
}

// TestSpanTracerSectionStamping: the section label is sampled at End time,
// so a span straddling a SetSection gets the new label — paperbench sets
// the section before running a builder, and all of that builder's spans end
// inside it.
func TestSpanTracerSectionStamping(t *testing.T) {
	tr := NewSpanTracer()
	h := tr.Start("a", 0)
	tr.SetSection("later")
	span, _ := h.End()
	if span.Section != "later" {
		t.Errorf("section = %q, want %q", span.Section, "later")
	}
}

// TestSpanTracerNilSafe: a nil tracer must be a total no-op so call sites
// in the shard executor need no guards.
func TestSpanTracerNilSafe(t *testing.T) {
	var tr *SpanTracer
	tr.SetSection("x")
	h := tr.Start("a", 0)
	if _, ok := h.End(); ok {
		t.Error("nil tracer End returned ok=true")
	}
	if tr.Spans() != nil {
		t.Error("nil tracer Spans() != nil")
	}
	if tr.Len() != 0 {
		t.Error("nil tracer Len() != 0")
	}
}

// TestSpanTracerConcurrent drives spans from several goroutines under the
// race detector and checks none are lost.
func TestSpanTracerConcurrent(t *testing.T) {
	tr := NewSpanTracer()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h := tr.Start("cell", w)
				if _, ok := h.End(); !ok {
					t.Error("live handle reported ok=false")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != workers*per {
		t.Errorf("recorded %d spans, want %d", got, workers*per)
	}
	for _, s := range tr.Spans() {
		if s.Worker < 0 || s.Worker >= workers {
			t.Errorf("span worker %d out of range", s.Worker)
		}
	}
}

// TestSpanAllocs: the alloc counter is process-global but monotonic, so a
// span wrapping a known allocation records at least that much at Workers=1
// (no concurrent neighbours in this test).
func TestSpanAllocs(t *testing.T) {
	tr := NewSpanTracer()
	h := tr.Start("alloc", 0)
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	span, _ := h.End()
	if span.Allocs == 0 {
		t.Error("span over 64 slice allocations recorded Allocs = 0")
	}
}
