package obs

import (
	"runtime/metrics"
	"sync"
	"time"

	"specfetch/internal/hosttime"
)

// Host-side span tracing: where the rest of this package observes the
// *simulated machine* in cycles, SpanTracer observes the *simulator* in
// host time. The shard executor wraps each unit of sweep work (one
// simulation cell, or one ablation row) in a span recording its wall time,
// the worker that ran it, and the heap allocations it performed; paperbench
// aggregates the spans into per-builder latency histograms and a BENCH
// report, and WriteHostTrace renders them as a workers-×-cells Perfetto
// timeline.
//
// All clock reads go through internal/hosttime (the determinism analyzer's
// single wall-clock exemption), and nothing recorded here ever feeds back
// into simulated state: sweep output bytes are identical with tracing on or
// off, which the differential harness in internal/experiments asserts.

// HostSpan is one completed host-side measurement.
type HostSpan struct {
	// Name identifies the work unit, e.g. "gcc/resume" for a simulation
	// cell or "gcc/row" for an ablation row.
	Name string
	// Section is the label set by SetSection when the span ended, typically
	// the builder being run ("table 6").
	Section string
	// Worker is the 0-based pool worker index that ran the unit.
	Worker int
	// Start is the span's start offset from the tracer's creation.
	Start time.Duration
	// Dur is the span's host wall time.
	Dur time.Duration
	// Allocs is the number of heap objects allocated while the span was
	// open. The counter is process-global, so with several pool workers
	// running concurrently a span also counts its neighbours' allocations;
	// at Workers=1 the attribution is exact.
	Allocs uint64
}

// SpanTracer records completed host spans. A nil *SpanTracer is a valid
// no-op: Start returns an inert handle, so call sites need no guards. All
// methods are safe for concurrent use.
type SpanTracer struct {
	epoch hosttime.Instant

	mu      sync.Mutex
	section string
	spans   []HostSpan
}

// NewSpanTracer starts a tracer; span offsets are relative to this call.
func NewSpanTracer() *SpanTracer {
	return &SpanTracer{epoch: hosttime.Now()}
}

// Epoch returns the instant span offsets are measured from. The sweep
// coordinator uses it to re-anchor remote workers' span timings onto the
// same axis as local spans, so one combined trace shows the whole fleet.
// A nil tracer returns the zero Instant.
func (t *SpanTracer) Epoch() hosttime.Instant {
	if t == nil {
		return hosttime.Instant{}
	}
	return t.epoch
}

// SetSection labels spans ending from now on (until the next SetSection)
// with the given section name.
func (t *SpanTracer) SetSection(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.section = name
	t.mu.Unlock()
}

// SpanHandle is one in-flight measurement; End completes and records it.
// The zero SpanHandle (from a nil tracer) is inert.
type SpanHandle struct {
	tr          *SpanTracer
	name        string
	worker      int
	start       hosttime.Instant
	startAllocs uint64
}

// Start opens a span for one unit of host work on the given worker.
func (t *SpanTracer) Start(name string, worker int) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{
		tr:          t,
		name:        name,
		worker:      worker,
		start:       hosttime.Now(),
		startAllocs: heapAllocs(),
	}
}

// End completes the span, records it with the tracer, and returns it.
// ok is false for the inert zero handle (nothing was recorded).
func (h SpanHandle) End() (span HostSpan, ok bool) {
	if h.tr == nil {
		return HostSpan{}, false
	}
	dur := hosttime.Since(h.start)
	allocs := heapAllocs() - h.startAllocs
	h.tr.mu.Lock()
	span = HostSpan{
		Name:    h.name,
		Section: h.tr.section,
		Worker:  h.worker,
		Start:   h.start.Sub(h.tr.epoch),
		Dur:     dur,
		Allocs:  allocs,
	}
	h.tr.spans = append(h.tr.spans, span)
	h.tr.mu.Unlock()
	return span, true
}

// Spans returns a copy of the completed spans, in completion order.
func (t *SpanTracer) Spans() []HostSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]HostSpan, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of completed spans; paperbench snapshots it around
// each builder to attribute spans without copying.
func (t *SpanTracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// heapAllocs returns the process-cumulative count of heap objects
// allocated, from the runtime/metrics gauge (cheap: no stop-the-world).
func heapAllocs() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
