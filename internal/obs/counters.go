package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric, safe for concurrent
// use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; not
// enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64 metric, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a small Prometheus-style metrics registry with text
// exposition, for watching long simulation campaigns (paperbench
// --metrics-addr). Metric registration and exposition are guarded by a
// mutex; updates to the returned Counter/Gauge handles are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// registeredAs names the metric type name is already registered under, or
// "" when the name is free. Callers hold r.mu.
func (r *Registry) registeredAs(name string) string {
	switch {
	case r.counters[name] != nil:
		return "counter"
	case r.gauges[name] != nil:
		return "gauge"
	case r.histograms[name] != nil:
		return "histogram"
	}
	return ""
}

// Counter returns the counter registered under name, creating it with the
// given help text on first use. Registering a name as both a counter and a
// gauge panics: that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if typ := r.registeredAs(name); typ != "" {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, typ))
	}
	c := &Counter{}
	r.counters[name] = c
	r.help[name] = help
	return c
}

// Gauge returns the gauge registered under name, creating it with the
// given help text on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if typ := r.registeredAs(name); typ != "" {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, typ))
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.help[name] = help
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given help text on first use. Buckets are the package-fixed log-spaced
// layout (HistogramBounds).
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if typ := r.registeredAs(name); typ != "" {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, typ))
	}
	h := &Histogram{}
	r.histograms[name] = h
	r.help[name] = help
	return h
}

// WriteText writes the registry in the Prometheus text exposition format,
// metrics sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	type row struct {
		name, typ, help, body string
	}
	rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		rows = append(rows, row{name, "counter",
			r.help[name], name + " " + strconv.FormatInt(c.Value(), 10) + "\n"})
	}
	for name, g := range r.gauges {
		rows = append(rows, row{name, "gauge",
			r.help[name], name + " " + strconv.FormatFloat(g.Value(), 'g', -1, 64) + "\n"})
	}
	for name, h := range r.histograms {
		var sb strings.Builder
		if err := h.writeText(&sb, name); err != nil {
			r.mu.Unlock()
			return err
		}
		rows = append(rows, row{name, "histogram", r.help[name], sb.String()})
	}
	r.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	bw := bufio.NewWriter(w)
	for _, m := range rows {
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.typ)
		if _, err := bw.WriteString(m.body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the text exposition (for a
// /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
