// Package obs is the simulation observability layer: a typed Probe
// interface the fetch engine invokes at interesting points of a run, plus
// standard collectors — a bounded ring-buffer event recorder with JSONL
// export, an interval time-series sampler (CSV/JSON), a Prometheus-style
// counters registry with text exposition, and a Chrome trace-event
// (Perfetto / about:tracing) timeline exporter.
//
// The engine holds a nil Probe by default and guards every call site with a
// single nil check, so the disabled path costs one predictable branch per
// hook and no allocation. Collectors compose with Multi, so an event
// recorder and an interval sampler can observe the same run.
package obs

import (
	"fmt"

	"specfetch/internal/metrics"
)

// FillKind labels what initiated a line transfer over the memory bus.
type FillKind uint8

const (
	// FillDemand is a right-path demand miss fill.
	FillDemand FillKind = iota
	// FillWrongPath is a wrong-path miss the policy chose to service.
	FillWrongPath
	// FillPrefetch is a next-line / target / stream prefetch.
	FillPrefetch

	numFillKinds
)

var fillKindNames = [numFillKinds]string{
	FillDemand:    "demand",
	FillWrongPath: "wrong_path",
	FillPrefetch:  "prefetch",
}

// String returns the snake_case name of the fill kind.
func (k FillKind) String() string {
	if k < numFillKinds {
		return fillKindNames[k]
	}
	return fmt.Sprintf("fill(%d)", int(k))
}

// RedirectKind labels a front-end redirect — the paper's Table 3 events.
type RedirectKind uint8

const (
	// RedirectPHTMispredict is a conditional branch whose predicted
	// direction was wrong (resolve-time redirect).
	RedirectPHTMispredict RedirectKind = iota
	// RedirectBTBMisfetch is a branch whose target had to be computed at
	// decode (decode-time redirect).
	RedirectBTBMisfetch
	// RedirectBTBMispredict is an indirect transfer whose BTB target was
	// stale (resolve-time redirect).
	RedirectBTBMispredict

	numRedirectKinds
)

var redirectKindNames = [numRedirectKinds]string{
	RedirectPHTMispredict: "pht_mispredict",
	RedirectBTBMisfetch:   "btb_misfetch",
	RedirectBTBMispredict: "btb_mispredict",
}

// String returns the snake_case name of the redirect kind.
func (k RedirectKind) String() string {
	if k < numRedirectKinds {
		return redirectKindNames[k]
	}
	return fmt.Sprintf("redirect(%d)", int(k))
}

// Probe receives typed instrumentation callbacks from the simulation
// engine. Implementations must not mutate engine state. Cycle arguments may
// lie in the future relative to the callback's emission point: the engine
// reports scheduled completions (fills, bus releases, branch resolves)
// eagerly, at the cycle the event is scheduled rather than the cycle it
// takes effect. Embed NopProbe to implement only a subset.
type Probe interface {
	// FetchCycle fires once per correct-path fetch group with the cycle it
	// started in and how many instructions issued in it (0..width).
	FetchCycle(cy metrics.Cycles, issued int)
	// MissStart fires when a demand lookup misses the I-cache, on either
	// the correct path (wrongPath=false) or a speculative one.
	MissStart(cy metrics.Cycles, line uint64, wrongPath bool)
	// FillComplete fires when a line fill is scheduled, with the cycle the
	// line becomes available.
	FillComplete(cy metrics.Cycles, line uint64, kind FillKind)
	// BusAcquire fires when a transfer occupies the single memory channel,
	// with the cycle the transfer starts.
	BusAcquire(cy metrics.Cycles, line uint64, kind FillKind)
	// BusRelease fires with the completion cycle of the transfer reported
	// by the immediately preceding BusAcquire.
	BusRelease(cy metrics.Cycles)
	// BranchResolve fires when a conditional or indirect correct-path
	// branch is scheduled to resolve.
	BranchResolve(cy metrics.Cycles, pc uint64, taken, mispredicted bool)
	// Redirect fires when the front end redirects back to the correct path
	// after a misfetch/mispredict window.
	Redirect(cy metrics.Cycles, kind RedirectKind, resumePC uint64)
	// Prefetch fires when a prefetch transfer is issued, with its
	// completion cycle.
	Prefetch(cy metrics.Cycles, line uint64, doneAt metrics.Cycles)
	// WindowStart fires when a misfetch/mispredict window opens at the
	// branch's fetch cycle; until is the nominal redirect cycle.
	WindowStart(cy metrics.Cycles, kind RedirectKind, until metrics.Cycles)
	// WindowEnd fires with the cycle correct-path fetch actually resumes
	// (past `until` when a blocking wrong-path fill is outstanding).
	WindowEnd(cy metrics.Cycles)
	// Stall fires for each contiguous run of dead correct-path cycles
	// [cy, until) charged to a single penalty component, with the issue
	// slots lost in the run.
	Stall(cy, until metrics.Cycles, comp metrics.Component, slots metrics.Slots)
}

// NopProbe implements every Probe callback as a no-op; embed it to override
// only the callbacks a collector cares about.
type NopProbe struct{}

func (NopProbe) FetchCycle(metrics.Cycles, int)                                         {}
func (NopProbe) MissStart(metrics.Cycles, uint64, bool)                                 {}
func (NopProbe) FillComplete(metrics.Cycles, uint64, FillKind)                          {}
func (NopProbe) BusAcquire(metrics.Cycles, uint64, FillKind)                            {}
func (NopProbe) BusRelease(metrics.Cycles)                                              {}
func (NopProbe) BranchResolve(metrics.Cycles, uint64, bool, bool)                       {}
func (NopProbe) Redirect(metrics.Cycles, RedirectKind, uint64)                          {}
func (NopProbe) Prefetch(metrics.Cycles, uint64, metrics.Cycles)                        {}
func (NopProbe) WindowStart(metrics.Cycles, RedirectKind, metrics.Cycles)               {}
func (NopProbe) WindowEnd(metrics.Cycles)                                               {}
func (NopProbe) Stall(metrics.Cycles, metrics.Cycles, metrics.Component, metrics.Slots) {}

// Snapshot is a point-in-time copy of the engine's cumulative counters,
// delivered to Samplers. All fields are cumulative since run start;
// interval collectors difference consecutive snapshots.
type Snapshot struct {
	// Cycle is the simulation cycle at the sample point.
	Cycle metrics.Cycles
	// Insts is the number of correct-path instructions issued so far.
	Insts int64
	// Lost is the per-component lost-slot breakdown so far.
	Lost metrics.Breakdown
	// RightPathAccesses / RightPathMisses count structural correct-path
	// line references and their misses so far.
	RightPathAccesses int64
	RightPathMisses   int64
	// BusTransfers counts line movements over the memory bus so far.
	BusTransfers uint64
	// BusBusy is the cumulative number of cycles the memory bus has spent
	// transferring lines. With pipelined memory concurrent transfers each
	// contribute their full latency, so the total can exceed Cycle.
	BusBusy metrics.Cycles
}

// Sampler is an optional Probe extension. When the engine's configuration
// sets a positive SampleInterval and the attached probe implements Sampler,
// the engine calls Sample every SampleInterval correct-path instructions
// and once more at run end with the final counters.
type Sampler interface {
	Sample(s Snapshot)
}

// SampleOnly is an optional Probe marker: implementations promise they
// observe the run exclusively through Sampler snapshots and ignore every
// per-event Probe callback. The engine exploits the promise by not
// delivering events at all and, crucially, by keeping the skip-ahead bulk
// issue path enabled — a sample-only probe costs one boundary check per
// issued instruction instead of disqualifying the fast core. Composites
// (Multi) never carry the marker: any part might be a real event consumer.
type SampleOnly interface {
	SampleOnlyProbe()
}

// IsSampleOnly reports whether p carries the SampleOnly marker.
func IsSampleOnly(p Probe) bool {
	_, ok := p.(SampleOnly)
	return ok
}

// multi fans every callback out to several probes in order.
type multi struct {
	parts    []Probe
	samplers []Sampler
}

// Multi composes several probes into one: every callback is forwarded to
// each part in order, and Sample is forwarded to the parts that implement
// Sampler. Nil parts are skipped; Multi() returns nil and Multi(p) returns
// p unwrapped.
func Multi(ps ...Probe) Probe {
	m := &multi{}
	for _, p := range ps {
		if p == nil {
			continue
		}
		m.parts = append(m.parts, p)
		if s, ok := p.(Sampler); ok {
			m.samplers = append(m.samplers, s)
		}
	}
	switch len(m.parts) {
	case 0:
		return nil
	case 1:
		return m.parts[0]
	}
	return m
}

func (m *multi) FetchCycle(cy metrics.Cycles, issued int) {
	for _, p := range m.parts {
		p.FetchCycle(cy, issued)
	}
}

func (m *multi) MissStart(cy metrics.Cycles, line uint64, wrongPath bool) {
	for _, p := range m.parts {
		p.MissStart(cy, line, wrongPath)
	}
}

func (m *multi) FillComplete(cy metrics.Cycles, line uint64, kind FillKind) {
	for _, p := range m.parts {
		p.FillComplete(cy, line, kind)
	}
}

func (m *multi) BusAcquire(cy metrics.Cycles, line uint64, kind FillKind) {
	for _, p := range m.parts {
		p.BusAcquire(cy, line, kind)
	}
}

func (m *multi) BusRelease(cy metrics.Cycles) {
	for _, p := range m.parts {
		p.BusRelease(cy)
	}
}

func (m *multi) BranchResolve(cy metrics.Cycles, pc uint64, taken, mispredicted bool) {
	for _, p := range m.parts {
		p.BranchResolve(cy, pc, taken, mispredicted)
	}
}

func (m *multi) Redirect(cy metrics.Cycles, kind RedirectKind, resumePC uint64) {
	for _, p := range m.parts {
		p.Redirect(cy, kind, resumePC)
	}
}

func (m *multi) Prefetch(cy metrics.Cycles, line uint64, doneAt metrics.Cycles) {
	for _, p := range m.parts {
		p.Prefetch(cy, line, doneAt)
	}
}

func (m *multi) WindowStart(cy metrics.Cycles, kind RedirectKind, until metrics.Cycles) {
	for _, p := range m.parts {
		p.WindowStart(cy, kind, until)
	}
}

func (m *multi) WindowEnd(cy metrics.Cycles) {
	for _, p := range m.parts {
		p.WindowEnd(cy)
	}
}

func (m *multi) Stall(cy, until metrics.Cycles, comp metrics.Component, slots metrics.Slots) {
	for _, p := range m.parts {
		p.Stall(cy, until, comp, slots)
	}
}

func (m *multi) Sample(s Snapshot) {
	for _, sm := range m.samplers {
		sm.Sample(s)
	}
}
