package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"specfetch/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvents exercises every exporter branch: counter series, stall and
// window spans, instants, paired wrong-path miss/fill, an unpaired fill
// (truncated ring), paired and truncated bus transfers, prefetch spans, and
// both branch-resolve flavours.
func goldenEvents() []Event {
	r := NewEventRecorder(64)
	r.FetchCycle(0, 4)
	r.MissStart(0, 7, false)
	r.BusAcquire(0, 7, FillDemand)
	r.BusRelease(5)
	r.FillComplete(5, 7, FillDemand)
	r.Stall(0, 5, metrics.RTICache, 20)
	r.FetchCycle(5, 4)
	r.BranchResolve(6, 0x400, true, false)
	r.BranchResolve(7, 0x420, true, true)
	r.WindowStart(7, RedirectPHTMispredict, 11)
	r.MissStart(8, 9, true)
	r.BusAcquire(8, 9, FillWrongPath)
	r.BusRelease(13)
	r.FillComplete(13, 9, FillWrongPath)
	r.FillComplete(20, 30, FillWrongPath) // miss_start lost to the ring
	r.Stall(11, 13, metrics.WrongICache, 8)
	r.Redirect(11, RedirectPHTMispredict, 0x440)
	r.WindowEnd(13)
	r.Prefetch(14, 10, 19)
	r.BusAcquire(14, 10, FillPrefetch)
	r.BusRelease(19)
	r.BusAcquire(21, 11, FillDemand) // release never seen: no span
	return r.Events()
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run ChromeTraceGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output diverged from %s:\n got: %s\nwant: %s\n(rerun with -update if intended)",
			path, buf.String(), want)
	}
}

// goldenSpans is a fixed host-span set: two workers, two sections, one
// span with allocations, one without a section label.
func goldenSpans() []HostSpan {
	return []HostSpan{
		{Name: "gcc/resume", Section: "table 6", Worker: 0,
			Start: 1 * time.Millisecond, Dur: 40 * time.Millisecond, Allocs: 1200},
		{Name: "groff/pessimistic", Section: "table 6", Worker: 1,
			Start: 2 * time.Millisecond, Dur: 35 * time.Millisecond, Allocs: 900},
		{Name: "gcc/row", Worker: 0,
			Start: 45 * time.Millisecond, Dur: 10 * time.Millisecond},
	}
}

func TestHostTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHostTrace(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "host_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run HostTraceGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("host trace diverged from %s:\n got: %s\nwant: %s\n(rerun with -update if intended)",
			path, buf.String(), want)
	}
}

// TestCombinedTraceWellFormed renders a machine stream and host spans into
// one file and checks both processes are present with distinct pids and
// complete metadata — the "sweep next to the machine timeline" contract.
func TestCombinedTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCombinedTrace(&buf, goldenEvents(), goldenSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	var hostSpans, hostThreads int
	var procNames []string
	for _, ev := range doc.TraceEvents {
		pid, _ := ev["pid"].(float64)
		pids[pid] = true
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "M" && name == "process_name" {
			args, _ := ev["args"].(map[string]any)
			pn, _ := args["name"].(string)
			procNames = append(procNames, pn)
		}
		if pid == 2 {
			switch {
			case ph == "X":
				hostSpans++
			case ph == "M" && name == "thread_name":
				hostThreads++
			}
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("pids seen = %v, want both 1 (machine) and 2 (host)", pids)
	}
	if len(procNames) != 2 || procNames[0] != "specfetch" || procNames[1] != "host" {
		t.Errorf("process names = %v, want [specfetch host]", procNames)
	}
	if hostSpans != len(goldenSpans()) {
		t.Errorf("host spans = %d, want %d", hostSpans, len(goldenSpans()))
	}
	if hostThreads != 2 {
		t.Errorf("host worker tracks = %d, want 2", hostThreads)
	}
}

// TestFleetTraceWellFormed renders machine, host pool, and two remote
// worker processes into one file and checks each fleet process gets its own
// pid track with its spans — the "one Perfetto file shows the whole fleet"
// contract.
func TestFleetTraceWellFormed(t *testing.T) {
	fleet := []ProcessSpans{
		{Name: "worker http://a (pid 101)", Spans: []HostSpan{
			{Name: "gcc/resume", Worker: 0, Start: 3 * time.Millisecond, Dur: 20 * time.Millisecond},
			{Name: "groff/resume", Worker: 0, Start: 24 * time.Millisecond, Dur: 18 * time.Millisecond},
		}},
		{Name: "worker http://b (pid 102)", Spans: []HostSpan{
			{Name: "gcc/pessimistic", Worker: 0, Start: 5 * time.Millisecond, Dur: 22 * time.Millisecond},
		}},
	}
	var buf bytes.Buffer
	if err := WriteCombinedTrace(&buf, goldenEvents(), goldenSpans(), fleet...); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	procByPid := map[int]string{}
	spansByPid := map[int]int{}
	for _, ev := range doc.TraceEvents {
		pid := int(ev["pid"].(float64))
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "M" && name == "process_name" {
			args, _ := ev["args"].(map[string]any)
			procByPid[pid], _ = args["name"].(string)
		}
		if ph == "X" && pid >= 3 {
			spansByPid[pid]++
		}
	}
	if procByPid[3] != fleet[0].Name || procByPid[4] != fleet[1].Name {
		t.Errorf("fleet process names = %q/%q, want %q/%q",
			procByPid[3], procByPid[4], fleet[0].Name, fleet[1].Name)
	}
	if spansByPid[3] != 2 || spansByPid[4] != 1 {
		t.Errorf("fleet span counts = %v, want pid3:2 pid4:1", spansByPid)
	}
}

// goldenWindows is a fixed two-window series for the counter tracks.
func goldenWindows() []WindowRecord {
	w0 := WindowRecord{Index: 0, StartInsts: 0, EndInsts: 1000, StartCycle: 0, EndCycle: 400,
		Accesses: 80, Misses: 4, BusTransfers: 4, BusBusy: 30}
	w0.Lost[metrics.RTICache] = 40
	w1 := WindowRecord{Index: 1, StartInsts: 1000, EndInsts: 2000, StartCycle: 400, EndCycle: 700,
		Accesses: 90, Misses: 6, BusTransfers: 6, BusBusy: 45}
	w1.Lost[metrics.RTICache] = 50
	w1.Lost[metrics.Branch] = 10
	return []WindowRecord{w0, w1}
}

// TestCounterTracksWellFormed renders counter tracks next to the machine
// stream and checks the track metadata, one sample per counter series per
// window at the window's closing cycle, and the component split on the
// stall counter. It also pins two neutrality properties: WriteCombinedTrace
// is byte-identical to a counter-free CombinedTrace (old call sites cannot
// drift), and a counters-only trace still names the machine process.
func TestCounterTracksWellFormed(t *testing.T) {
	var buf bytes.Buffer
	tr := CombinedTrace{Events: goldenEvents(), Counters: goldenWindows(), Spans: goldenSpans()}
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	counterName := ""
	samples := map[string][]float64{} // series name -> sample timestamps
	var stallArgs map[string]any
	for _, ev := range doc.TraceEvents {
		pid := int(ev["pid"].(float64))
		tid, _ := ev["tid"].(float64)
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if pid != 1 || int(tid) != 6 {
			continue
		}
		if ph == "M" && name == "thread_name" {
			args, _ := ev["args"].(map[string]any)
			counterName, _ = args["name"].(string)
			continue
		}
		if ph != "C" {
			t.Errorf("non-counter event on the counter track: %v", ev)
			continue
		}
		ts, _ := ev["ts"].(float64)
		samples[name] = append(samples[name], ts)
		if name == "stall ispi" && stallArgs == nil {
			stallArgs, _ = ev["args"].(map[string]any)
		}
	}
	if counterName != "interval counters" {
		t.Errorf("counter track named %q, want %q", counterName, "interval counters")
	}
	wins := goldenWindows()
	for _, series := range []string{"ispi", "miss %", "bus occupancy %", "stall ispi"} {
		ts := samples[series]
		if len(ts) != len(wins) {
			t.Errorf("series %q has %d samples, want %d", series, len(ts), len(wins))
			continue
		}
		for i, w := range wins {
			if ts[i] != float64(w.EndCycle) {
				t.Errorf("series %q sample %d at ts %v, want window close %d", series, i, ts[i], w.EndCycle)
			}
		}
	}
	if len(stallArgs) != int(metrics.NumComponents) {
		t.Errorf("stall counter carries %d series, want one per component (%d): %v",
			len(stallArgs), metrics.NumComponents, stallArgs)
	}
	for _, c := range metrics.Components() {
		if _, ok := stallArgs[c.String()]; !ok {
			t.Errorf("stall counter missing component %q", c)
		}
	}

	var viaFunc, viaStruct bytes.Buffer
	if err := WriteCombinedTrace(&viaFunc, goldenEvents(), goldenSpans()); err != nil {
		t.Fatal(err)
	}
	if err := (CombinedTrace{Events: goldenEvents(), Spans: goldenSpans()}).Write(&viaStruct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaFunc.Bytes(), viaStruct.Bytes()) {
		t.Error("counter-free CombinedTrace diverges from WriteCombinedTrace bytes")
	}

	buf.Reset()
	if err := (CombinedTrace{Counters: goldenWindows()}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"specfetch"`) {
		t.Error("counters-only trace does not name the machine process")
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("counters-only output is not valid JSON: %v", err)
	}
}

// TestChromeTraceWellFormed checks structural properties a viewer depends
// on, independent of the exact golden bytes.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var haveThreadNames, haveWPFill, haveXfer int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		switch {
		case ph == "M" && name == "thread_name":
			haveThreadNames++
		case ph == "X" && name == "wp fill":
			haveWPFill++
		case ph == "X" && strings.HasPrefix(name, "xfer:"):
			haveXfer++
		}
		if ph == "X" {
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				t.Errorf("negative span duration in %v", ev)
			}
		}
		if _, ok := ev["pid"]; !ok {
			t.Errorf("event without pid: %v", ev)
		}
	}
	if haveThreadNames != 5 {
		t.Errorf("thread_name metadata count = %d, want 5", haveThreadNames)
	}
	if haveWPFill != 2 {
		t.Errorf("wp fill spans = %d, want 2 (one paired, one truncated)", haveWPFill)
	}
	if haveXfer != 3 {
		t.Errorf("bus transfer spans = %d, want 3 (trailing unpaired acquire skipped)", haveXfer)
	}
}
