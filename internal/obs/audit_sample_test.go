package obs

import (
	"reflect"
	"testing"

	"specfetch/internal/metrics"
)

// closeWindow drives one complete, legal speculation window starting at cy
// (nominal end cy+3), advancing the auditor's sampling epoch.
func closeWindow(a *AuditProbe, cy metrics.Cycles) {
	a.WindowStart(cy, RedirectPHTMispredict, cy+3)
	a.Redirect(cy+3, RedirectPHTMispredict, 0x100)
	a.WindowEnd(cy + 3)
}

// TestAuditSampledRegionStillPanics: with SampleEvery=2 the region up to the
// first window closure and every second region after it are audited; a
// violation inside an audited region panics exactly like the full audit.
func TestAuditSampledRegionStillPanics(t *testing.T) {
	// Region 0 is always audited.
	t.Run("initial_region", func(t *testing.T) {
		a := NewAuditProbe(AuditOptions{Width: 4, SampleEvery: 2})
		expectViolation(t, a, "fetch_cycle_order", func(a *AuditProbe) {
			a.FetchCycle(5, 1)
			a.FetchCycle(5, 1)
		})
	})
	// After two window closures the auditor is back in an audited region.
	t.Run("resumed_region", func(t *testing.T) {
		a := NewAuditProbe(AuditOptions{Width: 4, SampleEvery: 2})
		a.FetchCycle(0, 4)
		closeWindow(a, 1) // epoch 1: skipped
		closeWindow(a, 6) // epoch 2: audited again
		expectViolation(t, a, "issued_range", func(a *AuditProbe) {
			a.FetchCycle(10, 9)
		})
	})
}

// TestAuditSkippedRegionNotCaught documents the sampling contract: the
// stream-structure checks do not fire inside a skipped region, and the same
// corruptions panic again once an audited region resumes.
func TestAuditSkippedRegionNotCaught(t *testing.T) {
	a := NewAuditProbe(AuditOptions{Width: 4, SampleEvery: 2})
	a.FetchCycle(0, 4)
	closeWindow(a, 1) // epoch 1: now skipping

	// Each of these trips a violation in an audited region; here they pass
	// silently (any panic fails the test).
	a.FetchCycle(2, 4)
	a.FetchCycle(2, 4)                   // duplicate cycle: fetch_cycle_order gated
	a.FetchCycle(3, 9)                   // over-wide group: issued_range gated
	a.MissStart(4, 0x200, true)          // wrong-path miss outside a window: miss_path gated
	a.BusRelease(5)                      // release without acquire: bus_alternation gated
	a.FillComplete(6, 0x240, FillDemand) // fill without a miss: fill_unmatched gated

	// Resuming an audited region re-arms the checks.
	closeWindow(a, 8) // epoch 2: audited
	expectViolation(t, a, "fetch_cycle_order", func(a *AuditProbe) {
		a.FetchCycle(3, 1) // behind the skipped-region group at cycle 3
	})
}

// driveSampledRun feeds a three-region run (audited, skipped, audited) with
// misses, transfers, stalls, and two speculation windows, and returns finals
// that every Verify identity must match exactly despite the skipped middle.
func driveSampledRun(a *AuditProbe) AuditFinal {
	// Region 0 (audited): one demand miss and a window with a wrong-path
	// miss squashed at closure.
	a.FetchCycle(0, 4)
	a.MissStart(1, 0x40, false)
	a.BusAcquire(1, 0x40, FillDemand)
	a.BusRelease(6)
	a.FillComplete(6, 0x40, FillDemand)
	a.Stall(1, 6, metrics.Bus, 20)
	a.FetchCycle(6, 4)
	a.WindowStart(7, RedirectPHTMispredict, 10)
	a.MissStart(8, 0x80, true)
	a.Redirect(10, RedirectPHTMispredict, 0x100)
	a.WindowEnd(10)    // epoch 1: skipped from here
	a.FetchCycle(7, 2) // the branch group's own fetch: 4*(10-7)-2 = 10 branch slots

	// Skipped region: a demand miss whose fill must still be counted.
	a.FetchCycle(10, 4)
	a.MissStart(11, 0xc0, false) // gated: leaves no open-miss entry
	a.BusAcquire(11, 0xc0, FillDemand)
	a.BusRelease(16)
	a.FillComplete(16, 0xc0, FillDemand)
	a.Stall(11, 16, metrics.Bus, 20)
	a.FetchCycle(16, 4)
	a.WindowStart(17, RedirectPHTMispredict, 20)
	a.Redirect(20, RedirectPHTMispredict, 0x100)
	a.WindowEnd(20)     // epoch 2: audited again
	a.FetchCycle(17, 2) // 4*(20-17)-2 = 10 more branch slots

	// Audited tail region.
	a.FetchCycle(20, 4)
	a.MissStart(21, 0x100, false)
	a.BusAcquire(21, 0x100, FillDemand)
	a.BusRelease(26)
	a.FillComplete(26, 0x100, FillDemand)
	a.Stall(21, 26, metrics.Bus, 20)
	a.FetchCycle(26, 4)

	var lost metrics.Breakdown
	lost[metrics.Bus] = 60
	lost[metrics.Branch] = 20
	return AuditFinal{Insts: 28, Cycles: 27, Lost: lost, DemandFills: 3}
}

// TestAuditSampledFinalsExact: the accumulators stay on through skipped
// regions, so Verify's identities hold exactly under sampling.
func TestAuditSampledFinalsExact(t *testing.T) {
	a := NewAuditProbe(AuditOptions{Width: 4, SampleEvery: 2})
	final := driveSampledRun(a)
	if err := a.Verify(final); err != nil {
		t.Fatalf("sampled run rejected: %v", err)
	}
	// And the identities are still real checks: a tampered final fails.
	bad := final
	bad.Insts--
	if err := a.Verify(bad); err == nil {
		t.Fatal("tampered finals verified clean under sampling")
	}
}

// TestAuditSampleOneBitIdentical: SampleEvery values 0 and 1 both mean the
// full audit — the same violations fire, and the auditor's entire internal
// state after a clean stream is identical.
func TestAuditSampleOneBitIdentical(t *testing.T) {
	for _, tc := range streamViolations {
		tc := tc
		t.Run(tc.check, func(t *testing.T) {
			expectViolation(t, NewAuditProbe(AuditOptions{Width: 4, SampleEvery: 1}), tc.check, tc.drive)
		})
	}

	full := NewAuditProbe(AuditOptions{Width: 4})
	one := NewAuditProbe(AuditOptions{Width: 4, SampleEvery: 1})
	finalFull := driveSampledRun(full)
	finalOne := driveSampledRun(one)
	if finalFull != finalOne {
		t.Fatalf("finals diverge: full %+v, sample=1 %+v", finalFull, finalOne)
	}
	if err := one.Verify(finalOne); err != nil {
		t.Fatalf("sample=1 rejected a clean stream: %v", err)
	}
	one.opt = full.opt // the options differ by construction; the state must not
	if !reflect.DeepEqual(full, one) {
		t.Errorf("sample=1 internal state diverges from the full audit:\nfull: %+v\none:  %+v", full, one)
	}
}

// TestAuditSampleEveryValidation rejects a negative rate at construction.
func TestAuditSampleEveryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative SampleEvery accepted")
		}
	}()
	NewAuditProbe(AuditOptions{Width: 4, SampleEvery: -1})
}
