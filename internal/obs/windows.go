package obs

import (
	"specfetch/internal/metrics"
)

// WindowRecord is one fixed-instruction-count window of a run, the unit the
// interval-analytics layer aligns across policies. It is a wire/export type:
// every quantity is a raw int64 (unit conversions happen once, at Records),
// so the JSON encoding is stable and language-neutral. Start values are the
// cumulative counters at the window's opening edge, so consecutive records
// tile the run: record i+1's StartInsts equals record i's EndInsts.
type WindowRecord struct {
	// Index is the window's position in the series, from 0.
	Index int `json:"index"`
	// StartInsts/EndInsts bound the window in cumulative correct-path
	// instructions; series from different policies over the same trace
	// align on these.
	StartInsts int64 `json:"start_insts"`
	EndInsts   int64 `json:"end_insts"`
	// StartCycle/EndCycle bound the window on the simulated clock.
	StartCycle int64 `json:"start_cycle"`
	EndCycle   int64 `json:"end_cycle"`
	// Lost is the window's lost issue slots per penalty component, in the
	// paper's stacking order (metrics.Components()).
	Lost [metrics.NumComponents]int64 `json:"lost"`
	// Accesses/Misses count the window's structural right-path line
	// references and their misses.
	Accesses int64 `json:"accesses"`
	Misses   int64 `json:"misses"`
	// BusTransfers counts line movements over the memory bus in the window;
	// BusBusy is the cycles the bus spent transferring.
	BusTransfers int64 `json:"bus_transfers"`
	BusBusy      int64 `json:"bus_busy"`
}

// Insts returns the number of instructions issued in the window.
func (r WindowRecord) Insts() int64 { return r.EndInsts - r.StartInsts }

// Cycles returns the number of cycles the window spans.
func (r WindowRecord) Cycles() int64 { return r.EndCycle - r.StartCycle }

// TotalLost returns the window's lost slots summed over components.
func (r WindowRecord) TotalLost() int64 {
	var t int64
	for _, l := range r.Lost {
		t += l
	}
	return t
}

// ISPI returns the window's issue slots lost per instruction.
func (r WindowRecord) ISPI() float64 {
	if n := r.Insts(); n > 0 {
		return float64(r.TotalLost()) / float64(n)
	}
	return 0
}

// CompISPI returns the window's ISPI for one penalty component.
func (r WindowRecord) CompISPI(c metrics.Component) float64 {
	if n := r.Insts(); n > 0 {
		return float64(r.Lost[c]) / float64(n)
	}
	return 0
}

// MissPct returns right-path misses per structural reference in the window,
// as a percentage.
func (r WindowRecord) MissPct() float64 {
	if r.Accesses > 0 {
		return 100 * float64(r.Misses) / float64(r.Accesses)
	}
	return 0
}

// BusOccupancyPct returns the fraction of window cycles the bus was
// transferring, as a percentage (can exceed 100 with pipelined memory).
func (r WindowRecord) BusOccupancyPct() float64 {
	if c := r.Cycles(); c > 0 {
		return 100 * float64(r.BusBusy) / float64(c)
	}
	return 0
}

// WindowSeries captures one WindowRecord per engine sample interval. Like
// IntervalSampler it is a sample-only probe: attach it via Config.Probe with
// a positive Config.SampleInterval and the engine's skip-ahead bulk path
// stays enabled, emitting interpolated snapshots at window boundaries that
// fall inside a bulk delta. The accumulators stay in the typed Cycles/Slots
// domain (Snapshot fields); the raw int64 crossing happens once, in
// Records.
type WindowSeries struct {
	NopProbe

	windows []windowAcc

	// base holds the counters at the open edge of the window under
	// construction; prevBase the open edge of the last closed window, so a
	// run-end sample that adds no instructions (trailing stall cycles, e.g.
	// a budget stop inside a bulk region) merges into the last window by
	// rebuilding it from prevBase.
	base     Snapshot
	prevBase Snapshot
}

// windowAcc is one closed window in the typed domain.
type windowAcc struct {
	startInsts int64
	endInsts   int64
	startCy    metrics.Cycles
	endCy      metrics.Cycles
	lost       metrics.Breakdown
	accesses   int64
	misses     int64
	transfers  uint64
	busBusy    metrics.Cycles
}

// NewWindowSeries builds an empty window store.
func NewWindowSeries() *WindowSeries { return &WindowSeries{} }

// SampleOnlyProbe marks the series as observing via Sample alone.
func (s *WindowSeries) SampleOnlyProbe() {}

// Sample closes one window at snap, or — for a snapshot that adds no
// instructions but does advance other counters — re-closes the last window
// on the new edge (see the base/prevBase comment).
func (s *WindowSeries) Sample(snap Snapshot) {
	if snap.Insts > s.base.Insts {
		s.windows = append(s.windows, window(s.base, snap))
		s.prevBase = s.base
		s.base = snap
		return
	}
	if len(s.windows) > 0 && snap != s.base {
		s.windows[len(s.windows)-1] = window(s.prevBase, snap)
		s.base = snap
	}
}

// window differences two cumulative snapshots into one closed window.
func window(from, snap Snapshot) windowAcc {
	w := windowAcc{
		startInsts: from.Insts,
		endInsts:   snap.Insts,
		startCy:    from.Cycle,
		endCy:      snap.Cycle,
		accesses:   snap.RightPathAccesses - from.RightPathAccesses,
		misses:     snap.RightPathMisses - from.RightPathMisses,
		transfers:  snap.BusTransfers - from.BusTransfers,
		busBusy:    snap.BusBusy - from.BusBusy,
	}
	for i := range w.lost {
		w.lost[i] = snap.Lost[i] - from.Lost[i]
	}
	return w
}

// Len returns the number of closed windows.
func (s *WindowSeries) Len() int { return len(s.windows) }

// Records converts the series to its wire form — the one place window
// quantities leave the typed domain.
func (s *WindowSeries) Records() []WindowRecord {
	if len(s.windows) == 0 {
		return nil
	}
	out := make([]WindowRecord, len(s.windows))
	for i, w := range s.windows {
		r := WindowRecord{
			Index:        i,
			StartInsts:   w.startInsts,
			EndInsts:     w.endInsts,
			StartCycle:   w.startCy.Int64(),
			EndCycle:     w.endCy.Int64(),
			Accesses:     w.accesses,
			Misses:       w.misses,
			BusTransfers: int64(w.transfers),
			BusBusy:      w.busBusy.Int64(),
		}
		for c, l := range w.lost {
			r.Lost[c] = l.Int64()
		}
		out[i] = r
	}
	return out
}
