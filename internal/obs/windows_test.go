package obs

import (
	"encoding/json"
	"testing"

	"specfetch/internal/metrics"
)

func snapAt(insts int64, cy metrics.Cycles, lost metrics.Breakdown,
	acc, miss int64, xfer uint64, busy metrics.Cycles) Snapshot {
	return Snapshot{
		Cycle: cy, Insts: insts, Lost: lost,
		RightPathAccesses: acc, RightPathMisses: miss,
		BusTransfers: xfer, BusBusy: busy,
	}
}

func TestWindowSeriesRecords(t *testing.T) {
	s := NewWindowSeries()
	var l1, l2 metrics.Breakdown
	l1[metrics.RTICache] = 40
	l2[metrics.RTICache] = 90
	l2[metrics.Branch] = 10
	s.Sample(snapAt(1000, 300, l1, 80, 4, 4, 30))
	s.Sample(snapAt(2000, 700, l2, 170, 10, 10, 90))

	recs := s.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r0, r1 := recs[0], recs[1]
	if r0.Index != 0 || r1.Index != 1 {
		t.Errorf("indices %d,%d want 0,1", r0.Index, r1.Index)
	}
	// Consecutive records tile the run.
	if r0.EndInsts != r1.StartInsts || r0.EndCycle != r1.StartCycle {
		t.Errorf("records do not tile: %+v then %+v", r0, r1)
	}
	if r1.Insts() != 1000 || r1.Cycles() != 400 {
		t.Errorf("window 1 spans %d insts / %d cycles, want 1000/400", r1.Insts(), r1.Cycles())
	}
	if r1.Lost[metrics.RTICache] != 50 || r1.Lost[metrics.Branch] != 10 {
		t.Errorf("window 1 lost = %v, want miss 50 branch 10", r1.Lost)
	}
	if r1.TotalLost() != 60 {
		t.Errorf("TotalLost = %d, want 60", r1.TotalLost())
	}
	if got, want := r1.ISPI(), 0.06; got != want {
		t.Errorf("ISPI = %v, want %v", got, want)
	}
	if got, want := r1.CompISPI(metrics.Branch), 0.01; got != want {
		t.Errorf("CompISPI(branch) = %v, want %v", got, want)
	}
	if got, want := r1.MissPct(), 100*6.0/90.0; got != want {
		t.Errorf("MissPct = %v, want %v", got, want)
	}
	if got, want := r1.BusOccupancyPct(), 15.0; got != want {
		t.Errorf("BusOccupancyPct = %v, want %v", got, want)
	}
}

// TestWindowSeriesRunEndMerge: a trailing sample that adds no instructions
// (budget stop inside a stall or bulk region) re-closes the last window on
// the new edge instead of appending a degenerate zero-instruction window.
func TestWindowSeriesRunEndMerge(t *testing.T) {
	s := NewWindowSeries()
	var l1, l2 metrics.Breakdown
	l1[metrics.RTICache] = 40
	s.Sample(snapAt(1000, 300, l1, 80, 4, 4, 30))
	l2 = l1
	l2[metrics.RTICache] = 55
	s.Sample(snapAt(1000, 320, l2, 80, 4, 5, 42))

	recs := s.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (merged)", len(recs))
	}
	r := recs[0]
	if r.EndCycle != 320 || r.EndInsts != 1000 {
		t.Errorf("merged window ends at cycle %d / insts %d, want 320/1000", r.EndCycle, r.EndInsts)
	}
	if r.Lost[metrics.RTICache] != 55 || r.BusTransfers != 5 || r.BusBusy != 42 {
		t.Errorf("merged window = %+v; trailing counters not absorbed", r)
	}

	// A duplicate of the current edge is a no-op.
	s.Sample(snapAt(1000, 320, l2, 80, 4, 5, 42))
	if s.Len() != 1 {
		t.Errorf("idempotent re-sample grew the series to %d", s.Len())
	}
	// A run-end sample with no closed window yet is dropped, not stored.
	empty := NewWindowSeries()
	empty.Sample(snapAt(0, 50, metrics.Breakdown{}, 0, 0, 0, 0))
	if empty.Len() != 0 || empty.Records() != nil {
		t.Errorf("zero-instruction first sample produced a window")
	}
}

// TestWindowRecordJSON pins the wire shape: raw int64 fields under stable
// snake_case keys, no floats, no typed units.
func TestWindowRecordJSON(t *testing.T) {
	r := WindowRecord{
		Index: 3, StartInsts: 3000, EndInsts: 4000,
		StartCycle: 900, EndCycle: 1400,
		Accesses: 90, Misses: 6, BusTransfers: 6, BusBusy: 60,
	}
	r.Lost[metrics.RTICache] = 50
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"index", "start_insts", "end_insts", "start_cycle", "end_cycle",
		"lost", "accesses", "misses", "bus_transfers", "bus_busy",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("key %q missing from wire encoding %s", key, b)
		}
	}
	if len(m) != 10 {
		t.Errorf("wire encoding has %d keys, want 10: %s", len(m), b)
	}
	var back WindowRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip: %+v != %+v", back, r)
	}
}
