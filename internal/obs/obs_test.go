package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"specfetch/internal/metrics"
)

func TestKindStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FillDemand.String(), "demand"},
		{FillWrongPath.String(), "wrong_path"},
		{FillPrefetch.String(), "prefetch"},
		{FillKind(99).String(), "fill(99)"},
		{RedirectPHTMispredict.String(), "pht_mispredict"},
		{RedirectBTBMisfetch.String(), "btb_misfetch"},
		{RedirectBTBMispredict.String(), "btb_mispredict"},
		{RedirectKind(7).String(), "redirect(7)"},
		{EvFetchCycle.String(), "fetch_cycle"},
		{EvStall.String(), "stall"},
		{EventType(200).String(), "event(200)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestEventTypeTextRoundTrip(t *testing.T) {
	for ty := EventType(0); ty < NumEventTypes; ty++ {
		b, err := ty.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back EventType
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("%s: %v", ty, err)
		}
		if back != ty {
			t.Errorf("round trip %s -> %s", ty, back)
		}
	}
	var bad EventType
	if err := bad.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("unmarshal of unknown name succeeded")
	}
}

// drive invokes every Probe callback once with distinct arguments.
func drive(p Probe) {
	p.FetchCycle(1, 4)
	p.MissStart(2, 10, false)
	p.MissStart(3, 11, true)
	p.FillComplete(7, 10, FillDemand)
	p.BusAcquire(2, 10, FillDemand)
	p.BusRelease(7)
	p.BranchResolve(8, 0x400, true, true)
	p.Redirect(9, RedirectPHTMispredict, 0x440)
	p.Prefetch(10, 12, 15)
	p.WindowStart(8, RedirectPHTMispredict, 11)
	p.WindowEnd(11)
	p.Stall(12, 14, metrics.RTICache, 8)
}

const driveEvents = 12

func TestRecorderRecordsAllCallbacks(t *testing.T) {
	r := NewEventRecorder(64)
	drive(r)
	evs := r.Events()
	if len(evs) != driveEvents {
		t.Fatalf("recorded %d events, want %d", len(evs), driveEvents)
	}
	// Spot-check a few flattenings.
	if evs[0].Type != EvFetchCycle || evs[0].Cy != 1 || evs[0].Issued != 4 {
		t.Errorf("fetch_cycle event = %+v", evs[0])
	}
	if evs[2].Type != EvMissStart || evs[2].Kind != "wrong_path" {
		t.Errorf("wrong-path miss event = %+v", evs[2])
	}
	if evs[11].Type != EvStall || evs[11].Comp != "rt_icache" || evs[11].Slots != 8 || evs[11].Until != 14 {
		t.Errorf("stall event = %+v", evs[11])
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewEventRecorder(4)
	for cy := metrics.Cycles(0); cy < 10; cy++ {
		r.FetchCycle(cy, 1)
	}
	if got, want := r.Total(), uint64(10); got != want {
		t.Errorf("Total = %d, want %d", got, want)
	}
	if got, want := r.Dropped(), uint64(6); got != want {
		t.Errorf("Dropped = %d, want %d", got, want)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Cy != want {
			t.Errorf("event %d cy = %d, want %d (oldest-first)", i, ev.Cy, want)
		}
	}
}

func TestRecorderDisable(t *testing.T) {
	r := NewEventRecorder(64)
	r.Disable(EvFetchCycle, EventType(250)) // out-of-range type is ignored
	drive(r)
	for _, ev := range r.Events() {
		if ev.Type == EvFetchCycle {
			t.Fatal("disabled fetch_cycle event recorded")
		}
	}
	if got := len(r.Events()); got != driveEvents-1 {
		t.Errorf("recorded %d events, want %d", got, driveEvents-1)
	}
}

func TestRecorderJSONLRoundTrip(t *testing.T) {
	r := NewEventRecorder(64)
	drive(r)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var back []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		back = append(back, ev)
	}
	if !reflect.DeepEqual(back, r.Events()) {
		t.Errorf("JSONL round trip diverged:\n got %+v\nwant %+v", back, r.Events())
	}
}

func TestMultiFanOut(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	r := NewEventRecorder(64)
	if Multi(nil, r) != Probe(r) {
		t.Error("Multi(nil, p) did not unwrap to p")
	}

	r2 := NewEventRecorder(64)
	s := NewIntervalSampler()
	m := Multi(r, r2, s)
	drive(m)
	if got, got2 := len(r.Events()), len(r2.Events()); got != driveEvents || got2 != driveEvents {
		t.Errorf("fan-out recorded %d/%d events, want %d each", got, got2, driveEvents)
	}
	// Sample must reach the sampler part through the composite.
	m.(Sampler).Sample(Snapshot{Cycle: 10, Insts: 4})
	if len(s.Points()) != 1 {
		t.Errorf("sampler saw %d points through Multi, want 1", len(s.Points()))
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("specfetch_simulations_total", "Completed simulation runs.")
	c.Inc()
	c.Add(2)
	if reg.Counter("specfetch_simulations_total", "ignored") != c {
		t.Error("Counter did not return the registered instance")
	}
	g := reg.Gauge("specfetch_ispi", "Last total ISPI.")
	g.Set(1.25)
	if got := g.Value(); got != 1.25 {
		t.Errorf("gauge = %v, want 1.25", got)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# HELP specfetch_ispi Last total ISPI.\n" +
		"# TYPE specfetch_ispi gauge\n" +
		"specfetch_ispi 1.25\n" +
		"# HELP specfetch_simulations_total Completed simulation runs.\n" +
		"# TYPE specfetch_simulations_total counter\n" +
		"specfetch_simulations_total 3\n"
	if buf.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n", "things").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "n 1\n") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestIntervalSamplerPoints(t *testing.T) {
	s := NewIntervalSampler()
	// One 10-cycle bus transfer inside the first interval, carried by the
	// snapshot's cumulative BusBusy counter.
	var lost1 metrics.Breakdown
	lost1[metrics.RTICache] = 40
	s.Sample(Snapshot{Cycle: 100, Insts: 200, Lost: lost1,
		RightPathAccesses: 50, RightPathMisses: 5, BusTransfers: 1, BusBusy: 10})

	var lost2 metrics.Breakdown
	lost2[metrics.RTICache] = 40
	lost2[metrics.Branch] = 60
	s.Sample(Snapshot{Cycle: 150, Insts: 300, Lost: lost2,
		RightPathAccesses: 70, RightPathMisses: 5, BusTransfers: 1, BusBusy: 10})

	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	p0 := pts[0]
	if p0.Insts != 200 || p0.Cycle != 100 {
		t.Errorf("p0 position = %d/%d", p0.Insts, p0.Cycle)
	}
	if want := 200.0 / 100.0; p0.IPC != want {
		t.Errorf("p0 IPC = %v, want %v", p0.IPC, want)
	}
	if want := 40.0 / 200.0; p0.ISPI != want || p0.CompISPI[metrics.RTICache] != want {
		t.Errorf("p0 ISPI = %v comp %v, want %v", p0.ISPI, p0.CompISPI[metrics.RTICache], want)
	}
	if want := 100 * 5.0 / 50.0; p0.MissPct != want {
		t.Errorf("p0 MissPct = %v, want %v", p0.MissPct, want)
	}
	if want := 100 * 10.0 / 100.0; p0.BusOccupancyPct != want {
		t.Errorf("p0 BusOccupancyPct = %v, want %v", p0.BusOccupancyPct, want)
	}

	p1 := pts[1]
	if want := 60.0 / 100.0; p1.ISPI != want || p1.CompISPI[metrics.Branch] != want {
		t.Errorf("p1 ISPI = %v, want %v", p1.ISPI, want)
	}
	if want := lost2.TotalISPI(300); p1.CumISPI != want {
		t.Errorf("p1 CumISPI = %v, want %v", p1.CumISPI, want)
	}
	if p1.MissPct != 0 {
		t.Errorf("p1 MissPct = %v, want 0 (no new accesses)", p1.MissPct)
	}
}

// TestIntervalSamplerRunEndMerge covers the run ending exactly on a sample
// boundary: the final engine sample adds stall slots but no instructions and
// must fold into the last point so CumISPI matches the run's total.
func TestIntervalSamplerRunEndMerge(t *testing.T) {
	s := NewIntervalSampler()
	var lost1 metrics.Breakdown
	lost1[metrics.Branch] = 10
	s.Sample(Snapshot{Cycle: 100, Insts: 100, Lost: lost1})
	var lost2 metrics.Breakdown
	lost2[metrics.Branch] = 10
	lost2[metrics.WrongICache] = 20
	s.Sample(Snapshot{Cycle: 110, Insts: 100, Lost: lost2}) // run-end, zero new insts

	pts := s.Points()
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1 (merged)", len(pts))
	}
	p := pts[0]
	if p.Cycle != 110 {
		t.Errorf("merged point cycle = %d, want 110", p.Cycle)
	}
	if want := lost2.TotalISPI(100); p.CumISPI != want {
		t.Errorf("CumISPI = %v, want %v", p.CumISPI, want)
	}
	if want := 30.0 / 100.0; p.ISPI != want {
		t.Errorf("ISPI = %v, want %v", p.ISPI, want)
	}

	// An identical snapshot (nothing advanced) must not change anything.
	s.Sample(Snapshot{Cycle: 110, Insts: 100, Lost: lost2})
	if got := s.Points(); len(got) != 1 || got[0] != p {
		t.Errorf("no-op sample changed the series: %+v", got)
	}
}

func TestIntervalSamplerCSV(t *testing.T) {
	s := NewIntervalSampler()
	var lost metrics.Breakdown
	lost[metrics.RTICache] = 50
	s.Sample(Snapshot{Cycle: 75, Insts: 100, Lost: lost, RightPathAccesses: 25, RightPathMisses: 1})

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	wantHeader := "insts,cycle,ipc,ispi,cum_ispi,ispi_branch_full,ispi_branch,ispi_force_resolve,ispi_bus,ispi_rt_icache,ispi_wrong_icache,miss_pct,bus_occupancy_pct"
	if lines[0] != wantHeader {
		t.Errorf("header = %q\nwant     %q", lines[0], wantHeader)
	}
	cols := strings.Split(lines[1], ",")
	if len(cols) != len(strings.Split(wantHeader, ",")) {
		t.Fatalf("row has %d columns, header %d", len(cols), len(strings.Split(wantHeader, ",")))
	}
	if cols[0] != "100" || cols[1] != "75" {
		t.Errorf("row position = %s,%s", cols[0], cols[1])
	}
}

func TestIntervalSamplerJSON(t *testing.T) {
	s := NewIntervalSampler()

	// Empty series must still be a JSON array.
	var empty bytes.Buffer
	if err := s.WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(empty.String()); got != "[]" {
		t.Errorf("empty series = %q, want []", got)
	}

	var lost metrics.Breakdown
	lost[metrics.Bus] = 8
	s.Sample(Snapshot{Cycle: 50, Insts: 64, Lost: lost})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []SeriesPoint
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !reflect.DeepEqual(back[0], s.Points()[0]) {
		t.Errorf("JSON round trip diverged: %+v vs %+v", back, s.Points())
	}
	if math.Abs(back[0].CumISPI-lost.TotalISPI(64)) > 1e-12 {
		t.Errorf("CumISPI = %v", back[0].CumISPI)
	}
}
