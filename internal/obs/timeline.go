package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"specfetch/internal/metrics"
)

// traceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the JSON Perfetto and chrome://tracing load directly. Timestamps are in
// "microseconds"; the exporter maps one simulated cycle to one microsecond.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Timeline track (thread) ids: one track per modelled resource.
const (
	tidFetch    = 1 // fetch unit: stalls, windows, redirects, demand misses
	tidBus      = 2 // memory bus: one span per line transfer
	tidResume   = 3 // resume buffer: wrong-path fills in flight
	tidPrefetch = 4 // prefetch buffer: prefetches in flight
	tidBranch   = 5 // branch unit: resolve/mispredict instants
	tidCounters = 6 // interval counters: per-window ISPI, miss %, bus occupancy
)

// Trace process ids: the simulated machine and the host-side simulator
// render as two processes in one Perfetto view. Remote worker processes in
// a distributed sweep take pids from fleetPidBase upward, one per process.
const (
	tracePid     = 1
	hostPid      = 2
	fleetPidBase = 3
)

// traceEmitter streams trace events as one Chrome trace-event JSON
// document; the machine and host exporters share it so a combined trace is
// a single well-formed file.
type traceEmitter struct {
	bw    *bufio.Writer
	first bool
}

func newTraceEmitter(w io.Writer) (*traceEmitter, error) {
	e := &traceEmitter{bw: bufio.NewWriter(w), first: true}
	if _, err := e.bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *traceEmitter) emit(ev traceEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if !e.first {
		if _, err := e.bw.WriteString(",\n"); err != nil {
			return err
		}
	}
	e.first = false
	_, err = e.bw.Write(b)
	return err
}

func (e *traceEmitter) close() error {
	if _, err := e.bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return e.bw.Flush()
}

// WriteChromeTrace renders a recorded event stream as Chrome trace-event
// JSON with one track per resource (fetch unit, bus, resume buffer,
// prefetch buffer, branches) plus an "issued" counter series from
// fetch_cycle events. Load the output in https://ui.perfetto.dev or
// chrome://tracing; overlapping spans make wrong-path fills and
// Resume-policy redirects directly visible.
//
// Events may carry future timestamps and need not be sorted; the viewers
// sort by ts. Span pairing (bus acquire/release, wrong-path miss/fill)
// tolerates pairs truncated by the recorder's ring buffer.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return WriteCombinedTrace(w, events, nil)
}

// WriteHostTrace renders completed host spans as Chrome trace-event JSON:
// one "host" process with one track per pool worker, each span a slice of
// that worker's time labelled with the work unit and its allocation count.
// Loaded next to a machine timeline (or written into one file with
// WriteCombinedTrace), a whole sweep renders as workers × cells.
func WriteHostTrace(w io.Writer, spans []HostSpan) error {
	return WriteCombinedTrace(w, nil, spans)
}

// ProcessSpans is one remote process's worth of host spans for a fleet
// trace: the coordinator collects per-cell span timings from each worker
// daemon over the wire, re-anchors them onto its own hosttime axis, and
// groups them by (worker URL, pid).
type ProcessSpans struct {
	// Name labels the process track, e.g. "worker http://host:port (pid 1234)".
	Name string
	// Spans are the process's completed spans, already re-anchored so Start
	// is an offset on the coordinator's span-tracer axis.
	Spans []HostSpan
}

// CombinedTrace bundles every part of one Perfetto trace file: the
// simulated-machine event stream (pid 1, one track per modelled resource),
// per-window counter tracks from an interval series (pid 1, its own track),
// host-side spans (pid 2, one track per pool worker), and remote fleet
// processes (pids 3+). Any part may be nil. Machine timestamps — events and
// counters both — are simulated cycles mapped to microseconds; host and
// fleet timestamps are real microseconds on the coordinator's span-tracer
// axis. The machine and the host share a file, not a clock.
type CombinedTrace struct {
	Events []Event
	// Counters renders each WindowRecord as Perfetto counter samples at the
	// window's closing cycle: ISPI, miss rate, bus occupancy, and one
	// multi-series stall counter split by penalty component.
	Counters []WindowRecord
	Spans    []HostSpan
	Fleet    []ProcessSpans
}

// Write renders the trace as one well-formed Chrome trace-event document.
func (t CombinedTrace) Write(w io.Writer) error {
	e, err := newTraceEmitter(w)
	if err != nil {
		return err
	}
	if t.Events != nil {
		if err := emitMachineEvents(e, t.Events); err != nil {
			return err
		}
	}
	if t.Counters != nil {
		if err := emitCounterTracks(e, t.Counters, t.Events == nil); err != nil {
			return err
		}
	}
	if t.Spans != nil {
		if err := emitHostSpans(e, hostPid, "host", t.Spans); err != nil {
			return err
		}
	}
	for i, p := range t.Fleet {
		if err := emitHostSpans(e, fleetPidBase+i, p.Name, p.Spans); err != nil {
			return err
		}
	}
	return e.close()
}

// WriteCombinedTrace renders machine events, host spans, and fleet
// processes into a single trace file — the counter-free form older call
// sites use; build a CombinedTrace directly to add counter tracks.
func WriteCombinedTrace(w io.Writer, events []Event, spans []HostSpan, fleet ...ProcessSpans) error {
	return CombinedTrace{Events: events, Spans: spans, Fleet: fleet}.Write(w)
}

// emitMachineEvents writes the simulated-machine process: metadata plus the
// recorded event stream, with span pairing for bus transfers and wrong-path
// fills.
func emitMachineEvents(e *traceEmitter, events []Event) error {
	emit := e.emit

	meta := func(name string, tid int, args map[string]any) traceEvent {
		return traceEvent{Name: name, Ph: "M", Pid: tracePid, Tid: tid, Args: args}
	}
	metas := []traceEvent{
		meta("process_name", 0, map[string]any{"name": "specfetch"}),
		meta("thread_name", tidFetch, map[string]any{"name": "fetch unit"}),
		meta("thread_name", tidBus, map[string]any{"name": "bus"}),
		meta("thread_name", tidResume, map[string]any{"name": "resume buffer"}),
		meta("thread_name", tidPrefetch, map[string]any{"name": "prefetch buffer"}),
		meta("thread_name", tidBranch, map[string]any{"name": "branches"}),
	}
	for _, m := range metas {
		if err := emit(m); err != nil {
			return err
		}
	}

	// Pairing state for span reconstruction.
	var busStart int64
	var busLine uint64
	var busKind string
	busOpen := false
	wpMiss := map[uint64]int64{} // wrong-path miss line -> start cycle

	for _, ev := range events {
		var out traceEvent
		switch ev.Type {
		case EvFetchCycle:
			out = traceEvent{Name: "issued", Ph: "C", Ts: ev.Cy, Pid: tracePid, Tid: tidFetch,
				Args: map[string]any{"issued": ev.Issued}}

		case EvStall:
			out = traceEvent{Name: "stall:" + ev.Comp, Ph: "X", Ts: ev.Cy, Dur: ev.Until - ev.Cy,
				Pid: tracePid, Tid: tidFetch, Args: map[string]any{"slots": ev.Slots}}

		case EvWindowStart:
			out = traceEvent{Name: "window:" + ev.Kind, Ph: "X", Ts: ev.Cy, Dur: ev.Until - ev.Cy,
				Pid: tracePid, Tid: tidFetch}

		case EvWindowEnd:
			out = traceEvent{Name: "resume", Ph: "i", Ts: ev.Cy, Pid: tracePid, Tid: tidFetch, S: "t"}

		case EvRedirect:
			out = traceEvent{Name: "redirect:" + ev.Kind, Ph: "i", Ts: ev.Cy,
				Pid: tracePid, Tid: tidFetch, S: "t", Args: map[string]any{"resume_pc": ev.PC}}

		case EvMissStart:
			if ev.Kind == fillKindNames[FillWrongPath] {
				wpMiss[ev.Line] = ev.Cy
				continue
			}
			out = traceEvent{Name: "miss", Ph: "i", Ts: ev.Cy, Pid: tracePid, Tid: tidFetch,
				S: "t", Args: map[string]any{"line": ev.Line}}

		case EvFillComplete:
			if ev.Kind != fillKindNames[FillWrongPath] {
				continue // demand fills show as bus spans, prefetches below
			}
			start, ok := wpMiss[ev.Line]
			if !ok {
				start = ev.Cy // ring truncated the matching miss_start
			}
			delete(wpMiss, ev.Line)
			out = traceEvent{Name: "wp fill", Ph: "X", Ts: start, Dur: ev.Cy - start,
				Pid: tracePid, Tid: tidResume, Args: map[string]any{"line": ev.Line}}

		case EvBusAcquire:
			busStart, busLine, busKind, busOpen = ev.Cy, ev.Line, ev.Kind, true
			continue

		case EvBusRelease:
			if !busOpen {
				continue // ring truncated the matching bus_acquire
			}
			busOpen = false
			out = traceEvent{Name: "xfer:" + busKind, Ph: "X", Ts: busStart, Dur: ev.Cy - busStart,
				Pid: tracePid, Tid: tidBus, Args: map[string]any{"line": busLine}}

		case EvPrefetch:
			out = traceEvent{Name: "prefetch", Ph: "X", Ts: ev.Cy, Dur: ev.Until - ev.Cy,
				Pid: tracePid, Tid: tidPrefetch, Args: map[string]any{"line": ev.Line}}

		case EvBranchResolve:
			name := "resolve"
			if ev.Mispredict {
				name = "mispredict"
			}
			out = traceEvent{Name: name, Ph: "i", Ts: ev.Cy, Pid: tracePid, Tid: tidBranch,
				S: "t", Args: map[string]any{"pc": ev.PC, "taken": ev.Taken}}

		default:
			continue
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

// emitCounterTracks writes the interval-counter track on the machine
// process: per window, one sample per counter series at the window's
// closing cycle. Stall attribution goes out as a single multi-series
// counter keyed by component name, which Perfetto stacks the way the
// paper's ISPI figures do. withProcMeta adds the machine process_name when
// no event stream already emitted it.
func emitCounterTracks(e *traceEmitter, windows []WindowRecord, withProcMeta bool) error {
	if withProcMeta {
		if err := e.emit(traceEvent{Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
			Args: map[string]any{"name": "specfetch"}}); err != nil {
			return err
		}
	}
	if err := e.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tidCounters,
		Args: map[string]any{"name": "interval counters"}}); err != nil {
		return err
	}
	for _, win := range windows {
		base := traceEvent{Ph: "C", Ts: win.EndCycle, Pid: tracePid, Tid: tidCounters}
		singles := []struct {
			name string
			val  float64
		}{
			{"ispi", win.ISPI()},
			{"miss %", win.MissPct()},
			{"bus occupancy %", win.BusOccupancyPct()},
		}
		for _, s := range singles {
			ev := base
			ev.Name = s.name
			ev.Args = map[string]any{s.name: s.val}
			if err := e.emit(ev); err != nil {
				return err
			}
		}
		stalls := base
		stalls.Name = "stall ispi"
		stalls.Args = map[string]any{}
		for _, c := range metrics.Components() {
			stalls.Args[c.String()] = win.CompISPI(c)
		}
		if err := e.emit(stalls); err != nil {
			return err
		}
	}
	return nil
}

// emitHostSpans writes one host-side process: a process_name, one
// thread_name per worker seen in the span list, and one complete ("X")
// event per span. The host pool and each remote fleet process render
// through the same path, differing only in pid and label.
func emitHostSpans(e *traceEmitter, pid int, procName string, spans []HostSpan) error {
	if err := e.emit(traceEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": procName}}); err != nil {
		return err
	}
	maxWorker := 0
	for _, s := range spans {
		if s.Worker > maxWorker {
			maxWorker = s.Worker
		}
	}
	for w := 0; w <= maxWorker; w++ {
		if err := e.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: w + 1,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)}}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		args := map[string]any{"allocs": s.Allocs}
		if s.Section != "" {
			args["section"] = s.Section
		}
		if err := e.emit(traceEvent{
			Name: s.Name, Ph: "X",
			Ts:  s.Start.Microseconds(),
			Dur: s.Dur.Microseconds(),
			Pid: pid, Tid: s.Worker + 1,
			Args: args,
		}); err != nil {
			return err
		}
	}
	return nil
}
