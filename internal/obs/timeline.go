package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// traceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the JSON Perfetto and chrome://tracing load directly. Timestamps are in
// "microseconds"; the exporter maps one simulated cycle to one microsecond.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Timeline track (thread) ids: one track per modelled resource.
const (
	tidFetch    = 1 // fetch unit: stalls, windows, redirects, demand misses
	tidBus      = 2 // memory bus: one span per line transfer
	tidResume   = 3 // resume buffer: wrong-path fills in flight
	tidPrefetch = 4 // prefetch buffer: prefetches in flight
	tidBranch   = 5 // branch unit: resolve/mispredict instants
)

const tracePid = 1

// WriteChromeTrace renders a recorded event stream as Chrome trace-event
// JSON with one track per resource (fetch unit, bus, resume buffer,
// prefetch buffer, branches) plus an "issued" counter series from
// fetch_cycle events. Load the output in https://ui.perfetto.dev or
// chrome://tracing; overlapping spans make wrong-path fills and
// Resume-policy redirects directly visible.
//
// Events may carry future timestamps and need not be sorted; the viewers
// sort by ts. Span pairing (bus acquire/release, wrong-path miss/fill)
// tolerates pairs truncated by the recorder's ring buffer.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	meta := func(name string, tid int, args map[string]any) traceEvent {
		return traceEvent{Name: name, Ph: "M", Pid: tracePid, Tid: tid, Args: args}
	}
	metas := []traceEvent{
		meta("process_name", 0, map[string]any{"name": "specfetch"}),
		meta("thread_name", tidFetch, map[string]any{"name": "fetch unit"}),
		meta("thread_name", tidBus, map[string]any{"name": "bus"}),
		meta("thread_name", tidResume, map[string]any{"name": "resume buffer"}),
		meta("thread_name", tidPrefetch, map[string]any{"name": "prefetch buffer"}),
		meta("thread_name", tidBranch, map[string]any{"name": "branches"}),
	}
	for _, m := range metas {
		if err := emit(m); err != nil {
			return err
		}
	}

	// Pairing state for span reconstruction.
	var busStart int64
	var busLine uint64
	var busKind string
	busOpen := false
	wpMiss := map[uint64]int64{} // wrong-path miss line -> start cycle

	for _, ev := range events {
		var out traceEvent
		switch ev.Type {
		case EvFetchCycle:
			out = traceEvent{Name: "issued", Ph: "C", Ts: ev.Cy, Pid: tracePid, Tid: tidFetch,
				Args: map[string]any{"issued": ev.Issued}}

		case EvStall:
			out = traceEvent{Name: "stall:" + ev.Comp, Ph: "X", Ts: ev.Cy, Dur: ev.Until - ev.Cy,
				Pid: tracePid, Tid: tidFetch, Args: map[string]any{"slots": ev.Slots}}

		case EvWindowStart:
			out = traceEvent{Name: "window:" + ev.Kind, Ph: "X", Ts: ev.Cy, Dur: ev.Until - ev.Cy,
				Pid: tracePid, Tid: tidFetch}

		case EvWindowEnd:
			out = traceEvent{Name: "resume", Ph: "i", Ts: ev.Cy, Pid: tracePid, Tid: tidFetch, S: "t"}

		case EvRedirect:
			out = traceEvent{Name: "redirect:" + ev.Kind, Ph: "i", Ts: ev.Cy,
				Pid: tracePid, Tid: tidFetch, S: "t", Args: map[string]any{"resume_pc": ev.PC}}

		case EvMissStart:
			if ev.Kind == fillKindNames[FillWrongPath] {
				wpMiss[ev.Line] = ev.Cy
				continue
			}
			out = traceEvent{Name: "miss", Ph: "i", Ts: ev.Cy, Pid: tracePid, Tid: tidFetch,
				S: "t", Args: map[string]any{"line": ev.Line}}

		case EvFillComplete:
			if ev.Kind != fillKindNames[FillWrongPath] {
				continue // demand fills show as bus spans, prefetches below
			}
			start, ok := wpMiss[ev.Line]
			if !ok {
				start = ev.Cy // ring truncated the matching miss_start
			}
			delete(wpMiss, ev.Line)
			out = traceEvent{Name: "wp fill", Ph: "X", Ts: start, Dur: ev.Cy - start,
				Pid: tracePid, Tid: tidResume, Args: map[string]any{"line": ev.Line}}

		case EvBusAcquire:
			busStart, busLine, busKind, busOpen = ev.Cy, ev.Line, ev.Kind, true
			continue

		case EvBusRelease:
			if !busOpen {
				continue // ring truncated the matching bus_acquire
			}
			busOpen = false
			out = traceEvent{Name: "xfer:" + busKind, Ph: "X", Ts: busStart, Dur: ev.Cy - busStart,
				Pid: tracePid, Tid: tidBus, Args: map[string]any{"line": busLine}}

		case EvPrefetch:
			out = traceEvent{Name: "prefetch", Ph: "X", Ts: ev.Cy, Dur: ev.Until - ev.Cy,
				Pid: tracePid, Tid: tidPrefetch, Args: map[string]any{"line": ev.Line}}

		case EvBranchResolve:
			name := "resolve"
			if ev.Mispredict {
				name = "mispredict"
			}
			out = traceEvent{Name: name, Ph: "i", Ts: ev.Cy, Pid: tracePid, Tid: tidBranch,
				S: "t", Args: map[string]any{"pc": ev.PC, "taken": ev.Taken}}

		default:
			continue
		}
		if err := emit(out); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
