package core

import "fmt"

// StepMode selects how the engine advances simulated time. Both modes are
// the same machine: the skip-ahead core is proven bit-identical to the
// reference stepper (same Result, same probe event stream, same rendered
// tables) by the differential suite in stepmode_diff_test.go, which is what
// makes skip-ahead safe as the zero-value default.
type StepMode int

const (
	// StepSkipAhead is the next-event core: when every resource is
	// idle-waiting on a known completion time (fills, bus busy-until,
	// decode/resolve gates, cond-retire times), the clock jumps straight to
	// the next event and the skipped interval is accounted in bulk as typed
	// Slots/Cycles deltas. Plain-instruction runs with resident lines are
	// issued in bulk as well. This is the default.
	StepSkipAhead StepMode = iota
	// StepReference is the legacy cycle-by-cycle stepper, kept as the
	// executable specification the skip-ahead core is verified against.
	StepReference

	numStepModes
)

var stepModeNames = [numStepModes]string{
	StepSkipAhead: "skipahead",
	StepReference: "reference",
}

// String returns the lower-case mode name.
func (m StepMode) String() string {
	if m >= 0 && m < numStepModes {
		return stepModeNames[m]
	}
	return fmt.Sprintf("stepmode(%d)", int(m))
}

// ParseStepMode is the inverse of StepMode.String.
func ParseStepMode(s string) (StepMode, error) {
	for i, n := range stepModeNames {
		if n == s {
			return StepMode(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown step mode %q", s)
}

// StepModes lists both modes, skip-ahead first (the default).
func StepModes() []StepMode {
	return []StepMode{StepSkipAhead, StepReference}
}
