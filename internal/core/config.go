package core

import (
	"fmt"

	"specfetch/internal/cache"
	"specfetch/internal/obs"
)

// Config parameterizes one simulation run. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// Policy is the I-cache fetch policy under test.
	Policy Policy

	// FetchWidth is the superscalar issue width in instructions per cycle
	// (paper: 4).
	FetchWidth int

	// MaxUnresolved is the speculation depth: the number of conditional
	// branches that may be in flight, fetched but not yet resolved
	// (paper: 1, 2, or 4).
	MaxUnresolved int

	// MissPenalty is the I-cache miss / bus occupancy time in cycles
	// (paper: 5 low, 20 high).
	MissPenalty int

	// DecodeLatency is the fetch-to-decode distance in cycles (paper: 2).
	// Misfetches redirect DecodeLatency cycles after the branch fetch.
	DecodeLatency int

	// ResolveLatency is the fetch-to-resolve distance for conditional
	// branches in cycles (paper: 4). Mispredicts redirect ResolveLatency
	// cycles after the branch fetch.
	ResolveLatency int

	// ICache sizes the instruction cache (paper: 8K/32K direct mapped,
	// 32-byte lines).
	ICache cache.Config

	// NextLinePrefetch enables the paper's "maximal fetchahead,
	// first-time-referenced" next-line prefetcher.
	NextLinePrefetch bool

	// TargetPrefetch additionally prefetches the target line of fetched
	// branches (computed at decode for direct branches, from the BTB for
	// indirect ones) — the Smith & Hsu target-prefetch scheme; combined
	// with NextLinePrefetch it approximates Pierce & Mudge's wrong-path
	// prefetching. Target prefetches take priority over next-line ones.
	// This is an extension beyond the paper's evaluation.
	TargetPrefetch bool

	// StreamDepth, when positive, keeps prefetching sequential lines after
	// each right-path demand fill, up to this many lines ahead (a
	// single-stream approximation of Jouppi's stream buffers, filling
	// through the prefetch buffer). Extension beyond the paper.
	StreamDepth int

	// PipelinedMemory lifts the single-transfer bus limitation: transfers
	// still take MissPenalty cycles but may overlap, removing all bus
	// contention. Models the paper's "pipelining miss requests" future
	// work. Extension beyond the paper.
	PipelinedMemory bool

	// L2, when non-nil, inserts a unified second-level cache between the
	// I-cache and memory: fills that hit it complete in L2Latency cycles,
	// fills that miss it pay the full MissPenalty (and install the line in
	// the L2). The paper's "small latency (e.g., for an on-chip hierarchy
	// of caches)" is exactly the L2-hit case; this knob makes the
	// hierarchy explicit. Extension beyond the paper.
	L2 *cache.Config

	// L2Latency is the fill time for an L2 hit; must be positive and at
	// most MissPenalty when L2 is configured.
	L2Latency int

	// MSHRs, when positive, generalizes the paper's single resume buffer
	// and single prefetch buffer into miss-status holding register files of
	// that many entries each, allowing several wrong-path fills and
	// prefetches to be tracked at once (a simple non-blocking I-cache —
	// the paper's "further study"). 0 keeps the paper's one-of-each.
	MSHRs int

	// RASDepth, when positive, adds a return-address stack of that depth:
	// returns are predicted from the dynamic call nesting instead of the
	// BTB's last-target, eliminating most BTB target mispredicts. The
	// stack is speculatively updated (and corrupted) by wrong-path fetch,
	// as in simple non-checkpointing hardware. Extension beyond the paper.
	RASDepth int

	// FlushInterval, when positive, invalidates the I-cache every that many
	// correct-path instructions, modelling context switches (the L2, being
	// large and physically shared, is left intact). Extension beyond the
	// paper. 0 disables flushing.
	FlushInterval int64

	// MaxInsts stops the run after this many correct-path instructions;
	// 0 means run the whole trace.
	MaxInsts int64

	// OnRightPathAccess, if non-nil, is invoked for every structural
	// correct-path line reference with a policy-independent sequence
	// number, the line, and whether it missed. The classify package uses it
	// to build the paper's Table 4 miss categorization.
	OnRightPathAccess func(seq int64, line uint64, miss bool)

	// Probe, when non-nil, receives typed instrumentation callbacks as the
	// simulation runs (see internal/obs): fetch cycles, misses, fills, bus
	// occupancy, branch resolves, redirect windows, and stall attribution.
	// Probes observe but never alter simulated behaviour. Nil disables all
	// instrumentation; every engine call site is guarded by a single nil
	// check, so the disabled path costs one predictable branch per hook.
	Probe obs.Probe

	// SampleInterval, when positive and Probe implements obs.Sampler,
	// delivers a cumulative-counters snapshot to the probe every
	// SampleInterval correct-path instructions and once more at run end
	// (so cumulative series values close exactly on the final Result).
	// 0 disables sampling.
	SampleInterval int64

	// AdaptInterval is the Adaptive meta-policy's decision-window width in
	// correct-path instructions: the chooser re-decides at every multiple.
	// Required (positive) when Policy is Adaptive, ignored otherwise.
	AdaptInterval int64

	// AdaptStrategy names the chooser strategy for adaptive runs
	// ("tournament", "ucb", ...; see internal/adaptive). It is data, not
	// code, so it crosses the distsweep wire and a remote worker rebuilds
	// the identical chooser. Ignored when a Chooser is attached directly.
	AdaptStrategy string

	// AdaptSeed seeds randomized strategies (via internal/xrand). Runs with
	// equal seeds are bit-identical; different seeds legitimately diverge.
	AdaptSeed uint64

	// Chooser is the constructed strategy instance driving the Adaptive
	// policy. In-process-only, like Probe and Arena: it never crosses the
	// distsweep wire (workers rebuild one from AdaptStrategy/AdaptSeed),
	// and a Chooser must not serve two concurrent engines. Required when
	// Policy is Adaptive and the engine is built directly; the experiments
	// executor constructs one from AdaptStrategy when it is nil.
	Chooser Chooser

	// StepMode selects the time-advance engine: the next-event skip-ahead
	// core (the zero value, and the default) or the legacy cycle-by-cycle
	// reference stepper. The two are bit-identical — same Result, same
	// probe event stream — which the differential suite proves; keep
	// StepReference around as the executable specification and for
	// debugging the fast core.
	StepMode StepMode

	// Arena, when non-nil, supplies reusable per-run storage (queues, line
	// buffers, cache arrays) so back-to-back runs allocate nothing in the
	// steady state. In-process-only, like Probe: it never crosses the
	// distsweep wire, and one Arena must not serve two concurrent engines.
	// Reuse is behaviour-neutral; results are bit-identical either way.
	Arena *Arena
}

// DefaultConfig returns the paper's baseline machine: 4-wide fetch, depth-4
// speculation, 8K direct-mapped cache, 5-cycle miss penalty, prefetch off.
func DefaultConfig() Config {
	return Config{
		Policy:         Resume,
		FetchWidth:     4,
		MaxUnresolved:  4,
		MissPenalty:    5,
		DecodeLatency:  2,
		ResolveLatency: 4,
		ICache:         cache.DefaultConfig(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Policy < 0 || c.Policy >= numPolicies:
		return fmt.Errorf("core: invalid policy %d", int(c.Policy))
	case c.FetchWidth <= 0:
		return fmt.Errorf("core: fetch width %d not positive", c.FetchWidth)
	case c.MaxUnresolved <= 0:
		return fmt.Errorf("core: speculation depth %d not positive", c.MaxUnresolved)
	case c.MissPenalty <= 0:
		return fmt.Errorf("core: miss penalty %d not positive", c.MissPenalty)
	case c.DecodeLatency <= 0:
		return fmt.Errorf("core: decode latency %d not positive", c.DecodeLatency)
	case c.ResolveLatency < c.DecodeLatency:
		return fmt.Errorf("core: resolve latency %d below decode latency %d",
			c.ResolveLatency, c.DecodeLatency)
	case c.MaxInsts < 0:
		return fmt.Errorf("core: negative instruction budget %d", c.MaxInsts)
	case c.StreamDepth < 0:
		return fmt.Errorf("core: negative stream depth %d", c.StreamDepth)
	case c.RASDepth < 0:
		return fmt.Errorf("core: negative RAS depth %d", c.RASDepth)
	case c.MSHRs < 0:
		return fmt.Errorf("core: negative MSHR count %d", c.MSHRs)
	case c.FlushInterval < 0:
		return fmt.Errorf("core: negative flush interval %d", c.FlushInterval)
	case c.SampleInterval < 0:
		return fmt.Errorf("core: negative sample interval %d", c.SampleInterval)
	case c.AdaptInterval < 0:
		return fmt.Errorf("core: negative adapt interval %d", c.AdaptInterval)
	case c.Policy == Adaptive && c.AdaptInterval == 0:
		return fmt.Errorf("core: adaptive policy requires a positive adapt interval")
	case c.Policy != Adaptive && c.Chooser != nil:
		return fmt.Errorf("core: chooser attached to non-adaptive policy %v", c.Policy)
	case c.StepMode < 0 || c.StepMode >= numStepModes:
		return fmt.Errorf("core: invalid step mode %d", int(c.StepMode))
	}
	if c.L2 != nil {
		if err := c.L2.Validate(); err != nil {
			return fmt.Errorf("core: L2: %w", err)
		}
		if c.L2.LineBytes != c.ICache.LineBytes {
			return fmt.Errorf("core: L2 line size %d differs from L1's %d", c.L2.LineBytes, c.ICache.LineBytes)
		}
		if c.L2Latency <= 0 || c.L2Latency > c.MissPenalty {
			return fmt.Errorf("core: L2 latency %d outside (0, miss penalty %d]", c.L2Latency, c.MissPenalty)
		}
	}
	return c.ICache.Validate()
}
