package core

import (
	"reflect"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// The differential suite: the skip-ahead core and the reference stepper are
// the same machine, and these tests hold the two to bit-identity — equal
// Results via reflect.DeepEqual and byte-identical probe event streams —
// across every policy, the full stock benchmark suite, both paper miss
// penalties, and the extension knobs. This is the proof that makes
// StepSkipAhead safe as the zero-value default.

const diffInsts = 30_000

// runDiffMode executes one cell in the given step mode. A non-nil arena is
// threaded through (the skip side uses one, doubling as the proof that arena
// reuse is behaviour-neutral). When record is true, a full event recorder
// and a full-sampling audit probe are attached; the recorded events are
// returned and the audit identities are verified.
func runDiffMode(t *testing.T, cfg Config, bench *synth.Bench, seed uint64,
	mode StepMode, arena *Arena, record bool, sampleEvery int) (Result, []obs.Event) {
	t.Helper()
	cfg.StepMode = mode
	cfg.Arena = arena
	cfg.MaxInsts = diffInsts
	var rec *obs.EventRecorder
	var aud *obs.AuditProbe
	if record {
		rec = obs.NewEventRecorder(1 << 20)
		aud = obs.NewAuditProbe(obs.AuditOptions{
			Width:           cfg.FetchWidth,
			AllowBusOverlap: cfg.PipelinedMemory,
			SampleEvery:     sampleEvery,
		})
		cfg.Probe = obs.Multi(rec, aud)
	}
	rd := trace.NewLimitReader(bench.NewWalker(seed), diffInsts+diffInsts/4)
	pred, err := bpred.ByName("")
	if err != nil {
		t.Fatalf("predictor: %v", err)
	}
	res, err := Run(cfg, bench.Image(), rd, pred())
	if err != nil {
		t.Fatalf("%v policy %v mode %v: %v", bench.Profile().Name, cfg.Policy, mode, err)
	}
	if aud != nil {
		if verr := aud.Verify(res.AuditFinal()); verr != nil {
			t.Fatalf("%v policy %v mode %v: audit: %v", bench.Profile().Name, cfg.Policy, mode, verr)
		}
		if rec.Dropped() != 0 {
			t.Fatalf("event recorder overflowed (%d dropped); raise capacity", rec.Dropped())
		}
	}
	var evs []obs.Event
	if rec != nil {
		evs = rec.Events()
	}
	return res, evs
}

// diffCompare runs both modes on one cell and requires identical Results
// (and, when record is set, identical event streams).
func diffCompare(t *testing.T, cfg Config, bench *synth.Bench, seed uint64,
	arena *Arena, record bool, sampleEvery int) {
	t.Helper()
	ref, refEvs := runDiffMode(t, cfg, bench, seed, StepReference, nil, record, sampleEvery)
	fast, fastEvs := runDiffMode(t, cfg, bench, seed, StepSkipAhead, arena, record, sampleEvery)
	if !reflect.DeepEqual(ref, fast) {
		t.Errorf("%s policy %v: Results differ between modes\nreference: %+v\nskipahead: %+v",
			bench.Profile().Name, cfg.Policy, ref, fast)
	}
	if record && !reflect.DeepEqual(refEvs, fastEvs) {
		n := len(refEvs)
		if len(fastEvs) < n {
			n = len(fastEvs)
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(refEvs[i], fastEvs[i]) {
				t.Errorf("%s policy %v: event %d differs\nreference: %+v\nskipahead: %+v",
					bench.Profile().Name, cfg.Policy, i, refEvs[i], fastEvs[i])
				return
			}
		}
		t.Errorf("%s policy %v: event count differs: reference %d, skipahead %d",
			bench.Profile().Name, cfg.Policy, len(refEvs), len(fastEvs))
	}
}

// TestStepModeDifferentialMatrix covers every policy x every stock profile x
// both paper miss penalties, with no probe attached — this is the only arm
// that exercises the bulk plain-issue fast path, which a probe disables.
// The skip side reuses one arena per profile across all its cells.
func TestStepModeDifferentialMatrix(t *testing.T) {
	t.Parallel()
	profiles := synth.Profiles()
	if testing.Short() {
		profiles = profiles[:4]
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			bench := synth.MustBuild(p)
			arena := NewArena()
			for _, pen := range []int{5, 20} {
				for _, pol := range Policies() {
					cfg := DefaultConfig()
					cfg.Policy = pol
					cfg.MissPenalty = pen
					diffCompare(t, cfg, bench, p.Seed^0x5eed, arena, false, 0)
				}
			}
		})
	}
}

// TestStepModeEventStreamIdentity attaches a full event recorder plus the
// audit probe — once fully sampled, once sparsely — and requires the two
// modes to emit byte-identical event streams (every stall segment, fill,
// bus grant, redirect, and window at the true completion cycle, not the
// post-jump clock). With a probe attached the engine takes the stepped
// outer loop, so this arm pins the jumping stall/window accounting.
func TestStepModeEventStreamIdentity(t *testing.T) {
	t.Parallel()
	profiles := []synth.Profile{synth.Su2cor(), synth.Fpppp(), synth.GCC(), synth.DBpp()}
	if testing.Short() {
		profiles = profiles[:2]
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			bench := synth.MustBuild(p)
			for _, pol := range Policies() {
				cfg := DefaultConfig()
				cfg.Policy = pol
				cfg.MissPenalty = 20
				cfg.SampleInterval = 1000 // exercise the sampler plane too
				diffCompare(t, cfg, bench, p.Seed^0xcafe, nil, true, 1)
				diffCompare(t, cfg, bench, p.Seed^0xcafe, nil, true, 7)
			}
		})
	}
}

// TestStepModeDifferentialExtensions sweeps the extension knobs — prefetch
// engines, pipelined memory, L2, MSHRs, RAS, victim buffer, associativity,
// cache flushing, narrow and wide fetch — through both modes. Prefetch
// configurations disable bulk issue but still take the jumping stall and
// window paths.
func TestStepModeDifferentialExtensions(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nextline-prefetch", func(c *Config) { c.NextLinePrefetch = true }},
		{"target-prefetch", func(c *Config) { c.NextLinePrefetch = true; c.TargetPrefetch = true }},
		{"stream-prefetch", func(c *Config) { c.NextLinePrefetch = true; c.StreamDepth = 4 }},
		{"pipelined-memory", func(c *Config) { c.PipelinedMemory = true }},
		{"l2", func(c *Config) {
			l2 := cache.Config{SizeBytes: 64 * 1024, LineBytes: c.ICache.LineBytes, Assoc: 2}
			c.L2 = &l2
			c.L2Latency = 3
		}},
		{"mshrs", func(c *Config) { c.MSHRs = 4 }},
		{"ras", func(c *Config) { c.RASDepth = 8 }},
		{"victim", func(c *Config) { c.ICache.VictimLines = 4 }},
		{"assoc2", func(c *Config) { c.ICache.Assoc = 2 }},
		{"flush", func(c *Config) { c.FlushInterval = 7_777 }},
		{"narrow", func(c *Config) { c.FetchWidth = 1; c.MaxUnresolved = 1 }},
		{"wide", func(c *Config) { c.FetchWidth = 8; c.MaxUnresolved = 8 }},
		{"depth1", func(c *Config) { c.MaxUnresolved = 1 }},
		{"tiny-cache", func(c *Config) { c.ICache.SizeBytes = 1024 }},
	}
	benches := []*synth.Bench{synth.MustBuild(synth.Su2cor()), synth.MustBuild(synth.Fpppp())}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			arena := NewArena()
			for _, bench := range benches {
				for _, pol := range Policies() {
					cfg := DefaultConfig()
					cfg.Policy = pol
					tc.mut(&cfg)
					diffCompare(t, cfg, bench, 0xd1ff^uint64(pol), arena, false, 0)
				}
			}
		})
	}
}

// TestArenaReuseNeutral runs the same cell back to back on one arena and
// against a fresh engine: reuse must not leak state between runs.
func TestArenaReuseNeutral(t *testing.T) {
	t.Parallel()
	bench := synth.MustBuild(synth.GCC())
	cfg := DefaultConfig()
	cfg.Policy = Resume
	fresh, _ := runDiffMode(t, cfg, bench, 42, StepSkipAhead, nil, false, 0)
	arena := NewArena()
	for i := 0; i < 3; i++ {
		re, _ := runDiffMode(t, cfg, bench, 42, StepSkipAhead, arena, false, 0)
		if !reflect.DeepEqual(fresh, re) {
			t.Fatalf("arena run %d differs from fresh run\nfresh: %+v\narena: %+v", i, fresh, re)
		}
	}
	// A geometry change mid-stream rebuilds the cache cleanly.
	cfg.ICache.SizeBytes *= 4
	big, _ := runDiffMode(t, cfg, bench, 42, StepSkipAhead, arena, false, 0)
	cfg.ICache.SizeBytes /= 4
	small, _ := runDiffMode(t, cfg, bench, 42, StepSkipAhead, arena, false, 0)
	if !reflect.DeepEqual(fresh, small) {
		t.Fatalf("arena run after geometry change differs from fresh run")
	}
	if reflect.DeepEqual(big, small) {
		t.Fatalf("4x cache produced identical result; geometry change not applied")
	}
}

// TestArenaBusy: one arena, two engines — the second NewEngine must fail.
func TestArenaBusy(t *testing.T) {
	t.Parallel()
	bench := synth.MustBuild(synth.Su2cor())
	cfg := DefaultConfig()
	cfg.Arena = NewArena()
	pred, _ := bpred.ByName("")
	rd := trace.NewLimitReader(bench.NewWalker(1), 1000)
	if _, err := NewEngine(cfg, bench.Image(), rd, pred()); err != nil {
		t.Fatalf("first engine: %v", err)
	}
	if _, err := NewEngine(cfg, bench.Image(), rd, pred()); err == nil {
		t.Fatalf("second engine on a busy arena did not fail")
	}
}
