package core

import "specfetch/internal/metrics"

// The Adaptive meta-policy's decision plane. The engine slices an adaptive
// run into fixed instruction-count windows (Config.AdaptInterval wide) and,
// at every boundary, hands the window's counter deltas to a Chooser, which
// answers with the static policy to run next. The digest deliberately
// exposes only information a real machine has at runtime — its own lost
// slots, miss counts, and bus occupancy — never oracle knowledge; the
// oracle selector (internal/experiments) stays the unreachable bound the
// chooser is measured against.
//
// Boundaries are defined on the correct-path instruction count, the same
// axis the interval sampler uses, so adaptive windows align with
// obs.WindowSeries windows at equal widths. A decision takes effect
// immediately: the instruction that crossed the boundary has issued, and
// every subsequent miss (correct- or wrong-path) is handled under the new
// policy. In the skip-ahead core a boundary can fall inside a bulk-issued
// region of plain cache-resident instructions; no miss handling happens
// there, so the engine interpolates the digest at the boundary instruction
// (only cycle, instruction, and access counts move inside such a region)
// and defers the active-policy write to the end of the region — the chooser
// sees bit-identical inputs in both step modes, which the differential
// suite verifies.

// AdaptWindow is one decision window's digest: counter deltas over the last
// AdaptInterval correct-path instructions, plus which policy was active
// while they were accumulated.
type AdaptWindow struct {
	// Index is the 0-based window ordinal.
	Index int64
	// StartInsts/EndInsts are the window's instruction-count boundaries.
	StartInsts, EndInsts int64
	// Cycles is the simulated time the window took.
	Cycles Cycles
	// Lost is the per-component lost-slot breakdown accumulated in the
	// window.
	Lost metrics.Breakdown
	// Accesses/Misses count the window's structural correct-path line
	// references and how many of them missed.
	Accesses, Misses int64
	// BusBusy is the bus occupancy (transfer cycles) added in the window.
	BusBusy Cycles
	// Active is the static policy that produced these numbers.
	Active Policy
}

// Insts returns the window's instruction count.
func (w AdaptWindow) Insts() int64 { return w.EndInsts - w.StartInsts }

// LostPerInst returns the window's issue slots lost per instruction — the
// per-window ISPI the choosers rank policies by.
func (w AdaptWindow) LostPerInst() float64 {
	return w.Lost.TotalISPI(w.Insts())
}

// MissRate returns the window's correct-path misses per instruction.
func (w AdaptWindow) MissRate() float64 {
	if n := w.Insts(); n > 0 {
		return float64(w.Misses) / float64(n)
	}
	return 0
}

// Chooser is the pluggable selection strategy behind the Adaptive policy.
// Implementations live in internal/adaptive (core defines only the
// interface, so the dependency arrow stays adaptive → core).
//
// A Chooser must be deterministic — same seed, same window sequence, same
// decisions — and must not consult wall clocks or global randomness
// (internal/xrand is the sanctioned generator). Both First and Decide must
// return static policies (Policy.IsStatic); the engine treats anything else
// as a programming error.
type Chooser interface {
	// First returns the policy to start the run under, before any window
	// has completed.
	First() Policy
	// Decide consumes one completed window and returns the policy for the
	// next window (possibly the same one). It is called exactly once per
	// boundary, in window order.
	Decide(w AdaptWindow) Policy
}
