package core

import (
	"io"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// replayRecs is a minimal pre-validated replay cursor: the benchmark
// equivalent of the experiments layer's shared-trace reader, so the engine
// takes the same trusted-record path a memoized sweep cell does.
type replayRecs struct {
	recs []trace.Record
	i    int
}

func (r *replayRecs) PreValidatedTrace() bool { return true }

func (r *replayRecs) Next() (trace.Record, error) {
	if r.i < len(r.recs) {
		rec := r.recs[r.i]
		r.i++
		return rec, nil
	}
	return trace.Record{}, io.EOF
}

// BenchmarkReplayEngine measures the engine alone — records pre-generated,
// arena warm, trace validation vouched — which is the steady-state shape of
// a sweep cell after the first on a worker. The Minsts/s metric is
// correct-path instructions simulated per wall-clock second.
func BenchmarkReplayEngine(b *testing.B) {
	bench := synth.MustBuild(synth.Su2cor())
	const insts = 200_000
	var recs []trace.Record
	rd := trace.NewLimitReader(bench.NewWalker(0x5eed), insts+insts/4)
	for {
		rec, err := rd.Next()
		if err != nil {
			break
		}
		recs = append(recs, rec)
	}
	cfg := DefaultConfig()
	cfg.Policy = Resume
	cfg.MaxInsts = insts
	cfg.Arena = NewArena()
	mk, err := bpred.ByName("")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, bench.Image(), &replayRecs{recs: recs}, mk()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minsts/s")
}
