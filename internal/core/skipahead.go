package core

import (
	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/obs"
)

// This file is the skip-ahead half of the engine: the same machine as the
// reference stepper, advancing time by events instead of by single cycles.
// Three mechanisms compose, each independently bit-identical to the per-cycle
// code it replaces (the differential suite in stepmode_diff_test.go checks
// the composition end to end):
//
//  1. bulkPlains issues whole cycles of plain instructions over
//     array-resident lines without entering stepCycle, replaying the exact
//     lookup, LRU, and counter sequence in closed form.
//  2. chargeStall (chargeStallJump here) accounts a stall's dead cycles as
//     one typed Slots delta per attribution interval instead of per cycle.
//  3. runWindow (windowCyclesSkip here) jumps wrong-path dead stretches —
//     fill waits, decode bubbles, end-of-phase stalls — to the next cycle at
//     which the wrong-path fetch unit can actually do something.
//
// Equivalence rests on one invariant of the reference loops: a skipped cycle
// has no observable effect other than a width-sized Lost/branch-slot
// contribution. Delayed predictor updates and speculation-slot retirements
// are monotone pops whose effects are only observable at predictor queries
// and spec-limit checks, and those happen only inside fetch-cycle code —
// so applying them lazily at the next fetch cycle replays the exact
// update/query interleaving the per-cycle code produces.

// plainBulkMemo is one entry of the bulk-issue residency memo: the effects of
// a previously executed bulkPlains run of `total` instructions starting at
// pc0, proven all-resident under cache epoch `epoch`. While the epoch is
// unchanged the run's lines are necessarily still resident, so a re-execution
// (a loop body re-entered between misses) replays as three counter adds
// instead of a per-line probe walk. Entries are keyed (pc0, total): the same
// record prefix under a different budget or flush cap simply occupies a
// different slot. A zeroed entry can never hit (cache epochs start at 1).
type plainBulkMemo struct {
	pc0   isa.Addr
	epoch uint64
	total int32
	// acc is the cache accesses the run performs; segs its line-segment
	// count (= structural crossings, the first conditional on lastInstLine).
	acc  int32
	segs int32
}

// plainMemoBits sizes the direct-mapped memo table (collisions overwrite).
const plainMemoBits = 12

// plainMemoIdx hashes a memo key to its table slot.
func plainMemoIdx(pc0 isa.Addr, total int) int {
	h := (uint64(pc0)/isa.InstBytes ^ uint64(total)<<40) * 0x9e3779b97f4a7c15
	return int(h >> (64 - plainMemoBits))
}

// bulkPlains issues as many whole fetch cycles of plain instructions as can
// be proven trivial: every line under the run resident in the cache array
// (buffer- or victim-satisfied lookups, misses, branches, budget and flush
// boundaries all end the run and fall back to stepCycle). It returns true
// when it issued at least one full cycle. Callers guarantee !e.done() and
// the fastIssue gate (no event probe, no access callback, no prefetch
// engine). A sample-only probe is compatible: sample boundaries that fall
// inside the bulk delta are segmented out by emitBulkSamples rather than
// ending the run.
func (e *Engine) bulkPlains() bool {
	if !e.haveRec {
		return false
	}
	w := e.cfg.FetchWidth

	// Plain instructions left in the current record (a terminal branch stays
	// for stepCycle, as does any partial final cycle).
	rem := e.cur.N - e.curIdx
	if e.cur.BrKind != isa.Plain {
		rem--
	}
	cyc := e.divW(rem)
	if cyc == 0 {
		return false
	}

	// The reference stepper checks the instruction budget per slot but only
	// ever stops mid-cycle; full cycles are safe while a whole width fits.
	if e.cfg.MaxInsts > 0 {
		if budget := e.divW64(e.cfg.MaxInsts - e.res.Insts); budget < int64(cyc) {
			cyc = int(budget)
		}
	}
	// A context-switch flush fires at the first cycle whose starting
	// instruction count reaches nextFlushAt; that cycle must go through
	// stepCycle. Cycle k of the bulk starts at Insts + k*w.
	if e.cfg.FlushInterval > 0 {
		left := e.nextFlushAt - e.res.Insts
		if left <= 0 {
			return false
		}
		if allowed := e.divW64(left + int64(w) - 1); allowed < int64(cyc) {
			cyc = int(allowed)
		}
	}
	if cyc == 0 {
		return false
	}

	pc0 := e.cur.Start.Plus(e.curIdx)
	total := cyc * w
	ipl := e.geom.InstPerLine()

	// Pre-effect state, captured for emitBulkSamples: a sample boundary
	// inside the run must report the counters as they stood when its
	// boundary instruction issued, not the run's final totals.
	acc0 := e.res.RightPathAccesses
	lastLine0, haveLast0 := e.lastInstLine, e.haveLastLine

	// Memo fast path: this exact run was executed before and nothing has
	// entered or left the cache array since, so its lines are still resident
	// and its effects are the recorded totals. Recency updates are skipped;
	// sound because the memo is only enabled direct-mapped (see BulkHits).
	if e.plainMemo != nil {
		if m := &e.plainMemo[plainMemoIdx(pc0, total)]; m.pc0 == pc0 &&
			int(m.total) == total && m.epoch == e.ic.Epoch() {
			e.ic.BulkHits(int(m.acc))
			line0 := e.geom.Line(pc0)
			n := int64(m.segs)
			if e.haveLastLine && line0 == e.lastInstLine {
				n--
			}
			e.res.RightPathAccesses += n
			e.lastInstLine = line0 + uint64(m.segs) - 1
			e.haveLastLine = true
			e.emitBulkSamples(pc0, total, acc0, lastLine0, haveLast0)
			e.emitBulkAdapt(pc0, total, acc0, lastLine0, haveLast0)
			e.finishBulk(total, cyc)
			return true
		}
	}

	// Pass 1 (pure): resolve each line segment of the run to its array way,
	// cutting at the first line not resident. Only whole cycles before the
	// cut may issue in bulk; the cycle containing the non-resident crossing
	// needs the full policy machinery. The ways are kept so the effects pass
	// does not look every line up a second time.
	ways := e.wayScratch[:0]
	seg := e.geom.InstsLeftInLine(pc0)
	line := e.geom.Line(pc0)
	for i := 0; i < total; i, seg, line = i+seg, ipl, line+1 {
		h := e.ic.ProbeWay(line)
		if h == nil {
			cyc = e.divW(i)
			if cyc == 0 {
				e.wayScratch = ways
				return false
			}
			total = cyc * w
			break
		}
		ways = append(ways, h)
	}
	e.wayScratch = ways

	// Pass 2 (effects): replay, per line segment [a, b) of the run, what the
	// reference stepper does. It looks a line up at slot 0 of every cycle
	// and at every in-cycle crossing, so a segment sees one Access per
	// multiple of w in [a, b), plus one more when the segment starts
	// mid-cycle (the crossing itself). All hit; TouchWay applies them in
	// bulk on the way pass 1 resolved. The segment's first instruction is a
	// structural reference unless it continues the line the previous fetch
	// ended on.
	seg = e.geom.InstsLeftInLine(pc0)
	line = e.geom.Line(pc0)
	acc, nsegs := 0, 0
	for a, j := 0, 0; a < total; a, seg, line, j = a+seg, ipl, line+1, j+1 {
		b := a + seg
		if b > total {
			b = total
		}
		n := e.ceilDivW(b) - e.ceilDivW(a)
		if e.modW(a) != 0 {
			n++
		}
		e.ic.TouchWay(ways[j], n)
		acc += n
		nsegs++
		if !e.haveLastLine || line != e.lastInstLine {
			e.res.RightPathAccesses++
			e.lastInstLine = line
			e.haveLastLine = true
		}
	}

	// Record the run for replay while the residency proof holds. Touches do
	// not move the epoch, so the entry is current as of this very state.
	if e.plainMemo != nil {
		e.plainMemo[plainMemoIdx(pc0, total)] = plainBulkMemo{
			pc0: pc0, epoch: e.ic.Epoch(),
			total: int32(total), acc: int32(acc), segs: int32(nsegs),
		}
	}

	e.emitBulkSamples(pc0, total, acc0, lastLine0, haveLast0)
	e.emitBulkAdapt(pc0, total, acc0, lastLine0, haveLast0)
	e.finishBulk(total, cyc)
	return true
}

// emitBulkSamples segments a bulk delta of `total` instructions starting at
// pc0 (with the pre-run access counters and last-line state passed in) at
// every sample boundary it straddles, emitting one interpolated snapshot per
// boundary — exactly the snapshot the reference stepper emits right after
// issuing the boundary instruction. Within a bulk run every lookup hits and
// no stall, miss, or bus activity occurs, so only Cycle, Insts, and the
// structural access count move: the boundary instruction k (1-based) issues
// in bulk cycle (k-1)/width, and instructions 1..k reference the lines they
// span, minus the leading segment when it continues the line the previous
// fetch ended on. Called before finishBulk, while e.cy and e.res.Insts still
// hold the run's starting values.
func (e *Engine) emitBulkSamples(pc0 isa.Addr, total int, acc0 int64, lastLine0 uint64, haveLast0 bool) {
	if e.sampler == nil {
		return
	}
	insts0 := e.res.Insts
	if insts0+int64(total) < e.nextSample {
		return
	}
	line0 := e.geom.Line(pc0)
	for ; e.nextSample <= insts0+int64(total); e.nextSample += e.cfg.SampleInterval {
		k := e.nextSample - insts0
		segs := int64(e.geom.Line(pc0.Plus(int(k-1))) - line0 + 1)
		if haveLast0 && line0 == lastLine0 {
			segs--
		}
		e.sampler.Sample(obs.Snapshot{
			Cycle:             e.cy + Cycles(e.divW64(k-1)),
			Insts:             e.nextSample,
			Lost:              e.res.Lost,
			RightPathAccesses: acc0 + segs,
			RightPathMisses:   e.res.RightPathMisses,
			BusTransfers:      e.bus.Transfers,
			BusBusy:           e.busAccCy,
		})
	}
}

// emitBulkAdapt fires the Adaptive decision boundaries a bulk delta
// straddles, interpolating each boundary's cycle and access coordinates with
// the same closed forms emitBulkSamples uses (within a bulk run only Cycle,
// Insts, and the structural access count move — no miss, stall, or bus
// activity, and crucially no policy consultation). Deferring the active-
// policy writes to here is therefore behaviour-identical to the reference
// stepper's mid-stream switches, while the chooser still sees the exact
// per-boundary digests it would see there. Called before finishBulk, while
// e.cy and e.res.Insts still hold the run's starting values.
func (e *Engine) emitBulkAdapt(pc0 isa.Addr, total int, acc0 int64, lastLine0 uint64, haveLast0 bool) {
	if e.chooser == nil {
		return
	}
	insts0 := e.res.Insts
	if insts0+int64(total) < e.nextAdapt {
		return
	}
	line0 := e.geom.Line(pc0)
	// adaptAt advances e.nextAdapt by the adapt interval on every call.
	for e.nextAdapt <= insts0+int64(total) {
		k := e.nextAdapt - insts0
		segs := int64(e.geom.Line(pc0.Plus(int(k-1))) - line0 + 1)
		if haveLast0 && line0 == lastLine0 {
			segs--
		}
		e.adaptAt(e.cy+Cycles(e.divW64(k-1)), e.nextAdapt, acc0+segs)
	}
}

// finishBulk is the shared tail of a bulk issue: advance the instruction
// count, the trace cursor, and the clock past `cyc` whole fetch cycles.
func (e *Engine) finishBulk(total, cyc int) {
	e.res.Insts += int64(total)
	e.curIdx += total
	e.cy += Cycles(cyc)
	e.lastIssueCy = e.cy - 1
	if e.curIdx >= e.cur.N {
		// Exactly consumed an all-plain record: the reference stepper loads
		// the next record from the last consumeInst of the final cycle.
		e.loadRecord()
	}
}

// divW divides by the fetch width, as a shift when the width is a power of
// two (the common case; a variable-divisor divide costs tens of cycles and
// the bulk path needs several per record).
func (e *Engine) divW(x int) int {
	if e.wPow2 {
		return x >> e.wShift
	}
	return x / e.cfg.FetchWidth
}

// divW64 is divW for instruction-count arithmetic.
func (e *Engine) divW64(x int64) int64 {
	if e.wPow2 {
		return x >> e.wShift
	}
	return x / int64(e.cfg.FetchWidth)
}

// ceilDivW rounds up to whole fetch cycles.
func (e *Engine) ceilDivW(x int) int { return e.divW(x + e.cfg.FetchWidth - 1) }

// modW reduces a slot index modulo the fetch width.
func (e *Engine) modW(x int) int {
	if e.wPow2 {
		return x & e.wMask
	}
	return x % e.cfg.FetchWidth
}

// chargeStallJump is chargeStall without the per-cycle loop: each attribution
// interval contributes one bulk Slots delta, and probe segments are merged on
// equal components exactly as emitStallSegments does. A cycle belongs to the
// first phase whose `until` exceeds it, trailing cycles to the last phase —
// so phase i covers the interval from the previous phases' high-water mark to
// its own until, clamped to resumeAt.
func (e *Engine) chargeStallJump(slotsIssued int, phases []chargePhase, resumeAt Cycles) {
	w := e.cfg.FetchWidth
	first := e.cy
	cur := first
	segStart := first
	var segComp metrics.Component
	var segSlots Slots
	haveSeg := false
	for i := 0; i <= len(phases); i++ {
		var until Cycles
		var comp metrics.Component
		if i < len(phases) {
			until = phases[i].until
			comp = phases[i].comp
		} else {
			until = resumeAt
			comp = phases[len(phases)-1].comp
		}
		if until > resumeAt {
			until = resumeAt
		}
		if until <= cur {
			continue
		}
		lost := (until - cur).Slots(w)
		if cur == first {
			lost -= Slots(slotsIssued)
		}
		e.res.Lost.Add(comp, lost)
		if e.probe != nil {
			if haveSeg && comp != segComp {
				e.probe.Stall(segStart, cur, segComp, segSlots)
				segStart, segSlots = cur, 0
			}
			segComp, haveSeg = comp, true
			segSlots += lost
		}
		cur = until
	}
	if e.probe != nil && haveSeg {
		e.probe.Stall(segStart, resumeAt, segComp, segSlots)
	}
	e.cy = resumeAt
}

// windowCyclesSkip is the skip-ahead body of runWindow's cycle loop: dead
// cycles — wrong-path fetch waiting on a fill, a decode bubble, a blocking
// fill, or stalled out for the rest of a phase — contribute nothing but a
// width of branch-window slots each, so the clock jumps straight to the next
// cycle at which fetch can proceed (never past a phase boundary, because the
// redirect at a boundary clears fetch-side stalls). It returns the slots
// charged, mirroring windowCyclesRef.
func (e *Engine) windowCyclesSkip(phases []wpPhase, st *wpState, windowEnd Cycles) Slots {
	width := Slots(e.cfg.FetchWidth)
	var slots Slots
	phaseIdx := -1
	wc := e.cy + 1
	for wc < windowEnd {
		idx := len(phases) - 1
		for i, p := range phases {
			if wc < p.until {
				idx = i
				break
			}
		}
		if idx != phaseIdx {
			phaseIdx = idx
			st.wpc = phases[idx].start
			st.stalled = false
			st.bubbleUntil = 0
			st.haveLastLine = false
		}

		// Next cycle at which this phase can fetch: past every pending
		// completion, clamped to the phase boundary and the window end.
		t := wc
		if st.stalled {
			t = phases[idx].until
		} else {
			if st.blockUntil > t {
				t = st.blockUntil
			}
			if st.fillWaitUntil > t {
				t = st.fillWaitUntil
			}
			if st.bubbleUntil > t {
				t = st.bubbleUntil
			}
			if u := phases[idx].until; t > u {
				t = u
			}
		}
		if t > windowEnd {
			t = windowEnd
		}
		if t > wc {
			// Bulk-account the dead stretch [wc, t): in the reference loop
			// each of these cycles adds one width of branch-window slots and
			// nothing else (updates/retires are applied lazily below).
			lost := (t - wc).Slots(e.cfg.FetchWidth)
			e.res.Lost.Add(metrics.Branch, lost)
			slots += lost
			wc = t
			continue
		}

		e.res.Lost.Add(metrics.Branch, width)
		slots += width
		if e.updatesPending(wc) {
			e.applyUpdates(wc)
		}
		e.retireConds(wc)
		e.prefCandValid = false
		e.targetCandValid = false
		e.wrongPathFetchCycle(wc, phases[phaseIdx], st)
		e.tryPrefetch(wc)
		wc++
	}
	return slots
}
