package core

import "specfetch/internal/metrics"

// Cycles and Slots are the engine's two time-like dimensions, aliased from
// internal/metrics so that every layer (core, obs, cache, experiments) names
// the same defined types without an import cycle: obs must not import core,
// and metrics is the one package all of them already share. See
// metrics.Cycles / metrics.Slots for the unit contract and the conversion
// helpers (Cycles.Slots(width), Slots.Cycles(width), Int64), and the simlint
// `unitcheck` analyzer for the rules the compiler cannot enforce.
type (
	Cycles = metrics.Cycles
	Slots  = metrics.Slots
)
