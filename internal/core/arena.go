package core

import (
	"errors"

	"specfetch/internal/cache"
)

// errArenaBusy is returned when two engines try to borrow one arena at once.
var errArenaBusy = errors.New("core: arena already in use by another engine")

// Arena is reusable per-run engine state. A sweep runs thousands of cells,
// and each fresh engine otherwise reallocates the same queues, line
// buffers, and cache arrays; threading one Arena per worker goroutine
// (Config.Arena) makes the steady-state simulation loop allocation-free
// across cells. Reuse is behaviour-neutral: caches are Reset to the exact
// state a fresh build would have, and queues are resliced empty, so results
// are bit-identical with or without an arena (asserted by the differential
// suite).
//
// An Arena is in-process-only state, like Config.Probe: it never crosses
// the distsweep wire (FromConfig drops it), and it must not be shared by
// two engines running concurrently — NewEngine fails loudly if it is.
type Arena struct {
	condSlots  []Cycles
	btbQ       []btbUpdate
	resolveQ   []resolveUpdate
	resumeBufs []cache.LineBuffer
	prefBufs   []cache.LineBuffer
	wayScratch []cache.WayHandle

	// plainMemo is the bulk-issue residency memo, kept across runs. Entries
	// carry the epoch of the cache instance they were proven on, so they are
	// only reusable while that same instance is in play (Reset advances its
	// epoch, staling every prior entry); a rebuilt cache or a different fetch
	// width requires a cleared table (memoIC/memoWidth track both).
	plainMemo []plainBulkMemo
	memoIC    *cache.ICache
	memoWidth int

	ic     *cache.ICache
	icCfg  cache.Config
	haveIC bool
	l2     *cache.ICache
	l2Cfg  cache.Config
	haveL2 bool

	// busy guards against two live engines borrowing the same arena.
	busy bool
}

// NewArena returns an empty arena. The first run populates it; later runs
// with compatible configurations reuse the storage.
func NewArena() *Arena { return &Arena{} }

// takeCache returns a cache for cfg, reusing (and resetting) the cached
// instance when its geometry matches.
func takeCache(have bool, c *cache.ICache, prev cache.Config, cfg cache.Config) (*cache.ICache, error) {
	if have && c != nil && prev == cfg {
		c.Reset()
		return c, nil
	}
	return cache.New(cfg)
}

// acquire borrows the arena's storage into the engine. Caches whose
// configuration changed are rebuilt (and kept for the next run). nbuf is
// the resume/prefetch buffer file size for this run.
func (a *Arena) acquire(e *Engine, nbuf int) error {
	if a.busy {
		return errArenaBusy
	}
	ic, err := takeCache(a.haveIC, a.ic, a.icCfg, e.cfg.ICache)
	if err != nil {
		return err
	}
	a.ic, a.icCfg, a.haveIC = ic, e.cfg.ICache, true
	e.ic = ic
	if e.cfg.L2 != nil {
		l2, err := takeCache(a.haveL2, a.l2, a.l2Cfg, *e.cfg.L2)
		if err != nil {
			return err
		}
		a.l2, a.l2Cfg, a.haveL2 = l2, *e.cfg.L2, true
		e.l2 = l2
	}
	e.condSlots = a.condSlots[:0]
	e.btbQ = a.btbQ[:0]
	e.resolveQ = a.resolveQ[:0]
	e.wayScratch = a.wayScratch[:0]
	e.resumeBufs = takeBufs(a.resumeBufs, nbuf)
	e.prefBufs = takeBufs(a.prefBufs, nbuf)
	a.busy = true
	return nil
}

// takeMemo returns the bulk-issue residency memo for a run using cache ic at
// the given fetch width, clearing it when either differs from the previous
// borrowing run (entry validity is per cache instance and per width; see the
// field comment).
func (a *Arena) takeMemo(ic *cache.ICache, width int) []plainBulkMemo {
	if a.plainMemo == nil {
		a.plainMemo = make([]plainBulkMemo, 1<<plainMemoBits)
	} else if ic != a.memoIC || width != a.memoWidth {
		clear(a.plainMemo)
	}
	a.memoIC, a.memoWidth = ic, width
	return a.plainMemo
}

// takeBufs returns n cleared line buffers, reusing prev's backing array
// when it is large enough.
func takeBufs(prev []cache.LineBuffer, n int) []cache.LineBuffer {
	if cap(prev) < n {
		return make([]cache.LineBuffer, n)
	}
	s := prev[:n]
	for i := range s {
		s[i].Clear()
	}
	return s
}

// release returns the (possibly grown) storage to the arena after a run.
func (a *Arena) release(e *Engine) {
	a.condSlots = e.condSlots[:0]
	a.btbQ = e.btbQ[:0]
	a.resolveQ = e.resolveQ[:0]
	// Way handles go stale on the next run's fills; keep only the capacity.
	a.wayScratch = e.wayScratch[:0]
	a.resumeBufs = e.resumeBufs
	a.prefBufs = e.prefBufs
	a.busy = false
}
