package core

import (
	"reflect"
	"sync"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// FuzzStepModeEquivalence is the property-based arm of the differential
// suite: the fuzzer drives the full Config knob space (non-power-of-two
// fetch widths, minimal latencies, tiny caches, every extension) plus the
// walker seed, and every input must yield bit-identical final Results from
// the skip-ahead core and the reference stepper. `go test` runs the seeded
// corpus below as regular unit cases; `go test -fuzz=FuzzStepModeEquivalence
// ./internal/core` explores beyond it.

// fuzzBenches builds one synthetic benchmark per stock profile, once per
// process (fuzz workers reuse the process, so this amortizes).
var fuzzBenches = sync.OnceValue(func() []*synth.Bench {
	ps := synth.Profiles()
	bs := make([]*synth.Bench, len(ps))
	for i, p := range ps {
		bs[i] = synth.MustBuild(p)
	}
	return bs
})

// fuzzConfig decodes a 46-bit knob word into a Config. Fields are consumed
// in a fixed order so corpus entries stay interpretable; every decoded value
// lands in (or is clamped to) its legal range, and Validate is still run on
// the result as a belt-and-braces skip.
func fuzzConfig(bits uint64) Config {
	take := func(n uint) uint64 {
		v := bits & (1<<n - 1)
		bits >>= n
		return v
	}
	cfg := DefaultConfig()
	// Static policies only: Adaptive needs a chooser, and its bulk-boundary
	// equivalence has its own differential suite (adapt_test.go).
	cfg.Policy = Policies()[take(3)%uint64(len(Policies()))]
	cfg.FetchWidth = int(take(3)) + 1    // 1..8, non-powers of two included
	cfg.MaxUnresolved = int(take(2)) + 1 // 1..4
	cfg.MissPenalty = int(take(5)) + 1   // 1..32
	cfg.DecodeLatency = int(take(2)) + 1 // 1..4
	cfg.ResolveLatency = cfg.DecodeLatency + int(take(2))
	cfg.ICache.SizeBytes = 1024 << take(2) // 1K..8K
	cfg.ICache.LineBytes = 16 << take(1)   // 16 or 32
	cfg.ICache.Assoc = 1 << take(1)        // 1 or 2
	cfg.ICache.VictimLines = int(take(2))  // 0..3
	cfg.MSHRs = int(take(2))               // 0..3
	cfg.RASDepth = int(take(2)) * 4        // 0, 4, 8, 12
	cfg.NextLinePrefetch = take(1) == 1
	if take(1) == 1 {
		cfg.NextLinePrefetch = true
		cfg.TargetPrefetch = true
	}
	cfg.StreamDepth = int(take(2)) // 0..3
	if cfg.StreamDepth > 0 {
		cfg.NextLinePrefetch = true
	}
	cfg.PipelinedMemory = take(1) == 1
	if take(1) == 1 {
		l2 := cache.Config{SizeBytes: 16 * 1024, LineBytes: cfg.ICache.LineBytes, Assoc: 2}
		cfg.L2 = &l2
		cfg.L2Latency = 1 + int(take(2))
		if cfg.L2Latency > cfg.MissPenalty {
			cfg.L2Latency = cfg.MissPenalty
		}
	} else {
		take(2)
	}
	if take(1) == 1 {
		cfg.FlushInterval = 500 + int64(take(10))
	} else {
		take(10)
	}
	return cfg
}

func FuzzStepModeEquivalence(f *testing.F) {
	// The seeded corpus covers each structural regime at least once: the
	// paper baseline, minimal latencies, narrow and wide fetch, every
	// extension knob, and a few dense words that set many at a time.
	f.Add(uint64(0), uint64(1), uint8(0))                  // near-baseline, policy 0
	f.Add(uint64(0x0000_0000_0000_0001), uint64(2), uint8(1))
	f.Add(uint64(0x0000_0000_0000_ffff), uint64(3), uint8(2))  // min penalty regime
	f.Add(uint64(0x0000_0000_ffff_0000), uint64(4), uint8(3))  // cache geometry bits
	f.Add(uint64(0x0000_3fff_0000_0000), uint64(5), uint8(4))  // prefetch + L2 bits
	f.Add(uint64(0x3fff_c000_0000_0000), uint64(6), uint8(5))  // flush bits
	f.Add(uint64(0x1234_5678_9abc_def0), uint64(7), uint8(6))  // dense mixed
	f.Add(uint64(0xfedc_ba98_7654_3210), uint64(8), uint8(9))  // dense mixed
	f.Add(uint64(0xaaaa_aaaa_aaaa_aaaa), uint64(9), uint8(11)) // alternating
	f.Add(uint64(0x5555_5555_5555_5555), uint64(10), uint8(12))

	f.Fuzz(func(t *testing.T, bits, seed uint64, profileIdx uint8) {
		cfg := fuzzConfig(bits)
		if err := cfg.Validate(); err != nil {
			t.Skip(err)
		}
		benches := fuzzBenches()
		bench := benches[int(profileIdx)%len(benches)]

		const insts = 6_000
		cfg.MaxInsts = insts
		runMode := func(mode StepMode, arena *Arena) (Result, error) {
			c := cfg
			c.StepMode = mode
			c.Arena = arena
			rd := trace.NewLimitReader(bench.NewWalker(seed), insts+insts/4)
			return Run(c, bench.Image(), rd, bpred.NewDefaultDecoupled())
		}
		ref, refErr := runMode(StepReference, nil)
		fast, fastErr := runMode(StepSkipAhead, NewArena())
		switch {
		case (refErr == nil) != (fastErr == nil):
			t.Fatalf("error mismatch: reference %v, skipahead %v\ncfg: %+v", refErr, fastErr, cfg)
		case refErr != nil:
			if refErr.Error() != fastErr.Error() {
				t.Fatalf("errors differ: reference %q, skipahead %q\ncfg: %+v", refErr, fastErr, cfg)
			}
		case !reflect.DeepEqual(ref, fast):
			t.Fatalf("Results differ (profile %s, seed %d)\ncfg: %+v\nreference: %+v\nskipahead: %+v",
				bench.Profile().Name, seed, cfg, ref, fast)
		}
	})
}
