package core

import (
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// TestTargetPrefetch: a trained taken branch whose target line is absent
// gets its target prefetched; with the extension off, the target access
// misses.
func TestTargetPrefetch(t *testing.T) {
	// Line 0 loops via a conditional; after warmup the trace jumps to a
	// distant line that target prefetching can cover.
	p := newProg(t, 0)
	p.plains(7)
	p.inst(isa.CondBranch, 8*8*4) // target: line 8
	p.plains(8 * 8)               // filler lines 1..8
	img := p.build()

	recs := []trace.Record{
		// Warm up: not-taken twice (trains PHT toward not-taken... but we
		// need the branch predicted with a known target). Simpler: take it
		// on the first execution after a not-taken warmup is unnecessary —
		// first execution is predicted taken (weak counter) and misfetches;
		// second execution has the BTB entry, so TargetPrefetch can arm.
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: false},
		{Start: 32, N: 8, BrKind: isa.Plain}, // falls into line 1
		// No way back without a branch; end here.
	}
	_ = recs

	// Build a cleaner scenario: a loop line whose conditional is taken
	// every iteration back to line 0, with a final not-taken execution
	// falling through to line 1. TargetPrefetch arms the (resident) target
	// each iteration — which proves nothing. So instead measure globally on
	// a synthetic benchmark: combined prefetching must reduce right-path
	// misses versus next-line alone and issue more prefetches.
	bench := synth.MustBuild(synth.GCC())
	const insts = 150_000

	runWith := func(mut func(*Config)) Result {
		cfg := DefaultConfig()
		cfg.Policy = Resume
		cfg.MaxInsts = insts
		mut(&cfg)
		res, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := runWith(func(c *Config) {})
	next := runWith(func(c *Config) { c.NextLinePrefetch = true })
	tgt := runWith(func(c *Config) { c.TargetPrefetch = true })
	comb := runWith(func(c *Config) { c.NextLinePrefetch = true; c.TargetPrefetch = true })

	if tgt.Traffic.PrefetchFills == 0 {
		t.Fatal("target prefetching issued nothing")
	}
	if tgt.RightPathMisses >= base.RightPathMisses {
		t.Errorf("target prefetch: misses %d not below base %d",
			tgt.RightPathMisses, base.RightPathMisses)
	}
	if comb.RightPathMisses >= base.RightPathMisses {
		t.Errorf("combined prefetch: misses %d not below base %d",
			comb.RightPathMisses, base.RightPathMisses)
	}
	// Combined issues at least as many prefetches as next-line alone.
	if comb.Traffic.PrefetchFills < next.Traffic.PrefetchFills {
		t.Errorf("combined prefetches %d below next-line %d",
			comb.Traffic.PrefetchFills, next.Traffic.PrefetchFills)
	}
	_ = img
}

// TestStreamPrefetch: sequential code with a stream depth keeps the
// prefetcher running ahead, beating plain next-line prefetching on misses.
func TestStreamPrefetch(t *testing.T) {
	const lines = 32
	img := newProg(t, 0).plains(lines * 8).build()
	recs := []trace.Record{{Start: 0, N: lines * 8, BrKind: isa.Plain}}

	base := run(t, cfgWith(Oracle), img, recs)

	cfg := cfgWith(Oracle)
	cfg.StreamDepth = 4
	stream := run(t, cfg, img, recs)

	if stream.Traffic.PrefetchFills == 0 {
		t.Fatal("stream prefetching issued nothing")
	}
	if stream.Cycles >= base.Cycles {
		t.Errorf("stream cycles %d not below base %d", stream.Cycles, base.Cycles)
	}
	if stream.RightPathMisses >= base.RightPathMisses {
		t.Errorf("stream misses %d not below base %d", stream.RightPathMisses, base.RightPathMisses)
	}
}

// TestPipelinedMemoryRemovesBusWaits: with the pipelined interface, bus
// contention components disappear and aggressive policies improve at long
// latency.
func TestPipelinedMemoryRemovesBusWaits(t *testing.T) {
	bench := synth.MustBuild(synth.Groff())
	const insts = 150_000

	runWith := func(pipe bool) Result {
		cfg := DefaultConfig()
		cfg.Policy = Resume
		cfg.MissPenalty = 20
		cfg.NextLinePrefetch = true
		cfg.PipelinedMemory = pipe
		cfg.MaxInsts = insts
		res, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := runWith(false)
	pipe := runWith(true)

	if serial.Lost[metrics.Bus] == 0 {
		t.Fatal("serial bus shows no contention at 20 cycles with prefetch; scenario broken")
	}
	// Same-line fill waits remain (they are latency, not contention), but
	// cross-transfer contention disappears, so the bus component must
	// shrink and overall performance improve.
	if pipe.Lost[metrics.Bus] >= serial.Lost[metrics.Bus] {
		t.Errorf("pipelined bus slots %d not below serial %d",
			pipe.Lost[metrics.Bus], serial.Lost[metrics.Bus])
	}
	if pipe.TotalISPI() >= serial.TotalISPI() {
		t.Errorf("pipelined ISPI %.3f not below serial %.3f", pipe.TotalISPI(), serial.TotalISPI())
	}
}

// TestCoupledBTBWorseThanDecoupled reproduces the Calder & Grunwald
// observation the paper cites: the decoupled design predicts better.
func TestCoupledBTBWorseThanDecoupled(t *testing.T) {
	bench := synth.MustBuild(synth.Ditroff())
	const insts = 150_000
	cfg := DefaultConfig()
	cfg.Policy = Oracle
	cfg.MaxInsts = insts

	runWith := func(pred bpred.Predictor) Result {
		res, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), pred)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	dec := runWith(bpred.NewDefaultDecoupled())
	coupled, err := bpred.NewCoupled(bpred.DefaultBTBConfig())
	if err != nil {
		t.Fatal(err)
	}
	cpl := runWith(coupled)
	static := runWith(bpred.Static{})

	if dec.TotalISPI() >= cpl.TotalISPI() {
		t.Errorf("decoupled ISPI %.3f not below coupled %.3f", dec.TotalISPI(), cpl.TotalISPI())
	}
	if cpl.TotalISPI() >= static.TotalISPI() {
		t.Errorf("coupled ISPI %.3f not below static %.3f", cpl.TotalISPI(), static.TotalISPI())
	}
}

// TestStreamDepthValidation: negative depths are rejected.
func TestStreamDepthValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamDepth = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative stream depth accepted")
	}
}

// TestExtensionsPreserveInvariants: the smoke invariants hold with every
// extension enabled at once.
func TestExtensionsPreserveInvariants(t *testing.T) {
	bench := synth.MustBuild(synth.Li())
	const insts = 100_000
	for _, pol := range Policies() {
		cfg := DefaultConfig()
		cfg.Policy = pol
		cfg.NextLinePrefetch = true
		cfg.TargetPrefetch = true
		cfg.StreamDepth = 4
		cfg.PipelinedMemory = true
		cfg.MaxInsts = insts
		res, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		total := res.Cycles.Slots(cfg.FetchWidth)
		got := Slots(res.Insts) + res.Lost.Total()
		if diff := total - got; diff < 0 || diff >= Slots(cfg.FetchWidth) {
			t.Errorf("%v: slot conservation broken (diff %d)", pol, diff)
		}
		// Note: the bus component may be non-zero even with pipelined
		// memory — waiting for an in-flight fill of the very line being
		// fetched is charged there, and that latency does not pipeline
		// away.
	}
}

// TestRASEliminatesReturnMispredicts: with a RAS, the BTB's stale return
// targets stop costing mispredicts on a call-heavy workload.
func TestRASEliminatesReturnMispredicts(t *testing.T) {
	bench := synth.MustBuild(synth.Li())
	const insts = 150_000

	runWith := func(ras int) Result {
		cfg := DefaultConfig()
		cfg.Policy = Oracle
		cfg.RASDepth = ras
		cfg.MaxInsts = insts
		res, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := runWith(0)
	ras := runWith(16)

	if base.Events.BTBMispredicts == 0 {
		t.Fatal("baseline shows no BTB target mispredicts; scenario broken")
	}
	if ras.Events.BTBMispredicts >= base.Events.BTBMispredicts {
		t.Errorf("RAS BTB mispredicts %d not below baseline %d",
			ras.Events.BTBMispredicts, base.Events.BTBMispredicts)
	}
	if ras.TotalISPI() >= base.TotalISPI() {
		t.Errorf("RAS ISPI %.3f not below baseline %.3f", ras.TotalISPI(), base.TotalISPI())
	}
}

// TestRASDirected: a call followed by a return whose BTB entry is stale is
// still predicted perfectly through the RAS.
func TestRASDirected(t *testing.T) {
	p := newProg(t, 0)
	p.plains(3)
	p.inst(isa.Call, 32)  // index 3 -> helper at index 8
	p.plains(4)           // indices 4..7 (return lands at 16 = index 4)
	p.plains(3)           // helper body: indices 8..10
	p.inst(isa.Return, 0) // index 11
	img := p.build()

	// Two call/return rounds from different... the same call site; the
	// return target is always index 4, so even the BTB gets it right after
	// round one. The point here: with a RAS the *first* return (BTB miss)
	// is still a misfetch (identification), but never a BTB mispredict.
	recs := []trace.Record{
		{Start: 0, N: 4, BrKind: isa.Call, Taken: true, Target: 32},
		{Start: 32, N: 4, BrKind: isa.Return, Taken: true, Target: 16},
		{Start: 16, N: 4, BrKind: isa.Plain},
	}
	cfg := cfgWith(Oracle)
	cfg.RASDepth = 8
	res := run(t, cfg, img, recs)
	if res.Events.BTBMispredicts != 0 {
		t.Errorf("BTB mispredicts = %d, want 0 with RAS", res.Events.BTBMispredicts)
	}
}

// TestVictimCacheReducesConflicts: a direct-mapped cache ping-ponging
// between two conflicting lines stops missing once a victim buffer holds
// the loser.
func TestVictimCacheReducesConflicts(t *testing.T) {
	// Two lines 256 apart conflict in a 256-set direct-mapped 8K cache:
	// line 0 (byte 0) and line 256 (byte 8192). The trace ping-pongs
	// between a block in each.
	q := newProg(t, 0)
	q.plains(7)
	q.inst(isa.Jump, 8192) // index 7: line 0 -> line 256
	q.plains(2040)         // filler, indices 8..2047
	q.plains(7)            // line 256 block, indices 2048..2054
	q.inst(isa.Jump, 0)    // index 2055: back to line 0
	img2 := q.build()

	var recs []trace.Record
	for i := 0; i < 200; i++ {
		recs = append(recs,
			trace.Record{Start: 0, N: 8, BrKind: isa.Jump, Taken: true, Target: 8192},
			trace.Record{Start: 8192, N: 8, BrKind: isa.Jump, Taken: true, Target: 0},
		)
	}

	base := run(t, cfgWith(Oracle), img2, recs)

	cfg := cfgWith(Oracle)
	cfg.ICache.VictimLines = 4
	vict := run(t, cfg, img2, recs)

	if base.RightPathMisses <= 4 {
		t.Fatalf("baseline conflict misses = %d; scenario broken", base.RightPathMisses)
	}
	if vict.RightPathMisses > 4 {
		t.Errorf("victim cache misses = %d, want <= 4 (cold only)", vict.RightPathMisses)
	}
	if vict.Cycles >= base.Cycles {
		t.Errorf("victim cycles %d not below base %d", vict.Cycles, base.Cycles)
	}
}

// TestMSHRsHelpResumeUnderPressure: with several MSHRs, Resume keeps
// tracking wrong-path fills where the single buffer would stall, and
// overall performance cannot get worse.
func TestMSHRsHelpResumeUnderPressure(t *testing.T) {
	bench := synth.MustBuild(synth.Groff())
	const insts = 150_000

	runWith := func(mshrs int) Result {
		cfg := DefaultConfig()
		cfg.Policy = Resume
		cfg.MissPenalty = 20
		cfg.PipelinedMemory = true // several fills can actually overlap
		cfg.MSHRs = mshrs
		cfg.MaxInsts = insts
		res, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	one := runWith(0)
	four := runWith(4)

	if four.TotalISPI() > one.TotalISPI()+1e-9 {
		t.Errorf("4 MSHRs ISPI %.4f worse than single buffer %.4f",
			four.TotalISPI(), one.TotalISPI())
	}
	if four.Traffic.WrongPathFills < one.Traffic.WrongPathFills {
		t.Errorf("4 MSHRs tracked fewer wrong-path fills (%d) than one (%d)",
			four.Traffic.WrongPathFills, one.Traffic.WrongPathFills)
	}
}

// TestL2Hierarchy: with a large L2 behind a small L1, repeated traversals
// of a working set that fits the L2 but thrashes the L1 pay L2Latency per
// miss instead of the full memory penalty.
func TestL2Hierarchy(t *testing.T) {
	// 16KB loop: thrashes the 8K L1 forever, fits a 64K L2 after one pass.
	k, err := synth.LoopKernel(4096, 1000)
	if err != nil {
		t.Fatal(err)
	}
	const insts = 200_000

	runWith := func(mut func(*Config)) Result {
		cfg := DefaultConfig()
		cfg.Policy = Resume
		cfg.MissPenalty = 20
		cfg.MaxInsts = insts
		if mut != nil {
			mut(&cfg)
		}
		res, err := Run(cfg, k.Image(), k.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	noL2 := runWith(nil)
	l2cfg := cache.Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 4}
	withL2 := runWith(func(c *Config) {
		c.L2 = &l2cfg
		c.L2Latency = 5
	})

	if withL2.Traffic.L2Hits == 0 {
		t.Fatal("no L2 hits on an L2-resident working set")
	}
	// After the cold pass, every fill is an L2 hit.
	hitFrac := float64(withL2.Traffic.L2Hits) / float64(withL2.Traffic.L2Hits+withL2.Traffic.L2Misses)
	if hitFrac < 0.95 {
		t.Errorf("L2 hit fraction %.3f, want > 0.95", hitFrac)
	}
	// 5-cycle fills instead of 20-cycle fills: a large speedup.
	if withL2.Cycles >= noL2.Cycles*2/3 {
		t.Errorf("L2 cycles %d not well below no-L2 %d", withL2.Cycles, noL2.Cycles)
	}
	if noL2.Traffic.L2Hits != 0 || noL2.Traffic.L2Misses != 0 {
		t.Error("L2 counters nonzero without an L2")
	}
}

// TestL2ConfigValidation: broken hierarchies are rejected.
func TestL2ConfigValidation(t *testing.T) {
	good := cache.Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 4}
	muts := []func(*Config){
		func(c *Config) { bad := good; bad.LineBytes = 64; c.L2 = &bad; c.L2Latency = 3 },  // line mismatch
		func(c *Config) { c.L2 = &good; c.L2Latency = 0 },                                  // zero latency
		func(c *Config) { c.L2 = &good; c.L2Latency = 99 },                                 // above memory penalty
		func(c *Config) { bad := good; bad.SizeBytes = 999; c.L2 = &bad; c.L2Latency = 3 }, // invalid L2 geometry
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad L2 config %d accepted", i)
		}
	}
	cfg := DefaultConfig()
	cfg.L2 = &good
	cfg.L2Latency = 5
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid L2 config rejected: %v", err)
	}
}

// TestFlushInterval: periodic cache invalidation (context switches) raises
// the miss ratio, and more frequent switches raise it more.
func TestFlushInterval(t *testing.T) {
	k, err := synth.LoopKernel(1024, 100) // 4KB body: fits the cache
	if err != nil {
		t.Fatal(err)
	}
	const insts = 120_000
	runWith := func(interval int64) Result {
		cfg := DefaultConfig()
		cfg.Policy = Resume
		cfg.FlushInterval = interval
		cfg.MaxInsts = insts
		res, err := Run(cfg, k.Image(), k.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	never := runWith(0)
	rare := runWith(40_000)
	often := runWith(5_000)

	if never.RightPathMisses >= rare.RightPathMisses {
		t.Errorf("flushing did not add misses: %d vs %d", never.RightPathMisses, rare.RightPathMisses)
	}
	if rare.RightPathMisses >= often.RightPathMisses {
		t.Errorf("more flushes did not add more misses: %d vs %d", rare.RightPathMisses, often.RightPathMisses)
	}
	// Roughly one working set reload (~129 lines) per flush.
	flushes := int64(insts / 5_000)
	perFlush := float64(often.RightPathMisses-never.RightPathMisses) / float64(flushes)
	if perFlush < 80 || perFlush > 160 {
		t.Errorf("misses per flush %.1f, want ~129 (one working-set reload)", perFlush)
	}
}
