// Package core implements the paper's contribution: a cycle-level model of a
// speculative superscalar fetch unit, the five instruction-cache fetch
// policies (Oracle, Optimistic, Resume, Pessimistic, Decode), next-line
// prefetching, and the ISPI penalty accounting of the evaluation section.
//
// The simulator is trace driven: the dynamic correct-path instruction stream
// comes from a trace.Reader, while wrong-path excursions after mispredicts
// and misfetches are reconstructed by walking the static program.Image under
// the live branch predictor, exactly as a real fetch unit would.
package core

import (
	"fmt"
	"strings"
)

// Policy selects how I-cache misses encountered during speculative execution
// are handled (paper Table 1).
type Policy int

const (
	// Oracle services a miss only if it is on the right path. It cannot be
	// built (it requires knowing branch outcomes at fetch time) and serves
	// as the yardstick.
	Oracle Policy = iota
	// Optimistic services every miss immediately; the blocking cache stalls
	// fetch until the fill completes, even if the machine learns meanwhile
	// that the miss was down a wrong path.
	Optimistic
	// Resume services every miss, but a one-line resume buffer receives
	// wrong-path fills so the machine can redirect to the correct path the
	// moment a mispredict/misfetch is detected; the fill completes in the
	// background and is written to the cache at the next miss.
	Resume
	// Pessimistic holds a miss until all outstanding branches have resolved
	// and all previous instructions have decoded, then fills only if the
	// miss turned out to be on the correct path.
	Pessimistic
	// Decode holds a miss only until the previous instructions have
	// decoded, guarding against misfetches but not mispredicts.
	Decode
	// Adaptive is the online meta-policy: a Chooser (see Config.Chooser and
	// internal/adaptive) re-selects one of the five static policies at every
	// AdaptInterval instructions, steering miss handling per program phase.
	// It is not one of the paper's policies and is excluded from Policies().
	Adaptive

	numPolicies
)

var policyNames = [numPolicies]string{
	Oracle:      "oracle",
	Optimistic:  "optimistic",
	Resume:      "resume",
	Pessimistic: "pessimistic",
	Decode:      "decode",
	Adaptive:    "adaptive",
}

// String returns the lower-case policy name.
func (p Policy) String() string {
	if p >= 0 && p < numPolicies {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy is the inverse of Policy.String. Chooser strategy names
// ("tournament", "ucb", ...) are deliberately not policies: they select how
// the Adaptive policy decides, not what the fetch unit does on a miss.
func ParsePolicy(s string) (Policy, error) {
	for i, n := range policyNames {
		if n == s {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown policy %q (valid: %s)", s, strings.Join(policyNames[:], ", "))
}

// Policies lists the paper's five static policies in presentation order.
// Adaptive is excluded: every sweep that iterates Policies() compares the
// paper's machines, and the meta-policy is requested explicitly.
func Policies() []Policy {
	return []Policy{Oracle, Optimistic, Resume, Pessimistic, Decode}
}

// IsStatic reports whether p is one of the five directly simulatable miss
// policies — the only values a Chooser may return.
func (p Policy) IsStatic() bool {
	return p >= 0 && p < Adaptive
}

// servicesWrongPathMisses reports whether the policy ever initiates a memory
// fill for a wrong-path miss. For Decode this depends on the window phase
// (mispredict yes, misfetch no), handled at the call site.
func (p Policy) servicesWrongPathMisses() bool {
	switch p {
	case Optimistic, Resume, Decode:
		return true
	default:
		return false
	}
}
