package core

import (
	"math/rand"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/metrics"
	"specfetch/internal/synth"
)

// TestEngineInvariantsUnderRandomConfigs throws randomized (but valid)
// machine configurations at the engine and checks the global invariants
// that must hold for every one of them:
//
//   - no simulation errors,
//   - slot conservation (cycles*width = useful + lost, last-cycle slack),
//   - Oracle/Pessimistic never fill on wrong paths,
//   - force_resolve only for Pessimistic/Decode,
//   - wrong_icache never for Oracle/Resume/Pessimistic,
//   - prefetch traffic only when a prefetcher is on,
//   - deterministic reruns.
func TestEngineInvariantsUnderRandomConfigs(t *testing.T) {
	bench := synth.MustBuild(synth.Ditroff())
	rng := rand.New(rand.NewSource(0xfee1600d))
	const trials = 60
	const insts = 20_000

	for i := 0; i < trials; i++ {
		cfg := DefaultConfig()
		cfg.Policy = Policies()[rng.Intn(len(Policies()))]
		cfg.FetchWidth = 1 << rng.Intn(4)   // 1..8
		cfg.MaxUnresolved = 1 + rng.Intn(8) // 1..8
		cfg.MissPenalty = 1 + rng.Intn(30)  // 1..30
		cfg.DecodeLatency = 1 + rng.Intn(3) // 1..3
		cfg.ResolveLatency = cfg.DecodeLatency + rng.Intn(5)
		cfg.ICache = cache.Config{
			SizeBytes: 1024 << rng.Intn(6), // 1K..32K
			LineBytes: 16 << rng.Intn(3),   // 16..64
			Assoc:     1 << rng.Intn(3),    // 1..4
		}
		if rng.Intn(2) == 0 {
			cfg.ICache.VictimLines = rng.Intn(8)
		}
		cfg.NextLinePrefetch = rng.Intn(2) == 0
		cfg.TargetPrefetch = rng.Intn(3) == 0
		if rng.Intn(3) == 0 {
			cfg.StreamDepth = rng.Intn(6)
		}
		cfg.PipelinedMemory = rng.Intn(3) == 0
		if rng.Intn(3) == 0 {
			cfg.RASDepth = 1 << rng.Intn(6)
		}
		if rng.Intn(3) == 0 {
			cfg.MSHRs = 1 + rng.Intn(8)
		}
		cfg.MaxInsts = insts
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v\n%+v", i, err, cfg)
		}

		seed := rng.Uint64()
		res, err := Run(cfg, bench.Image(), bench.NewReader(seed, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", i, cfg, err)
		}

		total := res.Cycles.Slots(cfg.FetchWidth)
		got := Slots(res.Insts) + res.Lost.Total()
		if diff := total - got; diff < 0 || diff >= Slots(cfg.FetchWidth) {
			t.Errorf("trial %d: slot conservation broken (diff %d)\ncfg %+v", i, diff, cfg)
		}
		switch cfg.Policy {
		case Oracle, Pessimistic:
			if res.Traffic.WrongPathFills != 0 {
				t.Errorf("trial %d: %s filled %d wrong-path lines", i, cfg.Policy, res.Traffic.WrongPathFills)
			}
		default: // the other policies may fill on wrong paths
		}
		switch cfg.Policy {
		case Oracle, Optimistic, Resume:
			if res.Lost[metrics.ForceResolve] != 0 {
				t.Errorf("trial %d: %s charged force_resolve", i, cfg.Policy)
			}
		default: // Pessimistic/Decode gate fills on resolve/decode
		}
		switch cfg.Policy {
		case Oracle, Resume, Pessimistic:
			if res.Lost[metrics.WrongICache] != 0 {
				t.Errorf("trial %d: %s charged wrong_icache", i, cfg.Policy)
			}
		default: // Optimistic/Decode block on wrong-path fills
		}
		if !cfg.NextLinePrefetch && !cfg.TargetPrefetch && cfg.StreamDepth == 0 &&
			res.Traffic.PrefetchFills != 0 {
			t.Errorf("trial %d: prefetch traffic without a prefetcher", i)
		}

		// Determinism and accounting: an identical rerun with the invariant
		// auditor attached gives bit-identical results, no streaming
		// violation, and verified final identities.
		aud := newAuditor(cfg)
		acfg := cfg
		acfg.Probe = aud
		res2, err := Run(acfg, bench.Image(), bench.NewReader(seed, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatalf("trial %d rerun: %v", i, err)
		}
		if res != res2 {
			t.Errorf("trial %d: nondeterministic results\ncfg %+v", i, cfg)
		}
		if err := aud.Verify(res2.AuditFinal()); err != nil {
			t.Errorf("trial %d: %v\ncfg %+v", i, err, cfg)
		}
	}
}
