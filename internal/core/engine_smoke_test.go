package core

import (
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/metrics"
	"specfetch/internal/synth"
)

// TestSmokeAllPolicies runs every policy over a small synthetic benchmark
// and checks the engine's global invariants.
func TestSmokeAllPolicies(t *testing.T) {
	bench := synth.MustBuild(synth.GCC())
	const insts = 200_000
	for _, pol := range Policies() {
		for _, pref := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Policy = pol
			cfg.NextLinePrefetch = pref
			cfg.MaxInsts = insts
			res, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
			if err != nil {
				t.Fatalf("%v pref=%v: %v", pol, pref, err)
			}
			t.Logf("%v pref=%v: %s", pol, pref, res)
			if res.Insts < insts {
				t.Errorf("%v: issued %d insts, want >= %d", pol, res.Insts, insts)
			}
			if res.Cycles <= Cycles(res.Insts/int64(cfg.FetchWidth)) {
				t.Errorf("%v: cycles %d below ideal minimum %d", pol, res.Cycles, res.Insts/4)
			}
			// Slot conservation: total slots = useful + lost, up to the
			// final cycle's unaccounted remainder when the budget ends a
			// group early.
			total := res.Cycles.Slots(cfg.FetchWidth)
			got := Slots(res.Insts) + res.Lost.Total()
			if diff := total - got; diff < 0 || diff >= Slots(cfg.FetchWidth) {
				t.Errorf("%v pref=%v: slot conservation broken: insts+lost=%d, cycles*width=%d (diff %d)",
					pol, pref, got, total, diff)
			}
			if res.TotalISPI() <= 0 {
				t.Errorf("%v: non-positive ISPI", pol)
			}
			if pol == Oracle || pol == Pessimistic {
				if res.Traffic.WrongPathFills != 0 {
					t.Errorf("%v: wrong-path fills %d, want 0", pol, res.Traffic.WrongPathFills)
				}
			}
			if !pref && res.Traffic.PrefetchFills != 0 {
				t.Errorf("%v: prefetch fills %d with prefetch off", pol, res.Traffic.PrefetchFills)
			}
			if pol == Oracle {
				if res.Lost[metrics.ForceResolve] != 0 {
					t.Errorf("oracle: force_resolve %d, want 0", res.Lost[metrics.ForceResolve])
				}
				if res.Lost[metrics.WrongICache] != 0 {
					t.Errorf("oracle: wrong_icache %d, want 0", res.Lost[metrics.WrongICache])
				}
			}
		}
	}
}
