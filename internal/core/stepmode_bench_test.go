package core

import (
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// BenchmarkStepMode measures whole-run throughput in both step modes on the
// lowest-miss-rate stock profile (su2cor, ~5% at 8K) — the profile where
// skip-ahead has the most room — plus the highest-miss-rate one (fpppp) as
// the adversarial floor. Report interpretation: ns/op is one full
// 200k-instruction cell.
func BenchmarkStepMode(b *testing.B) {
	const insts = 200_000
	for _, prof := range []synth.Profile{synth.Su2cor(), synth.Fpppp()} {
		bench := synth.MustBuild(prof)
		for _, mode := range StepModes() {
			b.Run(prof.Name+"/"+mode.String(), func(b *testing.B) {
				arena := NewArena()
				cfg := DefaultConfig()
				cfg.Policy = Resume
				cfg.StepMode = mode
				cfg.MaxInsts = insts
				cfg.Arena = arena
				mk, err := bpred.ByName("")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rd := trace.NewLimitReader(bench.NewWalker(prof.Seed), insts+insts/4)
					if _, err := Run(cfg, bench.Image(), rd, mk()); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(0)
				b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minsts/s")
			})
		}
	}
}
