package core

import (
	"fmt"

	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/obs"
	"specfetch/internal/program"
)

// wpPhase is one leg of a redirect window: fetch runs from `start` during
// cycles strictly before `until`. A misfetch phase is one whose instructions
// were fetched past an unidentified/targetless branch; they are squashed at
// decode, which is what lets the Decode policy refuse their misses.
type wpPhase struct {
	start    isa.Addr
	until    Cycles
	misfetch bool
}

// wpState is the wrong-path fetch unit state within one window.
type wpState struct {
	wpc           isa.Addr
	stalled       bool   // fetch cannot proceed for the rest of the phase
	bubbleUntil   Cycles // decode bubble from a wrong-path misfetch
	fillWaitUntil Cycles // wrong-path fetch waiting on a fill (Resume / pending)
	blockUntil    Cycles // blocking-cache fill outstanding (also blocks correct path)
	lastLine      uint64
	haveLastLine  bool
}

// runWindow models a misfetch/mispredict redirect: the remainder of the
// current cycle plus the window cycles are lost (charged to the `branch`
// component and the event's Table 3 bucket), the wrong path is fetched
// against the I-cache under the configured policy, and — for blocking
// policies — a wrong-path fill can extend the stall past the redirect point
// (charged to `wrong_icache`). On return, e.cy is the cycle at which
// correct-path fetch resumes.
func (e *Engine) runWindow(slotsIssued int, ev eventClass, phases []wpPhase, resumePC isa.Addr) {
	width := Slots(e.cfg.FetchWidth)
	windowEnd := phases[len(phases)-1].until

	if e.probe != nil {
		e.probe.WindowStart(e.cy, ev.redirectKind(), windowEnd)
	}

	branchSlots := width - Slots(slotsIssued)
	e.res.Lost.Add(metrics.Branch, branchSlots)

	// A prefetch armed earlier in the branch's own cycle still issues.
	e.tryPrefetch(e.cy)

	st := wpState{}
	if e.cfg.StepMode == StepSkipAhead {
		branchSlots += e.windowCyclesSkip(phases, &st, windowEnd)
	} else {
		branchSlots += e.windowCyclesRef(phases, &st, windowEnd)
	}

	resumeAt := windowEnd
	if st.blockUntil > resumeAt {
		// Blocking fill initiated on the wrong path is still outstanding
		// when the machine learns the correct path: Optimistic (and Decode
		// after its gate) pay here.
		overrun := (st.blockUntil - resumeAt).Slots(e.cfg.FetchWidth)
		e.res.Lost.Add(metrics.WrongICache, overrun)
		if e.probe != nil {
			e.probe.Stall(resumeAt, st.blockUntil, metrics.WrongICache, overrun)
		}
		resumeAt = st.blockUntil
	}
	e.wrongConds = 0

	switch ev {
	case evPHTMispredict:
		e.res.Events.PHTMispredicts++
		e.res.Events.PHTMispredictSlots += branchSlots
	case evBTBMisfetch:
		e.res.Events.BTBMisfetches++
		e.res.Events.BTBMisfetchSlots += branchSlots
	case evBTBMispredict:
		e.res.Events.BTBMispredicts++
		e.res.Events.BTBMispredictSlots += branchSlots
	}

	e.cy = resumeAt
	if e.probe != nil {
		e.probe.Redirect(windowEnd, ev.redirectKind(), uint64(resumePC))
		e.probe.WindowEnd(resumeAt)
	}

	// Consistency check: the trace must continue exactly where the redirect
	// says the correct path resumes.
	if e.err == nil && e.haveRec {
		if pk := e.peekInst(); pk.pc != resumePC {
			e.err = fmt.Errorf("core: redirect/trace mismatch: trace continues at %s, redirect resumes at %s",
				pk.pc, resumePC)
		}
	}
}

// windowCyclesRef is the reference per-cycle body of runWindow's loop: every
// window cycle loses a full fetch width to the branch component, and cycles
// not spent waiting on a fill, a decode bubble, or an end-of-phase stall
// fetch down the wrong path. It returns the slots charged.
func (e *Engine) windowCyclesRef(phases []wpPhase, st *wpState, windowEnd Cycles) Slots {
	width := Slots(e.cfg.FetchWidth)
	var slots Slots
	phaseIdx := -1
	for wc := e.cy + 1; wc < windowEnd; wc++ {
		e.res.Lost.Add(metrics.Branch, width)
		slots += width
		e.applyUpdates(wc)
		e.retireConds(wc)

		// Phase transition: the decode-time redirect restarts the wrong-path
		// fetch unit at the new address and clears fetch-side stalls, but an
		// outstanding fill keeps the bus and the (blocking) cache busy.
		idx := len(phases) - 1
		for i, p := range phases {
			if wc < p.until {
				idx = i
				break
			}
		}
		if idx != phaseIdx {
			phaseIdx = idx
			st.wpc = phases[idx].start
			st.stalled = false
			st.bubbleUntil = 0
			st.haveLastLine = false
		}

		if wc < st.blockUntil || wc < st.fillWaitUntil || wc < st.bubbleUntil || st.stalled {
			continue
		}
		e.prefCandValid = false
		e.targetCandValid = false
		e.wrongPathFetchCycle(wc, phases[phaseIdx], st)
		e.tryPrefetch(wc)
	}
	return slots
}

// wrongPathFetchCycle fetches up to one issue group down the wrong path at
// cycle wc, touching the I-cache and applying the miss policy.
func (e *Engine) wrongPathFetchCycle(wc Cycles, ph wpPhase, st *wpState) {
	width := e.cfg.FetchWidth
	var groupLine uint64
	groupLineValid := false

	for slot := 0; slot < width; slot++ {
		if !e.img.Contains(st.wpc) {
			// Ran off the image (e.g. fall-through past the last function).
			st.stalled = true
			return
		}
		line := e.geom.Line(st.wpc)
		if !groupLineValid || line != groupLine {
			structural := !st.haveLastLine || line != st.lastLine
			kind, readyAt := e.lineLookup(line, wc)
			if structural {
				st.lastLine = line
				st.haveLastLine = true
				e.res.WrongPathAccesses++
				if kind == lookupMiss {
					e.res.WrongPathMisses++
				}
			}
			switch kind {
			case lookupPendingFill:
				st.fillWaitUntil = readyAt
				return
			case lookupMiss:
				e.handleWrongPathMiss(line, wc, ph.misfetch, st)
				return
			case lookupHit:
				// Fall out of the switch to the hit path below.
			}
			if e.cfg.NextLinePrefetch && e.ic.ConsumeFirstRef(line) {
				e.prefCand = line + 1
				e.prefCandValid = true
			}
			groupLine = line
			groupLineValid = true
		}

		// A run of plain instructions on the current line needs none of the
		// machinery below: no predictor query, no speculation slot, no line
		// crossing. Consume the whole stretch at once (bounded by the group,
		// the line, and the run itself); the per-instruction loop this
		// replaces would do exactly one WrongPathInsts++ and a pc.Next() per
		// iteration.
		if run := e.img.PlainRunLen(st.wpc); run > 0 {
			k := width - slot
			if run < k {
				k = run
			}
			if left := e.geom.InstsLeftInLine(st.wpc); left < k {
				k = left
			}
			e.res.WrongPathInsts += int64(k)
			st.wpc = st.wpc.Plus(k)
			slot += k - 1
			groupLineValid = e.geom.Line(st.wpc) == groupLine
			continue
		}

		in := e.img.At(st.wpc)
		if in.Kind.IsConditional() && e.condCount()+e.wrongConds >= e.cfg.MaxUnresolved {
			// Out of speculation slots; wrong-path fetch waits. Slots are
			// only reclaimed by resolutions of pre-window branches or by the
			// squash at window end.
			return
		}
		e.res.WrongPathInsts++

		next, ok := e.wrongPathNext(st.wpc, in, wc, st)
		if !ok {
			st.stalled = true
			return
		}
		st.wpc = next
		groupLineValid = groupLineValid && e.geom.Line(next) == groupLine
		if st.bubbleUntil > wc {
			return // wrong-path misfetch bubble ends this fetch cycle
		}
	}
}

// wrongPathNext decides where wrong-path fetch goes after the instruction
// at pc, using the live predictor exactly as the front end would.
func (e *Engine) wrongPathNext(pc isa.Addr, in program.Inst, wc Cycles, st *wpState) (isa.Addr, bool) {
	decodeAt := wc + Cycles(e.cfg.DecodeLatency)
	switch {
	case in.Kind == isa.Plain:
		return pc.Next(), true

	case in.Kind.IsConditional():
		e.wrongConds++
		if e.cfg.TargetPrefetch {
			e.armTargetPrefetch(in.Target)
		}
		predTaken := e.pred.PredictCond(pc)
		if !predTaken {
			return pc.Next(), true
		}
		e.queueBTB(btbUpdate{at: decodeAt, pc: pc, target: in.Target})
		if t, hit := e.pred.PredictTarget(pc); hit {
			return t, true
		}
		// Predicted taken without a target: decode bubble, then the
		// computed target.
		st.bubbleUntil = wc + 1 + Cycles(e.cfg.DecodeLatency)
		return in.Target, true

	case in.Kind == isa.Jump || in.Kind == isa.Call:
		e.queueBTB(btbUpdate{at: decodeAt, pc: pc, target: in.Target})
		if e.cfg.TargetPrefetch {
			e.armTargetPrefetch(in.Target)
		}
		if e.ras != nil && in.Kind == isa.Call {
			// Speculative push; never undone on squash (no checkpointing).
			e.ras.Push(pc.Next())
		}
		if t, hit := e.pred.PredictTarget(pc); hit {
			return t, true
		}
		st.bubbleUntil = wc + 1 + Cycles(e.cfg.DecodeLatency)
		return in.Target, true

	default:
		// Indirect transfer: only a BTB hit (or, for returns, a RAS entry)
		// gives fetch anywhere to go; otherwise speculative fetch stops.
		if e.ras != nil {
			if in.Kind == isa.IndirectCall {
				e.ras.Push(pc.Next())
			}
			if in.Kind == isa.Return {
				if ret, ok := e.ras.Pop(); ok {
					return ret, true
				}
			}
		}
		if t, hit := e.pred.PredictTarget(pc); hit {
			return t, true
		}
		return 0, false
	}
}

// handleWrongPathMiss applies the configured policy to an I-cache miss on
// the wrong path at cycle wc.
func (e *Engine) handleWrongPathMiss(line uint64, wc Cycles, misfetchPhase bool, st *wpState) {
	if e.probe != nil {
		e.probe.MissStart(wc, line, true)
	}
	switch e.active {
	case Oracle, Pessimistic:
		// Never serviced: Oracle knows the path is wrong; Pessimistic's
		// resolve gate outlives the window, after which the miss is
		// squashed.
		st.stalled = true

	case Decode:
		if misfetchPhase {
			// The decode gate catches the misfetch and squashes the miss.
			st.stalled = true
			return
		}
		// Direction mispredicts pass the decode gate: fill after the
		// previous instructions decode, blocking like Optimistic.
		gate := wc - 1 + Cycles(e.cfg.DecodeLatency)
		if gate < wc {
			gate = wc
		}
		done := e.busStartLine(gate, line, true, obs.FillWrongPath)
		e.commitCompletedBuffers(wc)
		e.ic.Fill(line)
		e.res.Traffic.WrongPathFills++
		if e.probe != nil {
			e.probe.FillComplete(done, line, obs.FillWrongPath)
		}
		st.blockUntil = done

	case Optimistic:
		done := e.busStartLine(wc, line, true, obs.FillWrongPath)
		e.commitCompletedBuffers(wc)
		e.ic.Fill(line)
		e.res.Traffic.WrongPathFills++
		if e.probe != nil {
			e.probe.FillComplete(done, line, obs.FillWrongPath)
		}
		st.blockUntil = done

	case Resume:
		buf := e.freeBuffer(e.resumeBufs, wc)
		if buf == nil {
			// Every resume buffer is occupied by an earlier wrong-path
			// fill; no further fill can be tracked (the paper has one).
			st.stalled = true
			return
		}
		done := e.busStartLine(wc, line, true, obs.FillWrongPath)
		buf.Set(line, done)
		e.res.Traffic.WrongPathFills++
		if e.probe != nil {
			e.probe.FillComplete(done, line, obs.FillWrongPath)
		}
		// The wrong path itself still waits (the line is not there), but
		// the correct path is free to resume at the redirect.
		st.fillWaitUntil = done

	case Adaptive:
		// Unreachable: the engine resolves Adaptive to a static active
		// policy at construction and every boundary.
		panic("core: adaptive meta-policy leaked into wrong-path miss handling")
	}
}
