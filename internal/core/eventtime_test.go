package core

import (
	"reflect"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/obs"
	"specfetch/internal/program"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// Event-time tests: degenerate completion schedules that stress the
// skip-ahead core's bulk accounting at its boundaries — simultaneous
// completions, minimal-latency fills, bus busy-until times landing inside a
// skipped region, and the instruction budget expiring exactly at a skip
// boundary. Each scenario runs both step modes and requires bit-identical
// Results and probe event streams; the hand-built ones additionally pin
// absolute cycle counts so a symmetric bug (both modes wrong the same way)
// cannot hide.

// diffRecs runs a hand-built program/trace through both step modes with a
// full event recorder attached and requires identical Results and event
// streams; it returns the (shared) result and stream.
func diffRecs(t *testing.T, cfg Config, img *program.Image, recs []trace.Record) (Result, []obs.Event) {
	t.Helper()
	runMode := func(mode StepMode) (Result, []obs.Event) {
		c := cfg
		c.StepMode = mode
		rec := obs.NewEventRecorder(1 << 16)
		c.Probe = obs.Multi(rec, c.Probe)
		res, err := Run(c, img, trace.NewSliceReader(recs), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if rec.Dropped() != 0 {
			t.Fatalf("mode %v: recorder overflowed (%d dropped)", mode, rec.Dropped())
		}
		return res, rec.Events()
	}
	ref, refEvs := runMode(StepReference)
	fast, fastEvs := runMode(StepSkipAhead)
	if !reflect.DeepEqual(ref, fast) {
		t.Errorf("Results differ between modes\nreference: %+v\nskipahead: %+v", ref, fast)
	}
	if !reflect.DeepEqual(refEvs, fastEvs) {
		n := min(len(refEvs), len(fastEvs))
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(refEvs[i], fastEvs[i]) {
				t.Fatalf("event %d differs\nreference: %+v\nskipahead: %+v", i, refEvs[i], fastEvs[i])
			}
		}
		t.Fatalf("event count differs: reference %d, skipahead %d", len(refEvs), len(fastEvs))
	}
	return ref, refEvs
}

// TestEventStreamGoldenLiteral pins the exact event sequence of a scenario
// whose interesting events all fall inside regions the skip-ahead core jumps
// over: a cold-miss stall (cycles 0-5), a misfetch window whose wrong-path
// fill overhangs it (the redirect waits on the bus until cycle 12), and a
// mispredict window (cycles 13-18). This is the negative test for the bulk
// skip's event timestamps: if a jump stamped its events with the post-jump
// clock — or coalesced them in a different emission order than the per-cycle
// stepper — the literal below would not match. Every Cy/Until value here is
// a true completion cycle inside a skipped interval, not an emission time.
func TestEventStreamGoldenLiteral(t *testing.T) {
	t.Parallel()
	// Line 0: 7 plains + a conditional looping to 0. Lines 1-2: plains.
	// Record 1 takes the loop: the weakly-taken counter predicts taken but
	// the BTB is cold, so fetch runs down the fall-through (wrong path,
	// missing line 1) for the misfetch window. Record 2 falls through: now
	// the counter still says taken, so this is a full mispredict. Record 3
	// issues the fall-through plains from the wrong-path-filled line 1.
	p := newProg(t, 0)
	p.plains(7)
	p.inst(isa.CondBranch, 0)
	p.plains(8)
	img := p.build()
	recs := []trace.Record{
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0},
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: false},
		{Start: 32, N: 8, BrKind: isa.Plain},
	}

	_, evs := diffRecs(t, cfgWith(Optimistic), img, recs)

	want := []obs.Event{
		// Cold miss on line 0: the fill is scheduled eagerly, so the bus
		// release and fill completion (cycle 5) are reported from cycle 0;
		// the whole stall is one coalesced [0,5) segment.
		{Cy: 0, Type: obs.EvMissStart, Line: 0, Kind: "demand"},
		{Cy: 0, Type: obs.EvBusAcquire, Line: 0, Kind: "demand"},
		{Cy: 5, Type: obs.EvBusRelease},
		{Cy: 5, Type: obs.EvFillComplete, Line: 0, Kind: "demand"},
		{Cy: 0, Type: obs.EvStall, Until: 5, Comp: "rt_icache", Slots: 20},
		{Cy: 0, Type: obs.EvFetchCycle, Issued: 0},
		{Cy: 5, Type: obs.EvFetchCycle, Issued: 4},
		// The conditional fetches in cycle 6 (slot 3) and resolves at 6+4+1;
		// its misfetch window runs [6,9) with the wrong-path miss on line 1
		// at cycle 7 occupying the bus until 12, so the redirect at 9 stalls
		// on wrong_icache until the fill lands.
		{Cy: 11, Type: obs.EvBranchResolve, PC: 28, Taken: true},
		{Cy: 6, Type: obs.EvWindowStart, Until: 9, Kind: "btb_misfetch"},
		{Cy: 7, Type: obs.EvMissStart, Line: 1, Kind: "wrong_path"},
		{Cy: 7, Type: obs.EvBusAcquire, Line: 1, Kind: "wrong_path"},
		{Cy: 12, Type: obs.EvBusRelease},
		{Cy: 12, Type: obs.EvFillComplete, Line: 1, Kind: "wrong_path"},
		{Cy: 9, Type: obs.EvStall, Until: 12, Comp: "wrong_icache", Slots: 12},
		{Cy: 9, Type: obs.EvRedirect, PC: 0, Kind: "btb_misfetch"},
		{Cy: 12, Type: obs.EvWindowEnd},
		{Cy: 6, Type: obs.EvFetchCycle, Issued: 4},
		{Cy: 12, Type: obs.EvFetchCycle, Issued: 4},
		// Second execution: predicted taken again, actually not taken — a
		// full mispredict window [13,18) with the redirect to the
		// fall-through (PC 32) at resolve time.
		{Cy: 18, Type: obs.EvBranchResolve, PC: 28, Mispredict: true},
		{Cy: 13, Type: obs.EvWindowStart, Until: 18, Kind: "pht_mispredict"},
		{Cy: 18, Type: obs.EvRedirect, PC: 32, Kind: "pht_mispredict"},
		{Cy: 18, Type: obs.EvWindowEnd},
		{Cy: 13, Type: obs.EvFetchCycle, Issued: 4},
		// Line 1 is resident from the wrong-path fill: the final plains
		// issue without a miss.
		{Cy: 18, Type: obs.EvFetchCycle, Issued: 4},
		{Cy: 19, Type: obs.EvFetchCycle, Issued: 4},
	}
	if !reflect.DeepEqual(evs, want) {
		n := min(len(evs), len(want))
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(evs[i], want[i]) {
				t.Fatalf("event %d:\ngot  %+v\nwant %+v", i, evs[i], want[i])
			}
		}
		t.Fatalf("event count: got %d, want %d", len(evs), len(want))
	}
}

// TestMinimalLatencyFillTiming runs straight-line code at MissPenalty 1, the
// smallest legal fill time: every skipped stall interval is a single cycle,
// so any off-by-one in the jump arithmetic (skipping zero cycles, or one too
// many) shifts the exact counts pinned here.
func TestMinimalLatencyFillTiming(t *testing.T) {
	t.Parallel()
	const lines = 8
	img := newProg(t, 0).plains(lines * 8).build()
	recs := []trace.Record{{Start: 0, N: lines * 8, BrKind: isa.Plain}}

	cfg := cfgWith(Optimistic)
	cfg.MissPenalty = 1
	res, _ := diffRecs(t, cfg, img, recs)

	// Per line: 1 stall cycle + 2 issue cycles.
	if got, want := res.Cycles, Cycles(lines*3); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	if got, want := res.Lost[metrics.RTICache], Slots(lines*4); got != want {
		t.Errorf("rt_icache slots = %d, want %d", got, want)
	}
	if got, want := res.RightPathMisses, int64(lines); got != want {
		t.Errorf("right-path misses = %d, want %d", got, want)
	}
}

// TestSimultaneousFillCompletions makes two fills complete on the same
// cycle: with pipelined memory and the next-line prefetcher, the cold demand
// fill of line 0 and the prefetch of line 1 are both issued at cycle 0 and
// both land at cycle 5. The skip-ahead core must treat the coincident
// completion as one event time, not double-advance.
func TestSimultaneousFillCompletions(t *testing.T) {
	t.Parallel()
	const lines = 8
	img := newProg(t, 0).plains(lines * 8).build()
	recs := []trace.Record{{Start: 0, N: lines * 8, BrKind: isa.Plain}}

	cfg := cfgWith(Optimistic)
	cfg.PipelinedMemory = true
	cfg.NextLinePrefetch = true
	res, _ := diffRecs(t, cfg, img, recs)

	if res.Traffic.PrefetchFills == 0 {
		t.Fatal("no prefetch fills; scenario did not arm the prefetcher")
	}
	// Line 0 cold-misses (5 cycles); line 1 arrives with it for free.
	if got, want := res.Lost[metrics.RTICache], Slots(5*4); got != want {
		t.Errorf("rt_icache slots = %d, want %d (only the cold miss)", got, want)
	}
}

// TestBusBusyUntilLandsMidSkip parks a long wrong-path fill on the bus and
// then lets the correct path run resident plain code for many cycles: the
// bus's busy-until time lies strictly inside the region the skip-ahead core
// bulk-issues. When the correct path finally misses, it must wait out
// exactly the remaining occupancy.
func TestBusBusyUntilLandsMidSkip(t *testing.T) {
	t.Parallel()
	p := newProg(t, 0)
	p.plains(7)
	p.inst(isa.CondBranch, 0) // line 0: loop
	p.plains(24)              // lines 1-3
	img := p.build()

	// Iteration 1's misfetch starts a 20-cycle wrong-path fill of line 1
	// (Resume services it without blocking the redirect). Iterations 2-4
	// loop through resident line 0 — pure bulk issue — while the bus drains.
	// The final fall-through then runs into line 2, a fresh demand miss that
	// must queue behind the wrong-path transfer still on the bus.
	recs := []trace.Record{
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0},
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0},
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0},
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: false},
		{Start: 32, N: 24, BrKind: isa.Plain},
	}

	cfg := cfgWith(Resume)
	cfg.MissPenalty = 20
	res, _ := diffRecs(t, cfg, img, recs)

	if got, want := res.Traffic.WrongPathFills, uint64(1); got != want {
		t.Errorf("wrong-path fills = %d, want %d", got, want)
	}
	if res.Lost[metrics.Bus] == 0 {
		t.Error("bus slots = 0, want > 0 (demand miss behind the draining wrong-path fill)")
	}
}

// TestBudgetStopsAtSkipBoundary expires the instruction budget at, just
// before, and just past a fetch-group and bulk-region boundary. Both modes
// must agree on the final instruction count and every other counter — the
// bulk issuer caps its region at the budget rather than overshooting it.
func TestBudgetStopsAtSkipBoundary(t *testing.T) {
	t.Parallel()
	const lines = 16
	img := newProg(t, 0).plains(lines * 8).build()
	recs := []trace.Record{{Start: 0, N: lines * 8, BrKind: isa.Plain}}

	for _, budget := range []int64{1, 3, 4, 5, 8, 63, 64, 65, 100} {
		cfg := cfgWith(Optimistic)
		cfg.MaxInsts = budget
		res, _ := diffRecs(t, cfg, img, recs)
		if res.Insts < budget {
			t.Errorf("budget %d: stopped early at %d insts", budget, res.Insts)
		}
		// A run may only overshoot to the end of the fetch group in flight.
		if res.Insts >= budget+int64(cfg.FetchWidth) {
			t.Errorf("budget %d: overshot to %d insts", budget, res.Insts)
		}
	}
}

// TestDegenerateScheduleMatrix sweeps the latency knobs through their
// smallest legal values and near-coincident combinations (fill time equal to
// the resolve distance, decode equal to resolve, penalty 1) on a branchy
// hand-built loop, holding both modes to identical Results and event
// streams. These are the schedules where several completion times collide
// on one cycle or an event lands exactly on a skip boundary.
func TestDegenerateScheduleMatrix(t *testing.T) {
	t.Parallel()
	p := newProg(t, 0)
	p.plains(7)
	p.inst(isa.CondBranch, 0) // line 0: loop
	p.plains(16)              // lines 1-2
	img := p.build()

	var recs []trace.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, trace.Record{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0})
	}
	recs = append(recs,
		trace.Record{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: false},
		trace.Record{Start: 32, N: 16, BrKind: isa.Plain},
	)

	for _, pol := range Policies() {
		for _, pen := range []int{1, 2, 4, 5} {
			for _, dec := range []int{1, 2} {
				for _, resv := range []int{dec, dec + 2, 4} {
					if resv < dec {
						continue
					}
					cfg := cfgWith(pol)
					cfg.MissPenalty = pen
					cfg.DecodeLatency = dec
					cfg.ResolveLatency = resv
					diffRecs(t, cfg, img, recs)
				}
			}
		}
	}
}

// TestSkipAheadSteadyStateAllocFree asserts the zero-allocation property of
// the arena-backed hot loop: once the arena is warm, a run's allocation
// count is a small constant (engine header, predictor tables, reader
// cursor) that does not grow with the number of instructions simulated —
// i.e. the per-cycle/per-skip steady state allocates nothing. Comparing a
// short run against one 8x longer isolates the loop from that fixed setup
// cost, which testing.AllocsPerRun cannot see past on its own.
func TestSkipAheadSteadyStateAllocFree(t *testing.T) {
	bench := synth.MustBuild(synth.Su2cor())
	const longInsts = 24_000
	var recs []trace.Record
	rd := trace.NewLimitReader(bench.NewWalker(7), longInsts+longInsts/4)
	for {
		rec, err := rd.Next()
		if err != nil {
			break
		}
		recs = append(recs, rec)
	}

	arena := NewArena()
	runN := func(insts int64) float64 {
		return testing.AllocsPerRun(5, func() {
			cfg := DefaultConfig()
			cfg.Policy = Resume
			cfg.MaxInsts = insts
			cfg.Arena = arena
			if _, err := Run(cfg, bench.Image(), trace.NewSliceReader(recs), bpred.NewDefaultDecoupled()); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Warm the arena (and grow its queues to steady-state capacity) on the
	// longest run first so growth never charges the measured runs.
	runN(longInsts)
	long := runN(longInsts)
	short := runN(longInsts / 8)
	if long != short {
		t.Errorf("allocations grow with run length: %.0f allocs at %d insts vs %.0f at %d insts",
			long, longInsts, short, longInsts/8)
	}
	t.Logf("fixed per-run allocations: %.0f", long)
}
