package core

import (
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/synth"
)

// runKernel simulates a kernel bench under the baseline machine.
func runKernel(t *testing.T, b *synth.Bench, mut func(*Config)) Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = Resume
	cfg.MaxInsts = 60_000
	if mut != nil {
		mut(&cfg)
	}
	res, err := Run(cfg, b.Image(), b.NewReader(1, 200_000), bpred.NewDefaultDecoupled())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLoopKernelSteadyState: a loop that fits the cache has only cold
// misses and a near-perfectly predicted back branch.
func TestLoopKernelSteadyState(t *testing.T) {
	k, err := synth.LoopKernel(256, 64) // 1KB body, 64 trips
	if err != nil {
		t.Fatal(err)
	}
	res := runKernel(t, k, nil)
	// Cold misses only: body is ~33 lines.
	if res.RightPathMisses > 40 {
		t.Errorf("loop kernel misses = %d, want cold-only (~33)", res.RightPathMisses)
	}
	// Mispredicts only at loop exits: 1 per ~64*257 instructions, plus the
	// first-touch misfetch.
	perExit := float64(res.Events.PHTMispredicts) / (float64(res.Insts) / (64 * 257))
	if perExit > 2 {
		t.Errorf("loop kernel mispredicts %.2f per exit, want ~1", perExit)
	}
}

// TestLoopKernelThrashing: a loop bigger than the cache misses every line
// every traversal, for every policy identically (no speculation effects in
// straight-line code).
func TestLoopKernelThrashing(t *testing.T) {
	k, err := synth.LoopKernel(4096, 1000) // 16KB body >> 8K cache
	if err != nil {
		t.Fatal(err)
	}
	res := runKernel(t, k, nil)
	// Body = 512 lines; every traversal misses every line: miss ratio
	// approaches 1/8 instructions = 12.5%.
	if mr := res.MissRatioPct(); mr < 10 || mr > 13 {
		t.Errorf("thrashing loop miss ratio %.2f%%, want ~12.5%%", mr)
	}
}

// TestCallKernelRAS: on a pure call chain, the RAS removes every BTB target
// mispredict that the warmed-up baseline still suffers... actually a fixed
// chain has stable return targets, so both predict well; the discriminating
// case is DispatchKernel below. Here: returns predict near-perfectly after
// warmup even without a RAS (stable call sites).
func TestCallKernelReturns(t *testing.T) {
	k, err := synth.CallKernel(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	res := runKernel(t, k, nil)
	perInst := float64(res.Events.BTBMispredicts) / float64(res.Insts)
	if perInst > 0.001 {
		t.Errorf("stable call chain BTB mispredicts %.5f/inst, want ~0", perInst)
	}
}

// TestDispatchKernelBTBMisses: uniform dispatch over N targets defeats a
// last-target BTB: the indirect jump mispredicts at rate ~(N-1)/N.
func TestDispatchKernelBTBMisses(t *testing.T) {
	const fanout = 8
	k, err := synth.DispatchKernel(fanout, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := runKernel(t, k, nil)
	// Dispatches per instruction: one indirect per ~(2+1+6+1)=10 insts.
	dispatches := float64(res.Insts) / 10
	rate := float64(res.Events.BTBMispredicts) / dispatches
	want := float64(fanout-1) / fanout
	if rate < want-0.12 || rate > want+0.12 {
		t.Errorf("dispatch mispredict rate %.3f, want ~%.3f", rate, want)
	}
}
