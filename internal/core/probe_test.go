package core

import (
	"math"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/metrics"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
)

// countingProbe cross-checks the probe event stream against the Result the
// same run reports.
type countingProbe struct {
	obs.NopProbe
	issued       int64
	stallSlots   metrics.Breakdown
	fills        [3]int64 // by obs.FillKind
	prefetches   int64
	missStarts   int64
	wpMissStarts int64
	busAcquires  int64
	busReleases  int64
	windowStarts int64
	windowEnds   int64
	redirects    int64
	resolves     int64
	mispredicts  int64
	samples      []obs.Snapshot
}

func (p *countingProbe) FetchCycle(cy Cycles, issued int) { p.issued += int64(issued) }
func (p *countingProbe) MissStart(cy Cycles, line uint64, wrongPath bool) {
	if wrongPath {
		p.wpMissStarts++
	} else {
		p.missStarts++
	}
}
func (p *countingProbe) FillComplete(cy Cycles, line uint64, kind obs.FillKind) { p.fills[kind]++ }
func (p *countingProbe) BusAcquire(cy Cycles, line uint64, kind obs.FillKind)   { p.busAcquires++ }
func (p *countingProbe) BusRelease(cy Cycles)                                   { p.busReleases++ }
func (p *countingProbe) BranchResolve(cy Cycles, pc uint64, taken, mispredicted bool) {
	p.resolves++
	if mispredicted {
		p.mispredicts++
	}
}
func (p *countingProbe) Redirect(cy Cycles, kind obs.RedirectKind, resumePC uint64) { p.redirects++ }
func (p *countingProbe) Prefetch(cy Cycles, line uint64, doneAt Cycles)             { p.prefetches++ }
func (p *countingProbe) WindowStart(cy Cycles, kind obs.RedirectKind, until Cycles) { p.windowStarts++ }
func (p *countingProbe) WindowEnd(cy Cycles)                                        { p.windowEnds++ }
func (p *countingProbe) Stall(cy, until Cycles, comp metrics.Component, slots Slots) {
	if until <= cy {
		panic("empty stall segment")
	}
	p.stallSlots.Add(comp, slots)
}
func (p *countingProbe) Sample(s obs.Snapshot) { p.samples = append(p.samples, s) }

// TestProbeEventInvariants runs every policy with a counting probe attached
// and checks the event stream is complete and consistent with the Result —
// and that attaching a probe does not perturb the simulation.
func TestProbeEventInvariants(t *testing.T) {
	bench := synth.MustBuild(synth.GCC())
	const insts = 100_000
	for _, pol := range Policies() {
		for _, pref := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Policy = pol
			cfg.NextLinePrefetch = pref
			cfg.MaxInsts = insts

			base, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
			if err != nil {
				t.Fatalf("%v pref=%v: %v", pol, pref, err)
			}

			p := &countingProbe{}
			cfg.Probe = p
			cfg.SampleInterval = 10_000
			res, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
			if err != nil {
				t.Fatalf("%v pref=%v probed: %v", pol, pref, err)
			}

			if res != base {
				t.Errorf("%v pref=%v: probe changed the result:\nprobed %+v\n  base %+v", pol, pref, res, base)
			}
			if p.issued != res.Insts {
				t.Errorf("%v pref=%v: FetchCycle issued sum = %d, want %d", pol, pref, p.issued, res.Insts)
			}
			// Every lost slot outside the Branch window component must be
			// covered by exactly-once Stall events.
			for _, c := range metrics.Components() {
				if c == metrics.Branch {
					continue
				}
				if p.stallSlots[c] != res.Lost[c] {
					t.Errorf("%v pref=%v: stall slots for %s = %d, want %d",
						pol, pref, c, p.stallSlots[c], res.Lost[c])
				}
			}
			if got, want := uint64(p.fills[obs.FillDemand]), res.Traffic.DemandFills; got != want {
				t.Errorf("%v pref=%v: demand fill events = %d, want %d", pol, pref, got, want)
			}
			if got, want := uint64(p.fills[obs.FillWrongPath]), res.Traffic.WrongPathFills; got != want {
				t.Errorf("%v pref=%v: wrong-path fill events = %d, want %d", pol, pref, got, want)
			}
			if got, want := uint64(p.fills[obs.FillPrefetch]), res.Traffic.PrefetchFills; got != want {
				t.Errorf("%v pref=%v: prefetch fill events = %d, want %d", pol, pref, got, want)
			}
			if got, want := uint64(p.prefetches), res.Traffic.PrefetchFills; got != want {
				t.Errorf("%v pref=%v: prefetch events = %d, want %d", pol, pref, got, want)
			}
			if got, want := uint64(p.busAcquires), res.Traffic.Total(); got != want {
				t.Errorf("%v pref=%v: bus acquires = %d, want %d transfers", pol, pref, got, want)
			}
			if p.busAcquires != p.busReleases {
				t.Errorf("%v pref=%v: %d acquires vs %d releases", pol, pref, p.busAcquires, p.busReleases)
			}
			windows := res.Events.PHTMispredicts + res.Events.BTBMisfetches + res.Events.BTBMispredicts
			if p.windowStarts != windows || p.windowEnds != windows || p.redirects != windows {
				t.Errorf("%v pref=%v: window start/end/redirect = %d/%d/%d, want %d each",
					pol, pref, p.windowStarts, p.windowEnds, p.redirects, windows)
			}
			// Both structural and line-re-entry misses reach the miss
			// handler, so the event count covers their sum.
			if want := res.RightPathMisses + res.ReentryMisses; p.missStarts != want {
				t.Errorf("%v pref=%v: right-path miss events = %d, want %d",
					pol, pref, p.missStarts, want)
			}
			if p.mispredicts < res.Events.PHTMispredicts {
				t.Errorf("%v pref=%v: mispredict resolves = %d, below PHT mispredicts %d",
					pol, pref, p.mispredicts, res.Events.PHTMispredicts)
			}

			// Sampler contract: monotone samples ending in the exact final
			// counters, so the last cumulative ISPI equals the Result's.
			if len(p.samples) == 0 {
				t.Fatalf("%v pref=%v: no samples", pol, pref)
			}
			for i := 1; i < len(p.samples); i++ {
				if p.samples[i].Insts < p.samples[i-1].Insts || p.samples[i].Cycle < p.samples[i-1].Cycle {
					t.Errorf("%v pref=%v: non-monotone samples %d: %+v -> %+v",
						pol, pref, i, p.samples[i-1], p.samples[i])
				}
			}
			last := p.samples[len(p.samples)-1]
			if last.Insts != res.Insts || last.Cycle != res.Cycles || last.Lost != res.Lost {
				t.Errorf("%v pref=%v: final sample %+v does not match result (insts %d cycles %d)",
					pol, pref, last, res.Insts, res.Cycles)
			}
			if got, want := last.Lost.TotalISPI(last.Insts), res.TotalISPI(); math.Abs(got-want) > 1e-9 {
				t.Errorf("%v pref=%v: final sample ISPI = %v, want %v", pol, pref, got, want)
			}
		}
	}
}

// TestSamplerCadence checks the engine samples at every interval boundary.
func TestSamplerCadence(t *testing.T) {
	bench := synth.MustBuild(synth.Groff())
	const insts, interval = 50_000, 5_000
	p := &countingProbe{}
	cfg := DefaultConfig()
	cfg.Policy = Resume
	cfg.MaxInsts = insts
	cfg.Probe = p
	cfg.SampleInterval = interval
	if _, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled()); err != nil {
		t.Fatal(err)
	}
	// At least one sample per full interval plus the run-end sample; group
	// issue can overshoot a boundary by at most one group, so the count is
	// bounded tightly.
	minSamples := int64(insts / interval)
	if n := len(p.samples); int64(n) < minSamples || int64(n) > minSamples+2 {
		t.Errorf("samples = %d, want within [%d, %d]", n, minSamples, minSamples+2)
	}
	for i := 1; i < len(p.samples)-1; i++ {
		if d := p.samples[i].Insts - p.samples[i-1].Insts; d < interval-int64(cfg.FetchWidth) || d > interval+int64(cfg.FetchWidth) {
			t.Errorf("sample %d spacing = %d insts, want ~%d", i, d, interval)
		}
	}
}

// TestNegativeSampleIntervalRejected covers config validation of the new
// field.
func TestNegativeSampleIntervalRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleInterval = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative SampleInterval accepted")
	}
}
