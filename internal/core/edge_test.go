package core

import (
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/trace"
)

// TestScalarMachine: width 1 still simulates correctly — one instruction
// per cycle plus cold-miss stalls.
func TestScalarMachine(t *testing.T) {
	img := newProg(t, 0).plains(16).build()
	recs := []trace.Record{{Start: 0, N: 16, BrKind: isa.Plain}}
	cfg := cfgWith(Optimistic)
	cfg.FetchWidth = 1
	res := run(t, cfg, img, recs)
	// Two lines: 2 cold misses (5 cycles each) + 16 issue cycles.
	if got, want := res.Cycles, Cycles(2*5+16); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	if got, want := res.Lost.Total(), Slots(10); got != want {
		t.Errorf("lost slots = %d, want %d (1 slot per stall cycle)", got, want)
	}
}

// TestUnitMissPenalty: penalty 1 is the degenerate fast-memory case.
func TestUnitMissPenalty(t *testing.T) {
	img := newProg(t, 0).plains(64).build()
	recs := []trace.Record{{Start: 0, N: 64, BrKind: isa.Plain}}
	cfg := cfgWith(Pessimistic)
	cfg.MissPenalty = 1
	res := run(t, cfg, img, recs)
	// 8 lines: each costs 1 fill cycle + (lines after the first) the decode
	// gate's force_resolve cycle, + 16 issue cycles.
	if res.Insts != 64 {
		t.Fatalf("insts = %d", res.Insts)
	}
	if got, want := res.Lost[metrics.RTICache], Slots(8*1*4); got != want {
		t.Errorf("rt_icache = %d, want %d", got, want)
	}
}

// TestTinyCacheThrashing: a 1KB cache over a 2KB loop misses every line,
// every iteration, under any policy.
func TestTinyCacheThrashing(t *testing.T) {
	const insts = 512 // 2KB of code
	p := newProg(t, 0)
	p.plains(insts - 1)
	p.inst(isa.Jump, 0)
	img := p.build()
	var recs []trace.Record
	for i := 0; i < 4; i++ {
		recs = append(recs, trace.Record{Start: 0, N: insts, BrKind: isa.Jump, Taken: true, Target: 0})
	}
	cfg := cfgWith(Optimistic)
	cfg.ICache = cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 1}
	res := run(t, cfg, img, recs)
	lines := int64(insts * 4 / 32)
	// Every line of every iteration misses (capacity).
	if got, want := res.RightPathMisses, 4*lines; got != want {
		t.Errorf("misses = %d, want %d", got, want)
	}
}

// TestGroupCrossesLineBoundary: a correctly predicted taken branch lets the
// same cycle continue at the target, touching a second line — both lines
// must be referenced, and no penalty charged.
func TestGroupCrossesLineBoundary(t *testing.T) {
	p := newProg(t, 0)
	p.plains(1)
	p.inst(isa.CondBranch, 64) // index 1 -> line 2 (byte 64)
	p.plains(30)
	img := p.build()

	// Warm the branch: first execution misfetches (BTB miss), later ones
	// are free and the group spans line 0 -> line 2 in one cycle.
	var recs []trace.Record
	for i := 0; i < 3; i++ {
		recs = append(recs,
			trace.Record{Start: 0, N: 2, BrKind: isa.CondBranch, Taken: true, Target: 64},
			trace.Record{Start: 64, N: 2, BrKind: isa.Plain},
		)
		// Jump back via the trace is impossible without a branch; re-start
		// is a discontinuity — so run each round through a fresh engine
		// instead.
		res := run(t, cfgWith(Oracle), img, recs)
		_ = res
		recs = recs[:0]
	}

	// Single run with three rounds chained through a backward jump.
	p2 := newProg(t, 0)
	p2.plains(1)
	p2.inst(isa.CondBranch, 64) // index 1
	p2.plains(14)               // indices 2..15
	p2.plains(2)                // line 2: indices 16,17
	p2.inst(isa.Jump, 0)        // index 18
	p2.plains(5)
	img2 := p2.build()
	var recs2 []trace.Record
	for i := 0; i < 5; i++ {
		recs2 = append(recs2,
			trace.Record{Start: 0, N: 2, BrKind: isa.CondBranch, Taken: true, Target: 64},
			trace.Record{Start: 64, N: 3, BrKind: isa.Jump, Taken: true, Target: 0},
		)
	}
	res := run(t, cfgWith(Oracle), img2, recs2)
	if res.Insts != 25 {
		t.Fatalf("insts = %d", res.Insts)
	}
	// After warmup (first iteration: 2 misfetches, 2 cold misses), each
	// iteration issues 5 instructions across 2 lines in 2 cycles.
	if res.Events.BTBMisfetches != 2 {
		t.Errorf("misfetches = %d, want 2 (one per branch site)", res.Events.BTBMisfetches)
	}
	steady := res.Cycles - (2*5 + 2*2) // cold fills + misfetch windows
	if steady > 5*2+2 {
		t.Errorf("steady-state cycles %d too high (expected ~2/iteration)", steady)
	}
}

// TestEmptyTrace: an empty reader is a legal degenerate run.
func TestEmptyTrace(t *testing.T) {
	img := newProg(t, 0).plains(8).build()
	res := run(t, cfgWith(Resume), img, nil)
	if res.Insts != 0 || res.Cycles != 0 || res.Lost.Total() != 0 {
		t.Errorf("empty trace produced %+v", res)
	}
}

// TestSingleInstructionTrace: minimal non-empty run.
func TestSingleInstructionTrace(t *testing.T) {
	img := newProg(t, 0).plains(8).build()
	recs := []trace.Record{{Start: 0, N: 1, BrKind: isa.Plain}}
	res := run(t, cfgWith(Resume), img, recs)
	if res.Insts != 1 {
		t.Errorf("insts = %d", res.Insts)
	}
	// Cold miss (5 cycles) + 1 issue cycle.
	if res.Cycles != 6 {
		t.Errorf("cycles = %d, want 6", res.Cycles)
	}
}

// TestInvalidConfigsRejected: NewEngine refuses broken configurations and
// nil collaborators.
func TestInvalidConfigsRejected(t *testing.T) {
	img := newProg(t, 0).plains(8).build()
	rd := trace.NewSliceReader(nil)
	pred := bpred.NewDefaultDecoupled()

	bad := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.MaxUnresolved = 0 },
		func(c *Config) { c.MissPenalty = 0 },
		func(c *Config) { c.DecodeLatency = 0 },
		func(c *Config) { c.ResolveLatency = 1; c.DecodeLatency = 2 },
		func(c *Config) { c.MaxInsts = -1 },
		func(c *Config) { c.ICache.SizeBytes = 1000 },
		func(c *Config) { c.Policy = Policy(99) },
		func(c *Config) { c.MSHRs = -1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := NewEngine(cfg, img, rd, pred); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := DefaultConfig()
	if _, err := NewEngine(cfg, nil, rd, pred); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := NewEngine(cfg, img, nil, pred); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := NewEngine(cfg, img, rd, nil); err == nil {
		t.Error("nil predictor accepted")
	}
}

// TestInvalidTraceRecordSurfaces: a corrupt record aborts the run with an
// error instead of garbage results.
func TestInvalidTraceRecordSurfaces(t *testing.T) {
	img := newProg(t, 0).plains(8).build()
	recs := []trace.Record{{Start: 0, N: 0, BrKind: isa.Plain}} // invalid
	_, err := Run(cfgWith(Oracle), img, trace.NewSliceReader(recs), bpred.NewDefaultDecoupled())
	if err == nil {
		t.Fatal("invalid record accepted")
	}
}

// TestResultString renders without panicking and includes the components.
func TestResultString(t *testing.T) {
	img := newProg(t, 0).plains(16).build()
	recs := []trace.Record{{Start: 0, N: 16, BrKind: isa.Plain}}
	res := run(t, cfgWith(Decode), img, recs)
	s := res.String()
	for _, want := range []string{"decode", "rt_icache", "ISPI"} {
		if !contains(s, want) {
			t.Errorf("Result.String() missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
