package core

import (
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// TestFootnote3MissEquality reproduces the paper's footnote 3:
// "Pessimistic and Oracle generate the same number of I-cache misses.
// Optimistic and Resume generate the same number of I-cache misses."
//
// Misses here are line fetches from memory: Oracle/Pessimistic fill only
// right-path lines; Optimistic/Resume additionally fill the same wrong-path
// lines (the fill sets differ only in *when* stalls happen, which cannot
// change what the correct path touches, and wrong-path windows are
// determined by the predictor state, which is policy independent).
func TestFootnote3MissEquality(t *testing.T) {
	for _, name := range []string{"gcc", "li", "doduc"} {
		p, _ := synth.ProfileByName(name)
		bench := synth.MustBuild(p)
		const insts = 120_000

		fills := map[Policy]uint64{}
		rightMisses := map[Policy]int64{}
		for _, pol := range Policies() {
			cfg := DefaultConfig()
			cfg.Policy = pol
			cfg.MaxInsts = insts
			res, err := Run(cfg, bench.Image(), bench.NewReader(9, insts*2), bpred.NewDefaultDecoupled())
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pol, err)
			}
			fills[pol] = res.Traffic.Total()
			rightMisses[pol] = res.RightPathMisses
		}

		// Near-equality rather than exact equality: our model is finer
		// grained than the paper's in two ways that let the pairs drift a
		// few percent — predictor state is sampled at *cycle* time (stall
		// patterns shift which resolutions are visible per prediction),
		// and Resume's single buffer declines fills Optimistic performs
		// after its blocking stall. Both effects are ≲5% of misses.
		within := func(a, b uint64, what string) {
			diff := int64(a) - int64(b)
			if diff < 0 {
				diff = -diff
			}
			if diff*20 > int64(a) {
				t.Errorf("%s: %s differ beyond 5%%: %d vs %d", name, what, a, b)
			}
		}
		within(fills[Oracle], fills[Pessimistic], "Oracle/Pessimistic fills")
		within(fills[Optimistic], fills[Resume], "Optimistic/Resume fills")
		within(uint64(rightMisses[Oracle]), uint64(rightMisses[Pessimistic]), "Oracle/Pessimistic right-path misses")
		within(uint64(rightMisses[Optimistic]), uint64(rightMisses[Resume]), "Optimistic/Resume right-path misses")
		// And the aggressive pair must move more lines than the yardstick
		// pair (wrong-path fills exist).
		if fills[Optimistic] <= fills[Oracle] {
			t.Errorf("%s: Optimistic fills %d not above Oracle %d",
				name, fills[Optimistic], fills[Oracle])
		}
	}
}

// TestDecodeServicesMispredictPhaseMisses: the Decode policy's defining
// behaviour — it fills wrong-path misses caused by direction mispredicts
// (invisible to the decode gate) but refuses those caused by misfetches.
func TestDecodeServicesMispredictPhaseMisses(t *testing.T) {
	// Mispredict scenario: a conditional trained not-taken then suddenly
	// taken; the fall-through wrong path crosses into an absent line.
	p := newProg(t, 0)
	p.plains(6)
	p.inst(isa.CondBranch, 0) // index 6: loop branch, target 0
	p.inst(isa.Plain, 0)      // index 7 (fall-through, line 0)
	p.plains(16)              // lines 1,2 (fall-through wrong path)
	img := p.build()

	var recs []trace.Record
	// Train not-taken: each iteration runs 0..7 then... fall-through to
	// line 1 would leave the loop; instead run the not-taken case once at
	// the end. Train taken first is easier: always taken, then final
	// not-taken (mispredict with wrong path = fall-through? no: predicted
	// taken, actual not-taken -> wrong path is the *target* path, which is
	// resident). So train NOT-taken via... the counter starts weakly taken;
	// first execution is predicted taken (misfetch, wrong path =
	// fall-through into line 1: absent!). That is a MISFETCH phase miss —
	// Decode must refuse it.
	recs = append(recs,
		trace.Record{Start: 0, N: 7, BrKind: isa.CondBranch, Taken: true, Target: 0},
		trace.Record{Start: 0, N: 7, BrKind: isa.CondBranch, Taken: true, Target: 0},
	)
	res := run(t, cfgWith(Decode), img, recs)
	if res.Traffic.WrongPathFills != 0 {
		t.Errorf("Decode filled a misfetch-phase wrong-path miss (%d fills)",
			res.Traffic.WrongPathFills)
	}

	// Now the mispredict phase: train the branch taken (BTB hit), then a
	// final not-taken execution sends fetch down the *taken* path... which
	// is resident. To get an absent-line mispredict wrong path, flip it:
	// train not-taken, then a taken execution makes the wrong path the
	// fall-through (lines 1-2, absent). Training not-taken requires the
	// trace to continue at index 7 each time; lay the loop out so the
	// fall-through block jumps back to 0.
	q := newProg(t, 0)
	q.plains(3)
	q.inst(isa.CondBranch, 27*4) // index 3: taken target = index 27 (line 3)
	q.plains(3)                  // indices 4..6
	q.inst(isa.Jump, 0)          // index 7: back to 0
	q.plains(16)                 // indices 8..23 (lines 1,2: wrong path for taken prediction? no...)
	q.plains(3)                  // indices 24..26
	q.plains(8)                  // indices 27..34: the actual taken target block (line 3)
	img2 := q.build()

	var recs2 []trace.Record
	for i := 0; i < 30; i++ {
		recs2 = append(recs2,
			trace.Record{Start: 0, N: 4, BrKind: isa.CondBranch, Taken: false},
			trace.Record{Start: 16, N: 4, BrKind: isa.Jump, Taken: true, Target: 0},
		)
	}
	// Final execution: taken. Prediction (trained not-taken) is wrong; the
	// wrong path is the fall-through (indices 4..7 resident, jump back to
	// 0, also resident...) — the wrong path loops through resident lines,
	// so no wrong-path miss either. The robust check: globally, Decode
	// fills *some* wrong-path misses on a mispredicting workload but fewer
	// than Optimistic (misfetch-phase refusals).
	bench := synth.MustBuild(synth.GCC())
	const insts = 120_000
	runPol := func(pol Policy) Result {
		cfg := DefaultConfig()
		cfg.Policy = pol
		cfg.MaxInsts = insts
		r, err := Run(cfg, bench.Image(), bench.NewReader(3, insts*2), bpred.NewDefaultDecoupled())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	dec := runPol(Decode)
	opt := runPol(Optimistic)
	if dec.Traffic.WrongPathFills == 0 {
		t.Error("Decode filled no wrong-path misses on a mispredicting workload")
	}
	if dec.Traffic.WrongPathFills >= opt.Traffic.WrongPathFills {
		t.Errorf("Decode wrong-path fills %d not below Optimistic %d",
			dec.Traffic.WrongPathFills, opt.Traffic.WrongPathFills)
	}
	// Decode's wrong_icache exists but is bounded by Optimistic's.
	if dec.Lost[metrics.WrongICache] > opt.Lost[metrics.WrongICache] {
		t.Errorf("Decode wrong_icache %d above Optimistic %d",
			dec.Lost[metrics.WrongICache], opt.Lost[metrics.WrongICache])
	}
	_ = img2
	_ = recs2
}
