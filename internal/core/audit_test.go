package core

import (
	"strings"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/metrics"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
)

func newAuditor(cfg Config) *obs.AuditProbe {
	return obs.NewAuditProbe(obs.AuditOptions{
		Width:           cfg.FetchWidth,
		AllowBusOverlap: cfg.PipelinedMemory,
	})
}

// TestAuditAllPolicies runs every policy over every synthetic profile with
// the auditor attached and checks that (a) no streaming invariant fires,
// (b) the final accounting identities verify, and (c) the audited Result is
// bit-identical to an unaudited run — observation must not perturb the
// simulation.
func TestAuditAllPolicies(t *testing.T) {
	const insts = 50_000
	for pi, prof := range synth.Profiles() {
		bench := synth.MustBuild(prof)
		for _, pol := range Policies() {
			cfg := DefaultConfig()
			cfg.Policy = pol
			cfg.MaxInsts = insts
			// Vary the machine across profiles so the audited paths cover
			// prefetching, pipelined memory, and non-default widths.
			switch pi % 4 {
			case 1:
				cfg.NextLinePrefetch = true
			case 2:
				cfg.PipelinedMemory = true
				cfg.FetchWidth = 2
			case 3:
				cfg.TargetPrefetch = true
				cfg.StreamDepth = 2
				cfg.MissPenalty = 20
			}

			plain, err := Run(cfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
			if err != nil {
				t.Fatalf("%s/%s: %v", prof.Name, pol, err)
			}
			aud := newAuditor(cfg)
			acfg := cfg
			acfg.Probe = aud
			audited, err := Run(acfg, bench.Image(), bench.NewReader(1, insts*2), bpred.NewDefaultDecoupled())
			if err != nil {
				t.Fatalf("%s/%s audited: %v", prof.Name, pol, err)
			}
			if audited != plain {
				t.Errorf("%s/%s: audited run diverged from unaudited run\naudited   %+v\nunaudited %+v",
					prof.Name, pol, audited, plain)
			}
			if err := aud.Verify(audited.AuditFinal()); err != nil {
				t.Errorf("%s/%s: %v", prof.Name, pol, err)
			}
		}
	}
}

// TestAuditDetectsInjectedAccountingBug audits a clean run, then feeds
// Verify deliberately corrupted finals — the kind of numbers a
// double-charge or dropped-counter bug in the engine would produce — and
// requires a diagnosis.
func TestAuditDetectsInjectedAccountingBug(t *testing.T) {
	bench := synth.MustBuild(synth.GCC())
	cfg := DefaultConfig()
	cfg.Policy = Resume
	cfg.MaxInsts = 20_000
	aud := newAuditor(cfg)
	cfg.Probe = aud
	res, err := Run(cfg, bench.Image(), bench.NewReader(1, cfg.MaxInsts*2), bpred.NewDefaultDecoupled())
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.Verify(res.AuditFinal()); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}

	// A bus stall double-charged by one fetch group's worth of slots.
	bad := res.AuditFinal()
	bad.Lost[metrics.Bus] += metrics.Slots(cfg.FetchWidth)
	err = aud.Verify(bad)
	if err == nil {
		t.Error("double-charged bus stall verified clean")
	} else if !strings.Contains(err.Error(), "bus") {
		t.Errorf("diagnosis does not name the bus identity: %v", err)
	}

	// A dropped instruction.
	bad = res.AuditFinal()
	bad.Insts--
	if aud.Verify(bad) == nil {
		t.Error("dropped instruction count verified clean")
	}

	// Phantom memory traffic.
	bad = res.AuditFinal()
	bad.WrongPathFills++
	if aud.Verify(bad) == nil {
		t.Error("phantom wrong-path fill verified clean")
	}
}
